// The telemetry plane (src/obs/http_exporter.*, MetricsRegistry::ToPrometheus):
// Prometheus text-exposition rendering (name sanitization, cumulative le
// buckets, _sum/_count consistency), the embedded HTTP server end to end on
// an ephemeral port (status codes, content types, custom routes, 404/405),
// live metric movement across scrapes while a hybrid PageRank runs, and the
// /jobs payload tracking real scheduler progress.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/pagerank.h"
#include "core/hybrid_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "obs/attribution.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "scheduler/algo_jobs.h"
#include "scheduler/scan_source.h"
#include "scheduler/scheduler.h"
#include "storage/sim_device.h"
#include "threads/thread_pool.h"

namespace xstream {
namespace {

// ---- Prometheus exposition helpers -----------------------------------------

// All lines of the exposition that start with `series` followed by a space
// or '{' (i.e. samples of that series, not of a longer-named one).
std::vector<std::string> SeriesLines(const std::string& text, const std::string& series) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(series, 0) == 0 && line.size() > series.size() &&
        (line[series.size()] == ' ' || line[series.size()] == '{')) {
      out.push_back(line);
    }
  }
  return out;
}

double SampleValue(const std::string& line) {
  size_t space = line.rfind(' ');
  return std::stod(line.substr(space + 1));
}

// Value of the single sample line for `series`, or NaN when absent.
double SeriesValue(const std::string& text, const std::string& series) {
  std::vector<std::string> lines = SeriesLines(text, series);
  if (lines.size() != 1) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return SampleValue(lines[0]);
}

// ---- Raw-socket HTTP client ------------------------------------------------

struct HttpReply {
  int status = 0;
  std::string headers;  // raw header block, lowercase not applied
  std::string body;
};

// One blocking GET against 127.0.0.1:port. The exporter closes after each
// response, so "read to EOF" delimits the body.
HttpReply Get(int port, const std::string& target, const std::string& method = "GET") {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to 127.0.0.1:" << port;
  std::string req = method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    ADD_FAILURE() << "no header terminator in reply: " << raw;
    return reply;
  }
  reply.headers = raw.substr(0, header_end);
  reply.body = raw.substr(header_end + 4);
  // "HTTP/1.1 200 OK"
  if (raw.size() > 12 && raw.rfind("HTTP/1.1 ", 0) == 0) {
    reply.status = std::stoi(raw.substr(9, 3));
  }
  return reply;
}

// ---- ToPrometheus rendering ------------------------------------------------

TEST(PrometheusTest, CountersGainTotalSuffixAndNamesAreSanitized) {
  obs::MetricsRegistry reg;
  reg.counter("io.ssd-0.read.ops").Add(42);
  std::string text = reg.ToPrometheus();
  // Dots and dashes both fold to '_'; the counter gets "_total".
  EXPECT_NE(text.find("# TYPE xstream_io_ssd_0_read_ops_total counter"), std::string::npos)
      << text;
  EXPECT_DOUBLE_EQ(SeriesValue(text, "xstream_io_ssd_0_read_ops_total"), 42.0) << text;
}

TEST(PrometheusTest, GaugesRenderPlainValues) {
  obs::MetricsRegistry reg;
  reg.gauge("residency.budget_mb").Set(512.25);
  std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("# TYPE xstream_residency_budget_mb gauge"), std::string::npos) << text;
  EXPECT_DOUBLE_EQ(SeriesValue(text, "xstream_residency_budget_mb"), 512.25) << text;
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeMonotoneAndConsistent) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("io.lat_us");
  // 3 in bucket 0 (<=1), 2 in (1,2], 1 in (512,1024].
  h.Observe(0.5);
  h.Observe(1.0);
  h.Observe(0.0);
  h.Observe(1.5);
  h.Observe(2.0);
  h.Observe(600.0);
  std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("# TYPE xstream_io_lat_us histogram"), std::string::npos) << text;

  std::vector<std::string> buckets = SeriesLines(text, "xstream_io_lat_us_bucket");
  ASSERT_GE(buckets.size(), 2u) << text;
  // Cumulative and monotone, ending at le="+Inf".
  double prev = -1.0;
  for (const std::string& line : buckets) {
    double v = SampleValue(line);
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
  EXPECT_NE(buckets.back().find("le=\"+Inf\""), std::string::npos) << buckets.back();
  // Spot-check the cumulative counts at the first buckets.
  EXPECT_NE(text.find("xstream_io_lat_us_bucket{le=\"1\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("xstream_io_lat_us_bucket{le=\"2\"} 5"), std::string::npos) << text;
  EXPECT_NE(text.find("xstream_io_lat_us_bucket{le=\"1024\"} 6"), std::string::npos) << text;

  // +Inf bucket == _count; _sum matches the Histogram accessors exactly.
  EXPECT_DOUBLE_EQ(SampleValue(buckets.back()), static_cast<double>(h.Count()));
  EXPECT_DOUBLE_EQ(SeriesValue(text, "xstream_io_lat_us_count"), static_cast<double>(h.Count()));
  EXPECT_DOUBLE_EQ(SeriesValue(text, "xstream_io_lat_us_sum"), h.Sum());
}

TEST(PrometheusTest, EmptyHistogramStillEmitsInfSumCount) {
  obs::MetricsRegistry reg;
  reg.histogram("never.observed");
  std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("xstream_never_observed_bucket{le=\"+Inf\"} 0"), std::string::npos)
      << text;
  EXPECT_DOUBLE_EQ(SeriesValue(text, "xstream_never_observed_count"), 0.0) << text;
  EXPECT_DOUBLE_EQ(SeriesValue(text, "xstream_never_observed_sum"), 0.0) << text;
}

TEST(PrometheusTest, EveryMetricGetsAHelpLine) {
  obs::MetricsRegistry reg;
  reg.counter("io.ssd.read.ops").Add(1);
  reg.gauge("residency.pinned").Set(2);
  reg.histogram("store.spill_wait_us").Observe(3.0);
  std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("# HELP xstream_io_ssd_read_ops_total "), std::string::npos) << text;
  EXPECT_NE(text.find("# HELP xstream_residency_pinned "), std::string::npos) << text;
  EXPECT_NE(text.find("# HELP xstream_store_spill_wait_us "), std::string::npos) << text;
  // The catalog resolves known prefixes to real descriptions, not the
  // fallback: the io.* counter should mention the I/O executor.
  EXPECT_NE(text.find("# HELP xstream_io_ssd_read_ops_total Per-device I/O executor"),
            std::string::npos)
      << text;
  // Every # TYPE line is preceded by a # HELP line for the same series.
  std::istringstream in(text);
  std::string line, prev;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string series = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(prev.rfind("# HELP " + series + " ", 0), 0u) << "TYPE without HELP: " << line;
    }
    prev = line;
  }
}

TEST(PrometheusTest, EveryInfBucketEqualsItsCount) {
  // Over the full process-global exposition (whatever earlier tests and
  // engine runs left in it): each histogram's le="+Inf" cumulative bucket
  // must equal its _count — the invariant Prometheus itself checks.
  obs::MetricsRegistry::Global().histogram("test.help_probe_us").Observe(4.0);
  std::string text = obs::MetricsRegistry::Global().ToPrometheus();
  std::istringstream in(text);
  std::string line;
  int histograms_checked = 0;
  while (std::getline(in, line)) {
    size_t marker = line.find("_bucket{le=\"+Inf\"} ");
    if (marker == std::string::npos || line.rfind("# ", 0) == 0) {
      continue;
    }
    std::string series = line.substr(0, marker);
    double inf_value = SampleValue(line);
    double count = SeriesValue(text, series + "_count");
    EXPECT_DOUBLE_EQ(inf_value, count) << series;
    ++histograms_checked;
  }
  EXPECT_GT(histograms_checked, 0) << text;
}

// ---- Exporter end to end ---------------------------------------------------

TEST(HttpExporterTest, ServesBuiltInAndCustomRoutesOnEphemeralPort) {
  obs::HttpExporter exporter;
  exporter.Handle("/stats", [](const std::string&) {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = "{\"custom\":true}";
    return r;
  });
  ASSERT_TRUE(exporter.Start(0));
  ASSERT_GT(exporter.port(), 0);
  EXPECT_TRUE(exporter.running());

  HttpReply healthz = Get(exporter.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"ok\""), std::string::npos) << healthz.body;
  EXPECT_NE(healthz.body.find("\"uptime_seconds\""), std::string::npos) << healthz.body;

  HttpReply metrics = Get(exporter.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("version=0.0.4"), std::string::npos) << metrics.headers;
  EXPECT_NE(metrics.body.find("xstream_"), std::string::npos);

  // Query strings are stripped before route lookup (Prometheus adds none,
  // humans do).
  EXPECT_EQ(Get(exporter.port(), "/healthz?verbose=1").status, 200);

  HttpReply custom = Get(exporter.port(), "/stats");
  EXPECT_EQ(custom.status, 200);
  EXPECT_EQ(custom.body, "{\"custom\":true}");
  EXPECT_NE(custom.headers.find("application/json"), std::string::npos);

  EXPECT_EQ(Get(exporter.port(), "/nope").status, 404);
  EXPECT_EQ(Get(exporter.port(), "/metrics", "POST").status, 405);

  // Each served request bumps the exporter's own counter.
  EXPECT_GE(obs::MetricsRegistry::Global().counter("telemetry.http_requests").Value(), 6u);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // idempotent
}

TEST(HttpExporterTest, MetricsMoveBetweenScrapesWhileHybridPageRankRuns) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start(0));
  std::string before = Get(exporter.port(), "/metrics").body;

  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 5;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("e2e", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  HybridConfig config;
  config.threads = 2;
  config.num_partitions = 4;
  config.io_unit_bytes = 16 << 10;
  config.memory_budget_bytes = 1 << 20;
  HybridEngine<PageRankAlgorithm> engine(config, dev, dev, dev, "input", info);
  PageRankResult result = RunPageRank(engine, 3);
  result.stats.PublishTo("e2e.run");

  std::string after = Get(exporter.port(), "/metrics").body;
  // The driver's live progress gauges moved (published at iteration
  // boundaries by StreamingPhaseDriver)...
  EXPECT_GE(SeriesValue(after, "xstream_run_iteration"), 3.0) << after;
  // ...and the published run counters appear with live values the first
  // scrape could not have had.
  double streamed = SeriesValue(after, "xstream_e2e_run_edges_streamed_total");
  EXPECT_GT(streamed, 0.0) << after;
  EXPECT_TRUE(SeriesLines(before, "xstream_e2e_run_edges_streamed_total").empty());
  EXPECT_DOUBLE_EQ(streamed, static_cast<double>(result.stats.edges_streamed));
}

TEST(HttpExporterTest, JobsRouteTracksSchedulerProgress) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 9;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);
  ThreadPool pool(2);
  PartitionLayout layout(info.num_vertices, 4);
  MemoryScanSource source(pool, layout, edges);
  JobScheduler sched(source);

  obs::HttpExporter exporter;
  exporter.Handle("/jobs", [&sched](const std::string&) {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = JobReportsToJson(sched.reports());
    return r;
  });
  ASSERT_TRUE(exporter.Start(0));

  auto out = std::make_shared<JobOutput>();
  sched.Submit(MakeMemoryJob(ParseJobSpec("pagerank:iters=4"), source, out));

  // Mid-run: drive two partition boundaries, then scrape. The report must
  // show a running job partway through its 4-partition round.
  ASSERT_TRUE(sched.PumpOne());
  ASSERT_TRUE(sched.PumpOne());
  HttpReply mid = Get(exporter.port(), "/jobs");
  EXPECT_EQ(mid.status, 200);
  EXPECT_NE(mid.body.find("\"name\":\"pagerank:iters=4\""), std::string::npos) << mid.body;
  EXPECT_NE(mid.body.find("\"state\":\"running\""), std::string::npos) << mid.body;
  EXPECT_NE(mid.body.find("\"partitions_total\":4"), std::string::npos) << mid.body;
  EXPECT_NE(mid.body.find("\"partitions_done\":2"), std::string::npos) << mid.body;

  sched.RunAll();
  HttpReply done = Get(exporter.port(), "/jobs");
  EXPECT_EQ(done.status, 200);
  EXPECT_NE(done.body.find("\"state\":\"done\""), std::string::npos) << done.body;
  EXPECT_NE(done.body.find("\"partitions_done\":4"), std::string::npos) << done.body;
  JobReport report = sched.reports().at(0);
  EXPECT_EQ(report.partitions_done, report.partitions_total);
}

TEST(HttpExporterTest, AttributionRouteServesAccountantDiagnosis) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start(0));
  {
    obs::PhaseAccountant acct("route-test", 2);
    acct.Record(obs::Phase::kScatter, 0, 0.030);
    acct.Record(obs::Phase::kSpillWait, 1, 0.070);

    HttpReply reply = Get(exporter.port(), "/attribution");
    EXPECT_EQ(reply.status, 200);
    EXPECT_NE(reply.headers.find("application/json"), std::string::npos) << reply.headers;
    EXPECT_NE(reply.body.find("\"name\":\"route-test\""), std::string::npos) << reply.body;
    EXPECT_NE(reply.body.find("\"diagnosis\""), std::string::npos) << reply.body;
    EXPECT_NE(reply.body.find("\"bottleneck\":\"spill_wait\""), std::string::npos)
        << reply.body;
  }
  // After the accountant dies its snapshot survives in the retired ring.
  HttpReply retired = Get(exporter.port(), "/attribution");
  EXPECT_NE(retired.body.find("\"name\":\"route-test\""), std::string::npos) << retired.body;
  obs::AttributionRegistry::Global().ClearRetired();
}

TEST(HttpExporterTest, ProfileRouteReturnsFoldedStacksUnderLoad) {
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.Start(0));

  // Keep a core busy so ITIMER_PROF (which counts consumed CPU time, not
  // wall time) actually fires during the capture window.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};
  std::thread spinner([&] {
    uint64_t x = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      x = x * 2862933555777941757ULL + 3037000493ULL;
      sink.store(x, std::memory_order_relaxed);
    }
  });

  HttpReply reply = Get(exporter.port(), "/profile?seconds=1");
  stop.store(true);
  spinner.join();

  EXPECT_EQ(reply.status, 200);
  // Folded-stack lines: "frame;frame;... <count>".
  bool has_sample_line = false;
  std::istringstream in(reply.body);
  std::string line;
  while (std::getline(in, line)) {
    size_t space = line.rfind(' ');
    if (space != std::string::npos && space + 1 < line.size() &&
        line.find_first_not_of("0123456789", space + 1) == std::string::npos) {
      has_sample_line = true;
      break;
    }
  }
  EXPECT_TRUE(has_sample_line) << "no folded stacks in: " << reply.body.substr(0, 512);
}

}  // namespace
}  // namespace xstream
