// Parameterized property suites: engine-config sweeps and algorithm
// invariants that must hold across graph families, thread counts, partition
// counts and engine flavours.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "algorithms/algorithms.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

// ---------------------------------------------------------------- graph families

EdgeList FamilyGraph(const std::string& family, uint64_t seed) {
  if (family == "rmat") {
    RmatParams params;
    params.scale = 9;
    params.edge_factor = 8;
    params.undirected = true;
    params.seed = seed;
    return GenerateRmat(params);
  }
  if (family == "er") {
    return GenerateErdosRenyi(600, 2400, true, seed);
  }
  if (family == "grid") {
    return GenerateGrid(24, 24, seed);
  }
  if (family == "path") {
    return GeneratePath(500, seed);
  }
  if (family == "star") {
    return GenerateStar(400);
  }
  if (family == "chain") {
    return GenerateClusteredChain(6, 64, 4, seed);
  }
  ADD_FAILURE() << "unknown family " << family;
  return {};
}

// WCC on both engines must match union-find on every graph family.
class FamilySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilySweep, WccMatchesReferenceOnBothEngines) {
  EdgeList edges = FamilyGraph(GetParam(), 17);
  PermuteEdges(edges, 23);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  InMemoryConfig im;
  im.threads = 2;
  im.cache_bytes = 32 * 1024;
  InMemoryEngine<WccAlgorithm> inmem(im, edges, info.num_vertices);
  EXPECT_EQ(RunWcc(inmem).labels, expected);

  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  OutOfCoreConfig oc;
  oc.threads = 2;
  oc.memory_budget_bytes = 1 << 19;
  oc.io_unit_bytes = 8 << 10;
  OutOfCoreEngine<WccAlgorithm> ooc(oc, dev, dev, dev, "input", info);
  EXPECT_EQ(RunWcc(ooc).labels, expected);
}

TEST_P(FamilySweep, BfsMatchesReference) {
  EdgeList edges = FamilyGraph(GetParam(), 29);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, 0);
  InMemoryConfig im;
  im.threads = 2;
  im.cache_bytes = 32 * 1024;
  InMemoryEngine<BfsAlgorithm> engine(im, edges, info.num_vertices);
  EXPECT_EQ(RunBfs(engine, 0).levels, expected);
}

TEST_P(FamilySweep, MisIsMaximalIndependent) {
  EdgeList edges = FamilyGraph(GetParam(), 31);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<MisAlgorithm> engine(im, edges, info.num_vertices);
  MisResult r = RunMis(engine);
  EXPECT_TRUE(IsMaximalIndependentSet(edges, info.num_vertices, r.in_set));
}

TEST_P(FamilySweep, McstMatchesKruskalWeight) {
  EdgeList edges = FamilyGraph(GetParam(), 37);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<McstAlgorithm> engine(im, edges, info.num_vertices);
  McstResult r = RunMcst(engine);
  EXPECT_NEAR(r.total_weight, ReferenceMstWeight(edges, info.num_vertices),
              1e-2 + 1e-4 * r.total_weight);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep,
                         ::testing::Values("rmat", "er", "grid", "path", "star", "chain"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------- config sweeps

struct OocConfigCase {
  int threads;
  uint64_t budget;
  bool mem_opts;
  uint32_t partitions;  // 0 = auto
};

class OocConfigSweep : public ::testing::TestWithParam<OocConfigCase> {};

TEST_P(OocConfigSweep, WccCorrectUnderAllConfigs) {
  OocConfigCase c = GetParam();
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 41;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  OutOfCoreConfig config;
  config.threads = c.threads;
  config.memory_budget_bytes = c.budget;
  config.io_unit_bytes = 8 << 10;
  config.num_partitions = c.partitions;
  config.allow_vertex_memory_opt = c.mem_opts;
  config.allow_update_memory_opt = c.mem_opts;
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  EXPECT_EQ(RunWcc(engine).labels, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, OocConfigSweep,
    ::testing::Values(OocConfigCase{1, 1 << 20, true, 0}, OocConfigCase{1, 1 << 20, false, 0},
                      OocConfigCase{2, 1 << 20, true, 0}, OocConfigCase{2, 1 << 18, false, 4},
                      OocConfigCase{4, 1 << 18, false, 16}, OocConfigCase{2, 1 << 19, true, 8},
                      OocConfigCase{4, 1 << 20, true, 1}, OocConfigCase{2, 1 << 18, false, 32}),
    [](const auto& info) {
      const OocConfigCase& c = info.param;
      return "t" + std::to_string(c.threads) + "_b" + std::to_string(c.budget >> 10) + "k_" +
             (c.mem_opts ? "opt" : "noopt") + "_k" + std::to_string(c.partitions);
    });

class InMemConfigSweep : public ::testing::TestWithParam<std::tuple<int, uint32_t, uint32_t>> {
};

TEST_P(InMemConfigSweep, SsspCorrectUnderAllConfigs) {
  auto [threads, partitions, fanout] = GetParam();
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 43;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferenceSssp(g, 0);

  InMemoryConfig config;
  config.threads = threads;
  config.num_partitions = partitions;
  config.shuffle_fanout = fanout;
  InMemoryEngine<SsspAlgorithm> engine(config, edges, info.num_vertices);
  SsspResult r = RunSssp(engine, 0);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    if (!std::isinf(expected[v])) {
      ASSERT_NEAR(r.dist[v], expected[v], 1e-3) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, InMemConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1u, 8u, 64u),
                       ::testing::Values(2u, 8u, 1024u)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_f" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------- invariants

TEST(AlgorithmInvariants, BfsLevelsBoundSsspHopDistances) {
  // With weights in [0,1), dist(v) < (#hops)*1 and dist(v) >= 0; and
  // reachability sets must agree.
  EdgeList edges = FamilyGraph("rmat", 47);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<BfsAlgorithm> bfs_engine(config, edges, info.num_vertices);
  BfsResult bfs = RunBfs(bfs_engine, 0);
  InMemoryEngine<SsspAlgorithm> sssp_engine(config, edges, info.num_vertices);
  SsspResult sssp = RunSssp(sssp_engine, 0);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    if (bfs.levels[v] == UINT32_MAX) {
      EXPECT_TRUE(std::isinf(sssp.dist[v]));
    } else {
      EXPECT_TRUE(std::isfinite(sssp.dist[v]));
      EXPECT_LE(sssp.dist[v], static_cast<float>(bfs.levels[v]) + 1e-3);
    }
  }
}

TEST(AlgorithmInvariants, PageRankRanksArePositiveAndBounded) {
  EdgeList edges = FamilyGraph("rmat", 53);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<PageRankAlgorithm> engine(config, edges, info.num_vertices);
  PageRankResult r = RunPageRank(engine, 5);
  double total = 0;
  for (float rank : r.ranks) {
    EXPECT_GT(rank, 0.0f);
    EXPECT_LT(rank, 1.0f);
    total += rank;
  }
  EXPECT_LE(total, 1.0 + 1e-3);  // dangling mass can only leak, never grow
}

TEST(AlgorithmInvariants, MisDeterministicPerSeedVariesAcrossSeeds) {
  EdgeList edges = FamilyGraph("rmat", 59);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  auto run = [&](uint64_t seed) {
    InMemoryEngine<MisAlgorithm> engine(config, edges, info.num_vertices);
    return RunMis(engine, seed).in_set;
  };
  EXPECT_EQ(run(1), run(1));
  // Different seeds give different (but both valid) sets on this graph.
  auto a = run(1);
  auto b = run(2);
  EXPECT_TRUE(IsMaximalIndependentSet(edges, info.num_vertices, a));
  EXPECT_TRUE(IsMaximalIndependentSet(edges, info.num_vertices, b));
  EXPECT_NE(a, b);
}

TEST(AlgorithmInvariants, SccSingletonForDag) {
  // A DAG has |V| SCCs.
  EdgeList dag;
  for (VertexId v = 0; v < 50; ++v) {
    for (VertexId u = v + 1; u < std::min<VertexId>(v + 4, 50); ++u) {
      dag.push_back(Edge{v, u, 1.0f});
    }
  }
  EdgeList flagged = MakeSccEdgeList(dag);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<SccAlgorithm> engine(config, flagged, 50);
  SccResult r = RunScc(engine);
  EXPECT_EQ(r.num_sccs, 50u);
}

TEST(AlgorithmInvariants, SccWholeGraphForCycle) {
  EdgeList cycle;
  for (VertexId v = 0; v < 64; ++v) {
    cycle.push_back(Edge{v, static_cast<VertexId>((v + 1) % 64), 1.0f});
  }
  EdgeList flagged = MakeSccEdgeList(cycle);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<SccAlgorithm> engine(config, flagged, 64);
  SccResult r = RunScc(engine);
  EXPECT_EQ(r.num_sccs, 1u);
}

TEST(AlgorithmInvariants, HyperAnfNeighborhoodFunctionMonotone) {
  EdgeList edges = FamilyGraph("grid", 61);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<HyperAnfAlgorithm> engine(config, edges, info.num_vertices);
  HyperAnfResult r = RunHyperAnf(engine);
  for (size_t t = 1; t < r.neighborhood_function.size(); ++t) {
    EXPECT_GE(r.neighborhood_function[t], r.neighborhood_function[t - 1] * 0.999) << t;
  }
  EXPECT_GT(r.steps, 10u);  // 24x24 grid: diameter 46
}

TEST(AlgorithmInvariants, ConductanceOfDisconnectedSidesIsZero) {
  // Two cliques with no cross edges and a side function that separates them
  // exactly => conductance 0.
  EdgeList edges;
  auto clique = [&edges](VertexId base, VertexId n) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = 0; j < n; ++j) {
        if (i != j) {
          edges.push_back(Edge{base + i, base + j, 1.0f});
        }
      }
    }
  };
  clique(0, 10);
  clique(10, 10);
  // Custom check through the reference (the engine algorithm uses hashed
  // sides; here we validate the metric itself).
  std::vector<uint8_t> side(20, 0);
  for (VertexId v = 10; v < 20; ++v) {
    side[v] = 1;
  }
  EXPECT_EQ(ReferenceConductance(edges, 20, side), 0.0);
}

TEST(AlgorithmInvariants, AlsRmseImprovesWithIterations) {
  EdgeList ratings = GenerateBipartite(300, 50, 4000, 67);
  GraphInfo info = ScanEdges(ratings);
  InMemoryConfig config;
  config.threads = 2;
  auto run = [&](uint64_t iters) {
    InMemoryEngine<AlsAlgorithm> engine(config, ratings, info.num_vertices);
    return RunAls(engine, 300, iters).rmse;
  };
  double one = run(1);
  double five = run(5);
  EXPECT_LE(five, one + 1e-6);
}

TEST(AlgorithmInvariants, BpConfidentSeedsStayConfident) {
  EdgeList edges = FamilyGraph("rmat", 71);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<BpAlgorithm> engine(config, edges, info.num_vertices);
  BpResult r = RunBp(engine, 5, 23);
  // With a 5% seed fraction, some vertices must end up confident.
  EXPECT_GT(r.confident, 0u);
}

TEST(EngineInvariants, OocMatchesInMemForEveryAlgorithmOnOneGraph) {
  EdgeList edges = FamilyGraph("rmat", 73);
  PermuteEdges(edges, 3);
  GraphInfo info = ScanEdges(edges);

  InMemoryConfig im;
  im.threads = 2;

  auto make_ooc_dev = [] {
    return std::make_unique<SimDevice>("d", DeviceProfile::Instant());
  };

  {  // WCC labels identical.
    InMemoryEngine<WccAlgorithm> a(im, edges, info.num_vertices);
    auto dev = make_ooc_dev();
    WriteEdgeFile(*dev, "input", edges);
    OutOfCoreConfig oc;
    oc.threads = 2;
    oc.io_unit_bytes = 8 << 10;
    OutOfCoreEngine<WccAlgorithm> b(oc, *dev, *dev, *dev, "input", info);
    EXPECT_EQ(RunWcc(a).labels, RunWcc(b).labels);
  }
  {  // BFS levels identical.
    InMemoryEngine<BfsAlgorithm> a(im, edges, info.num_vertices);
    auto dev = make_ooc_dev();
    WriteEdgeFile(*dev, "input", edges);
    OutOfCoreConfig oc;
    oc.threads = 2;
    oc.io_unit_bytes = 8 << 10;
    OutOfCoreEngine<BfsAlgorithm> b(oc, *dev, *dev, *dev, "input", info);
    EXPECT_EQ(RunBfs(a, 0).levels, RunBfs(b, 0).levels);
  }
  {  // PageRank within float tolerance.
    InMemoryEngine<PageRankAlgorithm> a(im, edges, info.num_vertices);
    auto dev = make_ooc_dev();
    WriteEdgeFile(*dev, "input", edges);
    OutOfCoreConfig oc;
    oc.threads = 2;
    oc.io_unit_bytes = 8 << 10;
    OutOfCoreEngine<PageRankAlgorithm> b(oc, *dev, *dev, *dev, "input", info);
    PageRankResult ra = RunPageRank(a, 5);
    PageRankResult rb = RunPageRank(b, 5);
    for (uint64_t v = 0; v < info.num_vertices; ++v) {
      ASSERT_NEAR(ra.ranks[v], rb.ranks[v], 1e-5) << v;
    }
  }
}

TEST(EngineInvariants, InputOrderIrrelevant) {
  EdgeList edges = FamilyGraph("rmat", 79);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<WccAlgorithm> a(config, edges, info.num_vertices);
  WccResult ra = RunWcc(a);
  EdgeList permuted = edges;
  PermuteEdges(permuted, 1234);
  InMemoryEngine<WccAlgorithm> b(config, permuted, info.num_vertices);
  EXPECT_EQ(ra.labels, RunWcc(b).labels);
}

TEST(EngineInvariants, IterationLogSumsToTotals) {
  EdgeList edges = FamilyGraph("rmat", 83);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<WccAlgorithm> engine(config, edges, info.num_vertices);
  WccResult r = RunWcc(engine);
  uint64_t edges_sum = 0;
  uint64_t updates_sum = 0;
  for (const auto& it : r.stats.per_iteration) {
    edges_sum += it.edges_streamed;
    updates_sum += it.updates_generated;
  }
  EXPECT_EQ(edges_sum, r.stats.edges_streamed);
  EXPECT_EQ(updates_sum, r.stats.updates_generated);
  EXPECT_EQ(r.stats.per_iteration.size(), r.stats.iterations);
}

}  // namespace
}  // namespace xstream
