// The multi-job scheduler (src/scheduler/): shared edge scans across
// concurrent jobs, partition-boundary admission and cancellation, budget
// re-splits, and cross-thread Submit/Poll/Wait/Cancel (the randomized stress
// test doubles as the ThreadSanitizer target in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "algorithms/wcc.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "scheduler/algo_jobs.h"
#include "scheduler/scan_source.h"
#include "scheduler/scheduler.h"
#include "storage/sim_device.h"
#include "util/env.h"

namespace xstream {
namespace {

EdgeList TestGraph(uint64_t seed, uint32_t scale = 9) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// A scheduler over a device scan source on simulated disks, plus the
// reference oracles for the test graph.
struct DeviceHarness {
  explicit DeviceHarness(const EdgeList& graph_edges, uint32_t partitions = 4,
                         int threads = NumCores())
      : pool(threads),
        edges(graph_edges),
        info(ScanEdges(edges)),
        layout(info.num_vertices, partitions),
        edge_dev("edges", DeviceProfile::Instant()),
        update_dev("updates", DeviceProfile::Instant()),
        vertex_dev("vertices", DeviceProfile::Instant()) {
    WriteEdgeFile(edge_dev, "input", edges);
    DeviceScanSource::Options sopts;
    sopts.io_unit_bytes = 16 * 1024;
    source = std::make_unique<DeviceScanSource>(pool, layout, sopts, edge_dev, "input");
  }

  DeviceJobConfig SpillHeavyConfig() const {
    DeviceJobConfig cfg;
    cfg.io_unit_bytes = 16 * 1024;
    // Tiny budget + disabled memory optimizations: vertex files, update
    // spills and multi-chunk gathers all get exercised.
    cfg.allow_vertex_memory_opt = false;
    cfg.allow_update_memory_opt = false;
    return cfg;
  }

  std::shared_ptr<JobOutput> Submit(JobScheduler& sched, const std::string& spec,
                                    const DeviceJobConfig& cfg, std::vector<JobId>* ids) {
    auto out = std::make_shared<JobOutput>();
    JobId id = sched.Submit(MakeDeviceJob(ParseJobSpec(spec), *source, update_dev, vertex_dev,
                                          cfg, "job" + std::to_string(next_prefix_++), out));
    if (ids != nullptr) {
      ids->push_back(id);
    }
    return out;
  }

  ThreadPool pool;
  EdgeList edges;
  GraphInfo info;
  PartitionLayout layout;
  SimDevice edge_dev;
  SimDevice update_dev;
  SimDevice vertex_dev;
  std::unique_ptr<DeviceScanSource> source;
  int next_prefix_ = 0;
};

void ExpectWccMatches(const JobOutput& out, const EdgeList& edges, uint64_t n) {
  std::vector<VertexId> expected = ReferenceWcc(edges, n);
  ASSERT_EQ(out.per_vertex.size(), n);
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_EQ(out.per_vertex[v], static_cast<double>(expected[v])) << "vertex " << v;
  }
}

void ExpectBfsMatches(const JobOutput& out, const ReferenceGraph& g, VertexId root) {
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, root);
  ASSERT_EQ(out.per_vertex.size(), expected.size());
  for (uint64_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(out.per_vertex[v], static_cast<double>(expected[v])) << "vertex " << v;
  }
}

TEST(SchedulerTest, DeviceJobsMatchReferences) {
  EdgeList edges = TestGraph(7);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);

  JobScheduler sched(*h.source);
  std::vector<JobId> ids;
  auto wcc = h.Submit(sched, "wcc", h.SpillHeavyConfig(), &ids);
  auto bfs = h.Submit(sched, "bfs:src=0", h.SpillHeavyConfig(), &ids);
  auto pagerank = h.Submit(sched, "pagerank:iters=5", h.SpillHeavyConfig(), &ids);
  auto sssp = h.Submit(sched, "sssp:src=0", h.SpillHeavyConfig(), &ids);
  sched.RunAll();

  for (JobId id : ids) {
    EXPECT_EQ(sched.Poll(id), JobState::kDone);
  }
  ExpectWccMatches(*wcc, edges, h.info.num_vertices);
  ExpectBfsMatches(*bfs, g, 0);
  std::vector<double> pr = ReferencePageRank(g, 5);
  for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
    EXPECT_NEAR(pagerank->per_vertex[v], pr[v], 1e-4) << "vertex " << v;
  }
  std::vector<double> dist = ReferenceSssp(g, 0);
  for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
    if (std::isfinite(dist[v])) {
      EXPECT_NEAR(sssp->per_vertex[v], dist[v], 1e-3) << "vertex " << v;
    } else {
      EXPECT_FALSE(std::isfinite(sssp->per_vertex[v])) << "vertex " << v;
    }
  }

  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.jobs_submitted, 4u);
  EXPECT_EQ(stats.jobs_completed, 4u);
  EXPECT_GT(stats.scans_saved, 0u);
  EXPECT_GT(stats.shared_scan_bytes, 0u);
  // Per-job stats flowed through: each job streamed edges and has run time.
  EXPECT_GT(wcc->stats.edges_streamed, 0u);
  EXPECT_GT(sched.report(ids[0]).run_seconds, 0.0);
}

TEST(SchedulerTest, MemoryJobsMatchReferences) {
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  ThreadPool pool(NumCores());
  PartitionLayout layout(info.num_vertices, 8);
  MemoryScanSource source(pool, layout, edges);

  JobScheduler sched(source);
  auto wcc = std::make_shared<JobOutput>();
  auto bfs = std::make_shared<JobOutput>();
  JobId wcc_id = sched.Submit(MakeMemoryJob(ParseJobSpec("wcc"), source, wcc));
  JobId bfs_id = sched.Submit(MakeMemoryJob(ParseJobSpec("bfs:src=3"), source, bfs));
  EXPECT_TRUE(sched.Wait(wcc_id));
  EXPECT_TRUE(sched.Wait(bfs_id));

  ExpectWccMatches(*wcc, edges, info.num_vertices);
  ExpectBfsMatches(*bfs, g, 3);
  EXPECT_GT(sched.stats().scans_saved, 0u);
}

TEST(SchedulerTest, SharedScanKeepsEdgeReadsFlat) {
  EdgeList edges = TestGraph(13);

  // One job alone, then four identical jobs: WCC's round count is fixed by
  // the graph, so a shared scan must read ~the same edge volume either way.
  uint64_t solo_bytes = 0;
  {
    DeviceHarness h(edges);
    JobScheduler sched(*h.source);
    h.Submit(sched, "wcc", h.SpillHeavyConfig(), nullptr);
    sched.RunAll();
    solo_bytes = h.edge_dev.stats().bytes_read;
  }
  {
    DeviceHarness h(edges);
    JobScheduler sched(*h.source);
    std::vector<std::shared_ptr<JobOutput>> outs;
    for (int i = 0; i < 4; ++i) {
      outs.push_back(h.Submit(sched, "wcc", h.SpillHeavyConfig(), nullptr));
    }
    sched.RunAll();
    uint64_t shared_bytes = h.edge_dev.stats().bytes_read;
    EXPECT_LE(shared_bytes, solo_bytes + solo_bytes / 4)
        << "4 concurrent jobs should share scans, not quadruple them";
    EXPECT_EQ(sched.stats().jobs_completed, 4u);
    EXPECT_GT(sched.stats().scans_saved, 0u);
    for (const auto& out : outs) {
      ExpectWccMatches(*out, edges, h.info.num_vertices);
    }
  }
}

TEST(SchedulerTest, LateAdmissionJoinsAtNextPartitionBoundary) {
  EdgeList edges = TestGraph(17);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);

  JobScheduler sched(*h.source);
  std::vector<JobId> ids;
  auto wcc = h.Submit(sched, "wcc", h.SpillHeavyConfig(), &ids);
  // Drive the first job mid-round, then submit a second: it must join at
  // the next partition boundary (not a global round start) and still be
  // correct after its own full cycles.
  ASSERT_TRUE(sched.PumpOne());
  ASSERT_TRUE(sched.PumpOne());
  ASSERT_TRUE(sched.PumpOne());
  auto bfs = h.Submit(sched, "bfs:src=1", h.SpillHeavyConfig(), &ids);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kQueued);
  sched.RunAll();

  EXPECT_EQ(sched.Poll(ids[0]), JobState::kDone);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kDone);
  ExpectWccMatches(*wcc, edges, h.info.num_vertices);
  ExpectBfsMatches(*bfs, g, 1);
  EXPECT_GE(sched.report(ids[1]).rounds, 1u);
  EXPECT_GT(sched.stats().scans_saved, 0u);  // the two jobs overlapped
}

TEST(SchedulerTest, CancelRetiresQueuedAndRunningJobs) {
  EdgeList edges = TestGraph(19);
  DeviceHarness h(edges);

  JobScheduler sched(*h.source);
  std::vector<JobId> ids;
  auto wcc = h.Submit(sched, "wcc", h.SpillHeavyConfig(), &ids);
  auto doomed_running = h.Submit(sched, "pagerank:iters=50", h.SpillHeavyConfig(), &ids);
  auto doomed_queued = h.Submit(sched, "bfs:src=0", h.SpillHeavyConfig(), &ids);

  // Cancel one job before it ever runs.
  sched.Cancel(ids[2]);
  // Start rounds, then cancel a running job mid-flight.
  ASSERT_TRUE(sched.PumpOne());
  ASSERT_TRUE(sched.PumpOne());
  sched.Cancel(ids[1]);
  sched.RunAll();

  EXPECT_EQ(sched.Poll(ids[0]), JobState::kDone);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kCancelled);
  EXPECT_EQ(sched.Poll(ids[2]), JobState::kCancelled);
  EXPECT_FALSE(sched.Wait(ids[1]));
  ExpectWccMatches(*wcc, edges, h.info.num_vertices);
  EXPECT_EQ(sched.stats().jobs_cancelled, 2u);
  // Cancelled jobs never finalize: their outputs stay empty.
  EXPECT_TRUE(doomed_running->per_vertex.empty());
  EXPECT_TRUE(doomed_queued->per_vertex.empty());
  // All device I/O drained despite the mid-round abandon.
  EXPECT_EQ(h.update_dev.executor().in_flight(), 0u);
}

TEST(SchedulerTest, BudgetResplitsAsHybridJobsComeAndGo) {
  EdgeList edges = TestGraph(23);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);

  DeviceJobConfig cfg = h.SpillHeavyConfig();
  cfg.hybrid = true;

  // Probe one job's fixed footprint so the budget leaves a meaningful pin
  // pool for two concurrent jobs.
  uint64_t fixed = 0;
  {
    auto probe = MakeDeviceJob(ParseJobSpec("wcc"), *h.source, h.update_dev, h.vertex_dev,
                               cfg, "probe", nullptr);
    fixed = probe->FixedBytes();
  }
  SchedulerOptions opts;
  opts.memory_budget_bytes = 2 * fixed + (4u << 20);

  JobScheduler sched(*h.source, opts);
  std::vector<JobId> ids;
  auto pagerank = h.Submit(sched, "pagerank:iters=8", cfg, &ids);
  auto bfs = h.Submit(sched, "bfs:src=0", cfg, &ids);
  sched.RunAll();

  EXPECT_EQ(sched.Poll(ids[0]), JobState::kDone);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kDone);
  ExpectBfsMatches(*bfs, g, 0);
  std::vector<double> pr = ReferencePageRank(g, 8);
  for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
    EXPECT_NEAR(pagerank->per_vertex[v], pr[v], 1e-4) << "vertex " << v;
  }
  // Admission + at least one retirement while the other job was running
  // must each have re-split the pin pool.
  EXPECT_GE(sched.stats().budget_resplits, 2u);
  // The longer-running hybrid job got pin budget and used it.
  EXPECT_GT(pagerank->stats.resident_partition_count, 0u);
}

TEST(SchedulerTest, RandomizedSubmitCancelStressAgainstOracles) {
  EdgeList edges = TestGraph(29, /*scale=*/8);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);
  std::vector<uint32_t> bfs_oracle[4];
  for (VertexId root = 0; root < 4; ++root) {
    bfs_oracle[root] = ReferenceBfsLevels(g, root);
  }
  std::vector<VertexId> wcc_oracle = ReferenceWcc(edges, h.info.num_vertices);

  JobScheduler sched(*h.source);
  std::atomic<bool> stop{false};
  std::thread driver([&sched, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!sched.PumpOne()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  struct Submitted {
    JobId id;
    bool is_wcc;
    VertexId root;
    std::shared_ptr<JobOutput> out;
    bool cancelled;
  };
  std::mutex submitted_mu;
  std::vector<Submitted> submitted;

  auto submitter = [&](uint64_t seed) {
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 6; ++i) {
      bool is_wcc = (rng() & 1) != 0;
      VertexId root = static_cast<VertexId>(rng() % 4);
      std::string spec = is_wcc ? "wcc" : ("bfs:src=" + std::to_string(root));
      auto out = std::make_shared<JobOutput>();
      DeviceJobConfig cfg = h.SpillHeavyConfig();
      JobId id;
      {
        std::lock_guard<std::mutex> lk(submitted_mu);
        id = sched.Submit(MakeDeviceJob(ParseJobSpec(spec), *h.source, h.update_dev,
                                        h.vertex_dev, cfg,
                                        "stress" + std::to_string(seed) + "-" +
                                            std::to_string(i),
                                        out));
        submitted.push_back(Submitted{id, is_wcc, root, out, false});
      }
      std::this_thread::sleep_for(std::chrono::microseconds(rng() % 2000));
      if (rng() % 3 == 0) {
        sched.Cancel(id);
        std::lock_guard<std::mutex> lk(submitted_mu);
        for (Submitted& s : submitted) {
          if (s.id == id) {
            s.cancelled = true;
          }
        }
      }
    }
  };
  std::thread t1(submitter, 101);
  std::thread t2(submitter, 202);
  t1.join();
  t2.join();

  for (const Submitted& s : submitted) {
    sched.Wait(s.id);  // cross-thread wait while the driver pumps
  }
  stop.store(true, std::memory_order_release);
  driver.join();

  for (const Submitted& s : submitted) {
    JobState state = sched.Poll(s.id);
    if (s.cancelled) {
      EXPECT_TRUE(state == JobState::kCancelled || state == JobState::kDone);
    } else {
      EXPECT_EQ(state, JobState::kDone);
    }
    if (state != JobState::kDone) {
      continue;
    }
    ASSERT_EQ(s.out->per_vertex.size(), h.info.num_vertices);
    if (s.is_wcc) {
      for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
        EXPECT_EQ(s.out->per_vertex[v], static_cast<double>(wcc_oracle[v]));
      }
    } else {
      for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
        EXPECT_EQ(s.out->per_vertex[v], static_cast<double>(bfs_oracle[s.root][v]));
      }
    }
  }
  EXPECT_EQ(h.update_dev.executor().in_flight(), 0u);
}

TEST(SchedulerTest, JobSpecParsing) {
  JobSpec spec = ParseJobSpec("bfs:src=42:name=frontier");
  EXPECT_EQ(spec.algo, "bfs");
  EXPECT_EQ(spec.root, 42u);
  EXPECT_EQ(spec.name, "frontier");
  std::vector<JobSpec> list = ParseJobList("pagerank:iters=3,wcc,sssp:src=7");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].iterations, 3u);
  EXPECT_EQ(list[1].algo, "wcc");
  EXPECT_EQ(list[2].root, 7u);
}

}  // namespace
}  // namespace xstream
