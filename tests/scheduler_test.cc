// The multi-job scheduler (src/scheduler/): shared edge scans across
// concurrent jobs, partition-boundary admission and cancellation, budget
// re-splits, and cross-thread Submit/Poll/Wait/Cancel (the randomized stress
// test doubles as the ThreadSanitizer target in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "algorithms/wcc.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "scheduler/algo_jobs.h"
#include "scheduler/scan_source.h"
#include "scheduler/scheduler.h"
#include "storage/sim_device.h"
#include "util/env.h"

namespace xstream {
namespace {

EdgeList TestGraph(uint64_t seed, uint32_t scale = 9) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// A scheduler over a device scan source on simulated disks, plus the
// reference oracles for the test graph.
struct DeviceHarness {
  explicit DeviceHarness(const EdgeList& graph_edges, uint32_t partitions = 4,
                         int threads = NumCores())
      : pool(threads),
        edges(graph_edges),
        info(ScanEdges(edges)),
        layout(info.num_vertices, partitions),
        edge_dev("edges", DeviceProfile::Instant()),
        update_dev("updates", DeviceProfile::Instant()),
        vertex_dev("vertices", DeviceProfile::Instant()) {
    WriteEdgeFile(edge_dev, "input", edges);
    DeviceScanSource::Options sopts;
    sopts.io_unit_bytes = 16 * 1024;
    source = std::make_unique<DeviceScanSource>(pool, layout, sopts, edge_dev, "input");
  }

  DeviceJobConfig SpillHeavyConfig() const {
    DeviceJobConfig cfg;
    cfg.io_unit_bytes = 16 * 1024;
    // Tiny budget + disabled memory optimizations: vertex files, update
    // spills and multi-chunk gathers all get exercised.
    cfg.allow_vertex_memory_opt = false;
    cfg.allow_update_memory_opt = false;
    return cfg;
  }

  std::shared_ptr<JobOutput> Submit(JobScheduler& sched, const std::string& spec,
                                    const DeviceJobConfig& cfg, std::vector<JobId>* ids) {
    auto out = std::make_shared<JobOutput>();
    JobId id = sched.Submit(MakeDeviceJob(ParseJobSpec(spec), *source, update_dev, vertex_dev,
                                          cfg, "job" + std::to_string(next_prefix_++), out));
    if (ids != nullptr) {
      ids->push_back(id);
    }
    return out;
  }

  ThreadPool pool;
  EdgeList edges;
  GraphInfo info;
  PartitionLayout layout;
  SimDevice edge_dev;
  SimDevice update_dev;
  SimDevice vertex_dev;
  std::unique_ptr<DeviceScanSource> source;
  int next_prefix_ = 0;
};

void ExpectWccMatches(const JobOutput& out, const EdgeList& edges, uint64_t n) {
  std::vector<VertexId> expected = ReferenceWcc(edges, n);
  ASSERT_EQ(out.per_vertex.size(), n);
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_EQ(out.per_vertex[v], static_cast<double>(expected[v])) << "vertex " << v;
  }
}

void ExpectBfsMatches(const JobOutput& out, const ReferenceGraph& g, VertexId root) {
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, root);
  ASSERT_EQ(out.per_vertex.size(), expected.size());
  for (uint64_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(out.per_vertex[v], static_cast<double>(expected[v])) << "vertex " << v;
  }
}

TEST(SchedulerTest, DeviceJobsMatchReferences) {
  EdgeList edges = TestGraph(7);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);

  JobScheduler sched(*h.source);
  std::vector<JobId> ids;
  auto wcc = h.Submit(sched, "wcc", h.SpillHeavyConfig(), &ids);
  auto bfs = h.Submit(sched, "bfs:src=0", h.SpillHeavyConfig(), &ids);
  auto pagerank = h.Submit(sched, "pagerank:iters=5", h.SpillHeavyConfig(), &ids);
  auto sssp = h.Submit(sched, "sssp:src=0", h.SpillHeavyConfig(), &ids);
  sched.RunAll();

  for (JobId id : ids) {
    EXPECT_EQ(sched.Poll(id), JobState::kDone);
  }
  ExpectWccMatches(*wcc, edges, h.info.num_vertices);
  ExpectBfsMatches(*bfs, g, 0);
  std::vector<double> pr = ReferencePageRank(g, 5);
  for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
    EXPECT_NEAR(pagerank->per_vertex[v], pr[v], 1e-4) << "vertex " << v;
  }
  std::vector<double> dist = ReferenceSssp(g, 0);
  for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
    if (std::isfinite(dist[v])) {
      EXPECT_NEAR(sssp->per_vertex[v], dist[v], 1e-3) << "vertex " << v;
    } else {
      EXPECT_FALSE(std::isfinite(sssp->per_vertex[v])) << "vertex " << v;
    }
  }

  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.jobs_submitted, 4u);
  EXPECT_EQ(stats.jobs_completed, 4u);
  EXPECT_GT(stats.scans_saved, 0u);
  EXPECT_GT(stats.shared_scan_bytes, 0u);
  // Per-job stats flowed through: each job streamed edges and has run time.
  EXPECT_GT(wcc->stats.edges_streamed, 0u);
  EXPECT_GT(sched.report(ids[0]).run_seconds, 0.0);
}

TEST(SchedulerTest, MemoryJobsMatchReferences) {
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  ThreadPool pool(NumCores());
  PartitionLayout layout(info.num_vertices, 8);
  MemoryScanSource source(pool, layout, edges);

  JobScheduler sched(source);
  auto wcc = std::make_shared<JobOutput>();
  auto bfs = std::make_shared<JobOutput>();
  JobId wcc_id = sched.Submit(MakeMemoryJob(ParseJobSpec("wcc"), source, wcc));
  JobId bfs_id = sched.Submit(MakeMemoryJob(ParseJobSpec("bfs:src=3"), source, bfs));
  EXPECT_TRUE(sched.Wait(wcc_id));
  EXPECT_TRUE(sched.Wait(bfs_id));

  ExpectWccMatches(*wcc, edges, info.num_vertices);
  ExpectBfsMatches(*bfs, g, 3);
  EXPECT_GT(sched.stats().scans_saved, 0u);
}

TEST(SchedulerTest, SharedScanKeepsEdgeReadsFlat) {
  EdgeList edges = TestGraph(13);

  // One job alone, then four identical jobs: WCC's round count is fixed by
  // the graph, so a shared scan must read ~the same edge volume either way.
  uint64_t solo_bytes = 0;
  {
    DeviceHarness h(edges);
    JobScheduler sched(*h.source);
    h.Submit(sched, "wcc", h.SpillHeavyConfig(), nullptr);
    sched.RunAll();
    solo_bytes = h.edge_dev.stats().bytes_read;
  }
  {
    DeviceHarness h(edges);
    JobScheduler sched(*h.source);
    std::vector<std::shared_ptr<JobOutput>> outs;
    for (int i = 0; i < 4; ++i) {
      outs.push_back(h.Submit(sched, "wcc", h.SpillHeavyConfig(), nullptr));
    }
    sched.RunAll();
    uint64_t shared_bytes = h.edge_dev.stats().bytes_read;
    EXPECT_LE(shared_bytes, solo_bytes + solo_bytes / 4)
        << "4 concurrent jobs should share scans, not quadruple them";
    EXPECT_EQ(sched.stats().jobs_completed, 4u);
    EXPECT_GT(sched.stats().scans_saved, 0u);
    for (const auto& out : outs) {
      ExpectWccMatches(*out, edges, h.info.num_vertices);
    }
  }
}

TEST(SchedulerTest, LateAdmissionJoinsAtNextPartitionBoundary) {
  EdgeList edges = TestGraph(17);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);

  JobScheduler sched(*h.source);
  std::vector<JobId> ids;
  auto wcc = h.Submit(sched, "wcc", h.SpillHeavyConfig(), &ids);
  // Drive the first job mid-round, then submit a second: it must join at
  // the next partition boundary (not a global round start) and still be
  // correct after its own full cycles.
  ASSERT_TRUE(sched.PumpOne());
  ASSERT_TRUE(sched.PumpOne());
  ASSERT_TRUE(sched.PumpOne());
  auto bfs = h.Submit(sched, "bfs:src=1", h.SpillHeavyConfig(), &ids);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kQueued);
  sched.RunAll();

  EXPECT_EQ(sched.Poll(ids[0]), JobState::kDone);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kDone);
  ExpectWccMatches(*wcc, edges, h.info.num_vertices);
  ExpectBfsMatches(*bfs, g, 1);
  EXPECT_GE(sched.report(ids[1]).rounds, 1u);
  EXPECT_GT(sched.stats().scans_saved, 0u);  // the two jobs overlapped
}

TEST(SchedulerTest, CancelRetiresQueuedAndRunningJobs) {
  EdgeList edges = TestGraph(19);
  DeviceHarness h(edges);

  JobScheduler sched(*h.source);
  std::vector<JobId> ids;
  auto wcc = h.Submit(sched, "wcc", h.SpillHeavyConfig(), &ids);
  auto doomed_running = h.Submit(sched, "pagerank:iters=50", h.SpillHeavyConfig(), &ids);
  auto doomed_queued = h.Submit(sched, "bfs:src=0", h.SpillHeavyConfig(), &ids);

  // Cancel one job before it ever runs.
  sched.Cancel(ids[2]);
  // Start rounds, then cancel a running job mid-flight.
  ASSERT_TRUE(sched.PumpOne());
  ASSERT_TRUE(sched.PumpOne());
  sched.Cancel(ids[1]);
  sched.RunAll();

  EXPECT_EQ(sched.Poll(ids[0]), JobState::kDone);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kCancelled);
  EXPECT_EQ(sched.Poll(ids[2]), JobState::kCancelled);
  EXPECT_FALSE(sched.Wait(ids[1]));
  ExpectWccMatches(*wcc, edges, h.info.num_vertices);
  EXPECT_EQ(sched.stats().jobs_cancelled, 2u);
  // Cancelled jobs never finalize: their outputs stay empty.
  EXPECT_TRUE(doomed_running->per_vertex.empty());
  EXPECT_TRUE(doomed_queued->per_vertex.empty());
  // All device I/O drained despite the mid-round abandon.
  EXPECT_EQ(h.update_dev.executor().in_flight(), 0u);
}

TEST(SchedulerTest, BudgetResplitsAsHybridJobsComeAndGo) {
  EdgeList edges = TestGraph(23);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);

  DeviceJobConfig cfg = h.SpillHeavyConfig();
  cfg.hybrid = true;

  // Probe one job's fixed footprint so the budget leaves a meaningful pin
  // pool for two concurrent jobs.
  uint64_t fixed = 0;
  {
    auto probe = MakeDeviceJob(ParseJobSpec("wcc"), *h.source, h.update_dev, h.vertex_dev,
                               cfg, "probe", nullptr);
    fixed = probe->FixedBytes();
  }
  SchedulerOptions opts;
  opts.memory_budget_bytes = 2 * fixed + (4u << 20);

  JobScheduler sched(*h.source, opts);
  std::vector<JobId> ids;
  auto pagerank = h.Submit(sched, "pagerank:iters=8", cfg, &ids);
  auto bfs = h.Submit(sched, "bfs:src=0", cfg, &ids);
  sched.RunAll();

  EXPECT_EQ(sched.Poll(ids[0]), JobState::kDone);
  EXPECT_EQ(sched.Poll(ids[1]), JobState::kDone);
  ExpectBfsMatches(*bfs, g, 0);
  std::vector<double> pr = ReferencePageRank(g, 8);
  for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
    EXPECT_NEAR(pagerank->per_vertex[v], pr[v], 1e-4) << "vertex " << v;
  }
  // Admission + at least one retirement while the other job was running
  // must each have re-split the pin pool.
  EXPECT_GE(sched.stats().budget_resplits, 2u);
  // The longer-running hybrid job got pin budget and used it.
  EXPECT_GT(pagerank->stats.resident_partition_count, 0u);
}

TEST(SchedulerTest, RandomizedSubmitCancelStressAgainstOracles) {
  EdgeList edges = TestGraph(29, /*scale=*/8);
  DeviceHarness h(edges);
  ReferenceGraph g(edges, h.info.num_vertices);
  std::vector<uint32_t> bfs_oracle[4];
  for (VertexId root = 0; root < 4; ++root) {
    bfs_oracle[root] = ReferenceBfsLevels(g, root);
  }
  std::vector<VertexId> wcc_oracle = ReferenceWcc(edges, h.info.num_vertices);

  JobScheduler sched(*h.source);
  std::atomic<bool> stop{false};
  std::thread driver([&sched, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!sched.PumpOne()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  struct Submitted {
    JobId id;
    bool is_wcc;
    VertexId root;
    std::shared_ptr<JobOutput> out;
    bool cancelled;
  };
  std::mutex submitted_mu;
  std::vector<Submitted> submitted;

  auto submitter = [&](uint64_t seed) {
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 6; ++i) {
      bool is_wcc = (rng() & 1) != 0;
      VertexId root = static_cast<VertexId>(rng() % 4);
      std::string spec = is_wcc ? "wcc" : ("bfs:src=" + std::to_string(root));
      auto out = std::make_shared<JobOutput>();
      DeviceJobConfig cfg = h.SpillHeavyConfig();
      JobId id;
      {
        std::lock_guard<std::mutex> lk(submitted_mu);
        id = sched.Submit(MakeDeviceJob(ParseJobSpec(spec), *h.source, h.update_dev,
                                        h.vertex_dev, cfg,
                                        "stress" + std::to_string(seed) + "-" +
                                            std::to_string(i),
                                        out));
        submitted.push_back(Submitted{id, is_wcc, root, out, false});
      }
      std::this_thread::sleep_for(std::chrono::microseconds(rng() % 2000));
      if (rng() % 3 == 0) {
        sched.Cancel(id);
        std::lock_guard<std::mutex> lk(submitted_mu);
        for (Submitted& s : submitted) {
          if (s.id == id) {
            s.cancelled = true;
          }
        }
      }
    }
  };
  std::thread t1(submitter, 101);
  std::thread t2(submitter, 202);
  t1.join();
  t2.join();

  for (const Submitted& s : submitted) {
    sched.Wait(s.id);  // cross-thread wait while the driver pumps
  }
  stop.store(true, std::memory_order_release);
  driver.join();

  for (const Submitted& s : submitted) {
    JobState state = sched.Poll(s.id);
    if (s.cancelled) {
      EXPECT_TRUE(state == JobState::kCancelled || state == JobState::kDone);
    } else {
      EXPECT_EQ(state, JobState::kDone);
    }
    if (state != JobState::kDone) {
      continue;
    }
    ASSERT_EQ(s.out->per_vertex.size(), h.info.num_vertices);
    if (s.is_wcc) {
      for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
        EXPECT_EQ(s.out->per_vertex[v], static_cast<double>(wcc_oracle[v]));
      }
    } else {
      for (uint64_t v = 0; v < h.info.num_vertices; ++v) {
        EXPECT_EQ(s.out->per_vertex[v], static_cast<double>(bfs_oracle[s.root][v]));
      }
    }
  }
  EXPECT_EQ(h.update_dev.executor().in_flight(), 0u);
}

// ---- Fair-share admission ---------------------------------------------------

// Helpers for the fair-share tests: cheap in-memory jobs on a small graph,
// driven one admission slot at a time (max_active_jobs=1 makes admission
// order directly observable as the order jobs enter kRunning).
struct FairShareHarness {
  explicit FairShareHarness(SchedulerOptions opts, uint64_t seed = 31)
      : edges(TestGraph(seed, /*scale=*/8)),
        info(ScanEdges(edges)),
        pool(2),
        layout(info.num_vertices, 4),
        source(pool, layout, edges),
        sched(source, opts) {}

  JobId Submit(const std::string& tenant, const std::string& spec = "bfs:src=0") {
    auto out = std::make_shared<JobOutput>();
    SubmitOutcome o = sched.TrySubmit(MakeMemoryJob(ParseJobSpec(spec), source, out), tenant);
    EXPECT_TRUE(o.accepted) << o.reason;
    tenant_of[o.id] = tenant;
    return o.id;
  }

  // Drives everything, recording each job's tenant in the order the jobs
  // entered kRunning.
  std::vector<std::string> DriveRecordingAdmissions() {
    std::vector<std::string> order;
    std::set<JobId> seen;
    bool more = true;
    while (more) {
      more = sched.PumpOne();
      for (const JobReport& r : sched.reports()) {
        if (r.state != JobState::kQueued && seen.insert(r.id).second) {
          order.push_back(tenant_of[r.id]);
        }
      }
    }
    return order;
  }

  EdgeList edges;
  GraphInfo info;
  ThreadPool pool;
  PartitionLayout layout;
  MemoryScanSource source;
  JobScheduler sched;
  std::map<JobId, std::string> tenant_of;
};

TEST(SchedulerFairShareTest, WeightedSharesConvergeToConfiguredRatios) {
  SchedulerOptions opts;
  opts.max_active_jobs = 1;
  TenantQuota heavy;
  heavy.weight = 3.0;
  opts.tenants["heavy"] = heavy;
  FairShareHarness h(opts);

  // Both tenants flood: 8 jobs each, interleaved submissions.
  for (int i = 0; i < 8; ++i) {
    h.Submit("heavy");
    h.Submit("light");
  }
  std::vector<std::string> order = h.DriveRecordingAdmissions();
  ASSERT_EQ(order.size(), 16u);

  // Weighted deficit with conserved credit admits exactly 3 heavy per light
  // while both stay backlogged: 6 of the first 8 slots are heavy.
  int heavy_in_first_8 = 0;
  for (int i = 0; i < 8; ++i) {
    heavy_in_first_8 += order[static_cast<size_t>(i)] == "heavy" ? 1 : 0;
  }
  EXPECT_EQ(heavy_in_first_8, 6) << "admission order diverged from the 3:1 weights";

  for (const auto& [id, tenant] : h.tenant_of) {
    EXPECT_EQ(h.sched.Poll(id), JobState::kDone);
    EXPECT_EQ(h.sched.report(id).tenant, tenant);  // tenant surfaces in reports
  }
  // tenant_stats mirrors the outcome; conserved deficits stay bounded.
  for (const TenantStats& t : h.sched.tenant_stats()) {
    EXPECT_EQ(t.completed, 8u) << t.tenant;
    EXPECT_EQ(t.running, 0u) << t.tenant;
    EXPECT_LT(std::abs(t.deficit), 4.0) << t.tenant;
  }
  // The JSON payload carries the tenant key (the /v1 and /jobs consumers).
  EXPECT_NE(JobReportsToJson(h.sched.reports()).find("\"tenant\":\"heavy\""),
            std::string::npos);
}

TEST(SchedulerFairShareTest, FloodingTenantCannotStarveAnother) {
  SchedulerOptions opts;
  opts.max_active_jobs = 1;
  FairShareHarness h(opts);

  // Tenant "flood" piles up a deep backlog and gets its first job running.
  std::vector<JobId> flood;
  for (int i = 0; i < 10; ++i) {
    flood.push_back(h.Submit("flood"));
  }
  ASSERT_TRUE(h.sched.PumpOne());
  ASSERT_EQ(h.sched.Poll(flood[0]), JobState::kRunning);

  // A late-arriving equal-weight tenant must be admitted within
  // ceil(total_weight / weight) = 2 admission slots — bounded wait, no
  // aging, regardless of the 9 flooding jobs still queued.
  JobId victim = h.Submit("victim");
  std::vector<std::string> order = h.DriveRecordingAdmissions();
  size_t victim_pos = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "victim") {
      victim_pos = i;
      break;
    }
  }
  // order[0] is the already-running flood job; the victim may be preceded by
  // at most one more flood admission.
  EXPECT_LE(victim_pos, 2u) << "victim waited " << victim_pos << " admissions";
  EXPECT_EQ(h.sched.Poll(victim), JobState::kDone);
  EXPECT_EQ(h.sched.stats().jobs_completed, 11u);
}

TEST(SchedulerFairShareTest, MaxRunningQuotaEnforcedAndReleasedOnRetirement) {
  SchedulerOptions opts;
  TenantQuota capped;
  capped.max_running = 2;
  opts.tenants["capped"] = capped;
  FairShareHarness h(opts);

  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(h.Submit("capped"));
  }
  // At every boundary the tenant holds at most 2 running slots, yet all 5
  // jobs eventually complete — retirement releases the quota.
  bool more = true;
  while (more) {
    more = h.sched.PumpOne();
    uint32_t running = 0;
    for (JobId id : ids) {
      running += h.sched.Poll(id) == JobState::kRunning ? 1 : 0;
    }
    EXPECT_LE(running, 2u);
  }
  for (JobId id : ids) {
    EXPECT_EQ(h.sched.Poll(id), JobState::kDone);
  }
  EXPECT_EQ(h.sched.stats().jobs_completed, 5u);
}

TEST(SchedulerFairShareTest, MaxQueuedQuotaRejectsAtSubmitAndRecovers) {
  SchedulerOptions opts;
  TenantQuota shallow;
  shallow.max_queued = 2;
  opts.tenants["shallow"] = shallow;
  FairShareHarness h(opts);

  h.Submit("shallow");
  h.Submit("shallow");
  auto out = std::make_shared<JobOutput>();
  SubmitOutcome rejected =
      h.sched.TrySubmit(MakeMemoryJob(ParseJobSpec("bfs:src=0"), h.source, out), "shallow");
  EXPECT_FALSE(rejected.accepted);
  EXPECT_NE(rejected.reason.find("queue full"), std::string::npos) << rejected.reason;
  EXPECT_EQ(h.sched.stats().jobs_rejected, 1u);

  // Draining the queue reopens it.
  h.sched.RunAll();
  JobId late = h.Submit("shallow");
  h.sched.RunAll();
  EXPECT_EQ(h.sched.Poll(late), JobState::kDone);
  for (const TenantStats& t : h.sched.tenant_stats()) {
    EXPECT_EQ(t.rejected, 1u);
    EXPECT_EQ(t.completed, 3u);
  }
}

TEST(SchedulerFairShareTest, MemoryShareQuotaBoundsPerJobFootprint) {
  EdgeList edges = TestGraph(37);
  DeviceHarness h(edges);
  DeviceJobConfig cfg = h.SpillHeavyConfig();
  uint64_t fixed = 0;
  {
    auto probe = MakeDeviceJob(ParseJobSpec("wcc"), *h.source, h.update_dev, h.vertex_dev,
                               cfg, "probe", nullptr);
    fixed = probe->FixedBytes();
  }
  SchedulerOptions opts;
  opts.memory_budget_bytes = 2 * fixed;
  TenantQuota small;
  small.memory_share = 0.25;  // cap = fixed / 2 < fixed: every job too big
  opts.tenants["small"] = small;

  JobScheduler sched(*h.source, opts);
  auto out = std::make_shared<JobOutput>();
  SubmitOutcome rejected = sched.TrySubmit(
      MakeDeviceJob(ParseJobSpec("wcc"), *h.source, h.update_dev, h.vertex_dev, cfg,
                    "small0", out),
      "small");
  EXPECT_FALSE(rejected.accepted);
  EXPECT_NE(rejected.reason.find("memory share"), std::string::npos) << rejected.reason;

  // An unconstrained tenant submits the same job shape successfully.
  auto ok_out = std::make_shared<JobOutput>();
  SubmitOutcome ok = sched.TrySubmit(
      MakeDeviceJob(ParseJobSpec("wcc"), *h.source, h.update_dev, h.vertex_dev, cfg,
                    "roomy0", ok_out),
      "roomy");
  ASSERT_TRUE(ok.accepted) << ok.reason;
  sched.RunAll();
  EXPECT_EQ(sched.Poll(ok.id), JobState::kDone);
  ExpectWccMatches(*ok_out, edges, h.info.num_vertices);
  EXPECT_EQ(sched.stats().jobs_rejected, 1u);
}

TEST(SchedulerTest, JobSpecParsing) {
  JobSpec spec = ParseJobSpec("bfs:src=42:name=frontier");
  EXPECT_EQ(spec.algo, "bfs");
  EXPECT_EQ(spec.root, 42u);
  EXPECT_EQ(spec.name, "frontier");
  std::vector<JobSpec> list = ParseJobList("pagerank:iters=3,wcc,sssp:src=7");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].iterations, 3u);
  EXPECT_EQ(list[1].algo, "wcc");
  EXPECT_EQ(list[2].root, 7u);
}

}  // namespace
}  // namespace xstream
