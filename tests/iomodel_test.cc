// Tests for the Fig 26 I/O-model calculators and their qualitative claims.
#include <gtest/gtest.h>

#include "iomodel/io_model.h"

namespace xstream {
namespace {

IoModelParams TwitterLike() {
  IoModelParams p;
  p.v = 41.7e6;
  p.e = 4.2e9;
  p.m = 2e9;
  p.b = 4e6;
  p.d = 16;
  return p;
}

TEST(IoModelTest, XStreamHasNoPreprocessing) {
  EXPECT_EQ(XStreamIoModel(TwitterLike()).preprocessing, 0.0);
  EXPECT_GT(GraphchiIoModel(TwitterLike()).preprocessing, 0.0);
  EXPECT_GT(SortRandomIoModel(TwitterLike()).preprocessing, 0.0);
}

TEST(IoModelTest, XStreamPartitionsScaleWithVerticesGraphchiWithEdges) {
  IoModelParams p = TwitterLike();
  IoModelCosts xs1 = XStreamIoModel(p);
  IoModelCosts gc1 = GraphchiIoModel(p);
  p.e *= 4;  // denser graph
  IoModelCosts xs2 = XStreamIoModel(p);
  IoModelCosts gc2 = GraphchiIoModel(p);
  EXPECT_EQ(xs1.partitions, xs2.partitions) << "X-Stream K depends on |V| only";
  EXPECT_GT(gc2.partitions, gc1.partitions) << "Graphchi shards grow with |E|";
}

TEST(IoModelTest, XStreamUsesFewerPartitionsOnDenseGraphs) {
  IoModelParams p = TwitterLike();
  p.e = p.v * 100;  // dense
  EXPECT_LT(XStreamIoModel(p).partitions, GraphchiIoModel(p).partitions);
}

TEST(IoModelTest, SortRandomTotalDominatedByRandomAccess) {
  IoModelCosts sr = SortRandomIoModel(TwitterLike());
  EXPECT_DOUBLE_EQ(sr.all_iterations, TwitterLike().v + TwitterLike().e);
  // Random access pays per-item, not per-block: orders of magnitude above
  // the streaming approaches.
  EXPECT_GT(sr.all_iterations, 100 * XStreamIoModel(TwitterLike()).all_iterations);
}

TEST(IoModelTest, IterationCostScalesWithDiameter) {
  IoModelParams p = TwitterLike();
  IoModelCosts low = XStreamIoModel(p);
  p.d = 160;
  IoModelCosts high = XStreamIoModel(p);
  EXPECT_GT(high.all_iterations, 9 * low.all_iterations);
  EXPECT_LT(high.all_iterations, 11 * low.all_iterations);
}

TEST(IoModelTest, MoreMemoryNeverHurtsXStream) {
  IoModelParams p = TwitterLike();
  IoModelCosts small = XStreamIoModel(p);
  p.m *= 8;
  IoModelCosts big = XStreamIoModel(p);
  EXPECT_LE(big.all_iterations, small.all_iterations);
  EXPECT_LE(big.partitions, small.partitions);
}

TEST(IoModelTest, UpdateVolumeDefaultsToEdges) {
  IoModelParams p = TwitterLike();
  IoModelCosts def = XStreamIoModel(p);
  p.u = p.e;
  IoModelCosts expl = XStreamIoModel(p);
  EXPECT_DOUBLE_EQ(def.one_iteration, expl.one_iteration);
}

}  // namespace
}  // namespace xstream
