// Tests for the threading substrate: thread pool, work stealing, and the
// concurrent appender of paper §4.1.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "threads/concurrent_appender.h"
#include "threads/thread_pool.h"
#include "threads/work_stealing.h"

namespace xstream {
namespace {

TEST(ThreadPoolTest, RunOnAllCoversAllThreadIds) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.RunOnAll([&](int tid) { hits[static_cast<size_t>(tid)].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, RunOnAllIsABarrierAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<int> phase{0};
  pool.RunOnAll([&](int) { phase.fetch_add(1); });
  EXPECT_EQ(phase.load(), 4);
  pool.RunOnAll([&](int) { phase.fetch_add(10); });
  EXPECT_EQ(phase.load(), 44);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.RunOnAll([&](int tid) {
    EXPECT_EQ(tid, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(10000);
  pool.ParallelFor(0, counts.size(), 64, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(5, 5, 16, [&](uint64_t, uint64_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 0u);
  pool.ParallelFor(0, 3, 16, [&](uint64_t lo, uint64_t hi) { sum.fetch_add(hi - lo); });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(ThreadPoolTest, ParallelForTidPassesValidIds) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.ParallelForTid(0, 1000, 8, [&](int tid, uint64_t, uint64_t) {
    if (tid < 0 || tid >= 3) {
      bad.store(true);
    }
  });
  EXPECT_FALSE(bad.load());
}

TEST(WorkStealingTest, AllItemsProcessedExactlyOnce) {
  constexpr uint32_t kItems = 1000;
  ThreadPool pool(4);
  WorkStealingQueues queues(4);
  queues.Distribute(kItems);
  std::vector<std::atomic<int>> seen(kItems);
  pool.RunOnAll([&](int tid) {
    uint32_t item = 0;
    while (queues.Pop(tid, item)) {
      seen[item].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& s : seen) {
    EXPECT_EQ(s.load(), 1);
  }
}

TEST(WorkStealingTest, IdleThreadsStealFromBusyOnes) {
  ThreadPool pool(4);
  WorkStealingQueues queues(4);
  // All work lands on thread 0's queue.
  for (uint32_t i = 0; i < 256; ++i) {
    queues.Push(0, i);
  }
  std::atomic<uint32_t> processed{0};
  pool.RunOnAll([&](int tid) {
    if (tid == 0) {
      // Hold the queue's owner back until some other thread has stolen an
      // item, so the steal assertion below is deterministic regardless of
      // scheduling and core count (a 1-CPU host can otherwise let thread 0
      // drain its own queue before the thieves ever wake).
      while (processed.load(std::memory_order_relaxed) == 0) {
      }
    }
    uint32_t item = 0;
    while (queues.Pop(tid, item)) {
      processed.fetch_add(1, std::memory_order_relaxed);
      // Simulate skewed work so other threads get a chance to steal.
      volatile int spin = 0;
      for (int k = 0; k < 1000; ++k) {
        spin = spin + k;
      }
    }
  });
  EXPECT_EQ(processed.load(), 256u);
  EXPECT_GT(queues.steal_count(), 0u);
}

TEST(WorkStealingTest, PopOnEmptyReturnsFalse) {
  WorkStealingQueues queues(2);
  uint32_t item = 0;
  EXPECT_FALSE(queues.Pop(0, item));
  EXPECT_FALSE(queues.Pop(1, item));
}

TEST(WorkStealingTest, DistributeResetsPreviousContent) {
  WorkStealingQueues queues(2);
  queues.Distribute(10);
  queues.Distribute(4);
  uint32_t item = 0;
  std::set<uint32_t> items;
  while (queues.Pop(0, item)) {
    items.insert(item);
  }
  EXPECT_EQ(items, (std::set<uint32_t>{0, 1, 2, 3}));
}

TEST(ConcurrentAppenderTest, SingleThreadAppend) {
  std::vector<std::byte> target(1024);
  ConcurrentAppender app(target, sizeof(uint32_t), 1);
  for (uint32_t i = 0; i < 100; ++i) {
    app.Append(0, &i);
  }
  app.FlushAll();
  EXPECT_EQ(app.records(), 100u);
  const uint32_t* out = reinterpret_cast<const uint32_t*>(target.data());
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], i);  // single thread preserves order
  }
}

TEST(ConcurrentAppenderTest, MultiThreadPreservesMultiset) {
  constexpr int kThreads = 4;
  constexpr uint32_t kPerThread = 50000;  // forces many staging flushes
  std::vector<std::byte> target(kThreads * kPerThread * sizeof(uint32_t));
  ConcurrentAppender app(target, sizeof(uint32_t), kThreads);
  ThreadPool pool(kThreads);
  pool.RunOnAll([&](int tid) {
    for (uint32_t i = 0; i < kPerThread; ++i) {
      uint32_t value = static_cast<uint32_t>(tid) * kPerThread + i;
      app.Append(tid, &value);
    }
  });
  app.FlushAll();
  ASSERT_EQ(app.records(), static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<uint8_t> seen(kThreads * kPerThread, 0);
  const uint32_t* out = reinterpret_cast<const uint32_t*>(target.data());
  for (uint64_t i = 0; i < app.records(); ++i) {
    ASSERT_LT(out[i], seen.size());
    ++seen[out[i]];
  }
  for (uint64_t v = 0; v < seen.size(); ++v) {
    EXPECT_EQ(seen[v], 1) << v;
  }
}

TEST(ConcurrentAppenderTest, ResetAllowsReuse) {
  std::vector<std::byte> target(64);
  ConcurrentAppender app(target, sizeof(uint32_t), 1);
  uint32_t v = 7;
  app.Append(0, &v);
  app.FlushAll();
  EXPECT_EQ(app.records(), 1u);
  app.Reset();
  EXPECT_EQ(app.records(), 0u);
  app.Append(0, &v);
  app.FlushAll();
  EXPECT_EQ(app.records(), 1u);
}

TEST(ConcurrentAppenderTest, OverflowAborts) {
  std::vector<std::byte> target(8);  // room for 2 records
  ConcurrentAppender app(target, sizeof(uint32_t), 1);
  uint32_t v = 1;
  app.Append(0, &v);
  app.Append(0, &v);
  app.FlushAll();
  app.Append(0, &v);
  EXPECT_DEATH(app.FlushAll(), "appender overflow");
}

}  // namespace
}  // namespace xstream
