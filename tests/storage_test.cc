// Tests for the storage substrate: SimDevice semantics and service-time
// model, RAID-0 striping, PosixDevice on a real filesystem, and the
// prefetching stream reader/writer.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>

#include "storage/posix_device.h"
#include "storage/raid_device.h"
#include "storage/sim_device.h"
#include "storage/stream_io.h"
#include "util/rng.h"

namespace xstream {
namespace {

std::vector<std::byte> Pattern(size_t n, uint8_t seed) {
  std::vector<std::byte> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((seed + i * 7) & 0xff);
  }
  return data;
}

// ---------------------------------------------------------------- SimDevice

TEST(SimDeviceTest, WriteReadRoundtrip) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  auto data = Pattern(1000, 1);
  dev.Write(f, 0, data);
  std::vector<std::byte> out(1000);
  dev.Read(f, 0, out);
  EXPECT_EQ(out, data);
}

TEST(SimDeviceTest, AppendExtendsAndReturnsOffset) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  auto a = Pattern(100, 2);
  auto b = Pattern(50, 3);
  EXPECT_EQ(dev.Append(f, a), 0u);
  EXPECT_EQ(dev.Append(f, b), 100u);
  EXPECT_EQ(dev.FileSize(f), 150u);
  std::vector<std::byte> out(50);
  dev.Read(f, 100, out);
  EXPECT_EQ(out, b);
}

TEST(SimDeviceTest, SparseWriteZeroFills) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  auto data = Pattern(10, 4);
  dev.Write(f, 100, data);
  EXPECT_EQ(dev.FileSize(f), 110u);
  std::vector<std::byte> out(10);
  dev.Read(f, 0, out);
  for (auto b : out) {
    EXPECT_EQ(b, std::byte{0});
  }
}

TEST(SimDeviceTest, TruncateShrinksAndRemoveDeletes) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(1000, 5));
  dev.Truncate(f, 10);
  EXPECT_EQ(dev.FileSize(f), 10u);
  dev.Truncate(f, 100);  // truncate never grows
  EXPECT_EQ(dev.FileSize(f), 10u);
  EXPECT_TRUE(dev.Exists("x"));
  dev.Remove("x");
  EXPECT_FALSE(dev.Exists("x"));
}

TEST(SimDeviceTest, CreateTruncatesExisting) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(100, 6));
  FileId f2 = dev.Create("x");
  EXPECT_EQ(dev.FileSize(f2), 0u);
}

TEST(SimDeviceTest, StatsCountBytesAndRequests) {
  SimDevice dev("d", DeviceProfile::Hdd());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(4096, 7));
  std::vector<std::byte> out(1024);
  dev.Read(f, 0, out);
  dev.Read(f, 1024, out);
  DeviceStats s = dev.stats();
  EXPECT_EQ(s.bytes_written, 4096u);
  EXPECT_EQ(s.bytes_read, 2048u);
  EXPECT_EQ(s.write_requests, 1u);
  EXPECT_EQ(s.read_requests, 2u);
  EXPECT_GT(s.busy_seconds, 0.0);
}

TEST(SimDeviceTest, ContiguousReadsAvoidSeeks) {
  SimDevice dev("d", DeviceProfile::Hdd());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(64 * 1024, 8));
  dev.ResetStats();
  // Sequential chunks: only the first is a seek.
  std::vector<std::byte> buf(16 * 1024);
  for (int i = 0; i < 4; ++i) {
    dev.Read(f, static_cast<uint64_t>(i) * buf.size(), buf);
  }
  EXPECT_EQ(dev.stats().seeks, 1u);
  // Random order: every request seeks.
  dev.ResetStats();
  for (int i = 3; i >= 0; --i) {
    dev.Read(f, static_cast<uint64_t>(i) * buf.size(), buf);
  }
  EXPECT_EQ(dev.stats().seeks, 4u);
}

TEST(SimDeviceTest, SequentialBeatsRandomPerProfile) {
  for (auto profile : {DeviceProfile::Hdd(), DeviceProfile::Ssd()}) {
    SimDevice dev("d", profile);
    FileId f = dev.Create("x");
    std::vector<std::byte> chunk(4096);
    uint64_t total = 1 << 20;
    for (uint64_t off = 0; off < total; off += chunk.size()) {
      dev.Write(f, off, chunk);
    }
    dev.ResetStats();
    for (uint64_t off = 0; off < total; off += chunk.size()) {
      dev.Read(f, off, chunk);
    }
    double seq = dev.stats().busy_seconds;
    dev.ResetStats();
    Rng rng(3);
    for (uint64_t i = 0; i < total / chunk.size(); ++i) {
      dev.Read(f, rng.NextBounded(total / chunk.size()) * chunk.size(), chunk);
    }
    double rnd = dev.stats().busy_seconds;
    EXPECT_GT(rnd, seq * 5) << profile.name;
  }
}

TEST(SimDeviceTest, HddSeeksCostMoreThanSsd) {
  SimDevice hdd("h", DeviceProfile::Hdd());
  SimDevice ssd("s", DeviceProfile::Ssd());
  for (SimDevice* dev : {&hdd, &ssd}) {
    FileId f = dev->Create("x");
    std::vector<std::byte> chunk(4096);
    for (int i = 0; i < 256; ++i) {
      dev->Write(f, static_cast<uint64_t>(i) * 4096, chunk);
    }
    dev->ResetStats();
    Rng rng(5);
    for (int i = 0; i < 256; ++i) {
      dev->Read(f, rng.NextBounded(256) * 4096, chunk);
    }
  }
  EXPECT_GT(hdd.stats().busy_seconds, 10 * ssd.stats().busy_seconds);
}

TEST(SimDeviceTest, TimelineRecordsRequests) {
  SimDevice dev("d", DeviceProfile::Ssd());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(1024, 9));
  std::vector<std::byte> out(1024);
  dev.Read(f, 0, out);
  auto timeline = dev.TakeTimeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_TRUE(timeline[0].write);
  EXPECT_FALSE(timeline[1].write);
  EXPECT_LT(timeline[0].time, timeline[1].time);
  // Drained: second call is empty.
  EXPECT_TRUE(dev.TakeTimeline().empty());
}

TEST(SimDeviceTest, ReadPastEofAborts) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(10, 10));
  std::vector<std::byte> out(20);
  EXPECT_DEATH(dev.Read(f, 0, out), "read past EOF");
}

// ---------------------------------------------------------------- RAID-0

TEST(RaidDeviceTest, RoundtripAcrossStripeBoundaries) {
  SimDevice a("a", DeviceProfile::Instant());
  SimDevice b("b", DeviceProfile::Instant());
  RaidDevice raid("r", {&a, &b}, /*stripe_bytes=*/1024);
  FileId f = raid.Create("x");
  auto data = Pattern(10000, 11);  // ~10 stripes
  raid.Write(f, 0, data);
  std::vector<std::byte> out(10000);
  raid.Read(f, 0, out);
  EXPECT_EQ(out, data);
  // Unaligned read spanning several stripes.
  std::vector<std::byte> mid(3000);
  raid.Read(f, 500, mid);
  EXPECT_TRUE(std::equal(mid.begin(), mid.end(), data.begin() + 500));
}

TEST(RaidDeviceTest, DistributesBytesAcrossChildren) {
  SimDevice a("a", DeviceProfile::Instant());
  SimDevice b("b", DeviceProfile::Instant());
  RaidDevice raid("r", {&a, &b}, 1024);
  FileId f = raid.Create("x");
  raid.Write(f, 0, Pattern(8192, 12));
  EXPECT_EQ(a.stats().bytes_written, 4096u);
  EXPECT_EQ(b.stats().bytes_written, 4096u);
}

TEST(RaidDeviceTest, AppendTracksLogicalSize) {
  SimDevice a("a", DeviceProfile::Instant());
  SimDevice b("b", DeviceProfile::Instant());
  RaidDevice raid("r", {&a, &b}, 1024);
  FileId f = raid.Create("x");
  EXPECT_EQ(raid.Append(f, Pattern(1500, 13)), 0u);
  EXPECT_EQ(raid.Append(f, Pattern(100, 14)), 1500u);
  EXPECT_EQ(raid.FileSize(f), 1600u);
}

TEST(RaidDeviceTest, TruncatePropagatesToChildren) {
  SimDevice a("a", DeviceProfile::Instant());
  SimDevice b("b", DeviceProfile::Instant());
  RaidDevice raid("r", {&a, &b}, 1024);
  FileId f = raid.Create("x");
  auto data = Pattern(4096, 15);
  raid.Write(f, 0, data);
  raid.Truncate(f, 1536);  // stripe 0 on a (1024) + 512 into stripe 1 on b
  EXPECT_EQ(raid.FileSize(f), 1536u);
  EXPECT_EQ(a.FileSize(a.Open("x")), 1024u);
  EXPECT_EQ(b.FileSize(b.Open("x")), 512u);
  // Re-extend and verify the surviving prefix.
  std::vector<std::byte> out(1536);
  raid.Read(f, 0, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
}

TEST(RaidDeviceTest, BusyIsMaxOfChildren) {
  SimDevice a("a", DeviceProfile::Hdd());
  SimDevice b("b", DeviceProfile::Hdd());
  RaidDevice raid("r", {&a, &b}, 1024);
  FileId f = raid.Create("x");
  raid.Write(f, 0, Pattern(64 * 1024, 16));
  DeviceStats s = raid.stats();
  EXPECT_DOUBLE_EQ(s.busy_seconds,
                   std::max(a.stats().busy_seconds, b.stats().busy_seconds));
  EXPECT_EQ(s.bytes_written, 64u * 1024);
}

// ---------------------------------------------------------------- PosixDevice

TEST(PosixDeviceTest, RoundtripOnRealFilesystem) {
  ScratchDir scratch("xs-test");
  PosixDevice dev("p", scratch.path());
  FileId f = dev.Create("data.bin");
  auto data = Pattern(100000, 17);
  dev.Write(f, 0, data);
  std::vector<std::byte> out(100000);
  dev.Read(f, 0, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(dev.FileSize(f), 100000u);
}

TEST(PosixDeviceTest, AppendAndTruncate) {
  ScratchDir scratch("xs-test");
  PosixDevice dev("p", scratch.path());
  FileId f = dev.Create("x");
  dev.Append(f, Pattern(100, 18));
  dev.Append(f, Pattern(100, 19));
  EXPECT_EQ(dev.FileSize(f), 200u);
  dev.Truncate(f, 50);
  EXPECT_EQ(dev.FileSize(f), 50u);
}

TEST(PosixDeviceTest, ReopenSeesPersistedData) {
  ScratchDir scratch("xs-test");
  auto data = Pattern(5000, 20);
  {
    PosixDevice dev("p", scratch.path());
    FileId f = dev.Create("persist.bin");
    dev.Write(f, 0, data);
  }
  PosixDevice dev2("p2", scratch.path());
  EXPECT_TRUE(dev2.Exists("persist.bin"));
  FileId f = dev2.Open("persist.bin");
  EXPECT_EQ(dev2.FileSize(f), 5000u);
  std::vector<std::byte> out(5000);
  dev2.Read(f, 0, out);
  EXPECT_EQ(out, data);
}

TEST(PosixDeviceTest, RemoveDeletesFromDisk) {
  ScratchDir scratch("xs-test");
  PosixDevice dev("p", scratch.path());
  FileId f = dev.Create("gone.bin");
  dev.Write(f, 0, Pattern(10, 21));
  dev.Remove("gone.bin");
  EXPECT_FALSE(dev.Exists("gone.bin"));
}

TEST(ScratchDirTest, CleansUpOnDestruction) {
  std::string path;
  {
    ScratchDir scratch("xs-test");
    path = scratch.path();
    PosixDevice dev("p", path);
    dev.Create("junk");
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------- stream I/O

TEST(StreamIoTest, ReaderStreamsWholeFileInChunks) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  auto data = Pattern(10000, 22);
  dev.Write(f, 0, data);
  StreamReader reader(dev, f, 1024);
  std::vector<std::byte> got;
  for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got, data);
}

TEST(StreamIoTest, ReaderHandlesExactMultiple) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(4096, 23));
  StreamReader reader(dev, f, 1024);
  int chunks = 0;
  for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
    EXPECT_EQ(chunk.size(), 1024u);
    ++chunks;
  }
  EXPECT_EQ(chunks, 4);
}

TEST(StreamIoTest, ReaderOnEmptyFile) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  StreamReader reader(dev, f, 1024);
  EXPECT_TRUE(reader.Next().empty());
}

TEST(StreamIoTest, WriterBuffersAndFlushes) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  auto data = Pattern(10000, 24);
  {
    StreamWriter writer(dev, f, 1024);
    // Append in awkward sizes crossing buffer boundaries.
    size_t off = 0;
    for (size_t sz : {100u, 999u, 1025u, 3000u, 4876u}) {
      writer.Append(std::span<const std::byte>(data.data() + off, sz));
      off += sz;
    }
    writer.Finish();
    EXPECT_EQ(writer.bytes_written(), 10000u);
  }
  std::vector<std::byte> out(10000);
  dev.Read(f, 0, out);
  EXPECT_EQ(out, data);
}

TEST(StreamIoTest, WriterAppendRecord) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("x");
  struct Rec {
    uint32_t a, b;
  };
  {
    StreamWriter writer(dev, f, 64);
    for (uint32_t i = 0; i < 100; ++i) {
      writer.AppendRecord(Rec{i, i * 2});
    }
  }  // destructor finishes
  EXPECT_EQ(dev.FileSize(f), 100 * sizeof(Rec));
  std::vector<Rec> out(100);
  dev.Read(f, 0, std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()),
                                      out.size() * sizeof(Rec)));
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i].a, i);
    EXPECT_EQ(out[i].b, i * 2);
  }
}

TEST(StreamIoTest, ReaderSequentialRequestsMostlyAvoidSeeks) {
  SimDevice dev("d", DeviceProfile::Hdd());
  FileId f = dev.Create("x");
  dev.Write(f, 0, Pattern(64 * 1024, 25));
  dev.ResetStats();
  StreamReader reader(dev, f, 4096);
  while (!reader.Next().empty()) {
  }
  // All 16 chunk reads after the first are contiguous.
  EXPECT_EQ(dev.stats().seeks, 1u);
  EXPECT_EQ(dev.stats().read_requests, 16u);
}

TEST(StreamIoTest, RoundtripThroughPosixDevice) {
  ScratchDir scratch("xs-test");
  PosixDevice dev("p", scratch.path());
  FileId f = dev.Create("stream.bin");
  auto data = Pattern(100000, 26);
  {
    StreamWriter writer(dev, f, 4096);
    writer.Append(data);
  }
  StreamReader reader(dev, f, 8192);
  std::vector<std::byte> got;
  for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got, data);
}

}  // namespace
}  // namespace xstream
