// Property tests for the stream-buffer shuffler (paper §3.1, §4.2): every
// shuffle — any stage count, slice count, partition count — must preserve
// the exact multiset of records and group them contiguously by partition.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "buffers/shuffler.h"
#include "threads/thread_pool.h"
#include "util/rng.h"

namespace xstream {
namespace {

struct Rec {
  uint32_t key;
  uint32_t payload;
  bool operator==(const Rec&) const = default;
};

std::vector<Rec> MakeRecords(uint64_t count, uint32_t num_partitions, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rec> recs(count);
  for (uint64_t i = 0; i < count; ++i) {
    recs[i] = Rec{static_cast<uint32_t>(rng.NextBounded(num_partitions)),
                  static_cast<uint32_t>(i)};
  }
  return recs;
}

// Runs a shuffle and checks (a) multiset preservation, (b) correct grouping.
void CheckShuffle(int threads, uint64_t count, uint32_t partitions, uint32_t fanout,
                  uint64_t seed) {
  SCOPED_TRACE("threads=" + std::to_string(threads) + " count=" + std::to_string(count) +
               " partitions=" + std::to_string(partitions) + " fanout=" + std::to_string(fanout));
  ThreadPool pool(threads);
  std::vector<Rec> input = MakeRecords(count, partitions, seed);
  std::vector<Rec> a = input;
  a.resize(count + 1);  // shuffler only touches [0, count)
  std::vector<Rec> b(count + 1);

  auto out = ShuffleRecords(pool, a.data(), b.data(), count, partitions, fanout,
                            [](const Rec& r) { return r.key; });

  ASSERT_EQ(out.slices.size(), static_cast<size_t>(threads));
  EXPECT_EQ(out.TotalRecords(), count);

  // Grouping: within each slice, chunk p contains only key == p.
  std::multiset<std::pair<uint32_t, uint32_t>> seen;
  for (const auto& slice : out.slices) {
    ASSERT_EQ(slice.size(), partitions);
    for (uint32_t p = 0; p < partitions; ++p) {
      const ChunkRef& c = slice[p];
      for (uint64_t i = 0; i < c.count; ++i) {
        const Rec& r = out.data[c.begin + i];
        EXPECT_EQ(r.key, p);
        seen.insert({r.key, r.payload});
      }
    }
  }
  // Multiset preservation.
  std::multiset<std::pair<uint32_t, uint32_t>> expected;
  for (const Rec& r : input) {
    expected.insert({r.key, r.payload});
  }
  EXPECT_EQ(seen, expected);
}

TEST(ShufflerTest, SingleThreadSingleStage) { CheckShuffle(1, 1000, 7, 16, 1); }

TEST(ShufflerTest, SingleThreadMultiStage) { CheckShuffle(1, 1000, 64, 4, 2); }

TEST(ShufflerTest, MultiThreadSingleStage) { CheckShuffle(4, 10000, 13, 16, 3); }

TEST(ShufflerTest, MultiThreadMultiStage) { CheckShuffle(4, 10000, 256, 8, 4); }

TEST(ShufflerTest, OnePartitionIsIdentityGrouping) { CheckShuffle(3, 500, 1, 2, 5); }

TEST(ShufflerTest, EmptyInput) { CheckShuffle(2, 0, 8, 4, 6); }

TEST(ShufflerTest, FewerRecordsThanSlices) { CheckShuffle(8, 3, 4, 4, 7); }

TEST(ShufflerTest, PartitionCountLargerThanRecords) { CheckShuffle(2, 10, 64, 8, 8); }

TEST(ShufflerTest, DeepTreeManyStages) {
  // fanout 2 over 256 partitions = 8 stages.
  CheckShuffle(2, 5000, 256, 2, 9);
}

// Parameterized sweep: the invariant must hold across the cross product of
// thread counts, partition counts and fanouts.
class ShuffleSweep : public ::testing::TestWithParam<std::tuple<int, uint32_t, uint32_t>> {};

TEST_P(ShuffleSweep, PreservesMultisetAndGroups) {
  auto [threads, partitions, fanout] = GetParam();
  CheckShuffle(threads, 4096, partitions, fanout, 1234 + partitions);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShuffleSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1u, 2u, 8u, 32u, 128u),
                       ::testing::Values(2u, 4u, 16u, 1024u)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_f" +
             std::to_string(std::get<2>(info.param));
    });

// The cache-aware staged shuffle (--stage-bytes) replaces the fused counting
// pass for single-stage shuffles; its output must be byte-identical to the
// legacy path — same record placement, same slice chunk boundaries — so the
// two are interchangeable under any engine.
void CheckStagedEquivalence(int threads, uint64_t count, uint32_t partitions,
                            size_t stage_bytes, uint64_t seed) {
  SCOPED_TRACE("threads=" + std::to_string(threads) + " count=" + std::to_string(count) +
               " partitions=" + std::to_string(partitions) +
               " stage_bytes=" + std::to_string(stage_bytes));
  ThreadPool pool(threads);
  std::vector<Rec> input = MakeRecords(count, partitions, seed);
  auto part_of = [](const Rec& r) { return r.key; };
  // Fanout >= partitions forces the single-stage plan on both paths.
  const uint32_t fanout = 1u << 16;

  std::vector<Rec> a_legacy = input, a_staged = input;
  a_legacy.resize(count + 1);
  a_staged.resize(count + 1);
  std::vector<Rec> b_legacy(count + 1), b_staged(count + 1);
  auto legacy = ShuffleRecords(pool, a_legacy.data(), b_legacy.data(), count, partitions,
                               fanout, part_of, /*stage_bytes=*/0);
  auto staged = ShuffleRecords(pool, a_staged.data(), b_staged.data(), count, partitions,
                               fanout, part_of, stage_bytes);
  // A single partition legitimately runs zero stages on both paths; anything
  // else must plan exactly one (fanout >= partitions above).
  ASSERT_EQ(legacy.stages_run, partitions > 1 ? 1 : 0);
  ASSERT_EQ(staged.stages_run, legacy.stages_run);
  for (uint64_t i = 0; i < count; ++i) {
    ASSERT_EQ(legacy.data[i], staged.data[i]) << "record " << i << " diverged";
  }
  ASSERT_EQ(legacy.slices.size(), staged.slices.size());
  for (size_t s = 0; s < legacy.slices.size(); ++s) {
    ASSERT_EQ(legacy.slices[s].size(), staged.slices[s].size());
    for (size_t p = 0; p < legacy.slices[s].size(); ++p) {
      EXPECT_EQ(legacy.slices[s][p].begin, staged.slices[s][p].begin);
      EXPECT_EQ(legacy.slices[s][p].count, staged.slices[s][p].count);
    }
  }
}

TEST(StagedShuffleTest, MatchesLegacySingleThread) {
  CheckStagedEquivalence(1, 5000, 13, 64 << 10, 21);
}

TEST(StagedShuffleTest, MatchesLegacyMultiThread) {
  CheckStagedEquivalence(4, 20000, 37, 256 << 10, 22);
}

TEST(StagedShuffleTest, TinyBlocksForceConstantFlushing) {
  // stage_bytes small enough that every staging block holds one record:
  // exercises the flush path on every scatter step.
  CheckStagedEquivalence(3, 4000, 29, 64, 23);
}

TEST(StagedShuffleTest, SinglePartition) { CheckStagedEquivalence(2, 1000, 1, 32 << 10, 24); }

TEST(StagedShuffleTest, EmptyInput) { CheckStagedEquivalence(2, 0, 8, 32 << 10, 25); }

TEST(StagedShuffleTest, FewerRecordsThanSlices) {
  CheckStagedEquivalence(8, 3, 4, 32 << 10, 26);
}

class StagedSweep : public ::testing::TestWithParam<std::tuple<int, uint32_t, size_t>> {};

TEST_P(StagedSweep, ByteIdenticalToLegacy) {
  auto [threads, partitions, stage_bytes] = GetParam();
  CheckStagedEquivalence(threads, 4096, partitions, stage_bytes, 4321 + partitions);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StagedSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1u, 2u, 8u, 32u, 128u),
                       ::testing::Values(size_t{256}, size_t{16} << 10, size_t{1} << 20)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ShufflerTest, StageCountMatchesCeilLogFanout) {
  ThreadPool pool(2);
  std::vector<Rec> recs = MakeRecords(1000, 64, 11);
  std::vector<Rec> b(1000);
  auto out = ShuffleRecords(pool, recs.data(), b.data(), 1000, 64u, 4u,
                            [](const Rec& r) { return r.key; });
  EXPECT_EQ(out.stages_run, 3);  // log_4(64) = 3
  auto out1 = ShuffleRecords(pool, recs.data(), b.data(), 1000, 64u, 64u,
                             [](const Rec& r) { return r.key; });
  EXPECT_EQ(out1.stages_run, 1);
}

TEST(CeilLog2Test, Values) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

}  // namespace
}  // namespace xstream
