// Randomized regression sweeps: the engine/reference equivalences must hold
// for arbitrary seeds, not just the hand-picked ones in engine_test.cc.
// Each TEST_P instance runs a fresh random graph end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "algorithms/kcores.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

EdgeList SeededGraph(uint64_t seed) {
  RmatParams params;
  params.scale = 8 + (seed % 3);  // vary the size too
  params.edge_factor = 4 + (seed % 9);
  params.undirected = true;
  params.seed = seed * 2654435761u + 1;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 100);
  return edges;
}

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, WccBothEnginesMatchUnionFind) {
  uint64_t seed = GetParam();
  EdgeList edges = SeededGraph(seed);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  InMemoryConfig im;
  im.threads = 2;
  im.cache_bytes = 64 * 1024;
  InMemoryEngine<WccAlgorithm> a(im, edges, info.num_vertices);
  EXPECT_EQ(RunWcc(a).labels, expected);

  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  OutOfCoreConfig oc;
  oc.threads = 2;
  oc.memory_budget_bytes = 1 << 19;
  oc.io_unit_bytes = 8 << 10;
  OutOfCoreEngine<WccAlgorithm> b(oc, dev, dev, dev, "input", info);
  EXPECT_EQ(RunWcc(b).labels, expected);
}

TEST_P(SeedSweep, BfsMatchesReference) {
  uint64_t seed = GetParam();
  EdgeList edges = SeededGraph(seed + 1000);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<BfsAlgorithm> engine(im, edges, info.num_vertices);
  EXPECT_EQ(RunBfs(engine, 0).levels, ReferenceBfsLevels(g, 0));
}

TEST_P(SeedSweep, SsspMatchesReference) {
  uint64_t seed = GetParam();
  EdgeList edges = SeededGraph(seed + 2000);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferenceSssp(g, 0);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<SsspAlgorithm> engine(im, edges, info.num_vertices);
  SsspResult r = RunSssp(engine, 0);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    if (std::isinf(expected[v])) {
      ASSERT_TRUE(std::isinf(r.dist[v])) << v;
    } else {
      ASSERT_NEAR(r.dist[v], expected[v], 1e-3) << v;
    }
  }
}

TEST_P(SeedSweep, McstMatchesKruskal) {
  uint64_t seed = GetParam();
  EdgeList edges = SeededGraph(seed + 3000);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<McstAlgorithm> engine(im, edges, info.num_vertices);
  McstResult r = RunMcst(engine);
  double expected = ReferenceMstWeight(edges, info.num_vertices);
  EXPECT_NEAR(r.total_weight, expected, 1e-2 + 1e-4 * expected);
}

TEST_P(SeedSweep, MisIsValid) {
  uint64_t seed = GetParam();
  EdgeList edges = SeededGraph(seed + 4000);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<MisAlgorithm> engine(im, edges, info.num_vertices);
  MisResult r = RunMis(engine, seed);
  EXPECT_TRUE(IsMaximalIndependentSet(edges, info.num_vertices, r.in_set));
}

TEST_P(SeedSweep, KCoreMatchesPeeling) {
  uint64_t seed = GetParam();
  EdgeList edges = SeededGraph(seed + 5000);
  GraphInfo info = ScanEdges(edges);
  uint32_t k = 3 + static_cast<uint32_t>(seed % 6);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<KCoreAlgorithm> engine(im, edges, info.num_vertices);
  KCoreResult r = RunKCore(engine, k);
  EXPECT_EQ(r.in_core, ReferenceKCore(edges, info.num_vertices, k)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<uint64_t>(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace xstream
