// UringDevice (--io-backend=uring) tests: transfers through the io_uring
// wave path must be byte-identical to PosixDevice on the same files, across
// odd sizes/offsets, multi-wave requests, and the registered-buffer path.
// Skips cleanly when the kernel or sandbox rejects io_uring_setup.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/generators.h"
#include "graph/edge_io.h"
#include "core/ooc_engine.h"
#include "algorithms/algorithms.h"
#include "storage/posix_device.h"
#include "storage/uring_device.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace xstream {
namespace {

std::vector<std::byte> Pattern(size_t n, uint8_t seed) {
  std::vector<std::byte> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((seed + i * 13) & 0xff);
  }
  return data;
}

#define SKIP_WITHOUT_URING()                                             \
  if (!UringDevice::Supported()) {                                       \
    GTEST_SKIP() << "io_uring unavailable (kernel too old or sandboxed)"; \
  }

TEST(UringDeviceTest, SupportedIsStable) {
  // Whatever the answer, probing twice must agree (cached per process).
  EXPECT_EQ(UringDevice::Supported(), UringDevice::Supported());
}

TEST(UringDeviceTest, FallsBackWithoutRingButStillWorks) {
  // Even when the ring can't be created, the device must behave like a
  // PosixDevice (the constructor falls back loudly, never fatally).
  ScratchDir scratch("uring-test");
  UringOptions opts;
  UringDevice dev("u", scratch.path(), opts);
  FileId f = dev.Create("x");
  auto data = Pattern(10000, 1);
  dev.Write(f, 0, data);
  std::vector<std::byte> out(10000);
  dev.Read(f, 0, out);
  EXPECT_EQ(out, data);
}

TEST(UringDeviceTest, RingActivatesWhenSupported) {
  SKIP_WITHOUT_URING();
  ScratchDir scratch("uring-test");
  UringDevice dev("u", scratch.path());
  EXPECT_TRUE(dev.ring_active());
}

TEST(UringDeviceTest, RoundTripOddSizesAndOffsets) {
  SKIP_WITHOUT_URING();
  ScratchDir scratch("uring-test");
  UringDevice dev("u", scratch.path());
  FileId f = dev.Create("x");
  // Unaligned length and offset: exercises the buffered-descriptor path and
  // sub-slice pieces.
  auto data = Pattern(12345, 2);
  dev.Write(f, 777, data);
  EXPECT_EQ(dev.FileSize(f), 777u + 12345u);
  std::vector<std::byte> out(12345);
  dev.Read(f, 777, out);
  EXPECT_EQ(out, data);
}

TEST(UringDeviceTest, MultiWaveTransferMatchesPosix) {
  SKIP_WITHOUT_URING();
  // Transfer much larger than registered_slices * slice_bytes forces several
  // submission waves through the fixed buffers.
  ScratchDir scratch("uring-test");
  UringOptions opts;
  opts.slice_bytes = 64 << 10;
  opts.registered_slices = 2;
  opts.sq_entries = 4;
  UringDevice uring("u", scratch.path(), opts);
  PosixDevice posix("p", scratch.path());

  auto data = Pattern((1 << 20) + 4096 + 17, 3);  // ~8 waves + odd tail
  FileId fu = uring.Create("via-uring");
  uring.Write(fu, 0, data);
  std::vector<std::byte> out(data.size());
  uring.Read(fu, 0, out);
  EXPECT_EQ(out, data);

  // The file the uring device wrote must be readable by a plain posix device
  // byte-for-byte (same on-disk format, different transport).
  FileId fp = posix.Open("via-uring");
  std::vector<std::byte> via_posix(data.size());
  posix.Read(fp, 0, via_posix);
  EXPECT_EQ(via_posix, data);
}

TEST(UringDeviceTest, AppendAccumulates) {
  SKIP_WITHOUT_URING();
  ScratchDir scratch("uring-test");
  UringDevice dev("u", scratch.path());
  FileId f = dev.Create("x");
  std::vector<std::byte> all;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    auto piece = Pattern(1 + rng.NextBounded(100000), static_cast<uint8_t>(i));
    EXPECT_EQ(dev.Append(f, piece), all.size());
    all.insert(all.end(), piece.begin(), piece.end());
  }
  std::vector<std::byte> out(all.size());
  dev.Read(f, 0, out);
  EXPECT_EQ(out, all);
}

TEST(UringDeviceTest, UnregisteredBuffersStillTransfer) {
  SKIP_WITHOUT_URING();
  // registered_slices = 0 disables IORING_REGISTER_BUFFERS: transfers go
  // through plain IORING_OP_READ/WRITE straight into caller memory.
  ScratchDir scratch("uring-test");
  UringOptions opts;
  opts.registered_slices = 0;
  UringDevice dev("u", scratch.path(), opts);
  ASSERT_TRUE(dev.ring_active());
  EXPECT_FALSE(dev.buffers_registered());
  FileId f = dev.Create("x");
  auto data = Pattern(300000, 6);
  dev.Write(f, 0, data);
  std::vector<std::byte> out(data.size());
  dev.Read(f, 0, out);
  EXPECT_EQ(out, data);
}

TEST(UringDeviceTest, StatsCountTransfers) {
  SKIP_WITHOUT_URING();
  ScratchDir scratch("uring-test");
  UringDevice dev("u", scratch.path());
  FileId f = dev.Create("x");
  auto data = Pattern(50000, 7);
  dev.Write(f, 0, data);
  std::vector<std::byte> out(50000);
  dev.Read(f, 0, out);
  DeviceStats s = dev.stats();
  EXPECT_EQ(s.bytes_written, 50000u);
  EXPECT_EQ(s.bytes_read, 50000u);
}

TEST(UringDeviceTest, EngineSmokeMatchesPosixEngine) {
  SKIP_WITHOUT_URING();
  // End-to-end: a small out-of-core WCC run on a uring device must produce
  // the same result as the same run on a posix device.
  EdgeList edges;
  {
    RmatParams params;
    params.scale = 10;
    params.edge_factor = 8;
    params.seed = 42;
    edges = GenerateRmat(params);
  }
  GraphInfo info = ScanEdges(edges);

  auto run = [&](PosixDevice& dev) {
    WriteEdgeFile(dev, "in.bin", edges);
    OutOfCoreConfig config;
    config.threads = 2;
    config.memory_budget_bytes = 1 << 20;
    config.io_unit_bytes = 32 << 10;
    OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "in.bin", info);
    return RunWcc(engine);
  };

  ScratchDir s1("uring-test"), s2("uring-test");
  UringDevice uring("u", s1.path());
  PosixDevice posix("p", s2.path());
  WccResult via_uring = run(uring);
  WccResult via_posix = run(posix);
  EXPECT_EQ(via_uring.num_components, via_posix.num_components);
  EXPECT_EQ(via_uring.labels, via_posix.labels);
}

// ---------------------------------------------------------- AlignedBufferPool

TEST(AlignedBufferPoolTest, RecyclesExactSizes) {
  AlignedBufferPool pool(1 << 20);
  AlignedBuffer a = pool.Get(4096);
  void* ptr = a.data();
  pool.Put(std::move(a));
  EXPECT_EQ(pool.pooled_bytes(), 4096u);
  AlignedBuffer b = pool.Get(4096);
  EXPECT_EQ(b.data(), ptr);  // same allocation came back
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
}

TEST(AlignedBufferPoolTest, DifferentSizesDoNotAlias) {
  AlignedBufferPool pool(1 << 20);
  pool.Put(pool.Get(4096));
  AlignedBuffer b = pool.Get(8192);
  EXPECT_EQ(b.size(), 8192u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.pooled_bytes(), 4096u);  // the 4 KB buffer is still pooled
}

TEST(AlignedBufferPoolTest, CapBoundsPooledBytes) {
  AlignedBufferPool pool(8192);
  pool.Put(pool.Get(4096));
  pool.Put(pool.Get(4096));
  pool.Put(pool.Get(4096));  // over cap: dropped, not pooled
  EXPECT_LE(pool.pooled_bytes(), 8192u);
}

TEST(AlignedBufferPoolTest, BuffersAreAligned) {
  AlignedBufferPool pool;
  AlignedBuffer b = pool.Get(12345);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % kIoAlignment, 0u);
  EXPECT_EQ(b.size(), 12345u);
}

}  // namespace
}  // namespace xstream
