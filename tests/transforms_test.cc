// Tests for text I/O, edge-list transforms and the k-core algorithm.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "algorithms/kcores.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/text_io.h"
#include "graph/transforms.h"
#include "storage/posix_device.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

// ---------------------------------------------------------------- text I/O

TEST(TextIoTest, ParsesPlainPairs) {
  EdgeList edges = ParseTextEdges("0 1\n1 2\n2 0\n");
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].src, 0u);
  EXPECT_EQ(edges[0].dst, 1u);
  EXPECT_GE(edges[0].weight, 0.0f);  // synthesized weight
  EXPECT_LT(edges[0].weight, 1.0f);
}

TEST(TextIoTest, ParsesWeights) {
  EdgeList edges = ParseTextEdges("3 4 0.5\n4 5 1.25\n");
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_FLOAT_EQ(edges[0].weight, 0.5f);
  EXPECT_FLOAT_EQ(edges[1].weight, 1.25f);
}

TEST(TextIoTest, SkipsCommentsAndBlanks) {
  EdgeList edges = ParseTextEdges("# header\n% matrix market ish\n\n  \n0 1\n// c++ style\n1 2\n");
  EXPECT_EQ(edges.size(), 2u);
}

TEST(TextIoTest, SymmetrizeOption) {
  TextReadOptions opts;
  opts.symmetrize = true;
  EdgeList edges = ParseTextEdges("0 1 2.0\n", opts);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1].src, 1u);
  EXPECT_EQ(edges[1].dst, 0u);
  EXPECT_FLOAT_EQ(edges[1].weight, 2.0f);
}

TEST(TextIoTest, FixedWeightOption) {
  TextReadOptions opts;
  opts.random_weights_if_missing = false;
  EdgeList edges = ParseTextEdges("0 1\n", opts);
  EXPECT_FLOAT_EQ(edges[0].weight, 1.0f);
}

TEST(TextIoTest, SynthesizedWeightsAreDeterministic) {
  EdgeList a = ParseTextEdges("7 9\n");
  EdgeList b = ParseTextEdges("7 9\n");
  EXPECT_FLOAT_EQ(a[0].weight, b[0].weight);
}

TEST(TextIoTest, MalformedLineAborts) {
  EXPECT_DEATH(ParseTextEdges("0 1\nnot numbers\n"), "line 2");
}

TEST(TextIoTest, FileRoundtrip) {
  ScratchDir scratch("xs-textio");
  std::string path = scratch.path() + "/graph.txt";
  EdgeList edges = GeneratePath(50, 3);
  WriteTextEdgeList(path, edges);
  EdgeList back = ReadTextEdgeList(path);
  ASSERT_EQ(back.size(), edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(back[i].src, edges[i].src);
    EXPECT_EQ(back[i].dst, edges[i].dst);
    EXPECT_NEAR(back[i].weight, edges[i].weight, 1e-5);
  }
}

TEST(TextIoTest, MissingFileAborts) {
  EXPECT_DEATH(ReadTextEdgeList("/nonexistent/graph.txt"), "cannot open");
}

// ---------------------------------------------------------------- transforms

TEST(TransformsTest, RemoveSelfLoops) {
  EdgeList edges{{0, 0, 1.0f}, {0, 1, 1.0f}, {1, 1, 1.0f}, {1, 2, 1.0f}};
  EdgeList out = RemoveSelfLoops(edges);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dst, 1u);
  EXPECT_EQ(out[1].dst, 2u);
}

TEST(TransformsTest, DeduplicateKeepsFirstRecord) {
  EdgeList edges{{0, 1, 0.1f}, {2, 3, 0.2f}, {0, 1, 0.9f}, {0, 2, 0.3f}, {0, 1, 0.5f}};
  EdgeList out = DeduplicateEdges(edges);
  ASSERT_EQ(out.size(), 3u);
  // (0,1) keeps the first record's weight.
  for (const Edge& e : out) {
    if (e.src == 0 && e.dst == 1) {
      EXPECT_FLOAT_EQ(e.weight, 0.1f);
    }
  }
}

TEST(TransformsTest, DeduplicateNoopsOnCleanInput) {
  EdgeList edges = GeneratePath(100, 5);
  EXPECT_EQ(DeduplicateEdges(edges).size(), edges.size());
}

TEST(TransformsTest, CompactRenumbersDensely) {
  EdgeList sparse{{100, 5000, 1.0f}, {5000, 9999999, 2.0f}, {100, 9999999, 3.0f}};
  CompactedGraph g = CompactVertexIds(sparse);
  EXPECT_EQ(g.num_vertices, 3u);
  EXPECT_EQ(g.edges[0].src, 0u);   // 100 -> 0 (first appearance)
  EXPECT_EQ(g.edges[0].dst, 1u);   // 5000 -> 1
  EXPECT_EQ(g.edges[1].dst, 2u);   // 9999999 -> 2
  EXPECT_EQ(g.new_to_old[2], 9999999u);
  EXPECT_EQ(g.old_to_new[100], 0u);
  // Unused ids map to kNoVertex.
  EXPECT_EQ(g.old_to_new[101], kNoVertex);
}

TEST(TransformsTest, CompactPreservesStructure) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 4;
  params.undirected = true;
  params.seed = 5;
  EdgeList edges = GenerateRmat(params);
  CompactedGraph g = CompactVertexIds(edges);
  // Component structure must be isomorphic: count components both ways.
  GraphInfo before = ScanEdges(edges);
  auto labels_before = ReferenceWcc(edges, before.num_vertices);
  auto labels_after = ReferenceWcc(g.edges, g.num_vertices);
  std::set<VertexId> comps_before;
  std::set<VertexId> comps_after;
  // Only count components containing at least one edge endpoint (compaction
  // drops isolated vertices).
  std::vector<uint8_t> touched(before.num_vertices, 0);
  for (const Edge& e : edges) {
    touched[e.src] = touched[e.dst] = 1;
  }
  for (uint64_t v = 0; v < before.num_vertices; ++v) {
    if (touched[v]) {
      comps_before.insert(labels_before[v]);
    }
  }
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    comps_after.insert(labels_after[v]);
  }
  EXPECT_EQ(comps_before.size(), comps_after.size());
}

TEST(TransformsTest, DegreeSummary) {
  EdgeList edges{{0, 1, 1.0f}, {0, 2, 1.0f}, {1, 2, 1.0f}};
  DegreeSummary s = ComputeDegrees(edges, 3);
  EXPECT_EQ(s.out_degree[0], 2u);
  EXPECT_EQ(s.in_degree[2], 2u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_DOUBLE_EQ(s.average_degree, 1.0);
}

// ---------------------------------------------------------------- k-core

TEST(KCoreTest, MatchesReferencePeeling) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 7;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);
  for (uint32_t k : {2u, 4u, 8u, 16u}) {
    InMemoryConfig config;
    config.threads = 2;
    InMemoryEngine<KCoreAlgorithm> engine(config, edges, info.num_vertices);
    KCoreResult r = RunKCore(engine, k);
    EXPECT_EQ(r.in_core, ReferenceKCore(edges, info.num_vertices, k)) << "k=" << k;
  }
}

TEST(KCoreTest, GridHasNoThreeCore) {
  // Interior grid vertices have degree 4 but peeling k=3 unravels from the
  // corners (degree 2), taking the whole grid with it.
  EdgeList edges = GenerateGrid(8, 8, 9);
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<KCoreAlgorithm> engine(config, edges, 64);
  KCoreResult r = RunKCore(engine, 3);
  EXPECT_EQ(r.core_size, 0u);
  EXPECT_EQ(r.in_core, ReferenceKCore(edges, 64, 3));
}

TEST(KCoreTest, CliqueSurvivesItsOwnDegree) {
  EdgeList edges;
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = 0; j < 8; ++j) {
      if (i != j) {
        edges.push_back(Edge{i, j, 1.0f});
      }
    }
  }
  // Attach a pendant vertex that must be peeled.
  edges.push_back(Edge{0, 8, 1.0f});
  edges.push_back(Edge{8, 0, 1.0f});
  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<KCoreAlgorithm> engine(config, edges, 9);
  KCoreResult r = RunKCore(engine, 7);
  EXPECT_EQ(r.core_size, 8u);
  EXPECT_EQ(r.in_core[8], 0u);
}

TEST(KCoreTest, OutOfCoreMatchesInMemory) {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 11;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig im;
  im.threads = 2;
  InMemoryEngine<KCoreAlgorithm> a(im, edges, info.num_vertices);
  KCoreResult ra = RunKCore(a, 6);

  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  OutOfCoreConfig oc;
  oc.threads = 2;
  oc.io_unit_bytes = 8 << 10;
  OutOfCoreEngine<KCoreAlgorithm> b(oc, dev, dev, dev, "input", info);
  KCoreResult rb = RunKCore(b, 6);
  EXPECT_EQ(ra.in_core, rb.in_core);
}

}  // namespace
}  // namespace xstream
