// Record-layout regression guards.
//
// Edge, Update and VertexState types are streamed to storage and moved by
// byte-level shuffles: their size and triviality are an on-disk ABI. A
// layout change silently invalidates existing partitioned stores and
// checkpoints, so every streamed record is pinned here.
#include <gtest/gtest.h>

#include <type_traits>

#include "algorithms/algorithms.h"
#include "algorithms/kcores.h"
#include "baselines/graphchi_like.h"
#include "baselines/psw_programs.h"
#include "graph/types.h"

namespace xstream {
namespace {

template <typename T>
constexpr bool Streamable() {
  return std::is_trivially_copyable_v<T> && std::is_default_constructible_v<T>;
}

TEST(RecordLayoutTest, EdgeIsTwelvePackedBytes) {
  EXPECT_EQ(sizeof(Edge), 12u);
  EXPECT_TRUE(Streamable<Edge>());
}

TEST(RecordLayoutTest, UpdateSizes) {
  EXPECT_EQ(sizeof(WccAlgorithm::Update), 8u);
  EXPECT_EQ(sizeof(BfsAlgorithm::Update), 8u);
  EXPECT_EQ(sizeof(SsspAlgorithm::Update), 8u);
  EXPECT_EQ(sizeof(PageRankAlgorithm::Update), 8u);
  EXPECT_EQ(sizeof(SpmvAlgorithm::Update), 8u);
  EXPECT_EQ(sizeof(ConductanceAlgorithm::Update), 5u);
  EXPECT_EQ(sizeof(MisAlgorithm::Update), 13u);
  EXPECT_EQ(sizeof(SccAlgorithm::Update), 8u);
  EXPECT_EQ(sizeof(McstAlgorithm::Update), 16u);
  EXPECT_EQ(sizeof(KCoreAlgorithm::Update), 5u);
  EXPECT_EQ(sizeof(BpAlgorithm::Update), 12u);
  // ALS: dst + rating + kFactors floats.
  EXPECT_EQ(sizeof(AlsAlgorithm::Update), 8u + AlsAlgorithm::kFactors * 4u);
  // HyperANF: dst + registers.
  EXPECT_EQ(sizeof(HyperAnfAlgorithm::Update), 4u + HyperAnfAlgorithm::kRegisters);
}

TEST(RecordLayoutTest, UpdatesAreStreamable) {
  EXPECT_TRUE(Streamable<WccAlgorithm::Update>());
  EXPECT_TRUE(Streamable<BfsAlgorithm::Update>());
  EXPECT_TRUE(Streamable<SsspAlgorithm::Update>());
  EXPECT_TRUE(Streamable<PageRankAlgorithm::Update>());
  EXPECT_TRUE(Streamable<SpmvAlgorithm::Update>());
  EXPECT_TRUE(Streamable<ConductanceAlgorithm::Update>());
  EXPECT_TRUE(Streamable<MisAlgorithm::Update>());
  EXPECT_TRUE(Streamable<SccAlgorithm::Update>());
  EXPECT_TRUE(Streamable<McstAlgorithm::Update>());
  EXPECT_TRUE(Streamable<AlsAlgorithm::Update>());
  EXPECT_TRUE(Streamable<BpAlgorithm::Update>());
  EXPECT_TRUE(Streamable<HyperAnfAlgorithm::Update>());
  EXPECT_TRUE(Streamable<KCoreAlgorithm::Update>());
}

TEST(RecordLayoutTest, VertexStatesAreStreamable) {
  // States are bulk load/stored by the out-of-core engine and checkpoints.
  EXPECT_TRUE(Streamable<WccAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<BfsAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<SsspAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<PageRankAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<SpmvAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<ConductanceAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<MisAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<SccAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<McstAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<AlsAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<BpAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<HyperAnfAlgorithm::VertexState>());
  EXPECT_TRUE(Streamable<KCoreAlgorithm::VertexState>());
}

TEST(RecordLayoutTest, AlsStateMatchesPaperFootprint) {
  // The paper: "almost 250 bytes in the case of ALS".
  EXPECT_GE(sizeof(AlsAlgorithm::VertexState), 200u);
  EXPECT_LE(sizeof(AlsAlgorithm::VertexState), 256u);
}

TEST(RecordLayoutTest, MisStateTracksPaperMinimum) {
  // The paper notes MIS needs only "a single byte ... a boolean variable"
  // of algorithmic state; our state adds the priority and protocol flags.
  EXPECT_LE(sizeof(MisAlgorithm::VertexState), 16u);
}

TEST(RecordLayoutTest, PswDiskEdgeComposition) {
  // PSW records: src + dst + weight + edge value.
  EXPECT_EQ(sizeof(PswEngine<PswWcc>::DiskEdge), 12u + sizeof(uint32_t));
  EXPECT_EQ(sizeof(PswEngine<PswPageRank>::DiskEdge), 12u + sizeof(float));
  EXPECT_EQ(sizeof(PswEngine<PswAls>::DiskEdge), 12u + PswAls::kFactors * 4u);
  EXPECT_EQ(sizeof(PswEngine<PswBp>::DiskEdge), 12u + 8u);
}

TEST(RecordLayoutTest, EveryUpdateLeadsWithDst) {
  // The shuffler routes by u.dst; it must be the leading field so partial
  // reads of a record prefix can route without full deserialization.
  WccAlgorithm::Update w{};
  EXPECT_EQ(reinterpret_cast<char*>(&w.dst), reinterpret_cast<char*>(&w));
  McstAlgorithm::Update m{};
  EXPECT_EQ(reinterpret_cast<char*>(&m.dst), reinterpret_cast<char*>(&m));
  AlsAlgorithm::Update a{};
  EXPECT_EQ(reinterpret_cast<char*>(&a.dst), reinterpret_cast<char*>(&a));
}

}  // namespace
}  // namespace xstream
