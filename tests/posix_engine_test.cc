// End-to-end out-of-core engine runs against a real filesystem
// (PosixDevice): the integration path the examples use.
#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "algorithms/wcc.h"
#include "core/ooc_engine.h"
#include "core/semi_streaming.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/posix_device.h"

namespace xstream {
namespace {

EdgeList TestGraph(uint64_t seed) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

TEST(PosixEngineTest, WccOnRealFiles) {
  EdgeList edges = TestGraph(3);
  GraphInfo info = ScanEdges(edges);
  ScratchDir scratch("xs-engine");
  PosixDevice dev("disk", scratch.path());
  WriteEdgeFile(dev, "input", edges);

  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 20;
  config.io_unit_bytes = 64 << 10;
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  WccResult r = RunWcc(engine);
  EXPECT_EQ(r.labels, ReferenceWcc(edges, info.num_vertices));
  EXPECT_GT(dev.stats().bytes_read, 0u);
}

TEST(PosixEngineTest, WccWithFileResidentVerticesAndSpills) {
  EdgeList edges = TestGraph(5);
  GraphInfo info = ScanEdges(edges);
  ScratchDir scratch("xs-engine");
  PosixDevice dev("disk", scratch.path());
  WriteEdgeFile(dev, "input", edges);

  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 18;
  config.io_unit_bytes = 16 << 10;
  config.num_partitions = 8;
  config.allow_vertex_memory_opt = false;
  config.allow_update_memory_opt = false;
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  EXPECT_FALSE(engine.vertices_in_memory());
  WccResult r = RunWcc(engine);
  EXPECT_EQ(r.labels, ReferenceWcc(edges, info.num_vertices));
}

TEST(PosixEngineTest, SplitDevicesForEdgesAndUpdates) {
  // The Fig 15 "independent disks" layout against two real directories.
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  ScratchDir scratch_a("xs-edges");
  ScratchDir scratch_b("xs-updates");
  PosixDevice edges_dev("edges-disk", scratch_a.path());
  PosixDevice updates_dev("updates-disk", scratch_b.path());
  WriteEdgeFile(edges_dev, "input", edges);

  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 19;
  config.io_unit_bytes = 32 << 10;
  config.allow_update_memory_opt = false;  // force traffic onto updates_dev
  OutOfCoreEngine<WccAlgorithm> engine(config, edges_dev, updates_dev, edges_dev, "input",
                                       info);
  WccResult r = RunWcc(engine);
  EXPECT_EQ(r.labels, ReferenceWcc(edges, info.num_vertices));
  EXPECT_GT(updates_dev.stats().bytes_written, 0u);
}

TEST(PosixEngineTest, PageRankOnRealFiles) {
  EdgeList edges = TestGraph(9);
  GraphInfo info = ScanEdges(edges);
  ScratchDir scratch("xs-engine");
  PosixDevice dev("disk", scratch.path());
  WriteEdgeFile(dev, "input", edges);

  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 20;
  config.io_unit_bytes = 64 << 10;
  OutOfCoreEngine<PageRankAlgorithm> engine(config, dev, dev, dev, "input", info);
  PageRankResult r = RunPageRank(engine, 5);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferencePageRank(g, 5);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    ASSERT_NEAR(r.ranks[v], expected[v], 1e-4) << v;
  }
}

TEST(PosixEngineTest, DirectIoFallsBackGracefully) {
  // O_DIRECT may or may not be available on the test filesystem; either way
  // the engine must produce correct results.
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  ScratchDir scratch("xs-engine");
  PosixDevice dev("disk", scratch.path(), /*try_direct=*/true);
  WriteEdgeFile(dev, "input", edges);

  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 20;
  config.io_unit_bytes = 64 << 10;
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  WccResult r = RunWcc(engine);
  EXPECT_EQ(r.labels, ReferenceWcc(edges, info.num_vertices));
}

TEST(PosixEngineTest, SemiStreamingFromRealFile) {
  EdgeList edges = TestGraph(13);
  GraphInfo info = ScanEdges(edges);
  ScratchDir scratch("xs-engine");
  PosixDevice dev("disk", scratch.path());
  WriteEdgeFile(dev, "input", edges);
  SemiStreamingConnectivity algo;
  RunSemiStreaming(algo, dev, "input", info.num_vertices, 64, 32 << 10);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  for (VertexId v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(algo.Component(v), expected[v]);
  }
}

}  // namespace
}  // namespace xstream
