// The unified phase runtime (core/phase_runtime.h + core/stream_store.h),
// exercised directly — not through the engine facades — so the driver/store
// layering is tested as a first-class API. The same algorithms run through
// MemoryStreamStore and DeviceStreamStore (SimDevice) and must produce
// identical results against the sequential reference oracles, including on
// layouts with empty partitions and edge files whose size is not a multiple
// of the read chunk.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "algorithms/algorithms.h"
#include "core/hybrid_engine.h"
#include "core/hybrid_store.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "core/phase_runtime.h"
#include "core/residency.h"
#include "core/stream_store.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/io_executor.h"
#include "storage/sim_device.h"
#include "util/env.h"

namespace xstream {
namespace {

static_assert(StreamStoreFor<MemoryStreamStore<WccAlgorithm>>);
static_assert(StreamStoreFor<DeviceStreamStore<WccAlgorithm>>);
static_assert(StreamStoreFor<HybridStreamStore<WccAlgorithm>>);
static_assert(MemoryStreamStore<WccAlgorithm>::kPartitionParallel);
static_assert(!DeviceStreamStore<WccAlgorithm>::kPartitionParallel);
static_assert(!HybridStreamStore<WccAlgorithm>::kPartitionParallel);

EdgeList TestGraph(uint64_t seed, uint32_t scale = 9) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// Harness that runs one algorithm through a driver over either store and
// returns the final vertex states indexed by ORIGINAL id, so results from
// different layouts compare directly.
template <EdgeCentricAlgorithm Algo>
struct RuntimeHarness {
  // Both stores share one pool per harness.
  explicit RuntimeHarness(int threads) : pool(threads) {}

  std::vector<typename Algo::VertexState> RunMemory(Algo algo, const EdgeList& edges,
                                                    PartitionLayout layout,
                                                    uint64_t max_iters = UINT64_MAX) {
    MemoryStreamStore<Algo> store(pool, layout, /*shuffle_fanout=*/4, edges);
    StreamingPhaseDriver<Algo, MemoryStreamStore<Algo>> driver(store, {});
    stats = driver.Run(algo, max_iters);
    return Extract(driver, layout);
  }

  std::vector<typename Algo::VertexState> RunDevice(Algo algo, const EdgeList& edges,
                                                    PartitionLayout layout,
                                                    const DeviceStoreOptions& opts,
                                                    uint64_t max_iters = UINT64_MAX) {
    SimDevice dev("d", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    DeviceStreamStore<Algo> store(pool, layout, opts, dev, dev, dev, "input");
    StreamingPhaseDriver<Algo, DeviceStreamStore<Algo>> driver(store, {});
    stats = driver.Run(algo, max_iters);
    // Executor accounting: every async spill/read request submitted to the
    // device's I/O thread must have completed once the run returns.
    EXPECT_GT(dev.executor().submitted(), 0u);
    EXPECT_EQ(dev.executor().in_flight(), 0u);
    return Extract(driver, layout);
  }

  std::vector<typename Algo::VertexState> RunHybrid(Algo algo, const EdgeList& edges,
                                                    PartitionLayout layout,
                                                    const HybridStoreOptions& opts,
                                                    uint64_t max_iters = UINT64_MAX) {
    SimDevice dev("d", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    HybridStreamStore<Algo> store(pool, layout, opts, dev, dev, dev, "input");
    StreamingPhaseDriver<Algo, HybridStreamStore<Algo>> driver(store, {});
    stats = driver.Run(algo, max_iters);
    resident_at_end = store.residency_plan().resident_count();
    replans = store.replans();
    EXPECT_EQ(dev.executor().in_flight(), 0u);
    return Extract(driver, layout);
  }

  template <typename Driver>
  std::vector<typename Algo::VertexState> Extract(Driver& driver, const PartitionLayout& layout) {
    std::vector<typename Algo::VertexState> by_original(layout.num_vertices());
    driver.VertexMap(
        [&](VertexId v, typename Algo::VertexState& s) { by_original[v] = s; });
    return by_original;
  }

  ThreadPool pool;
  RunStats stats;
  uint32_t resident_at_end = 0;
  uint64_t replans = 0;
};

DeviceStoreOptions SmallDeviceOpts(bool spill_heavy = false) {
  DeviceStoreOptions opts;
  opts.io_unit_bytes = 16 * 1024;
  if (spill_heavy) {
    // Tiny budget + disabled memory optimizations: vertex files, update
    // spills and multi-chunk gathers all get exercised.
    opts.allow_vertex_memory_opt = false;
    opts.allow_update_memory_opt = false;
  }
  return opts;
}

TEST(PhaseRuntimeTest, WccIdenticalAcrossStoresAndMatchesReference) {
  EdgeList edges = TestGraph(3);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  auto mem = h.RunMemory(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 8));
  RunStats mem_stats = h.stats;
  auto dev = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 4),
                         SmallDeviceOpts(true));
  RunStats dev_stats = h.stats;
  ASSERT_EQ(mem.size(), dev.size());
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(mem[v].label, expected[v]) << "memory store, vertex " << v;
    EXPECT_EQ(dev[v].label, expected[v]) << "device store, vertex " << v;
  }
  // WCC scatters exactly one update per non-wasted edge, so the accounting
  // identity must hold on the spill path too (spilled tails must not be
  // double-counted in updates_generated).
  EXPECT_EQ(mem_stats.wasted_edges + mem_stats.updates_generated, mem_stats.edges_streamed);
  EXPECT_EQ(dev_stats.wasted_edges + dev_stats.updates_generated, dev_stats.edges_streamed);
  EXPECT_GT(dev_stats.update_file_bytes, 0u);  // the run really spilled
  EXPECT_EQ(mem_stats.updates_generated, dev_stats.updates_generated);
}

TEST(PhaseRuntimeTest, PageRankIdenticalAcrossStores) {
  EdgeList edges = TestGraph(5);
  GraphInfo info = ScanEdges(edges);
  RuntimeHarness<PageRankAlgorithm> h(2);
  PageRankAlgorithm algo(info.num_vertices, 5);
  auto mem = h.RunMemory(algo, edges, PartitionLayout(info.num_vertices, 4), 5);
  auto dev = h.RunDevice(algo, edges, PartitionLayout(info.num_vertices, 4),
                         SmallDeviceOpts(true), 5);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(mem[v].rank, dev[v].rank, 1e-5) << "vertex " << v;
  }
}

TEST(PhaseRuntimeTest, BfsIdenticalAcrossStores) {
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, 0);
  RuntimeHarness<BfsAlgorithm> h(2);
  auto mem = h.RunMemory(BfsAlgorithm(0), edges, PartitionLayout(info.num_vertices, 8));
  auto dev = h.RunDevice(BfsAlgorithm(0), edges, PartitionLayout(info.num_vertices, 4),
                         SmallDeviceOpts());
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(mem[v].level, expected[v]) << "memory store, vertex " << v;
    EXPECT_EQ(dev[v].level, expected[v]) << "device store, vertex " << v;
  }
}

TEST(PhaseRuntimeTest, EmptyPartitionsAreHandledByBothStores) {
  // 20 vertices across 32 partitions: the tail partitions own no vertices
  // (and therefore no edges), in both the scatter and gather loops.
  EdgeList edges = GeneratePath(20, 11);
  PartitionLayout layout(20, 32);
  ASSERT_EQ(layout.Size(31), 0u);
  std::vector<VertexId> expected = ReferenceWcc(edges, 20);

  RuntimeHarness<WccAlgorithm> h(2);
  auto mem = h.RunMemory(WccAlgorithm{}, edges, layout);
  auto dev = h.RunDevice(WccAlgorithm{}, edges, layout, SmallDeviceOpts(true));
  for (uint64_t v = 0; v < 20; ++v) {
    EXPECT_EQ(mem[v].label, expected[v]);
    EXPECT_EQ(dev[v].label, expected[v]);
  }
}

TEST(PhaseRuntimeTest, NonChunkMultipleTailStream) {
  // Edge count chosen so the per-partition edge files are not a multiple of
  // the 16 KB read chunk (1365 edges): the StreamReader tail chunk is short
  // and must still be scattered whole.
  EdgeList edges = TestGraph(13);
  edges.resize(edges.size() - edges.size() % 1365 + 7);  // 7 edges past a chunk boundary
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  RuntimeHarness<WccAlgorithm> h(2);
  auto dev = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 3),
                         SmallDeviceOpts(true));
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(dev[v].label, expected[v]) << "vertex " << v;
  }
}

TEST(PhaseRuntimeTest, AsyncAndSyncSpillAgree) {
  EdgeList edges = TestGraph(17, 10);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  auto opts = SmallDeviceOpts(true);
  opts.async_spill = true;
  auto fast = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 4), opts);
  RunStats async_stats = h.stats;
  opts.async_spill = false;
  auto slow = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 4), opts);
  RunStats sync_stats = h.stats;

  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(fast[v].label, expected[v]);
    EXPECT_EQ(slow[v].label, expected[v]);
  }
  // Both modes spill the same update volume; only the async mode reports
  // overlapped bytes.
  EXPECT_GT(async_stats.update_file_bytes, 0u);
  EXPECT_EQ(async_stats.update_file_bytes, sync_stats.update_file_bytes);
  EXPECT_EQ(async_stats.async_spill_bytes, async_stats.update_file_bytes);
  EXPECT_EQ(sync_stats.async_spill_bytes, 0u);
}

TEST(PhaseRuntimeTest, DeeperSpillPipelinesAgreeWithDoubleBuffering) {
  // spill_queue_depth > 2 rotates more shuffle/write buffers (RAID update
  // devices); the results and spilled volume must match the depth-2 paper
  // pipeline, and depth 1 clamps to 2 rather than breaking the gather
  // scratch logic.
  EdgeList edges = TestGraph(21, 10);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  RunStats by_depth[3];
  int depths[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    auto opts = SmallDeviceOpts(true);
    opts.spill_queue_depth = depths[i];
    auto states =
        h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 4), opts);
    by_depth[i] = h.stats;
    for (uint64_t v = 0; v < info.num_vertices; ++v) {
      ASSERT_EQ(states[v].label, expected[v]) << "depth " << depths[i] << " vertex " << v;
    }
  }
  EXPECT_GT(by_depth[1].update_file_bytes, 0u);
  EXPECT_EQ(by_depth[0].update_file_bytes, by_depth[1].update_file_bytes);
  EXPECT_EQ(by_depth[1].update_file_bytes, by_depth[2].update_file_bytes);
  EXPECT_EQ(by_depth[2].async_spill_bytes, by_depth[2].update_file_bytes);
}

TEST(PhaseRuntimeTest, DriverCheckpointRoundtripAcrossStores) {
  // A checkpoint written by the device-store driver restores into the
  // memory-store driver (same layout → same dense order on disk).
  EdgeList edges = TestGraph(19);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  SimDevice ckpt("ckpt", DeviceProfile::Instant());

  RuntimeHarness<WccAlgorithm> h(2);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  DeviceStreamStore<WccAlgorithm> store(h.pool, layout, SmallDeviceOpts(true), dev, dev, dev,
                                        "input");
  StreamingPhaseDriver<WccAlgorithm, DeviceStreamStore<WccAlgorithm>> driver(store, {});
  WccAlgorithm algo;
  driver.Run(algo);
  driver.SaveVertexStates(ckpt, "wcc.ckpt");

  MemoryStreamStore<WccAlgorithm> mstore(h.pool, layout, 4, edges);
  StreamingPhaseDriver<WccAlgorithm, MemoryStreamStore<WccAlgorithm>> mdriver(mstore, {});
  mdriver.LoadVertexStates(ckpt, "wcc.ckpt");

  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  mdriver.VertexMap([&](VertexId v, WccAlgorithm::VertexState& s) {
    EXPECT_EQ(s.label, expected[v]) << "vertex " << v;
  });
}

// ---------------------------------------------------------------------------
// HybridStreamStore: the partially resident store, swept across pin budgets.

HybridStoreOptions SmallHybridOpts(uint64_t pin_budget) {
  HybridStoreOptions opts;
  static_cast<DeviceStoreOptions&>(opts) = SmallDeviceOpts(/*spill_heavy=*/true);
  opts.pin_budget_bytes = pin_budget;
  return opts;
}

// Accounted cost of pinning everything, via a probe store over the same
// input (the planner inputs depend on the setup pass's edge tallies).
template <EdgeCentricAlgorithm Algo>
uint64_t FullPinBytes(ThreadPool& pool, const EdgeList& edges, PartitionLayout layout) {
  SimDevice dev("probe", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  HybridStreamStore<Algo> store(pool, layout, SmallHybridOpts(0), dev, dev, dev, "input");
  return store.FullPinBytes();
}

// Raw-speed pillar matrix (--compress-updates x --stage-bytes): compression
// and cache-aware shuffle staging are pure transport optimizations, so every
// combination must reproduce the baseline results for WCC, BFS and PageRank
// on all three store modes — memory (where the flags are inert, the
// baseline), device, and hybrid at half pin budget (compressed spill below
// the pin line, RAM buffering above it).
TEST(PhaseRuntimeTest, CompressionAndStagingAreResultInvariant) {
  EdgeList edges = TestGraph(43);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  std::vector<VertexId> wcc_ref = ReferenceWcc(edges, info.num_vertices);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<uint32_t> bfs_ref = ReferenceBfsLevels(g, 0);

  RuntimeHarness<WccAlgorithm> hw(2);
  RuntimeHarness<BfsAlgorithm> hb(2);
  RuntimeHarness<PageRankAlgorithm> hp(2);
  PageRankAlgorithm pr(info.num_vertices, 4);
  auto pr_mem = hp.RunMemory(pr, edges, layout, 4);
  uint64_t half_pin = FullPinBytes<WccAlgorithm>(hw.pool, edges, layout) / 2;

  for (bool compress : {false, true}) {
    for (size_t stage_bytes : {size_t{0}, size_t{32} << 10}) {
      SCOPED_TRACE("compress=" + std::to_string(compress) +
                   " stage_bytes=" + std::to_string(stage_bytes));
      auto opts = SmallDeviceOpts(/*spill_heavy=*/true);
      opts.compress_updates = compress;
      opts.stage_bytes = stage_bytes;

      auto w = hw.RunDevice(WccAlgorithm{}, edges, layout, opts);
      EXPECT_GT(hw.stats.update_file_bytes, 0u);  // the leg really spilled
      auto b = hb.RunDevice(BfsAlgorithm(0), edges, layout, opts);
      auto p = hp.RunDevice(pr, edges, layout, opts, 4);
      for (uint64_t v = 0; v < info.num_vertices; ++v) {
        ASSERT_EQ(w[v].label, wcc_ref[v]) << "device store, vertex " << v;
        ASSERT_EQ(b[v].level, bfs_ref[v]) << "device store, vertex " << v;
        ASSERT_NEAR(p[v].rank, pr_mem[v].rank, 1e-5) << "device store, vertex " << v;
      }

      HybridStoreOptions hopts;
      static_cast<DeviceStoreOptions&>(hopts) = opts;
      hopts.pin_budget_bytes = half_pin;
      auto hw_got = hw.RunHybrid(WccAlgorithm{}, edges, layout, hopts);
      auto hb_got = hb.RunHybrid(BfsAlgorithm(0), edges, layout, hopts);
      auto hp_got = hp.RunHybrid(pr, edges, layout, hopts, 4);
      for (uint64_t v = 0; v < info.num_vertices; ++v) {
        ASSERT_EQ(hw_got[v].label, wcc_ref[v]) << "hybrid store, vertex " << v;
        ASSERT_EQ(hb_got[v].level, bfs_ref[v]) << "hybrid store, vertex " << v;
        ASSERT_NEAR(hp_got[v].rank, pr_mem[v].rank, 1e-5) << "hybrid store, vertex " << v;
      }
    }
  }
}

// Compression must not change what the engine reports as routed update
// volume (update_file_bytes stays the raw byte count so ablations compare
// like with like), while the actual device write volume shrinks.
TEST(PhaseRuntimeTest, CompressedSpillsRouteSameVolumeWithFewerDeviceBytes) {
  EdgeList edges = TestGraph(47, 10);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);

  RuntimeHarness<BfsAlgorithm> h(2);
  auto opts = SmallDeviceOpts(/*spill_heavy=*/true);
  auto plain = h.RunDevice(BfsAlgorithm(0), edges, layout, opts);
  RunStats plain_stats = h.stats;
  opts.compress_updates = true;
  auto packed = h.RunDevice(BfsAlgorithm(0), edges, layout, opts);
  RunStats packed_stats = h.stats;

  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    ASSERT_EQ(plain[v].level, packed[v].level) << "vertex " << v;
  }
  EXPECT_GT(plain_stats.update_file_bytes, 0u);
  EXPECT_EQ(packed_stats.update_file_bytes, plain_stats.update_file_bytes);
  EXPECT_LT(packed_stats.bytes_written, plain_stats.bytes_written);
}

TEST(HybridStoreTest, WccMatchesReferenceAtBudgetsZeroHalfFull) {
  EdgeList edges = TestGraph(23);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  uint64_t full = FullPinBytes<WccAlgorithm>(h.pool, edges, layout);
  ASSERT_GT(full, 0u);
  for (uint64_t budget : {uint64_t{0}, full / 2, full}) {
    auto got = h.RunHybrid(WccAlgorithm{}, edges, layout, SmallHybridOpts(budget));
    for (uint64_t v = 0; v < info.num_vertices; ++v) {
      ASSERT_EQ(got[v].label, expected[v]) << "budget " << budget << ", vertex " << v;
    }
    if (budget == 0) {
      EXPECT_EQ(h.resident_at_end, 0u);
      EXPECT_EQ(h.stats.avoided_spill_bytes, 0u);
      EXPECT_EQ(h.stats.resident_partition_count, 0u);
    } else {
      EXPECT_GT(h.stats.resident_partition_count, 0u);
      EXPECT_GT(h.stats.resident_bytes, 0u);
      EXPECT_GT(h.stats.avoided_spill_bytes, 0u);
    }
    if (budget == full) {
      // Every partition pins, so no update bytes ever reach the files.
      EXPECT_EQ(h.resident_at_end, layout.num_partitions());
      EXPECT_EQ(h.stats.update_file_bytes, 0u);
    }
  }
}

TEST(HybridStoreTest, BfsMatchesReferenceAtBudgetsZeroHalfFull) {
  EdgeList edges = TestGraph(29);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, 0);

  RuntimeHarness<BfsAlgorithm> h(2);
  uint64_t full = FullPinBytes<BfsAlgorithm>(h.pool, edges, layout);
  for (uint64_t budget : {uint64_t{0}, full / 2, full}) {
    auto got = h.RunHybrid(BfsAlgorithm(0), edges, layout, SmallHybridOpts(budget));
    for (uint64_t v = 0; v < info.num_vertices; ++v) {
      ASSERT_EQ(got[v].level, expected[v]) << "budget " << budget << ", vertex " << v;
    }
  }
}

TEST(HybridStoreTest, PageRankMatchesMemoryStoreAtBudgetsZeroHalfFull) {
  EdgeList edges = TestGraph(31);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  RuntimeHarness<PageRankAlgorithm> h(2);
  PageRankAlgorithm algo(info.num_vertices, 4);
  auto mem = h.RunMemory(algo, edges, layout, 4);
  uint64_t full = FullPinBytes<PageRankAlgorithm>(h.pool, edges, layout);
  for (uint64_t budget : {uint64_t{0}, full / 2, full}) {
    auto got = h.RunHybrid(algo, edges, layout, SmallHybridOpts(budget), 4);
    for (uint64_t v = 0; v < info.num_vertices; ++v) {
      ASSERT_NEAR(got[v].rank, mem[v].rank, 1e-5) << "budget " << budget << ", vertex " << v;
    }
  }
}

TEST(HybridStoreTest, BudgetZeroMatchesDeviceStoreBitForBit) {
  // With an empty pin set every shadowed method degenerates to the base
  // behavior: even floating-point results must be bit-identical because the
  // gather order is the same.
  EdgeList edges = TestGraph(37);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  RuntimeHarness<PageRankAlgorithm> h(2);
  PageRankAlgorithm algo(info.num_vertices, 3);
  auto dev = h.RunDevice(algo, edges, layout, SmallDeviceOpts(true), 3);
  RunStats dev_stats = h.stats;
  auto hyb = h.RunHybrid(algo, edges, layout, SmallHybridOpts(0), 3);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    ASSERT_EQ(hyb[v].rank, dev[v].rank) << "vertex " << v;
  }
  EXPECT_EQ(h.stats.update_file_bytes, dev_stats.update_file_bytes);
  EXPECT_EQ(h.stats.updates_generated, dev_stats.updates_generated);
}

TEST(HybridStoreTest, MidRunReplanMigratesPinsAndStaysCorrect) {
  EdgeList edges = TestGraph(41);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  HybridStoreOptions opts = SmallHybridOpts(uint64_t{1} << 30);  // pins everything
  opts.replan_between_iterations = false;  // only the explicit re-plan below
  HybridStreamStore<WccAlgorithm> store(h.pool, layout, opts, dev, dev, dev, "input");
  StreamingPhaseDriver<WccAlgorithm, HybridStreamStore<WccAlgorithm>> driver(store, {});
  ASSERT_EQ(store.residency_plan().resident_count(), layout.num_partitions());

  WccAlgorithm algo;
  driver.InitVertices(algo);
  driver.RunIteration(algo);
  driver.RunIteration(algo);

  // Mid-run: demote everything except partition 0 (its states flush back to
  // the vertex files), then run to convergence over the shrunk pin set.
  std::vector<PartitionResidencyStats> inputs(layout.num_partitions());
  for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
    inputs[p].vertex_bytes = layout.Size(p) * sizeof(WccAlgorithm::VertexState);
    inputs[p].avoided_bytes_per_iteration = p == 0 ? 1 : 0;
  }
  store.Replan(inputs);
  EXPECT_EQ(store.residency_plan().resident_count(), 1u);
  EXPECT_EQ(store.replans(), 1u);

  while (driver.RunIteration(algo).updates_generated > 0) {
  }
  std::vector<VertexId> got(info.num_vertices);
  driver.VertexMap(
      [&](VertexId v, WccAlgorithm::VertexState& s) { got[v] = s.label; });
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    ASSERT_EQ(got[v], expected[v]) << "vertex " << v;
  }
}

TEST(HybridStoreTest, AutomaticReplanKeepsBfsCorrectAtHalfBudget) {
  // BFS's update volume moves with the frontier, so the per-iteration
  // re-plan migrates pins mid-run; correctness must survive the migrations.
  EdgeList edges = TestGraph(43, 10);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 8);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, 0);

  RuntimeHarness<BfsAlgorithm> h(2);
  uint64_t full = FullPinBytes<BfsAlgorithm>(h.pool, edges, layout);
  HybridStoreOptions opts = SmallHybridOpts(full / 2);
  ASSERT_TRUE(opts.replan_between_iterations);
  auto got = h.RunHybrid(BfsAlgorithm(0), edges, layout, opts);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    ASSERT_EQ(got[v].level, expected[v]) << "vertex " << v;
  }
  EXPECT_GT(h.stats.avoided_spill_bytes, 0u);
}

TEST(HybridStoreTest, EdgePinningServesRepeatScansFromRamIdentically) {
  // With pin_edges and a budget that pins everything, iteration 1 captures
  // every partition's edge stream into the PinnedEdgeCache and every later
  // scatter is served from RAM — with results identical to the streamed
  // run, since the cache re-chunks at the same I/O-unit granularity.
  EdgeList edges = TestGraph(53);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  HybridStoreOptions opts = SmallHybridOpts(uint64_t{1} << 30);  // pins everything
  opts.pin_edges = true;
  auto got = h.RunHybrid(WccAlgorithm{}, edges, layout, opts);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    ASSERT_EQ(got[v].label, expected[v]) << "vertex " << v;
  }
  EXPECT_GT(h.stats.pinned_edge_bytes, 0u);       // all partitions cached
  EXPECT_GT(h.stats.edge_reads_avoided_bytes, 0u);  // iterations 2+ hit RAM
  EXPECT_EQ(h.stats.update_file_bytes, 0u);
}

TEST(HybridStoreTest, HysteresisZeroKeepsLegacyFullReplanBehavior) {
  // The fig31 baseline: hysteresis 0 must still converge correctly through
  // stop-the-world full re-plans at a drifting half budget.
  EdgeList edges = TestGraph(59, 10);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 8);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, 0);

  RuntimeHarness<BfsAlgorithm> h(2);
  uint64_t full = FullPinBytes<BfsAlgorithm>(h.pool, edges, layout);
  HybridStoreOptions opts = SmallHybridOpts(full / 2);
  opts.residency_hysteresis = 0;
  auto got = h.RunHybrid(BfsAlgorithm(0), edges, layout, opts);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    ASSERT_EQ(got[v].level, expected[v]) << "vertex " << v;
  }
}

TEST(HybridStoreTest, CheckpointRoundtripsAcrossHybridAndDeviceStores) {
  EdgeList edges = TestGraph(47);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  RuntimeHarness<WccAlgorithm> h(2);
  SimDevice ckpt("ckpt", DeviceProfile::Instant());

  // Hybrid (half budget) -> checkpoint -> device store.
  {
    SimDevice dev("d1", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    uint64_t full = FullPinBytes<WccAlgorithm>(h.pool, edges, layout);
    HybridStreamStore<WccAlgorithm> store(h.pool, layout, SmallHybridOpts(full / 2), dev, dev,
                                          dev, "input");
    StreamingPhaseDriver<WccAlgorithm, HybridStreamStore<WccAlgorithm>> driver(store, {});
    WccAlgorithm algo;
    driver.Run(algo);
    driver.SaveVertexStates(ckpt, "hybrid.ckpt");
  }
  {
    SimDevice dev("d2", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    DeviceStreamStore<WccAlgorithm> store(h.pool, layout, SmallDeviceOpts(true), dev, dev, dev,
                                          "input");
    StreamingPhaseDriver<WccAlgorithm, DeviceStreamStore<WccAlgorithm>> driver(store, {});
    driver.LoadVertexStates(ckpt, "hybrid.ckpt");
    driver.VertexMap([&](VertexId v, WccAlgorithm::VertexState& s) {
      ASSERT_EQ(s.label, expected[v]) << "device restore, vertex " << v;
    });
    // And back the other way: device -> checkpoint -> hybrid.
    driver.SaveVertexStates(ckpt, "device.ckpt");
  }
  {
    SimDevice dev("d3", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    HybridStreamStore<WccAlgorithm> store(h.pool, layout, SmallHybridOpts(uint64_t{1} << 30),
                                          dev, dev, dev, "input");
    StreamingPhaseDriver<WccAlgorithm, HybridStreamStore<WccAlgorithm>> driver(store, {});
    driver.LoadVertexStates(ckpt, "device.ckpt");
    driver.VertexMap([&](VertexId v, WccAlgorithm::VertexState& s) {
      ASSERT_EQ(s.label, expected[v]) << "hybrid restore, vertex " << v;
    });
  }
}

// ---------------------------------------------------------------------------
// StreamWriter::Close error propagation (the spill/checkpoint write path).

// A device whose appends start failing on command; exercises error flow from
// the I/O thread back to the submitting thread.
class FailingDevice : public SimDevice {
 public:
  FailingDevice() : SimDevice("failing", DeviceProfile::Instant()) {}

  uint64_t Append(FileId f, std::span<const std::byte> data) override {
    if (fail_appends) {
      throw std::runtime_error("injected append failure");
    }
    return SimDevice::Append(f, data);
  }

  bool fail_appends = false;
};

TEST(StreamWriterCloseTest, ClosePropagatesAsyncWriteErrors) {
  FailingDevice dev;
  FileId f = dev.Create("out");
  StreamWriter writer(dev, f, 64);
  std::vector<std::byte> payload(256);
  writer.Append(payload);  // several async flushes
  dev.fail_appends = true;
  writer.Append(payload);
  EXPECT_THROW(writer.Close(), std::runtime_error);
  // After a throwing Close the retained error is cleared; destruction is
  // quiet.
}

TEST(StreamWriterCloseTest, CloseSucceedsQuietlyOnHealthyDevice) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("out");
  StreamWriter writer(dev, f, 64);
  std::vector<std::byte> payload(1000);
  writer.Append(payload);
  EXPECT_NO_THROW(writer.Close());
  EXPECT_EQ(dev.FileSize(f), 1000u);
}

}  // namespace
}  // namespace xstream
