// The unified phase runtime (core/phase_runtime.h + core/stream_store.h),
// exercised directly — not through the engine facades — so the driver/store
// layering is tested as a first-class API. The same algorithms run through
// MemoryStreamStore and DeviceStreamStore (SimDevice) and must produce
// identical results against the sequential reference oracles, including on
// layouts with empty partitions and edge files whose size is not a multiple
// of the read chunk.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "algorithms/algorithms.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "core/phase_runtime.h"
#include "core/stream_store.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/io_executor.h"
#include "storage/sim_device.h"
#include "util/env.h"

namespace xstream {
namespace {

static_assert(StreamStoreFor<MemoryStreamStore<WccAlgorithm>>);
static_assert(StreamStoreFor<DeviceStreamStore<WccAlgorithm>>);
static_assert(MemoryStreamStore<WccAlgorithm>::kPartitionParallel);
static_assert(!DeviceStreamStore<WccAlgorithm>::kPartitionParallel);

EdgeList TestGraph(uint64_t seed, uint32_t scale = 9) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// Harness that runs one algorithm through a driver over either store and
// returns the final vertex states indexed by ORIGINAL id, so results from
// different layouts compare directly.
template <EdgeCentricAlgorithm Algo>
struct RuntimeHarness {
  // Both stores share one pool per harness.
  explicit RuntimeHarness(int threads) : pool(threads) {}

  std::vector<typename Algo::VertexState> RunMemory(Algo algo, const EdgeList& edges,
                                                    PartitionLayout layout,
                                                    uint64_t max_iters = UINT64_MAX) {
    MemoryStreamStore<Algo> store(pool, layout, /*shuffle_fanout=*/4, edges);
    StreamingPhaseDriver<Algo, MemoryStreamStore<Algo>> driver(store, {});
    stats = driver.Run(algo, max_iters);
    return Extract(driver, layout);
  }

  std::vector<typename Algo::VertexState> RunDevice(Algo algo, const EdgeList& edges,
                                                    PartitionLayout layout,
                                                    const DeviceStoreOptions& opts,
                                                    uint64_t max_iters = UINT64_MAX) {
    SimDevice dev("d", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    DeviceStreamStore<Algo> store(pool, layout, opts, dev, dev, dev, "input");
    StreamingPhaseDriver<Algo, DeviceStreamStore<Algo>> driver(store, {});
    stats = driver.Run(algo, max_iters);
    // Executor accounting: every async spill/read request submitted to the
    // device's I/O thread must have completed once the run returns.
    EXPECT_GT(dev.executor().submitted(), 0u);
    EXPECT_EQ(dev.executor().in_flight(), 0u);
    return Extract(driver, layout);
  }

  template <typename Driver>
  std::vector<typename Algo::VertexState> Extract(Driver& driver, const PartitionLayout& layout) {
    std::vector<typename Algo::VertexState> by_original(layout.num_vertices());
    driver.VertexMap(
        [&](VertexId v, typename Algo::VertexState& s) { by_original[v] = s; });
    return by_original;
  }

  ThreadPool pool;
  RunStats stats;
};

DeviceStoreOptions SmallDeviceOpts(bool spill_heavy = false) {
  DeviceStoreOptions opts;
  opts.io_unit_bytes = 16 * 1024;
  if (spill_heavy) {
    // Tiny budget + disabled memory optimizations: vertex files, update
    // spills and multi-chunk gathers all get exercised.
    opts.allow_vertex_memory_opt = false;
    opts.allow_update_memory_opt = false;
  }
  return opts;
}

TEST(PhaseRuntimeTest, WccIdenticalAcrossStoresAndMatchesReference) {
  EdgeList edges = TestGraph(3);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  auto mem = h.RunMemory(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 8));
  RunStats mem_stats = h.stats;
  auto dev = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 4),
                         SmallDeviceOpts(true));
  RunStats dev_stats = h.stats;
  ASSERT_EQ(mem.size(), dev.size());
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(mem[v].label, expected[v]) << "memory store, vertex " << v;
    EXPECT_EQ(dev[v].label, expected[v]) << "device store, vertex " << v;
  }
  // WCC scatters exactly one update per non-wasted edge, so the accounting
  // identity must hold on the spill path too (spilled tails must not be
  // double-counted in updates_generated).
  EXPECT_EQ(mem_stats.wasted_edges + mem_stats.updates_generated, mem_stats.edges_streamed);
  EXPECT_EQ(dev_stats.wasted_edges + dev_stats.updates_generated, dev_stats.edges_streamed);
  EXPECT_GT(dev_stats.update_file_bytes, 0u);  // the run really spilled
  EXPECT_EQ(mem_stats.updates_generated, dev_stats.updates_generated);
}

TEST(PhaseRuntimeTest, PageRankIdenticalAcrossStores) {
  EdgeList edges = TestGraph(5);
  GraphInfo info = ScanEdges(edges);
  RuntimeHarness<PageRankAlgorithm> h(2);
  PageRankAlgorithm algo(info.num_vertices, 5);
  auto mem = h.RunMemory(algo, edges, PartitionLayout(info.num_vertices, 4), 5);
  auto dev = h.RunDevice(algo, edges, PartitionLayout(info.num_vertices, 4),
                         SmallDeviceOpts(true), 5);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(mem[v].rank, dev[v].rank, 1e-5) << "vertex " << v;
  }
}

TEST(PhaseRuntimeTest, BfsIdenticalAcrossStores) {
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<uint32_t> expected = ReferenceBfsLevels(g, 0);
  RuntimeHarness<BfsAlgorithm> h(2);
  auto mem = h.RunMemory(BfsAlgorithm(0), edges, PartitionLayout(info.num_vertices, 8));
  auto dev = h.RunDevice(BfsAlgorithm(0), edges, PartitionLayout(info.num_vertices, 4),
                         SmallDeviceOpts());
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(mem[v].level, expected[v]) << "memory store, vertex " << v;
    EXPECT_EQ(dev[v].level, expected[v]) << "device store, vertex " << v;
  }
}

TEST(PhaseRuntimeTest, EmptyPartitionsAreHandledByBothStores) {
  // 20 vertices across 32 partitions: the tail partitions own no vertices
  // (and therefore no edges), in both the scatter and gather loops.
  EdgeList edges = GeneratePath(20, 11);
  PartitionLayout layout(20, 32);
  ASSERT_EQ(layout.Size(31), 0u);
  std::vector<VertexId> expected = ReferenceWcc(edges, 20);

  RuntimeHarness<WccAlgorithm> h(2);
  auto mem = h.RunMemory(WccAlgorithm{}, edges, layout);
  auto dev = h.RunDevice(WccAlgorithm{}, edges, layout, SmallDeviceOpts(true));
  for (uint64_t v = 0; v < 20; ++v) {
    EXPECT_EQ(mem[v].label, expected[v]);
    EXPECT_EQ(dev[v].label, expected[v]);
  }
}

TEST(PhaseRuntimeTest, NonChunkMultipleTailStream) {
  // Edge count chosen so the per-partition edge files are not a multiple of
  // the 16 KB read chunk (1365 edges): the StreamReader tail chunk is short
  // and must still be scattered whole.
  EdgeList edges = TestGraph(13);
  edges.resize(edges.size() - edges.size() % 1365 + 7);  // 7 edges past a chunk boundary
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  RuntimeHarness<WccAlgorithm> h(2);
  auto dev = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 3),
                         SmallDeviceOpts(true));
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(dev[v].label, expected[v]) << "vertex " << v;
  }
}

TEST(PhaseRuntimeTest, AsyncAndSyncSpillAgree) {
  EdgeList edges = TestGraph(17, 10);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);

  RuntimeHarness<WccAlgorithm> h(2);
  auto opts = SmallDeviceOpts(true);
  opts.async_spill = true;
  auto fast = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 4), opts);
  RunStats async_stats = h.stats;
  opts.async_spill = false;
  auto slow = h.RunDevice(WccAlgorithm{}, edges, PartitionLayout(info.num_vertices, 4), opts);
  RunStats sync_stats = h.stats;

  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(fast[v].label, expected[v]);
    EXPECT_EQ(slow[v].label, expected[v]);
  }
  // Both modes spill the same update volume; only the async mode reports
  // overlapped bytes.
  EXPECT_GT(async_stats.update_file_bytes, 0u);
  EXPECT_EQ(async_stats.update_file_bytes, sync_stats.update_file_bytes);
  EXPECT_EQ(async_stats.async_spill_bytes, async_stats.update_file_bytes);
  EXPECT_EQ(sync_stats.async_spill_bytes, 0u);
}

TEST(PhaseRuntimeTest, DriverCheckpointRoundtripAcrossStores) {
  // A checkpoint written by the device-store driver restores into the
  // memory-store driver (same layout → same dense order on disk).
  EdgeList edges = TestGraph(19);
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(info.num_vertices, 4);
  SimDevice ckpt("ckpt", DeviceProfile::Instant());

  RuntimeHarness<WccAlgorithm> h(2);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  DeviceStreamStore<WccAlgorithm> store(h.pool, layout, SmallDeviceOpts(true), dev, dev, dev,
                                        "input");
  StreamingPhaseDriver<WccAlgorithm, DeviceStreamStore<WccAlgorithm>> driver(store, {});
  WccAlgorithm algo;
  driver.Run(algo);
  driver.SaveVertexStates(ckpt, "wcc.ckpt");

  MemoryStreamStore<WccAlgorithm> mstore(h.pool, layout, 4, edges);
  StreamingPhaseDriver<WccAlgorithm, MemoryStreamStore<WccAlgorithm>> mdriver(mstore, {});
  mdriver.LoadVertexStates(ckpt, "wcc.ckpt");

  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  mdriver.VertexMap([&](VertexId v, WccAlgorithm::VertexState& s) {
    EXPECT_EQ(s.label, expected[v]) << "vertex " << v;
  });
}

// ---------------------------------------------------------------------------
// StreamWriter::Close error propagation (the spill/checkpoint write path).

// A device whose appends start failing on command; exercises error flow from
// the I/O thread back to the submitting thread.
class FailingDevice : public SimDevice {
 public:
  FailingDevice() : SimDevice("failing", DeviceProfile::Instant()) {}

  uint64_t Append(FileId f, std::span<const std::byte> data) override {
    if (fail_appends) {
      throw std::runtime_error("injected append failure");
    }
    return SimDevice::Append(f, data);
  }

  bool fail_appends = false;
};

TEST(StreamWriterCloseTest, ClosePropagatesAsyncWriteErrors) {
  FailingDevice dev;
  FileId f = dev.Create("out");
  StreamWriter writer(dev, f, 64);
  std::vector<std::byte> payload(256);
  writer.Append(payload);  // several async flushes
  dev.fail_appends = true;
  writer.Append(payload);
  EXPECT_THROW(writer.Close(), std::runtime_error);
  // After a throwing Close the retained error is cleared; destruction is
  // quiet.
}

TEST(StreamWriterCloseTest, CloseSucceedsQuietlyOnHealthyDevice) {
  SimDevice dev("d", DeviceProfile::Instant());
  FileId f = dev.Create("out");
  StreamWriter writer(dev, f, 64);
  std::vector<std::byte> payload(1000);
  writer.Append(payload);
  EXPECT_NO_THROW(writer.Close());
  EXPECT_EQ(dev.FileSize(f), 1000u);
}

}  // namespace
}  // namespace xstream
