// Tests for partition-count and fanout selection (paper §2.4, §3.4, §4.2).
#include <gtest/gtest.h>

#include "core/partition.h"
#include "core/sizing.h"

namespace xstream {
namespace {

TEST(RoundUpPow2Test, Values) {
  EXPECT_EQ(RoundUpPow2(0), 1u);
  EXPECT_EQ(RoundUpPow2(1), 1u);
  EXPECT_EQ(RoundUpPow2(2), 2u);
  EXPECT_EQ(RoundUpPow2(3), 4u);
  EXPECT_EQ(RoundUpPow2(1000), 1024u);
}

TEST(InMemorySizingTest, PartitionFootprintFitsCache) {
  // 1M vertices, 8B state, 12B edge, 8B update => 28MB footprint.
  uint32_t k = ChooseInMemoryPartitions(1 << 20, 8, 12, 8, 2 << 20);
  // 28MB / 2MB = 14 -> 16 partitions.
  EXPECT_EQ(k, 16u);
  // Each partition's footprint now fits the cache.
  uint64_t per_partition = ((1 << 20) / k) * (8 + 12 + 8);
  EXPECT_LE(per_partition, 2u << 20);
}

TEST(InMemorySizingTest, SmallGraphGetsOnePartition) {
  EXPECT_EQ(ChooseInMemoryPartitions(1000, 8, 12, 8, 2 << 20), 1u);
}

TEST(InMemorySizingTest, RespectsMaxPartitions) {
  uint32_t k = ChooseInMemoryPartitions(1ull << 30, 256, 12, 256, 1 << 10, 1 << 12);
  EXPECT_LE(k, 1u << 12);
}

TEST(OutOfCoreSizingTest, InequalityHolds) {
  // Paper's example (§3.4): N = 1TB vertex data, S = 16MB => M_min = 17GB
  // with under 120 partitions.
  uint64_t n = 1ull << 40;
  size_t s = 16 << 20;
  uint64_t m = 20ull << 30;
  uint32_t k = ChooseOutOfCorePartitions(n, m, s);
  EXPECT_LE(n / k + 5ull * s * k, m);
  EXPECT_LT(k, 200u);
  EXPECT_GT(k, 50u);
}

TEST(OutOfCoreSizingTest, PrefersFewestPartitions) {
  // Plenty of memory: one partition wins (maximum sequentiality, §2.4).
  EXPECT_EQ(ChooseOutOfCorePartitions(1 << 20, 1ull << 30, 1 << 20), 1u);
}

TEST(OutOfCoreSizingTest, ViabilityMatchesChooser) {
  EXPECT_TRUE(OutOfCorePartitionsViable(1 << 20, 1 << 30, 1 << 20));
  // Budget below 2*sqrt(5NS): impossible.
  EXPECT_FALSE(OutOfCorePartitionsViable(1ull << 40, 1 << 20, 16 << 20));
}

TEST(OutOfCoreSizingTest, InfeasibleBudgetAborts) {
  EXPECT_DEATH(ChooseOutOfCorePartitions(1ull << 40, 1 << 20, 16 << 20),
               "no viable out-of-core partition count");
}

TEST(FanoutTest, BoundedByCachelines) {
  // 2MB cache / 64B lines = 32768 lines -> fanout <= 32768.
  uint32_t f = ChooseShuffleFanout(1u << 20, 2 << 20, 64);
  EXPECT_LE(f, 32768u);
  EXPECT_GE(f, 2u);
  // Tiny cache: fanout collapses but stays a usable power of two.
  uint32_t tiny = ChooseShuffleFanout(1u << 20, 256, 64);
  EXPECT_GE(tiny, 2u);
  EXPECT_LE(tiny, 4u);
}

TEST(FanoutTest, NeverExceedsPartitionCount) {
  EXPECT_LE(ChooseShuffleFanout(8, 2 << 20, 64), 8u);
}

TEST(PartitionLayoutTest, EqualRangesCoverAllVertices) {
  PartitionLayout layout(1000, 8);
  uint64_t total = 0;
  for (uint32_t p = 0; p < 8; ++p) {
    total += layout.Size(p);
    if (p > 0) {
      EXPECT_EQ(layout.Begin(p), layout.End(p - 1));
    }
  }
  EXPECT_EQ(total, 1000u);
}

TEST(PartitionLayoutTest, PartitionOfIsConsistentWithRanges) {
  PartitionLayout layout(1000, 8);
  for (VertexId v = 0; v < 1000; ++v) {
    uint32_t p = layout.PartitionOf(v);
    EXPECT_GE(v, layout.Begin(p));
    EXPECT_LT(v, layout.End(p));
  }
}

TEST(PartitionLayoutTest, MorePartitionsThanVertices) {
  PartitionLayout layout(3, 8);
  EXPECT_EQ(layout.Size(0), 1u);
  EXPECT_EQ(layout.Size(3), 0u);
  EXPECT_EQ(layout.PartitionOf(2), 2u);
}

TEST(PartitionLayoutTest, NonDivisibleCountsStayConsistent) {
  // Regression: when num_vertices % num_partitions != 0 the trailing ranges
  // shrink (or empty out), PartitionOf must stay within [0, k) and agree
  // with Begin/End for every vertex.
  for (uint64_t n : {1u, 5u, 7u, 10u, 1000u, 1001u, 1023u}) {
    for (uint32_t k : {1u, 2u, 3u, 7u, 8u, 16u, 100u}) {
      PartitionLayout layout(n, k);
      uint64_t total = 0;
      for (uint32_t p = 0; p < k; ++p) {
        total += layout.Size(p);
        if (p > 0) {
          EXPECT_EQ(layout.Begin(p), layout.End(p - 1)) << "n=" << n << " k=" << k;
        }
      }
      EXPECT_EQ(total, n) << "n=" << n << " k=" << k;
      for (VertexId v = 0; v < n; ++v) {
        uint32_t p = layout.PartitionOf(v);
        ASSERT_LT(p, k) << "n=" << n << " k=" << k << " v=" << v;
        EXPECT_GE(v, layout.Begin(p));
        EXPECT_LT(v, layout.End(p));
      }
    }
  }
}

TEST(PartitionLayoutTest, PartitionOfClampsToLastPartition) {
  // Defensive contract: ids at or beyond num_vertices (corrupt inputs,
  // padded streams) must still map to a real partition index.
  PartitionLayout layout(10, 4);
  EXPECT_EQ(layout.PartitionOf(10), 3u);
  EXPECT_EQ(layout.PartitionOf(1000), 3u);
  PartitionLayout tiny(3, 8);
  EXPECT_EQ(tiny.PartitionOf(7), 7u);
  EXPECT_EQ(tiny.PartitionOf(100), 7u);
}

TEST(PartitionLayoutTest, SinglePartitionTakesAll) {
  PartitionLayout layout(12345, 1);
  EXPECT_EQ(layout.Begin(0), 0u);
  EXPECT_EQ(layout.End(0), 12345u);
  EXPECT_EQ(layout.PartitionOf(12344), 0u);
}

}  // namespace
}  // namespace xstream
