// Tests for the competitor implementations (Figs 18-22 baselines): CSR
// builders, sorting kernels, the two specialized BFS variants, the
// Ligra-like engine, and the GraphChi-like PSW engine.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/bfs_hybrid.h"
#include "baselines/bfs_local_queue.h"
#include "baselines/csr.h"
#include "baselines/graphchi_like.h"
#include "baselines/ligra_like.h"
#include "baselines/psw_programs.h"
#include "baselines/sorters.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

EdgeList TestGraph(uint64_t seed = 5, uint32_t scale = 10) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// ---------------------------------------------------------------- CSR

TEST(CsrTest, BuildersAgree) {
  EdgeList edges = TestGraph(3);
  GraphInfo info = ScanEdges(edges);
  Csr quick = Csr::BuildQuickSort(edges, info.num_vertices);
  Csr counting = Csr::BuildCountingSort(edges, info.num_vertices);
  ASSERT_EQ(quick.num_vertices(), counting.num_vertices());
  ASSERT_EQ(quick.num_edges(), counting.num_edges());
  for (uint64_t v = 0; v < quick.num_vertices(); ++v) {
    ASSERT_EQ(quick.OutDegree(static_cast<VertexId>(v)),
              counting.OutDegree(static_cast<VertexId>(v)))
        << v;
    // Neighbor multisets must agree (orders may differ within a vertex).
    std::multiset<VertexId> a(quick.Neighbors(static_cast<VertexId>(v)),
                              quick.Neighbors(static_cast<VertexId>(v)) +
                                  quick.OutDegree(static_cast<VertexId>(v)));
    std::multiset<VertexId> b(counting.Neighbors(static_cast<VertexId>(v)),
                              counting.Neighbors(static_cast<VertexId>(v)) +
                                  counting.OutDegree(static_cast<VertexId>(v)));
    ASSERT_EQ(a, b) << v;
  }
}

TEST(CsrTest, DegreesMatchEdgeList) {
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  Csr csr = Csr::BuildCountingSort(edges, info.num_vertices);
  std::vector<uint64_t> degree(info.num_vertices, 0);
  for (const Edge& e : edges) {
    ++degree[e.src];
  }
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(csr.OutDegree(static_cast<VertexId>(v)), degree[v]);
  }
}

TEST(CsrTest, TransposeReversesEdges) {
  EdgeList edges{{0, 1, 1.0f}, {0, 2, 1.0f}, {2, 1, 1.0f}};
  Csr t = Csr::BuildTranspose(edges, 3);
  EXPECT_EQ(t.OutDegree(0), 0u);
  EXPECT_EQ(t.OutDegree(1), 2u);  // in-edges of 1: from 0 and 2
  EXPECT_EQ(t.OutDegree(2), 1u);
}

TEST(SortersTest, BothSortsProduceSortedOutput) {
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  EXPECT_TRUE(TimeQuickSort(edges).sorted);
  EXPECT_TRUE(TimeCountingSort(edges, info.num_vertices).sorted);
}

// ---------------------------------------------------------------- BFS baselines

TEST(LocalQueueBfsTest, MatchesReference) {
  EdgeList edges = TestGraph(13);
  GraphInfo info = ScanEdges(edges);
  Csr csr = Csr::BuildCountingSort(edges, info.num_vertices);
  ThreadPool pool(2);
  LocalQueueBfsResult result = RunLocalQueueBfs(csr, 0, pool);
  ReferenceGraph g(edges, info.num_vertices);
  EXPECT_EQ(result.levels, ReferenceBfsLevels(g, 0));
}

TEST(LocalQueueBfsTest, SingleThreadMatches) {
  EdgeList edges = TestGraph(17);
  GraphInfo info = ScanEdges(edges);
  Csr csr = Csr::BuildCountingSort(edges, info.num_vertices);
  ThreadPool pool(1);
  LocalQueueBfsResult result = RunLocalQueueBfs(csr, 0, pool);
  ReferenceGraph g(edges, info.num_vertices);
  EXPECT_EQ(result.levels, ReferenceBfsLevels(g, 0));
}

TEST(HybridBfsTest, MatchesReference) {
  EdgeList edges = TestGraph(19);
  GraphInfo info = ScanEdges(edges);
  Csr out = Csr::BuildCountingSort(edges, info.num_vertices);
  Csr in = Csr::BuildTranspose(edges, info.num_vertices);
  ThreadPool pool(2);
  HybridBfsResult result = RunHybridBfs(out, in, 0, pool);
  ReferenceGraph g(edges, info.num_vertices);
  EXPECT_EQ(result.levels, ReferenceBfsLevels(g, 0));
}

TEST(HybridBfsTest, UsesBottomUpOnScaleFreeGraph) {
  EdgeList edges = TestGraph(23, 12);
  GraphInfo info = ScanEdges(edges);
  Csr out = Csr::BuildCountingSort(edges, info.num_vertices);
  Csr in = Csr::BuildTranspose(edges, info.num_vertices);
  ThreadPool pool(2);
  HybridBfsResult result = RunHybridBfs(out, in, 0, pool);
  // On a dense scale-free graph the middle levels must trip the switch.
  EXPECT_GT(result.bottom_up_steps, 0u);
  ReferenceGraph g(edges, info.num_vertices);
  EXPECT_EQ(result.levels, ReferenceBfsLevels(g, 0));
}

TEST(HybridBfsTest, StaysTopDownOnPath) {
  EdgeList edges = GeneratePath(512, 1);
  Csr out = Csr::BuildCountingSort(edges, 512);
  Csr in = Csr::BuildTranspose(edges, 512);
  ThreadPool pool(2);
  HybridBfsResult result = RunHybridBfs(out, in, 0, pool);
  EXPECT_EQ(result.bottom_up_steps, 0u);
  EXPECT_EQ(result.depth, 511u);
}

// ---------------------------------------------------------------- Ligra-like

TEST(LigraLikeTest, BfsMatchesReference) {
  EdgeList edges = TestGraph(29);
  GraphInfo info = ScanEdges(edges);
  LigraGraph graph = LigraGraph::Build(edges, info.num_vertices);
  EXPECT_GT(graph.preprocess_seconds, 0.0);
  ThreadPool pool(2);
  LigraBfsResult result = RunLigraBfs(graph, 0, pool);
  ReferenceGraph g(edges, info.num_vertices);
  EXPECT_EQ(result.levels, ReferenceBfsLevels(g, 0));
}

TEST(LigraLikeTest, BfsSwitchesToPullOnDenseFrontier) {
  EdgeList edges = TestGraph(31, 12);
  GraphInfo info = ScanEdges(edges);
  LigraGraph graph = LigraGraph::Build(edges, info.num_vertices);
  ThreadPool pool(2);
  LigraBfsResult result = RunLigraBfs(graph, 0, pool);
  EXPECT_GT(result.pull_steps, 0u);
}

TEST(LigraLikeTest, PageRankMatchesReference) {
  EdgeList edges = TestGraph(37);
  GraphInfo info = ScanEdges(edges);
  LigraGraph graph = LigraGraph::Build(edges, info.num_vertices);
  ThreadPool pool(2);
  LigraPageRankResult result = RunLigraPageRank(graph, 5, pool);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferencePageRank(g, 5);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(result.ranks[v], expected[v], 1e-6) << v;
  }
}

// ---------------------------------------------------------------- PSW (GraphChi-like)

TEST(PswEngineTest, WccConvergesToReference) {
  EdgeList edges = TestGraph(41);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("psw", DeviceProfile::Instant());
  PswConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 18;  // force several shards
  PswWcc program;
  PswEngine<PswWcc> engine(config, dev, edges, info.num_vertices, program);
  EXPECT_GT(engine.num_shards(), 1u);
  engine.RunUntilConverged(program);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(engine.values()[v], expected[v]) << v;
  }
}

TEST(PswEngineTest, WccSingleShard) {
  EdgeList edges = TestGraph(43);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("psw", DeviceProfile::Instant());
  PswConfig config;
  config.threads = 1;
  config.num_shards = 1;
  PswWcc program;
  PswEngine<PswWcc> engine(config, dev, edges, info.num_vertices, program);
  engine.RunUntilConverged(program);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(engine.values()[v], expected[v]) << v;
  }
}

TEST(PswEngineTest, PageRankApproximatesReference) {
  EdgeList edges = TestGraph(47);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("psw", DeviceProfile::Instant());
  PswConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 18;
  PswPageRank program(info.num_vertices);
  PswEngine<PswPageRank> engine(config, dev, edges, info.num_vertices, program);
  engine.RunIterations(program, 10);
  // Asynchronous sweeps converge to the same fixpoint as synchronous PR;
  // after 10 sweeps the ordering of top vertices should agree loosely.
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferencePageRank(g, 30);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(engine.values()[v], expected[v], 0.02 + 0.25 * expected[v]) << v;
  }
}

TEST(PswEngineTest, ReportsPreSortAndReSortCosts) {
  EdgeList edges = TestGraph(53);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("psw", DeviceProfile::Instant());
  PswConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 18;
  PswWcc program;
  PswEngine<PswWcc> engine(config, dev, edges, info.num_vertices, program);
  engine.RunIterations(program, 2);
  EXPECT_GT(engine.stats().pre_sort_seconds, 0.0);
  EXPECT_GT(engine.stats().re_sort_seconds, 0.0);
  EXPECT_EQ(engine.stats().iterations, 2u);
  // The engine must actually touch the device.
  DeviceStats s = dev.stats();
  EXPECT_GT(s.bytes_read, 0u);
  EXPECT_GT(s.bytes_written, 0u);
}

TEST(PswEngineTest, AlsProducesFiniteFactors) {
  EdgeList ratings = GenerateBipartite(100, 20, 800, 59);
  GraphInfo info = ScanEdges(ratings);
  SimDevice dev("psw", DeviceProfile::Instant());
  PswConfig config;
  config.threads = 2;
  PswAls program;
  PswEngine<PswAls> engine(config, dev, ratings, info.num_vertices, program);
  engine.RunIterations(program, 4);
  for (const auto& value : engine.values()) {
    for (float f : value.f) {
      EXPECT_TRUE(std::isfinite(f));
    }
  }
}

TEST(PswEngineTest, BpBeliefsNormalized) {
  EdgeList edges = TestGraph(61);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("psw", DeviceProfile::Instant());
  PswConfig config;
  config.threads = 2;
  PswBp program;
  PswEngine<PswBp> engine(config, dev, edges, info.num_vertices, program);
  engine.RunIterations(program, 3);
  for (const auto& value : engine.values()) {
    EXPECT_NEAR(value.m0 + value.m1, 1.0f, 1e-4);
  }
}

}  // namespace
}  // namespace xstream
