// Tests for the graph substrate: generators, transforms, edge file I/O, and
// the dataset registry.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/datasets.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

// ---------------------------------------------------------------- generators

TEST(RmatTest, EdgeCountAndVertexRange) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  params.undirected = false;
  EdgeList edges = GenerateRmat(params);
  EXPECT_EQ(edges.size(), (1u << 10) * 8u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, 1u << 10);
    EXPECT_LT(e.dst, 1u << 10);
    EXPECT_GE(e.weight, 0.0f);
    EXPECT_LT(e.weight, 1.0f);
  }
}

TEST(RmatTest, UndirectedEmitsBothDirections) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 4;
  params.undirected = true;
  EdgeList edges = GenerateRmat(params);
  ASSERT_EQ(edges.size() % 2, 0u);
  for (size_t i = 0; i < edges.size(); i += 2) {
    EXPECT_EQ(edges[i].src, edges[i + 1].dst);
    EXPECT_EQ(edges[i].dst, edges[i + 1].src);
    EXPECT_EQ(edges[i].weight, edges[i + 1].weight);
  }
}

TEST(RmatTest, DeterministicPerSeed) {
  RmatParams params;
  params.scale = 8;
  params.seed = 5;
  EdgeList a = GenerateRmat(params);
  EdgeList b = GenerateRmat(params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
  params.seed = 6;
  EdgeList c = GenerateRmat(params);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].src != c[i].src || a[i].dst != c[i].dst;
  }
  EXPECT_TRUE(differs);
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 16;
  params.undirected = false;
  EdgeList edges = GenerateRmat(params);
  std::vector<uint64_t> degree(1u << 12, 0);
  for (const Edge& e : edges) {
    ++degree[e.src];
  }
  uint64_t max_degree = *std::max_element(degree.begin(), degree.end());
  // Scale-free: the hub degree dwarfs the average (16).
  EXPECT_GT(max_degree, 200u);
}

TEST(GridTest, StructureAndDiameter) {
  EdgeList edges = GenerateGrid(4, 5, 1);
  // 4x5 grid: horizontal 4*4=16, vertical 3*5=15 undirected edges, doubled.
  EXPECT_EQ(edges.size(), 2u * (16 + 15));
  EXPECT_EQ(ReferenceDiameterSteps(edges, 20), 4u + 5 - 2);
}

TEST(PathTest, DiameterIsLength) {
  EdgeList edges = GeneratePath(50, 2);
  EXPECT_EQ(edges.size(), 2u * 49);
  EXPECT_EQ(ReferenceDiameterSteps(edges, 50), 49u);
}

TEST(ClusteredChainTest, SingleComponentHighDiameter) {
  EdgeList edges = GenerateClusteredChain(8, 32, 4, 3);
  GraphInfo info = ScanEdges(edges);
  EXPECT_LE(info.num_vertices, 8u * 32);
  auto labels = ReferenceWcc(edges, 8 * 32);
  std::set<VertexId> components(labels.begin(), labels.end());
  EXPECT_EQ(components.size(), 1u) << "bridges must connect all clusters";
  // Diameter at least the cluster-chain length.
  EXPECT_GE(ReferenceDiameterSteps(edges, 8 * 32), 7u);
}

TEST(BipartiteTest, EdgesRespectSides) {
  EdgeList edges = GenerateBipartite(100, 20, 500, 4);
  EXPECT_EQ(edges.size(), 1000u);  // both directions
  for (size_t i = 0; i < edges.size(); i += 2) {
    const Edge& fwd = edges[i];
    EXPECT_LT(fwd.src, 100u);                        // user
    EXPECT_GE(fwd.dst, 100u);                        // item
    EXPECT_LT(fwd.dst, 120u);
    EXPECT_GE(fwd.weight, 1.0f);
    EXPECT_LE(fwd.weight, 5.0f);
    EXPECT_EQ(edges[i + 1].src, fwd.dst);            // reverse record
  }
}

TEST(StarTest, CenterConnectsAll) {
  EdgeList edges = GenerateStar(10);
  EXPECT_EQ(edges.size(), 18u);
  auto labels = ReferenceWcc(edges, 10);
  for (VertexId l : labels) {
    EXPECT_EQ(l, 0u);
  }
}

// ---------------------------------------------------------------- transforms

TEST(PermuteTest, PreservesMultiset) {
  EdgeList edges = GeneratePath(100, 5);
  EdgeList shuffled = edges;
  PermuteEdges(shuffled, 9);
  auto key = [](const Edge& e) {
    return std::tuple(e.src, e.dst, e.weight);
  };
  std::multiset<std::tuple<VertexId, VertexId, float>> a, b;
  for (const Edge& e : edges) {
    a.insert(key(e));
  }
  for (const Edge& e : shuffled) {
    b.insert(key(e));
  }
  EXPECT_EQ(a, b);
  // And actually permutes.
  bool moved = false;
  for (size_t i = 0; i < edges.size() && !moved; ++i) {
    moved = edges[i].src != shuffled[i].src || edges[i].dst != shuffled[i].dst;
  }
  EXPECT_TRUE(moved);
}

TEST(SymmetrizeTest, DoublesAndMirrors) {
  EdgeList edges{{0, 1, 0.5f}, {2, 3, 0.25f}};
  EdgeList sym = Symmetrize(edges);
  ASSERT_EQ(sym.size(), 4u);
  EXPECT_EQ(sym[1].src, 1u);
  EXPECT_EQ(sym[1].dst, 0u);
  EXPECT_EQ(sym[1].weight, 0.5f);
}

TEST(RandomOrientationTest, KeepsExactlyOneDirectionPerPair) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 4;
  params.undirected = true;
  EdgeList undirected = GenerateRmat(params);
  EdgeList oriented = RandomOrientation(undirected, 7);
  // Each undirected pair (2 records) becomes 1 record; self loops dropped.
  uint64_t self_loops = 0;
  for (const Edge& e : undirected) {
    self_loops += e.src == e.dst ? 1 : 0;
  }
  EXPECT_EQ(oriented.size(), (undirected.size() - self_loops) / 2);
  // The unordered endpoint multiset must be preserved.
  std::multiset<std::pair<VertexId, VertexId>> before, after;
  for (const Edge& e : undirected) {
    if (e.src < e.dst) {
      before.insert({e.src, e.dst});
    }
  }
  for (const Edge& e : oriented) {
    after.insert({std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
  EXPECT_EQ(before, after);
}

// ---------------------------------------------------------------- edge I/O

TEST(EdgeIoTest, WriteReadRoundtrip) {
  SimDevice dev("d", DeviceProfile::Instant());
  EdgeList edges = GeneratePath(200, 6);
  WriteEdgeFile(dev, "edges", edges);
  EdgeList back = ReadEdgeFile(dev, "edges");
  ASSERT_EQ(back.size(), edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(back[i].src, edges[i].src);
    EXPECT_EQ(back[i].dst, edges[i].dst);
    EXPECT_EQ(back[i].weight, edges[i].weight);
  }
}

TEST(EdgeIoTest, ScanFindsCountsAndMaxVertex) {
  SimDevice dev("d", DeviceProfile::Instant());
  EdgeList edges{{5, 900, 1.0f}, {2, 3, 1.0f}};
  WriteEdgeFile(dev, "edges", edges);
  GraphInfo info = ScanEdgeFile(dev, "edges");
  EXPECT_EQ(info.num_edges, 2u);
  EXPECT_EQ(info.num_vertices, 901u);
}

TEST(EdgeIoTest, AppendAccumulates) {
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "edges", {{0, 1, 1.0f}});
  AppendEdgeFile(dev, "edges", {{1, 2, 2.0f}});
  EdgeList back = ReadEdgeFile(dev, "edges");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[1].dst, 2u);
}

TEST(EdgeIoTest, EmptyFile) {
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "empty", {});
  EXPECT_EQ(ReadEdgeFile(dev, "empty").size(), 0u);
  EXPECT_EQ(ScanEdgeFile(dev, "empty").num_edges, 0u);
}

// ---------------------------------------------------------------- datasets

TEST(DatasetsTest, RegistryContainsPaperGraphs) {
  EXPECT_EQ(InMemoryDatasets().size(), 4u);
  EXPECT_EQ(OutOfCoreDatasets().size(), 5u);
  EXPECT_TRUE(FindDataset("Twitter*").has_value());
  EXPECT_TRUE(FindDataset("dimacs-usa*").has_value());
  EXPECT_FALSE(FindDataset("nonexistent").has_value());
}

TEST(DatasetsTest, StandInsGenerateAndScaleShiftGrows) {
  for (const DatasetSpec& spec : InMemoryDatasets()) {
    EdgeList base = GenerateDataset(spec, 0);
    EdgeList grown = GenerateDataset(spec, 1);
    EXPECT_GT(base.size(), 0u) << spec.name;
    EXPECT_GT(grown.size(), base.size()) << spec.name;
  }
}

TEST(DatasetsTest, HighDiameterStandInHasHighDiameter) {
  DatasetSpec dimacs = *FindDataset("dimacs-usa*");
  EdgeList edges = GenerateDataset(dimacs, -4);  // small for the exact check
  GraphInfo info = ScanEdges(edges);
  DatasetSpec amazon = *FindDataset("amazon0601*");
  EdgeList sf = GenerateDataset(amazon, -4);
  GraphInfo sf_info = ScanEdges(sf);
  uint32_t grid_diam = ReferenceDiameterSteps(edges, info.num_vertices);
  uint32_t sf_diam = ReferenceDiameterSteps(Symmetrize(sf), sf_info.num_vertices);
  EXPECT_GT(grid_diam, 4 * sf_diam);
}

TEST(GraphInfoTest, ScanEdgesFindsBounds) {
  EdgeList edges{{0, 7, 1.0f}, {3, 2, 1.0f}};
  GraphInfo info = ScanEdges(edges);
  EXPECT_EQ(info.num_vertices, 8u);
  EXPECT_EQ(info.num_edges, 2u);
}

}  // namespace
}  // namespace xstream
