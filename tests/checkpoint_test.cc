// Checkpoint/restore of vertex state on both engines.
#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "algorithms/wcc.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "partitioning/partitioner.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

EdgeList TestGraph(uint64_t seed) {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  return GenerateRmat(params);
}

TEST(CheckpointTest, InMemorySaveRestoreRoundtrip) {
  EdgeList edges = TestGraph(3);
  GraphInfo info = ScanEdges(edges);
  SimDevice ckpt("ckpt", DeviceProfile::Instant());

  InMemoryConfig config;
  config.threads = 2;
  InMemoryEngine<WccAlgorithm> engine(config, edges, info.num_vertices);
  WccResult done = RunWcc(engine);
  engine.SaveVertexStates(ckpt, "wcc.ckpt");

  // A fresh engine restores the converged labels without recomputation.
  InMemoryEngine<WccAlgorithm> fresh(config, edges, info.num_vertices);
  fresh.LoadVertexStates(ckpt, "wcc.ckpt");
  std::vector<VertexId> restored(info.num_vertices);
  fresh.VertexFold(0, [&restored](int acc, VertexId v, const WccAlgorithm::VertexState& s) {
    restored[v] = s.label;
    return acc;
  });
  EXPECT_EQ(restored, done.labels);
}

TEST(CheckpointTest, ResumedRunReachesSameFixpoint) {
  EdgeList edges = TestGraph(5);
  GraphInfo info = ScanEdges(edges);
  SimDevice ckpt("ckpt", DeviceProfile::Instant());
  InMemoryConfig config;
  config.threads = 2;

  // Interrupted run: only 2 iterations, then checkpoint.
  WccAlgorithm algo;
  InMemoryEngine<WccAlgorithm> first(config, edges, info.num_vertices);
  first.InitVertices(algo);
  first.RunIteration(algo);
  first.RunIteration(algo);
  first.SaveVertexStates(ckpt, "partial.ckpt");

  // Resume in a new engine and run to convergence.
  InMemoryEngine<WccAlgorithm> resumed(config, edges, info.num_vertices);
  resumed.LoadVertexStates(ckpt, "partial.ckpt");
  WccAlgorithm algo2;
  while (resumed.RunIteration(algo2).updates_generated > 0) {
  }
  std::vector<VertexId> labels(info.num_vertices);
  resumed.VertexFold(0, [&labels](int acc, VertexId v, const WccAlgorithm::VertexState& s) {
    labels[v] = s.label;
    return acc;
  });

  // Reference: uninterrupted run.
  InMemoryEngine<WccAlgorithm> straight(config, edges, info.num_vertices);
  EXPECT_EQ(labels, RunWcc(straight).labels);
}

TEST(CheckpointTest, OutOfCoreMemoryResidentVertices) {
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  SimDevice ckpt("ckpt", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);

  OutOfCoreConfig config;
  config.threads = 2;
  config.io_unit_bytes = 8 << 10;
  OutOfCoreEngine<PageRankAlgorithm> engine(config, dev, dev, dev, "input", info);
  ASSERT_TRUE(engine.vertices_in_memory());
  PageRankResult done = RunPageRank(engine, 3);
  engine.SaveVertexStates(ckpt, "pr.ckpt");

  OutOfCoreEngine<PageRankAlgorithm> fresh(config, dev, dev, dev, "input", info);
  fresh.LoadVertexStates(ckpt, "pr.ckpt");
  std::vector<float> restored(info.num_vertices);
  fresh.VertexFold(0, [&restored](int acc, VertexId v,
                                  const PageRankAlgorithm::VertexState& s) {
    restored[v] = s.rank;
    return acc;
  });
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_FLOAT_EQ(restored[v], done.ranks[v]) << v;
  }
}

TEST(CheckpointTest, OutOfCoreFileResidentVertices) {
  EdgeList edges = TestGraph(9);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  SimDevice ckpt("ckpt", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);

  OutOfCoreConfig config;
  config.threads = 2;
  config.io_unit_bytes = 8 << 10;
  config.num_partitions = 8;
  config.allow_vertex_memory_opt = false;
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  ASSERT_FALSE(engine.vertices_in_memory());
  WccResult done = RunWcc(engine);
  engine.SaveVertexStates(ckpt, "wcc.ckpt");

  OutOfCoreEngine<WccAlgorithm> fresh(config, dev, dev, dev, "input", info);
  fresh.LoadVertexStates(ckpt, "wcc.ckpt");
  std::vector<VertexId> restored(info.num_vertices);
  fresh.VertexFold(0, [&restored](int acc, VertexId v, const WccAlgorithm::VertexState& s) {
    restored[v] = s.label;
    return acc;
  });
  EXPECT_EQ(restored, done.labels);
}

// Checkpoints carry the active vertex mapping: restoring under the same
// partitioner (same seed => same deterministic mapping) works, restoring
// under a different one fails loudly instead of scrambling states.
TEST(CheckpointTest, MappedCheckpointRestoresUnderSameMapping) {
  EdgeList edges = TestGraph(13);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  SimDevice ckpt("ckpt", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);

  auto partitioner = MakePartitioner("greedy");
  OutOfCoreConfig config;
  config.threads = 2;
  config.io_unit_bytes = 8 << 10;
  config.num_partitions = 4;
  config.partitioner = partitioner.get();
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  WccResult done = RunWcc(engine);
  engine.SaveVertexStates(ckpt, "wcc.ckpt");

  auto same = MakePartitioner("greedy");
  OutOfCoreConfig config2 = config;
  config2.partitioner = same.get();
  OutOfCoreEngine<WccAlgorithm> fresh(config2, dev, dev, dev, "input", info);
  fresh.LoadVertexStates(ckpt, "wcc.ckpt");
  std::vector<VertexId> restored(info.num_vertices);
  fresh.VertexMap([&restored](VertexId v, const WccAlgorithm::VertexState& s) {
    restored[v] = s.label;
  });
  EXPECT_EQ(restored, done.labels);
}

TEST(CheckpointTest, MappedCheckpointRejectsDifferentPartitioner) {
  EdgeList edges = TestGraph(15);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  SimDevice ckpt("ckpt", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);

  auto greedy = MakePartitioner("greedy");
  OutOfCoreConfig config;
  config.threads = 1;
  config.io_unit_bytes = 8 << 10;
  config.num_partitions = 4;
  config.partitioner = greedy.get();
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  RunWcc(engine);
  engine.SaveVertexStates(ckpt, "wcc.ckpt");

  // Same family of layouts (mapped) but a different assignment.
  auto hash = MakePartitioner("hash");
  OutOfCoreConfig hash_config = config;
  hash_config.partitioner = hash.get();
  OutOfCoreEngine<WccAlgorithm> other(hash_config, dev, dev, dev, "input", info);
  EXPECT_DEATH(other.LoadVertexStates(ckpt, "wcc.ckpt"), "different vertex mapping");

  // Range layout (no mapping at all) is also a mismatch.
  OutOfCoreConfig range_config = config;
  range_config.partitioner = nullptr;
  OutOfCoreEngine<WccAlgorithm> range_engine(range_config, dev, dev, dev, "input", info);
  EXPECT_DEATH(range_engine.LoadVertexStates(ckpt, "wcc.ckpt"),
               "restore with the same --partitioner");
}

TEST(CheckpointTest, RangeCheckpointPortableAcrossPartitionCounts) {
  // Range layouts' dense order is the identity for every partition count,
  // so those checkpoints restore across counts (and across engines).
  EdgeList edges = TestGraph(17);
  GraphInfo info = ScanEdges(edges);
  SimDevice ckpt("ckpt", DeviceProfile::Instant());
  InMemoryConfig config;
  config.threads = 2;
  config.num_partitions = 8;
  InMemoryEngine<WccAlgorithm> engine(config, edges, info.num_vertices);
  WccResult done = RunWcc(engine);
  engine.SaveVertexStates(ckpt, "wcc.ckpt");

  InMemoryConfig other = config;
  other.num_partitions = 2;
  InMemoryEngine<WccAlgorithm> fresh(other, edges, info.num_vertices);
  fresh.LoadVertexStates(ckpt, "wcc.ckpt");
  std::vector<VertexId> restored(info.num_vertices);
  fresh.VertexFold(0, [&restored](int acc, VertexId v, const WccAlgorithm::VertexState& s) {
    restored[v] = s.label;
    return acc;
  });
  EXPECT_EQ(restored, done.labels);
}

TEST(CheckpointTest, MismatchedCheckpointAborts) {
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  SimDevice ckpt("ckpt", DeviceProfile::Instant());
  FileId f = ckpt.Create("bad.ckpt");
  std::vector<std::byte> junk(13);
  ckpt.Write(f, 0, junk);
  InMemoryConfig config;
  config.threads = 1;
  InMemoryEngine<WccAlgorithm> engine(config, edges, info.num_vertices);
  EXPECT_DEATH(engine.LoadVertexStates(ckpt, "bad.ckpt"), "checkpoint does not match");
}

}  // namespace
}  // namespace xstream
