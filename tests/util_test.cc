// Unit tests for the utility layer.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/aligned.h"
#include "util/format.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace xstream {
namespace {

TEST(AlignedBufferTest, AlignsToIoAlignment) {
  AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kIoAlignment, 0u);
  EXPECT_EQ(buf.size(), 100u);
}

TEST(AlignedBufferTest, EmptyBufferIsValid) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(4096);
  std::memset(a.data(), 0x5a, 4096);
  std::byte* p = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(static_cast<unsigned char>(b.data()[4095]), 0x5a);
}

TEST(AlignedBufferTest, MoveAssignReleasesOld) {
  AlignedBuffer a(4096);
  AlignedBuffer b(8192);
  b = std::move(a);
  EXPECT_EQ(b.size(), 4096u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, FloatInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u) << "all residues should appear in 1000 draws";
}

TEST(SplitMixTest, IsAHashNotIdentity) {
  EXPECT_NE(SplitMix64(0), 0u);
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

TEST(FormatTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(0.61), "0.61s");
  EXPECT_EQ(HumanDuration(372.0), "6m 12s");
  EXPECT_EQ(HumanDuration(4638.0), "1h 17m 18s");
}

TEST(FormatTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(16 * 1024 * 1024), "16M");
  EXPECT_EQ(HumanBytes(512 * 1024), "512K");
}

TEST(FormatTest, HumanCount) {
  EXPECT_EQ(HumanCount(1400000000ULL), "1.4 billion");
  EXPECT_EQ(HumanCount(41700000ULL), "41.7 million");
  EXPECT_EQ(HumanCount(403394ULL), "403,394");
}

TEST(OptionsTest, ParsesKeyValue) {
  const char* argv[] = {"prog", "--scale=20", "--name=rmat", "--flag"};
  Options opts(4, const_cast<char**>(argv));
  EXPECT_EQ(opts.GetInt("scale", 0), 20);
  EXPECT_EQ(opts.GetString("name", ""), "rmat");
  EXPECT_TRUE(opts.GetBool("flag", false));
  EXPECT_EQ(opts.GetInt("missing", 42), 42);
}

TEST(OptionsTest, TypedAccessors) {
  Options opts;
  opts.Set("x", "2.5");
  opts.Set("b", "true");
  EXPECT_DOUBLE_EQ(opts.GetDouble("x", 0.0), 2.5);
  EXPECT_TRUE(opts.GetBool("b", false));
  EXPECT_TRUE(opts.Has("x"));
  EXPECT_FALSE(opts.Has("y"));
}

TEST(RunningStatTest, MeanAndStdDev) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 1e-3);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStatTest, CiShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    small.Add(rng.NextDouble());
  }
  Rng rng2(5);
  for (int i = 0; i < 400; ++i) {
    large.Add(rng2.NextDouble());
  }
  EXPECT_LT(large.Ci99(), small.Ci99());
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_LT(t.Seconds(), 10.0);
}

TEST(IntervalAccumulatorTest, SumsIntervals) {
  IntervalAccumulator acc;
  acc.Start();
  acc.Stop();
  acc.Start();
  acc.Stop();
  EXPECT_GE(acc.TotalSeconds(), 0.0);
  acc.Clear();
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace xstream
