// The observability layer (src/obs/): sharded-counter exactness under
// concurrency, histogram bucket/percentile behaviour, registry JSON
// snapshots, phase-tracer span recording and Chrome-trace export, and the
// RunStats JSON schema staying identical across all three engine modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/wcc.h"
#include "core/hybrid_engine.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

// Minimal JSON validity scanner: strings with escapes, balanced {} / [],
// no trailing garbage. Not a parser — enough to catch emitter bugs
// (unbalanced containers, missing commas produce invalid tokens only a
// real parser would see, so the schema tests below also match exact keys).
bool JsonWellFormed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') {
          return false;
        }
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') {
          return false;
        }
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && !s.empty();
}

// Keys of the top-level object, in order of appearance.
std::vector<std::string> TopLevelKeys(const std::string& json) {
  std::vector<std::string> keys;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::string current;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
        current.push_back(c);
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        if (depth == 1 && i + 1 < json.size() && json[i + 1] == ':') {
          keys.push_back(current);
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      current.clear();
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    }
  }
  return keys;
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, AddWithArgumentAccumulates) {
  obs::Counter c;
  c.Add(5);
  c.Add(37);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  obs::Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

TEST(HistogramTest, PercentileSanity) {
  obs::Histogram h;
  // 90 small values in (1,2] and 10 large ones in (512,1024]: p50 must land
  // in the small bucket, p99 in the large one. Percentile returns the
  // bucket's upper bound, so the answers are exact powers of two.
  for (int i = 0; i < 90; ++i) {
    h.Observe(1.5);
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(600.0);
  }
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_NEAR(h.Sum(), 90 * 1.5 + 10 * 600.0, 1e-9);
  EXPECT_NEAR(h.Mean(), h.Sum() / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.9), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 1024.0);
}

TEST(HistogramTest, EdgeValues) {
  obs::Histogram h;
  h.Observe(0.0);   // bucket 0
  h.Observe(-3.0);  // clamped into bucket 0
  h.Observe(1.0);   // still bucket 0 (<= 1)
  EXPECT_EQ(h.BucketCount(0), 3u);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::Histogram().Percentile(0.5), 0.0);  // empty
}

TEST(RegistryTest, JsonSnapshotWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").Add(7);
  reg.gauge("a.level").Set(3.5);
  reg.histogram("a.lat_us").Observe(12.0);
  std::string json = reg.ToJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"a.count\":7"), std::string::npos) << json;
  std::vector<std::string> keys = TopLevelKeys(json);
  EXPECT_EQ(keys, (std::vector<std::string>{"counters", "gauges", "histograms"}));
}

TEST(RegistryTest, HandlesAreStableAndNamesShared) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same.name");
  obs::Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  obs::MetricGroup group(reg, "grp");
  group.counter("x").Add(3);
  EXPECT_EQ(reg.counter("grp.x").Value(), 3u);
}

TEST(TracerTest, SpansRecordAndNestByContainment) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Reset();
  tracer.Enable();
  {
    obs::TraceSpan outer("iteration");
    {
      obs::TraceSpan inner("scatter", "phase", /*partition=*/3);
    }
  }
  tracer.Disable();
  std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first, so the scatter event is recorded first.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "scatter");
  EXPECT_EQ(inner.partition, 3);
  EXPECT_STREQ(outer.name, "iteration");
  EXPECT_EQ(inner.tid, outer.tid);
  // Time containment: the inner span nests inside the outer one.
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);

  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"scatter\""), std::string::npos);
  tracer.Reset();
}

TEST(TracerTest, DisabledSpansCostNothingAndRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Reset();
  ASSERT_FALSE(tracer.enabled());
  {
    obs::TraceSpan span("scatter");
    obs::ManualSpan manual;
    manual.Start(1);
    manual.Stop("gather");
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, ManualSpanCancelDropsTheSpan) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Reset();
  tracer.Enable();
  obs::ManualSpan span;
  span.Start(0);
  span.Cancel();
  span.Stop("scatter");  // after Cancel: must not record
  tracer.Disable();
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.Reset();
}

TEST(TracerTest, SampleRateZeroSuppressesEverySpan) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Reset();
  tracer.Enable();
  tracer.set_sample_rate(0.0);
  for (int i = 0; i < 100; ++i) {
    obs::TraceSpan span("scatter", "phase", i);
    obs::ManualSpan manual;
    manual.Start(0);
    manual.Stop("gather");
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);  // never sampled, so never dropped

  // Rate 1.0 restores record-everything (the default).
  tracer.set_sample_rate(1.0);
  { obs::TraceSpan span("scatter"); }
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
  tracer.Disable();
  tracer.Reset();
}

TEST(TracerTest, MidRateSamplingKeepsAFraction) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Reset();
  tracer.Enable();
  tracer.set_sample_rate(0.5);
  constexpr int kSpans = 4000;
  for (int i = 0; i < kSpans; ++i) {
    obs::TraceSpan span("scatter");
  }
  size_t kept = tracer.Snapshot().size();
  // xorshift32 at rate 0.5: binomial(4000, 0.5) stays within ±10% of the
  // mean with overwhelming probability (and the draw sequence is
  // deterministic per thread, so this cannot flake).
  EXPECT_GT(kept, kSpans * 2 / 5) << kept;
  EXPECT_LT(kept, kSpans * 3 / 5) << kept;
  tracer.set_sample_rate(1.0);
  tracer.Disable();
  tracer.Reset();
}

TEST(TracerTest, RingCapacityBoundsRetentionKeepingNewest) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Reset();
  tracer.set_ring_capacity(4);
  tracer.Enable();
  for (int i = 0; i < 10; ++i) {
    obs::TraceSpan span("scatter", "phase", /*partition=*/i);
  }
  tracer.Disable();
  std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest-first chronological order, newest four retained: partitions 6..9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].partition, 6 + i);
  }
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"droppedSpans\":6"), std::string::npos) << json;

  // Shrinking an occupied ring keeps the newest spans and counts the rest
  // as dropped; capacity 0 returns to unbounded.
  tracer.set_ring_capacity(2);
  EXPECT_EQ(tracer.Snapshot().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 8u);
  tracer.set_ring_capacity(0);
  tracer.Reset();
  EXPECT_EQ(tracer.dropped(), 0u);
}

// Every engine mode must emit the same RunStats JSON schema — unused fields
// as zeroes, never missing — so dashboards and bench_diff keys stay valid
// regardless of which engine produced the run.
TEST(RunStatsJsonTest, SchemaIdenticalAcrossEngineModes) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 7;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);

  InMemoryConfig mem_config;
  mem_config.threads = 2;
  InMemoryEngine<WccAlgorithm> mem(mem_config, edges, info.num_vertices);
  RunStats mem_stats = RunWcc(mem).stats;

  SimDevice ooc_dev("ooc", DeviceProfile::Instant());
  WriteEdgeFile(ooc_dev, "input", edges);
  OutOfCoreConfig ooc_config;
  ooc_config.threads = 2;
  ooc_config.num_partitions = 4;
  ooc_config.io_unit_bytes = 16 << 10;
  OutOfCoreEngine<WccAlgorithm> ooc(ooc_config, ooc_dev, ooc_dev, ooc_dev, "input", info);
  RunStats ooc_stats = RunWcc(ooc).stats;

  SimDevice hyb_dev("hyb", DeviceProfile::Instant());
  WriteEdgeFile(hyb_dev, "input", edges);
  HybridConfig hyb_config;
  hyb_config.threads = 2;
  hyb_config.num_partitions = 4;
  hyb_config.io_unit_bytes = 16 << 10;
  hyb_config.memory_budget_bytes = 1 << 20;
  HybridEngine<WccAlgorithm> hyb(hyb_config, hyb_dev, hyb_dev, hyb_dev, "input", info);
  RunStats hyb_stats = RunWcc(hyb).stats;

  std::string mem_json = mem_stats.ToJson();
  std::string ooc_json = ooc_stats.ToJson();
  std::string hyb_json = hyb_stats.ToJson();
  EXPECT_TRUE(JsonWellFormed(mem_json));
  EXPECT_TRUE(JsonWellFormed(ooc_json));
  EXPECT_TRUE(JsonWellFormed(hyb_json));

  std::vector<std::string> mem_keys = TopLevelKeys(mem_json);
  EXPECT_FALSE(mem_keys.empty());
  EXPECT_EQ(mem_keys, TopLevelKeys(ooc_json));
  EXPECT_EQ(mem_keys, TopLevelKeys(hyb_json));
  std::set<std::string> key_set(mem_keys.begin(), mem_keys.end());
  EXPECT_TRUE(key_set.count("iterations"));
  EXPECT_TRUE(key_set.count("update_file_bytes"));
  EXPECT_TRUE(key_set.count("per_iteration"));

  // PublishTo mirrors the snapshot into the registry without throwing, and
  // republishing is idempotent for the monotonic counters.
  mem_stats.PublishTo("obs_test.run");
  mem_stats.PublishTo("obs_test.run");
  EXPECT_EQ(obs::MetricsRegistry::Global().counter("obs_test.run.edges_streamed").Value(),
            mem_stats.edges_streamed);
}

}  // namespace
}  // namespace xstream
