// ResidencyPlanner (core/residency.h): the greedy budgeted pin-set solver
// behind the hybrid engine, plus the sizing-level budget resolution.
#include <gtest/gtest.h>

#include "core/hybrid_store.h"
#include "core/partition.h"
#include "core/residency.h"
#include "core/sizing.h"
#include "util/env.h"

namespace xstream {
namespace {

PartitionResidencyStats Part(uint64_t vertex_bytes, uint64_t update_bytes,
                             uint64_t avoided) {
  PartitionResidencyStats s;
  s.vertex_bytes = vertex_bytes;
  s.update_buffer_bytes = update_bytes;
  s.avoided_bytes_per_iteration = avoided;
  return s;
}

TEST(ResidencyPlannerTest, ZeroBudgetPinsNothing) {
  ResidencyPlanner planner(0);
  ResidencyPlan plan = planner.Plan({Part(10, 10, 1000), Part(10, 10, 1000)});
  EXPECT_EQ(plan.resident_count(), 0u);
  EXPECT_EQ(plan.resident_bytes, 0u);
  EXPECT_EQ(plan.avoided_bytes_per_iteration, 0u);
}

TEST(ResidencyPlannerTest, AmpleBudgetPinsEverythingUseful) {
  ResidencyPlanner planner(1 << 20);
  ResidencyPlan plan =
      planner.Plan({Part(10, 10, 100), Part(20, 0, 50), Part(5, 5, 0)});
  EXPECT_TRUE(plan.resident[0]);
  EXPECT_TRUE(plan.resident[1]);
  EXPECT_FALSE(plan.resident[2]);  // zero avoided bytes: pinning buys nothing
  EXPECT_EQ(plan.resident_bytes, 40u);
  EXPECT_EQ(plan.avoided_bytes_per_iteration, 150u);
}

TEST(ResidencyPlannerTest, GreedyPrefersDensityNotRawSavings) {
  // Partition 1 saves the most in absolute terms but is 100x the cost;
  // under a tight budget the two dense partitions win.
  ResidencyPlanner planner(200);
  ResidencyPlan plan =
      planner.Plan({Part(100, 0, 1000), Part(10000, 0, 2000), Part(100, 0, 900)});
  EXPECT_TRUE(plan.resident[0]);
  EXPECT_FALSE(plan.resident[1]);
  EXPECT_TRUE(plan.resident[2]);
  EXPECT_EQ(plan.resident_bytes, 200u);
}

TEST(ResidencyPlannerTest, OversizedCandidateIsSkippedNotTerminal) {
  // The densest partition does not fit; the budget must flow past it to the
  // smaller ones instead of stopping.
  ResidencyPlanner planner(50);
  ResidencyPlan plan = planner.Plan({Part(1000, 0, 100000), Part(25, 0, 100), Part(25, 0, 90)});
  EXPECT_FALSE(plan.resident[0]);
  EXPECT_TRUE(plan.resident[1]);
  EXPECT_TRUE(plan.resident[2]);
}

TEST(ResidencyPlannerTest, DeterministicTieBreakByPartitionId) {
  ResidencyPlanner planner(10);
  ResidencyPlan plan = planner.Plan({Part(10, 0, 100), Part(10, 0, 100)});
  EXPECT_TRUE(plan.resident[0]);
  EXPECT_FALSE(plan.resident[1]);
}

// ---------------------------------------------------------------------------
// PlanDelta: the incremental solve with migration hysteresis.

TEST(ResidencyPlanDeltaTest, FirstDeltaFromEmptyPromotesTheTargetSet) {
  ResidencyPlanner planner(100);
  planner.set_hysteresis(1);
  ResidencyPlan current;
  current.resident.assign(3, false);
  ResidencyDelta d = planner.PlanDelta(current, {Part(50, 0, 500), Part(50, 0, 400),
                                                 Part(50, 0, 300)});
  EXPECT_TRUE(d.evict.empty());
  EXPECT_EQ(d.promote, (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(d.plan.resident[0]);
  EXPECT_TRUE(d.plan.resident[1]);
  EXPECT_FALSE(d.plan.resident[2]);
  EXPECT_EQ(d.plan.resident_bytes, 100u);
}

TEST(ResidencyPlanDeltaTest, FlipFlopProducesZeroMigrationsAtHysteresisTwo) {
  // A partition that flips hot/cold every iteration never accumulates two
  // consecutive wins (or losses), so at k=2 it must never migrate — the
  // thrash the hysteresis exists to suppress.
  ResidencyPlanner planner(100);
  planner.set_hysteresis(2);
  ResidencyPlan current;
  current.resident = {true, false};
  current.resident_bytes = 100;
  for (int iter = 0; iter < 10; ++iter) {
    bool p1_hot = iter % 2 == 0;  // partition 1 outbids partition 0 on even iters
    ResidencyDelta d = planner.PlanDelta(
        current, {Part(100, 0, p1_hot ? 100 : 1000), Part(100, 0, p1_hot ? 1000 : 100)});
    EXPECT_TRUE(d.empty()) << "iteration " << iter << " migrated";
    EXPECT_EQ(d.plan.resident, current.resident);
  }
}

TEST(ResidencyPlanDeltaTest, StableWinMigratesAfterHysteresisIterations) {
  ResidencyPlanner planner(100);
  planner.set_hysteresis(2);
  ResidencyPlan current;
  current.resident = {true, false};
  // Partition 1 wins decisively and stays hot: no migration on the first
  // disagreeing call, the swap on the second.
  std::vector<PartitionResidencyStats> hot = {Part(100, 0, 100), Part(100, 0, 1000)};
  ResidencyDelta first = planner.PlanDelta(current, hot);
  EXPECT_TRUE(first.empty());
  ResidencyDelta second = planner.PlanDelta(current, hot);
  EXPECT_EQ(second.evict, (std::vector<uint32_t>{0}));
  EXPECT_EQ(second.promote, (std::vector<uint32_t>{1}));
  EXPECT_FALSE(second.plan.resident[0]);
  EXPECT_TRUE(second.plan.resident[1]);
}

TEST(ResidencyPlanDeltaTest, ForceBypassesHysteresisButNotBudget) {
  // Budget reassignments (the scheduler's re-split) must land promptly:
  // force applies the full difference in one delta, but promotions still
  // respect the byte budget.
  ResidencyPlanner planner(100);
  planner.set_hysteresis(3);
  ResidencyPlan current;
  current.resident = {true, false, false};
  ResidencyDelta d = planner.PlanDelta(
      current, {Part(100, 0, 10), Part(60, 0, 1000), Part(60, 0, 900)}, /*force=*/true);
  EXPECT_EQ(d.evict, (std::vector<uint32_t>{0}));
  EXPECT_EQ(d.promote, (std::vector<uint32_t>{1}));  // 2 would overflow the budget
  EXPECT_EQ(d.plan.resident_bytes, 60u);
}

TEST(ResidencyPlanDeltaTest, BlockedPromotionKeepsItsStreakAndEntersWhenRoomFrees) {
  // Partition 1 deserves a pin immediately, but the budget is full of
  // partition 0, whose loss the hysteresis is still confirming. The winner
  // must not lose its accumulated streak while it waits: the moment the
  // eviction lands, the promotion lands with it.
  ResidencyPlanner planner(100);
  planner.set_hysteresis(3);
  ResidencyPlan current;
  current.resident = {true, false};
  std::vector<PartitionResidencyStats> hot = {Part(100, 0, 100), Part(100, 0, 1000)};
  EXPECT_TRUE(planner.PlanDelta(current, hot).empty());
  EXPECT_TRUE(planner.PlanDelta(current, hot).empty());
  ResidencyDelta third = planner.PlanDelta(current, hot);
  EXPECT_EQ(third.evict, (std::vector<uint32_t>{0}));
  EXPECT_EQ(third.promote, (std::vector<uint32_t>{1}));
}

TEST(ResidencyPlanDeltaTest, AgreementResetsTheStreak) {
  ResidencyPlanner planner(100);
  planner.set_hysteresis(2);
  ResidencyPlan current;
  current.resident = {true, false};
  std::vector<PartitionResidencyStats> hot = {Part(100, 0, 100), Part(100, 0, 1000)};
  std::vector<PartitionResidencyStats> calm = {Part(100, 0, 1000), Part(100, 0, 100)};
  EXPECT_TRUE(planner.PlanDelta(current, hot).empty());   // streak 1
  EXPECT_TRUE(planner.PlanDelta(current, calm).empty());  // agreement: reset
  EXPECT_TRUE(planner.PlanDelta(current, hot).empty());   // streak 1 again
  EXPECT_FALSE(planner.PlanDelta(current, hot).empty());  // streak 2: migrate
}

TEST(BuildHybridPlanInputsTest, PricesVertexAndCrossTraffic) {
  PartitionLayout layout(100, 2);  // partitions of 50 vertices each
  std::vector<uint64_t> dst = {40, 10};
  std::vector<uint64_t> local = {30, 5};
  auto inputs = BuildHybridPlanInputs(layout, /*vertex_state_bytes=*/8,
                                      /*update_bytes=*/8, dst, local,
                                      /*absorb_local_updates=*/true);
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0].vertex_bytes, 400u);
  EXPECT_EQ(inputs[0].update_buffer_bytes, 320u);  // worst case: every in-edge
  // 3 vertex-array passes + write-and-read-back of the 10 crossing updates.
  EXPECT_EQ(inputs[0].avoided_bytes_per_iteration, 3 * 400u + 2 * 10 * 8u);
  // Without absorption every incoming update would have hit the file.
  auto no_absorb = BuildHybridPlanInputs(layout, 8, 8, dst, local, false);
  EXPECT_EQ(no_absorb[0].avoided_bytes_per_iteration, 3 * 400u + 2 * 40 * 8u);
}

TEST(BuildHybridPlanInputsTest, EdgePinningPricesEdgeStreamsIntoCostAndSavings) {
  PartitionLayout layout(100, 2);
  std::vector<uint64_t> dst = {40, 10};
  std::vector<uint64_t> local = {30, 5};
  std::vector<uint64_t> src = {25, 35};  // edges by source partition
  auto inputs = BuildHybridPlanInputs(layout, 8, 8, dst, local, true, &src);
  // The pin now also holds (and each iteration stops re-reading) the edge
  // stream.
  EXPECT_EQ(inputs[0].edge_bytes, 25 * sizeof(Edge));
  EXPECT_EQ(inputs[0].cost(), 400u + 320u + 25 * sizeof(Edge));
  EXPECT_EQ(inputs[0].avoided_bytes_per_iteration,
            3 * 400u + 2 * 10 * 8u + 25 * sizeof(Edge));
}

TEST(ResolveMemoryBudgetTest, AutoDetectsAndClampsToPhysicalMemory) {
  uint64_t physical = PhysicalMemoryBytes();
  uint64_t auto_budget = ResolveMemoryBudget(0);
  EXPECT_GT(auto_budget, 0u);
  if (physical > 0) {
    EXPECT_LE(auto_budget, physical);
    // An absurd request is clamped (with a warning), never fatal.
    EXPECT_EQ(ResolveMemoryBudget(UINT64_MAX), physical);
  }
  EXPECT_EQ(ResolveMemoryBudget(1 << 20), uint64_t{1} << 20);
}

}  // namespace
}  // namespace xstream
