// End-to-end tests for the xstream-serve service (src/serve/service.*):
// the full REST surface over a real ephemeral-port HTTP server, with every
// algorithm's result compared bit-for-bit against a solo JobScheduler run on
// the same graph; fault injection (malformed JSON, unknown graph/algo,
// oversized bodies, client disconnects, drain); per-tenant quota rejection
// with Retry-After; and a randomized multi-client stress run that doubles as
// the TSan workload for the serving path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "scheduler/algo_jobs.h"
#include "scheduler/scan_source.h"
#include "scheduler/scheduler.h"
#include "serve/service.h"
#include "threads/thread_pool.h"
#include "util/json.h"

namespace xstream {
namespace {

// The service and the solo oracle must agree on threads and partitions:
// scatter/gather results are bit-deterministic for a fixed (pool size,
// layout) pair, which is exactly what the bit-identical assertions rely on.
constexpr int kThreads = 2;
constexpr uint32_t kPartitions = 8;

EdgeList TestGraph(uint64_t seed, uint32_t scale = 9) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// ---- Raw-socket HTTP client ------------------------------------------------

struct HttpReply {
  int status = 0;
  std::string headers;  // raw header block
  std::string body;
};

// One blocking request against 127.0.0.1:port. The exporter closes after
// each response, so "read to EOF" delimits the body. POST/DELETE bodies go
// out with an exact Content-Length, matching what curl sends.
HttpReply Request(int port, const std::string& method, const std::string& target,
                  const std::string& body = "") {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to 127.0.0.1:" << port;
  std::string req = method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty()) {
    req += "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n" + body;
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    ADD_FAILURE() << "no header terminator in reply: " << raw;
    return reply;
  }
  reply.headers = raw.substr(0, header_end);
  reply.body = raw.substr(header_end + 4);
  if (raw.size() > 12 && raw.rfind("HTTP/1.1 ", 0) == 0) {
    reply.status = std::stoi(raw.substr(9, 3));
  }
  return reply;
}

HttpReply Get(int port, const std::string& target) { return Request(port, "GET", target); }

// Connects, fires the request, and slams the connection shut without reading
// a byte — the poke for the disconnect-survival test.
void RequestAndDisconnect(int port, const std::string& method, const std::string& target,
                          const std::string& body = "") {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string req = method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty()) {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n" + body;
  ::send(fd, req.data(), req.size(), 0);
  // An abortive close (SO_LINGER 0) turns into an RST the server's send()
  // hits mid-response — the nastiest client disconnect shape.
  struct linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

// ---- Reply decoding helpers ------------------------------------------------

JsonValue MustParse(const std::string& body) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(body, &value, &error)) << error << " in: " << body;
  return value;
}

uint64_t JobIdOf(const HttpReply& reply) {
  JsonValue v = MustParse(reply.body);
  const JsonValue* id = v.Get("id");
  EXPECT_NE(id, nullptr) << reply.body;
  return id == nullptr ? 0 : static_cast<uint64_t>(id->as_int());
}

// One "values" element back to a double. Non-finite values travel as the
// strings "Infinity"/"-Infinity"/"NaN" (JSON has no non-finite numbers).
double ResultValue(const JsonValue& v) {
  if (v.is_number()) {
    return v.as_double();
  }
  if (v.is_string()) {
    if (v.as_string() == "Infinity") {
      return std::numeric_limits<double>::infinity();
    }
    if (v.as_string() == "-Infinity") {
      return -std::numeric_limits<double>::infinity();
    }
    if (v.as_string() == "NaN") {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  ADD_FAILURE() << "unexpected result element type";
  return 0.0;
}

std::string HeaderValueOf(const HttpReply& reply, const std::string& name) {
  // Case-sensitive is fine: our server emits canonical casing.
  std::string needle = "\r\n" + name + ": ";
  size_t pos = reply.headers.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  size_t start = pos + needle.size();
  size_t end = reply.headers.find('\r', start);
  return reply.headers.substr(start, end - start);
}

// ---- Service fixture --------------------------------------------------------

struct ServeHarness {
  explicit ServeHarness(serve::ServiceOptions sopts = {}, uint64_t seed = 21,
                        uint32_t scale = 9)
      : edges(TestGraph(seed, scale)) {
    sopts.engine = "in-memory";
    sopts.threads = kThreads;
    sopts.partitions = kPartitions;
    service = std::make_unique<serve::GraphService>(std::move(sopts));
    serve::GraphSpec spec;
    spec.name = "g";
    spec.edges = edges;
    service->Mount(std::move(spec));
    service->Start(exporter);
    EXPECT_TRUE(exporter.Start(0));
    port = exporter.port();
  }

  ~ServeHarness() {
    service->WaitIdle();  // never tear down under a running pump round
    service->Stop();
    exporter.Stop();
  }

  // POST /v1/jobs; expects 201 and returns the service job id.
  uint64_t Submit(const std::string& json) {
    HttpReply reply = Request(port, "POST", "/v1/jobs", json);
    EXPECT_EQ(reply.status, 201) << reply.body;
    return JobIdOf(reply);
  }

  // Polls GET /v1/jobs/<id> until the state settles. Returns the final
  // status body.
  JsonValue WaitState(uint64_t id, const std::string& want) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (true) {
      HttpReply reply = Get(port, "/v1/jobs/" + std::to_string(id));
      EXPECT_EQ(reply.status, 200) << reply.body;
      JsonValue v = MustParse(reply.body);
      const JsonValue* state = v.Get("state");
      if (state != nullptr && state->as_string() == want) {
        return v;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "job " << id << " never reached \"" << want
                      << "\": " << reply.body;
        return v;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  EdgeList edges;
  std::unique_ptr<serve::GraphService> service;
  obs::HttpExporter exporter;
  int port = 0;
};

// Runs `spec_text` solo through a fresh scheduler on the same graph with the
// same pool size and partition count — the bit-identity oracle.
std::vector<double> SoloRun(const EdgeList& edges, const std::string& spec_text) {
  GraphInfo info = ScanEdges(edges);
  ThreadPool pool(kThreads);
  PartitionLayout layout(info.num_vertices, kPartitions);
  MemoryScanSource source(pool, layout, edges);
  JobScheduler sched(source);
  auto out = std::make_shared<JobOutput>();
  JobId id = sched.Submit(MakeMemoryJob(ParseJobSpec(spec_text), source, out));
  EXPECT_TRUE(sched.Wait(id));
  return out->per_vertex;
}

// ---- End-to-end: every algorithm, bit-identical to a solo run ---------------

TEST(ServeTest, AllAlgorithmsOverHttpMatchSoloSchedulerBitExact) {
  ServeHarness h;
  struct Case {
    const char* request;
    const char* solo_spec;
  };
  const Case cases[] = {
      {R"({"graph":"g","algo":"pagerank","params":{"iters":5}})", "pagerank:iters=5"},
      {R"({"graph":"g","algo":"bfs","params":{"src":0}})", "bfs:src=0"},
      {R"({"graph":"g","algo":"sssp","params":{"src":0}})", "sssp:src=0"},
      {R"({"graph":"g","algo":"wcc"})", "wcc"},
  };

  // Submit all four up front so they co-schedule on shared scans — the
  // strongest form of the claim: sharing must not perturb a single bit.
  std::vector<uint64_t> ids;
  for (const Case& c : cases) {
    HttpReply reply = Request(h.port, "POST", "/v1/jobs", c.request);
    ASSERT_EQ(reply.status, 201) << reply.body;
    uint64_t id = JobIdOf(reply);
    EXPECT_EQ(HeaderValueOf(reply, "Location"), "/v1/jobs/" + std::to_string(id));
    ids.push_back(id);
  }

  for (size_t i = 0; i < ids.size(); ++i) {
    h.WaitState(ids[i], "done");
    HttpReply result = Get(h.port, "/v1/jobs/" + std::to_string(ids[i]) + "/result");
    ASSERT_EQ(result.status, 200) << result.body;
    JsonValue v = MustParse(result.body);
    ASSERT_NE(v.Get("values"), nullptr) << result.body;
    const std::vector<JsonValue>& values = v.Get("values")->as_array();

    std::vector<double> solo = SoloRun(h.edges, cases[i].solo_spec);
    ASSERT_EQ(values.size(), solo.size()) << cases[i].solo_spec;
    for (size_t vtx = 0; vtx < solo.size(); ++vtx) {
      // EXPECT_EQ, not NEAR: %.17g serialization round-trips exactly, so the
      // HTTP path must reproduce the solo run bit for bit.
      EXPECT_EQ(ResultValue(values[vtx]), solo[vtx])
          << cases[i].solo_spec << " vertex " << vtx;
    }
    EXPECT_FALSE(v.Get("summary")->as_string().empty());
  }

  // The serve counters moved on the shared /metrics endpoint.
  HttpReply metrics = Get(h.port, "/metrics");
  EXPECT_NE(metrics.body.find("xstream_serve_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("xstream_serve_jobs_completed_total"), std::string::npos);
}

TEST(ServeTest, LateSubmissionJoinsWhileEarlierJobsRun) {
  ServeHarness h;
  // A long job keeps the scheduler busy...
  uint64_t slow =
      h.Submit(R"({"graph":"g","algo":"pagerank","params":{"iters":400}})");
  // ...and a fresh submission lands mid-flight, gets admitted at a partition
  // boundary and completes correctly.
  uint64_t late = h.Submit(R"({"graph":"g","algo":"bfs","params":{"src":0}})");
  h.WaitState(late, "done");
  HttpReply result = Get(h.port, "/v1/jobs/" + std::to_string(late) + "/result");
  ASSERT_EQ(result.status, 200);
  JsonValue parsed = MustParse(result.body);
  const std::vector<JsonValue>& values = parsed.Get("values")->as_array();
  std::vector<double> solo = SoloRun(h.edges, "bfs:src=0");
  ASSERT_EQ(values.size(), solo.size());
  for (size_t vtx = 0; vtx < solo.size(); ++vtx) {
    EXPECT_EQ(ResultValue(values[vtx]), solo[vtx]) << "vertex " << vtx;
  }
  h.WaitState(slow, "done");
}

// ---- Fault injection --------------------------------------------------------

TEST(ServeTest, MalformedAndUnknownRequestsGetProperStatusCodes) {
  ServeHarness h;
  // Malformed JSON → 400 with a parse diagnostic.
  HttpReply bad_json = Request(h.port, "POST", "/v1/jobs", "{\"graph\":\"g\",");
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_NE(bad_json.body.find("malformed JSON"), std::string::npos) << bad_json.body;
  // Non-object body → 400.
  EXPECT_EQ(Request(h.port, "POST", "/v1/jobs", "[1,2]").status, 400);
  // Unknown graph → 404; unknown algo / unknown param → 400.
  EXPECT_EQ(
      Request(h.port, "POST", "/v1/jobs", R"({"graph":"nope","algo":"bfs"})").status, 404);
  EXPECT_EQ(
      Request(h.port, "POST", "/v1/jobs", R"({"graph":"g","algo":"dijkstra"})").status, 400);
  EXPECT_EQ(Request(h.port, "POST", "/v1/jobs",
                    R"({"graph":"g","algo":"bfs","params":{"hops":3}})")
                .status,
            400);
  // Unknown routes and malformed ids → 404; wrong methods → 405.
  EXPECT_EQ(Get(h.port, "/v1/nope").status, 404);
  EXPECT_EQ(Get(h.port, "/v1/jobs/abc").status, 404);
  EXPECT_EQ(Get(h.port, "/v1/jobs/999999").status, 404);
  EXPECT_EQ(Request(h.port, "PUT", "/v1/jobs", "{}").status, 405);
  EXPECT_EQ(Request(h.port, "POST", "/metrics").status, 405);

  // Result-state machinery: 409 while queued/running, 202 on cancel, 410
  // after the cancellation lands.
  uint64_t id = h.Submit(R"({"graph":"g","algo":"pagerank","params":{"iters":400}})");
  HttpReply not_ready = Get(h.port, "/v1/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(not_ready.status, 409);
  EXPECT_EQ(HeaderValueOf(not_ready, "Retry-After"), "1");
  HttpReply cancel = Request(h.port, "DELETE", "/v1/jobs/" + std::to_string(id));
  EXPECT_EQ(cancel.status, 202);
  h.WaitState(id, "cancelled");
  EXPECT_EQ(Get(h.port, "/v1/jobs/" + std::to_string(id) + "/result").status, 410);
}

TEST(ServeTest, OversizedBodyGets413WithoutReadingIt) {
  serve::ServiceOptions sopts;
  sopts.max_body_bytes = 256;
  ServeHarness h(std::move(sopts));
  std::string huge = R"({"graph":"g","algo":"bfs","padding":")" +
                     std::string(4096, 'x') + "\"}";
  HttpReply reply = Request(h.port, "POST", "/v1/jobs", huge);
  EXPECT_EQ(reply.status, 413);
  // The limit applies to bodies, not to the service itself: a small request
  // on the same server still works.
  EXPECT_EQ(Request(h.port, "POST", "/v1/jobs", R"({"graph":"g","algo":"wcc"})").status,
            201);
}

TEST(ServeTest, ClientDisconnectMidResponseDoesNotKillTheDaemon) {
  // A bigger graph makes the result body outgrow socket buffers, so the
  // server is still send()ing when the RST arrives.
  ServeHarness h({}, 23, /*scale=*/12);
  uint64_t id = h.Submit(R"({"graph":"g","algo":"pagerank","params":{"iters":3}})");
  h.WaitState(id, "done");
  std::string result_path = "/v1/jobs/" + std::to_string(id) + "/result";
  for (int i = 0; i < 8; ++i) {
    RequestAndDisconnect(h.port, "GET", result_path);
    RequestAndDisconnect(h.port, "POST", "/v1/jobs",
                         R"({"graph":"g","algo":"wcc"})");
  }
  // The exporter thread survived every RST: full requests still complete.
  HttpReply alive = Get(h.port, result_path);
  EXPECT_EQ(alive.status, 200);
  EXPECT_NE(alive.body.find("\"values\""), std::string::npos);
  EXPECT_EQ(Get(h.port, "/healthz").status, 200);
}

TEST(ServeTest, DrainRejectsNewJobsAndFinishesRunningOnes) {
  ServeHarness h;
  uint64_t running =
      h.Submit(R"({"graph":"g","algo":"pagerank","params":{"iters":200}})");
  h.service->BeginDrain();
  EXPECT_TRUE(h.service->draining());
  HttpReply rejected = Request(h.port, "POST", "/v1/jobs",
                               R"({"graph":"g","algo":"wcc"})");
  EXPECT_EQ(rejected.status, 503);
  EXPECT_EQ(HeaderValueOf(rejected, "Retry-After"), "5");
  // Reads stay up during the drain, and the in-flight job runs to done.
  EXPECT_EQ(Get(h.port, "/v1/graphs").status, 200);
  h.service->WaitIdle();
  h.WaitState(running, "done");
  EXPECT_EQ(Get(h.port, "/v1/jobs/" + std::to_string(running) + "/result").status, 200);
}

// ---- Per-tenant quotas over HTTP -------------------------------------------

TEST(ServeTest, TenantQuotaRejectionIs429WithRetryAfter) {
  serve::ServiceOptions sopts;
  sopts.scheduler.max_active_jobs = 1;
  TenantQuota capped;
  capped.max_queued = 1;
  sopts.scheduler.tenants["burst"] = capped;
  ServeHarness h(std::move(sopts));

  // Job 1 occupies the single active slot for a while; job 2 fills tenant
  // "burst"'s queue depth of 1; job 3 must bounce with 429 + Retry-After.
  std::string long_job =
      R"({"graph":"g","algo":"pagerank","params":{"iters":2000},"tenant":"burst"})";
  std::string short_job = R"({"graph":"g","algo":"wcc","tenant":"burst"})";
  uint64_t first = h.Submit(long_job);
  uint64_t second = h.Submit(short_job);
  HttpReply rejected = Request(h.port, "POST", "/v1/jobs", short_job);
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  EXPECT_EQ(HeaderValueOf(rejected, "Retry-After"), "1");
  EXPECT_NE(rejected.body.find("queue full"), std::string::npos) << rejected.body;

  // An unthrottled tenant is not affected by burst's quota.
  uint64_t other = h.Submit(R"({"graph":"g","algo":"wcc","tenant":"calm"})");

  // /v1/tenants surfaces the rejection in burst's counters.
  HttpReply tenants = Get(h.port, "/v1/tenants");
  EXPECT_EQ(tenants.status, 200);
  EXPECT_NE(tenants.body.find("\"tenant\":\"burst\""), std::string::npos) << tenants.body;
  EXPECT_NE(tenants.body.find("\"rejected\":1"), std::string::npos) << tenants.body;

  // Cancel the long job so teardown is quick; everything else completes.
  Request(h.port, "DELETE", "/v1/jobs/" + std::to_string(first));
  h.service->WaitIdle();
  h.WaitState(second, "done");
  h.WaitState(other, "done");
}

// ---- Randomized multi-client stress (the TSan leg runs this) ----------------

TEST(ServeTest, RandomizedMultiClientStress) {
  serve::ServiceOptions sopts;
  // Quotas on half the tenants so the 429 path is part of the race surface.
  TenantQuota tight;
  tight.max_queued = 3;
  tight.weight = 2.0;
  sopts.scheduler.tenants["t0"] = tight;
  sopts.scheduler.tenants["t1"] = tight;
  ServeHarness h(std::move(sopts), 29, /*scale=*/8);

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 12;
  std::atomic<int> submitted{0};
  std::atomic<int> completed_seen{0};
  std::mutex ids_mu;
  std::vector<uint64_t> all_ids;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<uint32_t>(1000 + c));
      const char* algos[] = {"pagerank", "bfs", "wcc", "sssp"};
      std::vector<uint64_t> mine;
      for (int op = 0; op < kOpsPerClient; ++op) {
        switch (rng() % 5) {
          case 0:
          case 1: {  // submit
            std::string algo = algos[rng() % 4];
            std::string body = "{\"graph\":\"g\",\"algo\":\"" + algo + "\"";
            if (algo == "pagerank") {
              body += ",\"params\":{\"iters\":" + std::to_string(2 + rng() % 8) + "}";
            } else if (algo == "bfs" || algo == "sssp") {
              body += ",\"params\":{\"src\":" + std::to_string(rng() % 16) + "}";
            }
            body += ",\"tenant\":\"t" + std::to_string(c % 3) + "\"}";
            HttpReply reply = Request(h.port, "POST", "/v1/jobs", body);
            EXPECT_TRUE(reply.status == 201 || reply.status == 429) << reply.body;
            if (reply.status == 201) {
              mine.push_back(JobIdOf(reply));
              submitted.fetch_add(1);
            }
            break;
          }
          case 2: {  // poll someone
            if (!mine.empty()) {
              uint64_t id = mine[rng() % mine.size()];
              HttpReply reply = Get(h.port, "/v1/jobs/" + std::to_string(id));
              EXPECT_EQ(reply.status, 200) << reply.body;
              if (reply.body.find("\"state\":\"done\"") != std::string::npos) {
                completed_seen.fetch_add(1);
              }
            }
            break;
          }
          case 3: {  // fetch a result (any of 200/409/410 is legal mid-race)
            if (!mine.empty()) {
              uint64_t id = mine[rng() % mine.size()];
              HttpReply reply =
                  Get(h.port, "/v1/jobs/" + std::to_string(id) + "/result");
              EXPECT_TRUE(reply.status == 200 || reply.status == 409 ||
                          reply.status == 410)
                  << reply.status << " " << reply.body;
            }
            break;
          }
          case 4: {  // cancel or scrape
            if (!mine.empty() && rng() % 2 == 0) {
              uint64_t id = mine[rng() % mine.size()];
              HttpReply reply =
                  Request(h.port, "DELETE", "/v1/jobs/" + std::to_string(id));
              EXPECT_EQ(reply.status, 202) << reply.body;
            } else {
              EXPECT_EQ(Get(h.port, rng() % 2 == 0 ? "/metrics" : "/v1/tenants").status,
                        200);
            }
            break;
          }
        }
      }
      std::lock_guard<std::mutex> lk(ids_mu);
      all_ids.insert(all_ids.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // Quiesce, then check global coherence: every accepted job reached a
  // terminal state and its terminal answer is servable exactly once the
  // state says so.
  h.service->WaitIdle();
  ASSERT_GT(submitted.load(), 0);
  int done = 0, cancelled = 0;
  for (uint64_t id : all_ids) {
    HttpReply status = Get(h.port, "/v1/jobs/" + std::to_string(id));
    ASSERT_EQ(status.status, 200);
    JsonValue v = MustParse(status.body);
    std::string state = v.Get("state")->as_string();
    EXPECT_TRUE(state == "done" || state == "cancelled") << status.body;
    HttpReply result = Get(h.port, "/v1/jobs/" + std::to_string(id) + "/result");
    if (state == "done") {
      ++done;
      EXPECT_EQ(result.status, 200);
    } else {
      ++cancelled;
      EXPECT_EQ(result.status, 410);
    }
  }
  EXPECT_EQ(done + cancelled, static_cast<int>(all_ids.size()));
  EXPECT_GT(done, 0);
  // The scheduler's books balance with what the clients saw.
  SchedulerStats stats = h.service->scheduler("g")->stats();
  EXPECT_EQ(stats.jobs_completed + stats.jobs_cancelled,
            static_cast<uint64_t>(submitted.load()));
}

// ---- In-process surface checks ----------------------------------------------

TEST(ServeTest, GraphListingAndInProcessHandle) {
  ServeHarness h;
  HttpReply graphs = Get(h.port, "/v1/graphs");
  EXPECT_EQ(graphs.status, 200);
  JsonValue v = MustParse(graphs.body);
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 1u);
  EXPECT_EQ(v.as_array()[0].Get("name")->as_string(), "g");
  EXPECT_EQ(v.as_array()[0].Get("partitions")->as_int(), 8);
  EXPECT_EQ(v.as_array()[0].Get("engine")->as_string(), "in-memory");

  // Handle() is the same entry point the exporter uses; tests (and embedders)
  // can call it without a socket.
  obs::HttpRequest req;
  req.method = "GET";
  req.path = "/v1/graphs";
  obs::HttpResponse in_process = h.service->Handle(req);
  EXPECT_EQ(in_process.status, 200);
  EXPECT_EQ(in_process.body, graphs.body);
}

}  // namespace
}  // namespace xstream
