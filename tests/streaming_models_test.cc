// Tests for the §2.5 extension interfaces: the semi-streaming engine and
// the W-Stream engine with their classic algorithms.
#include <gtest/gtest.h>

#include <set>

#include "core/semi_streaming.h"
#include "core/wstream.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

EdgeList TestGraph(uint64_t seed, uint32_t scale = 9) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// ------------------------------------------------------------ semi-streaming

TEST(SemiStreamingTest, ConnectivityMatchesUnionFind) {
  EdgeList edges = TestGraph(3);
  GraphInfo info = ScanEdges(edges);
  SemiStreamingConnectivity algo;
  SemiStreamStats stats = RunSemiStreaming(algo, edges, info.num_vertices);
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.edges_streamed, edges.size());
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  for (VertexId v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(algo.Component(v), expected[v]) << v;
  }
}

TEST(SemiStreamingTest, ConnectivityFromDeviceFile) {
  EdgeList edges = TestGraph(5);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "edges", edges);
  SemiStreamingConnectivity algo;
  SemiStreamStats stats =
      RunSemiStreaming(algo, dev, "edges", info.num_vertices, 64, 8 << 10);
  EXPECT_EQ(stats.edges_streamed, edges.size());
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  for (VertexId v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(algo.Component(v), expected[v]) << v;
  }
}

TEST(SemiStreamingTest, ConnectivityCountsComponents) {
  // Two disjoint paths.
  EdgeList edges = GeneratePath(50, 1);
  for (const Edge& e : GeneratePath(30, 2)) {
    edges.push_back(Edge{e.src + 50, e.dst + 50, e.weight});
  }
  SemiStreamingConnectivity algo;
  RunSemiStreaming(algo, edges, 80);
  EXPECT_EQ(algo.CountComponents(), 2u);
}

TEST(SemiStreamingTest, MatchingIsValidAndMaximal) {
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  SemiStreamingMatching algo;
  RunSemiStreaming(algo, edges, info.num_vertices);
  EXPECT_TRUE(algo.Valid());
  EXPECT_GT(algo.size(), 0u);
  // Maximality: every edge has a matched endpoint (greedy invariant).
  const auto& m = algo.matching();
  for (const Edge& e : edges) {
    if (e.src != e.dst) {
      EXPECT_TRUE(m[e.src] != kNoVertex || m[e.dst] != kNoVertex);
    }
  }
}

TEST(SemiStreamingTest, MatchingOnPathIsHalfOptimal) {
  // Max matching on a 100-path is 50; greedy gets >= 25 (1/2-approx); with
  // in-order arrival greedy actually alternates and gets ~33+.
  EdgeList edges = GeneratePath(100, 3);
  SemiStreamingMatching algo;
  RunSemiStreaming(algo, edges, 100);
  EXPECT_GE(algo.size(), 25u);
  EXPECT_LE(algo.size(), 50u);
}

TEST(SemiStreamingTest, BipartitenessAcceptsBipartite) {
  EdgeList ratings = GenerateBipartite(50, 10, 200, 5);
  GraphInfo info = ScanEdges(ratings);
  SemiStreamingBipartiteness algo;
  RunSemiStreaming(algo, ratings, info.num_vertices);
  EXPECT_TRUE(algo.bipartite());
  // Grids are bipartite too.
  EdgeList grid = GenerateGrid(8, 8, 6);
  SemiStreamingBipartiteness algo2;
  RunSemiStreaming(algo2, grid, 64);
  EXPECT_TRUE(algo2.bipartite());
}

TEST(SemiStreamingTest, BipartitenessRejectsOddCycle) {
  EdgeList triangle{{0, 1, 1.0f}, {1, 0, 1.0f}, {1, 2, 1.0f},
                    {2, 1, 1.0f}, {2, 0, 1.0f}, {0, 2, 1.0f}};
  SemiStreamingBipartiteness algo;
  RunSemiStreaming(algo, triangle, 3);
  EXPECT_FALSE(algo.bipartite());
}

// ---------------------------------------------------------------- W-Stream

TEST(WStreamTest, ConnectedComponentsMatchReference) {
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "edges", edges);
  // Budget of V/8 supervertices forces several passes.
  WStreamConnectedComponents algo(info.num_vertices, info.num_vertices / 8);
  WStreamStats stats = RunWStream<Edge>(algo, dev, "edges", "cc", 256, 8 << 10);
  EXPECT_GT(stats.passes, 1u);
  EXPECT_EQ(algo.Labels(), ReferenceWcc(edges, info.num_vertices));
}

TEST(WStreamTest, SinglePassWhenBudgetCoversGraph) {
  EdgeList edges = TestGraph(13);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "edges", edges);
  WStreamConnectedComponents algo(info.num_vertices, info.num_vertices * 2);
  WStreamStats stats = RunWStream<Edge>(algo, dev, "edges", "cc");
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(algo.Labels(), ReferenceWcc(edges, info.num_vertices));
}

TEST(WStreamTest, StreamShrinksEveryPass) {
  EdgeList edges = TestGraph(17);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "edges", edges);
  WStreamConnectedComponents algo(info.num_vertices, 64);

  // Wrap to observe per-pass emissions.
  struct Spy {
    WStreamConnectedComponents* inner;
    std::vector<uint64_t>* emissions;
    void BeginPass(uint32_t pass) { inner->BeginPass(pass); }
    void Item(const Edge& e, WStreamEmitter<Edge>& out) { inner->Item(e, out); }
    bool EndPass(uint32_t pass, uint64_t emitted) {
      emissions->push_back(emitted);
      return inner->EndPass(pass, emitted);
    }
  };
  std::vector<uint64_t> emissions;
  Spy spy{&algo, &emissions};
  RunWStream<Edge>(spy, dev, "edges", "cc", 4096, 8 << 10);
  for (size_t i = 1; i < emissions.size(); ++i) {
    EXPECT_LT(emissions[i], std::max<uint64_t>(1, emissions[i - 1]) + edges.size())
        << "stream must not grow";
  }
  EXPECT_EQ(emissions.back(), 0u);
  EXPECT_EQ(algo.Labels(), ReferenceWcc(edges, info.num_vertices));
}

TEST(WStreamTest, IntermediateStreamsAreDestroyed) {
  EdgeList edges = TestGraph(19);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "edges", edges);
  WStreamConnectedComponents algo(info.num_vertices, 64);
  RunWStream<Edge>(algo, dev, "edges", "cc", 4096, 8 << 10);
  // Only the preserved input remains.
  EXPECT_TRUE(dev.Exists("edges"));
  for (uint32_t pass = 0; pass < 64; ++pass) {
    EXPECT_FALSE(dev.Exists("cc.pass." + std::to_string(pass))) << pass;
  }
}

TEST(WStreamTest, WorksOnDisconnectedHighDiameterGraphs) {
  EdgeList edges = GenerateGrid(16, 16, 21);
  for (const Edge& e : GeneratePath(64, 22)) {
    edges.push_back(Edge{e.src + 256, e.dst + 256, e.weight});
  }
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "edges", edges);
  WStreamConnectedComponents algo(320, 32);
  RunWStream<Edge>(algo, dev, "edges", "cc", 4096, 4 << 10);
  EXPECT_EQ(algo.Labels(), ReferenceWcc(edges, 320));
}

}  // namespace
}  // namespace xstream
