// Tests for the streaming-partitioner subsystem: mapping invariants,
// determinism, quality metrics, the mapping-aware engines, and end-to-end
// algorithm equivalence across partitioning strategies.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/algorithms.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "core/semi_streaming.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "graph/transforms.h"
#include "partitioning/partitioner.h"
#include "partitioning/quality.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

// Permuted-id RMAT: strips the generator's hub-at-low-id numbering so no
// strategy free-rides on it (see PermuteVertexIds).
EdgeList TestRmat(uint64_t seed = 11) {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  GraphInfo info = ScanEdges(edges);
  return PermuteVertexIds(edges, info.num_vertices, seed + 2);
}

std::shared_ptr<VertexMapping> BuildMapping(const std::string& name, const EdgeList& edges,
                                            uint64_t n, uint32_t k,
                                            const PartitionerOptions& options = {}) {
  auto partitioner = MakePartitioner(name, options);
  return std::make_shared<VertexMapping>(
      partitioner->Partition(MakeEdgeStream(edges), n, k));
}

TEST(PartitionerTest, AllStrategiesProduceValidBalancedMappings) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  uint32_t k = 8;
  uint64_t ideal = (info.num_vertices + k - 1) / k;
  for (const auto& name : KnownPartitioners()) {
    auto mapping = BuildMapping(name, edges, info.num_vertices, k);
    CheckMapping(*mapping);  // disjoint, exhaustive, inverse relabeling
    EXPECT_EQ(mapping->num_partitions, k) << name;
    PartitionLayout layout(mapping);
    // Greedy and 2ps enforce the slack cap exactly; hash is only balanced in
    // expectation, so it gets a statistical tolerance.
    double tolerance = name == "hash" ? 1.3 : 1.05;
    uint64_t total = 0;
    for (uint32_t p = 0; p < k; ++p) {
      total += layout.Size(p);
      EXPECT_LE(layout.Size(p),
                static_cast<uint64_t>(tolerance * static_cast<double>(ideal)) + 1)
          << name << " partition " << p;
    }
    EXPECT_EQ(total, info.num_vertices) << name;
  }
}

TEST(PartitionerTest, DeterministicUnderFixedSeed) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  for (const auto& name : KnownPartitioners()) {
    PartitionerOptions options;
    options.seed = 42;
    auto a = BuildMapping(name, edges, info.num_vertices, 8, options);
    auto b = BuildMapping(name, edges, info.num_vertices, 8, options);
    EXPECT_EQ(a->partition_of, b->partition_of) << name;
    EXPECT_EQ(a->dense_of, b->dense_of) << name;
    EXPECT_EQ(a->original_of, b->original_of) << name;
    EXPECT_EQ(a->part_begin, b->part_begin) << name;
  }
}

TEST(PartitionerTest, HashSeedChangesAssignment) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  PartitionerOptions s1;
  s1.seed = 1;
  PartitionerOptions s2;
  s2.seed = 2;
  auto a = BuildMapping("hash", edges, info.num_vertices, 8, s1);
  auto b = BuildMapping("hash", edges, info.num_vertices, 8, s2);
  EXPECT_NE(a->partition_of, b->partition_of);
}

TEST(PartitionerTest, RangeMappingIsIdentityRelabeling) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  auto mapping = BuildMapping("range", edges, info.num_vertices, 8);
  PartitionLayout mapped(mapping);
  PartitionLayout plain(info.num_vertices, 8);
  for (VertexId v = 0; v < info.num_vertices; ++v) {
    EXPECT_EQ(mapped.PartitionOf(v), plain.PartitionOf(v));
    EXPECT_EQ(mapped.DenseId(v), v);
    EXPECT_EQ(mapped.OriginalId(v), v);
  }
  for (uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(mapped.Begin(p), plain.Begin(p));
    EXPECT_EQ(mapped.End(p), plain.End(p));
  }
}

TEST(PartitionQualityTest, SinglePartitionHasNoCut) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  PartitionQuality q = EvaluatePartitionQuality(PartitionLayout(info.num_vertices, 1), edges);
  EXPECT_EQ(q.cut_edges, 0u);
  EXPECT_DOUBLE_EQ(q.replication_factor, 1.0);
  EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
}

TEST(PartitionQualityTest, LocalityAwareStrategiesBeatHashOnStructure) {
  // A grid is all community structure: clustering-based assignment must cut
  // far fewer edges than hashing; on permuted-id RMAT greedy must beat the
  // range baseline (which degenerates to quasi-random under permuted ids).
  EdgeList grid = GenerateGrid(48, 48, 3);
  GraphInfo ginfo = ScanEdges(grid);
  grid = PermuteVertexIds(grid, ginfo.num_vertices, 5);
  auto hash_q = EvaluatePartitionQuality(
      PartitionLayout(BuildMapping("hash", grid, ginfo.num_vertices, 8)), grid);
  auto two_phase_q = EvaluatePartitionQuality(
      PartitionLayout(BuildMapping("2ps", grid, ginfo.num_vertices, 8)), grid);
  EXPECT_LT(two_phase_q.CutFraction(), 0.5 * hash_q.CutFraction());
  EXPECT_LT(two_phase_q.replication_factor, hash_q.replication_factor);

  EdgeList rmat = TestRmat();
  GraphInfo rinfo = ScanEdges(rmat);
  auto range_q = EvaluatePartitionQuality(
      PartitionLayout(BuildMapping("range", rmat, rinfo.num_vertices, 8)), rmat);
  auto greedy_q = EvaluatePartitionQuality(
      PartitionLayout(BuildMapping("greedy", rmat, rinfo.num_vertices, 8)), rmat);
  EXPECT_LT(greedy_q.cut_edges, range_q.cut_edges);
}

TEST(PartitionQualityTest, SemiStreamingRunnersAgreeWithDirectEvaluation) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  PartitionLayout layout(BuildMapping("greedy", edges, info.num_vertices, 8));
  PartitionQuality direct = EvaluatePartitionQuality(layout, edges);

  // Flat edge file through the semi-streaming engine.
  SimDevice dev("q", DeviceProfile::Instant());
  WriteEdgeFile(dev, "flat", edges);
  PartitionQualityPass flat_pass(layout);
  RunSemiStreaming(flat_pass, dev, "flat", info.num_vertices, 1, 16 * 1024);
  PartitionQuality flat = flat_pass.Result();

  // Partitioned store (grouped by source partition like the engines').
  std::vector<std::string> files;
  for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
    files.push_back("part." + std::to_string(p));
    FileId f = dev.Create(files.back());
    for (const Edge& e : edges) {
      if (layout.PartitionOf(e.src) == p) {
        dev.Append(f, std::span<const std::byte>(
                          reinterpret_cast<const std::byte*>(&e), sizeof(Edge)));
      }
    }
  }
  PartitionQualityPass part_pass(layout);
  RunSemiStreamingPartitioned(part_pass, dev, layout, files, 1, 16 * 1024);
  PartitionQuality parted = part_pass.Result();

  for (const PartitionQuality& q : {flat, parted}) {
    EXPECT_EQ(q.edges, direct.edges);
    EXPECT_EQ(q.cut_edges, direct.cut_edges);
    EXPECT_DOUBLE_EQ(q.replication_factor, direct.replication_factor);
    EXPECT_DOUBLE_EQ(q.edge_balance, direct.edge_balance);
  }
}

// ---- End-to-end equivalence: every strategy must compute the same answers.

TEST(PartitionedEngineTest, InMemoryResultsIdenticalAcrossStrategies) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);

  ReferenceGraph ref(edges, info.num_vertices);
  std::vector<uint32_t> ref_levels = ReferenceBfsLevels(ref, 3);

  std::vector<float> base_ranks;
  for (const auto& name : KnownPartitioners()) {
    auto partitioner = MakePartitioner(name);
    InMemoryConfig config;
    config.threads = 2;
    config.cache_bytes = 64 * 1024;  // force several partitions
    config.partitioner = partitioner.get();

    InMemoryEngine<BfsAlgorithm> bfs_engine(config, edges, info.num_vertices);
    BfsResult bfs = RunBfs(bfs_engine, 3);
    EXPECT_EQ(bfs.levels, ref_levels) << name;

    InMemoryEngine<PageRankAlgorithm> pr_engine(config, edges, info.num_vertices);
    PageRankResult pr = RunPageRank(pr_engine, 4);
    if (base_ranks.empty()) {
      base_ranks = pr.ranks;
    } else {
      ASSERT_EQ(pr.ranks.size(), base_ranks.size()) << name;
      for (size_t v = 0; v < base_ranks.size(); ++v) {
        EXPECT_NEAR(pr.ranks[v], base_ranks[v], 1e-5f) << name << " vertex " << v;
      }
    }
  }
}

TEST(PartitionedEngineTest, OutOfCoreResultsIdenticalAcrossStrategies) {
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  ReferenceGraph ref(edges, info.num_vertices);
  std::vector<uint32_t> ref_levels = ReferenceBfsLevels(ref, 3);

  for (const auto& name : KnownPartitioners()) {
    auto partitioner = MakePartitioner(name);
    SimDevice dev("d", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    OutOfCoreConfig config;
    config.threads = 2;
    config.memory_budget_bytes = 1ull << 20;
    config.io_unit_bytes = 16 * 1024;
    config.num_partitions = 4;
    config.allow_vertex_memory_opt = false;  // file-resident vertex states
    config.allow_update_memory_opt = false;
    config.partitioner = partitioner.get();
    OutOfCoreEngine<BfsAlgorithm> engine(config, dev, dev, dev, "input", info);
    ASSERT_FALSE(engine.vertices_in_memory());
    BfsResult bfs = RunBfs(engine, 3);
    EXPECT_EQ(bfs.levels, ref_levels) << name;
  }
}

TEST(PartitionedEngineTest, AbsorptionPreservesResultsAndCutsUpdateTraffic) {
  // Absorption only engages when scatter output overflows the stream buffer
  // mid-partition, so this graph's per-iteration update volume (~256 KB)
  // must exceed the 64 KB buffer (io_unit * partitions) several times over.
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 16;
  params.undirected = true;
  params.seed = 17;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, 18);
  GraphInfo info = ScanEdges(edges);
  edges = PermuteVertexIds(edges, info.num_vertices, 19);
  auto partitioner = MakePartitioner("greedy");

  RunStats stats[2];
  std::vector<VertexId> labels[2];
  for (int absorb = 0; absorb < 2; ++absorb) {
    SimDevice dev("d", DeviceProfile::Instant());
    WriteEdgeFile(dev, "input", edges);
    OutOfCoreConfig config;
    config.threads = 2;
    config.memory_budget_bytes = 1ull << 20;
    config.io_unit_bytes = 16 * 1024;
    config.num_partitions = 4;
    config.allow_vertex_memory_opt = false;
    config.allow_update_memory_opt = false;
    config.absorb_local_updates = absorb == 1;
    config.partitioner = partitioner.get();
    OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
    WccResult r = RunWcc(engine);
    labels[absorb] = r.labels;
    stats[absorb] = r.stats;
  }
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(stats[0].updates_absorbed, 0u);
  EXPECT_GT(stats[1].updates_absorbed, 0u);
  EXPECT_LT(stats[1].update_file_bytes, stats[0].update_file_bytes);
}

TEST(PartitionedEngineTest, CliStyleStateAccessorsTranslateIds) {
  // State(v) must refer to the same vertex regardless of the mapping.
  EdgeList edges = TestRmat();
  GraphInfo info = ScanEdges(edges);
  auto partitioner = MakePartitioner("2ps");
  InMemoryConfig config;
  config.threads = 1;
  config.cache_bytes = 64 * 1024;
  config.partitioner = partitioner.get();
  InMemoryEngine<BfsAlgorithm> engine(config, edges, info.num_vertices);
  BfsResult r = RunBfs(engine, 3);
  for (VertexId v = 0; v < info.num_vertices; v += 37) {
    EXPECT_EQ(engine.State(v).level, r.levels[v]);
  }
}

}  // namespace
}  // namespace xstream
