// StreamCodec (--compress-updates) round-trip and framing tests: delta+varint
// encoded update chunks must decode to the exact input records — any id
// order, any payload mix, any partition layout, any byte-window split on the
// decode side — and constant-payload frames must actually shrink the stream.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "core/partition.h"
#include "core/stream_codec.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xstream {
namespace {

struct TestUpdate {
  VertexId dst;
  uint32_t payload;
  bool operator==(const TestUpdate&) const = default;
};

// Decodes `encoded` by feeding windows of `window` bytes (0 = all at once)
// and returns the concatenated records.
template <typename Update>
std::vector<Update> DecodeAll(const StreamCodec<Update>& codec, uint32_t p,
                              const std::vector<std::byte>& encoded, size_t window = 0) {
  typename StreamCodec<Update>::Decoder decoder(&codec, p);
  std::vector<Update> out;
  auto sink = [&out](const Update* recs, uint64_t n) {
    out.insert(out.end(), recs, recs + n);
  };
  if (window == 0) {
    decoder.Feed(std::span<const std::byte>(encoded), sink);
  } else {
    for (size_t off = 0; off < encoded.size(); off += window) {
      size_t len = std::min(window, encoded.size() - off);
      decoder.Feed(std::span<const std::byte>(encoded.data() + off, len), sink);
    }
  }
  EXPECT_TRUE(decoder.Finished()) << "stream did not end on a frame boundary";
  return out;
}

TEST(StreamCodecTest, RoundTripRangeLayout) {
  PartitionLayout layout(1000, 4);  // partitions of 250
  StreamCodec<TestUpdate> codec(&layout, 64);
  std::vector<TestUpdate> recs;
  for (VertexId v = 250; v < 500; ++v) {  // partition 1
    recs.push_back({v, v * 3});
  }
  std::vector<std::byte> enc;
  codec.EncodeChunk(1, recs.data(), recs.size(), enc);
  EXPECT_EQ(DecodeAll(codec, 1, enc), recs);
}

TEST(StreamCodecTest, EmptyChunkEncodesToNothing) {
  PartitionLayout layout(100, 2);
  StreamCodec<TestUpdate> codec(&layout, 16);
  std::vector<std::byte> enc;
  codec.EncodeChunk(0, nullptr, 0, enc);
  EXPECT_TRUE(enc.empty());
  EXPECT_TRUE(DecodeAll(codec, 0, enc).empty());
}

TEST(StreamCodecTest, NonMonotoneIdsRoundTrip) {
  // The codec never assumes sorted destinations: scatter emits updates in
  // edge order, and the shuffle groups without sorting.
  PartitionLayout layout(1 << 20, 1);
  StreamCodec<TestUpdate> codec(&layout, 32);
  Rng rng(7);
  std::vector<TestUpdate> recs(1000);
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i] = {static_cast<VertexId>(rng.NextBounded(1 << 20)),
               static_cast<uint32_t>(rng.Next())};
  }
  std::vector<std::byte> enc;
  codec.EncodeChunk(0, recs.data(), recs.size(), enc);
  EXPECT_EQ(DecodeAll(codec, 0, enc), recs);
}

TEST(StreamCodecTest, MaxWidthDeltasRoundTrip) {
  // Alternating extremes of a 2^31-vertex range produce the widest zigzag
  // deltas a VertexId can generate (~|2^31| each way, 5-byte varints).
  const uint64_t n = uint64_t{1} << 31;
  PartitionLayout layout(n, 1);
  StreamCodec<TestUpdate> codec(&layout, 8);
  std::vector<TestUpdate> recs;
  for (int i = 0; i < 100; ++i) {
    VertexId v = (i % 2 == 0) ? 0 : static_cast<VertexId>(n - 1);
    recs.push_back({v, static_cast<uint32_t>(i)});
  }
  std::vector<std::byte> enc;
  codec.EncodeChunk(0, recs.data(), recs.size(), enc);
  EXPECT_EQ(DecodeAll(codec, 0, enc), recs);
}

TEST(StreamCodecTest, SplitFeedByteByByte) {
  PartitionLayout layout(500, 2);
  StreamCodec<TestUpdate> codec(&layout, 10);  // several frames
  std::vector<TestUpdate> recs;
  for (VertexId v = 0; v < 250; ++v) {
    recs.push_back({v, v ^ 0xdeadu});
  }
  std::vector<std::byte> enc;
  codec.EncodeChunk(0, recs.data(), recs.size(), enc);
  for (size_t window : {size_t{1}, size_t{3}, size_t{7}, size_t{64}, enc.size()}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    EXPECT_EQ(DecodeAll(codec, 0, enc, window), recs);
  }
}

TEST(StreamCodecTest, FrameGranularityMatchesFrameRecords) {
  PartitionLayout layout(1000, 1);
  StreamCodec<TestUpdate> codec(&layout, 16);
  std::vector<TestUpdate> recs(100);
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i] = {static_cast<VertexId>(i), 1u};
  }
  std::vector<std::byte> enc;
  codec.EncodeChunk(0, recs.data(), recs.size(), enc);
  // Sink must fire once per frame: ceil(100/16) = 7 frames, last of 4.
  typename StreamCodec<TestUpdate>::Decoder decoder(&codec, 0);
  std::vector<uint64_t> frame_sizes;
  decoder.Feed(std::span<const std::byte>(enc),
               [&](const TestUpdate*, uint64_t n) { frame_sizes.push_back(n); });
  ASSERT_TRUE(decoder.Finished());
  ASSERT_EQ(frame_sizes.size(), 7u);
  for (size_t i = 0; i + 1 < frame_sizes.size(); ++i) {
    EXPECT_EQ(frame_sizes[i], 16u);
  }
  EXPECT_EQ(frame_sizes.back(), 4u);
}

TEST(StreamCodecTest, ConstantPayloadFramesCompress) {
  // A BFS wave emits one level for every destination: the whole frame's
  // payload column collapses to a single copy, which is what carries the
  // >= 2x ratio on traversal workloads.
  PartitionLayout layout(1 << 16, 1);
  StreamCodec<TestUpdate> codec(&layout, 512);
  std::vector<TestUpdate> recs(4096);
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i] = {static_cast<VertexId>(i * 3 % (1 << 16)), 42u};
  }
  std::vector<std::byte> enc;
  codec.EncodeChunk(0, recs.data(), recs.size(), enc);
  EXPECT_LT(enc.size() * 2, recs.size() * sizeof(TestUpdate))
      << "constant-payload frames should beat 2x";
  EXPECT_EQ(DecodeAll(codec, 0, enc), recs);
}

TEST(StreamCodecTest, MappedLayoutRoundTripsThroughDenseIds) {
  // A relabeling permutation: the codec deltas dense ids and the decoder maps
  // them back through OriginalId, so the round trip must hold for any
  // bijective mapping.
  const uint32_t n = 64;
  auto mapping = std::make_shared<VertexMapping>();
  mapping->num_partitions = 2;
  mapping->partition_of.resize(n);
  mapping->dense_of.resize(n);
  mapping->original_of.resize(n);
  // Evens get dense slots [0, 32) in partition 0, odds [32, 64) in 1.
  for (VertexId v = 0; v < n; ++v) {
    uint32_t p = v % 2;
    VertexId dense = (v / 2) + p * (n / 2);
    mapping->partition_of[v] = p;
    mapping->dense_of[v] = dense;
    mapping->original_of[dense] = v;
  }
  mapping->part_begin = {0, n / 2, n};
  PartitionLayout layout(std::move(mapping));
  StreamCodec<TestUpdate> codec(&layout, 8);

  for (uint32_t p = 0; p < 2; ++p) {
    SCOPED_TRACE("partition=" + std::to_string(p));
    std::vector<TestUpdate> recs;
    for (VertexId v = 0; v < n; ++v) {
      if (v % 2 == p) {
        recs.push_back({v, v * 7u});
      }
    }
    std::vector<std::byte> enc;
    codec.EncodeChunk(p, recs.data(), recs.size(), enc);
    EXPECT_EQ(DecodeAll(codec, p, enc, 5), recs);
  }
}

TEST(StreamCodecTest, ConcatenatedChunksDecodeAsOneStream) {
  // Spills append independently encoded chunks to the same update file; the
  // decoder must read the concatenation as one stream.
  PartitionLayout layout(1000, 1);
  StreamCodec<TestUpdate> codec(&layout, 16);
  std::vector<TestUpdate> all;
  std::vector<std::byte> enc;
  Rng rng(11);
  for (int chunk = 0; chunk < 5; ++chunk) {
    std::vector<TestUpdate> recs(200 + chunk);
    for (size_t i = 0; i < recs.size(); ++i) {
      recs[i] = {static_cast<VertexId>(rng.NextBounded(1000)),
                 static_cast<uint32_t>(rng.Next())};
    }
    codec.EncodeChunk(0, recs.data(), recs.size(), enc);
    all.insert(all.end(), recs.begin(), recs.end());
  }
  EXPECT_EQ(DecodeAll(codec, 0, enc, 97), all);
}

struct PayloadlessUpdate {
  VertexId dst;
  bool operator==(const PayloadlessUpdate&) const = default;
};

TEST(StreamCodecTest, PayloadlessUpdatesRoundTrip) {
  // Some algorithms' updates are the bare destination id (kPayloadBytes==0).
  PartitionLayout layout(4096, 4);
  StreamCodec<PayloadlessUpdate> codec(&layout, 32);
  std::vector<PayloadlessUpdate> recs;
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    recs.push_back({static_cast<VertexId>(1024 + rng.NextBounded(1024))});  // partition 1
  }
  std::vector<std::byte> enc;
  codec.EncodeChunk(1, recs.data(), recs.size(), enc);
  EXPECT_LT(enc.size(), recs.size() * sizeof(PayloadlessUpdate));
  EXPECT_EQ(DecodeAll(codec, 1, enc, 13), recs);
}

TEST(StreamCodecTest, VarintRoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128}, uint64_t{300},
                     uint64_t{1} << 21, (uint64_t{1} << 35) - 1, ~uint64_t{0}}) {
    std::vector<std::byte> buf;
    PutVarint(v, buf);
    const std::byte* p = buf.data();
    EXPECT_EQ(GetVarint(p, buf.data() + buf.size()), v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(StreamCodecTest, ZigZagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{INT32_MAX},
                    -int64_t{INT32_MAX} - 1, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(UnZigZag(ZigZag(v)), v);
  }
  // Small magnitudes map to small codes (the point of zigzag).
  EXPECT_LE(ZigZag(-1), uint64_t{1});
  EXPECT_LE(ZigZag(1), uint64_t{2});
}

// Property sweep: random ids, random payloads (mixed constant and varied
// frames), random frame sizes and feed windows.
class CodecSweep : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(CodecSweep, RoundTrips) {
  auto [frame_records, window] = GetParam();
  PartitionLayout layout(1 << 18, 4);
  StreamCodec<TestUpdate> codec(&layout, frame_records);
  Rng rng(100 + frame_records + window);
  for (uint32_t p = 0; p < 4; ++p) {
    uint64_t n = rng.NextBounded(2000);
    std::vector<TestUpdate> recs(n);
    VertexId lo = layout.Begin(p);
    VertexId span = layout.End(p) - lo;
    bool constant = rng.NextBounded(2) == 0;
    for (uint64_t i = 0; i < n; ++i) {
      recs[i] = {lo + static_cast<VertexId>(rng.NextBounded(span)),
                 constant ? 5u : static_cast<uint32_t>(rng.Next())};
    }
    std::vector<std::byte> enc;
    codec.EncodeChunk(p, recs.data(), n, enc);
    EXPECT_EQ(DecodeAll(codec, p, enc, window), recs);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecSweep,
                         ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{7},
                                                              uint64_t{64}, uint64_t{4096}),
                                            ::testing::Values(size_t{0}, size_t{1},
                                                              size_t{11}, size_t{4096})),
                         [](const auto& info) {
                           return "f" + std::to_string(std::get<0>(info.param)) + "_w" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace xstream
