// Bottleneck attribution (src/obs/attribution.*) and the sampling CPU
// profiler (src/obs/profiler.*): accountant cell/wall bookkeeping, the
// diagnosis (ranking, I/O-vs-compute verdict, hints, skew index), the
// registry's retired ring, reconciliation of the attribution matrix against
// RunStats across all three engine modes, a deliberately skewed range
// partitioning tripping the straggler index, and the profiler capturing
// samples under a spinning workload and alongside IoExecutor threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "core/hybrid_engine.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "obs/attribution.h"
#include "obs/profiler.h"
#include "storage/posix_device.h"
#include "storage/sim_device.h"
#include "util/timer.h"

namespace xstream {
namespace {

using obs::Phase;

EdgeList TestGraph(uint64_t seed = 5) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// |a - b| within 5% of the larger, plus an absolute epsilon for sub-ms
// quantities where clock granularity dominates.
::testing::AssertionResult Reconciles(double a, double b) {
  double tol = 0.05 * std::max(a, b) + 1e-3;
  if (std::abs(a - b) <= tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " vs " << b << " (tol " << tol << ")";
}

// ---- PhaseAccountant bookkeeping -------------------------------------------

TEST(PhaseAccountantTest, CellsWallAndUnattributedLandInTheirColumns) {
  obs::PhaseAccountant acct("unit", 3);
  acct.RecordCell(Phase::kScatter, 1, 0.25);
  acct.RecordWall(Phase::kScatter, 0.5);
  acct.Record(Phase::kGather, 2, 0.125);               // both views at once
  acct.RecordCell(Phase::kShuffle, obs::kNoPartition, 0.0625);  // unattributed
  acct.RecordGatherReadWait(0.03125);

  obs::AttributionSnapshot snap = acct.Snapshot();
  EXPECT_EQ(snap.name, "unit");
  EXPECT_EQ(snap.num_partitions, 3u);
  EXPECT_NEAR(snap.Cell(Phase::kScatter, 1), 0.25, 1e-9);
  EXPECT_NEAR(snap.wall[static_cast<int>(Phase::kScatter)], 0.5, 1e-9);
  EXPECT_NEAR(snap.Cell(Phase::kGather, 2), 0.125, 1e-9);
  EXPECT_NEAR(snap.wall[static_cast<int>(Phase::kGather)], 0.125, 1e-9);
  // kNoPartition never dilutes the per-partition cells.
  EXPECT_NEAR(snap.unattributed[static_cast<int>(Phase::kShuffle)], 0.0625, 1e-9);
  EXPECT_NEAR(snap.CellTotal(Phase::kShuffle), 0.0, 1e-9);
  EXPECT_NEAR(snap.gather_read_wait_seconds, 0.03125, 1e-9);
  EXPECT_NEAR(snap.AccountedSeconds(), 0.625, 1e-9);
  EXPECT_NEAR(snap.PartitionSeconds(2), 0.125, 1e-9);
}

TEST(PhaseAccountantTest, IterationLogRecordsPerIterationDeltas) {
  obs::PhaseAccountant acct("iters", 2);
  acct.BeginIteration(0);
  acct.Record(Phase::kScatter, 0, 0.25);
  acct.EndIteration();
  acct.BeginIteration(1);
  acct.Record(Phase::kScatter, 1, 0.5);
  acct.Record(Phase::kGather, 1, 0.125);
  acct.EndIteration();

  obs::AttributionSnapshot snap = acct.Snapshot();
  EXPECT_EQ(snap.iterations, 2u);
  ASSERT_EQ(snap.per_iteration.size(), 2u);
  EXPECT_NEAR(snap.per_iteration[0][static_cast<int>(Phase::kScatter)], 0.25, 1e-9);
  EXPECT_NEAR(snap.per_iteration[1][static_cast<int>(Phase::kScatter)], 0.5, 1e-9);
  EXPECT_NEAR(snap.per_iteration[1][static_cast<int>(Phase::kGather)], 0.125, 1e-9);

  acct.Reset();
  snap = acct.Snapshot();
  EXPECT_EQ(snap.iterations, 0u);
  EXPECT_NEAR(snap.AccountedSeconds(), 0.0, 1e-12);
  EXPECT_TRUE(snap.per_iteration.empty());
}

// ---- Diagnosis --------------------------------------------------------------

TEST(AttributionDiagnosisTest, SpillDominantRunIsIoBoundWithSpillHint) {
  obs::PhaseAccountant acct("spilly", 4);
  for (uint32_t p = 0; p < 4; ++p) {
    acct.Record(Phase::kSpillWait, p, 0.7);
    acct.Record(Phase::kScatter, p, 0.2);
    acct.Record(Phase::kGather, p, 0.1);
  }
  obs::AttributionDiagnosis diag = acct.Snapshot().Diagnose();
  EXPECT_EQ(diag.bottleneck, Phase::kSpillWait);
  ASSERT_FALSE(diag.ranked.empty());
  EXPECT_EQ(diag.ranked[0].phase, Phase::kSpillWait);
  EXPECT_GT(diag.ranked[0].share, 0.5);
  EXPECT_TRUE(diag.io_bound) << diag.io_bound_ratio;
  bool spill_hint = false;
  for (const std::string& h : diag.hints) {
    spill_hint = spill_hint || h.find("--spill-depth") != std::string::npos;
  }
  EXPECT_TRUE(spill_hint);
  // Balanced cells: no straggler flagged.
  EXPECT_LT(diag.skew_max_mean, 1.5);

  std::string report = obs::ExplainReport(acct.Snapshot());
  EXPECT_NE(report.find("spill_wait"), std::string::npos) << report;
  EXPECT_NE(report.find("I/O-bound"), std::string::npos) << report;
}

TEST(AttributionDiagnosisTest, SkewedCellsFlagStragglerAndPartitionerHint) {
  obs::PhaseAccountant acct("skewed", 4);
  acct.Record(Phase::kScatter, 2, 0.9);
  acct.Record(Phase::kScatter, 0, 0.05);
  acct.Record(Phase::kScatter, 1, 0.05);
  acct.Record(Phase::kScatter, 3, 0.05);
  obs::AttributionDiagnosis diag = acct.Snapshot().Diagnose();
  EXPECT_GE(diag.skew_max_mean, 1.5);
  EXPECT_EQ(diag.straggler_partition, 2u);
  bool partitioner_hint = false;
  for (const std::string& h : diag.hints) {
    partitioner_hint = partitioner_hint || h.find("--partitioner") != std::string::npos;
  }
  EXPECT_TRUE(partitioner_hint);
}

TEST(AttributionRegistryTest, RetiredRingKeepsFinishedAccountants) {
  obs::AttributionRegistry& reg = obs::AttributionRegistry::Global();
  reg.ClearRetired();
  {
    obs::PhaseAccountant acct("short-lived", 1);
    acct.Record(Phase::kScatter, 0, 0.25);
  }
  bool found = false;
  for (const obs::AttributionSnapshot& snap : reg.Snapshots()) {
    found = found || snap.name == "short-lived";
  }
  EXPECT_TRUE(found);
  std::string json = reg.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"accountants\""), std::string::npos);
  EXPECT_NE(json.find("\"short-lived\""), std::string::npos);
  EXPECT_NE(json.find("\"diagnosis\""), std::string::npos);
  reg.ClearRetired();
}

// ---- Reconciliation with RunStats, all three engine modes -------------------

TEST(AttributionReconcileTest, OutOfCoreWaitsMatchRunStats) {
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 17;  // force spills and file vertices
  config.io_unit_bytes = 16 * 1024;
  config.num_partitions = 8;
  config.allow_vertex_memory_opt = false;
  config.allow_update_memory_opt = false;
  OutOfCoreEngine<PageRankAlgorithm> engine(config, dev, dev, dev, "input", info);
  PageRankResult result = RunPageRank(engine, 3);

  const RunStats& stats = engine.stats();
  obs::AttributionSnapshot snap = engine.driver().accountant().Snapshot();
  EXPECT_EQ(snap.num_partitions, engine.num_partitions());
  EXPECT_EQ(snap.iterations, stats.iterations);
  EXPECT_GT(snap.AccountedSeconds(), 0.0);

  // The store charges the *same* measured wait to RunStats and to the
  // accountant, so these reconcile almost exactly — 5% + eps covers clock
  // rounding only.
  EXPECT_TRUE(Reconciles(snap.wall[static_cast<int>(Phase::kSpillWait)],
                         stats.spill_wait_seconds));
  EXPECT_TRUE(Reconciles(snap.gather_read_wait_seconds, stats.gather_wait_seconds));
  // Partition-sequential shape: every wall second is also a cell second.
  for (int ph = 0; ph < obs::kPhaseCount; ++ph) {
    double cells = snap.CellTotal(static_cast<Phase>(ph)) +
                   snap.unattributed[ph];
    EXPECT_TRUE(Reconciles(cells, snap.wall[ph])) << obs::PhaseName(static_cast<Phase>(ph));
  }
  // The accounted sections live inside the iteration loop.
  EXPECT_LE(snap.AccountedSeconds(), stats.compute_seconds * 1.10 + 0.05);
  EXPECT_GT(result.stats.iterations, 0u);
}

TEST(AttributionReconcileTest, InMemoryAccountsTheIterationLoop) {
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  InMemoryConfig config;
  config.threads = 2;
  config.cache_bytes = 64 * 1024;
  InMemoryEngine<PageRankAlgorithm> engine(config, edges, info.num_vertices);
  RunPageRank(engine, 3);

  const RunStats& stats = engine.stats();
  obs::AttributionSnapshot snap = engine.driver().accountant().Snapshot();
  EXPECT_GT(snap.AccountedSeconds(), 0.0);
  EXPECT_GT(snap.wall[static_cast<int>(Phase::kScatter)], 0.0);
  EXPECT_GT(snap.wall[static_cast<int>(Phase::kGather)], 0.0);
  // Wall sections are timed once on the driving thread, so their sum can
  // never exceed the iteration loop's wall time (tolerance for clocks).
  EXPECT_LE(snap.AccountedSeconds(), stats.compute_seconds * 1.10 + 0.05);
  // Partition-parallel cells are busy time: with 2 workers they may exceed
  // the wall section, but never 2x it (plus scheduling noise).
  double scatter_cells = snap.CellTotal(Phase::kScatter);
  EXPECT_GT(scatter_cells, 0.0);
  EXPECT_LE(scatter_cells,
            2.0 * snap.wall[static_cast<int>(Phase::kScatter)] + 0.05);
}

TEST(AttributionReconcileTest, HybridWaitsMatchRunStats) {
  EdgeList edges = TestGraph(13);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("d", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  HybridConfig config;
  config.threads = 2;
  config.num_partitions = 8;
  config.io_unit_bytes = 16 * 1024;
  config.memory_budget_bytes = 1 << 20;  // partial residency: some spills remain
  HybridEngine<PageRankAlgorithm> engine(config, dev, dev, dev, "input", info);
  RunPageRank(engine, 3);

  const RunStats& stats = engine.stats();
  obs::AttributionSnapshot snap = engine.driver().accountant().Snapshot();
  EXPECT_GT(snap.AccountedSeconds(), 0.0);
  EXPECT_EQ(snap.iterations, stats.iterations);
  EXPECT_TRUE(Reconciles(snap.wall[static_cast<int>(Phase::kSpillWait)],
                         stats.spill_wait_seconds));
  EXPECT_TRUE(Reconciles(snap.gather_read_wait_seconds, stats.gather_wait_seconds));
  std::string report = obs::ExplainReport(snap);
  EXPECT_NE(report.find("verdict"), std::string::npos) << report;
  EXPECT_NE(report.find(obs::PhaseName(snap.Diagnose().bottleneck)), std::string::npos)
      << report;
}

// ---- Skew index on a deliberately imbalanced range partitioning -------------

TEST(AttributionSkewTest, ImbalancedRangePartitioningFlagsTheHotPartition) {
  // Range layout over 256 vertices in 4 partitions puts ids [0,64) in
  // partition 0; concentrate ~98% of the edges there.
  EdgeList edges;
  uint64_t state = 42;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state >> 33);
  };
  for (int i = 0; i < 60000; ++i) {
    edges.push_back(Edge{next() % 64, next() % 64, 1.0f});
  }
  for (uint32_t p = 1; p < 4; ++p) {
    for (int i = 0; i < 300; ++i) {
      uint32_t base = p * 64;
      edges.push_back(Edge{base + next() % 64, base + next() % 64, 1.0f});
    }
  }
  InMemoryConfig config;
  config.threads = 2;
  config.num_partitions = 4;
  InMemoryEngine<PageRankAlgorithm> engine(config, edges, 256);
  ASSERT_EQ(engine.num_partitions(), 4u);
  RunPageRank(engine, 5);

  obs::AttributionDiagnosis diag = engine.driver().accountant().Snapshot().Diagnose();
  EXPECT_GE(diag.skew_max_mean, 1.5) << "hot partition not visible in cells";
  EXPECT_EQ(diag.straggler_partition, 0u);
  bool partitioner_hint = false;
  for (const std::string& h : diag.hints) {
    partitioner_hint = partitioner_hint || h.find("--partitioner") != std::string::npos;
  }
  EXPECT_TRUE(partitioner_hint);
}

// ---- Sampling profiler ------------------------------------------------------

TEST(CpuProfilerTest, CapturesSamplesFromASpinningWorkload) {
  obs::CpuProfiler& prof = obs::CpuProfiler::Global();
  ASSERT_TRUE(prof.Start(250));
  EXPECT_TRUE(prof.running());
  EXPECT_FALSE(prof.Start(250));  // one process-wide capture at a time

  // Burn ~300ms of CPU; ITIMER_PROF fires on consumed CPU time.
  WallTimer timer;
  volatile uint64_t x = 1;
  while (timer.Seconds() < 0.3) {
    for (int i = 0; i < 4096; ++i) {
      x = x * 2862933555777941757ULL + 3037000493ULL;
    }
  }
  prof.Stop();
  EXPECT_FALSE(prof.running());
  EXPECT_GT(prof.sample_count(), 0u);

  std::string folded = prof.FoldedStacks();
  ASSERT_FALSE(folded.empty());
  // "frame;frame;... N" lines, newline-terminated.
  EXPECT_EQ(folded.back(), '\n');
  size_t space = folded.find(' ');
  ASSERT_NE(space, std::string::npos);

  ScratchDir scratch("xstream-prof-test");
  std::string path = scratch.path() + "/prof.folded";
  EXPECT_TRUE(prof.WriteFolded(path));

  prof.Reset();
  EXPECT_EQ(prof.sample_count(), 0u);
  EXPECT_TRUE(prof.FoldedStacks().empty());
}

TEST(CpuProfilerTest, SafeAlongsideIoExecutorThreads) {
  // The TSan/signal-safety leg: SIGPROF lands on arbitrary threads —
  // including the SimDevice's I/O executor — while an out-of-core run is in
  // flight. The run must complete correctly and the profiler must not
  // corrupt anything.
  obs::CpuProfiler& prof = obs::CpuProfiler::Global();
  ASSERT_TRUE(prof.Start(500));

  EdgeList edges = TestGraph(17);
  GraphInfo info = ScanEdges(edges);
  SimDevice dev("p", DeviceProfile::Instant());
  WriteEdgeFile(dev, "input", edges);
  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 18;
  config.io_unit_bytes = 16 * 1024;
  config.num_partitions = 4;
  OutOfCoreEngine<WccAlgorithm> engine(config, dev, dev, dev, "input", info);
  WccResult result = RunWcc(engine);
  prof.Stop();

  EXPECT_EQ(result.labels, ReferenceWcc(edges, info.num_vertices));
  // Dropped samples are tolerated (bounded buffer); corruption is not.
  std::string folded = prof.FoldedStacks();
  if (prof.sample_count() > 0) {
    EXPECT_FALSE(folded.empty());
  }
  prof.Reset();
}

}  // namespace
}  // namespace xstream
