// Integration tests: both engines against the sequential reference oracles
// for the core algorithms, across graph families and configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/algorithms.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/reference.h"
#include "storage/sim_device.h"

namespace xstream {
namespace {

InMemoryConfig SmallInMemConfig(int threads = 2, uint32_t partitions = 0) {
  InMemoryConfig config;
  config.threads = threads;
  config.cache_bytes = 64 * 1024;  // force several partitions on small graphs
  config.num_partitions = partitions;
  return config;
}

// Fixture owning an out-of-core engine over a SimDevice.
template <typename Algo>
struct OocHarness {
  explicit OocHarness(const EdgeList& edges, uint64_t threads = 2,
                      uint64_t budget = 1ull << 20, bool allow_mem_opts = true,
                      uint32_t partitions = 0, bool absorb_local_updates = true) {
    dev = std::make_unique<SimDevice>("d", DeviceProfile::Instant());
    WriteEdgeFile(*dev, "input", edges);
    GraphInfo info = ScanEdges(edges);
    OutOfCoreConfig config;
    config.threads = static_cast<int>(threads);
    config.memory_budget_bytes = budget;
    config.io_unit_bytes = 16 * 1024;
    config.num_partitions = partitions;
    config.allow_vertex_memory_opt = allow_mem_opts;
    config.allow_update_memory_opt = allow_mem_opts;
    config.absorb_local_updates = absorb_local_updates;
    engine = std::make_unique<OutOfCoreEngine<Algo>>(config, *dev, *dev, *dev, "input", info);
  }

  std::unique_ptr<SimDevice> dev;
  std::unique_ptr<OutOfCoreEngine<Algo>> engine;
};

EdgeList TestGraph(uint64_t seed = 5) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// ---------------------------------------------------------------- WCC

TEST(InMemEngineTest, WccMatchesUnionFind) {
  EdgeList edges = TestGraph();
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<WccAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  WccResult result = RunWcc(engine);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  EXPECT_EQ(result.labels, expected);
}

TEST(InMemEngineTest, WccSingleThreadMatches) {
  EdgeList edges = TestGraph(7);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<WccAlgorithm> engine(SmallInMemConfig(1), edges, info.num_vertices);
  WccResult result = RunWcc(engine);
  EXPECT_EQ(result.labels, ReferenceWcc(edges, info.num_vertices));
}

TEST(InMemEngineTest, WccOnPathGraphTakesDiameterIterations) {
  EdgeList edges = GeneratePath(64, 3);
  InMemoryEngine<WccAlgorithm> engine(SmallInMemConfig(), edges, 64);
  WccResult result = RunWcc(engine);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(result.labels[v], 0u);
  }
  // Label 0 must travel 63 hops; plus the final empty iteration.
  EXPECT_GE(result.stats.iterations, 63u);
  EXPECT_EQ(result.num_components, 1u);
}

TEST(OocEngineTest, WccMatchesUnionFind) {
  EdgeList edges = TestGraph(11);
  GraphInfo info = ScanEdges(edges);
  OocHarness<WccAlgorithm> h(edges);
  WccResult result = RunWcc(*h.engine);
  EXPECT_EQ(result.labels, ReferenceWcc(edges, info.num_vertices));
}

TEST(OocEngineTest, WccWithFileResidentVertices) {
  EdgeList edges = TestGraph(13);
  GraphInfo info = ScanEdges(edges);
  // Disable both memory optimizations and force several partitions: vertex
  // files, update spills and multi-partition gathers all get exercised.
  OocHarness<WccAlgorithm> h(edges, 2, 1ull << 17, /*allow_mem_opts=*/false,
                             /*partitions=*/8);
  EXPECT_FALSE(h.engine->vertices_in_memory());
  EXPECT_GT(h.engine->num_partitions(), 1u);
  WccResult result = RunWcc(*h.engine);
  EXPECT_EQ(result.labels, ReferenceWcc(edges, info.num_vertices));
}

TEST(OocEngineTest, WccSingleThread) {
  EdgeList edges = TestGraph(17);
  GraphInfo info = ScanEdges(edges);
  OocHarness<WccAlgorithm> h(edges, 1);
  WccResult result = RunWcc(*h.engine);
  EXPECT_EQ(result.labels, ReferenceWcc(edges, info.num_vertices));
}

// ---------------------------------------------------------------- BFS

TEST(InMemEngineTest, BfsLevelsMatchReference) {
  EdgeList edges = TestGraph(19);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<BfsAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  BfsResult result = RunBfs(engine, 0);
  ReferenceGraph g(edges, info.num_vertices);
  EXPECT_EQ(result.levels, ReferenceBfsLevels(g, 0));
}

TEST(OocEngineTest, BfsLevelsMatchReference) {
  EdgeList edges = TestGraph(23);
  GraphInfo info = ScanEdges(edges);
  OocHarness<BfsAlgorithm> h(edges);
  BfsResult result = RunBfs(*h.engine, 0);
  ReferenceGraph g(edges, info.num_vertices);
  EXPECT_EQ(result.levels, ReferenceBfsLevels(g, 0));
}

TEST(InMemEngineTest, BfsOnGridHasGridLevels) {
  EdgeList edges = GenerateGrid(8, 8, 1);
  InMemoryEngine<BfsAlgorithm> engine(SmallInMemConfig(), edges, 64);
  BfsResult result = RunBfs(engine, 0);
  // Manhattan distance from corner 0.
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(result.levels[r * 8 + c], r + c);
    }
  }
}

// ---------------------------------------------------------------- SSSP

TEST(InMemEngineTest, SsspMatchesReference) {
  EdgeList edges = TestGraph(29);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<SsspAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  SsspResult result = RunSssp(engine, 0);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferenceSssp(g, 0);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.dist[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(result.dist[v], expected[v], 1e-3) << "vertex " << v;
    }
  }
}

TEST(OocEngineTest, SsspMatchesReference) {
  EdgeList edges = TestGraph(31);
  GraphInfo info = ScanEdges(edges);
  OocHarness<SsspAlgorithm> h(edges);
  SsspResult result = RunSssp(*h.engine, 0);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferenceSssp(g, 0);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    if (!std::isinf(expected[v])) {
      EXPECT_NEAR(result.dist[v], expected[v], 1e-3) << "vertex " << v;
    }
  }
}

// ---------------------------------------------------------------- PageRank

TEST(InMemEngineTest, PageRankMatchesReference) {
  EdgeList edges = TestGraph(37);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<PageRankAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  PageRankResult result = RunPageRank(engine, 5);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferencePageRank(g, 5);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(result.ranks[v], expected[v], 1e-4) << "vertex " << v;
  }
}

TEST(OocEngineTest, PageRankMatchesReference) {
  EdgeList edges = TestGraph(41);
  GraphInfo info = ScanEdges(edges);
  OocHarness<PageRankAlgorithm> h(edges);
  PageRankResult result = RunPageRank(*h.engine, 5);
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferencePageRank(g, 5);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(result.ranks[v], expected[v], 1e-4) << "vertex " << v;
  }
}

TEST(InMemEngineTest, PageRankMassIsConservedApproximately) {
  EdgeList edges = TestGraph(43);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<PageRankAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  PageRankResult result = RunPageRank(engine, 3);
  double total = 0;
  for (float r : result.ranks) {
    total += r;
  }
  // Dangling vertices leak mass; with RMAT degree 16 the leak is small.
  EXPECT_GT(total, 0.5);
  EXPECT_LT(total, 1.5);
}

// ---------------------------------------------------------------- SpMV

TEST(InMemEngineTest, SpmvMatchesReference) {
  EdgeList edges = TestGraph(47);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<SpmvAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  SpmvResult result = RunSpmv(engine, 9);
  // Rebuild x deterministically the same way the algorithm does.
  SpmvAlgorithm algo(9);
  std::vector<double> x(info.num_vertices);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    SpmvAlgorithm::VertexState s;
    algo.Init(static_cast<VertexId>(v), s);
    x[v] = s.x;
  }
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferenceSpmv(g, x);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(result.y[v], expected[v], 1e-2) << "vertex " << v;
  }
  EXPECT_EQ(result.stats.iterations, 1u);
}

TEST(OocEngineTest, SpmvMatchesReference) {
  EdgeList edges = TestGraph(53);
  GraphInfo info = ScanEdges(edges);
  OocHarness<SpmvAlgorithm> h(edges);
  SpmvResult result = RunSpmv(*h.engine, 9);
  SpmvAlgorithm algo(9);
  std::vector<double> x(info.num_vertices);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    SpmvAlgorithm::VertexState s;
    algo.Init(static_cast<VertexId>(v), s);
    x[v] = s.x;
  }
  ReferenceGraph g(edges, info.num_vertices);
  std::vector<double> expected = ReferenceSpmv(g, x);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(result.y[v], expected[v], 1e-2) << "vertex " << v;
  }
}

// ---------------------------------------------------------------- MIS

TEST(InMemEngineTest, MisIsMaximalIndependent) {
  EdgeList edges = TestGraph(59);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<MisAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  MisResult result = RunMis(engine);
  EXPECT_TRUE(IsMaximalIndependentSet(edges, info.num_vertices, result.in_set));
  EXPECT_GT(result.set_size, 0u);
}

TEST(OocEngineTest, MisIsMaximalIndependent) {
  EdgeList edges = TestGraph(61);
  GraphInfo info = ScanEdges(edges);
  OocHarness<MisAlgorithm> h(edges);
  MisResult result = RunMis(*h.engine);
  EXPECT_TRUE(IsMaximalIndependentSet(edges, info.num_vertices, result.in_set));
}

TEST(InMemEngineTest, MisOnStarPicksLeavesOrCenter) {
  EdgeList edges = GenerateStar(100);
  InMemoryEngine<MisAlgorithm> engine(SmallInMemConfig(), edges, 100);
  MisResult result = RunMis(engine);
  EXPECT_TRUE(IsMaximalIndependentSet(edges, 100, result.in_set));
  // Either {center} or all 99 leaves.
  EXPECT_TRUE(result.set_size == 1 || result.set_size == 99) << result.set_size;
}

// ---------------------------------------------------------------- Conductance

TEST(InMemEngineTest, ConductanceMatchesReference) {
  EdgeList edges = TestGraph(67);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<ConductanceAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  ConductanceResult result = RunConductance(engine, 7);
  ConductanceAlgorithm algo(7);
  std::vector<uint8_t> side(info.num_vertices);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    side[v] = algo.SideOf(static_cast<VertexId>(v));
  }
  // Count by destination side, matching the gather-side accounting.
  uint64_t cross = 0, vol_s = 0, vol_rest = 0;
  for (const Edge& e : edges) {
    if (side[e.dst]) {
      ++vol_s;
    } else {
      ++vol_rest;
    }
    if (side[e.src] != side[e.dst]) {
      ++cross;
    }
  }
  EXPECT_EQ(result.cross_edges, cross);
  EXPECT_EQ(result.volume_s, vol_s);
  EXPECT_EQ(result.volume_rest, vol_rest);
}

// ---------------------------------------------------------------- SCC

TEST(InMemEngineTest, SccMatchesTarjan) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 4;
  params.undirected = false;  // directed, as SCC requires
  params.seed = 71;
  EdgeList directed = GenerateRmat(params);
  GraphInfo info = ScanEdges(directed);
  EdgeList flagged = MakeSccEdgeList(directed);

  InMemoryEngine<SccAlgorithm> engine(SmallInMemConfig(), flagged, info.num_vertices);
  SccResult result = RunScc(engine);

  ReferenceGraph g(directed, info.num_vertices);
  std::vector<uint32_t> expected = ReferenceScc(g);
  // Same partition: scc[u] == scc[v] iff expected[u] == expected[v].
  std::map<uint32_t, uint32_t> fwd;
  std::map<uint32_t, uint32_t> rev;
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    auto [it1, fresh1] = fwd.try_emplace(result.scc[v], expected[v]);
    EXPECT_EQ(it1->second, expected[v]) << "vertex " << v;
    auto [it2, fresh2] = rev.try_emplace(expected[v], result.scc[v]);
    EXPECT_EQ(it2->second, result.scc[v]) << "vertex " << v;
  }
}

TEST(OocEngineTest, SccMatchesTarjanOnCycleChain) {
  // Three 4-cycles chained by one-way bridges: 3 SCCs of size 4.
  EdgeList directed;
  for (VertexId base : {0u, 4u, 8u}) {
    for (VertexId i = 0; i < 4; ++i) {
      directed.push_back(Edge{base + i, base + (i + 1) % 4, 1.0f});
    }
  }
  directed.push_back(Edge{0, 4, 1.0f});
  directed.push_back(Edge{4, 8, 1.0f});
  EdgeList flagged = MakeSccEdgeList(directed);
  OocHarness<SccAlgorithm> h(flagged);
  SccResult result = RunScc(*h.engine);
  EXPECT_EQ(result.num_sccs, 3u);
  for (VertexId base : {0u, 4u, 8u}) {
    for (VertexId i = 1; i < 4; ++i) {
      EXPECT_EQ(result.scc[base + i], result.scc[base]);
    }
  }
}

// ---------------------------------------------------------------- MCST

TEST(InMemEngineTest, McstMatchesKruskal) {
  EdgeList edges = TestGraph(73);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<McstAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  McstResult result = RunMcst(engine);
  double expected = ReferenceMstWeight(edges, info.num_vertices);
  EXPECT_NEAR(result.total_weight, expected, 1e-2);
}

TEST(OocEngineTest, McstMatchesKruskal) {
  EdgeList edges = TestGraph(79);
  GraphInfo info = ScanEdges(edges);
  OocHarness<McstAlgorithm> h(edges);
  McstResult result = RunMcst(*h.engine);
  EXPECT_NEAR(result.total_weight, ReferenceMstWeight(edges, info.num_vertices), 1e-2);
}

TEST(InMemEngineTest, McstOnGridSpansAllVertices) {
  EdgeList edges = GenerateGrid(10, 10, 83);
  InMemoryEngine<McstAlgorithm> engine(SmallInMemConfig(), edges, 100);
  McstResult result = RunMcst(engine);
  EXPECT_EQ(result.tree_edges, 99u);  // connected: V-1 tree edges
  EXPECT_NEAR(result.total_weight, ReferenceMstWeight(edges, 100), 1e-3);
}

// ---------------------------------------------------------------- ALS

TEST(InMemEngineTest, AlsReducesRmse) {
  EdgeList ratings = GenerateBipartite(200, 40, 2000, 89);
  GraphInfo info = ScanEdges(ratings);
  InMemoryEngine<AlsAlgorithm> engine(SmallInMemConfig(), ratings, info.num_vertices);
  AlsResult result = RunAls(engine, 200, 5);
  EXPECT_GT(result.ratings, 0u);
  // Ratings are uniform in [1,5]; factorizing to RMSE < the prior stddev
  // (~1.15) demonstrates the solver works.
  EXPECT_LT(result.rmse, 1.2);
}

TEST(OocEngineTest, AlsMatchesInMemoryRmse) {
  EdgeList ratings = GenerateBipartite(100, 20, 800, 97);
  GraphInfo info = ScanEdges(ratings);
  InMemoryEngine<AlsAlgorithm> inmem(SmallInMemConfig(), ratings, info.num_vertices);
  AlsResult expected = RunAls(inmem, 100, 3);
  OocHarness<AlsAlgorithm> h(ratings);
  AlsResult result = RunAls(*h.engine, 100, 3);
  EXPECT_NEAR(result.rmse, expected.rmse, 0.05);
}

// ---------------------------------------------------------------- BP

TEST(InMemEngineTest, BpProducesNormalizedBeliefs) {
  EdgeList edges = TestGraph(101);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<BpAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  BpResult result = RunBp(engine, 5);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_GE(result.belief1[v], 0.0f);
    EXPECT_LE(result.belief1[v], 1.0f);
  }
  EXPECT_EQ(result.stats.iterations, 5u);
}

TEST(OocEngineTest, BpMatchesInMemory) {
  EdgeList edges = TestGraph(103);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<BpAlgorithm> inmem(SmallInMemConfig(), edges, info.num_vertices);
  BpResult expected = RunBp(inmem, 4);
  OocHarness<BpAlgorithm> h(edges);
  BpResult result = RunBp(*h.engine, 4);
  for (uint64_t v = 0; v < info.num_vertices; ++v) {
    EXPECT_NEAR(result.belief1[v], expected.belief1[v], 1e-3) << "vertex " << v;
  }
}

// ---------------------------------------------------------------- HyperANF

TEST(InMemEngineTest, HyperAnfStepsTrackDiameter) {
  EdgeList edges = GeneratePath(40, 107);
  InMemoryEngine<HyperAnfAlgorithm> engine(SmallInMemConfig(), edges, 40);
  HyperAnfResult result = RunHyperAnf(engine);
  uint32_t diameter = 39;
  EXPECT_LE(result.steps, diameter);
  EXPECT_GE(result.steps, diameter / 2);  // registers may saturate early
  // N(t) is monotone non-decreasing.
  for (size_t t = 1; t < result.neighborhood_function.size(); ++t) {
    EXPECT_GE(result.neighborhood_function[t], result.neighborhood_function[t - 1] * 0.999);
  }
}

TEST(InMemEngineTest, HyperAnfFinalEstimateNearReachablePairs) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  params.undirected = true;
  params.seed = 109;
  EdgeList edges = GenerateRmat(params);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<HyperAnfAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  HyperAnfResult result = RunHyperAnf(engine);
  // Exact pair count from WCC component sizes (per-component n_c^2, counting
  // only vertices that appear in edges... all vertices are counted).
  std::vector<VertexId> labels = ReferenceWcc(edges, info.num_vertices);
  std::map<VertexId, uint64_t> sizes;
  for (VertexId l : labels) {
    ++sizes[l];
  }
  double exact = 0;
  for (auto [l, n] : sizes) {
    exact += static_cast<double>(n) * static_cast<double>(n);
  }
  double estimate = result.neighborhood_function.back();
  EXPECT_GT(estimate, exact * 0.5);
  EXPECT_LT(estimate, exact * 1.5);
}

// ---------------------------------------------------------------- engine mechanics

TEST(InMemEngineTest, ForcedPartitionCountsAllAgree) {
  EdgeList edges = TestGraph(113);
  GraphInfo info = ScanEdges(edges);
  std::vector<VertexId> expected = ReferenceWcc(edges, info.num_vertices);
  for (uint32_t k : {1u, 2u, 16u, 128u}) {
    InMemoryEngine<WccAlgorithm> engine(SmallInMemConfig(2, k), edges, info.num_vertices);
    EXPECT_EQ(engine.num_partitions(), k);
    WccResult result = RunWcc(engine);
    EXPECT_EQ(result.labels, expected) << "k=" << k;
  }
}

TEST(InMemEngineTest, StatsTrackWastedEdges) {
  EdgeList edges = TestGraph(127);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<WccAlgorithm> engine(SmallInMemConfig(), edges, info.num_vertices);
  WccResult result = RunWcc(engine);
  EXPECT_EQ(result.stats.edges_streamed,
            edges.size() * result.stats.iterations);
  EXPECT_EQ(result.stats.wasted_edges + result.stats.updates_generated,
            result.stats.edges_streamed);
  EXPECT_GT(result.stats.WastedEdgePercent(), 0.0);
}

TEST(OocEngineTest, UpdateMemoryOptimizationSkipsSpills) {
  EdgeList edges = TestGraph(131);
  OocHarness<WccAlgorithm> with_opt(edges, 2, 64ull << 20, true);
  WccResult r1 = RunWcc(*with_opt.engine);
  // With a generous budget nothing should be written to update files.
  DeviceStats s = with_opt.dev->stats();
  // Writes happen for input + partitioned edge files only; compare against a
  // no-optimization run which must write update files too. Local-update
  // absorption is pinned off here: it would let the unoptimized run gather
  // its spills in place and write *less* than this baseline, which is the
  // point of the partitioning subsystem but not of this §3.2 comparison.
  OocHarness<WccAlgorithm> no_opt(edges, 2, 64ull << 20, false, 0, false);
  no_opt.engine->stats();  // silence unused warnings
  WccResult r2 = RunWcc(*no_opt.engine);
  EXPECT_EQ(r1.labels, r2.labels);
  EXPECT_LT(s.bytes_written, no_opt.dev->stats().bytes_written);
}

TEST(OocEngineTest, IngestEdgesExtendsGraph) {
  // Start with two components, ingest a bridge, recompute WCC.
  EdgeList part1 = GeneratePath(50, 3);  // vertices 0..49
  EdgeList part2;
  for (const Edge& e : GeneratePath(50, 4)) {
    part2.push_back(Edge{e.src + 50, e.dst + 50, e.weight});
  }
  EdgeList both = part1;
  both.insert(both.end(), part2.begin(), part2.end());

  auto dev = std::make_unique<SimDevice>("d", DeviceProfile::Instant());
  WriteEdgeFile(*dev, "input", both);
  GraphInfo info;
  info.num_vertices = 100;
  info.num_edges = both.size();
  OutOfCoreConfig config;
  config.threads = 2;
  config.memory_budget_bytes = 1 << 20;
  config.io_unit_bytes = 16 * 1024;
  OutOfCoreEngine<WccAlgorithm> engine(config, *dev, *dev, *dev, "input", info);

  WccResult before = RunWcc(engine);
  EXPECT_EQ(before.num_components, 2u);

  engine.ResetStats();
  engine.IngestEdges({Edge{49, 50, 0.5f}, Edge{50, 49, 0.5f}});
  WccResult after = RunWcc(engine);
  EXPECT_EQ(after.num_components, 1u);
}

TEST(InMemEngineTest, DeterministicAcrossRuns) {
  EdgeList edges = TestGraph(137);
  GraphInfo info = ScanEdges(edges);
  InMemoryEngine<WccAlgorithm> e1(SmallInMemConfig(2), edges, info.num_vertices);
  InMemoryEngine<WccAlgorithm> e2(SmallInMemConfig(4), edges, info.num_vertices);
  EXPECT_EQ(RunWcc(e1).labels, RunWcc(e2).labels);
}

TEST(OocEngineTest, AutoPartitionCountRespectsBudgetInequality) {
  EdgeList edges = TestGraph(139);
  GraphInfo info = ScanEdges(edges);
  OocHarness<WccAlgorithm> h(edges, 2, 1ull << 18, false);
  uint32_t k = h.engine->num_partitions();
  uint64_t n_bytes = info.num_vertices * sizeof(WccAlgorithm::VertexState);
  EXPECT_LE(n_bytes / k + 5ull * (16 * 1024) * k, 1ull << 18);
}

}  // namespace
}  // namespace xstream
