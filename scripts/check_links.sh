#!/usr/bin/env bash
# Checks that intra-repo markdown links resolve: every [text](target) in a
# tracked *.md file whose target is a relative path must point at a file or
# directory that exists (optionally with a #fragment, which is stripped).
# External links (scheme://, mailto:) and pure-fragment links (#anchor) are
# skipped — this gate is about the repo's own docs not rotting, not about
# the internet.
#
# Usage: scripts/check_links.sh    (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
checked=0
while IFS= read -r md; do
  dir="$(dirname "$md")"
  # Extract (target) of every markdown link in the file. grep -o keeps one
  # match per line even when a line holds several links.
  while IFS= read -r target; do
    # Skip external schemes and in-page anchors.
    case "$target" in
      *://*|mailto:*|"#"*|"") continue ;;
    esac
    path="${target%%#*}"   # drop any #fragment
    [[ -z "$path" ]] && continue
    checked=$((checked + 1))
    if [[ ! -e "$dir/$path" ]]; then
      echo "error: $md links to '$target' but '$dir/$path' does not exist" >&2
      fail=1
    fi
  done < <(grep -oE '\[[^][]*\]\([^()[:space:]]+\)' "$md" | sed -E 's/^\[[^][]*\]\(([^()]+)\)$/\1/')
done < <(git ls-files -co --exclude-standard '*.md')  # tracked + new, never ignored

if [[ "$fail" -ne 0 ]]; then
  echo "markdown link check FAILED" >&2
  exit 1
fi
echo "markdown link check passed ($checked intra-repo links resolve)"
