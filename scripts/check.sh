#!/usr/bin/env bash
# Fast verification gate for every PR, one command:
#   0. hygiene: no build artifacts tracked by git (PR 1 accidentally
#      committed an in-source build; this keeps it from regressing)
#   1. tier-1: configure, build everything, run the full test suite
#   2. partition-quality smoke: fig27 at smoke scale, so partitioner and
#      update-traffic regressions show up as diffable numbers
#   3. hybrid-residency smoke: fig29 at smoke scale — budget 0 must match
#      the out-of-core engine, full budget must stop writing update files,
#      and the runtime curve must stay monotone
#   4. scan-sharing smoke: fig30 at smoke scale — concurrent scheduler jobs
#      must produce solo-identical results while the shared scan keeps the
#      edge-read volume ~flat in the job count
#   5. incremental-residency smoke: fig31 at smoke scale — delta migrations
#      must stay strictly below the full re-plan baseline, and edge pinning
#      must silence the edge device after iteration 1 at full budget
#   6. raw-speed smoke: fig32 at smoke scale — io_uring backend, staged
#      shuffle and compressed update streams must each be result-invariant,
#      with >= 2x fewer update-device bytes on compressed BFS
#   7. bench diff: every smoke bench also emits BENCH_figXX.json (metric
#      values tagged exact/ratio/info) which scripts/bench_diff.py gates
#      against the committed baselines in bench/baselines/
#   8. docs: every intra-repo markdown link must resolve
#
# Usage: scripts/check.sh [build-dir]   (default: ./build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== hygiene: tracked build artifacts =="
ARTIFACTS="$(git ls-files | grep -E \
  '(^|/)(CMakeCache\.txt|CMakeFiles/|cmake_install\.cmake|CTestTestfile\.cmake|Testing/)|\.(o|obj|a|so|bin)$|^build/' \
  || true)"
if [[ -n "$ARTIFACTS" ]]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "$ARTIFACTS" | head -20 >&2
  echo "(run: git rm -r --cached <paths> — see .gitignore)" >&2
  exit 1
fi
echo "clean"

echo
echo "== tier-1: build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo
echo "== partition-quality smoke benchmark =="
"./$BUILD_DIR/fig27_partitioners" --smoke --json=BENCH_fig27.json

echo
echo "== hybrid-residency smoke benchmark =="
"./$BUILD_DIR/fig29_hybrid_residency" --smoke --json=BENCH_fig29.json

echo
echo "== scan-sharing smoke benchmark =="
"./$BUILD_DIR/fig30_scan_sharing" --smoke --json=BENCH_fig30.json

echo
echo "== incremental-residency smoke benchmark =="
"./$BUILD_DIR/fig31_incremental_residency" --smoke --json=BENCH_fig31.json

echo
echo "== raw-speed smoke benchmark =="
"./$BUILD_DIR/fig32_raw_speed" --smoke --json=BENCH_fig32.json

echo
echo "== bench diff vs committed baselines =="
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_diff.py --baseline-dir bench/baselines \
    BENCH_fig27.json BENCH_fig29.json BENCH_fig30.json BENCH_fig31.json \
    BENCH_fig32.json
else
  echo "warning: python3 not found; skipping bench_diff gate" >&2
fi

echo
echo "== docs: markdown link check =="
scripts/check_links.sh
