#!/usr/bin/env bash
# Fast verification gate for every PR:
#   1. tier-1: configure, build everything, run the full test suite
#   2. partition-quality smoke: fig27 at smoke scale, so partitioner and
#      update-traffic regressions show up as diffable numbers
#
# Usage: scripts/check.sh [build-dir]   (default: ./build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo
echo "== partition-quality smoke benchmark =="
"./$BUILD_DIR/fig27_partitioners" --smoke
