#!/usr/bin/env bash
# Fast verification gate for every PR, one command:
#   0. hygiene: no build artifacts tracked by git (PR 1 accidentally
#      committed an in-source build; this keeps it from regressing)
#   1. tier-1: configure, build everything, run the full test suite
#   2. partition-quality smoke: fig27 at smoke scale, so partitioner and
#      update-traffic regressions show up as diffable numbers
#   3. hybrid-residency smoke: fig29 at smoke scale — budget 0 must match
#      the out-of-core engine, full budget must stop writing update files,
#      and the runtime curve must stay monotone
#   4. scan-sharing smoke: fig30 at smoke scale — concurrent scheduler jobs
#      must produce solo-identical results while the shared scan keeps the
#      edge-read volume ~flat in the job count
#   5. incremental-residency smoke: fig31 at smoke scale — delta migrations
#      must stay strictly below the full re-plan baseline, and edge pinning
#      must silence the edge device after iteration 1 at full budget
#   6. raw-speed smoke: fig32 at smoke scale — io_uring backend, staged
#      shuffle and compressed update streams must each be result-invariant,
#      with >= 2x fewer update-device bytes on compressed BFS
#   7. async-spill smoke: fig28 at smoke scale — async update spill must
#      match sync results exactly with identical update-file traffic
#   8. telemetry smoke: a live --jobs run with --http-port=0, polled with
#      curl mid-flight — /healthz must answer ok, /metrics must serve
#      Prometheus exposition whose counters increase between scrapes, /jobs
#      must report per-job progress, /attribution must carry a diagnosis,
#      and /profile?seconds=1 must return non-empty folded stacks
#   9. serve smoke: a live xstream-serve daemon on an ephemeral port — curl
#      submits a BFS query over POST /v1/jobs, polls it to done, verifies
#      the result payload and the serve counters on /metrics, then SIGTERMs
#      the daemon and requires a clean drain with exit code 0
#  10. no-obs smoke: -DXSTREAM_DISABLE_OBS=ON must still compile the CLI
#      (exporter stubbed to "unavailable") and run a solo job
#  11. obs-overhead smoke: the instrumentation microbench must emit its
#      attribution/profiler metrics for the bench diff
#  12. bench diff: every smoke bench also emits BENCH_figXX.json (metric
#      values tagged exact/ratio/info) which scripts/bench_diff.py gates
#      against the committed baselines in bench/baselines/
#  13. docs: every intra-repo markdown link must resolve
#
# Usage: scripts/check.sh [build-dir]   (default: ./build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== hygiene: tracked build artifacts =="
ARTIFACTS="$(git ls-files | grep -E \
  '(^|/)(CMakeCache\.txt|CMakeFiles/|cmake_install\.cmake|CTestTestfile\.cmake|Testing/)|\.(o|obj|a|so|bin)$|^build/' \
  || true)"
if [[ -n "$ARTIFACTS" ]]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "$ARTIFACTS" | head -20 >&2
  echo "(run: git rm -r --cached <paths> — see .gitignore)" >&2
  exit 1
fi
echo "clean"

echo
echo "== tier-1: build + ctest =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo
echo "== partition-quality smoke benchmark =="
"./$BUILD_DIR/fig27_partitioners" --smoke --json=BENCH_fig27.json

echo
echo "== hybrid-residency smoke benchmark =="
"./$BUILD_DIR/fig29_hybrid_residency" --smoke --json=BENCH_fig29.json

echo
echo "== scan-sharing smoke benchmark =="
"./$BUILD_DIR/fig30_scan_sharing" --smoke --json=BENCH_fig30.json

echo
echo "== incremental-residency smoke benchmark =="
"./$BUILD_DIR/fig31_incremental_residency" --smoke --json=BENCH_fig31.json

echo
echo "== raw-speed smoke benchmark =="
"./$BUILD_DIR/fig32_raw_speed" --smoke --json=BENCH_fig32.json

echo
echo "== async-spill smoke benchmark =="
"./$BUILD_DIR/fig28_async_spill" --smoke --json=BENCH_fig28.json

echo
echo "== telemetry smoke: live /metrics + /healthz + /jobs =="
if command -v curl >/dev/null 2>&1; then
  TELEMETRY_LOG="$BUILD_DIR/telemetry_smoke.log"
  TELEMETRY_DIR="$(mktemp -d)"
  # A deliberately long job batch (we SIGINT it once the probes pass): the
  # only requirement is that it is still running when curl arrives.
  "./$BUILD_DIR/xstream_cli" --generate=rmat --scale=13 --engine=out-of-core \
    --workdir="$TELEMETRY_DIR" --jobs=pagerank:iters=5000,wcc --http-port=0 \
    > "$TELEMETRY_LOG" 2>&1 &
  CLI_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's#.*telemetry: listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$TELEMETRY_LOG" | head -1)"
    [[ -n "$PORT" ]] && break
    kill -0 "$CLI_PID" 2>/dev/null || { echo "error: CLI exited before telemetry came up" >&2;
      cat "$TELEMETRY_LOG" >&2; exit 1; }
    sleep 0.2
  done
  [[ -n "$PORT" ]] || { echo "error: no telemetry port in CLI output" >&2;
    cat "$TELEMETRY_LOG" >&2; exit 1; }
  BASE="http://127.0.0.1:$PORT"
  curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' \
    || { echo "error: /healthz not ok" >&2; exit 1; }
  # The counter series materializes on its first increment, so poll until
  # the scheduler has scanned at least one partition.
  SCANS1=""
  for _ in $(seq 1 100); do
    SCANS1="$(curl -fsS "$BASE/metrics" | sed -n 's/^xstream_scheduler_partition_scans_total //p')"
    [[ -n "$SCANS1" ]] && break
    sleep 0.2
  done
  [[ -n "$SCANS1" ]] || { echo "error: /metrics missing partition-scan counter" >&2; exit 1; }
  sleep 1
  SCANS2="$(curl -fsS "$BASE/metrics" | sed -n 's/^xstream_scheduler_partition_scans_total //p')"
  awk -v a="$SCANS1" -v b="$SCANS2" 'BEGIN { exit !(b > a) }' \
    || { echo "error: partition-scan counter did not increase ($SCANS1 -> $SCANS2)" >&2; exit 1; }
  curl -fsS "$BASE/jobs" | grep -q '"state":"running"' \
    || { echo "error: /jobs reports no running job" >&2; exit 1; }
  curl -fsS "$BASE/attribution" | grep -q '"diagnosis"' \
    || { echo "error: /attribution carries no diagnosis" >&2; exit 1; }
  # One-second on-demand capture; the busy job batch guarantees CPU samples.
  PROFILE_OUT="$(curl -fsS "$BASE/profile?seconds=1")"
  grep -qE ' [0-9]+$' <<<"$PROFILE_OUT" \
    || { echo "error: /profile returned no folded stacks" >&2;
      echo "$PROFILE_OUT" | head -5 >&2; exit 1; }
  echo "telemetry ok: port $PORT, partition scans $SCANS1 -> $SCANS2"
  kill -INT "$CLI_PID" 2>/dev/null || true
  wait "$CLI_PID" 2>/dev/null || true
  rm -rf "$TELEMETRY_DIR"
else
  echo "warning: curl not found; skipping telemetry smoke" >&2
fi

echo
echo "== serve smoke: daemon submit/poll/result + drain =="
if command -v curl >/dev/null 2>&1; then
  SERVE_LOG="$BUILD_DIR/serve_smoke.log"
  "./$BUILD_DIR/xstream-serve" --graphs=smoke=rmat:12 --port=0 \
    > "$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's#.*serve: listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' \
      "$SERVE_LOG" | head -1)"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "error: daemon exited before listening" >&2;
      cat "$SERVE_LOG" >&2; exit 1; }
    sleep 0.2
  done
  [[ -n "$PORT" ]] || { echo "error: no listen port in daemon output" >&2;
    cat "$SERVE_LOG" >&2; exit 1; }
  BASE="http://127.0.0.1:$PORT"
  # Submit one BFS query and walk it to completion through the REST surface.
  SUBMIT="$(curl -fsS -X POST "$BASE/v1/jobs" \
    -d '{"graph":"smoke","algo":"bfs","params":{"src":0},"tenant":"ci"}')"
  JOB_ID="$(sed -n 's/.*"id":\([0-9]*\).*/\1/p' <<<"$SUBMIT")"
  [[ -n "$JOB_ID" ]] || { echo "error: submit returned no job id: $SUBMIT" >&2; exit 1; }
  STATE=""
  for _ in $(seq 1 100); do
    STATE="$(curl -fsS "$BASE/v1/jobs/$JOB_ID" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
    [[ "$STATE" == "done" ]] && break
    sleep 0.2
  done
  [[ "$STATE" == "done" ]] || { echo "error: job stuck in state \"$STATE\"" >&2; exit 1; }
  RESULT="$(curl -fsS "$BASE/v1/jobs/$JOB_ID/result")"
  grep -q '"values":\[' <<<"$RESULT" \
    || { echo "error: result carries no values array" >&2;
      head -c 300 <<<"$RESULT" >&2; exit 1; }
  grep -q '"summary":"[^"]*reached' <<<"$RESULT" \
    || { echo "error: result carries no BFS summary" >&2; exit 1; }
  # The serve counters must account for exactly what we just did.
  METRICS="$(curl -fsS "$BASE/metrics")"
  grep -qE '^xstream_serve_jobs_submitted_total [1-9]' <<<"$METRICS" \
    || { echo "error: /metrics missing serve submit counter" >&2; exit 1; }
  grep -qE '^xstream_serve_jobs_completed_total [1-9]' <<<"$METRICS" \
    || { echo "error: /metrics missing serve completion counter" >&2; exit 1; }
  # SIGTERM must drain and exit 0.
  kill -TERM "$SERVE_PID"
  SERVE_RC=0
  wait "$SERVE_PID" || SERVE_RC=$?
  [[ "$SERVE_RC" -eq 0 ]] || { echo "error: daemon exit code $SERVE_RC after SIGTERM" >&2;
    cat "$SERVE_LOG" >&2; exit 1; }
  grep -q "serve: drained, exiting" "$SERVE_LOG" \
    || { echo "error: daemon did not log a clean drain" >&2; cat "$SERVE_LOG" >&2; exit 1; }
  echo "serve ok: port $PORT, job $JOB_ID done, clean drain"
else
  echo "warning: curl not found; skipping serve smoke" >&2
fi

echo
echo "== no-obs smoke: -DXSTREAM_DISABLE_OBS builds and runs =="
cmake -B "$BUILD_DIR-noobs" -S . -DXSTREAM_DISABLE_OBS=ON > /dev/null
cmake --build "$BUILD_DIR-noobs" -j"$JOBS" --target xstream_cli
# Captured, not piped: under pipefail a `grep -q` that matches early would
# close the pipe and turn the CLI's SIGPIPE death into a gate failure.
NOOBS_OUT="$("./$BUILD_DIR-noobs/xstream_cli" --algorithm=wcc --generate=rmat \
  --scale=10 --http-port=0 --explain 2>&1)"
grep -q "telemetry endpoint unavailable" <<<"$NOOBS_OUT" \
  || { echo "error: no-obs CLI did not warn about the stubbed exporter" >&2;
    echo "$NOOBS_OUT" >&2; exit 1; }
grep -q -- "--explain found no attribution data" <<<"$NOOBS_OUT" \
  || { echo "error: no-obs CLI did not warn about the stubbed attribution" >&2;
    echo "$NOOBS_OUT" >&2; exit 1; }

echo
echo "== obs-overhead smoke benchmark =="
"./$BUILD_DIR/obs_overhead" --ops=2000000 --reps=1 --scale=10 \
  --json=BENCH_obs_overhead.json

echo
echo "== bench diff vs committed baselines =="
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_diff.py --baseline-dir bench/baselines \
    BENCH_fig27.json BENCH_fig28.json BENCH_fig29.json BENCH_fig30.json \
    BENCH_fig31.json BENCH_fig32.json BENCH_obs_overhead.json
else
  echo "warning: python3 not found; skipping bench_diff gate" >&2
fi

echo
echo "== docs: markdown link check =="
scripts/check_links.sh
