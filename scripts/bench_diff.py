#!/usr/bin/env python3
"""Diff bench --json output against the committed baselines.

Usage:
    scripts/bench_diff.py [--baseline-dir bench/baselines] [--tolerance 0.35]
                          BENCH_fig27.json [BENCH_fig29.json ...]

Each input file is compared against <baseline-dir>/<basename>. The metric
class recorded in the baseline decides the gate:

  exact  -- values must match exactly (deterministic counts and byte
            volumes; any drift is a behaviour change, not noise).
  ratio  -- values must agree within a symmetric relative tolerance band:
            |cur - base| <= tolerance * max(|cur|, |base|). Shape metrics
            (speedups, savings) that wobble with load but not with
            correctness.
  info   -- never gated (wall times, seek counts: machine-dependent).

Metrics present in the baseline but missing from the current run fail (a
deleted metric is a silent coverage loss). Metrics present only in the
current run warn: refresh the baseline to start gating them.

Exit status: 0 when every gated metric passes, 1 otherwise. Stdlib only.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "metrics" not in doc or not isinstance(doc["metrics"], dict):
        raise ValueError(f"{path}: missing 'metrics' object")
    return doc


def ratio_ok(cur, base, tolerance):
    scale = max(abs(cur), abs(base))
    if scale == 0:
        return True
    return abs(cur - base) <= tolerance * scale


def diff_file(cur_path, base_path, tolerance):
    """Returns (failures, warnings) as lists of strings."""
    failures, warnings = [], []
    try:
        cur = load(cur_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return [f"{cur_path}: unreadable current results: {e}"], []
    try:
        base = load(base_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return [f"{base_path}: unreadable baseline: {e}"], []

    fig = cur.get("figure", os.path.basename(cur_path))
    for name, bm in sorted(base["metrics"].items()):
        cls = bm.get("class", "info")
        if name not in cur["metrics"]:
            failures.append(f"{fig}: metric '{name}' vanished from the current run")
            continue
        if cls == "info":
            continue
        bval = bm["value"]
        cval = cur["metrics"][name]["value"]
        if cls == "exact":
            if cval != bval:
                failures.append(
                    f"{fig}: exact metric '{name}' drifted: {bval} -> {cval}")
        elif cls == "ratio":
            if not ratio_ok(cval, bval, tolerance):
                failures.append(
                    f"{fig}: ratio metric '{name}' out of band "
                    f"(+/-{tolerance:.0%}): {bval} -> {cval}")
        else:
            warnings.append(f"{fig}: metric '{name}' has unknown class '{cls}'")
    for name in sorted(set(cur["metrics"]) - set(base["metrics"])):
        warnings.append(
            f"{fig}: new metric '{name}' not in baseline (refresh "
            f"{base_path} to gate it)")
    return failures, warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--tolerance", type=float, default=0.35,
                    help="relative band for 'ratio' metrics (default 0.35)")
    ap.add_argument("files", nargs="+")
    args = ap.parse_args()

    total_failures = 0
    for cur_path in args.files:
        base_path = os.path.join(args.baseline_dir, os.path.basename(cur_path))
        failures, warnings = diff_file(cur_path, base_path, args.tolerance)
        for w in warnings:
            print(f"warning: {w}")
        for f in failures:
            print(f"FAIL: {f}")
        total_failures += len(failures)
        if not failures:
            print(f"ok: {cur_path} vs {base_path}")
    if total_failures:
        print(f"\n{total_failures} metric(s) failed. If the change is intended, "
              f"refresh the baselines:\n  cp BENCH_*.json {args.baseline_dir}/")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
