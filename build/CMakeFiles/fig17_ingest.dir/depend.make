# Empty dependencies file for fig17_ingest.
# This may be replaced when dependencies are built.
