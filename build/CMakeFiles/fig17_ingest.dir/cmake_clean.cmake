file(REMOVE_RECURSE
  "CMakeFiles/fig17_ingest.dir/bench/fig17_ingest.cc.o"
  "CMakeFiles/fig17_ingest.dir/bench/fig17_ingest.cc.o.d"
  "fig17_ingest"
  "fig17_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
