file(REMOVE_RECURSE
  "CMakeFiles/fig09_disk_bandwidth.dir/bench/fig09_disk_bandwidth.cc.o"
  "CMakeFiles/fig09_disk_bandwidth.dir/bench/fig09_disk_bandwidth.cc.o.d"
  "fig09_disk_bandwidth"
  "fig09_disk_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_disk_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
