# Empty dependencies file for fig09_disk_bandwidth.
# This may be replaced when dependencies are built.
