file(REMOVE_RECURSE
  "CMakeFiles/partitioning_test.dir/tests/partitioning_test.cc.o"
  "CMakeFiles/partitioning_test.dir/tests/partitioning_test.cc.o.d"
  "partitioning_test"
  "partitioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
