file(REMOVE_RECURSE
  "CMakeFiles/fig27_partitioners.dir/bench/fig27_partitioners.cc.o"
  "CMakeFiles/fig27_partitioners.dir/bench/fig27_partitioners.cc.o.d"
  "fig27_partitioners"
  "fig27_partitioners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
