# Empty dependencies file for fig27_partitioners.
# This may be replaced when dependencies are built.
