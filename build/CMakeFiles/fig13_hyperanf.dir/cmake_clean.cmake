file(REMOVE_RECURSE
  "CMakeFiles/fig13_hyperanf.dir/bench/fig13_hyperanf.cc.o"
  "CMakeFiles/fig13_hyperanf.dir/bench/fig13_hyperanf.cc.o.d"
  "fig13_hyperanf"
  "fig13_hyperanf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hyperanf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
