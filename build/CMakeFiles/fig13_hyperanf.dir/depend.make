# Empty dependencies file for fig13_hyperanf.
# This may be replaced when dependencies are built.
