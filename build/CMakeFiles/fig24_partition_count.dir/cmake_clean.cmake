file(REMOVE_RECURSE
  "CMakeFiles/fig24_partition_count.dir/bench/fig24_partition_count.cc.o"
  "CMakeFiles/fig24_partition_count.dir/bench/fig24_partition_count.cc.o.d"
  "fig24_partition_count"
  "fig24_partition_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_partition_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
