# Empty dependencies file for fig24_partition_count.
# This may be replaced when dependencies are built.
