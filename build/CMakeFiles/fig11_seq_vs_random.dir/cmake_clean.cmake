file(REMOVE_RECURSE
  "CMakeFiles/fig11_seq_vs_random.dir/bench/fig11_seq_vs_random.cc.o"
  "CMakeFiles/fig11_seq_vs_random.dir/bench/fig11_seq_vs_random.cc.o.d"
  "fig11_seq_vs_random"
  "fig11_seq_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_seq_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
