# Empty dependencies file for fig11_seq_vs_random.
# This may be replaced when dependencies are built.
