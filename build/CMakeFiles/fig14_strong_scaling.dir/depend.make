# Empty dependencies file for fig14_strong_scaling.
# This may be replaced when dependencies are built.
