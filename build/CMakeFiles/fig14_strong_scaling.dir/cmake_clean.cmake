file(REMOVE_RECURSE
  "CMakeFiles/fig14_strong_scaling.dir/bench/fig14_strong_scaling.cc.o"
  "CMakeFiles/fig14_strong_scaling.dir/bench/fig14_strong_scaling.cc.o.d"
  "fig14_strong_scaling"
  "fig14_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
