# Empty dependencies file for social_ingest.
# This may be replaced when dependencies are built.
