file(REMOVE_RECURSE
  "CMakeFiles/social_ingest.dir/examples/social_ingest.cpp.o"
  "CMakeFiles/social_ingest.dir/examples/social_ingest.cpp.o.d"
  "social_ingest"
  "social_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
