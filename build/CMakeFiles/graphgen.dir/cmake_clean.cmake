file(REMOVE_RECURSE
  "CMakeFiles/graphgen.dir/examples/graphgen.cpp.o"
  "CMakeFiles/graphgen.dir/examples/graphgen.cpp.o.d"
  "graphgen"
  "graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
