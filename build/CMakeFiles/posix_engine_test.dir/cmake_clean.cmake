file(REMOVE_RECURSE
  "CMakeFiles/posix_engine_test.dir/tests/posix_engine_test.cc.o"
  "CMakeFiles/posix_engine_test.dir/tests/posix_engine_test.cc.o.d"
  "posix_engine_test"
  "posix_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
