# Empty dependencies file for posix_engine_test.
# This may be replaced when dependencies are built.
