file(REMOVE_RECURSE
  "CMakeFiles/sizing_test.dir/tests/sizing_test.cc.o"
  "CMakeFiles/sizing_test.dir/tests/sizing_test.cc.o.d"
  "sizing_test"
  "sizing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
