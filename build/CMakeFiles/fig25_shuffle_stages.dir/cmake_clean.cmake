file(REMOVE_RECURSE
  "CMakeFiles/fig25_shuffle_stages.dir/bench/fig25_shuffle_stages.cc.o"
  "CMakeFiles/fig25_shuffle_stages.dir/bench/fig25_shuffle_stages.cc.o.d"
  "fig25_shuffle_stages"
  "fig25_shuffle_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_shuffle_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
