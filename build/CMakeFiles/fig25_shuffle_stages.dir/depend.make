# Empty dependencies file for fig25_shuffle_stages.
# This may be replaced when dependencies are built.
