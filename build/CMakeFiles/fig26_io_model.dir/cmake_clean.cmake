file(REMOVE_RECURSE
  "CMakeFiles/fig26_io_model.dir/bench/fig26_io_model.cc.o"
  "CMakeFiles/fig26_io_model.dir/bench/fig26_io_model.cc.o.d"
  "fig26_io_model"
  "fig26_io_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_io_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
