# Empty dependencies file for fig26_io_model.
# This may be replaced when dependencies are built.
