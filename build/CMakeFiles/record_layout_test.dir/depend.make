# Empty dependencies file for record_layout_test.
# This may be replaced when dependencies are built.
