file(REMOVE_RECURSE
  "CMakeFiles/record_layout_test.dir/tests/record_layout_test.cc.o"
  "CMakeFiles/record_layout_test.dir/tests/record_layout_test.cc.o.d"
  "record_layout_test"
  "record_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
