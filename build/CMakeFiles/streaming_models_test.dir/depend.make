# Empty dependencies file for streaming_models_test.
# This may be replaced when dependencies are built.
