file(REMOVE_RECURSE
  "CMakeFiles/streaming_models_test.dir/tests/streaming_models_test.cc.o"
  "CMakeFiles/streaming_models_test.dir/tests/streaming_models_test.cc.o.d"
  "streaming_models_test"
  "streaming_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
