file(REMOVE_RECURSE
  "CMakeFiles/fig18_sort_vs_stream.dir/bench/fig18_sort_vs_stream.cc.o"
  "CMakeFiles/fig18_sort_vs_stream.dir/bench/fig18_sort_vs_stream.cc.o.d"
  "fig18_sort_vs_stream"
  "fig18_sort_vs_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_sort_vs_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
