# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig18_sort_vs_stream.
