# Empty dependencies file for fig18_sort_vs_stream.
# This may be replaced when dependencies are built.
