file(REMOVE_RECURSE
  "CMakeFiles/fig22_graphchi.dir/bench/fig22_graphchi.cc.o"
  "CMakeFiles/fig22_graphchi.dir/bench/fig22_graphchi.cc.o.d"
  "fig22_graphchi"
  "fig22_graphchi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_graphchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
