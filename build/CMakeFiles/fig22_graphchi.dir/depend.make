# Empty dependencies file for fig22_graphchi.
# This may be replaced when dependencies are built.
