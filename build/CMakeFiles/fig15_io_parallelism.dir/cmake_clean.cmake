file(REMOVE_RECURSE
  "CMakeFiles/fig15_io_parallelism.dir/bench/fig15_io_parallelism.cc.o"
  "CMakeFiles/fig15_io_parallelism.dir/bench/fig15_io_parallelism.cc.o.d"
  "fig15_io_parallelism"
  "fig15_io_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_io_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
