# Empty dependencies file for fig15_io_parallelism.
# This may be replaced when dependencies are built.
