file(REMOVE_RECURSE
  "CMakeFiles/fig21_access_patterns.dir/bench/fig21_access_patterns.cc.o"
  "CMakeFiles/fig21_access_patterns.dir/bench/fig21_access_patterns.cc.o.d"
  "fig21_access_patterns"
  "fig21_access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
