# Empty dependencies file for fig21_access_patterns.
# This may be replaced when dependencies are built.
