# Empty dependencies file for fig16_device_scaling.
# This may be replaced when dependencies are built.
