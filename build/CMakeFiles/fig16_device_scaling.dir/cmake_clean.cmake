file(REMOVE_RECURSE
  "CMakeFiles/fig16_device_scaling.dir/bench/fig16_device_scaling.cc.o"
  "CMakeFiles/fig16_device_scaling.dir/bench/fig16_device_scaling.cc.o.d"
  "fig16_device_scaling"
  "fig16_device_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_device_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
