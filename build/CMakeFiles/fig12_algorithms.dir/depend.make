# Empty dependencies file for fig12_algorithms.
# This may be replaced when dependencies are built.
