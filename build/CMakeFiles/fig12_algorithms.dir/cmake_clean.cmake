file(REMOVE_RECURSE
  "CMakeFiles/fig12_algorithms.dir/bench/fig12_algorithms.cc.o"
  "CMakeFiles/fig12_algorithms.dir/bench/fig12_algorithms.cc.o.d"
  "fig12_algorithms"
  "fig12_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
