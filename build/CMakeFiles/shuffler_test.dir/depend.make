# Empty dependencies file for shuffler_test.
# This may be replaced when dependencies are built.
