file(REMOVE_RECURSE
  "CMakeFiles/shuffler_test.dir/tests/shuffler_test.cc.o"
  "CMakeFiles/shuffler_test.dir/tests/shuffler_test.cc.o.d"
  "shuffler_test"
  "shuffler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
