file(REMOVE_RECURSE
  "CMakeFiles/threads_test.dir/tests/threads_test.cc.o"
  "CMakeFiles/threads_test.dir/tests/threads_test.cc.o.d"
  "threads_test"
  "threads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
