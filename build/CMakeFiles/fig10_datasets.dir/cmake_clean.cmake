file(REMOVE_RECURSE
  "CMakeFiles/fig10_datasets.dir/bench/fig10_datasets.cc.o"
  "CMakeFiles/fig10_datasets.dir/bench/fig10_datasets.cc.o.d"
  "fig10_datasets"
  "fig10_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
