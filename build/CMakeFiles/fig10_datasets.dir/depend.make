# Empty dependencies file for fig10_datasets.
# This may be replaced when dependencies are built.
