file(REMOVE_RECURSE
  "libxstream_core.a"
)
