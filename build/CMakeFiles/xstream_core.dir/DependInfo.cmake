
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bfs_hybrid.cc" "CMakeFiles/xstream_core.dir/src/baselines/bfs_hybrid.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/baselines/bfs_hybrid.cc.o.d"
  "/root/repo/src/baselines/bfs_local_queue.cc" "CMakeFiles/xstream_core.dir/src/baselines/bfs_local_queue.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/baselines/bfs_local_queue.cc.o.d"
  "/root/repo/src/baselines/csr.cc" "CMakeFiles/xstream_core.dir/src/baselines/csr.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/baselines/csr.cc.o.d"
  "/root/repo/src/baselines/ligra_like.cc" "CMakeFiles/xstream_core.dir/src/baselines/ligra_like.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/baselines/ligra_like.cc.o.d"
  "/root/repo/src/baselines/sorters.cc" "CMakeFiles/xstream_core.dir/src/baselines/sorters.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/baselines/sorters.cc.o.d"
  "/root/repo/src/core/sizing.cc" "CMakeFiles/xstream_core.dir/src/core/sizing.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/core/sizing.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "CMakeFiles/xstream_core.dir/src/graph/datasets.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/graph/datasets.cc.o.d"
  "/root/repo/src/graph/edge_io.cc" "CMakeFiles/xstream_core.dir/src/graph/edge_io.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/graph/edge_io.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/xstream_core.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/reference.cc" "CMakeFiles/xstream_core.dir/src/graph/reference.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/graph/reference.cc.o.d"
  "/root/repo/src/graph/text_io.cc" "CMakeFiles/xstream_core.dir/src/graph/text_io.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/graph/text_io.cc.o.d"
  "/root/repo/src/graph/transforms.cc" "CMakeFiles/xstream_core.dir/src/graph/transforms.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/graph/transforms.cc.o.d"
  "/root/repo/src/iomodel/io_model.cc" "CMakeFiles/xstream_core.dir/src/iomodel/io_model.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/iomodel/io_model.cc.o.d"
  "/root/repo/src/partitioning/greedy_partitioner.cc" "CMakeFiles/xstream_core.dir/src/partitioning/greedy_partitioner.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/partitioning/greedy_partitioner.cc.o.d"
  "/root/repo/src/partitioning/partitioner.cc" "CMakeFiles/xstream_core.dir/src/partitioning/partitioner.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/partitioning/partitioner.cc.o.d"
  "/root/repo/src/partitioning/quality.cc" "CMakeFiles/xstream_core.dir/src/partitioning/quality.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/partitioning/quality.cc.o.d"
  "/root/repo/src/partitioning/two_phase_partitioner.cc" "CMakeFiles/xstream_core.dir/src/partitioning/two_phase_partitioner.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/partitioning/two_phase_partitioner.cc.o.d"
  "/root/repo/src/storage/device.cc" "CMakeFiles/xstream_core.dir/src/storage/device.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/storage/device.cc.o.d"
  "/root/repo/src/storage/io_executor.cc" "CMakeFiles/xstream_core.dir/src/storage/io_executor.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/storage/io_executor.cc.o.d"
  "/root/repo/src/storage/posix_device.cc" "CMakeFiles/xstream_core.dir/src/storage/posix_device.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/storage/posix_device.cc.o.d"
  "/root/repo/src/storage/raid_device.cc" "CMakeFiles/xstream_core.dir/src/storage/raid_device.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/storage/raid_device.cc.o.d"
  "/root/repo/src/storage/sim_device.cc" "CMakeFiles/xstream_core.dir/src/storage/sim_device.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/storage/sim_device.cc.o.d"
  "/root/repo/src/storage/stream_io.cc" "CMakeFiles/xstream_core.dir/src/storage/stream_io.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/storage/stream_io.cc.o.d"
  "/root/repo/src/threads/thread_pool.cc" "CMakeFiles/xstream_core.dir/src/threads/thread_pool.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/threads/thread_pool.cc.o.d"
  "/root/repo/src/util/aligned.cc" "CMakeFiles/xstream_core.dir/src/util/aligned.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/util/aligned.cc.o.d"
  "/root/repo/src/util/env.cc" "CMakeFiles/xstream_core.dir/src/util/env.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/util/env.cc.o.d"
  "/root/repo/src/util/format.cc" "CMakeFiles/xstream_core.dir/src/util/format.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/util/format.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/xstream_core.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/options.cc" "CMakeFiles/xstream_core.dir/src/util/options.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/util/options.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/xstream_core.dir/src/util/table.cc.o" "gcc" "CMakeFiles/xstream_core.dir/src/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
