# Empty dependencies file for xstream_core.
# This may be replaced when dependencies are built.
