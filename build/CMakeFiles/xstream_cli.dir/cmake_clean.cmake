file(REMOVE_RECURSE
  "CMakeFiles/xstream_cli.dir/examples/xstream_cli.cpp.o"
  "CMakeFiles/xstream_cli.dir/examples/xstream_cli.cpp.o.d"
  "xstream_cli"
  "xstream_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xstream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
