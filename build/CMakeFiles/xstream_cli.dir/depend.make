# Empty dependencies file for xstream_cli.
# This may be replaced when dependencies are built.
