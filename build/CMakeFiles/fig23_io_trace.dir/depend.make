# Empty dependencies file for fig23_io_trace.
# This may be replaced when dependencies are built.
