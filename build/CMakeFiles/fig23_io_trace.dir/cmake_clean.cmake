file(REMOVE_RECURSE
  "CMakeFiles/fig23_io_trace.dir/bench/fig23_io_trace.cc.o"
  "CMakeFiles/fig23_io_trace.dir/bench/fig23_io_trace.cc.o.d"
  "fig23_io_trace"
  "fig23_io_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_io_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
