# Empty dependencies file for fig19_bfs_inmemory.
# This may be replaced when dependencies are built.
