file(REMOVE_RECURSE
  "CMakeFiles/fig19_bfs_inmemory.dir/bench/fig19_bfs_inmemory.cc.o"
  "CMakeFiles/fig19_bfs_inmemory.dir/bench/fig19_bfs_inmemory.cc.o.d"
  "fig19_bfs_inmemory"
  "fig19_bfs_inmemory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_bfs_inmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
