# Empty dependencies file for fig08_memory_bandwidth.
# This may be replaced when dependencies are built.
