file(REMOVE_RECURSE
  "CMakeFiles/fig08_memory_bandwidth.dir/bench/fig08_memory_bandwidth.cc.o"
  "CMakeFiles/fig08_memory_bandwidth.dir/bench/fig08_memory_bandwidth.cc.o.d"
  "fig08_memory_bandwidth"
  "fig08_memory_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_memory_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
