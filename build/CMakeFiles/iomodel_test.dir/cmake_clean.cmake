file(REMOVE_RECURSE
  "CMakeFiles/iomodel_test.dir/tests/iomodel_test.cc.o"
  "CMakeFiles/iomodel_test.dir/tests/iomodel_test.cc.o.d"
  "iomodel_test"
  "iomodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iomodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
