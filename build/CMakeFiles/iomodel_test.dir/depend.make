# Empty dependencies file for iomodel_test.
# This may be replaced when dependencies are built.
