# Empty dependencies file for fig20_ligra.
# This may be replaced when dependencies are built.
