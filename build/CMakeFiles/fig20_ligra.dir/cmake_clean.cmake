file(REMOVE_RECURSE
  "CMakeFiles/fig20_ligra.dir/bench/fig20_ligra.cc.o"
  "CMakeFiles/fig20_ligra.dir/bench/fig20_ligra.cc.o.d"
  "fig20_ligra"
  "fig20_ligra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_ligra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
