// graphgen: generate synthetic graphs and dataset stand-ins to files.
//
//   graphgen --kind=rmat --scale=20 --output=/data/rmat20.bin
//   graphgen --dataset='Twitter*' --scale-shift=3 --output=twitter.txt
//   graphgen --kind=grid --scale=18 --format=text --output=roads.txt
//
// Output is packed binary edge records when the name ends in .bin,
// otherwise "src dst weight" text lines.
#include <cstdio>

#include "graph/datasets.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/text_io.h"
#include "graph/transforms.h"
#include "storage/posix_device.h"
#include "util/format.h"
#include "util/options.h"

namespace {

constexpr char kUsage[] = R"(graphgen — synthetic graph generation

  --output=<path>                   (required; *.bin = packed binary)
  --kind=rmat|grid|er|path|bipartite|chain   generator (default rmat)
    --scale=N --edge-factor=N --seed=N --directed
  --dataset='<name>'                a Fig 10 stand-in instead of --kind
    --scale-shift=N                 grow the stand-in toward paper scale
  --permute                         shuffle edge order (default on)
  --stats                           print a degree summary
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  if (opts.GetBool("help", false) || !opts.Has("output")) {
    std::fputs(kUsage, stdout);
    return opts.Has("output") ? 0 : 2;
  }

  EdgeList edges;
  if (opts.Has("dataset")) {
    auto spec = FindDataset(opts.GetString("dataset", ""));
    if (!spec.has_value()) {
      std::fprintf(stderr, "unknown dataset; known stand-ins:\n");
      for (const auto& s : InMemoryDatasets()) {
        std::fprintf(stderr, "  %s\n", s.name.c_str());
      }
      for (const auto& s : OutOfCoreDatasets()) {
        std::fprintf(stderr, "  %s\n", s.name.c_str());
      }
      return 2;
    }
    edges = GenerateDataset(*spec, static_cast<int>(opts.GetInt("scale-shift", 0)));
  } else {
    std::string kind = opts.GetString("kind", "rmat");
    uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 18));
    uint32_t ef = static_cast<uint32_t>(opts.GetUint("edge-factor", 16));
    uint64_t seed = opts.GetUint("seed", 1);
    if (kind == "rmat") {
      RmatParams params;
      params.scale = scale;
      params.edge_factor = ef;
      params.undirected = !opts.GetBool("directed", false);
      params.seed = seed;
      edges = GenerateRmat(params);
    } else if (kind == "grid") {
      edges = GenerateGrid(1u << (scale / 2), 1u << (scale - scale / 2), seed);
    } else if (kind == "er") {
      edges = GenerateErdosRenyi(uint64_t{1} << scale, (uint64_t{1} << scale) * ef,
                                 !opts.GetBool("directed", false), seed);
    } else if (kind == "path") {
      edges = GeneratePath(uint64_t{1} << scale, seed);
    } else if (kind == "bipartite") {
      uint32_t users = uint32_t{1} << scale;
      edges = GenerateBipartite(users, users / 10 + 1, static_cast<uint64_t>(users) * ef, seed);
    } else if (kind == "chain") {
      edges = GenerateClusteredChain(uint32_t{1} << (scale > 8 ? scale - 8 : 1), 256, ef, seed);
    } else {
      std::fprintf(stderr, "unknown --kind=%s\n%s", kind.c_str(), kUsage);
      return 2;
    }
  }
  if (opts.GetBool("permute", true)) {
    PermuteEdges(edges, opts.GetUint("seed", 1) + 7);
  }

  GraphInfo info = ScanEdges(edges);
  std::printf("generated %s vertices, %s edge records\n",
              HumanCount(info.num_vertices).c_str(), HumanCount(info.num_edges).c_str());
  if (opts.GetBool("stats", false)) {
    DegreeSummary s = ComputeDegrees(edges, info.num_vertices);
    std::printf("degrees: avg %.2f, max out %u, max in %u\n", s.average_degree,
                s.max_out_degree, s.max_in_degree);
  }

  std::string path = opts.GetString("output", "");
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    auto slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    std::string file = slash == std::string::npos ? path : path.substr(slash + 1);
    PosixDevice dev("out", dir);
    WriteEdgeFile(dev, file, edges);
    std::printf("wrote %s (%s packed binary)\n", path.c_str(),
                HumanBytes(edges.size() * sizeof(Edge)).c_str());
  } else {
    WriteTextEdgeList(path, edges);
    std::printf("wrote %s (text)\n", path.c_str());
  }
  return 0;
}
