// Quickstart: the smallest complete X-Stream program.
//
// Generates a scale-free graph as an *unordered* edge list, runs weakly
// connected components on the in-memory engine, and prints what the engine
// did. Demonstrates the three core API pieces:
//   1. an edge list (no sorting, no indexing — X-Stream's whole point),
//   2. an engine configured for the host (partitions auto-sized to cache),
//   3. an algorithm in the edge-centric scatter-gather model.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--scale=18] [--threads=4]
#include <cstdio>

#include "algorithms/wcc.h"
#include "core/inmem_engine.h"
#include "graph/generators.h"
#include "util/format.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);

  // 1. An unordered edge list. Any EdgeList works; RMAT here for a
  //    realistic skewed-degree graph. Undirected => both directions stored.
  RmatParams params;
  params.scale = static_cast<uint32_t>(opts.GetUint("scale", 16));
  params.edge_factor = 16;
  params.undirected = true;
  params.seed = 42;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, 7);  // prove the input order is irrelevant
  GraphInfo info = ScanEdges(edges);
  std::printf("graph: %s vertices, %s edge records (unordered)\n",
              HumanCount(info.num_vertices).c_str(), HumanCount(info.num_edges).c_str());

  // 2. The in-memory engine. Partition count and shuffler fanout are chosen
  //    automatically from the CPU cache size (paper §4).
  InMemoryConfig config;
  config.threads = static_cast<int>(opts.GetInt("threads", 0));  // 0 = all cores
  InMemoryEngine<WccAlgorithm> engine(config, edges, info.num_vertices);
  std::printf("engine: %u streaming partitions, shuffle fanout %u\n",
              engine.num_partitions(), engine.shuffle_fanout());

  // 3. Run an algorithm. RunWcc drives scatter-gather iterations until no
  //    updates flow, then extracts per-vertex component labels.
  WccResult result = RunWcc(engine);

  std::printf("result: %llu weakly connected components\n",
              static_cast<unsigned long long>(result.num_components));
  std::printf("run: %llu iterations, %s edges streamed, %.0f%% of them 'wasted' "
              "(no update sent), %llu partition steals\n",
              static_cast<unsigned long long>(result.stats.iterations),
              HumanCount(result.stats.edges_streamed).c_str(),
              result.stats.WastedEdgePercent(),
              static_cast<unsigned long long>(result.stats.steals));
  std::printf("time: %s total (%s of it partitioning the unordered input)\n",
              HumanDuration(result.stats.WallSeconds()).c_str(),
              HumanDuration(result.stats.setup_seconds).c_str());
  return 0;
}
