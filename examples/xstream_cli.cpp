// xstream_cli: run any shipped algorithm on any input from the command line.
//
//   xstream_cli --algorithm=wcc --input=edges.txt
//   xstream_cli --algorithm=pagerank --generate=rmat --scale=20 --threads=8
//   xstream_cli --algorithm=sssp --input=graph.txt --root=5 --out-of-core
//               --workdir=/data/tmp --budget-mb=1024
//
// Inputs: --input=<path> (text "src dst [weight]" lines, or raw binary edge
// records if the name ends in .bin) or --generate=rmat|grid|er|bipartite.
// Engines: in-memory by default; --out-of-core streams from real files
// under --workdir. Prints the result summary and run statistics.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "algorithms/algorithms.h"
#include "algorithms/kcores.h"
#include "core/hybrid_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "obs/attribution.h"
#include "obs/http_exporter.h"
#include "obs/profiler.h"
#include "partitioning/partitioner.h"
#include "partitioning/quality.h"
#include "graph/generators.h"
#include "graph/text_io.h"
#include "graph/transforms.h"
#include "scheduler/algo_jobs.h"
#include "scheduler/scan_source.h"
#include "scheduler/scheduler.h"
#include "storage/posix_device.h"
#include "storage/uring_device.h"
#include "util/env.h"
#include "util/format.h"
#include "util/json.h"
#include "util/options.h"

namespace xstream {
namespace {

constexpr char kUsage[] = R"(xstream_cli — edge-centric graph processing

  --algorithm=wcc|scc|bfs|sssp|pagerank|spmv|mis|mcst|conductance|bp|
              hyperanf|kcore                         (required)
  --input=<path>            text edge list, or packed binary if *.bin
  --generate=rmat|grid|er|bipartite                  (alternative to --input)
    --scale=N --edge-factor=N --seed=N --directed    generator knobs
  --symmetrize              add reverse edges (traversals on directed input)
  --dedupe --drop-self-loops --compact               input cleanup passes
  --threads=N               0 = all cores
  --partitioner=range|hash|greedy|2ps   vertex->partition strategy
                            (default range: the paper's contiguous ranges)
    --partitions=N          force the partition count (0 = engine auto)
    --partitioner-seed=N    seed for seeded partitioners (default 1)
    --partition-stats       print edge cut / replication / balance
  --root=V                  bfs/sssp source (default 0)
  --iterations=N            pagerank/bp rounds (default 5)
  --k=N                     kcore threshold (default 8)
  --engine=in-memory|out-of-core|hybrid   (default in-memory)
  --out-of-core             legacy alias for --engine=out-of-core
    --workdir=<dir>         scratch directory (default: a temp dir)
    --budget-mb=N           out-of-core working budget, MB (default 256)
    --io-unit-kb=N          I/O unit (default 1024)
    --sync-spill            serialize update-spill writes (default: async,
                            double-buffered on the device I/O thread)
    --spill-depth=N         spill write-pipeline slots (default 2; raise for
                            RAID update devices)
    --io-backend=posix|uring  storage backend for the work files (default
                            posix; uring submits sliced waves of io_uring
                            SQEs with registered buffers and falls back
                            loudly when the kernel/sandbox lacks io_uring)
    --stage-bytes=N         per-thread staging bytes for the cache-aware
                            single-stage shuffle (default: auto, half the
                            per-core cache; 0 = legacy fused counting
                            shuffle)
    --compress-updates      delta+varint compress spilled update streams
                            (bit-identical results, fewer update-file bytes;
                            ratio visible under store.codec.* in
                            --stats-json)
  --memory-budget=BYTES     hybrid engine: byte budget for pinning hot
                            partitions in RAM (default: auto-detect, half of
                            physical memory; 0 pins nothing); requests above
                            physical memory are clamped with a warning
    --no-replan             hybrid: freeze the pin set chosen at setup
                            instead of re-planning between iterations
    --residency-hysteresis=N  hybrid: iterations a partition must win/lose
                            its pin before the incremental re-plan migrates
                            it (default 2; 0 = legacy stop-the-world full
                            re-plan between iterations)
    --pin-edges             hybrid: cache pinned partitions' edge streams in
                            RAM after their first scan, so fully resident
                            partitions never touch the edge device (edge
                            bytes are priced into --memory-budget)
    --residency-decay=F     hybrid: EWMA decay in [0,1) for the residency
                            planner's observed-update-volume signal
                            (default 0 = react to the last iteration only)
  --trace=FILE              write a Chrome trace-event JSON timeline of the
                            run's phase spans (open in Perfetto or
                            chrome://tracing); covers solo and --jobs runs;
                            also flushed on SIGINT/SIGTERM
    --trace-sample=RATE     record each span with probability RATE in [0,1]
                            (default 1; implies tracing on). Keeps tracing
                            affordable on long runs.
    --trace-ring=N          keep only the most recent N spans in memory,
                            dropping the oldest (default 0 = unbounded;
                            implies tracing on). Dump the tail via the
                            telemetry GET /trace or the exit flush.
  --explain                 print the bottleneck doctor report after the
                            run: ranked per-phase time sinks, the
                            I/O-vs-compute verdict, the partition skew
                            index, and flag-level tuning hints
  --profile=FILE            sample the process with a SIGPROF CPU profiler
                            for the whole run and write folded stacks to
                            FILE (feed to flamegraph.pl)
    --profile-hz=N          profiler sampling rate (default 97)
  --http-port=P             serve live telemetry on 127.0.0.1:P while the
                            run is in flight (0 = pick an ephemeral port,
                            printed at startup): GET /metrics (Prometheus
                            text format), /healthz, /stats (the live
                            --stats-json document), /jobs (per-job
                            scheduler progress), /trace, /attribution,
                            /profile?seconds=N
  --stats-json=FILE         write run statistics plus the metrics-registry
                            snapshot as JSON (per-job array in --jobs mode)
  --jobs=SPEC[,SPEC...]     batch mode: run concurrent jobs under the
                            multi-job scheduler, sharing one edge scan.
                            SPEC = algo[:key=value...], algos wcc|bfs|sssp|
                            pagerank|spmv, keys src= iters= seed= name=.
                              --jobs=pagerank,wcc,bfs:src=0
                            --engine picks the substrate (in-memory shares
                            the RAM edge chunks; out-of-core/hybrid share
                            the partitioned edge files). With hybrid jobs,
                            --memory-budget is split across active jobs and
                            re-split as jobs come and go.
)";

EdgeList LoadOrGenerate(const Options& opts) {
  if (opts.Has("input")) {
    std::string path = opts.GetString("input", "");
    if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      // Packed binary records, read through a throwaway device.
      auto slash = path.find_last_of('/');
      std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
      std::string file = slash == std::string::npos ? path : path.substr(slash + 1);
      PosixDevice dev("in", dir);
      return ReadEdgeFile(dev, file);
    }
    TextReadOptions text;
    text.symmetrize = opts.GetBool("symmetrize", false);
    return ReadTextEdgeList(path, text);
  }
  std::string kind = opts.GetString("generate", "rmat");
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 18));
  uint32_t ef = static_cast<uint32_t>(opts.GetUint("edge-factor", 16));
  uint64_t seed = opts.GetUint("seed", 1);
  if (kind == "rmat") {
    RmatParams params;
    params.scale = scale;
    params.edge_factor = ef;
    params.undirected = !opts.GetBool("directed", false);
    params.seed = seed;
    return GenerateRmat(params);
  }
  if (kind == "grid") {
    uint32_t side = uint32_t{1} << (scale / 2);
    return GenerateGrid(side, side, seed);
  }
  if (kind == "er") {
    return GenerateErdosRenyi(uint64_t{1} << scale, (uint64_t{1} << scale) * ef,
                              !opts.GetBool("directed", false), seed);
  }
  if (kind == "bipartite") {
    uint32_t users = uint32_t{1} << scale;
    return GenerateBipartite(users, users / 10 + 1, static_cast<uint64_t>(users) * ef, seed);
  }
  std::fprintf(stderr, "unknown --generate=%s\n%s", kind.c_str(), kUsage);
  std::exit(2);
}

// The device backing the current solo out-of-core/hybrid run, so the
// --stats-json snapshot can mirror its DeviceStats into the registry. Set by
// WithEngine; the CLI runs one engine per process so a file-scope pointer is
// the simplest plumbing through the per-algorithm result lambdas.
StorageDevice* g_stats_device = nullptr;

// ---- Live telemetry sources (--http-port) ---------------------------------
//
// The exporter thread reads these mid-run, so the scopes that own the
// underlying objects publish and clear the pointers under a mutex (no
// use-after-free when an engine or scheduler goes out of scope). The live
// RunStats snapshot uses ToJson(false): only aligned scalar fields are read
// while the driver thread mutates them — monitoring-grade torn values at
// worst, never out-of-bounds (the per_iteration vector is excluded).
struct LiveTelemetry {
  std::mutex mu;
  const RunStats* run = nullptr;
  JobScheduler* scheduler = nullptr;
};
LiveTelemetry g_live;

struct LiveRunScope {
  explicit LiveRunScope(const RunStats* stats) {
    std::lock_guard<std::mutex> lock(g_live.mu);
    g_live.run = stats;
  }
  ~LiveRunScope() {
    std::lock_guard<std::mutex> lock(g_live.mu);
    g_live.run = nullptr;
  }
};

struct LiveSchedulerScope {
  explicit LiveSchedulerScope(JobScheduler* scheduler) {
    std::lock_guard<std::mutex> lock(g_live.mu);
    g_live.scheduler = scheduler;
  }
  ~LiveSchedulerScope() {
    std::lock_guard<std::mutex> lock(g_live.mu);
    g_live.scheduler = nullptr;
  }
};

// GET /stats: the --stats-json document, rendered live — the in-flight
// run's scalar stats (when one is active), per-job reports (in --jobs
// mode), and the registry snapshot.
obs::HttpResponse StatsEndpoint(const std::string& /*query*/) {
  JsonWriter w;
  w.BeginObject();
  {
    std::lock_guard<std::mutex> lock(g_live.mu);
    if (g_live.run != nullptr) {
      w.Key("run").Raw(g_live.run->ToJson(/*include_iterations=*/false));
    }
    if (g_live.scheduler != nullptr) {
      w.Key("jobs").Raw(JobReportsToJson(g_live.scheduler->reports()));
    }
  }
  w.Key("metrics").Raw(obs::MetricsRegistry::Global().ToJson());
  w.EndObject();
  return obs::HttpResponse{200, "application/json", w.TakeString()};
}

// GET /jobs: per-job scheduler progress (empty array outside --jobs mode).
obs::HttpResponse JobsEndpoint(const std::string& /*query*/) {
  std::lock_guard<std::mutex> lock(g_live.mu);
  std::string body =
      g_live.scheduler != nullptr ? JobReportsToJson(g_live.scheduler->reports()) : "[]";
  return obs::HttpResponse{200, "application/json", std::move(body)};
}

// ---- --trace flush on SIGINT/SIGTERM --------------------------------------
//
// Set once in main before the handlers are installed, read-only afterwards.
std::string g_signal_trace_path;
std::atomic<bool> g_trace_flushed{false};

// Best-effort: WriteChromeTrace allocates and takes the tracer mutex, which
// is not async-signal-safe — acceptable for a diagnostic flush on the way
// out (the alternative is a killed long run losing its whole timeline). The
// atomic guard keeps a second signal from re-entering; re-raising with the
// default handler preserves the caller-visible death-by-signal status.
void FlushTraceOnSignal(int sig) {
  if (!g_trace_flushed.exchange(true)) {
    obs::Tracer::Global().WriteChromeTrace(g_signal_trace_path);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

// Writes {"run": RunStats, "metrics": registry snapshot} when --stats-json
// is set. Publishing the RunStats and device counters into the registry
// first makes the registry snapshot the superset view (the RunStats object
// itself stays the schema-stable part consumed by tests and bench_diff).
void MaybeWriteStatsJson(const Options& opts, const RunStats& stats) {
  std::string path = opts.GetString("stats-json", "");
  if (path.empty()) {
    return;
  }
  stats.PublishTo("run");
  if (g_stats_device != nullptr) {
    g_stats_device->PublishStats();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("run").Raw(stats.ToJson());
  w.Key("attribution").Raw(obs::AttributionRegistry::Global().ToJson());
  w.Key("metrics").Raw(obs::MetricsRegistry::Global().ToJson());
  w.EndObject();
  WriteJsonFile(path, w.str());
}

// --explain: the end-of-run doctor report. Prints one report per registered
// accountant (the solo driver, or every scheduler job plus the shared scan
// source in --jobs mode), skipping accountants that never recorded time.
void MaybePrintExplain(const Options& opts) {
  if (!opts.GetBool("explain", false)) {
    return;
  }
  bool printed = false;
  for (const obs::AttributionSnapshot& snap :
       obs::AttributionRegistry::Global().Snapshots()) {
    if (snap.AccountedSeconds() <= 0.0) {
      continue;
    }
    std::fputs(obs::ExplainReport(snap).c_str(), stdout);
    printed = true;
  }
  if (!printed) {
    std::fprintf(stderr, "warning: --explain found no attribution data%s\n",
#ifdef XSTREAM_DISABLE_OBS
                 " (built with -DXSTREAM_DISABLE_OBS)"
#else
                 ""
#endif
    );
  }
}

void PrintStats(const Options& opts, const RunStats& stats) {
  MaybeWriteStatsJson(opts, stats);
  MaybePrintExplain(opts);
  std::printf("stats: %llu iterations, %s edges streamed, %s updates, %.0f%% wasted, "
              "runtime %s (setup %s)\n",
              static_cast<unsigned long long>(stats.iterations),
              HumanCount(stats.edges_streamed).c_str(),
              HumanCount(stats.updates_generated).c_str(), stats.WastedEdgePercent(),
              HumanDuration(stats.RuntimeSeconds()).c_str(),
              HumanDuration(stats.setup_seconds).c_str());
  if (stats.update_file_bytes > 0) {
    std::printf("spill: %s update-file bytes, %s written async, waited %s on spill writes, "
                "%s on gather reads\n",
                HumanBytes(stats.update_file_bytes).c_str(),
                HumanBytes(stats.async_spill_bytes).c_str(),
                HumanDuration(stats.spill_wait_seconds).c_str(),
                HumanDuration(stats.gather_wait_seconds).c_str());
  }
  if (stats.resident_partition_count > 0 || stats.avoided_spill_bytes > 0) {
    std::printf("residency: %llu partitions pinned (%s accounted), %s device traffic avoided\n",
                static_cast<unsigned long long>(stats.resident_partition_count),
                HumanBytes(stats.resident_bytes).c_str(),
                HumanBytes(stats.avoided_spill_bytes).c_str());
  }
  if (stats.promotions > 0 || stats.evictions > 0) {
    std::printf("migrations: %llu promotions, %llu evictions, %s moved\n",
                static_cast<unsigned long long>(stats.promotions),
                static_cast<unsigned long long>(stats.evictions),
                HumanBytes(stats.migration_bytes).c_str());
  }
  if (stats.pinned_edge_bytes > 0 || stats.edge_reads_avoided_bytes > 0) {
    std::printf("edge pinning: %s cached, %s edge reads served from RAM\n",
                HumanBytes(stats.pinned_edge_bytes).c_str(),
                HumanBytes(stats.edge_reads_avoided_bytes).c_str());
  }
}

// Builds the partitioner requested by --partitioner (null = the engine's
// native range mode). The CLI validates the name against the known set so a
// typo prints usage instead of aborting deep in the factory.
std::unique_ptr<Partitioner> PartitionerFromFlags(const Options& opts) {
  std::string name = opts.GetString("partitioner", "range");
  if (name == "range") {
    return nullptr;
  }
  const auto& known = KnownPartitioners();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    std::fprintf(stderr, "unknown --partitioner=%s\n%s", name.c_str(), kUsage);
    std::exit(2);
  }
  PartitionerOptions poptions;
  poptions.seed = opts.GetUint("partitioner-seed", 1);
  return MakePartitioner(name, poptions);
}

void MaybePrintPartitionStats(const Options& opts, const PartitionLayout& layout,
                              const EdgeList& edges) {
  if (!opts.GetBool("partition-stats", false)) {
    return;
  }
  PartitionQuality q = EvaluatePartitionQuality(layout, edges);
  std::printf("partitioning: %.1f%% edge cut, replication %.2f, balance %.2fx vertices / "
              "%.2fx edges\n",
              100.0 * q.CutFraction(), q.replication_factor, q.vertex_balance,
              q.edge_balance);
}

// Resolves --workdir, creating a scratch directory when unset. Shared by the
// solo engine paths and the --jobs batch mode.
std::string ResolveWorkdir(const Options& opts, std::unique_ptr<ScratchDir>& scratch) {
  std::string workdir = opts.GetString("workdir", "");
  if (workdir.empty()) {
    scratch = std::make_unique<ScratchDir>("xstream-cli");
    workdir = scratch->path();
  }
  return workdir;
}

// Builds the scratch device for the out-of-core/hybrid/jobs paths.
// --io-backend=uring always constructs the UringDevice: its constructor
// falls back loudly to the plain POSIX path when the kernel or sandbox
// rejects io_uring, so the run proceeds either way and --stats-json's
// device.disk.uring_active gauge records which path actually ran.
std::unique_ptr<PosixDevice> MakeCliDevice(const Options& opts, const std::string& workdir) {
  std::string backend = opts.GetString("io-backend", "posix");
  std::unique_ptr<PosixDevice> dev;
  if (backend == "uring") {
    dev = std::make_unique<UringDevice>("disk", workdir);
  } else if (backend == "posix") {
    dev = std::make_unique<PosixDevice>("disk", workdir);
  } else {
    std::fprintf(stderr, "unknown --io-backend=%s\n%s", backend.c_str(), kUsage);
    std::exit(2);
  }
  // Publish the backend gauges (uring_active, direct_supported) now, not
  // just at the end-of-run snapshot, so a /healthz probe early in the run
  // already answers "which I/O path engaged".
  dev->PublishStats();
  return dev;
}

// --stage-bytes: explicit value wins; unset means the cache-probed auto
// default (sizing.h). 0 keeps the legacy fused counting shuffle.
size_t StageBytesFromFlags(const Options& opts) {
  return opts.Has("stage-bytes") ? static_cast<size_t>(opts.GetUint("stage-bytes", 0))
                                 : DefaultShuffleStageBytes();
}

// Dispatches `run` with a constructed engine of any of the three flavours.
template <typename Algo, typename Run>
void WithEngine(const Options& opts, const EdgeList& edges, uint64_t num_vertices, Run&& run) {
  int threads = static_cast<int>(opts.GetInt("threads", 0));
  std::unique_ptr<Partitioner> partitioner = PartitionerFromFlags(opts);
  uint32_t partitions = static_cast<uint32_t>(opts.GetUint("partitions", 0));
  std::string engine_name =
      opts.GetString("engine", opts.GetBool("out-of-core", false) ? "out-of-core" : "in-memory");
  if (engine_name == "in-memory") {
    InMemoryConfig config;
    config.threads = threads;
    config.num_partitions = partitions;
    config.partitioner = partitioner.get();
    InMemoryEngine<Algo> engine(config, edges, num_vertices);
    std::printf("engine: in-memory, %u partitions (%s), fanout %u\n", engine.num_partitions(),
                partitioner ? partitioner->name() : "range", engine.shuffle_fanout());
    MaybePrintPartitionStats(opts, engine.layout(), edges);
    LiveRunScope live(&engine.stats());
    run(engine);
    return;
  }
  if (engine_name != "out-of-core" && engine_name != "hybrid") {
    std::fprintf(stderr, "unknown --engine=%s\n%s", engine_name.c_str(), kUsage);
    std::exit(2);
  }
  std::unique_ptr<ScratchDir> scratch;
  std::string workdir = ResolveWorkdir(opts, scratch);
  std::unique_ptr<PosixDevice> disk_owner = MakeCliDevice(opts, workdir);
  PosixDevice& disk = *disk_owner;
  WriteEdgeFile(disk, "cli.input", edges);
  GraphInfo info = ScanEdges(edges);
  info.num_vertices = num_vertices;
  if (engine_name == "hybrid") {
    HybridConfig config;
    config.threads = threads;
    config.streaming_budget_bytes = opts.GetUint("budget-mb", 256) << 20;
    config.io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", 1024)) << 10;
    config.num_partitions = partitions;
    config.async_spill = !opts.GetBool("sync-spill", false);
    config.spill_queue_depth = static_cast<int>(opts.GetInt("spill-depth", 2));
    config.compress_updates = opts.GetBool("compress-updates", false);
    config.stage_bytes = StageBytesFromFlags(opts);
    config.replan_between_iterations = !opts.GetBool("no-replan", false);
    config.residency_hysteresis =
        static_cast<uint32_t>(opts.GetUint("residency-hysteresis", 2));
    config.residency_decay = opts.GetDouble("residency-decay", 0.0);
    config.pin_edges = opts.GetBool("pin-edges", false);
    config.partitioner = partitioner.get();
    if (opts.Has("memory-budget")) {
      config.memory_budget_bytes = opts.GetUint("memory-budget", 0);
    }
    g_stats_device = &disk;
    HybridEngine<Algo> engine(config, disk, disk, disk, "cli.input", info);
    std::printf("engine: hybrid in %s, %u partitions (%s), pin budget %s, "
                "%u/%u partitions resident at start\n",
                workdir.c_str(), engine.num_partitions(),
                partitioner ? partitioner->name() : "range",
                HumanBytes(engine.pin_budget_bytes()).c_str(), engine.resident_partitions(),
                engine.num_partitions());
    MaybePrintPartitionStats(opts, engine.layout(), edges);
    {
      LiveRunScope live(&engine.stats());
      run(engine);
    }
    g_stats_device = nullptr;  // `disk` dies with this scope
    return;
  }
  OutOfCoreConfig config;
  config.threads = threads;
  config.memory_budget_bytes = opts.GetUint("budget-mb", 256) << 20;
  config.io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", 1024)) << 10;
  config.num_partitions = partitions;
  config.async_spill = !opts.GetBool("sync-spill", false);
  config.spill_queue_depth = static_cast<int>(opts.GetInt("spill-depth", 2));
  config.compress_updates = opts.GetBool("compress-updates", false);
  config.stage_bytes = StageBytesFromFlags(opts);
  config.partitioner = partitioner.get();
  g_stats_device = &disk;
  OutOfCoreEngine<Algo> engine(config, disk, disk, disk, "cli.input", info);
  std::printf("engine: out-of-core in %s, %u partitions (%s), vertices %s\n", workdir.c_str(),
              engine.num_partitions(), partitioner ? partitioner->name() : "range",
              engine.vertices_in_memory() ? "in memory" : "on disk");
  MaybePrintPartitionStats(opts, engine.layout(), edges);
  {
    LiveRunScope live(&engine.stats());
    run(engine);
  }
  g_stats_device = nullptr;  // `disk` dies with this scope
}

// Batch mode (--jobs): submit every requested job to one JobScheduler over
// a shared scan source, run them concurrently, and print per-job results
// plus the scan-sharing statistics.
int RunJobBatch(const Options& opts, const EdgeList& edges, const GraphInfo& info) {
  std::vector<JobSpec> specs = ParseJobList(opts.GetString("jobs", ""));
  int threads = static_cast<int>(opts.GetInt("threads", 0));
  ThreadPool pool(threads > 0 ? threads : NumCores());
  std::string engine_name =
      opts.GetString("engine", opts.GetBool("out-of-core", false) ? "out-of-core" : "in-memory");

  std::unique_ptr<Partitioner> partitioner = PartitionerFromFlags(opts);
  size_t io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", 1024)) << 10;
  uint32_t k = static_cast<uint32_t>(opts.GetUint("partitions", 0));
  if (k == 0) {
    // One layout serves every job, so auto-sizing uses the largest vertex
    // state among the job algorithms (16 bytes covers them all) against the
    // per-job streaming budget — the same §3.4 inequality the solo
    // out-of-core path applies per algorithm.
    k = engine_name == "in-memory"
            ? 8
            : ChooseOutOfCorePartitions(info.num_vertices * 16,
                                        opts.GetUint("budget-mb", 256) << 20, io_unit_bytes);
  }
  PartitionLayout layout;
  if (partitioner != nullptr) {
    auto mapping = std::make_shared<VertexMapping>(
        partitioner->Partition(MakeEdgeStream(edges), info.num_vertices, k));
    layout = PartitionLayout(std::move(mapping));
  } else {
    layout = PartitionLayout(info.num_vertices, k);
  }

  SchedulerOptions sched_opts;
  if (opts.Has("memory-budget")) {
    uint64_t requested = opts.GetUint("memory-budget", 0);
    sched_opts.memory_budget_bytes = requested > 0 ? ResolveMemoryBudget(requested) : 0;
  } else if (engine_name == "hybrid") {
    // Mirror the solo hybrid default (half of physical memory) so hybrid
    // batch jobs actually get pin budget instead of degenerating to the
    // plain device path.
    sched_opts.memory_budget_bytes = ResolveMemoryBudget(0);
  }

  // Declaration order doubles as teardown order: the scheduler (whose
  // destructor abandons jobs, draining I/O on `disk`) must be destroyed
  // before the device and scratch dir — including when RunAll throws.
  std::unique_ptr<ScratchDir> scratch;
  std::unique_ptr<PosixDevice> disk;
  std::vector<std::shared_ptr<JobOutput>> outputs;
  std::vector<JobId> ids;
  std::unique_ptr<ScanSource> source;
  std::unique_ptr<JobScheduler> scheduler;

  if (engine_name == "in-memory") {
    auto mem = std::make_unique<MemoryScanSource>(pool, layout, edges);
    std::printf("scheduler: %zu jobs over shared in-RAM edge chunks, %u partitions (%s)\n",
                specs.size(), layout.num_partitions(),
                partitioner ? partitioner->name() : "range");
    scheduler = std::make_unique<JobScheduler>(*mem, sched_opts);
    for (const JobSpec& spec : specs) {
      outputs.push_back(std::make_shared<JobOutput>());
      ids.push_back(scheduler->Submit(MakeMemoryJob(spec, *mem, outputs.back())));
    }
    source = std::move(mem);
  } else if (engine_name == "out-of-core" || engine_name == "hybrid") {
    std::string workdir = ResolveWorkdir(opts, scratch);
    disk = MakeCliDevice(opts, workdir);
    WriteEdgeFile(*disk, "cli.input", edges);
    DeviceScanSource::Options sopts;
    sopts.io_unit_bytes = io_unit_bytes;
    sopts.file_prefix = "scan";
    // Only hybrid job stores consume the residency-planner tallies.
    sopts.collect_dst_tallies = engine_name == "hybrid";
    auto dev = std::make_unique<DeviceScanSource>(pool, layout, sopts, *disk, "cli.input");
    std::printf("scheduler: %zu jobs over shared edge files in %s, %u partitions (%s)%s\n",
                specs.size(), workdir.c_str(), layout.num_partitions(),
                partitioner ? partitioner->name() : "range",
                engine_name == "hybrid" ? ", hybrid job stores" : "");
    scheduler = std::make_unique<JobScheduler>(*dev, sched_opts);
    DeviceJobConfig jcfg;
    jcfg.memory_budget_bytes = opts.GetUint("budget-mb", 256) << 20;
    jcfg.io_unit_bytes = sopts.io_unit_bytes;
    jcfg.async_spill = !opts.GetBool("sync-spill", false);
    jcfg.spill_queue_depth = static_cast<int>(opts.GetInt("spill-depth", 2));
    jcfg.compress_updates = opts.GetBool("compress-updates", false);
    jcfg.stage_bytes = StageBytesFromFlags(opts);
    jcfg.hybrid = engine_name == "hybrid";
    jcfg.residency_hysteresis =
        static_cast<uint32_t>(opts.GetUint("residency-hysteresis", 2));
    jcfg.residency_decay = opts.GetDouble("residency-decay", 0.0);
    jcfg.pin_edges = jcfg.hybrid && opts.GetBool("pin-edges", false);
    for (size_t i = 0; i < specs.size(); ++i) {
      outputs.push_back(std::make_shared<JobOutput>());
      ids.push_back(scheduler->Submit(MakeDeviceJob(specs[i], *dev, *disk, *disk, jcfg,
                                                    "job" + std::to_string(i),
                                                    outputs.back())));
    }
    source = std::move(dev);
  } else {
    std::fprintf(stderr, "unknown --engine=%s\n%s", engine_name.c_str(), kUsage);
    return 2;
  }

  // Publish the scheduler to the telemetry endpoints for the whole batch
  // (the scope's destructor clears the pointer on every exit path; the
  // explicit clear below precedes the normal-path scheduler.reset()).
  LiveSchedulerScope live_jobs(scheduler.get());
  scheduler->RunAll();

  for (size_t i = 0; i < specs.size(); ++i) {
    JobReport report = scheduler->report(ids[i]);
    std::printf("job %-24s %s: %s (%llu rounds, queued %s, ran %s)\n",
                report.name.c_str(), JobStateName(report.state),
                outputs[i]->summary.c_str(),
                static_cast<unsigned long long>(report.rounds),
                HumanDuration(report.queue_seconds).c_str(),
                HumanDuration(report.run_seconds).c_str());
  }
  SchedulerStats ss = scheduler->stats();
  std::printf("scan sharing: %s edge bytes streamed once for %llu partition scans; "
              "%llu extra scatter passes served (%s of naive re-reads avoided)\n",
              HumanBytes(ss.shared_scan_bytes).c_str(),
              static_cast<unsigned long long>(ss.partition_scans),
              static_cast<unsigned long long>(ss.scans_saved),
              HumanBytes(ss.saved_scan_bytes).c_str());
  if (ss.budget_resplits > 0) {
    std::printf("admission: %llu budget re-splits across active jobs\n",
                static_cast<unsigned long long>(ss.budget_resplits));
  }
  if (ss.edge_reads_avoided_bytes > 0) {
    std::printf("edge pinning: %s scan bytes served from the shared pinned-edge cache\n",
                HumanBytes(ss.edge_reads_avoided_bytes).c_str());
  }
  // Finished job accountants live in the registry's retired ring; the scan
  // source's accountant is still live — both show up here.
  MaybePrintExplain(opts);

  // --stats-json in batch mode: one document with a per-job array (each job's
  // RunStats uses the same schema as a solo run), the scheduler's scan-sharing
  // totals, and the registry snapshot.
  std::string stats_path = opts.GetString("stats-json", "");
  if (!stats_path.empty()) {
    for (size_t i = 0; i < specs.size(); ++i) {
      outputs[i]->stats.PublishTo("job." + scheduler->report(ids[i]).name);
    }
    if (disk != nullptr) {
      disk->PublishStats();
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("jobs").BeginArray();
    for (size_t i = 0; i < specs.size(); ++i) {
      JobReport report = scheduler->report(ids[i]);
      w.BeginObject();
      w.Field("name", std::string_view(report.name));
      w.Field("state", std::string_view(JobStateName(report.state)));
      w.Field("rounds", report.rounds);
      w.Field("queue_seconds", report.queue_seconds);
      w.Field("run_seconds", report.run_seconds);
      w.Key("stats").Raw(outputs[i]->stats.ToJson(/*include_iterations=*/false));
      w.EndObject();
    }
    w.EndArray();
    w.Key("scheduler").BeginObject();
    w.Field("partition_scans", ss.partition_scans);
    w.Field("scans_saved", ss.scans_saved);
    w.Field("shared_scan_bytes", ss.shared_scan_bytes);
    w.Field("saved_scan_bytes", ss.saved_scan_bytes);
    w.Field("budget_resplits", ss.budget_resplits);
    w.Field("edge_reads_avoided_bytes", ss.edge_reads_avoided_bytes);
    w.EndObject();
    w.Key("attribution").Raw(obs::AttributionRegistry::Global().ToJson());
    w.Key("metrics").Raw(obs::MetricsRegistry::Global().ToJson());
    w.EndObject();
    WriteJsonFile(stats_path, w.str());
  }

  {
    std::lock_guard<std::mutex> lock(g_live.mu);
    g_live.scheduler = nullptr;  // the scheduler dies on the next line
  }
  scheduler.reset();  // retire before the source/devices it scans
  return 0;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);

  // --trace: switch the tracer on before any engine work and flush the
  // Chrome trace on every exit path (solo, --jobs, and error returns) via a
  // scope guard. --trace-sample / --trace-ring bound its cost and memory
  // and imply tracing on even without a --trace file (the span tail stays
  // reachable through GET /trace).
  struct TraceFlusher {
    std::string path;
    ~TraceFlusher() {
      if (!path.empty() && !g_trace_flushed.exchange(true)) {
        obs::Tracer::Global().WriteChromeTrace(path);
        std::printf("trace: wrote %s (open in Perfetto or chrome://tracing)\n", path.c_str());
      }
    }
  } trace_flusher{opts.GetString("trace", "")};
  obs::Tracer::Global().set_sample_rate(opts.GetDouble("trace-sample", 1.0));
  obs::Tracer::Global().set_ring_capacity(
      static_cast<size_t>(opts.GetUint("trace-ring", 0)));
  if (!trace_flusher.path.empty() || opts.Has("trace-sample") || opts.Has("trace-ring")) {
    obs::Tracer::Global().Enable();
  }
  if (!trace_flusher.path.empty()) {
    // A killed long run keeps its timeline: flush the trace from the signal
    // handler, then re-raise so the exit status still reports the signal.
    g_signal_trace_path = trace_flusher.path;
    std::signal(SIGINT, FlushTraceOnSignal);
    std::signal(SIGTERM, FlushTraceOnSignal);
  }

  // --profile: whole-run SIGPROF sampling, folded stacks flushed to the
  // given file on every exit path (the scope guard outlives the engines).
  struct ProfileFlusher {
    std::string path;
    ~ProfileFlusher() {
      if (path.empty()) {
        return;
      }
      obs::CpuProfiler& prof = obs::CpuProfiler::Global();
      prof.Stop();
      if (prof.WriteFolded(path)) {
        std::printf("profile: wrote %llu samples to %s "
                    "(render: flamegraph.pl %s > profile.svg)\n",
                    static_cast<unsigned long long>(prof.sample_count()), path.c_str(),
                    path.c_str());
      }
    }
  } profile_flusher;
  if (opts.Has("profile")) {
    std::string path = opts.GetString("profile", "");
    int hz = static_cast<int>(opts.GetInt("profile-hz", 97));
    if (!path.empty() && obs::CpuProfiler::Global().Start(hz)) {
      profile_flusher.path = path;
    } else {
      std::fprintf(stderr, "warning: --profile unavailable%s; continuing without it\n",
#ifdef XSTREAM_DISABLE_OBS
                   " (built with -DXSTREAM_DISABLE_OBS)"
#else
                   ""
#endif
      );
    }
  }

  // --http-port: bring the telemetry endpoints up before any engine work so
  // probes see the whole run. The exporter stops (and its thread joins) at
  // scope exit, after the engines are gone.
  obs::HttpExporter exporter;
  if (opts.Has("http-port")) {
    exporter.Handle("/stats", StatsEndpoint);
    exporter.Handle("/jobs", JobsEndpoint);
    if (exporter.Start(static_cast<uint16_t>(opts.GetUint("http-port", 0)))) {
      std::printf("telemetry: listening on http://127.0.0.1:%d "
                  "(/metrics /healthz /stats /jobs /trace /attribution /profile)\n",
                  exporter.port());
      std::fflush(stdout);  // scripted probes poll this line through a pipe
    } else {
      std::fprintf(stderr,
                   "warning: telemetry endpoint unavailable%s; continuing without it\n",
#ifdef XSTREAM_DISABLE_OBS
                   " (built with -DXSTREAM_DISABLE_OBS)"
#else
                   ""
#endif
      );
    }
  }

  if (opts.GetBool("help", false) || (!opts.Has("algorithm") && !opts.Has("jobs"))) {
    std::fputs(kUsage, stdout);
    return opts.Has("algorithm") || opts.Has("jobs") ? 0 : 2;
  }

  EdgeList edges = LoadOrGenerate(opts);
  if (opts.GetBool("drop-self-loops", false)) {
    edges = RemoveSelfLoops(edges);
  }
  if (opts.GetBool("dedupe", false)) {
    edges = DeduplicateEdges(edges);
  }
  if (opts.GetBool("compact", false)) {
    edges = CompactVertexIds(edges).edges;
  }
  GraphInfo info = ScanEdges(edges);
  std::printf("graph: %s vertices, %s edge records\n", HumanCount(info.num_vertices).c_str(),
              HumanCount(info.num_edges).c_str());

  if (opts.Has("jobs")) {
    return RunJobBatch(opts, edges, info);
  }

  std::string algo = opts.GetString("algorithm", "");
  VertexId root = static_cast<VertexId>(opts.GetUint("root", 0));
  uint64_t iters = opts.GetUint("iterations", 5);

  if (algo == "wcc") {
    WithEngine<WccAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      WccResult r = RunWcc(engine);
      std::printf("result: %llu weakly connected components\n",
                  static_cast<unsigned long long>(r.num_components));
      PrintStats(opts, r.stats);
    });
  } else if (algo == "bfs") {
    WithEngine<BfsAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      BfsResult r = RunBfs(engine, root);
      std::printf("result: %llu vertices reached from %u\n",
                  static_cast<unsigned long long>(r.reached), root);
      PrintStats(opts, r.stats);
    });
  } else if (algo == "sssp") {
    WithEngine<SsspAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      SsspResult r = RunSssp(engine, root);
      uint64_t reached = 0;
      for (float d : r.dist) {
        reached += std::isfinite(d) ? 1 : 0;
      }
      std::printf("result: shortest paths to %llu vertices from %u\n",
                  static_cast<unsigned long long>(reached), root);
      PrintStats(opts, r.stats);
    });
  } else if (algo == "pagerank") {
    WithEngine<PageRankAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      PageRankResult r = RunPageRank(engine, iters);
      VertexId best = 0;
      for (VertexId v = 1; v < r.ranks.size(); ++v) {
        if (r.ranks[v] > r.ranks[best]) {
          best = v;
        }
      }
      std::printf("result: top vertex %u (rank %.3e)\n", best, r.ranks[best]);
      PrintStats(opts, r.stats);
    });
  } else if (algo == "spmv") {
    WithEngine<SpmvAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      SpmvResult r = RunSpmv(engine);
      double norm = 0;
      for (float y : r.y) {
        norm += static_cast<double>(y) * y;
      }
      std::printf("result: |A*x|_2 = %.4f\n", std::sqrt(norm));
      PrintStats(opts, r.stats);
    });
  } else if (algo == "mis") {
    WithEngine<MisAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      MisResult r = RunMis(engine);
      std::printf("result: independent set of %llu vertices\n",
                  static_cast<unsigned long long>(r.set_size));
      PrintStats(opts, r.stats);
    });
  } else if (algo == "mcst") {
    WithEngine<McstAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      McstResult r = RunMcst(engine);
      std::printf("result: spanning forest of %llu edges, weight %.4f\n",
                  static_cast<unsigned long long>(r.tree_edges), r.total_weight);
      PrintStats(opts, r.stats);
    });
  } else if (algo == "conductance") {
    WithEngine<ConductanceAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      ConductanceResult r = RunConductance(engine);
      std::printf("result: conductance %.4f (%llu cross edges)\n", r.conductance,
                  static_cast<unsigned long long>(r.cross_edges));
      PrintStats(opts, r.stats);
    });
  } else if (algo == "bp") {
    WithEngine<BpAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      BpResult r = RunBp(engine, iters);
      std::printf("result: %llu confident vertices\n",
                  static_cast<unsigned long long>(r.confident));
      PrintStats(opts, r.stats);
    });
  } else if (algo == "hyperanf") {
    WithEngine<HyperAnfAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      HyperAnfResult r = RunHyperAnf(engine);
      std::printf("result: neighborhood function converged after %u steps; N = %s\n",
                  r.steps, HumanCount(static_cast<uint64_t>(
                               r.neighborhood_function.back())).c_str());
      PrintStats(opts, r.stats);
    });
  } else if (algo == "kcore") {
    uint32_t k = static_cast<uint32_t>(opts.GetUint("k", 8));
    WithEngine<KCoreAlgorithm>(opts, edges, info.num_vertices, [&](auto& engine) {
      KCoreResult r = RunKCore(engine, k);
      std::printf("result: %u-core has %llu vertices\n", k,
                  static_cast<unsigned long long>(r.core_size));
      PrintStats(opts, r.stats);
    });
  } else if (algo == "scc") {
    EdgeList flagged = MakeSccEdgeList(edges);
    GraphInfo finfo = ScanEdges(flagged);
    WithEngine<SccAlgorithm>(opts, flagged, finfo.num_vertices, [&](auto& engine) {
      SccResult r = RunScc(engine);
      std::printf("result: %llu strongly connected components (%llu FW/BW rounds)\n",
                  static_cast<unsigned long long>(r.num_sccs),
                  static_cast<unsigned long long>(r.rounds));
      engine.FinalizeStats();
      PrintStats(opts, engine.stats());
    });
  } else {
    std::fprintf(stderr, "unknown --algorithm=%s\n%s", algo.c_str(), kUsage);
    return 2;
  }
  return 0;
}
