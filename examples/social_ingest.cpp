// Streaming ingest of a growing social graph (the Fig 17 / Kineograph
// scenario): edges arrive in batches, each batch is absorbed by one
// in-memory shuffle and appended to the partitioned store, and connected
// components are recomputed over the accumulated graph after every batch —
// no global re-sort or re-index, because X-Stream never needed one.
//
//   ./build/examples/social_ingest [--scale=17] [--batches=8]
#include <cstdio>

#include "algorithms/wcc.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "storage/posix_device.h"
#include "util/format.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);

  RmatParams params;
  params.scale = static_cast<uint32_t>(opts.GetUint("scale", 17));
  params.edge_factor = 16;
  params.undirected = true;  // friendships
  params.seed = 77;
  EdgeList full = GenerateRmat(params);
  PermuteEdges(full, 8);  // arrival order is arbitrary
  GraphInfo info = ScanEdges(full);
  int batches = static_cast<int>(opts.GetInt("batches", 8));
  std::printf("social graph: %s users, %s friendship records arriving in %d batches\n",
              HumanCount(info.num_vertices).c_str(), HumanCount(full.size()).c_str(),
              batches);

  ScratchDir scratch("xstream-social");
  PosixDevice disk("disk", scratch.path());
  WriteEdgeFile(disk, "social.edges", {});  // start empty

  OutOfCoreConfig config;
  config.threads = static_cast<int>(opts.GetInt("threads", 0));
  config.memory_budget_bytes = opts.GetUint("budget-mb", 16) << 20;
  config.io_unit_bytes = 1 << 20;
  GraphInfo empty = info;  // vertex universe known up front
  empty.num_edges = 0;
  OutOfCoreEngine<WccAlgorithm> engine(config, disk, disk, disk, "social.edges", empty);

  uint64_t per_batch = full.size() / static_cast<uint64_t>(batches);
  for (int b = 0; b < batches; ++b) {
    uint64_t begin = static_cast<uint64_t>(b) * per_batch;
    uint64_t end = (b + 1 == batches) ? full.size() : begin + per_batch;
    EdgeList batch(full.begin() + static_cast<long>(begin),
                   full.begin() + static_cast<long>(end));

    engine.ResetStats();
    engine.IngestEdges(batch);
    double ingest = engine.stats().setup_seconds;

    engine.ResetStats();
    WccResult r = RunWcc(engine);
    std::printf("batch %d: +%s edges ingested in %s; WCC over %s edges -> %llu components "
                "in %s (%llu iterations)\n",
                b + 1, HumanCount(end - begin).c_str(), HumanDuration(ingest).c_str(),
                HumanCount(end).c_str(),
                static_cast<unsigned long long>(r.num_components),
                HumanDuration(r.stats.WallSeconds()).c_str(),
                static_cast<unsigned long long>(r.stats.iterations));
  }
  return 0;
}
