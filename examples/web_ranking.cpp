// Web ranking out of core: PageRank over a web-crawl-like graph that does
// not fit the memory budget, processed from storage the X-Stream way.
//
// This is the paper's motivating scenario (ranking web pages from a cheap
// single server): the unordered crawl edge list lands on disk, gets
// partitioned in one streaming pass (no sort), and PageRank runs with
// sequential I/O in both directions. The example runs against real files
// (PosixDevice) in a scratch directory, prints the per-device traffic, and
// reports the top-ranked pages.
//
//   ./build/examples/web_ranking [--scale=18] [--iters=5] [--budget-mb=16]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algorithms/pagerank.h"
#include "core/ooc_engine.h"
#include "graph/edge_io.h"
#include "graph/generators.h"
#include "storage/posix_device.h"
#include "util/format.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);

  // A web-crawl stand-in: directed scale-free RMAT graph (sk-2005-like).
  RmatParams params;
  params.scale = static_cast<uint32_t>(opts.GetUint("scale", 18));
  params.edge_factor = 16;
  params.undirected = false;
  params.seed = 2005;
  EdgeList crawl = GenerateRmat(params);
  PermuteEdges(crawl, 3);
  GraphInfo info = ScanEdges(crawl);
  std::printf("crawl: %s pages, %s links\n", HumanCount(info.num_vertices).c_str(),
              HumanCount(info.num_edges).c_str());

  // Real files in a scratch directory.
  ScratchDir scratch("xstream-web-ranking");
  PosixDevice disk("disk", scratch.path());
  WriteEdgeFile(disk, "crawl.edges", crawl);
  {  // free the in-memory copy: from here on the graph lives on disk
    EdgeList().swap(crawl);
  }

  OutOfCoreConfig config;
  config.threads = static_cast<int>(opts.GetInt("threads", 0));
  config.memory_budget_bytes = opts.GetUint("budget-mb", 16) << 20;
  config.io_unit_bytes = 1 << 20;
  OutOfCoreEngine<PageRankAlgorithm> engine(config, disk, disk, disk, "crawl.edges", info);
  std::printf("engine: %u streaming partitions, vertices %s\n", engine.num_partitions(),
              engine.vertices_in_memory() ? "memory-resident" : "on disk");

  uint64_t iters = opts.GetUint("iters", 5);
  PageRankResult result = RunPageRank(engine, iters);

  DeviceStats io = disk.stats();
  std::printf("run: %llu iterations, %s read / %s written to %s\n",
              static_cast<unsigned long long>(result.stats.iterations),
              HumanBytes(io.bytes_read).c_str(), HumanBytes(io.bytes_written).c_str(),
              scratch.path().c_str());
  std::printf("time: %s (wall)\n", HumanDuration(result.stats.WallSeconds()).c_str());

  // Top 10 pages.
  std::vector<VertexId> order(result.ranks.size());
  for (VertexId v = 0; v < order.size(); ++v) {
    order[v] = v;
  }
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](VertexId a, VertexId b) { return result.ranks[a] > result.ranks[b]; });
  std::printf("top pages by rank:\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("  #%2d page %-10u rank %.3e\n", i + 1, order[static_cast<size_t>(i)],
                result.ranks[order[static_cast<size_t>(i)]]);
  }
  return 0;
}
