// xstream-serve: multi-tenant graph query daemon over the X-Stream engine.
//
//   xstream-serve --graphs=social=rmat:14 --port=8080
//   xstream-serve --graphs=web=file:edges.txt,roads=grid:16 \
//                 --tenants=prod:weight=3:max-jobs=4,batch:weight=1 --port=0
//
// Loads and partitions every --graphs entry at startup, then serves
// algorithm queries over HTTP (POST /v1/jobs, see docs/serving.md) through
// one fair-share JobScheduler per graph. The same port carries the full
// telemetry plane (/metrics, /healthz, /stats, /trace, /attribution).
// SIGTERM/SIGINT drain: new submissions get 503, running jobs finish, then
// the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "graph/generators.h"
#include "graph/text_io.h"
#include "obs/http_exporter.h"
#include "scheduler/scheduler.h"
#include "serve/service.h"
#include "util/options.h"

namespace xstream {
namespace {

constexpr char kUsage[] = R"(xstream-serve — multi-tenant graph query daemon

  --graphs=NAME=SOURCE[,NAME=SOURCE...]   graphs to mount (required)
      SOURCE = file:PATH   text edge list ("src dst [weight]" lines)
             | rmat:SCALE  RMAT graph, 2^SCALE vertices (edge factor 8)
             | grid:SCALE  grid graph, ~2^SCALE vertices
             | er:SCALE    Erdos-Renyi graph, 2^SCALE vertices
  --port=P                  listen on 127.0.0.1:P (default 0 = ephemeral,
                            printed at startup)
  --engine=in-memory|out-of-core|hybrid   job substrate (default in-memory)
    --workdir=DIR           scratch dir for device engines (default: temp)
    --budget-mb=N           per-job streaming budget, MB (default 64)
    --io-unit-kb=N          I/O unit (default 1024)
  --threads=N               compute pool size (0 = all cores)
  --partitions=N            per-graph partition count (0 = auto)
  --memory-budget=BYTES     scheduler admission budget per graph (0 = off)
  --max-active-jobs=N       global concurrent-job ceiling per graph (0 = off)
  --max-body-kb=N           request body ceiling (default 1024; above = 413)
  --tenants=NAME:k=v[:k=v...][,NAME:...]  per-tenant quotas:
      weight=W              fair-share weight (default 1)
      max-jobs=N            concurrent running jobs (0 = unlimited)
      max-queued=N          queued jobs before 429 (0 = unlimited)
      mem-share=F           max fraction of the memory budget per job
  --default-weight=W --default-max-jobs=N --default-max-queued=N
      --default-mem-share=F quotas for tenants not listed in --tenants
)";

// One "k1=v1" split. Aborts with usage on malformed text.
void Split(const std::string& text, char sep, std::vector<std::string>* out) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      end = text.size();
    }
    out->push_back(text.substr(start, end - start));
    start = end + 1;
    if (end == text.size()) {
      break;
    }
  }
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "xstream-serve: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

EdgeList LoadGraphSource(const std::string& source) {
  size_t colon = source.find(':');
  if (colon == std::string::npos) {
    Die("graph source \"" + source + "\" needs a kind prefix (file:/rmat:/grid:/er:)");
  }
  std::string kind = source.substr(0, colon);
  std::string arg = source.substr(colon + 1);
  if (kind == "file") {
    return ReadTextEdgeList(arg, {});
  }
  uint32_t scale = static_cast<uint32_t>(std::strtoul(arg.c_str(), nullptr, 10));
  if (scale == 0 || scale > 28) {
    Die("graph source \"" + source + "\": scale must be in [1,28]");
  }
  uint64_t seed = 1;
  if (kind == "rmat") {
    RmatParams params;
    params.scale = scale;
    params.edge_factor = 8;
    params.undirected = true;
    params.seed = seed;
    return GenerateRmat(params);
  }
  if (kind == "grid") {
    uint32_t side = uint32_t{1} << (scale / 2);
    return GenerateGrid(side, side, seed);
  }
  if (kind == "er") {
    return GenerateErdosRenyi(uint64_t{1} << scale, (uint64_t{1} << scale) * 8, true, seed);
  }
  Die("unknown graph source kind \"" + kind + "\"");
}

TenantQuota ParseQuotaFields(const std::string& name,
                             const std::vector<std::string>& fields, size_t first,
                             TenantQuota base) {
  for (size_t i = first; i < fields.size(); ++i) {
    size_t eq = fields[i].find('=');
    if (eq == std::string::npos) {
      Die("tenant \"" + name + "\": bad quota field \"" + fields[i] + "\"");
    }
    std::string key = fields[i].substr(0, eq);
    std::string value = fields[i].substr(eq + 1);
    if (key == "weight") {
      base.weight = std::strtod(value.c_str(), nullptr);
      if (!(base.weight > 0.0)) {
        Die("tenant \"" + name + "\": weight must be > 0");
      }
    } else if (key == "max-jobs") {
      base.max_running = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "max-queued") {
      base.max_queued = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "mem-share") {
      base.memory_share = std::strtod(value.c_str(), nullptr);
    } else {
      Die("tenant \"" + name + "\": unknown quota key \"" + key + "\"");
    }
  }
  return base;
}

// SIGTERM/SIGINT set the flag; the main loop notices and drains. sig_atomic_t
// keeps the handler async-signal-safe.
volatile std::sig_atomic_t g_shutdown = 0;
void OnShutdownSignal(int) { g_shutdown = 1; }

int Main(int argc, char** argv) {
  Options opts(argc, argv);
  if (opts.GetBool("help", false) || !opts.Has("graphs")) {
    std::fputs(kUsage, stdout);
    return opts.Has("graphs") ? 0 : 2;
  }

  serve::ServiceOptions sopts;
  sopts.engine = opts.GetString("engine", "in-memory");
  sopts.workdir = opts.GetString("workdir", "");
  sopts.threads = static_cast<int>(opts.GetInt("threads", 0));
  sopts.partitions = static_cast<uint32_t>(opts.GetUint("partitions", 0));
  sopts.io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", 1024)) << 10;
  sopts.job_budget_bytes = opts.GetUint("budget-mb", 64) << 20;
  sopts.max_body_bytes = static_cast<size_t>(opts.GetUint("max-body-kb", 1024)) << 10;
  sopts.scheduler.memory_budget_bytes = opts.GetUint("memory-budget", 0);
  sopts.scheduler.max_active_jobs =
      static_cast<uint32_t>(opts.GetUint("max-active-jobs", 0));
  sopts.scheduler.default_quota.weight = opts.GetDouble("default-weight", 1.0);
  sopts.scheduler.default_quota.max_running =
      static_cast<uint32_t>(opts.GetUint("default-max-jobs", 0));
  sopts.scheduler.default_quota.max_queued =
      static_cast<uint32_t>(opts.GetUint("default-max-queued", 0));
  sopts.scheduler.default_quota.memory_share = opts.GetDouble("default-mem-share", 0.0);
  if (opts.Has("tenants")) {
    std::vector<std::string> entries;
    Split(opts.GetString("tenants", ""), ',', &entries);
    for (const std::string& entry : entries) {
      std::vector<std::string> fields;
      Split(entry, ':', &fields);
      if (fields.empty() || fields[0].empty()) {
        Die("bad --tenants entry \"" + entry + "\"");
      }
      sopts.scheduler.tenants[fields[0]] =
          ParseQuotaFields(fields[0], fields, 1, sopts.scheduler.default_quota);
    }
  }

  serve::GraphService service(sopts);
  {
    std::vector<std::string> entries;
    Split(opts.GetString("graphs", ""), ',', &entries);
    for (const std::string& entry : entries) {
      size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        Die("bad --graphs entry \"" + entry + "\" (want NAME=SOURCE)");
      }
      serve::GraphSpec spec;
      spec.name = entry.substr(0, eq);
      spec.edges = LoadGraphSource(entry.substr(eq + 1));
      std::printf("graph %s: %zu edge records\n", spec.name.c_str(), spec.edges.size());
      service.Mount(std::move(spec));
    }
  }

  obs::HttpExporter exporter;
  service.Start(exporter);
  if (!exporter.Start(static_cast<uint16_t>(opts.GetUint("port", 0)))) {
    std::fprintf(stderr, "xstream-serve: cannot bind 127.0.0.1:%llu%s\n",
                 static_cast<unsigned long long>(opts.GetUint("port", 0)),
#ifdef XSTREAM_DISABLE_OBS
                 " (built with -DXSTREAM_DISABLE_OBS: no HTTP plane)"
#else
                 ""
#endif
    );
    service.Stop();
    return 1;
  }
  std::printf("serve: listening on http://127.0.0.1:%d "
              "(POST /v1/jobs; /v1/graphs /v1/tenants /metrics /healthz /stats)\n",
              exporter.port());
  std::fflush(stdout);  // scripted probes poll this line through a pipe

  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  while (g_shutdown == 0) {
    // The pump threads and the exporter do all the work; this thread only
    // waits for the shutdown signal (usleep returns early on EINTR).
    ::usleep(100 * 1000);
  }

  std::printf("serve: draining (running jobs finish, new submissions get 503)\n");
  std::fflush(stdout);
  service.BeginDrain();
  service.WaitIdle();
  service.Stop();
  exporter.Stop();
  std::printf("serve: drained, exiting\n");
  return 0;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) { return xstream::Main(argc, argv); }
