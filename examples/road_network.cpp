// Shortest paths on a road-network-like graph — the workload the paper
// identifies as X-Stream's weak spot (§5.3): the grid's huge diameter forces
// thousands of scatter-gather iterations, each streaming every edge for a
// tiny frontier. The example measures it honestly and contrasts the same
// query on a scale-free graph of equal size, reproducing the paper's
// dimacs-usa observation in miniature.
//
//   ./build/examples/road_network [--side=384]
#include <cmath>
#include <cstdio>

#include "algorithms/sssp.h"
#include "core/inmem_engine.h"
#include "graph/generators.h"
#include "util/format.h"
#include "util/options.h"

namespace {

template <typename F>
void Report(const char* label, xstream::SsspResult& r, F&& reachable) {
  std::printf("%-12s %7llu iterations  %9s  %5.1f%% wasted edges  (%s reachable)\n", label,
              static_cast<unsigned long long>(r.stats.iterations),
              xstream::HumanDuration(r.stats.WallSeconds()).c_str(),
              r.stats.WastedEdgePercent(), xstream::HumanCount(reachable(r)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  uint32_t side = static_cast<uint32_t>(opts.GetUint("side", 384));
  int threads = static_cast<int>(opts.GetInt("threads", 0));

  auto reachable = [](const SsspResult& r) {
    uint64_t n = 0;
    for (float d : r.dist) {
      n += std::isfinite(d) ? 1 : 0;
    }
    return n;
  };

  // Road network stand-in: side x side grid, random segment costs.
  {
    EdgeList roads = GenerateGrid(side, side, 5);
    GraphInfo info = ScanEdges(roads);
    std::printf("road grid: %s junctions, %s segments, diameter %u\n",
                HumanCount(info.num_vertices).c_str(), HumanCount(info.num_edges).c_str(),
                2 * (side - 1));
    InMemoryConfig config;
    config.threads = threads;
    InMemoryEngine<SsspAlgorithm> engine(config, roads, info.num_vertices);
    SsspResult r = RunSssp(engine, 0);
    Report("road grid:", r, reachable);
  }

  // Same vertex count, scale-free: the shape X-Stream is built for.
  {
    uint32_t scale = 1;
    while ((1u << scale) < side * side) {
      ++scale;
    }
    EdgeList social = GenerateRmat({.scale = scale, .edge_factor = 2, .undirected = true,
                                    .seed = 6});
    GraphInfo info = ScanEdges(social);
    std::printf("scale-free: %s vertices, %s edges\n", HumanCount(info.num_vertices).c_str(),
                HumanCount(info.num_edges).c_str());
    InMemoryConfig config;
    config.threads = threads;
    InMemoryEngine<SsspAlgorithm> engine(config, social, info.num_vertices);
    SsspResult r = RunSssp(engine, 0);
    Report("scale-free:", r, reachable);
  }

  std::printf("\nthe road grid needs orders of magnitude more iterations for the same edge "
              "budget —\nX-Stream streams the full edge list per iteration, so high-diameter "
              "graphs are its\nworst case (paper §5.3, Figs 12-13).\n");
  return 0;
}
