// Movie recommendation with ALS on a Netflix-like bipartite rating graph.
//
// Shows a non-traversal workload with heavyweight vertex state (~212 bytes:
// latent vectors plus normal-equation accumulators — the paper notes ALS has
// its largest vertex footprint). The ratings are a bipartite edge list;
// alternate halves of the graph scatter their latent vectors while the other
// half re-solves, and a final evaluation pass measures training RMSE.
//
//   ./build/examples/recommender [--users=20000] [--iters=5]
#include <cstdio>

#include "algorithms/als.h"
#include "core/inmem_engine.h"
#include "graph/generators.h"
#include "util/format.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);

  uint32_t users = static_cast<uint32_t>(opts.GetUint("users", 20000));
  uint32_t items = users / 10 + 1;
  uint64_t ratings = static_cast<uint64_t>(users) * opts.GetUint("ratings-per-user", 25);
  EdgeList graph = GenerateBipartite(users, items, ratings, 99);
  GraphInfo info = ScanEdges(graph);
  std::printf("ratings: %u users x %u items, %s ratings (vertex state: %zu bytes)\n", users,
              items, HumanCount(ratings).c_str(), sizeof(AlsAlgorithm::VertexState));

  InMemoryConfig config;
  config.threads = static_cast<int>(opts.GetInt("threads", 0));
  InMemoryEngine<AlsAlgorithm> engine(config, graph, info.num_vertices);
  std::printf("engine: %u streaming partitions\n", engine.num_partitions());

  uint64_t iters = opts.GetUint("iters", 5);
  AlsResult result = RunAls(engine, users, iters);

  std::printf("after %llu ALS sweeps: training RMSE %.4f over %s ratings\n",
              static_cast<unsigned long long>(iters), result.rmse,
              HumanCount(result.ratings).c_str());
  std::printf("time: %s; engine streamed %s updates of %zu bytes each\n",
              HumanDuration(result.stats.WallSeconds()).c_str(),
              HumanCount(result.stats.updates_generated).c_str(),
              sizeof(AlsAlgorithm::Update));

  // Produce a recommendation for one user: best-scoring unrated item.
  // (Vectors live in the engine's vertex states.)
  VertexId user = 0;
  const auto& ustate = engine.State(user);
  float best_score = -1e30f;
  VertexId best_item = kNoVertex;
  for (VertexId item = users; item < info.num_vertices; ++item) {
    const auto& istate = engine.State(item);
    float score = 0;
    for (uint32_t f = 0; f < AlsAlgorithm::kFactors; ++f) {
      score += ustate.vec[f] * istate.vec[f];
    }
    if (score > best_score) {
      best_score = score;
      best_item = item;
    }
  }
  std::printf("recommendation for user 0: item %u (predicted rating %.2f)\n",
              best_item - users, best_score);
  return 0;
}
