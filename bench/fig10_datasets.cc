// Fig 10: the dataset table. Prints the paper's graphs alongside the
// synthetic stand-ins this reproduction uses (see DESIGN.md §2.5), with the
// stand-ins' actual vertex/edge counts at default scale.
#include "bench_common.h"
#include "graph/datasets.h"

namespace xstream {
namespace {

const char* KindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kScaleFree:
      return "RMAT (scale-free)";
    case DatasetKind::kHighDiameter:
      return "grid (high diameter)";
    case DatasetKind::kChained:
      return "clustered chain";
    case DatasetKind::kBipartite:
      return "bipartite ratings";
  }
  return "?";
}

void PrintGroup(const char* title, const std::vector<DatasetSpec>& specs, int scale_shift) {
  std::printf("%s\n", title);
  Table table({"Name", "Paper |V| / |E|", "Stand-in", "Stand-in |V|", "Stand-in |E|", "Type"});
  for (const auto& spec : specs) {
    EdgeList edges = GenerateDataset(spec, scale_shift);
    GraphInfo info = ScanEdges(edges);
    table.AddRow({spec.name, spec.paper_size, KindName(spec.kind),
                  HumanCount(info.num_vertices), HumanCount(info.num_edges),
                  spec.directed ? "Directed" : "Undir."});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 10", "Datasets",
              "paper graphs are mapped to generator stand-ins preserving degree "
              "skew / diameter / bipartite structure");
  int shift = static_cast<int>(opts.GetInt("scale-shift", 0));
  PrintGroup("In-memory", InMemoryDatasets(), shift);
  PrintGroup("Out-of-core", OutOfCoreDatasets(), shift);
  return 0;
}
