// Fig 30 (extension beyond the paper): multi-job scan sharing.
//
// X-Stream's bet is that the sequential edge-stream scan dominates, so k
// concurrent jobs over one graph should share each scan instead of paying k
// times for it. The JobScheduler (src/scheduler/) streams every partition's
// edge chunks once per round and fans them out to all active jobs' scatter
// phases; per-job update spills and gathers stay independent. This bench
// sweeps k in {1,2,4,8} concurrent jobs (PageRank / WCC / BFS / SSSP mixes)
// on an rmat graph and compares edge-device read bytes across:
//
//   * solo / naive-sequential — one OutOfCoreEngine per job, run back to
//     back on private devices: edge reads grow ~linearly in k;
//   * naive-interleaved — one engine per job on ONE shared edge device,
//     driven one iteration each round-robin: the same byte volume, plus the
//     seek storm of k interleaved streams;
//   * shared — the scheduler: edge reads ~flat in k (bounded by the
//     longest-running job's solo volume).
//
// Acceptance (checked when run single-threaded, the default): every job's
// output is bit-identical to its solo engine run, and at k=4 the shared
// scan's edge-read bytes are <= 1.25x the largest single-job scan volume,
// versus ~4x for the naive modes.
#include "bench_common.h"

#include <cmath>
#include <functional>
#include <memory>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "algorithms/wcc.h"
#include "core/ooc_engine.h"
#include "graph/transforms.h"
#include "scheduler/algo_jobs.h"
#include "scheduler/scan_source.h"
#include "scheduler/scheduler.h"
#include "util/logging.h"

namespace xstream {
namespace {

struct BenchSetup {
  EdgeList edges;
  GraphInfo info;
  int threads = 1;
  uint32_t partitions = 8;
  size_t io_unit_bytes = 64 << 10;
};

// The fixed job mix; k jobs = the first k entries.
std::vector<JobSpec> JobsForK(size_t k) {
  static const char* kSpecs[] = {
      "pagerank:iters=5",  "wcc",           "bfs:src=0",         "sssp:src=0",
      "pagerank:iters=3",  "bfs:src=123",   "wcc:name=wcc-2",    "sssp:src=77",
  };
  std::vector<JobSpec> specs;
  for (size_t i = 0; i < k && i < sizeof(kSpecs) / sizeof(kSpecs[0]); ++i) {
    specs.push_back(ParseJobSpec(kSpecs[i]));
  }
  return specs;
}

OutOfCoreConfig EngineConfig(const BenchSetup& s, const std::string& prefix) {
  OutOfCoreConfig config;
  config.threads = s.threads;
  config.io_unit_bytes = s.io_unit_bytes;
  config.num_partitions = s.partitions;
  config.file_prefix = prefix;
  return config;
}

struct SoloRun {
  JobOutput out;
  uint64_t edge_read_bytes = 0;
};

template <typename Result, typename Convert>
JobOutput ConvertResult(const Result& r, Convert&& convert) {
  JobOutput out;
  out.per_vertex.reserve(r.size());
  for (const auto& v : r) {
    out.per_vertex.push_back(convert(v));
  }
  return out;
}

// One job on its own engine and devices — both the correctness oracle and
// the naive-sequential cost model.
SoloRun RunSolo(const JobSpec& spec, const BenchSetup& s) {
  SimDevice edge_dev("edges", DeviceProfile::Ssd());
  SimDevice update_dev("updates", DeviceProfile::Ssd());
  SimDevice vertex_dev("vertices", DeviceProfile::Ssd());
  WriteEdgeFile(edge_dev, "fig30.input", s.edges);
  OutOfCoreConfig config = EngineConfig(s, "solo");
  SoloRun run;
  if (spec.algo == "pagerank") {
    OutOfCoreEngine<PageRankAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                              "fig30.input", s.info);
    run.out = ConvertResult(RunPageRank(engine, spec.iterations).ranks,
                            [](float r) { return static_cast<double>(r); });
  } else if (spec.algo == "wcc") {
    OutOfCoreEngine<WccAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                         "fig30.input", s.info);
    run.out = ConvertResult(RunWcc(engine).labels,
                            [](VertexId l) { return static_cast<double>(l); });
  } else if (spec.algo == "bfs") {
    OutOfCoreEngine<BfsAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                         "fig30.input", s.info);
    run.out = ConvertResult(RunBfs(engine, spec.root).levels,
                            [](uint32_t l) { return static_cast<double>(l); });
  } else if (spec.algo == "sssp") {
    OutOfCoreEngine<SsspAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                          "fig30.input", s.info);
    run.out = ConvertResult(RunSssp(engine, spec.root).dist,
                            [](float d) { return static_cast<double>(d); });
  } else {
    XS_LOG(Error) << "fig30: unsupported solo algo " << spec.algo;
    std::exit(2);
  }
  run.edge_read_bytes = edge_dev.stats().bytes_read;
  return run;
}

// Type-erased per-iteration stepping for the naive-interleaved mode.
struct InterleavedJob {
  std::function<bool()> step;  // one RunIteration; returns true when done
  std::function<JobOutput()> extract;
};

template <typename Algo, typename Extract>
InterleavedJob MakeInterleaved(std::shared_ptr<OutOfCoreEngine<Algo>> engine, Algo algo,
                               uint64_t max_iterations, Extract&& extract_state) {
  auto algo_ptr = std::make_shared<Algo>(std::move(algo));
  engine->InitVertices(*algo_ptr);
  InterleavedJob job;
  job.step = [engine, algo_ptr, max_iterations] {
    IterationStats iter = engine->RunIteration(*algo_ptr);
    if (iter.updates_generated == 0) {
      return true;
    }
    if constexpr (HasDone<Algo>) {
      if (algo_ptr->Done(iter)) {
        return true;
      }
    }
    return engine->stats().iterations >= max_iterations;
  };
  job.extract = [engine, extract_state] {
    JobOutput out;
    out.per_vertex.assign(engine->num_vertices(), 0.0);
    engine->VertexMap([&](VertexId v, const typename Algo::VertexState& st) {
      out.per_vertex[v] = extract_state(st);
    });
    return out;
  };
  return job;
}

struct ModeRun {
  uint64_t edge_read_bytes = 0;
  uint64_t edge_seeks = 0;
  double edge_busy_seconds = 0.0;
  std::vector<JobOutput> outs;
  uint64_t scans_saved = 0;
};

// k engines on ONE shared edge device, one iteration each in round-robin:
// the "just run them concurrently" strawman — same bytes as sequential, but
// the device seeks between k interleaved streams.
ModeRun RunInterleaved(const std::vector<JobSpec>& specs, const BenchSetup& s) {
  SimDevice edge_dev("edges", DeviceProfile::Ssd());
  SimDevice update_dev("updates", DeviceProfile::Ssd());
  SimDevice vertex_dev("vertices", DeviceProfile::Ssd());
  WriteEdgeFile(edge_dev, "fig30.input", s.edges);
  std::vector<InterleavedJob> jobs;
  for (size_t i = 0; i < specs.size(); ++i) {
    const JobSpec& spec = specs[i];
    OutOfCoreConfig config = EngineConfig(s, "il" + std::to_string(i));
    if (spec.algo == "pagerank") {
      auto engine = std::make_shared<OutOfCoreEngine<PageRankAlgorithm>>(
          config, edge_dev, update_dev, vertex_dev, "fig30.input", s.info);
      jobs.push_back(MakeInterleaved(engine,
                                     PageRankAlgorithm(s.info.num_vertices, spec.iterations),
                                     spec.iterations + 1,
                                     [](const PageRankAlgorithm::VertexState& st) {
                                       return static_cast<double>(st.rank);
                                     }));
    } else if (spec.algo == "wcc") {
      auto engine = std::make_shared<OutOfCoreEngine<WccAlgorithm>>(
          config, edge_dev, update_dev, vertex_dev, "fig30.input", s.info);
      jobs.push_back(MakeInterleaved(engine, WccAlgorithm{}, UINT64_MAX,
                                     [](const WccAlgorithm::VertexState& st) {
                                       return static_cast<double>(st.label);
                                     }));
    } else if (spec.algo == "bfs") {
      auto engine = std::make_shared<OutOfCoreEngine<BfsAlgorithm>>(
          config, edge_dev, update_dev, vertex_dev, "fig30.input", s.info);
      jobs.push_back(MakeInterleaved(engine, BfsAlgorithm(spec.root), UINT64_MAX,
                                     [](const BfsAlgorithm::VertexState& st) {
                                       return static_cast<double>(st.level);
                                     }));
    } else if (spec.algo == "sssp") {
      auto engine = std::make_shared<OutOfCoreEngine<SsspAlgorithm>>(
          config, edge_dev, update_dev, vertex_dev, "fig30.input", s.info);
      jobs.push_back(MakeInterleaved(engine, SsspAlgorithm(spec.root), UINT64_MAX,
                                     [](const SsspAlgorithm::VertexState& st) {
                                       return static_cast<double>(st.dist);
                                     }));
    }
  }
  std::vector<bool> done(jobs.size(), false);
  for (bool progress = true; progress;) {
    progress = false;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (!done[i]) {
        done[i] = jobs[i].step();
        progress = true;
      }
    }
  }
  ModeRun run;
  for (InterleavedJob& job : jobs) {
    run.outs.push_back(job.extract());
  }
  run.edge_read_bytes = edge_dev.stats().bytes_read;
  run.edge_seeks = edge_dev.stats().seeks;
  run.edge_busy_seconds = edge_dev.stats().busy_seconds;
  return run;
}

// The scheduler: one DeviceScanSource, k attached jobs, shared scans.
ModeRun RunShared(const std::vector<JobSpec>& specs, const BenchSetup& s) {
  SimDevice edge_dev("edges", DeviceProfile::Ssd());
  SimDevice update_dev("updates", DeviceProfile::Ssd());
  SimDevice vertex_dev("vertices", DeviceProfile::Ssd());
  WriteEdgeFile(edge_dev, "fig30.input", s.edges);
  ThreadPool pool(s.threads > 0 ? s.threads : NumCores());
  PartitionLayout layout(s.info.num_vertices, s.partitions);
  DeviceScanSource::Options sopts;
  sopts.io_unit_bytes = s.io_unit_bytes;
  sopts.file_prefix = "scan";
  sopts.collect_dst_tallies = false;  // no hybrid jobs in this bench
  DeviceScanSource source(pool, layout, sopts, edge_dev, "fig30.input");

  JobScheduler scheduler(source);
  DeviceJobConfig jcfg;
  jcfg.io_unit_bytes = s.io_unit_bytes;
  std::vector<std::shared_ptr<JobOutput>> outputs;
  for (size_t i = 0; i < specs.size(); ++i) {
    outputs.push_back(std::make_shared<JobOutput>());
    scheduler.Submit(MakeDeviceJob(specs[i], source, update_dev, vertex_dev, jcfg,
                                   "job" + std::to_string(i), outputs.back()));
  }
  scheduler.RunAll();

  ModeRun run;
  for (const auto& out : outputs) {
    run.outs.push_back(*out);
  }
  run.edge_read_bytes = edge_dev.stats().bytes_read;
  run.edge_seeks = edge_dev.stats().seeks;
  run.edge_busy_seconds = edge_dev.stats().busy_seconds;
  run.scans_saved = scheduler.stats().scans_saved;
  return run;
}

double Mb(uint64_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 30", "Multi-job scheduler: shared vs naive edge scans (SSD model)",
              "shared-scan edge-read bytes stay ~flat as concurrent jobs grow, bounded "
              "by the longest job's solo volume; naive modes grow ~linearly in k, with "
              "the interleaved mode adding a seek storm; results identical to solo runs");

  bool smoke = opts.GetBool("smoke", false);
  BenchSetup s;
  // threads=1 keeps spill batches byte-deterministic so the bit-identity
  // acceptance check is exact; raise --threads to measure, not to verify.
  s.threads = static_cast<int>(opts.GetInt("threads", 1));
  s.partitions = static_cast<uint32_t>(opts.GetUint("partitions", 8));
  s.io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", smoke ? 16 : 64)) << 10;
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", smoke ? 12 : 16));
  uint64_t seed = opts.GetUint("seed", 1);

  s.edges = MakeRmat(scale, 16, true, seed + 1);
  s.info = ScanEdges(s.edges);
  std::printf("rmat scale %u: %s vertices, %s edge records, %u partitions, %d thread(s)\n\n",
              scale, HumanCount(s.info.num_vertices).c_str(),
              HumanCount(s.info.num_edges).c_str(), s.partitions, s.threads);

  std::vector<size_t> ks = smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  Table table({"k jobs", "solo max MB", "shared MB", "x solo", "naive-seq MB", "x solo",
               "interleaved MB", "il seeks", "scans saved"});
  BenchJson json(opts, "fig30");
  bool ok = true;
  for (size_t k : ks) {
    std::vector<JobSpec> specs = JobsForK(k);

    std::vector<SoloRun> solos;
    uint64_t naive_seq_bytes = 0;
    uint64_t solo_max_bytes = 0;
    for (const JobSpec& spec : specs) {
      solos.push_back(RunSolo(spec, s));
      naive_seq_bytes += solos.back().edge_read_bytes;
      solo_max_bytes = std::max(solo_max_bytes, solos.back().edge_read_bytes);
    }
    ModeRun shared = RunShared(specs, s);
    ModeRun interleaved = RunInterleaved(specs, s);

    double shared_ratio = static_cast<double>(shared.edge_read_bytes) /
                          static_cast<double>(solo_max_bytes);
    double naive_ratio = static_cast<double>(naive_seq_bytes) /
                         static_cast<double>(solo_max_bytes);
    table.AddRow({std::to_string(k), FormatDouble(Mb(solo_max_bytes), 1),
                  FormatDouble(Mb(shared.edge_read_bytes), 1), FormatDouble(shared_ratio, 2),
                  FormatDouble(Mb(naive_seq_bytes), 1), FormatDouble(naive_ratio, 2),
                  FormatDouble(Mb(interleaved.edge_read_bytes), 1),
                  std::to_string(interleaved.edge_seeks),
                  std::to_string(shared.scans_saved)});
    std::string mkey = "k" + std::to_string(k);
    json.Exact(mkey + ".solo_max_bytes", static_cast<double>(solo_max_bytes));
    json.Exact(mkey + ".shared_bytes", static_cast<double>(shared.edge_read_bytes));
    json.Exact(mkey + ".naive_seq_bytes", static_cast<double>(naive_seq_bytes));
    json.Exact(mkey + ".interleaved_bytes", static_cast<double>(interleaved.edge_read_bytes));
    json.Exact(mkey + ".scans_saved", static_cast<double>(shared.scans_saved));
    json.Ratio(mkey + ".shared_over_solo", shared_ratio);
    json.Ratio(mkey + ".naive_over_solo", naive_ratio);
    json.Info(mkey + ".interleaved_seeks", static_cast<double>(interleaved.edge_seeks));

    // --- Acceptance: identical results, flat shared-scan volume.
    if (s.threads == 1) {
      for (size_t i = 0; i < specs.size(); ++i) {
        if (shared.outs[i].per_vertex != solos[i].out.per_vertex) {
          std::printf("FAIL: k=%zu job %s (shared) diverges from its solo run\n", k,
                      specs[i].name.c_str());
          ok = false;
        }
        if (interleaved.outs[i].per_vertex != solos[i].out.per_vertex) {
          std::printf("FAIL: k=%zu job %s (interleaved) diverges from its solo run\n", k,
                      specs[i].name.c_str());
          ok = false;
        }
      }
    }
    if (shared_ratio > 1.25) {
      std::printf("FAIL: k=%zu shared scan read %.2fx the single-job volume (budget 1.25x)\n",
                  k, shared_ratio);
      ok = false;
    }
    if (k > 1 && shared.scans_saved == 0) {
      std::printf("FAIL: k=%zu shared mode saved no scans\n", k);
      ok = false;
    }
  }
  table.Print();

  std::printf("\nacceptance: solo-identical results, shared edge reads <= 1.25x single-job "
              "volume at every k: %s\n", ok ? "yes" : "NO");
  json.Exact("acceptance", ok ? 1 : 0);
  if (!json.Write()) {
    return 1;
  }
  return ok ? 0 : 1;
}
