// Fig 9: disk bandwidth vs request size (fio-style sweep).
//
// Paper setup: single synchronous requests of 4 KB..16 MB against the SSD
// and HDD RAID-0 pairs. Shape: bandwidth grows with request size, jumps past
// the 1 MB mark (requests start striping across the RAID-0 pair, 512 KB
// stripe unit) and saturates around 16 MB — which is why 16 MB is X-Stream's
// I/O unit. Reproduced against the calibrated SimDevice profiles.
//
// Synchronous semantics: each request completes before the next is issued,
// so a request's latency is the *maximum* of the per-child service times it
// induced (striped halves run in parallel; unstriped requests use one
// child). Bandwidth = bytes / sum of per-request latencies.
#include <vector>

#include "bench_common.h"
#include "storage/device.h"

namespace xstream {
namespace {

double ChildBusy(const SimDevice& dev) { return dev.stats().busy_seconds; }

struct Sweep {
  double read_mbps;
  double write_mbps;
};

Sweep MeasureAt(SimRaidPair& pair, uint64_t request_bytes, uint64_t total_bytes) {
  StorageDevice& dev = *pair.raid;
  FileId f = dev.Create("sweep");
  std::vector<std::byte> buf(request_bytes, std::byte{0x5a});

  auto timed_pass = [&](bool write) {
    double elapsed = 0.0;
    for (uint64_t off = 0; off < total_bytes; off += request_bytes) {
      double a0 = ChildBusy(*pair.a);
      double b0 = ChildBusy(*pair.b);
      if (write) {
        dev.Write(f, off, buf);
      } else {
        dev.Read(f, off, buf);
      }
      elapsed += std::max(ChildBusy(*pair.a) - a0, ChildBusy(*pair.b) - b0);
    }
    return elapsed;
  };

  double write_secs = timed_pass(/*write=*/true);
  double read_secs = timed_pass(/*write=*/false);
  dev.Remove("sweep");
  return Sweep{static_cast<double>(total_bytes) / read_secs / 1e6,
               static_cast<double>(total_bytes) / write_secs / 1e6};
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 9", "Disk bandwidth vs request size (RAID-0 pairs)",
              "bandwidth rises with request size, jumps past 1M (RAID striping) "
              "and saturates by 16M; SSD ~2x HDD");

  uint64_t total = opts.GetUint("total-mb", 64) << 20;

  SimRaidPair ssd = SimRaidPair::Make("ssd", DeviceProfile::Ssd());
  SimRaidPair hdd = SimRaidPair::Make("hdd", DeviceProfile::Hdd());

  Table table({"Request", "Read ssd (MB/s)", "Write ssd (MB/s)", "Read hdd (MB/s)",
               "Write hdd (MB/s)"});
  for (uint64_t req = 4 << 10; req <= 16 << 20; req *= 4) {
    Sweep s = MeasureAt(ssd, req, total);
    Sweep h = MeasureAt(hdd, req, total);
    table.AddRow({HumanBytes(req), FormatDouble(s.read_mbps, 1), FormatDouble(s.write_mbps, 1),
                  FormatDouble(h.read_mbps, 1), FormatDouble(h.write_mbps, 1)});
  }
  table.Print();
  std::printf("(paper peaks: ssd read ~667 MB/s, hdd read ~328 MB/s at 16M requests)\n\n");
  return 0;
}
