// Fig 11: sequential vs random access bandwidth per medium.
//
// Paper table: RAM (1 core / 16 cores), SSD, magnetic disk; sequential beats
// random everywhere, with the gap exploding toward slower media (~4.6x RAM
// single-core, ~30x SSD, ~500x HDD). RAM rows are measured on the host;
// SSD/HDD rows come from the calibrated device models (16 MB sequential
// requests vs 4 KB random requests, as in the paper's methodology).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace xstream {
namespace {

struct Row {
  double rand_read, seq_read, rand_write, seq_write;  // MB/s
};

// RAM measurement over `threads` thread-private buffers.
Row MeasureRam(int threads, size_t buffer_bytes, int passes) {
  struct Res {
    double seq_r = 0, seq_w = 0, rnd_r = 0, rnd_w = 0;
  };
  std::vector<AlignedBuffer> buffers;
  for (int t = 0; t < threads; ++t) {
    buffers.emplace_back(buffer_bytes);
    std::memset(buffers.back().data(), 1, buffer_bytes);
  }
  size_t lines = buffer_bytes / 64;
  // Pre-generate a random cacheline visit order (same for all threads).
  std::vector<uint32_t> order(lines);
  Rng rng(7);
  for (size_t i = 0; i < lines; ++i) {
    order[i] = static_cast<uint32_t>(rng.NextBounded(lines));
  }

  auto run = [&](auto&& body) {
    std::vector<std::thread> workers;
    WallTimer timer;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] { body(buffers[static_cast<size_t>(t)]); });
    }
    for (auto& w : workers) {
      w.join();
    }
    double bytes = static_cast<double>(buffer_bytes) * threads * passes;
    return bytes / timer.Seconds() / 1e6;
  };

  std::atomic<uint64_t> sink{0};
  Row row;
  row.seq_read = run([&](AlignedBuffer& buf) {
    auto* words = reinterpret_cast<const uint64_t*>(buf.data());
    uint64_t sum = 0;
    for (int p = 0; p < passes; ++p) {
      for (size_t i = 0; i < buffer_bytes / 8; i += 8) {
        sum += words[i];
      }
    }
    sink.fetch_add(sum, std::memory_order_relaxed);
  });
  row.seq_write = run([&](AlignedBuffer& buf) {
    auto* words = reinterpret_cast<uint64_t*>(buf.data());
    for (int p = 0; p < passes; ++p) {
      for (size_t i = 0; i < buffer_bytes / 8; ++i) {
        words[i] = i;
      }
    }
  });
  row.rand_read = run([&](AlignedBuffer& buf) {
    // "accessing entirely a randomly chosen cacheline": read all 8 words.
    auto* base = reinterpret_cast<const uint64_t*>(buf.data());
    uint64_t sum = 0;
    for (int p = 0; p < passes; ++p) {
      for (size_t i = 0; i < lines; ++i) {
        const uint64_t* line = base + static_cast<size_t>(order[i]) * 8;
        for (int w = 0; w < 8; ++w) {
          sum += line[w];
        }
      }
    }
    sink.fetch_add(sum, std::memory_order_relaxed);
  });
  row.rand_write = run([&](AlignedBuffer& buf) {
    auto* base = reinterpret_cast<uint64_t*>(buf.data());
    for (int p = 0; p < passes; ++p) {
      for (size_t i = 0; i < lines; ++i) {
        uint64_t* line = base + static_cast<size_t>(order[i]) * 8;
        for (int w = 0; w < 8; ++w) {
          line[w] = i;
        }
      }
    }
  });
  return row;
}

// Device measurement: sequential 16 MB requests vs random 4 KB requests.
Row MeasureDevice(SimRaidPair& pair, uint64_t total_bytes) {
  StorageDevice& dev = *pair.raid;
  FileId f = dev.Create("probe");
  std::vector<std::byte> big(16 << 20);
  std::vector<std::byte> small(4 << 10);
  // Fill the file.
  for (uint64_t off = 0; off < total_bytes; off += big.size()) {
    dev.Write(f, off, big);
  }

  auto timed = [&](uint64_t request, bool write, bool random) {
    Rng rng(11);
    uint64_t slots = total_bytes / request;
    double before_a = pair.a->stats().busy_seconds;
    double before_b = pair.b->stats().busy_seconds;
    std::span<std::byte> buf = request == big.size() ? std::span<std::byte>(big)
                                                     : std::span<std::byte>(small);
    uint64_t requests = std::min<uint64_t>(slots, random ? 2048 : slots);
    for (uint64_t i = 0; i < requests; ++i) {
      uint64_t slot = random ? rng.NextBounded(slots) : i;
      if (write) {
        dev.Write(f, slot * request, buf);
      } else {
        dev.Read(f, slot * request, buf);
      }
    }
    double busy = std::max(pair.a->stats().busy_seconds - before_a,
                           pair.b->stats().busy_seconds - before_b);
    return static_cast<double>(requests * request) / busy / 1e6;
  };

  Row row;
  row.seq_read = timed(big.size(), false, false);
  row.seq_write = timed(big.size(), true, false);
  row.rand_read = timed(small.size(), false, true);
  row.rand_write = timed(small.size(), true, true);
  dev.Remove("probe");
  return row;
}

std::vector<std::string> FormatRow(const std::string& name, const Row& row) {
  return {name, FormatDouble(row.rand_read, 1), FormatDouble(row.seq_read, 1),
          FormatDouble(row.rand_write, 1), FormatDouble(row.seq_write, 1),
          FormatDouble(row.seq_read / std::max(row.rand_read, 1e-9), 1) + "x"};
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 11", "Sequential vs random access bandwidth",
              "sequential wins on every medium; the gap grows from a few x (RAM) "
              "to ~30x (SSD) to ~500x (disk)");

  size_t ram_mb = opts.GetUint("ram-mb", 64);
  int passes = static_cast<int>(opts.GetInt("passes", 2));

  Table table({"Medium", "Rand read", "Seq read", "Rand write", "Seq write", "Seq/Rand (read)"});
  table.AddRow(FormatRow("RAM (1 core), MB/s", MeasureRam(1, ram_mb << 20, passes)));
  int cores = NumCores();
  table.AddRow(FormatRow("RAM (" + std::to_string(cores) + " cores), MB/s",
                         MeasureRam(cores, ram_mb << 20, passes)));

  SimRaidPair ssd = SimRaidPair::Make("ssd", DeviceProfile::Ssd());
  SimRaidPair hdd = SimRaidPair::Make("hdd", DeviceProfile::Hdd());
  uint64_t dev_total = opts.GetUint("dev-mb", 128) << 20;
  table.AddRow(FormatRow("SSD (model), MB/s", MeasureDevice(ssd, dev_total)));
  table.AddRow(FormatRow("Disk (model), MB/s", MeasureDevice(hdd, dev_total)));
  table.Print();
  std::printf("(paper: RAM 567/2605 1-core, SSD 22.5/667.7, disk 0.6/328 rand/seq read MB/s)\n\n");
  return 0;
}
