// Fig 19: in-memory BFS on a scale-free graph — X-Stream vs the local-queue
// BFS (Agarwal et al.) and the hybrid direction-optimizing BFS (Hong et
// al.), across thread counts, with 99% confidence intervals.
//
// Expectation: X-Stream is competitive at low thread counts with a gap that
// closes as threads grow (the sequential-vs-random RAM bandwidth gap closes
// from ~4.6x to ~1.8x). Note: the index-based baselines are measured on a
// pre-built CSR; X-Stream includes its own partitioning of the unordered
// list.
#include "algorithms/bfs.h"
#include "baselines/bfs_hybrid.h"
#include "baselines/bfs_local_queue.h"
#include "baselines/csr.h"
#include "bench_common.h"
#include "core/inmem_engine.h"
#include "util/stats.h"

namespace xstream {
namespace {

std::string WithCi(const RunningStat& s) {
  return FormatDouble(s.Mean(), 3) + " ±" + FormatDouble(s.Ci99(), 3);
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 19", "In-memory BFS vs specialized implementations",
              "X-Stream beats/matches local-queue and hybrid at low thread "
              "counts; the gap closes as threads increase");

  // Default scale 20 (1M vertices): vertex state must exceed the CPU caches
  // for the sequential-vs-random tradeoff to be visible at all — at small
  // scales the whole graph is cache-resident and index BFS wins trivially.
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 20));
  int reps = static_cast<int>(opts.GetInt("reps", 3));
  // Paper: "scale-free graph (32M vertices/256M edges)" — RMAT, degree 8.
  EdgeList edges = MakeRmat(scale, 8, /*undirected=*/true, 6);
  GraphInfo info = ScanEdges(edges);
  std::printf("scale-free graph: %s vertices / %s edge records\n",
              HumanCount(info.num_vertices).c_str(), HumanCount(info.num_edges).c_str());

  Csr csr = Csr::BuildCountingSort(edges, info.num_vertices);
  Csr csc = Csr::BuildTranspose(edges, info.num_vertices);

  Table table({"Threads", "Local Queue (s)", "Hybrid (s)", "X-Stream (s)"});
  for (int t : ThreadSweep(opts)) {
    RunningStat lq;
    RunningStat hy;
    RunningStat xs;
    for (int r = 0; r < reps; ++r) {
      {
        ThreadPool pool(t);
        WallTimer timer;
        RunLocalQueueBfs(csr, 0, pool);
        lq.Add(timer.Seconds());
      }
      {
        ThreadPool pool(t);
        WallTimer timer;
        RunHybridBfs(csr, csc, 0, pool);
        hy.Add(timer.Seconds());
      }
      {
        InMemoryConfig config;
        config.threads = t;
        InMemoryEngine<BfsAlgorithm> engine(config, edges, info.num_vertices);
        WallTimer timer;
        RunBfs(engine, 0);
        xs.Add(timer.Seconds() + engine.stats().setup_seconds);
      }
    }
    table.AddRow({std::to_string(t), WithCi(lq), WithCi(hy), WithCi(xs)});
  }
  table.Print();
  std::printf("(99%% confidence intervals over %d repetitions)\n\n", reps);
  return 0;
}
