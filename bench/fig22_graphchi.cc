// Fig 22: comparison with the GraphChi-like PSW engine on the SSD model,
// with a constrained memory budget: Twitter* Pagerank, Netflix* ALS, RMAT
// WCC, Twitter* belief propagation.
//
// Expectation: X-Stream needs no pre-sort and fewer partitions than the PSW
// engine needs shards; for most workloads X-Stream finishes before the PSW
// engine finishes pre-sorting, and is faster even excluding pre-sort. The
// PSW re-sort (in-memory sort by destination on every shard load) is a
// visible fraction of its runtime.
#include "algorithms/algorithms.h"
#include "baselines/graphchi_like.h"
#include "baselines/psw_programs.h"
#include "bench_common.h"
#include "core/ooc_engine.h"
#include "graph/datasets.h"

namespace xstream {
namespace {

struct Row {
  std::string workload;
  uint32_t xs_partitions = 0;
  double xs_runtime = 0.0;
  uint32_t psw_shards = 0;
  double psw_presort = 0.0;
  double psw_runtime = 0.0;
  double psw_resort = 0.0;
};

template <typename Algo, typename RunXs>
double XStreamRun(const EdgeList& edges, uint64_t n, int threads, uint64_t budget,
                  uint32_t* partitions, RunXs&& run) {
  SimRaidPair pair = SimRaidPair::Make("xs-ssd", DeviceProfile::Ssd());
  WriteEdgeFile(*pair.raid, "input", edges);
  GraphInfo info = ScanEdges(edges);
  info.num_vertices = n;
  OutOfCoreConfig config;
  config.threads = threads;
  config.memory_budget_bytes = budget;
  // The I/O unit scales down with the constrained budget (the §3.4
  // inequality needs 5*S*K to fit alongside a partition's vertex state).
  config.io_unit_bytes = 32 << 10;
  OutOfCoreEngine<Algo> engine(config, *pair.raid, *pair.raid, *pair.raid, "input", info);
  *partitions = engine.num_partitions();
  run(engine);
  engine.FinalizeStats();
  return engine.stats().RuntimeSeconds();
}

template <typename Program, typename RunPsw>
void PswRun(const EdgeList& edges, uint64_t n, int threads, uint64_t budget, Program& program,
            Row* row, RunPsw&& run) {
  SimRaidPair pair = SimRaidPair::Make("psw-ssd", DeviceProfile::Ssd());
  PswConfig config;
  config.threads = threads;
  config.memory_budget_bytes = budget;
  WallTimer timer;
  PswEngine<Program> engine(config, *pair.raid, edges, n, program);
  double presort_wall = engine.stats().pre_sort_seconds;
  double presort_io = pair.raid->stats().busy_seconds;
  pair.a->ResetStats();
  pair.b->ResetStats();
  run(engine);
  double run_io = pair.raid->stats().busy_seconds;
  double run_wall = engine.stats().compute_seconds;
  row->psw_shards = engine.num_shards();
  row->psw_presort = std::max(presort_wall, presort_io);
  row->psw_runtime = std::max(run_wall, run_io);
  row->psw_resort = engine.stats().re_sort_seconds;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 22", "GraphChi-like PSW comparison on the SSD model",
              "X-Stream: no pre-sort, fewer partitions, shorter runtime; PSW "
              "pays pre-sort plus a per-load re-sort");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  int shift = static_cast<int>(opts.GetInt("scale-shift", 0));
  // The paper constrains both systems to 8GB against billion-edge graphs —
  // a tight budget relative to the data. Scaled proportionally here: tight
  // enough that the PSW engine needs tens of shards.
  uint64_t budget = opts.GetUint("budget-mb", 2) << 20;

  std::vector<Row> rows;

  {  // Twitter* Pagerank (5 iterations).
    Row row;
    row.workload = "Twitter* pagerank";
    EdgeList edges = GenerateDataset(*FindDataset("Twitter*"), shift);
    GraphInfo info = ScanEdges(edges);
    row.xs_runtime = XStreamRun<PageRankAlgorithm>(
        edges, info.num_vertices, threads, budget, &row.xs_partitions,
        [](auto& e) { RunPageRank(e, 5); });
    PswPageRank program(info.num_vertices);
    PswRun(edges, info.num_vertices, threads, budget, program, &row,
           [&program](auto& e) { e.RunIterations(program, 5); });
    rows.push_back(row);
  }
  {  // Netflix* ALS (5 iterations).
    Row row;
    row.workload = "Netflix* ALS";
    DatasetSpec spec = *FindDataset("Netflix*");
    EdgeList edges = GenerateDataset(spec, shift);
    GraphInfo info = ScanEdges(edges);
    uint32_t users = uint32_t{1} << (spec.scale + static_cast<uint32_t>(shift));
    row.xs_runtime = XStreamRun<AlsAlgorithm>(
        edges, info.num_vertices, threads, budget, &row.xs_partitions,
        [users](auto& e) { RunAls(e, users, 5); });
    PswAls program;
    PswRun(edges, info.num_vertices, threads, budget, program, &row,
           [&program](auto& e) { e.RunIterations(program, 5); });
    rows.push_back(row);
  }
  {  // RMAT WCC (paper: RMAT scale 27; scaled down).
    Row row;
    uint32_t scale = static_cast<uint32_t>(opts.GetUint("rmat-scale", 15));
    row.workload = "RMAT" + std::to_string(scale) + " WCC";
    EdgeList edges = MakeRmat(scale, 16, true, 7);
    GraphInfo info = ScanEdges(edges);
    row.xs_runtime =
        XStreamRun<WccAlgorithm>(edges, info.num_vertices, threads, budget,
                                 &row.xs_partitions, [](auto& e) { RunWcc(e); });
    PswWcc program;
    PswRun(edges, info.num_vertices, threads, budget, program, &row,
           [&program](auto& e) { e.RunUntilConverged(program); });
    rows.push_back(row);
  }
  {  // Twitter* belief propagation (5 iterations).
    Row row;
    row.workload = "Twitter* belief prop.";
    EdgeList edges = GenerateDataset(*FindDataset("Twitter*"), shift);
    GraphInfo info = ScanEdges(edges);
    row.xs_runtime = XStreamRun<BpAlgorithm>(edges, info.num_vertices, threads, budget,
                                             &row.xs_partitions,
                                             [](auto& e) { RunBp(e, 5); });
    PswBp program;
    PswRun(edges, info.num_vertices, threads, budget, program, &row,
           [&program](auto& e) { e.RunIterations(program, 5); });
    rows.push_back(row);
  }

  Table table({"Workload", "System (parts)", "Pre-sort (s)", "Runtime (s)", "Re-sort (s)"});
  for (const Row& row : rows) {
    table.AddRow({row.workload, "X-Stream (" + std::to_string(row.xs_partitions) + ")",
                  "none", FormatDouble(row.xs_runtime, 3), "-"});
    table.AddRow({"", "Graphchi-like (" + std::to_string(row.psw_shards) + ")",
                  FormatDouble(row.psw_presort, 3), FormatDouble(row.psw_runtime, 3),
                  FormatDouble(row.psw_resort, 3)});
  }
  table.Print();
  std::printf("(re-sort time is included in the PSW runtime, as in the paper)\n\n");
  return 0;
}
