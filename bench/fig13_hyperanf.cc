// Fig 13: HyperANF steps needed for the neighborhood function to converge —
// the paper's diagnostic for why traversals struggle on dimacs-usa and
// yahoo-web. Expectation: scale-free stand-ins converge in ~15-30 steps;
// the grid and clustered-chain stand-ins need orders of magnitude more.
#include "algorithms/hyperanf.h"
#include "bench_common.h"
#include "core/inmem_engine.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 13", "HyperANF steps to cover the graph",
              "high-diameter stand-ins (dimacs*, yahoo-web*) need 1-2 orders of "
              "magnitude more steps than scale-free graphs");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  int shift = static_cast<int>(opts.GetInt("scale-shift", 0));
  uint32_t cap = static_cast<uint32_t>(opts.GetUint("step-cap", 512));

  Table table({"Graph", "# steps", "N(final) estimate"});
  std::vector<DatasetSpec> specs = InMemoryDatasets();
  for (const DatasetSpec& extra : OutOfCoreDatasets()) {
    if (extra.kind == DatasetKind::kScaleFree || extra.kind == DatasetKind::kChained) {
      specs.push_back(extra);
    }
  }
  for (const DatasetSpec& spec : specs) {
    EdgeList raw = GenerateDataset(spec, shift);
    // The neighborhood function is over the undirected version (paper §5.3).
    EdgeList sym = spec.directed ? Symmetrize(raw) : raw;
    GraphInfo info = ScanEdges(sym);
    InMemoryConfig config;
    config.threads = threads;
    InMemoryEngine<HyperAnfAlgorithm> engine(config, sym, info.num_vertices);
    HyperAnfResult r = RunHyperAnf(engine, 29, cap);
    std::string steps = r.steps >= cap ? ("over " + std::to_string(cap))
                                       : std::to_string(r.steps);
    table.AddRow({spec.name, steps,
                  HumanCount(static_cast<uint64_t>(r.neighborhood_function.back()))});
  }
  table.Print();
  std::printf("(paper: amazon 19, cit-Patents 20, soc-livejournal 15, dimacs-usa 8122, "
              "sk-2005 28, yahoo-web over 155)\n\n");
  return 0;
}
