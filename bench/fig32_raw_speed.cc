// Fig 32 (extension beyond the paper): the raw-speed pass — io_uring
// storage backend, cache-aware shuffle staging, and delta+varint compressed
// update streams, ablated independently on real files.
//
// The paper's whole bet is that edge-centric streaming turns graph
// processing into a raw sequential-bandwidth problem (§3.3); this bench
// measures the three knobs this repo adds on the raw-speed side of that
// bet, each against its own off-switch on the same out-of-core BFS /
// PageRank runs:
//
//   A. --io-backend: PosixDevice (synchronous pread/pwrite on the I/O
//      thread) vs UringDevice (waves of sliced io_uring SQEs with
//      registered buffers). Results must be identical; wall time is
//      recorded for trending. When the kernel or sandbox rejects
//      io_uring_setup the leg still runs through the loud fallback and the
//      uring_* metrics report 0.
//   B. --stage-bytes: legacy fused counting shuffle vs the cache-sized
//      staging pass. Output is byte-identical by construction, so the gate
//      is exact equality of both the results and the routed update volume.
//   C. --compress-updates: raw vs delta+varint update spills on a
//      2ps-relabeled RMAT graph. Routed volume (update_file_bytes) must not
//      change; actual update-device write bytes must shrink — >= 2x on BFS,
//      whose constant-per-wave payloads collapse into const-payload frames.
//
// Unlike the Sim-device figures, this bench runs on real files in scratch
// directories: the transports under test are real syscall paths. Threads
// are pinned to 2 so the shuffle slice boundaries — and with them the exact
// byte metrics — are machine-independent.
#include "bench_common.h"

#include <cmath>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "core/ooc_engine.h"
#include "core/sizing.h"
#include "obs/metrics.h"
#include "partitioning/partitioner.h"
#include "storage/posix_device.h"
#include "storage/uring_device.h"

namespace xstream {
namespace {

struct LegConfig {
  bool uring = false;
  bool compress = false;
  size_t stage_bytes = 0;
};

struct LegResult {
  double wall = 0;
  uint64_t update_file_bytes = 0;  // routed raw volume (codec-independent)
  uint64_t update_written = 0;     // bytes the update device actually wrote
  std::vector<double> result;      // per-vertex principal output
};

struct BenchInput {
  EdgeList edges;
  GraphInfo info;
  uint32_t partitions = 8;
  size_t io_unit_bytes = 64 << 10;
  uint64_t budget = 4 << 20;
  int threads = 2;  // pinned: slice boundaries feed the exact byte metrics
};

std::unique_ptr<PosixDevice> MakeDevice(bool uring, const std::string& name,
                                        const std::string& root) {
  if (uring) {
    return std::make_unique<UringDevice>(name, root);
  }
  return std::make_unique<PosixDevice>(name, root);
}

// Runs one out-of-core leg on real files; Algo is constructed by `make_algo`
// and its principal output extracted by `extract`.
template <typename Algo, typename MakeAlgo, typename Extract>
LegResult RunLeg(const BenchInput& in, const LegConfig& leg, MakeAlgo make_algo,
                 Extract extract, uint64_t max_iters) {
  ScratchDir edir("fig32-edges"), udir("fig32-updates"), vdir("fig32-vertices");
  auto edge_dev = MakeDevice(leg.uring, "edges", edir.path());
  auto update_dev = MakeDevice(leg.uring, "updates", udir.path());
  auto vertex_dev = MakeDevice(leg.uring, "vertices", vdir.path());
  WriteEdgeFile(*edge_dev, "fig32.input", in.edges);

  // The 2ps relabeling is what gives the delta-varint id column its
  // locality; every leg uses it so the comparison isolates the transport.
  PartitionerOptions popts;
  popts.seed = 1;
  std::unique_ptr<Partitioner> partitioner = MakePartitioner("2ps", popts);

  OutOfCoreConfig config;
  config.threads = in.threads;
  config.memory_budget_bytes = in.budget;
  config.io_unit_bytes = in.io_unit_bytes;
  config.num_partitions = in.partitions;
  // Force the full device path: vertex files on disk, every update spilled.
  config.allow_vertex_memory_opt = false;
  config.allow_update_memory_opt = false;
  config.compress_updates = leg.compress;
  config.stage_bytes = leg.stage_bytes;
  config.partitioner = partitioner.get();
  config.file_prefix = "fig32";

  OutOfCoreEngine<Algo> engine(config, *edge_dev, *update_dev, *vertex_dev, "fig32.input",
                               in.info);
  Algo algo = make_algo();
  WallTimer timer;
  RunStats stats = engine.Run(algo, max_iters);
  LegResult out;
  out.wall = timer.Seconds();
  out.update_file_bytes = stats.update_file_bytes;
  out.update_written = update_dev->stats().bytes_written;
  out.result.resize(in.info.num_vertices);
  engine.VertexMap([&out, &extract](VertexId v, const typename Algo::VertexState& s) {
    out.result[v] = extract(s);
  });
  return out;
}

LegResult RunBfsLeg(const BenchInput& in, const LegConfig& leg) {
  return RunLeg<BfsAlgorithm>(
      in, leg, [] { return BfsAlgorithm(0); },
      [](const BfsAlgorithm::VertexState& s) { return static_cast<double>(s.level); },
      UINT64_MAX);
}

LegResult RunPageRankLeg(const BenchInput& in, const LegConfig& leg) {
  const uint64_t iters = 5;
  return RunLeg<PageRankAlgorithm>(
      in, leg, [&in] { return PageRankAlgorithm(in.info.num_vertices, iters); },
      [](const PageRankAlgorithm::VertexState& s) { return static_cast<double>(s.rank); },
      iters);
}

bool CloseEnough(const std::vector<double>& a, const std::vector<double>& b, double tol) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol * std::max(1.0, std::abs(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 32",
              "Raw-speed pass: io_uring backend, cache-sized shuffle staging, "
              "compressed update streams",
              "each pillar is result-invariant against its off-switch; staging leaves the "
              "routed update volume bit-identical; delta+varint compression writes >= 2x "
              "fewer update-device bytes on relabeled BFS");

  bool smoke = opts.GetBool("smoke", false);
  BenchInput in;
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", smoke ? 12 : 16));
  uint32_t edge_factor = static_cast<uint32_t>(opts.GetUint("edge-factor", smoke ? 8 : 16));
  in.edges = MakeRmat(scale, edge_factor, true, opts.GetUint("seed", 1));
  in.info = ScanEdges(in.edges);
  in.partitions = static_cast<uint32_t>(opts.GetUint("partitions", 8));
  in.io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", smoke ? 32 : 64)) << 10;
  in.budget = opts.GetUint("budget-mb", smoke ? 2 : 4) << 20;
  std::printf("rmat scale %u (%s vertices, %s edge records), %u partitions, 2ps "
              "relabeling, %d threads (pinned), real files in scratch dirs\n\n",
              scale, HumanCount(in.info.num_vertices).c_str(),
              HumanCount(in.info.num_edges).c_str(), in.partitions, in.threads);

  BenchJson json(opts, "fig32_raw_speed");
  bool ok = true;
  Table table({"Leg", "Wall", "Update MB routed", "Update MB written", "Notes"});
  auto add_row = [&table](const std::string& leg, const LegResult& r, const std::string& note) {
    table.AddRow({leg, HumanDuration(r.wall),
                  FormatDouble(static_cast<double>(r.update_file_bytes) / (1 << 20), 2),
                  FormatDouble(static_cast<double>(r.update_written) / (1 << 20), 2), note});
  };

  // ---- A: storage backend ------------------------------------------------
  const bool uring_available = UringDevice::Supported();
  std::printf("part A: posix vs uring backend (io_uring %s)\n",
              uring_available ? "available" : "unavailable: loud-fallback leg");
  LegResult posix_bfs = RunBfsLeg(in, LegConfig{});
  LegConfig uring_leg;
  uring_leg.uring = true;
  LegResult uring_bfs = RunBfsLeg(in, uring_leg);
  add_row("bfs / posix", posix_bfs, "baseline");
  add_row("bfs / uring", uring_bfs, uring_available ? "io_uring waves" : "fallback (no ring)");

  bool backend_equal = posix_bfs.result == uring_bfs.result;
  if (!backend_equal) {
    std::printf("FAIL: uring backend changed the BFS levels\n");
    ok = false;
  }
  json.Exact("backend_results_equal", backend_equal ? 1 : 0);
  json.Info("uring_available", uring_available ? 1 : 0);
  json.Info("posix_bfs_wall_seconds", posix_bfs.wall);
  json.Info("uring_bfs_wall_seconds", uring_bfs.wall);
  // Always emitted (0 when the ring is unavailable) so the baseline metric
  // set is machine-independent: bench_diff fails on vanished metrics.
  auto& reg = obs::MetricsRegistry::Global();
  json.Info("uring_sqes", static_cast<double>(reg.counter("io.uring.sqes").Value()));
  json.Info("uring_bytes", static_cast<double>(reg.counter("io.uring.bytes").Value()));
  json.Info("uring_fallback_ops",
            static_cast<double>(reg.counter("io.uring.fallback_ops").Value()));

  // ---- B: cache-sized shuffle staging ------------------------------------
  std::printf("\npart B: legacy fused counting shuffle vs cache-sized staging "
              "(auto stage bytes = %s)\n",
              HumanBytes(DefaultShuffleStageBytes()).c_str());
  LegConfig staged_leg;
  staged_leg.stage_bytes = DefaultShuffleStageBytes();
  LegResult unstaged = posix_bfs;  // the part-A posix leg is the stage_bytes=0 run
  LegResult staged = RunBfsLeg(in, staged_leg);
  add_row("bfs / staged shuffle", staged, "write-combining staging");

  bool staging_equal =
      staged.result == unstaged.result && staged.update_file_bytes == unstaged.update_file_bytes;
  if (!staging_equal) {
    std::printf("FAIL: staged shuffle changed the results or the routed update volume\n");
    ok = false;
  }
  json.Exact("staging_results_equal", staging_equal ? 1 : 0);
  json.Info("staged_bfs_wall_seconds", staged.wall);
  json.Info("staged_records",
            static_cast<double>(reg.counter("shuffle.staged_records").Value()));

  // ---- C: compressed update streams --------------------------------------
  std::printf("\npart C: raw vs delta+varint compressed update spills\n");
  LegConfig compress_leg;
  compress_leg.compress = true;
  LegResult bfs_packed = RunBfsLeg(in, compress_leg);
  LegResult pr_plain = RunPageRankLeg(in, LegConfig{});
  LegResult pr_packed = RunPageRankLeg(in, compress_leg);
  add_row("bfs / compressed", bfs_packed, "const-payload frames");
  add_row("pagerank / raw", pr_plain, "baseline");
  add_row("pagerank / compressed", pr_packed, "varied payloads");
  table.Print();

  bool bfs_equal = bfs_packed.result == posix_bfs.result;
  if (!bfs_equal) {
    std::printf("FAIL: compression changed the BFS levels\n");
    ok = false;
  }
  if (bfs_packed.update_file_bytes != posix_bfs.update_file_bytes) {
    std::printf("FAIL: compression changed the routed update volume accounting\n");
    ok = false;
  }
  bool pr_close = CloseEnough(pr_packed.result, pr_plain.result, 1e-9);
  if (!pr_close) {
    std::printf("FAIL: compression changed the PageRank ranks\n");
    ok = false;
  }
  double bfs_ratio = bfs_packed.update_written > 0
                         ? static_cast<double>(posix_bfs.update_written) /
                               static_cast<double>(bfs_packed.update_written)
                         : 0.0;
  double pr_ratio = pr_packed.update_written > 0
                        ? static_cast<double>(pr_plain.update_written) /
                              static_cast<double>(pr_packed.update_written)
                        : 0.0;
  std::printf("\nupdate-device write reduction: bfs %.2fx, pagerank %.2fx\n", bfs_ratio,
              pr_ratio);
  if (bfs_ratio < 2.0) {
    std::printf("FAIL: bfs compression ratio %.2fx below the 2x bar\n", bfs_ratio);
    ok = false;
  }
  if (pr_ratio <= 1.0) {
    std::printf("FAIL: pagerank compression did not shrink update writes\n");
    ok = false;
  }
  json.Exact("bfs_results_equal", bfs_equal ? 1 : 0);
  json.Exact("pagerank_results_close", pr_close ? 1 : 0);
  json.Exact("bfs_compress_ge_2x", bfs_ratio >= 2.0 ? 1 : 0);
  json.Ratio("bfs_update_write_ratio", bfs_ratio);
  json.Ratio("pagerank_update_write_ratio", pr_ratio);
  json.Info("update_file_mb", static_cast<double>(posix_bfs.update_file_bytes) / (1 << 20));

  if (!json.Write()) {
    std::printf("FAIL: could not write --json output\n");
    ok = false;
  }
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
