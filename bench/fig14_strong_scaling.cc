// Fig 14: strong scaling with thread count for WCC, Pagerank, BFS and SpMV
// on the largest in-memory RMAT graph. Expectation: near-linear runtime
// improvement with threads (log-log straight lines) up to the core count.
#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "core/inmem_engine.h"

namespace xstream {
namespace {

template <typename Algo, typename Run>
double Time(const EdgeList& edges, uint64_t n, int threads, Run&& run) {
  InMemoryConfig config;
  config.threads = threads;
  InMemoryEngine<Algo> engine(config, edges, n);
  WallTimer timer;
  run(engine);
  return timer.Seconds() + engine.stats().setup_seconds;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 14", "Strong scaling (threads)",
              "runtimes shrink near-linearly with added threads for all four "
              "algorithms");

  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 16));
  EdgeList edges = MakeRmat(scale, 16, /*undirected=*/true, 1);
  GraphInfo info = ScanEdges(edges);
  std::printf("RMAT scale %u: %s vertices, %s edge records\n", scale,
              HumanCount(info.num_vertices).c_str(), HumanCount(info.num_edges).c_str());

  Table table({"Threads", "WCC (s)", "Pagerank (s)", "BFS (s)", "SpMV (s)"});
  for (int t : ThreadSweep(opts)) {
    double wcc = Time<WccAlgorithm>(edges, info.num_vertices, t,
                                    [](auto& e) { RunWcc(e); });
    double pr = Time<PageRankAlgorithm>(edges, info.num_vertices, t,
                                        [](auto& e) { RunPageRank(e, 5); });
    double bfs = Time<BfsAlgorithm>(edges, info.num_vertices, t,
                                    [](auto& e) { RunBfs(e, 0); });
    double spmv = Time<SpmvAlgorithm>(edges, info.num_vertices, t,
                                      [](auto& e) { RunSpmv(e); });
    table.AddRow({std::to_string(t), FormatDouble(wcc, 3), FormatDouble(pr, 3),
                  FormatDouble(bfs, 3), FormatDouble(spmv, 3)});
  }
  table.Print();
  std::printf("\n");
  return 0;
}
