// Shared plumbing for the per-figure bench binaries.
//
// Every bench runs with no arguments at laptop-friendly defaults and accepts
// --scale= / --threads= / --reps= style flags to grow toward paper scale.
// Output is a paper-style table plus a short "expectation" note naming the
// qualitative shape the paper reports (see EXPERIMENTS.md for the mapping).
#ifndef XSTREAM_BENCH_BENCH_COMMON_H_
#define XSTREAM_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/edge_io.h"
#include "graph/generators.h"
#include "graph/types.h"
#include "storage/raid_device.h"
#include "storage/sim_device.h"
#include "util/env.h"
#include "util/format.h"
#include "util/json.h"
#include "util/options.h"
#include "util/table.h"
#include "util/timer.h"

namespace xstream {

inline void BenchHeader(const char* figure, const char* title, const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("paper expectation: %s\n", expectation);
  std::printf("==============================================================\n");
}

// A simulated RAID-0 pair plus its children, mirroring the paper's testbed
// (two devices in software RAID-0, 512 KB stripe, §5.1).
struct SimRaidPair {
  std::unique_ptr<SimDevice> a;
  std::unique_ptr<SimDevice> b;
  std::unique_ptr<RaidDevice> raid;

  static SimRaidPair Make(const std::string& name, const DeviceProfile& profile) {
    SimRaidPair pair;
    pair.a = std::make_unique<SimDevice>(name + "-0", profile);
    pair.b = std::make_unique<SimDevice>(name + "-1", profile);
    pair.raid =
        std::make_unique<RaidDevice>(name, std::vector<StorageDevice*>{pair.a.get(), pair.b.get()});
    return pair;
  }
};

inline EdgeList MakeRmat(uint32_t scale, uint32_t edge_factor, bool undirected, uint64_t seed) {
  RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.undirected = undirected;
  params.seed = seed;
  EdgeList edges = GenerateRmat(params);
  PermuteEdges(edges, seed + 1);
  return edges;
}

// SimDevice that spends each request's modeled service time on the calling
// thread. I/O issued through the device's IoExecutor therefore occupies the
// I/O thread for a realistic wall duration, so compute/I-O overlap effects
// (the §3.3 async spill, the hybrid engine's avoided device traffic) are
// measurable and reproducible on any host — a laptop's page cache would
// absorb buffered writes at memcpy speed and bury them in scheduling noise.
class WallClockSimDevice : public SimDevice {
 public:
  using SimDevice::SimDevice;

  void Read(FileId f, uint64_t offset, std::span<std::byte> out) override {
    double before = ClockSeconds();
    SimDevice::Read(f, offset, out);
    SleepFor(ClockSeconds() - before);
  }

  void Write(FileId f, uint64_t offset, std::span<const std::byte> data) override {
    double before = ClockSeconds();
    SimDevice::Write(f, offset, data);
    SleepFor(ClockSeconds() - before);
  }

  uint64_t Append(FileId f, std::span<const std::byte> data) override {
    double before = ClockSeconds();
    uint64_t at = SimDevice::Append(f, data);
    SleepFor(ClockSeconds() - before);
    return at;
  }

 private:
  static void SleepFor(double seconds) {
    if (seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }
};

// Machine-readable bench output for the --json=FILE flag, consumed by
// scripts/bench_diff.py against the baselines in bench/baselines/. Each
// metric carries a class that decides how the diff gates it:
//   "exact" — deterministic invariants (edge counts, simulated I/O bytes,
//             migration counts); any drift fails.
//   "ratio" — shape metrics (speedups, savings fractions) compared within a
//             relative tolerance band.
//   "info"  — machine/thread-dependent values (wall times, thread counts);
//             recorded for trending, never gated.
// With --json unset, Write() is a no-op, so benches can record
// unconditionally.
class BenchJson {
 public:
  BenchJson(const Options& opts, std::string figure)
      : path_(opts.GetString("json", "")), figure_(std::move(figure)) {}

  void Exact(const std::string& name, double value) { Add(name, value, "exact"); }
  void Ratio(const std::string& name, double value) { Add(name, value, "ratio"); }
  void Info(const std::string& name, double value) { Add(name, value, "info"); }

  // Writes {"figure":..., "metrics":{name:{"value":...,"class":...}}}.
  // Returns false on I/O failure (and true when --json is unset).
  bool Write() const {
    if (path_.empty()) {
      return true;
    }
    JsonWriter w;
    w.BeginObject();
    w.Field("figure", std::string_view(figure_));
    w.Key("metrics").BeginObject();
    for (const auto& [name, m] : metrics_) {
      w.Key(name).BeginObject();
      w.Field("value", m.value);
      w.Field("class", std::string_view(m.cls));
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    return WriteJsonFile(path_, w.str());
  }

 private:
  struct Metric {
    double value = 0;
    const char* cls = "info";
  };

  void Add(const std::string& name, double value, const char* cls) {
    metrics_[name] = Metric{value, cls};
  }

  std::string path_;
  std::string figure_;
  std::map<std::string, Metric> metrics_;  // ordered: deterministic output
};

inline std::vector<int> ThreadSweep(const Options& opts) {
  int max_threads = static_cast<int>(opts.GetInt("max-threads", NumCores() >= 2 ? NumCores() : 1));
  std::vector<int> sweep;
  for (int t = 1; t <= max_threads; t *= 2) {
    sweep.push_back(t);
  }
  if (sweep.empty() || sweep.back() != max_threads) {
    sweep.push_back(max_threads);
  }
  return sweep;
}

}  // namespace xstream

#endif  // XSTREAM_BENCH_BENCH_COMMON_H_
