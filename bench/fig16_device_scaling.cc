// Fig 16: scaling across storage devices — WCC and SpMV runtime as the graph
// doubles, moving from memory to SSD to magnetic disk when it outgrows each
// medium. Expectation: near-straight log-log growth within a medium, with
// 'bumps' at each medium transition.
#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"

namespace xstream {
namespace {

template <typename Algo, typename Run>
double InMem(const EdgeList& edges, uint64_t n, int threads, Run&& run) {
  InMemoryConfig config;
  config.threads = threads;
  InMemoryEngine<Algo> engine(config, edges, n);
  WallTimer timer;
  run(engine);
  return timer.Seconds() + engine.stats().setup_seconds;
}

template <typename Algo, typename Run>
double OnDevice(const DeviceProfile& profile, const EdgeList& edges, uint64_t n, int threads,
                uint64_t budget, Run&& run) {
  SimRaidPair pair = SimRaidPair::Make(profile.name, profile);
  WriteEdgeFile(*pair.raid, "input", edges);
  GraphInfo info = ScanEdges(edges);
  info.num_vertices = n;
  OutOfCoreConfig config;
  config.threads = threads;
  config.memory_budget_bytes = budget;
  config.io_unit_bytes = 256 << 10;
  OutOfCoreEngine<Algo> engine(config, *pair.raid, *pair.raid, *pair.raid, "input", info);
  run(engine);
  engine.FinalizeStats();
  return engine.stats().RuntimeSeconds();
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 16", "Scaling across storage devices",
              "runtime doubles with graph size within a medium; jumps ('bumps') "
              "when spilling from memory to SSD to disk");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t lo = static_cast<uint32_t>(opts.GetUint("min-scale", 10));
  uint32_t mem_limit = static_cast<uint32_t>(opts.GetUint("mem-limit-scale", 13));
  uint32_t ssd_limit = static_cast<uint32_t>(opts.GetUint("ssd-limit-scale", 15));
  uint32_t hi = static_cast<uint32_t>(opts.GetUint("max-scale", 17));
  uint64_t budget = opts.GetUint("budget-mb", 4) << 20;

  Table table({"Scale", "Medium", "WCC (s)", "SpMV (s)"});
  for (uint32_t scale = lo; scale <= hi; ++scale) {
    EdgeList edges = MakeRmat(scale, 16, true, 3);
    GraphInfo info = ScanEdges(edges);
    double wcc;
    double spmv;
    const char* medium;
    if (scale <= mem_limit) {
      medium = "memory";
      wcc = InMem<WccAlgorithm>(edges, info.num_vertices, threads,
                                [](auto& e) { RunWcc(e); });
      spmv = InMem<SpmvAlgorithm>(edges, info.num_vertices, threads,
                                  [](auto& e) { RunSpmv(e); });
    } else if (scale <= ssd_limit) {
      medium = "ssd";
      wcc = OnDevice<WccAlgorithm>(DeviceProfile::Ssd(), edges, info.num_vertices, threads,
                                   budget, [](auto& e) { RunWcc(e); });
      spmv = OnDevice<SpmvAlgorithm>(DeviceProfile::Ssd(), edges, info.num_vertices, threads,
                                     budget, [](auto& e) { RunSpmv(e); });
    } else {
      medium = "disk";
      wcc = OnDevice<WccAlgorithm>(DeviceProfile::Hdd(), edges, info.num_vertices, threads,
                                   budget, [](auto& e) { RunWcc(e); });
      spmv = OnDevice<SpmvAlgorithm>(DeviceProfile::Hdd(), edges, info.num_vertices, threads,
                                     budget, [](auto& e) { RunSpmv(e); });
    }
    table.AddRow({std::to_string(scale), medium, FormatDouble(wcc, 3),
                  FormatDouble(spmv, 3)});
  }
  table.Print();
  std::printf("(paper runs scale 20-32 across 64GB RAM / 400GB SSD / 6TB disk; the medium "
              "cutoffs here are scaled down with the graphs)\n\n");
  return 0;
}
