// Fig 23: disk bandwidth over time — X-Stream vs the GraphChi-like PSW
// engine running Pagerank on Twitter*. The paper's iostat trace shows
// X-Stream alternating dense bursts of reads (edges) and writes (updates)
// at high aggregate bandwidth, while GraphChi's accesses are fragmented and
// bursty with far lower aggregate bandwidth. Reproduced from the SimDevice
// request timeline, binned on the device's virtual clock.
#include "algorithms/pagerank.h"
#include "baselines/graphchi_like.h"
#include "baselines/psw_programs.h"
#include "bench_common.h"
#include "core/ooc_engine.h"
#include "graph/datasets.h"

namespace xstream {
namespace {

struct TraceSummary {
  double read_mbps = 0.0;    // aggregate
  double write_mbps = 0.0;
  std::vector<double> read_series;   // MB/s per bin
  std::vector<double> write_series;
};

TraceSummary Summarize(std::vector<IoEvent> a, std::vector<IoEvent> b, double bin_seconds) {
  a.insert(a.end(), b.begin(), b.end());
  TraceSummary summary;
  double horizon = 0.0;
  for (const IoEvent& e : a) {
    horizon = std::max(horizon, e.time);
  }
  if (horizon <= 0) {
    return summary;
  }
  size_t bins = static_cast<size_t>(horizon / bin_seconds) + 1;
  summary.read_series.assign(bins, 0.0);
  summary.write_series.assign(bins, 0.0);
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  for (const IoEvent& e : a) {
    size_t bin = static_cast<size_t>(e.time / bin_seconds);
    if (e.write) {
      summary.write_series[bin] += e.bytes;
      write_bytes += e.bytes;
    } else {
      summary.read_series[bin] += e.bytes;
      read_bytes += e.bytes;
    }
  }
  for (size_t i = 0; i < bins; ++i) {
    summary.read_series[i] /= bin_seconds * 1e6;
    summary.write_series[i] /= bin_seconds * 1e6;
  }
  summary.read_mbps = static_cast<double>(read_bytes) / horizon / 1e6;
  summary.write_mbps = static_cast<double>(write_bytes) / horizon / 1e6;
  return summary;
}

void PrintSeries(const char* label, const std::vector<double>& series, double peak) {
  std::printf("%s ", label);
  for (double v : series) {
    int level = peak > 0 ? static_cast<int>(8.9 * v / peak) : 0;
    static const char* kBlocks[] = {" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"};
    std::printf("%s", kBlocks[std::clamp(level, 0, 9)]);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 23", "Disk bandwidth trace: X-Stream vs GraphChi-like (Pagerank)",
              "X-Stream sustains much higher aggregate bandwidth with regular "
              "read/write bursts; PSW I/O is fragmented and bursty");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  int shift = static_cast<int>(opts.GetInt("scale-shift", 0));
  uint64_t budget = opts.GetUint("budget-mb", 2) << 20;
  EdgeList edges = GenerateDataset(*FindDataset("Twitter*"), shift);
  GraphInfo info = ScanEdges(edges);

  TraceSummary xs;
  {
    SimRaidPair pair = SimRaidPair::Make("xs", DeviceProfile::Ssd());
    WriteEdgeFile(*pair.raid, "input", edges);
    pair.a->TakeTimeline();
    pair.b->TakeTimeline();
    OutOfCoreConfig config;
    config.threads = threads;
    config.memory_budget_bytes = budget;
    config.io_unit_bytes = 256 << 10;
    // Disable the in-memory shortcut so update traffic reaches the device,
    // as it would at paper scale.
    config.allow_update_memory_opt = false;
    OutOfCoreEngine<PageRankAlgorithm> engine(config, *pair.raid, *pair.raid, *pair.raid,
                                              "input", info);
    RunPageRank(engine, 5);
    xs = Summarize(pair.a->TakeTimeline(), pair.b->TakeTimeline(), 0.01);
  }

  TraceSummary psw;
  {
    SimRaidPair pair = SimRaidPair::Make("psw", DeviceProfile::Ssd());
    PswConfig config;
    config.threads = threads;
    config.memory_budget_bytes = budget;
    PswPageRank program(info.num_vertices);
    PswEngine<PswPageRank> engine(config, *pair.raid, edges, info.num_vertices, program);
    pair.a->TakeTimeline();  // drop the shard-construction trace
    pair.b->TakeTimeline();
    engine.RunIterations(program, 5);
    psw = Summarize(pair.a->TakeTimeline(), pair.b->TakeTimeline(), 0.01);
  }

  Table table({"System", "Aggregate reads (MB/s)", "Aggregate writes (MB/s)"});
  table.AddRow({"X-Stream", FormatDouble(xs.read_mbps, 2), FormatDouble(xs.write_mbps, 2)});
  table.AddRow({"Graphchi-like", FormatDouble(psw.read_mbps, 2),
                FormatDouble(psw.write_mbps, 2)});
  table.Print();

  double peak = 0.0;
  for (double v : xs.read_series) peak = std::max(peak, v);
  for (double v : xs.write_series) peak = std::max(peak, v);
  for (double v : psw.read_series) peak = std::max(peak, v);
  for (double v : psw.write_series) peak = std::max(peak, v);
  std::printf("\nbandwidth over (virtual device) time, 10ms bins, darker = higher:\n");
  PrintSeries("X-Stream  R", xs.read_series, peak);
  PrintSeries("X-Stream  W", xs.write_series, peak);
  PrintSeries("Graphchi  R", psw.read_series, peak);
  PrintSeries("Graphchi  W", psw.write_series, peak);
  std::printf("(paper aggregates: X-Stream 416 MB/s reads / 177 MB/s writes vs Graphchi 141 "
              "/ 48)\n\n");
  return 0;
}
