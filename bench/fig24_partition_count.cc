// Fig 24: effect of the number of streaming partitions on in-memory
// runtime. Expectation: a U-shaped (in log-x) curve — too few partitions
// overflow the cache with vertex state; too many add partitioning overhead
// and random access; a wide flat basin in between. X-Stream's auto-choice
// lands in the basin.
#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "core/inmem_engine.h"

namespace xstream {
namespace {

template <typename Algo, typename Run>
double RunWithPartitions(const EdgeList& edges, uint64_t n, int threads, uint32_t partitions,
                         Run&& run) {
  InMemoryConfig config;
  config.threads = threads;
  config.num_partitions = partitions;
  InMemoryEngine<Algo> engine(config, edges, n);
  WallTimer timer;
  run(engine);
  return timer.Seconds() + engine.stats().setup_seconds;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 24", "Effect of the number of partitions (in-memory)",
              "runtime is flat over a wide partition range, rising at both "
              "extremes");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 15));
  uint32_t max_partitions = static_cast<uint32_t>(opts.GetUint("max-partitions", 1u << 14));
  EdgeList edges = MakeRmat(scale, 16, true, 8);
  GraphInfo info = ScanEdges(edges);

  // Report the auto choice for reference.
  {
    InMemoryConfig config;
    config.threads = threads;
    InMemoryEngine<WccAlgorithm> probe(config, edges, info.num_vertices);
    std::printf("auto-selected partitions: %u (fanout %u)\n", probe.num_partitions(),
                probe.shuffle_fanout());
  }

  Table table({"Partitions", "WCC (s)", "Pagerank (s)", "BFS (s)", "SpMV (s)"});
  for (uint32_t k = 1; k <= max_partitions; k *= 4) {
    double wcc = RunWithPartitions<WccAlgorithm>(edges, info.num_vertices, threads, k,
                                                 [](auto& e) { RunWcc(e); });
    double pr = RunWithPartitions<PageRankAlgorithm>(edges, info.num_vertices, threads, k,
                                                     [](auto& e) { RunPageRank(e, 5); });
    double bfs = RunWithPartitions<BfsAlgorithm>(edges, info.num_vertices, threads, k,
                                                 [](auto& e) { RunBfs(e, 0); });
    double spmv = RunWithPartitions<SpmvAlgorithm>(edges, info.num_vertices, threads, k,
                                                   [](auto& e) { RunSpmv(e); });
    table.AddRow({std::to_string(k), FormatDouble(wcc, 3), FormatDouble(pr, 3),
                  FormatDouble(bfs, 3), FormatDouble(spmv, 3)});
  }
  table.Print();
  std::printf("\n");
  return 0;
}
