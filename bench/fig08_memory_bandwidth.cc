// Fig 8: memory bandwidth vs thread count.
//
// Paper setup: "each thread read from or wrote to a thread-private buffer of
// size 256 MB (well beyond the capacity of the L3 cache and TLBs)"; on their
// 32-core Opteron reads saturate ~25 GB/s at 16 threads. The reproduced
// shape: bandwidth grows with threads and saturates at the core count, with
// reads above writes.
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/aligned.h"

namespace xstream {
namespace {

// Streaming read of the buffer, summing to defeat dead-code elimination.
uint64_t StreamRead(const uint64_t* data, size_t words, int passes) {
  uint64_t sum = 0;
  for (int p = 0; p < passes; ++p) {
    for (size_t i = 0; i < words; i += 8) {  // one cacheline per iteration
      sum += data[i];
    }
  }
  return sum;
}

void StreamWrite(uint64_t* data, size_t words, int passes) {
  for (int p = 0; p < passes; ++p) {
    for (size_t i = 0; i < words; ++i) {
      data[i] = i;
    }
  }
}

double RunThreads(int threads, size_t buffer_bytes, int passes, bool write) {
  std::vector<AlignedBuffer> buffers;
  buffers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    buffers.emplace_back(buffer_bytes);
    std::memset(buffers.back().data(), 1, buffer_bytes);
  }
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto* words = reinterpret_cast<uint64_t*>(buffers[static_cast<size_t>(t)].data());
      size_t n = buffer_bytes / sizeof(uint64_t);
      if (write) {
        StreamWrite(words, n, passes);
      } else {
        sink.fetch_add(StreamRead(words, n, passes), std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  double secs = timer.Seconds();
  double bytes = static_cast<double>(buffer_bytes) * threads * passes;
  return bytes / secs / 1e9;  // GB/s
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 8", "Memory bandwidth vs threads",
              "bandwidth rises with threads and saturates near the core count; "
              "reads above writes");

  size_t buffer_mb = opts.GetUint("buffer-mb", 64);  // paper: 256 MB/thread
  int passes = static_cast<int>(opts.GetInt("passes", 4));

  Table table({"Threads", "Read (GB/s)", "Write (GB/s)"});
  for (int t : ThreadSweep(opts)) {
    double read = RunThreads(t, buffer_mb << 20, passes, /*write=*/false);
    double write = RunThreads(t, buffer_mb << 20, passes, /*write=*/true);
    table.AddRow({std::to_string(t), FormatDouble(read, 2), FormatDouble(write, 2)});
  }
  table.Print();
  std::printf("(buffer %zuMB/thread, %d passes; paper: 256MB/thread, 16-core saturation at "
              "~25GB/s read)\n\n",
              buffer_mb, passes);
  return 0;
}
