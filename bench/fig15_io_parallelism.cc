// Fig 15: scaling with I/O devices — one disk vs independent disks (edges
// and updates on separate devices) vs RAID-0. Expectation: independent
// disks cut runtime up to ~30% vs one disk; RAID-0 cuts it to ~50-60%.
#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "core/ooc_engine.h"

namespace xstream {
namespace {

struct Devices {
  std::unique_ptr<SimDevice> a;
  std::unique_ptr<SimDevice> b;
  std::unique_ptr<RaidDevice> raid;
  StorageDevice* edges = nullptr;
  StorageDevice* updates = nullptr;
};

Devices MakeDevices(const std::string& mode, const DeviceProfile& profile) {
  Devices d;
  d.a = std::make_unique<SimDevice>("a", profile);
  d.b = std::make_unique<SimDevice>("b", profile);
  if (mode == "one") {
    d.edges = d.a.get();
    d.updates = d.a.get();
  } else if (mode == "indep") {
    d.edges = d.a.get();
    d.updates = d.b.get();
  } else {
    d.raid = std::make_unique<RaidDevice>("raid",
                                          std::vector<StorageDevice*>{d.a.get(), d.b.get()});
    d.edges = d.raid.get();
    d.updates = d.raid.get();
  }
  return d;
}

template <typename Algo, typename Run>
double RunOn(const std::string& mode, const DeviceProfile& profile, const EdgeList& edges,
             uint64_t n, int threads, uint64_t budget, Run&& run) {
  Devices d = MakeDevices(mode, profile);
  WriteEdgeFile(*d.edges, "input", edges);
  GraphInfo info = ScanEdges(edges);
  info.num_vertices = n;
  OutOfCoreConfig config;
  config.threads = threads;
  config.memory_budget_bytes = budget;
  config.io_unit_bytes = 256 << 10;
  OutOfCoreEngine<Algo> engine(config, *d.edges, *d.updates, *d.edges, "input", info);
  run(engine);
  engine.FinalizeStats();
  return engine.stats().RuntimeSeconds();
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 15", "I/O device parallelism",
              "normalized runtime: independent disks <= one disk; RAID-0 ~0.5-0.6 "
              "of one disk");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 14));
  uint64_t budget = opts.GetUint("budget-mb", 4) << 20;
  EdgeList edges = MakeRmat(scale, 16, true, 2);
  GraphInfo info = ScanEdges(edges);

  Table table({"Workload", "one disk", "indep. disks", "RAID-0"});
  for (const char* medium : {"HDD", "SSD"}) {
    DeviceProfile profile =
        std::string(medium) == "SSD" ? DeviceProfile::Ssd() : DeviceProfile::Hdd();
    struct Work {
      const char* name;
      std::function<double(const std::string&)> run;
    };
    auto spmv = [&](const std::string& mode) {
      return RunOn<SpmvAlgorithm>(mode, profile, edges, info.num_vertices, threads, budget,
                                  [](auto& e) { RunSpmv(e); });
    };
    auto wcc = [&](const std::string& mode) {
      return RunOn<WccAlgorithm>(mode, profile, edges, info.num_vertices, threads, budget,
                                 [](auto& e) { RunWcc(e); });
    };
    auto pagerank = [&](const std::string& mode) {
      return RunOn<PageRankAlgorithm>(mode, profile, edges, info.num_vertices, threads,
                                      budget, [](auto& e) { RunPageRank(e, 5); });
    };
    auto bfs = [&](const std::string& mode) {
      return RunOn<BfsAlgorithm>(mode, profile, edges, info.num_vertices, threads, budget,
                                 [](auto& e) { RunBfs(e, 0); });
    };
    std::vector<Work> works = {{"SpMV", spmv}, {"WCC", wcc}, {"Pagerank", pagerank},
                               {"BFS", bfs}};
    for (auto& w : works) {
      double one = w.run("one");
      double indep = w.run("indep");
      double raid = w.run("raid");
      table.AddRow({std::string(medium) + ":" + w.name, "1.00",
                    FormatDouble(indep / one, 2), FormatDouble(raid / one, 2)});
    }
  }
  table.Print();
  std::printf("(values are runtime normalized to the one-disk configuration)\n\n");
  return 0;
}
