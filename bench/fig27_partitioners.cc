// Fig 27 (extension beyond the paper): streaming partitioners vs the §2.2
// range baseline. Expectation: on power-law (RMAT) inputs the one-pass
// greedy partitioner — and on community-structured road-network stand-ins
// the two-phase (2PS-style) partitioner — cut the edge cut, the replication
// factor, and the out-of-core scatter->gather traffic (update-file bytes,
// via local-update absorption), at identical algorithm results. Hash is the
// locality-free control; range degenerates to quasi-random once vertex ids
// are permuted (which this bench does, so no strategy free-rides on
// generator numbering).
#include "bench_common.h"
#include "algorithms/algorithms.h"
#include "core/ooc_engine.h"
#include "graph/transforms.h"
#include "partitioning/partitioner.h"
#include "partitioning/quality.h"

namespace xstream {
namespace {

struct BenchResult {
  PartitionQuality quality;
  uint64_t update_file_bytes = 0;
  uint64_t updates_absorbed = 0;
  double sim_seconds = 0.0;
  double top_rank = 0.0;  // result fingerprint: must match across strategies
};

BenchResult RunOne(const std::string& name, const EdgeList& edges, const GraphInfo& info,
                   int threads, uint32_t partitions, size_t io_unit_bytes,
                   uint64_t iterations, uint64_t seed) {
  PartitionerOptions options;
  options.seed = seed;
  auto partitioner = MakePartitioner(name, options);

  SimDevice dev("d", DeviceProfile::Ssd());
  WriteEdgeFile(dev, "input", edges);
  OutOfCoreConfig config;
  config.threads = threads;
  config.memory_budget_bytes = 64ull << 20;  // only k matters: it is forced
  config.io_unit_bytes = io_unit_bytes;
  config.num_partitions = partitions;
  config.allow_vertex_memory_opt = false;  // file-resident vertex states
  config.allow_update_memory_opt = false;
  config.partitioner = partitioner.get();
  OutOfCoreEngine<PageRankAlgorithm> engine(config, dev, dev, dev, "input", info);

  BenchResult r;
  r.quality = EvaluatePartitionQuality(engine.layout(), edges);
  PageRankResult pr = RunPageRank(engine, iterations);
  r.update_file_bytes = engine.stats().update_file_bytes;
  r.updates_absorbed = engine.stats().updates_absorbed;
  r.sim_seconds = engine.stats().RuntimeSeconds();
  for (float rank : pr.ranks) {
    r.top_rank = std::max(r.top_rank, static_cast<double>(rank));
  }
  return r;
}

void RunGraph(const char* label, const char* key, BenchJson& json, const EdgeList& edges,
              int threads, uint32_t partitions, size_t io_unit_bytes, uint64_t iterations,
              uint64_t seed) {
  GraphInfo info = ScanEdges(edges);
  std::printf("%s: %s vertices, %s edge records, %u partitions\n", label,
              HumanCount(info.num_vertices).c_str(), HumanCount(info.num_edges).c_str(),
              partitions);
  Table table({"Partitioner", "Edge cut", "Repl", "Edge bal", "Update MB", "Absorbed",
               "Runtime (s)"});
  uint64_t range_bytes = 0;
  uint64_t best_bytes = UINT64_MAX;
  std::string best_name;
  double fingerprint = 0.0;
  bool results_match = true;
  for (const auto& name : KnownPartitioners()) {
    BenchResult r =
        RunOne(name, edges, info, threads, partitions, io_unit_bytes, iterations, seed);
    if (name == "range") {
      range_bytes = r.update_file_bytes;
      fingerprint = r.top_rank;
    } else if (std::abs(r.top_rank - fingerprint) > 1e-4 * std::abs(fingerprint)) {
      // Tolerance covers float-summation reordering across mappings; real
      // divergence (a broken partitioner) is orders of magnitude larger.
      results_match = false;
    }
    if ((name == "greedy" || name == "2ps") && r.update_file_bytes < best_bytes) {
      best_bytes = r.update_file_bytes;
      best_name = name;
    }
    table.AddRow({name, FormatDouble(100.0 * r.quality.CutFraction(), 1) + "%",
                  FormatDouble(r.quality.replication_factor, 2),
                  FormatDouble(r.quality.edge_balance, 2),
                  FormatDouble(static_cast<double>(r.update_file_bytes) / (1 << 20), 2),
                  HumanCount(r.updates_absorbed), FormatDouble(r.sim_seconds, 3)});
    std::string mkey = std::string(key) + "." + name;
    json.Exact(mkey + ".update_file_bytes", static_cast<double>(r.update_file_bytes));
    json.Exact(mkey + ".updates_absorbed", static_cast<double>(r.updates_absorbed));
    json.Ratio(mkey + ".cut_fraction", r.quality.CutFraction());
    json.Ratio(mkey + ".replication", r.quality.replication_factor);
    json.Info(mkey + ".runtime_seconds", r.sim_seconds);
  }
  table.Print();
  if (range_bytes > 0 && best_bytes != UINT64_MAX) {
    double saved = 100.0 * (1.0 - static_cast<double>(best_bytes) /
                                      static_cast<double>(range_bytes));
    std::printf("%s vs range: %.1f%% %s update-file traffic; results %s\n\n", best_name.c_str(),
                std::abs(saved), saved >= 0 ? "less" : "MORE",
                results_match ? "identical" : "DIVERGED");
  }
  json.Exact(std::string(key) + ".results_match", results_match ? 1 : 0);
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 27", "Streaming partitioners vs the range baseline (out-of-core)",
              "greedy/2ps cut update-file traffic versus range at identical "
              "results; 2ps dominates on road networks, greedy on RMAT");

  bool smoke = opts.GetBool("smoke", false);
  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", smoke ? 11 : 14));
  uint32_t grid_side = static_cast<uint32_t>(opts.GetUint("grid-side", smoke ? 64 : 256));
  uint32_t partitions = static_cast<uint32_t>(opts.GetUint("partitions", 8));
  size_t io_unit = static_cast<size_t>(opts.GetUint("io-unit-kb", 16)) << 10;
  uint64_t iterations = opts.GetUint("iterations", smoke ? 3 : 5);
  uint64_t seed = opts.GetUint("seed", 1);

  BenchJson json(opts, "fig27");

  // Permuted vertex ids throughout: the standard control so the range
  // baseline reflects an arbitrary input numbering, not the generator's.
  EdgeList rmat = MakeRmat(scale, 16, true, seed + 1);
  GraphInfo rinfo = ScanEdges(rmat);
  rmat = PermuteVertexIds(rmat, rinfo.num_vertices, seed + 2);
  RunGraph("rmat (power-law)", "rmat", json, rmat, threads, partitions, io_unit, iterations,
           seed);

  EdgeList grid = GenerateGrid(grid_side, grid_side, seed + 3);
  GraphInfo ginfo = ScanEdges(grid);
  grid = PermuteVertexIds(grid, ginfo.num_vertices, seed + 4);
  RunGraph("grid (road-network stand-in)", "grid", json, grid, threads, partitions, io_unit,
           iterations, seed);
  return json.Write() ? 0 : 1;
}
