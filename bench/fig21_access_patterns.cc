// Fig 21: instructions-per-cycle and memory references for BFS.
//
// Substitution (see DESIGN.md §2.5): hardware IPC counters are not portably
// available, and the paper uses IPC only as evidence that X-Stream's
// sequential pattern resolves memory references with lower latency. We
// report the underlying quantities directly:
//   * modeled memory references: cachelines touched by each implementation
//     (sequential stream bytes / 64 for X-Stream; one random reference per
//     edge traversal + frontier bookkeeping for index-based BFS);
//   * measured wall time and the resulting effective reference throughput —
//     the analog of IPC: more references resolved per second implies lower
//     average reference latency.
// Expectation: X-Stream touches a comparable (or larger) number of
// cachelines yet sustains a higher reference rate than the random-access
// implementations.
#include "algorithms/bfs.h"
#include "baselines/bfs_hybrid.h"
#include "baselines/bfs_local_queue.h"
#include "baselines/ligra_like.h"
#include "bench_common.h"
#include "core/inmem_engine.h"

namespace xstream {
namespace {

// Cacheline estimate for the streaming engine: every iteration streams the
// whole edge list sequentially plus the generated updates (write+read), and
// touches one random vertex line per edge/update.
double XStreamMemRefs(const RunStats& stats) {
  double seq_bytes = static_cast<double>(stats.edges_streamed) * sizeof(Edge) +
                     2.0 * static_cast<double>(stats.updates_generated) *
                         sizeof(BfsAlgorithm::Update);
  double random_refs = static_cast<double>(stats.edges_streamed) +
                       static_cast<double>(stats.updates_generated);
  return seq_bytes / 64.0 + random_refs;
}

// Index BFS: one random reference per traversed edge (neighbor id load) plus
// one per visited-check, plus frontier reads.
double IndexBfsMemRefs(uint64_t edges_traversed, uint64_t vertices) {
  return 2.0 * static_cast<double>(edges_traversed) + static_cast<double>(vertices);
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 21", "Access patterns for BFS (IPC substitution)",
              "X-Stream touches >= the cachelines of index BFS but resolves them "
              "faster (sequential prefetch) => higher throughput");

  // Scale 20 default: see fig19 — the comparison needs cache-exceeding state.
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 20));
  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  EdgeList edges = MakeRmat(scale, 8, true, 6);
  GraphInfo info = ScanEdges(edges);

  Csr csr = Csr::BuildCountingSort(edges, info.num_vertices);
  Csr csc = Csr::BuildTranspose(edges, info.num_vertices);
  LigraGraph ligra = LigraGraph::Build(edges, info.num_vertices);

  Table table({"Implementation", "Time (s)", "Mem refs (M)", "Refs/us"});

  {
    ThreadPool pool(threads);
    WallTimer timer;
    LocalQueueBfsResult r = RunLocalQueueBfs(csr, 0, pool);
    double secs = timer.Seconds();
    double refs = IndexBfsMemRefs(edges.size(), r.reached);
    table.AddRow({"Local queue (Hong-style)", FormatDouble(secs, 3),
                  FormatDouble(refs / 1e6, 0), FormatDouble(refs / secs / 1e6, 1)});
  }
  {
    ThreadPool pool(threads);
    WallTimer timer;
    LigraBfsResult r = RunLigraBfs(ligra, 0, pool);
    double secs = timer.Seconds();
    double refs = IndexBfsMemRefs(edges.size() / 2, r.reached);  // pull skips edges
    table.AddRow({"Ligra-like", FormatDouble(secs, 3), FormatDouble(refs / 1e6, 0),
                  FormatDouble(refs / secs / 1e6, 1)});
  }
  {
    InMemoryConfig config;
    config.threads = threads;
    InMemoryEngine<BfsAlgorithm> engine(config, edges, info.num_vertices);
    WallTimer timer;
    BfsResult r = RunBfs(engine, 0);
    double secs = timer.Seconds() + engine.stats().setup_seconds;
    double refs = XStreamMemRefs(r.stats);
    table.AddRow({"X-Stream", FormatDouble(secs, 3), FormatDouble(refs / 1e6, 0),
                  FormatDouble(refs / secs / 1e6, 1)});
  }
  table.Print();
  std::printf("(paper Fig 21: X-Stream IPC 1.30 vs 0.47 [33] and 1.39 vs 0.75 [48]; here "
              "the refs/us column plays IPC's role)\n\n");
  return 0;
}
