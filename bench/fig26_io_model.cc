// Fig 26: big-O bounds in the Aggarwal-Vitter I/O model for label
// propagation: X-Stream vs Graphchi vs sort-plus-random-access. The bench
// evaluates the closed forms for paper-scale configurations and validates
// the X-Stream bound against bytes actually moved by the out-of-core engine
// on a small run.
#include <cmath>

#include "algorithms/wcc.h"
#include "bench_common.h"
#include "core/ooc_engine.h"
#include "iomodel/io_model.h"

namespace xstream {
namespace {

void PrintModelTable(const IoModelParams& p, const char* label) {
  std::printf("%s (V=%.3g, E=%.3g, M=%.3g, B=%.3g words, D=%.0f)\n", label, p.v, p.e, p.m,
              p.b, p.d);
  Table table({"Approach", "Partitions", "Pre-processing", "One iteration", "All iterations"});
  IoModelCosts xs = XStreamIoModel(p);
  IoModelCosts gc = GraphchiIoModel(p);
  IoModelCosts sr = SortRandomIoModel(p);
  auto row = [](const char* name, const IoModelCosts& c) {
    return std::vector<std::string>{name, FormatDouble(c.partitions, 0),
                                    FormatDouble(c.preprocessing, 0),
                                    c.one_iteration > 0 ? FormatDouble(c.one_iteration, 0) : "-",
                                    FormatDouble(c.all_iterations, 0)};
  };
  table.AddRow(row("X-Stream", xs));
  table.AddRow(row("Graphchi", gc));
  table.AddRow(row("Sort + random access", sr));
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 26", "I/O model bounds",
              "X-Stream: no pre-processing, fewer partitions than Graphchi "
              "shards, better I/O scaling on low-diameter graphs");

  // A Twitter-like configuration (1.4B edges, 42M vertices, 8GB memory,
  // 16MB transfer unit; words = 4 bytes).
  IoModelParams twitter;
  twitter.v = 41.7e6;
  twitter.e = 1.4e9 * 3;  // 12-byte edges in words
  twitter.m = 8e9 / 4;
  twitter.b = 16e6 / 4;
  twitter.d = 16;
  PrintModelTable(twitter, "Twitter-like");

  // A yahoo-web-like configuration (6.6B edges, 1.4B vertices).
  IoModelParams yahoo;
  yahoo.v = 1.4e9;
  yahoo.e = 6.6e9 * 3;
  yahoo.m = 8e9 / 4;
  yahoo.b = 16e6 / 4;
  yahoo.d = 155;
  PrintModelTable(yahoo, "yahoo-web-like");

  // Validation: measured bytes moved by the out-of-core engine vs the bound.
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 13));
  EdgeList edges = MakeRmat(scale, 16, true, 10);
  GraphInfo info = ScanEdges(edges);
  SimRaidPair pair = SimRaidPair::Make("v", DeviceProfile::Ssd());
  WriteEdgeFile(*pair.raid, "input", edges);
  OutOfCoreConfig config;
  config.threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  config.memory_budget_bytes = 2 << 20;
  config.io_unit_bytes = 64 << 10;
  config.allow_update_memory_opt = false;  // force real update traffic
  OutOfCoreEngine<WccAlgorithm> engine(config, *pair.raid, *pair.raid, *pair.raid, "input",
                                       info);
  WccResult r = RunWcc(engine);

  // Bound in bytes: D*(V+E) + (E+U)*log_{M/B}(K) per the X-Stream row, with
  // record sizes substituted and U = the run's actual update volume (the
  // paper's closed form approximates total updates by |E|; the measured
  // count keeps the check exact).
  double d = static_cast<double>(r.stats.iterations);
  double v_bytes = static_cast<double>(info.num_vertices) * sizeof(WccAlgorithm::VertexState);
  double e_bytes = static_cast<double>(info.num_edges) * sizeof(Edge);
  double u_bytes =
      static_cast<double>(r.stats.updates_generated) * sizeof(WccAlgorithm::Update);
  double log_term =
      std::max(1.0, std::log2(std::max<double>(2, engine.num_partitions())) /
                        std::log2(static_cast<double>(config.memory_budget_bytes) /
                                  config.io_unit_bytes));
  double bound = d * (v_bytes + e_bytes) + (u_bytes + e_bytes) * (1.0 + log_term);
  double measured = static_cast<double>(r.stats.bytes_read + r.stats.bytes_written);
  std::printf("validation on RMAT scale %u WCC: measured I/O %s, X-Stream bound %s "
              "(measured/bound = %.2f; <= 1 expected)\n\n",
              scale, HumanBytes(static_cast<uint64_t>(measured)).c_str(),
              HumanBytes(static_cast<uint64_t>(bound)).c_str(), measured / bound);
  return 0;
}
