// Fig 17: recomputing WCC while the Twitter graph streams in, batch by
// batch. Each ingested batch is partitioned (in-memory shuffle + appends)
// and WCC is recomputed over the accumulated graph. Expectation:
// recomputation time grows roughly linearly with the accumulated edge
// count, and stays well below a from-scratch full-graph run until the end.
#include "algorithms/wcc.h"
#include "bench_common.h"
#include "core/ooc_engine.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 17", "WCC recomputation under edge ingest (Twitter*)",
              "recompute time grows with accumulated graph size; each "
              "recompute is cheaper than the final full-graph run");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  int shift = static_cast<int>(opts.GetInt("scale-shift", 0));
  int batches = static_cast<int>(opts.GetInt("batches", 6));
  uint64_t budget = opts.GetUint("budget-mb", 4) << 20;

  DatasetSpec spec = *FindDataset("Twitter*");
  EdgeList raw = GenerateDataset(spec, shift);
  EdgeList sym = Symmetrize(raw);  // WCC needs undirected semantics
  PermuteEdges(sym, 4);
  GraphInfo info = ScanEdges(sym);

  SimRaidPair ssd = SimRaidPair::Make("ssd", DeviceProfile::Ssd());
  // Start from an empty edge file; vertices are known up front.
  WriteEdgeFile(*ssd.raid, "input", {});
  OutOfCoreConfig config;
  config.threads = threads;
  config.memory_budget_bytes = budget;
  config.io_unit_bytes = 256 << 10;
  OutOfCoreEngine<WccAlgorithm> engine(config, *ssd.raid, *ssd.raid, *ssd.raid, "input", info);

  uint64_t per_batch = sym.size() / static_cast<uint64_t>(batches);
  Table table({"Accumulated edges", "Ingest (s)", "Recompute WCC (s)", "Components"});
  for (int b = 0; b < batches; ++b) {
    uint64_t begin = static_cast<uint64_t>(b) * per_batch;
    uint64_t end = (b + 1 == batches) ? sym.size() : begin + per_batch;
    EdgeList batch(sym.begin() + static_cast<long>(begin), sym.begin() + static_cast<long>(end));

    engine.ResetStats();
    engine.IngestEdges(batch);
    engine.FinalizeStats();
    double ingest = engine.stats().RuntimeSeconds();

    engine.ResetStats();
    WccResult r = RunWcc(engine);
    table.AddRow({HumanCount(end), FormatDouble(ingest, 3),
                  FormatDouble(r.stats.RuntimeSeconds(), 3),
                  std::to_string(r.num_components)});
  }
  table.Print();
  std::printf("(paper: final 330M-edge batch recomputes in <7min vs ~20min for the full "
              "1.9B-edge graph from scratch)\n\n");
  return 0;
}
