// Ablations of X-Stream's design choices (DESIGN.md §5) beyond the paper's
// own sweeps (Fig 24 partitions, Fig 25 shuffle stages):
//   1. Work stealing (§4.1): on a skewed graph, static partition assignment
//      leaves threads idle while one thread drains the hub partition.
//   2. The §3.2 memory optimizations: disabling the update short-circuit
//      and the memory-resident vertex array adds storage traffic.
//   3. The §3.3 TRIM discipline: deferring update-file truncation raises
//      peak device occupancy.
#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"

namespace xstream {
namespace {

double InMemWcc(const EdgeList& edges, uint64_t n, int threads, bool stealing,
                uint64_t* steals) {
  InMemoryConfig config;
  config.threads = threads;
  config.num_partitions = 64;  // enough partitions for imbalance to matter
  config.enable_work_stealing = stealing;
  InMemoryEngine<WccAlgorithm> engine(config, edges, n);
  WallTimer timer;
  WccResult r = RunWcc(engine);
  *steals = r.stats.steals;
  return timer.Seconds();
}

struct OocOutcome {
  double runtime;
  uint64_t bytes_moved;
  uint64_t peak_update_bytes;
};

OocOutcome OocWcc(const EdgeList& edges, int threads, bool vertex_opt, bool update_opt,
                  bool eager_truncate, uint64_t budget = 8 << 20,
                  size_t io_unit = 256 << 10) {
  SimRaidPair pair = SimRaidPair::Make("ssd", DeviceProfile::Ssd());
  WriteEdgeFile(*pair.raid, "input", edges);
  GraphInfo info = ScanEdges(edges);
  OutOfCoreConfig config;
  config.threads = threads;
  config.memory_budget_bytes = budget;
  config.io_unit_bytes = io_unit;
  config.allow_vertex_memory_opt = vertex_opt;
  config.allow_update_memory_opt = update_opt;
  config.eager_update_truncate = eager_truncate;
  OutOfCoreEngine<WccAlgorithm> engine(config, *pair.raid, *pair.raid, *pair.raid, "input",
                                       info);
  WccResult r = RunWcc(engine);
  return OocOutcome{r.stats.RuntimeSeconds(), r.stats.bytes_read + r.stats.bytes_written,
                    r.stats.peak_update_bytes};
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Ablations", "Design-choice ablations (work stealing, §3.2 opts, TRIM)",
              "each mechanism, turned off, costs runtime, bytes, or peak storage");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 16));

  {  // 1. Work stealing on a skewed (hub-heavy) graph.
    RmatParams params;  // RMAT's a-heavy corner concentrates edges
    params.scale = scale;
    params.edge_factor = 16;
    params.a = 0.7;
    params.b = 0.1;
    params.c = 0.1;
    params.undirected = true;
    params.seed = 12;
    EdgeList skewed = GenerateRmat(params);
    GraphInfo info = ScanEdges(skewed);
    uint64_t steals = 0;
    double with = InMemWcc(skewed, info.num_vertices, threads, true, &steals);
    uint64_t no_steals = 0;
    double without = InMemWcc(skewed, info.num_vertices, threads, false, &no_steals);
    Table t({"Work stealing", "WCC (s)", "partition steals"});
    t.AddRow({"enabled", FormatDouble(with, 3), std::to_string(steals)});
    t.AddRow({"disabled (static)", FormatDouble(without, 3), std::to_string(no_steals)});
    t.Print();
    std::printf("\n");
  }

  EdgeList edges = MakeRmat(scale, 16, true, 13);
  {  // 2. §3.2 memory optimizations. The update short-circuit needs a
     // stream buffer that can hold a full scatter phase, so this row runs
     // with a budget sized like the paper's (memory >> one phase's updates).
    uint64_t big = 256ull << 20;
    size_t unit = 32 << 20;
    OocOutcome both = OocWcc(edges, threads, true, true, true, big, unit);
    OocOutcome no_upd = OocWcc(edges, threads, true, false, true, big, unit);
    OocOutcome none = OocWcc(edges, threads, false, false, true, big, unit);
    Table t({"§3.2 optimizations", "Runtime (s)", "Bytes moved"});
    t.AddRow({"vertex-mem + update-mem", FormatDouble(both.runtime, 3),
              HumanBytes(both.bytes_moved)});
    t.AddRow({"vertex-mem only", FormatDouble(no_upd.runtime, 3),
              HumanBytes(no_upd.bytes_moved)});
    t.AddRow({"neither", FormatDouble(none.runtime, 3), HumanBytes(none.bytes_moved)});
    t.Print();
    std::printf("\n");
  }

  {  // 3. TRIM discipline (peak update-file occupancy).
    OocOutcome eager = OocWcc(edges, threads, true, false, true);
    OocOutcome lazy = OocWcc(edges, threads, true, false, false);
    Table t({"Update truncation", "Runtime (s)", "Peak update bytes"});
    t.AddRow({"eager (per stream, §3.3)", FormatDouble(eager.runtime, 3),
              HumanBytes(eager.peak_update_bytes)});
    t.AddRow({"deferred to phase end", FormatDouble(lazy.runtime, 3),
              HumanBytes(lazy.peak_update_bytes)});
    t.Print();
    std::printf("\n");
  }
  return 0;
}
