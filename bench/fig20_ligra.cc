// Fig 20: comparison with the Ligra-like frontier engine on the Twitter
// stand-in, for BFS and Pagerank, across thread counts, with the Ligra
// pre-processing (sorted forward + inverted index) reported separately.
//
// Expectation: Ligra's BFS proper is much faster (direction optimization),
// but its pre-processing dwarfs X-Stream's total runtime; for Pagerank the
// uniform communication makes direction reversal useless and X-Stream wins
// outright.
#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "baselines/ligra_like.h"
#include "bench_common.h"
#include "core/inmem_engine.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 20", "Ligra-like engine vs X-Stream (Twitter*)",
              "Ligra wins raw BFS but pays pre-processing ~7-8x X-Stream's whole "
              "runtime; X-Stream wins Pagerank at every thread count");

  // +4 scale shift by default: the Twitter stand-in must outgrow the CPU
  // caches for the streaming-vs-index comparison to be meaningful.
  int shift = static_cast<int>(opts.GetInt("scale-shift", 4));
  int pr_iters = static_cast<int>(opts.GetInt("pr-iters", 5));

  DatasetSpec spec = *FindDataset("Twitter*");
  EdgeList edges = GenerateDataset(spec, shift);
  GraphInfo info = ScanEdges(edges);
  std::printf("Twitter*: %s vertices / %s edges\n", HumanCount(info.num_vertices).c_str(),
              HumanCount(info.num_edges).c_str());

  LigraGraph graph = LigraGraph::Build(edges, info.num_vertices);

  Table table({"Threads", "Workload", "Ligra (s)", "X-Stream (s)", "Ligra-pre (s)"});
  for (int t : ThreadSweep(opts)) {
    // BFS.
    double ligra_bfs;
    {
      ThreadPool pool(t);
      WallTimer timer;
      RunLigraBfs(graph, 0, pool);
      ligra_bfs = timer.Seconds();
    }
    double xs_bfs;
    {
      InMemoryConfig config;
      config.threads = t;
      InMemoryEngine<BfsAlgorithm> engine(config, edges, info.num_vertices);
      WallTimer timer;
      RunBfs(engine, 0);
      xs_bfs = timer.Seconds() + engine.stats().setup_seconds;
    }
    table.AddRow({std::to_string(t), "BFS", FormatDouble(ligra_bfs, 3),
                  FormatDouble(xs_bfs, 3), FormatDouble(graph.preprocess_seconds, 3)});

    // Pagerank.
    double ligra_pr;
    {
      ThreadPool pool(t);
      WallTimer timer;
      RunLigraPageRank(graph, pr_iters, pool);
      ligra_pr = timer.Seconds();
    }
    double xs_pr;
    {
      InMemoryConfig config;
      config.threads = t;
      InMemoryEngine<PageRankAlgorithm> engine(config, edges, info.num_vertices);
      WallTimer timer;
      RunPageRank(engine, static_cast<uint64_t>(pr_iters));
      xs_pr = timer.Seconds() + engine.stats().setup_seconds;
    }
    table.AddRow({std::to_string(t), "Pagerank", FormatDouble(ligra_pr, 3),
                  FormatDouble(xs_pr, 3), FormatDouble(graph.preprocess_seconds, 3)});
  }
  table.Print();
  std::printf("\n");
  return 0;
}
