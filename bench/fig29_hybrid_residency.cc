// Fig 29 (extension beyond the paper): the hybrid engine's residency sweep.
//
// X-Stream offers an in-memory fast path and an out-of-core slow path with
// nothing in between; the hybrid engine (core/hybrid_engine.h) interpolates
// by pinning the residency planner's choice of partitions in RAM under
// `--memory-budget`. Sweeping the budget from 0 to the full pin cost should
// trace a monotone (within noise) runtime curve from out-of-core speed to
// memory speed: at budget 0 the engine *is* the out-of-core device path
// (results bit-for-bit identical), at full budget vertex and update traffic
// never touch the devices and only the edge stream remains, and every
// intermediate budget reports avoided_spill_bytes > 0.
//
// Devices: three independent WallClockSimDevices (SSD model spent in wall
// time, as in fig28) so avoided device traffic shows up as wall-clock
// improvement on any host. The out-of-core baseline runs with the vertex
// memory optimization off, matching the hybrid store's always-file-resident
// base path — residency is the planner's job here, not the §3.2 shortcut's.
//
// Algorithm: WCC to convergence — its fixpoint is order-independent, so
// results must be bit-for-bit identical across every budget and both
// baselines.
#include "bench_common.h"

#include "algorithms/wcc.h"
#include "core/hybrid_engine.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/transforms.h"

namespace xstream {
namespace {

struct SweepPoint {
  std::string label;
  uint64_t budget = 0;
  double wall_seconds = 0.0;
  uint64_t resident_partitions = 0;
  uint64_t avoided_mb = 0;
  uint64_t update_file_mb = 0;
  std::vector<VertexId> labels;
  uint64_t num_components = 0;
};

struct BenchSetup {
  EdgeList edges;
  GraphInfo info;
  int threads = 0;
  uint32_t partitions = 8;
  size_t io_unit_bytes = 0;
  int reps = 1;
};

SweepPoint RunHybridAt(const BenchSetup& s, uint64_t budget, const std::string& label) {
  SweepPoint point;
  point.label = label;
  point.budget = budget;
  point.wall_seconds = 1e100;
  for (int rep = 0; rep < s.reps; ++rep) {
    WallClockSimDevice edge_dev("edges", DeviceProfile::Ssd());
    WallClockSimDevice update_dev("updates", DeviceProfile::Ssd());
    WallClockSimDevice vertex_dev("vertices", DeviceProfile::Ssd());
    WriteEdgeFile(edge_dev, "fig29.input", s.edges);
    HybridConfig config;
    config.threads = s.threads;
    config.io_unit_bytes = s.io_unit_bytes;
    config.num_partitions = s.partitions;
    config.memory_budget_bytes = budget;
    config.file_prefix = "fig29";
    HybridEngine<WccAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                      "fig29.input", s.info);
    WallTimer timer;
    WccResult r = RunWcc(engine);
    double wall = timer.Seconds();
    if (wall < point.wall_seconds) {
      point.wall_seconds = wall;
      point.resident_partitions = r.stats.resident_partition_count;
      point.avoided_mb = r.stats.avoided_spill_bytes >> 20;
      point.update_file_mb = r.stats.update_file_bytes >> 20;
    }
    point.labels = std::move(r.labels);
    point.num_components = r.num_components;
  }
  return point;
}

SweepPoint RunOutOfCore(const BenchSetup& s) {
  SweepPoint point;
  point.label = "out-of-core";
  point.wall_seconds = 1e100;
  for (int rep = 0; rep < s.reps; ++rep) {
    WallClockSimDevice edge_dev("edges", DeviceProfile::Ssd());
    WallClockSimDevice update_dev("updates", DeviceProfile::Ssd());
    WallClockSimDevice vertex_dev("vertices", DeviceProfile::Ssd());
    WriteEdgeFile(edge_dev, "fig29.input", s.edges);
    OutOfCoreConfig config;
    config.threads = s.threads;
    config.io_unit_bytes = s.io_unit_bytes;
    config.num_partitions = s.partitions;
    config.allow_vertex_memory_opt = false;  // the hybrid base path
    config.file_prefix = "fig29";
    OutOfCoreEngine<WccAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                         "fig29.input", s.info);
    WallTimer timer;
    WccResult r = RunWcc(engine);
    double wall = timer.Seconds();
    if (wall < point.wall_seconds) {
      point.wall_seconds = wall;
      point.update_file_mb = r.stats.update_file_bytes >> 20;
    }
    point.labels = std::move(r.labels);
    point.num_components = r.num_components;
  }
  return point;
}

SweepPoint RunInMemory(const BenchSetup& s) {
  SweepPoint point;
  point.label = "in-memory";
  point.wall_seconds = 1e100;
  for (int rep = 0; rep < s.reps; ++rep) {
    InMemoryConfig config;
    config.threads = s.threads;
    InMemoryEngine<WccAlgorithm> engine(config, s.edges, s.info.num_vertices);
    WallTimer timer;
    WccResult r = RunWcc(engine);
    point.wall_seconds = std::min(point.wall_seconds, timer.Seconds());
    point.labels = std::move(r.labels);
    point.num_components = r.num_components;
  }
  return point;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 29", "Hybrid engine: runtime vs residency budget (SSD model in wall time)",
              "runtime falls monotonically (within noise) as the pin budget grows "
              "from 0 (= out-of-core) to the full graph, identical results throughout");

  bool smoke = opts.GetBool("smoke", false);
  BenchSetup s;
  s.threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  s.partitions = static_cast<uint32_t>(opts.GetUint("partitions", 8));
  s.io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", smoke ? 16 : 64)) << 10;
  // Best-of-2 even in smoke mode: the monotonicity check gates CI, and one
  // oversleep on a loaded shared runner must not turn the build red.
  s.reps = static_cast<int>(opts.GetInt("reps", 2));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", smoke ? 12 : 16));
  uint64_t seed = opts.GetUint("seed", 1);

  s.edges = MakeRmat(scale, 16, true, seed + 1);
  s.info = ScanEdges(s.edges);
  s.edges = PermuteVertexIds(s.edges, s.info.num_vertices, seed + 2);
  std::printf("rmat scale %u: %s vertices, %s edge records, %u partitions\n\n", scale,
              HumanCount(s.info.num_vertices).c_str(), HumanCount(s.info.num_edges).c_str(),
              s.partitions);

  // The budget at which everything pins, from a probe engine over the same
  // input (planner inputs depend on the setup pass's per-partition tallies).
  uint64_t full_pin = 0;
  {
    WallClockSimDevice dev("probe", DeviceProfile::Instant());
    WriteEdgeFile(dev, "fig29.input", s.edges);
    HybridConfig config;
    config.threads = s.threads;
    config.io_unit_bytes = s.io_unit_bytes;
    config.num_partitions = s.partitions;
    config.memory_budget_bytes = 0;
    config.file_prefix = "fig29";
    HybridEngine<WccAlgorithm> probe(config, dev, dev, dev, "fig29.input", s.info);
    full_pin = probe.FullPinBytes();
  }

  std::vector<int> percents = smoke ? std::vector<int>{0, 50, 100}
                                    : std::vector<int>{0, 25, 50, 75, 100};
  SweepPoint ooc = RunOutOfCore(s);
  std::vector<SweepPoint> sweep;
  for (int pct : percents) {
    uint64_t budget = full_pin * pct / 100;
    sweep.push_back(RunHybridAt(s, budget, "hybrid " + std::to_string(pct) + "%"));
  }
  SweepPoint mem = RunInMemory(s);

  Table table({"Engine / budget", "Budget MB", "Resident", "Update MB", "Avoided MB",
               "Wall (s)", "vs OOC"});
  auto add_row = [&table, &ooc](const SweepPoint& p) {
    table.AddRow({p.label, FormatDouble(static_cast<double>(p.budget) / (1 << 20), 1),
                  std::to_string(p.resident_partitions), std::to_string(p.update_file_mb),
                  std::to_string(p.avoided_mb), FormatDouble(p.wall_seconds, 3),
                  FormatDouble(ooc.wall_seconds / p.wall_seconds, 2) + "x"});
  };
  add_row(ooc);
  for (const SweepPoint& p : sweep) {
    add_row(p);
  }
  add_row(mem);
  table.Print();

  bool ok = true;
  for (const SweepPoint& p : sweep) {
    if (p.labels != ooc.labels || p.labels != mem.labels ||
        p.num_components != ooc.num_components) {
      std::printf("FAIL: %s results diverge from the engine baselines\n", p.label.c_str());
      ok = false;
    }
  }
  for (size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].resident_partitions > 0 && sweep[i].avoided_mb == 0 &&
        sweep[i].budget > 0) {
      std::printf("FAIL: %s pinned partitions but avoided no device traffic\n",
                  sweep[i].label.c_str());
      ok = false;
    }
    // Monotone within noise: growing the budget must not cost runtime.
    if (sweep[i].wall_seconds > sweep[i - 1].wall_seconds * 1.15) {
      std::printf("FAIL: runtime rose from %s (%.3fs) to %s (%.3fs)\n",
                  sweep[i - 1].label.c_str(), sweep[i - 1].wall_seconds,
                  sweep[i].label.c_str(), sweep[i].wall_seconds);
      ok = false;
    }
  }
  if (!sweep.empty() && sweep.back().update_file_mb != 0) {
    std::printf("FAIL: full budget still wrote update files\n");
    ok = false;
  }
  bool intermediate_avoids = sweep.size() < 3;
  for (size_t i = 1; i + 1 < sweep.size(); ++i) {
    intermediate_avoids = intermediate_avoids || sweep[i].avoided_mb > 0;
  }
  if (!intermediate_avoids) {
    std::printf("FAIL: no intermediate budget avoided any device traffic\n");
    ok = false;
  }
  std::printf("\nacceptance: identical results, avoided traffic at intermediate budgets, "
              "monotone runtime: %s\n", ok ? "yes" : "NO");

  BenchJson json(opts, "fig29");
  json.Exact("num_components", static_cast<double>(ooc.num_components));
  json.Exact("ooc.update_file_mb", static_cast<double>(ooc.update_file_mb));
  json.Info("ooc.wall_seconds", ooc.wall_seconds);
  json.Info("in_memory.wall_seconds", mem.wall_seconds);
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::string mkey = "hybrid_" + std::to_string(percents[i]);
    json.Exact(mkey + ".resident_partitions",
               static_cast<double>(sweep[i].resident_partitions));
    json.Exact(mkey + ".update_file_mb", static_cast<double>(sweep[i].update_file_mb));
    json.Ratio(mkey + ".avoided_mb", static_cast<double>(sweep[i].avoided_mb));
    json.Info(mkey + ".wall_seconds", sweep[i].wall_seconds);
  }
  json.Exact("acceptance", ok ? 1 : 0);
  if (!json.Write()) {
    return 1;
  }
  return ok ? 0 : 1;
}
