// Fig 25: effect of the multi-stage shuffler's stage count with a large
// partition count. Expectation: a single-stage shuffle over many partitions
// thrashes the cache (one output cursor per partition); too many stages add
// copying; the optimum sits at 2-3 stages. Normalized to the 1-stage run.
#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "core/inmem_engine.h"

namespace xstream {
namespace {

// Fanout that produces exactly `stages` shuffle steps for `partitions`.
uint32_t FanoutForStages(uint32_t partitions, int stages) {
  uint32_t bits = CeilLog2(partitions);
  uint32_t per_stage = (bits + static_cast<uint32_t>(stages) - 1) / static_cast<uint32_t>(stages);
  return uint32_t{1} << std::max(1u, per_stage);
}

template <typename Algo, typename Run>
double RunWithFanout(const EdgeList& edges, uint64_t n, int threads, uint32_t partitions,
                     uint32_t fanout, Run&& run) {
  InMemoryConfig config;
  config.threads = threads;
  config.num_partitions = partitions;
  config.shuffle_fanout = fanout;
  InMemoryEngine<Algo> engine(config, edges, n);
  WallTimer timer;
  run(engine);
  return timer.Seconds() + engine.stats().setup_seconds;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 25", "Multistage shuffler: stages vs runtime",
              "1 stage is sub-optimal at high partition counts; 2-3 stages "
              "win; more stages add copying");

  // The single-stage penalty only appears when the number of *active*
  // output cursors exceeds the cachelines the CPU can keep resident (paper
  // §4.2: 1M partitions on a scale-25 graph). Scaled down: 2^17 partitions
  // on a scale-17 graph.
  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 17));
  uint32_t partitions = static_cast<uint32_t>(opts.GetUint("partitions", 1u << 17));
  EdgeList edges = MakeRmat(scale, 16, true, 9);
  GraphInfo info = ScanEdges(edges);
  std::printf("RMAT scale %u, %u partitions\n", scale, partitions);

  std::vector<double> base(4, 0.0);
  Table table({"Stages", "Fanout", "BFS", "SpMV", "Pagerank", "WCC"});
  for (int stages : {1, 2, 3, 4, 5}) {
    uint32_t fanout = FanoutForStages(partitions, stages);
    double bfs = RunWithFanout<BfsAlgorithm>(edges, info.num_vertices, threads, partitions,
                                             fanout, [](auto& e) { RunBfs(e, 0); });
    double spmv = RunWithFanout<SpmvAlgorithm>(edges, info.num_vertices, threads, partitions,
                                               fanout, [](auto& e) { RunSpmv(e); });
    double pr = RunWithFanout<PageRankAlgorithm>(edges, info.num_vertices, threads,
                                                 partitions, fanout,
                                                 [](auto& e) { RunPageRank(e, 5); });
    double wcc = RunWithFanout<WccAlgorithm>(edges, info.num_vertices, threads, partitions,
                                             fanout, [](auto& e) { RunWcc(e); });
    if (stages == 1) {
      base = {bfs, spmv, pr, wcc};
    }
    table.AddRow({std::to_string(stages), std::to_string(fanout),
                  FormatDouble(bfs / base[0], 2), FormatDouble(spmv / base[1], 2),
                  FormatDouble(pr / base[2], 2), FormatDouble(wcc / base[3], 2)});
  }
  table.Print();
  std::printf("(values normalized to the single-stage shuffler)\n\n");
  return 0;
}
