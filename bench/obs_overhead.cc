// Instrumentation overhead microbenchmark (satellite of the observability
// PR): the per-op cost of the primitives the hot paths pay — Counter::Add
// (single- and multi-threaded), Gauge::Set, Histogram::Observe, and a
// disabled TraceSpan (one relaxed atomic load) — plus the end-to-end check
// the <2% budget is stated against: a hybrid WCC run with the tracer off vs
// on. Build with -DXSTREAM_DISABLE_OBS to measure the compile-out escape
// hatch (the counter loop collapses to the loop overhead itself).
//
// Measured numbers are machine-dependent; docs/observability.md records a
// reference set. All metrics here are class "info" — never CI-gated.
#include "bench_common.h"

#include <thread>

#include "algorithms/wcc.h"
#include "core/hybrid_engine.h"
#include "graph/transforms.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace xstream {
namespace {

double NsPerOp(uint64_t ops, double seconds) {
  return ops > 0 ? seconds * 1e9 / static_cast<double>(ops) : 0.0;
}

// One hybrid WCC run at a partial pin budget; returns wall seconds. The
// partial budget keeps every span kind live (scatter, shuffle, spill,
// gather, migration), so the traced run records a realistic event mix.
double HybridRun(const EdgeList& edges, const GraphInfo& info, int threads) {
  SimDevice edge_dev("edges", DeviceProfile::Instant());
  SimDevice update_dev("updates", DeviceProfile::Instant());
  SimDevice vertex_dev("vertices", DeviceProfile::Instant());
  WriteEdgeFile(edge_dev, "oh.input", edges);
  HybridConfig config;
  config.threads = threads;
  config.io_unit_bytes = 16 << 10;
  config.num_partitions = 8;
  config.memory_budget_bytes = info.num_vertices * 8;  // partial: spills live
  config.file_prefix = "oh";
  HybridEngine<WccAlgorithm> engine(config, edge_dev, update_dev, vertex_dev, "oh.input",
                                    info);
  WallTimer timer;
  RunWcc(engine);
  return timer.Seconds();
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Observability overhead",
              "Cost of the obs primitives and of tracing a hybrid run",
              "counter adds stay in single-digit ns, a disabled span costs one "
              "relaxed load, and tracing adds <2% to a smoke-scale hybrid run");

  uint64_t ops = opts.GetUint("ops", 20'000'000);
  int mt_threads = static_cast<int>(opts.GetInt("mt-threads", 4));
  int reps = static_cast<int>(opts.GetInt("reps", 3));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", 12));
  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint64_t seed = opts.GetUint("seed", 1);

  BenchJson json(opts, "obs_overhead");
  Table table({"Primitive", "ops", "ns/op"});

  obs::MetricsRegistry registry;  // private: keep the global snapshot clean
  {
    obs::Counter& c = registry.counter("bench.count");
    WallTimer t;
    for (uint64_t i = 0; i < ops; ++i) {
      c.Add();
    }
    double ns = NsPerOp(ops, t.Seconds());
    table.AddRow({"Counter::Add (1 thread)", HumanCount(ops), FormatDouble(ns, 2)});
    json.Info("counter_add_ns", ns);
    XS_CHECK_EQ(c.Value(), ops);
  }
  {
    obs::Counter& c = registry.counter("bench.count_mt");
    WallTimer t;
    std::vector<std::thread> workers;
    for (int w = 0; w < mt_threads; ++w) {
      workers.emplace_back([&c, ops, mt_threads] {
        for (uint64_t i = 0; i < ops / mt_threads; ++i) {
          c.Add();
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
    double ns = NsPerOp(ops / mt_threads * mt_threads, t.Seconds() * mt_threads);
    table.AddRow({"Counter::Add (" + std::to_string(mt_threads) + " threads, per-thread)",
                  HumanCount(ops), FormatDouble(ns, 2)});
    json.Info("counter_add_mt_ns", ns);
  }
  {
    obs::Gauge& g = registry.gauge("bench.gauge");
    WallTimer t;
    for (uint64_t i = 0; i < ops; ++i) {
      g.Set(static_cast<double>(i));
    }
    double ns = NsPerOp(ops, t.Seconds());
    table.AddRow({"Gauge::Set", HumanCount(ops), FormatDouble(ns, 2)});
    json.Info("gauge_set_ns", ns);
  }
  {
    obs::Histogram& h = registry.histogram("bench.hist");
    uint64_t hist_ops = ops / 4;  // CAS-loop sum: pricier, fewer reps needed
    WallTimer t;
    for (uint64_t i = 0; i < hist_ops; ++i) {
      h.Observe(static_cast<double>(i & 1023));
    }
    double ns = NsPerOp(hist_ops, t.Seconds());
    table.AddRow({"Histogram::Observe", HumanCount(hist_ops), FormatDouble(ns, 2)});
    json.Info("histogram_observe_ns", ns);
  }
  {
    obs::Tracer::Global().Disable();
    WallTimer t;
    for (uint64_t i = 0; i < ops; ++i) {
      obs::TraceSpan span("scatter");
    }
    double ns = NsPerOp(ops, t.Seconds());
    table.AddRow({"TraceSpan (tracer off)", HumanCount(ops), FormatDouble(ns, 2)});
    json.Info("span_disabled_ns", ns);
  }
  {
    // The always-on production setting: tracer enabled but sampled way
    // down, so virtually every span takes the not-sampled path (one
    // enabled load + one xorshift draw). Ring-bounded so the few recorded
    // spans cannot grow memory across the measurement.
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Reset();
    tracer.set_ring_capacity(1024);
    tracer.set_sample_rate(1e-6);
    tracer.Enable();
    WallTimer t;
    for (uint64_t i = 0; i < ops; ++i) {
      obs::TraceSpan span("scatter");
    }
    double ns = NsPerOp(ops, t.Seconds());
    tracer.Disable();
    tracer.set_sample_rate(1.0);
    tracer.set_ring_capacity(0);
    tracer.Reset();
    table.AddRow({"TraceSpan (on, sample 1e-6)", HumanCount(ops), FormatDouble(ns, 2)});
    json.Info("span_sampled_out_ns", ns);
  }
  {
    // The attribution hot path: one clock delta folded into two relaxed
    // fetch_adds (cell + wall). The driver calls this a handful of times per
    // partition per iteration, so even 10x this cost would be invisible.
    obs::PhaseAccountant acct("bench.attr", 8);
    WallTimer t;
    for (uint64_t i = 0; i < ops; ++i) {
      acct.Record(obs::Phase::kScatter, static_cast<uint32_t>(i & 7), 1e-9);
    }
    double ns = NsPerOp(ops, t.Seconds());
    table.AddRow({"PhaseAccountant::Record", HumanCount(ops), FormatDouble(ns, 2)});
    json.Info("attribution_record_ns", ns);
  }
  {
    // Full RAII section: two clock reads plus the Record above.
    obs::PhaseAccountant acct("bench.attr_scoped", 8);
    uint64_t timer_ops = ops / 4;  // clock reads dominate; fewer reps suffice
    WallTimer t;
    for (uint64_t i = 0; i < timer_ops; ++i) {
      obs::PhaseTimer pt(&acct, obs::Phase::kGather, static_cast<uint32_t>(i & 7));
    }
    double ns = NsPerOp(timer_ops, t.Seconds());
    table.AddRow({"PhaseTimer scope", HumanCount(timer_ops), FormatDouble(ns, 2)});
    json.Info("attribution_scoped_ns", ns);
  }
  table.Print();

  // Sampling-profiler overhead: the same fixed CPU-bound spin with the
  // SIGPROF sampler off vs on. At the default 97 Hz the handler runs ~100
  // times per CPU-second, so the delta should be noise-level.
  {
    auto spin = [](uint64_t iters) {
      volatile uint64_t x = 1;
      for (uint64_t i = 0; i < iters; ++i) {
        x = x * 2862933555777941757ULL + 3037000493ULL;
      }
      return x;
    };
    uint64_t iters = ops * 8;
    spin(iters / 8);  // warm up
    WallTimer t_off;
    spin(iters);
    double prof_off = t_off.Seconds();
    double prof_on = prof_off;
    uint64_t samples = 0;
    if (obs::CpuProfiler::Global().Start()) {
      WallTimer t_on;
      spin(iters);
      prof_on = t_on.Seconds();
      obs::CpuProfiler::Global().Stop();
      samples = obs::CpuProfiler::Global().sample_count();
      obs::CpuProfiler::Global().Reset();
    }
    double prof_pct = prof_off > 0 ? 100.0 * (prof_on - prof_off) / prof_off : 0.0;
    std::printf("\nprofiler on spin workload: off %.3fs, on %.3fs (%+.2f%%, %llu samples)\n",
                prof_off, prof_on, prof_pct,
                static_cast<unsigned long long>(samples));
    json.Info("profiler_off_seconds", prof_off);
    json.Info("profiler_on_seconds", prof_on);
    json.Info("profiler_overhead_pct", prof_pct);
    json.Info("profiler_samples", static_cast<double>(samples));
  }

  // End-to-end: hybrid WCC wall time, tracer off vs on (best-of-reps to
  // shed scheduler noise). The interesting number is the off/on ratio, not
  // the absolute times.
  EdgeList edges = MakeRmat(scale, 16, true, seed + 1);
  GraphInfo info = ScanEdges(edges);
  edges = PermuteVertexIds(edges, info.num_vertices, seed + 2);

  double off = 1e100;
  double on = 1e100;
  for (int r = 0; r < reps; ++r) {
    obs::Tracer::Global().Disable();
    off = std::min(off, HybridRun(edges, info, threads));
  }
  for (int r = 0; r < reps; ++r) {
    obs::Tracer::Global().Reset();
    obs::Tracer::Global().Enable();
    on = std::min(on, HybridRun(edges, info, threads));
  }
  size_t events = obs::Tracer::Global().Snapshot().size();
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Reset();

  double pct = off > 0 ? 100.0 * (on - off) / off : 0.0;
  std::printf("\nhybrid wcc (rmat scale %u, %d threads, best of %d): tracer off %.3fs, "
              "on %.3fs (%+.2f%%, %zu events)\n",
              scale, threads, reps, off, on, pct, events);
  json.Info("hybrid_off_seconds", off);
  json.Info("hybrid_on_seconds", on);
  json.Info("hybrid_trace_overhead_pct", pct);
  json.Info("hybrid_trace_events", static_cast<double>(events));
  return json.Write() ? 0 : 1;
}
