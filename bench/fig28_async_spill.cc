// Fig 28 (extension beyond the paper): synchronous vs asynchronous update
// spill on the out-of-core engine.
//
// The §3.3 design overlaps update-file writes with scatter compute. The
// unified phase runtime routes spill writes through the update device's
// IoExecutor with double-buffered shuffle destinations, so the shuffle of
// spill batch k+1 runs while the write of batch k is in flight; the sync
// baseline (`async_spill = false`) makes every spill wait for its own
// write. Expectation: async spill matches or beats sync throughput, and
// its spill-wait time — the scatter stalls attributable to update writes —
// collapses.
//
// Device: a SimDevice (SSD profile) whose modeled service time is also
// spent in *wall* time, so the compute/write overlap is measurable and
// reproducible on any host — a laptop's page cache absorbs buffered writes
// at memcpy speed, which would bury the effect in scheduling noise.
//
// Runs PageRank with file-resident vertices and the update-memory
// optimization disabled so every iteration spills.
#include "bench_common.h"

#include "algorithms/pagerank.h"
#include "core/ooc_engine.h"
#include "graph/transforms.h"

namespace xstream {
namespace {

// The wall-clock SSD model lives in bench_common.h (WallClockSimDevice):
// modeled service time is spent in wall time, exactly what the §3.3 overlap
// hides — or, in sync-spill mode, fails to hide.

struct BenchResult {
  double wall_seconds = 0.0;       // best-of-reps iteration wall time
  double spill_wait_seconds = 0.0; // from the best rep
  uint64_t update_file_mb = 0;
  uint64_t async_mb = 0;
  double edges_per_second = 0.0;
  double top_rank = 0.0;  // result fingerprint: must match across modes
};

BenchResult RunOne(bool async_spill, const EdgeList& edges, const GraphInfo& info,
                   int threads, uint32_t partitions, size_t io_unit_bytes,
                   uint64_t iterations, int reps) {
  BenchResult best;
  best.wall_seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    // Independent devices for edges and updates (the Fig 15 configuration):
    // with one shared disk the FIFO I/O thread would re-serialize the spill
    // writes against the edge prefetch reads — one disk head — and overlap
    // could not create bandwidth.
    WallClockSimDevice edge_dev("edges", DeviceProfile::Ssd());
    WallClockSimDevice update_dev("updates", DeviceProfile::Ssd());
    WallClockSimDevice vertex_dev("vertices", DeviceProfile::Ssd());
    WriteEdgeFile(edge_dev, "fig28.input", edges);
    OutOfCoreConfig config;
    config.threads = threads;
    config.memory_budget_bytes = 64ull << 20;  // only k matters: it is forced
    config.io_unit_bytes = io_unit_bytes;
    config.num_partitions = partitions;
    config.allow_vertex_memory_opt = false;  // file-resident vertex states
    config.allow_update_memory_opt = false;  // every iteration spills
    config.absorb_local_updates = false;     // pure spill traffic, no shortcut
    config.async_spill = async_spill;
    config.file_prefix = "fig28";
    OutOfCoreEngine<PageRankAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                              "fig28.input", info);

    PageRankAlgorithm algo(info.num_vertices, iterations);
    WallTimer timer;
    RunStats stats = engine.Run(algo, iterations);
    double wall = timer.Seconds();
    if (wall < best.wall_seconds) {
      best.wall_seconds = wall;
      best.spill_wait_seconds = stats.spill_wait_seconds;
      best.update_file_mb = stats.update_file_bytes >> 20;
      best.async_mb = stats.async_spill_bytes >> 20;
      best.edges_per_second = static_cast<double>(stats.edges_streamed) / wall;
    }
    best.top_rank = engine.VertexFold(0.0, [](double acc, VertexId,
                                              const PageRankAlgorithm::VertexState& s) {
      return std::max(acc, static_cast<double>(s.rank));
    });
  }
  return best;
}

void RunGraph(const char* label, const char* key, BenchJson& json, const EdgeList& edges,
              int threads, uint32_t partitions, size_t io_unit_bytes, uint64_t iterations,
              int reps, bool* async_wins) {
  GraphInfo info = ScanEdges(edges);
  std::printf("%s: %s vertices, %s edge records, %u partitions, %llu iterations\n", label,
              HumanCount(info.num_vertices).c_str(), HumanCount(info.num_edges).c_str(),
              partitions, static_cast<unsigned long long>(iterations));
  Table table({"Spill mode", "Wall (s)", "Spill wait (s)", "Update MB", "Async MB",
               "ME/s"});
  BenchResult sync_r =
      RunOne(false, edges, info, threads, partitions, io_unit_bytes, iterations, reps);
  BenchResult async_r =
      RunOne(true, edges, info, threads, partitions, io_unit_bytes, iterations, reps);
  auto add_row = [&table](const char* name, const BenchResult& r) {
    table.AddRow({name, FormatDouble(r.wall_seconds, 3), FormatDouble(r.spill_wait_seconds, 3),
                  FormatDouble(static_cast<double>(r.update_file_mb), 0),
                  FormatDouble(static_cast<double>(r.async_mb), 0),
                  FormatDouble(r.edges_per_second / 1e6, 1)});
  };
  add_row("sync", sync_r);
  add_row("async", async_r);
  table.Print();
  double speedup = sync_r.wall_seconds / async_r.wall_seconds;
  bool match = std::abs(sync_r.top_rank - async_r.top_rank) <=
               1e-4 * std::abs(sync_r.top_rank);
  std::printf("async vs sync: %.2fx wall, spill wait %.3fs -> %.3fs; results %s\n\n", speedup,
              sync_r.spill_wait_seconds, async_r.spill_wait_seconds,
              match ? "identical" : "DIVERGED");
  if (async_wins != nullptr) {
    *async_wins = async_r.edges_per_second >= sync_r.edges_per_second;
  }
  // Update-file traffic is deterministic (routed records x record size, no
  // absorption, fixed seed) and must not depend on the spill mode; the
  // result fingerprint match is the §3.3 "overlap changes nothing" claim.
  // Wall-derived numbers are machine load, recorded for trending only.
  json.Exact(std::string(key) + ".sync_update_mb", static_cast<double>(sync_r.update_file_mb));
  json.Exact(std::string(key) + ".async_update_mb",
             static_cast<double>(async_r.update_file_mb));
  json.Exact(std::string(key) + ".results_match", match ? 1.0 : 0.0);
  json.Info(std::string(key) + ".async_speedup", speedup);
  json.Info(std::string(key) + ".sync_spill_wait_s", sync_r.spill_wait_seconds);
  json.Info(std::string(key) + ".async_spill_wait_s", async_r.spill_wait_seconds);
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 28", "Sync vs async update spill (out-of-core, SSD model in wall time)",
              "async spill >= sync throughput: shuffle of batch k+1 overlaps "
              "the update-file write of batch k (§3.3)");

  bool smoke = opts.GetBool("smoke", false);
  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", smoke ? 12 : 16));
  uint32_t grid_side = static_cast<uint32_t>(opts.GetUint("grid-side", smoke ? 128 : 512));
  uint32_t partitions = static_cast<uint32_t>(opts.GetUint("partitions", 8));
  size_t io_unit = static_cast<size_t>(opts.GetUint("io-unit-kb", smoke ? 16 : 64)) << 10;
  uint64_t iterations = opts.GetUint("iterations", 3);
  int reps = static_cast<int>(opts.GetInt("reps", smoke ? 1 : 3));
  uint64_t seed = opts.GetUint("seed", 1);

  BenchJson json(opts, "fig28");
  EdgeList rmat = MakeRmat(scale, 16, true, seed + 1);
  GraphInfo rinfo = ScanEdges(rmat);
  rmat = PermuteVertexIds(rmat, rinfo.num_vertices, seed + 2);
  RunGraph("rmat (power-law)", "rmat", json, rmat, threads, partitions, io_unit, iterations,
           reps, nullptr);

  bool async_wins = false;
  EdgeList grid = GenerateGrid(grid_side, grid_side, seed + 3);
  GraphInfo ginfo = ScanEdges(grid);
  grid = PermuteVertexIds(grid, ginfo.num_vertices, seed + 4);
  RunGraph("grid (road-network stand-in)", "grid", json, grid, threads, partitions, io_unit,
           iterations, reps, &async_wins);
  std::printf("acceptance: async >= sync on grid: %s\n", async_wins ? "yes" : "NO");
  json.Write();
  return async_wins ? 0 : 1;
}
