// Fig 31 (extension beyond the paper): incremental residency — delta
// eviction/promotion with hysteresis, and pinned edge streams.
//
// PR 3's hybrid engine re-planned the pin set between iterations with a
// stop-the-world full re-plan: every partition the new plan flipped moved
// its state immediately, so a drifting workload (an SSSP/BFS frontier
// sweeping through partitions, with Bellman-Ford correction waves bouncing
// volumes up and down) thrashed vertex state between RAM and the vertex
// files. The incremental planner (ResidencyPlanner::PlanDelta) migrates
// only partitions whose win/loss survived `--residency-hysteresis`
// consecutive iterations, one partition at a time at scatter boundaries.
//
// Part A measures that: SSSP over a weighted grid at a partial pin budget,
// full re-plan (hysteresis 0) vs incremental (hysteresis 1 and 2). The
// migration byte volume must be strictly lower under the hysteresis delta,
// with bit-identical distances throughout.
//
// Part B measures edge pinning: PR 3's "fully resident" partitions still
// streamed their edges from the edge device every scatter. With --pin-edges
// a pinned partition captures its edge chunks into a PinnedEdgeCache on the
// first scan and serves every later scan from RAM — so at a full budget the
// edge device goes silent after iteration 1 and the hybrid engine's results
// are bit-identical to the in-memory engine's.
#include "bench_common.h"

#include "algorithms/bfs.h"
#include "algorithms/sssp.h"
#include "core/hybrid_engine.h"
#include "core/inmem_engine.h"
#include "graph/transforms.h"

namespace xstream {
namespace {

struct MigrationPoint {
  std::string label;
  uint64_t migration_bytes = 0;
  uint64_t evictions = 0;
  uint64_t promotions = 0;
  uint64_t replans = 0;
  uint64_t iterations = 0;
  std::vector<float> dist;
};

HybridConfig BaseConfig(int threads, size_t io_unit_bytes, uint32_t partitions) {
  HybridConfig config;
  config.threads = threads;
  config.io_unit_bytes = io_unit_bytes;
  config.num_partitions = partitions;
  config.file_prefix = "fig31";
  return config;
}

MigrationPoint RunSsspAt(const EdgeList& edges, const GraphInfo& info, HybridConfig config,
                         uint64_t budget, uint32_t hysteresis, const std::string& label) {
  SimDevice edge_dev("edges", DeviceProfile::Instant());
  SimDevice update_dev("updates", DeviceProfile::Instant());
  SimDevice vertex_dev("vertices", DeviceProfile::Instant());
  WriteEdgeFile(edge_dev, "fig31.input", edges);
  config.memory_budget_bytes = budget;
  config.residency_hysteresis = hysteresis;
  HybridEngine<SsspAlgorithm> engine(config, edge_dev, update_dev, vertex_dev,
                                     "fig31.input", info);
  SsspResult r = RunSssp(engine, 0);
  MigrationPoint point;
  point.label = label;
  point.migration_bytes = r.stats.migration_bytes;
  point.evictions = r.stats.evictions;
  point.promotions = r.stats.promotions;
  point.replans = engine.replans();
  point.iterations = r.stats.iterations;
  point.dist = std::move(r.dist);
  return point;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 31",
              "Incremental residency: delta migrations with hysteresis + pinned edge streams",
              "hysteresis cuts migration bytes vs the full re-plan baseline on a drifting "
              "frontier; at full budget with --pin-edges the edge device is silent after "
              "the first iteration and results match the in-memory engine bit for bit");

  bool smoke = opts.GetBool("smoke", false);
  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  uint32_t partitions = static_cast<uint32_t>(opts.GetUint("partitions", 8));
  size_t io_unit_bytes = static_cast<size_t>(opts.GetUint("io-unit-kb", smoke ? 4 : 16)) << 10;
  uint64_t seed = opts.GetUint("seed", 1);
  uint32_t side = static_cast<uint32_t>(opts.GetUint("side", smoke ? 48 : 96));
  uint64_t budget_pct = opts.GetUint("budget-pct", 40);
  uint32_t hysteresis = static_cast<uint32_t>(opts.GetUint("hysteresis", 2));

  bool ok = true;

  // ---- Part A: migration volume under a drifting SSSP frontier -----------
  EdgeList grid = GenerateGrid(side, side, seed);
  GraphInfo ginfo = ScanEdges(grid);
  std::printf("part A: sssp over a %ux%u weighted grid (%s vertices, %s edge records), "
              "%u partitions, pin budget = %llu%% of the vertex-state bytes\n",
              side, side, HumanCount(ginfo.num_vertices).c_str(),
              HumanCount(ginfo.num_edges).c_str(), partitions,
              static_cast<unsigned long long>(budget_pct));

  HybridConfig config = BaseConfig(threads, io_unit_bytes, partitions);
  // The budget must *bind* at the observed costs for residency to drift: an
  // SSSP iteration's observed pin cost is roughly the vertex states (the
  // frontier's update volume is small), so a fraction of the total vertex
  // bytes keeps the marginal partitions competing every re-plan. A fraction
  // of FullPinBytes — dominated by worst-case update buffers — would fit
  // every partition at observed costs and nothing would ever migrate.
  uint64_t budget =
      ginfo.num_vertices * sizeof(SsspAlgorithm::VertexState) * budget_pct / 100;

  MigrationPoint baseline =
      RunSsspAt(grid, ginfo, config, budget, 0, "full re-plan (hysteresis 0)");
  // Hysteresis 1 migrates on the first disagreeing plan — the same
  // decisions as the full re-plan, only applied at partition boundaries —
  // so it is shown for reference; the strict migration reduction is the
  // k >= 2 damping's claim.
  std::vector<MigrationPoint> incremental;
  for (uint32_t k = 1; k <= hysteresis; ++k) {
    incremental.push_back(
        RunSsspAt(grid, ginfo, config, budget, k, "delta, hysteresis " + std::to_string(k)));
  }

  std::vector<float> mem_dist;
  {
    InMemoryConfig mconfig;
    mconfig.threads = threads;
    InMemoryEngine<SsspAlgorithm> mem(mconfig, grid, ginfo.num_vertices);
    mem_dist = RunSssp(mem, 0).dist;
  }

  Table table({"Re-plan mode", "Iters", "Re-plans", "Promote", "Evict", "Migrated KB",
               "vs full re-plan"});
  auto add_row = [&table, &baseline](const MigrationPoint& p) {
    table.AddRow({p.label, std::to_string(p.iterations), std::to_string(p.replans),
                  std::to_string(p.promotions), std::to_string(p.evictions),
                  std::to_string(p.migration_bytes >> 10),
                  baseline.migration_bytes > 0
                      ? FormatDouble(100.0 * static_cast<double>(p.migration_bytes) /
                                         static_cast<double>(baseline.migration_bytes),
                                     1) + "%"
                      : "-"});
  };
  add_row(baseline);
  for (const MigrationPoint& p : incremental) {
    add_row(p);
  }
  table.Print();

  if (baseline.dist != mem_dist) {
    std::printf("FAIL: full re-plan distances diverge from the in-memory engine\n");
    ok = false;
  }
  for (const MigrationPoint& p : incremental) {
    if (p.dist != baseline.dist) {
      std::printf("FAIL: %s distances diverge from the full re-plan baseline\n",
                  p.label.c_str());
      ok = false;
    }
  }
  if (baseline.migration_bytes == 0) {
    std::printf("FAIL: the baseline never migrated — no drift to measure\n");
    ok = false;
  }
  for (size_t i = 0; i < incremental.size(); ++i) {
    uint32_t k = static_cast<uint32_t>(i) + 1;
    const MigrationPoint& p = incremental[i];
    if (k >= 2 && p.migration_bytes >= baseline.migration_bytes) {
      std::printf("FAIL: %s migrated %llu bytes, not strictly below the full re-plan's %llu\n",
                  p.label.c_str(), static_cast<unsigned long long>(p.migration_bytes),
                  static_cast<unsigned long long>(baseline.migration_bytes));
      ok = false;
    }
  }

  // ---- Part B: pinned edge streams at full budget -------------------------
  uint32_t scale = static_cast<uint32_t>(opts.GetUint("scale", smoke ? 11 : 14));
  EdgeList rmat = MakeRmat(scale, smoke ? 8 : 16, true, seed + 1);
  GraphInfo rinfo = ScanEdges(rmat);
  std::printf("\npart B: bfs over rmat scale %u (%s vertices, %s edge records), "
              "full pin budget, --pin-edges\n",
              scale, HumanCount(rinfo.num_vertices).c_str(),
              HumanCount(rinfo.num_edges).c_str());

  SimDevice edge_dev("edges", DeviceProfile::Instant());
  SimDevice update_dev("updates", DeviceProfile::Instant());
  SimDevice vertex_dev("vertices", DeviceProfile::Instant());
  WriteEdgeFile(edge_dev, "fig31.input", rmat);
  HybridConfig bconfig = BaseConfig(threads, io_unit_bytes, partitions);
  bconfig.pin_edges = true;
  {
    // Probe the full pin cost (now including edge streams) over the same
    // input, then rebuild the measured engine with that budget.
    SimDevice probe_dev("probe", DeviceProfile::Instant());
    WriteEdgeFile(probe_dev, "fig31.input", rmat);
    HybridConfig pconfig = bconfig;
    pconfig.memory_budget_bytes = 0;
    HybridEngine<BfsAlgorithm> probe(pconfig, probe_dev, probe_dev, probe_dev,
                                     "fig31.input", rinfo);
    bconfig.memory_budget_bytes = probe.FullPinBytes();
  }
  HybridEngine<BfsAlgorithm> engine(bconfig, edge_dev, update_dev, vertex_dev,
                                    "fig31.input", rinfo);

  BfsAlgorithm algo(0);
  engine.InitVertices(algo);
  uint64_t reads_after_first = 0;
  uint64_t iterations = 0;
  while (engine.RunIteration(algo).updates_generated > 0) {
    if (++iterations == 1) {
      reads_after_first = edge_dev.stats().bytes_read;
    }
  }
  ++iterations;  // the terminal no-update iteration still scanned the edges
  engine.FinalizeStats();
  uint64_t final_reads = edge_dev.stats().bytes_read;
  const RunStats& stats = engine.stats();

  std::vector<uint32_t> hybrid_levels(rinfo.num_vertices);
  engine.VertexMap([&hybrid_levels](VertexId v, const BfsAlgorithm::VertexState& s) {
    hybrid_levels[v] = s.level;
  });
  std::vector<uint32_t> mem_levels;
  {
    InMemoryConfig mconfig;
    mconfig.threads = threads;
    InMemoryEngine<BfsAlgorithm> mem(mconfig, rmat, rinfo.num_vertices);
    mem_levels = RunBfs(mem, 0).levels;
  }

  std::printf("%llu iterations; edge-device reads: %s after iteration 1, %s at the end "
              "(%s served from the pinned cache, %s cached)\n",
              static_cast<unsigned long long>(iterations),
              HumanBytes(reads_after_first).c_str(), HumanBytes(final_reads).c_str(),
              HumanBytes(stats.edge_reads_avoided_bytes).c_str(),
              HumanBytes(stats.pinned_edge_bytes).c_str());

  if (iterations < 3) {
    std::printf("FAIL: run too short (%llu iterations) to observe cached scans\n",
                static_cast<unsigned long long>(iterations));
    ok = false;
  }
  if (final_reads != reads_after_first) {
    std::printf("FAIL: the edge device was read after iteration 1 (%llu -> %llu bytes)\n",
                static_cast<unsigned long long>(reads_after_first),
                static_cast<unsigned long long>(final_reads));
    ok = false;
  }
  if (stats.update_file_bytes != 0) {
    std::printf("FAIL: full budget still wrote update files\n");
    ok = false;
  }
  if (stats.edge_reads_avoided_bytes == 0) {
    std::printf("FAIL: no edge reads were served from the pinned cache\n");
    ok = false;
  }
  if (hybrid_levels != mem_levels) {
    std::printf("FAIL: hybrid levels diverge from the in-memory engine\n");
    ok = false;
  }

  std::printf("\nacceptance: identical results, migration bytes strictly below the full "
              "re-plan baseline, edge device silent after iteration 1 at full budget: %s\n",
              ok ? "yes" : "NO");

  BenchJson json(opts, "fig31");
  json.Exact("a.baseline.migration_bytes", static_cast<double>(baseline.migration_bytes));
  json.Exact("a.baseline.iterations", static_cast<double>(baseline.iterations));
  for (size_t i = 0; i < incremental.size(); ++i) {
    std::string mkey = "a.hysteresis_" + std::to_string(i + 1);
    json.Exact(mkey + ".migration_bytes",
               static_cast<double>(incremental[i].migration_bytes));
    json.Exact(mkey + ".promotions", static_cast<double>(incremental[i].promotions));
    json.Exact(mkey + ".evictions", static_cast<double>(incremental[i].evictions));
  }
  json.Exact("b.iterations", static_cast<double>(iterations));
  json.Exact("b.final_reads_minus_first", static_cast<double>(final_reads - reads_after_first));
  json.Exact("b.update_file_bytes", static_cast<double>(stats.update_file_bytes));
  json.Ratio("b.edge_reads_avoided_bytes",
             static_cast<double>(stats.edge_reads_avoided_bytes));
  json.Ratio("b.pinned_edge_bytes", static_cast<double>(stats.pinned_edge_bytes));
  json.Exact("acceptance", ok ? 1 : 0);
  if (!json.Write()) {
    return 1;
  }
  return ok ? 0 : 1;
}
