// Fig 18: sorting vs streaming. How long other systems spend merely
// *sorting* the edge list (quicksort / counting sort, single-threaded)
// versus X-Stream computing complete answers from the unsorted list
// (single-threaded, in-memory). Expectation: sorting scales worse with
// graph size; at the largest scale X-Stream finishes WCC, Pagerank, BFS and
// SpMV before either sort completes.
#include "algorithms/algorithms.h"
#include "baselines/sorters.h"
#include "bench_common.h"
#include "core/inmem_engine.h"

namespace xstream {
namespace {

template <typename Algo, typename Run>
double Stream(const EdgeList& edges, uint64_t n, Run&& run) {
  InMemoryConfig config;
  config.threads = 1;  // the sorts are single-threaded; so is X-Stream here
  InMemoryEngine<Algo> engine(config, edges, n);
  WallTimer timer;
  run(engine);
  return timer.Seconds() + engine.stats().setup_seconds;
}

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 18", "Sorting vs streaming (single thread)",
              "X-Stream completes whole computations in time comparable to (and "
              "at scale, less than) just sorting the edge list");

  uint32_t lo = static_cast<uint32_t>(opts.GetUint("min-scale", 12));
  uint32_t hi = static_cast<uint32_t>(opts.GetUint("max-scale", 16));

  Table table({"Scale", "quicksort (s)", "counting sort (s)", "WCC (s)", "Pagerank (s)",
               "BFS (s)", "SpMV (s)"});
  for (uint32_t scale = lo; scale <= hi; ++scale) {
    EdgeList edges = MakeRmat(scale, 16, true, 5);
    GraphInfo info = ScanEdges(edges);
    double quick = TimeQuickSort(edges).seconds;
    double counting = TimeCountingSort(edges, info.num_vertices).seconds;
    double wcc = Stream<WccAlgorithm>(edges, info.num_vertices, [](auto& e) { RunWcc(e); });
    double pr = Stream<PageRankAlgorithm>(edges, info.num_vertices,
                                          [](auto& e) { RunPageRank(e, 5); });
    double bfs = Stream<BfsAlgorithm>(edges, info.num_vertices, [](auto& e) { RunBfs(e, 0); });
    double spmv = Stream<SpmvAlgorithm>(edges, info.num_vertices, [](auto& e) { RunSpmv(e); });
    table.AddRow({std::to_string(scale), FormatDouble(quick, 3), FormatDouble(counting, 3),
                  FormatDouble(wcc, 3), FormatDouble(pr, 3), FormatDouble(bfs, 3),
                  FormatDouble(spmv, 3)});
  }
  table.Print();
  std::printf("\n");
  return 0;
}
