// Fig 12: (a) runtimes of the algorithm suite over the dataset stand-ins on
// memory / SSD / disk; (b) WCC iteration counts, runtime-to-streaming-time
// ratio, and wasted-edge percentage.
//
// Expectations from the paper: SSD runtimes ~half of disk (2x sequential
// bandwidth); traversal algorithms on the high-diameter stand-ins (dimacs*,
// yahoo-web*) blow up or don't finish (printed as ">cap" / "—"); the
// streaming ratio is ~1 out-of-core and 2-3 in-memory; wasted edges are
// substantial (50-98%).
#include <functional>
#include <optional>

#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "core/inmem_engine.h"
#include "core/ooc_engine.h"
#include "graph/datasets.h"

namespace xstream {
namespace {

constexpr uint64_t kTraversalCap = 2000;  // iteration cap for high-diameter runs

struct WccInfo {
  uint64_t iterations = 0;
  double ratio = 0.0;
  double wasted = 0.0;
};

struct MediumResult {
  std::vector<std::string> row;       // algorithm runtimes
  std::optional<WccInfo> wcc;         // Fig 12b info
};

// Runs the suite on fresh engines; `make` builds an engine for the requested
// algorithm type (in-memory or out-of-core).
template <typename MakeEngine>
MediumResult RunSuite(const DatasetSpec& spec, const EdgeList& raw, MakeEngine&& make,
                      bool skip_traversals) {
  MediumResult out;
  GraphInfo info = ScanEdges(raw);
  EdgeList sym = spec.directed ? Symmetrize(raw) : raw;
  // SCC input: directed graphs as-is; undirected scale-free graphs get a
  // random orientation (the paper "assigned a random edge direction to the
  // synthetic RMAT and Friendster graphs"); the symmetric high-diameter
  // stand-ins keep both directions (their strongly = weakly connected
  // structure mirrors dimacs-usa's near-symmetric road segments).
  EdgeList directed = spec.directed ? raw
                      : (spec.kind == DatasetKind::kScaleFree ? RandomOrientation(raw, 99)
                                                              : raw);
  EdgeList flagged = MakeSccEdgeList(directed);
  GraphInfo flagged_info = ScanEdges(flagged);

  auto runtime = [](const RunStats& stats) { return HumanDuration(stats.RuntimeSeconds()); };

  if (skip_traversals) {
    out.row.insert(out.row.end(), {"-", "-", "-", "-", "-"});
  } else {
    {
      auto engine = make.template operator()<WccAlgorithm>(sym, info.num_vertices, "wcc");
      WccResult r = RunWcc(*engine, kTraversalCap);
      out.row.push_back(runtime(r.stats));
      out.wcc = WccInfo{r.stats.iterations, r.stats.StreamingRatio(),
                        r.stats.WastedEdgePercent()};
    }
    {
      auto engine =
          make.template operator()<SccAlgorithm>(flagged, flagged_info.num_vertices, "scc");
      WallTimer t;
      RunScc(*engine);
      engine->FinalizeStats();
      RunStats stats = engine->stats();
      stats.compute_seconds = t.Seconds();
      out.row.push_back(runtime(stats));
    }
    {
      auto engine = make.template operator()<SsspAlgorithm>(raw, info.num_vertices, "sssp");
      SsspResult r = RunSssp(*engine, 0, kTraversalCap);
      out.row.push_back(runtime(r.stats));
    }
    {
      auto engine = make.template operator()<McstAlgorithm>(sym, info.num_vertices, "mcst");
      WallTimer t;
      RunMcst(*engine);
      engine->FinalizeStats();
      RunStats stats = engine->stats();
      stats.compute_seconds = t.Seconds();
      out.row.push_back(runtime(stats));
    }
    {
      auto engine = make.template operator()<MisAlgorithm>(sym, info.num_vertices, "mis");
      MisResult r = RunMis(*engine);
      out.row.push_back(runtime(r.stats));
    }
  }
  {
    auto engine =
        make.template operator()<ConductanceAlgorithm>(raw, info.num_vertices, "cond");
    ConductanceResult r = RunConductance(*engine);
    out.row.push_back(runtime(r.stats));
  }
  {
    auto engine = make.template operator()<SpmvAlgorithm>(raw, info.num_vertices, "spmv");
    SpmvResult r = RunSpmv(*engine);
    out.row.push_back(runtime(r.stats));
  }
  {
    auto engine = make.template operator()<PageRankAlgorithm>(raw, info.num_vertices, "pr");
    PageRankResult r = RunPageRank(*engine, 5);
    out.row.push_back(runtime(r.stats));
  }
  {
    auto engine = make.template operator()<BpAlgorithm>(raw, info.num_vertices, "bp");
    BpResult r = RunBp(*engine, 5);
    out.row.push_back(runtime(r.stats));
  }
  return out;
}

// In-memory engine factory.
struct MakeInMem {
  int threads;
  template <typename Algo>
  std::unique_ptr<InMemoryEngine<Algo>> operator()(const EdgeList& edges, uint64_t n,
                                                   const char*) const {
    InMemoryConfig config;
    config.threads = threads;
    return std::make_unique<InMemoryEngine<Algo>>(config, edges, n);
  }
};

// Out-of-core engine factory over a RAID-0 SimDevice pair.
struct MakeOoc {
  SimRaidPair* pair;
  int threads;
  uint64_t budget;

  template <typename Algo>
  std::unique_ptr<OutOfCoreEngine<Algo>> operator()(const EdgeList& edges, uint64_t n,
                                                    const char* prefix) const {
    std::string input = std::string("input.") + prefix;
    WriteEdgeFile(*pair->raid, input, edges);
    GraphInfo info = ScanEdges(edges);
    info.num_vertices = n;
    OutOfCoreConfig config;
    config.threads = threads;
    config.memory_budget_bytes = budget;
    config.io_unit_bytes = 256 << 10;  // scaled with the reduced graphs
    config.file_prefix = prefix;
    return std::make_unique<OutOfCoreEngine<Algo>>(config, *pair->raid, *pair->raid,
                                                   *pair->raid, input, info);
  }
};

}  // namespace
}  // namespace xstream

int main(int argc, char** argv) {
  using namespace xstream;
  Options opts(argc, argv);
  BenchHeader("Figure 12", "Algorithm suite across datasets and media",
              "ssd ~ half of disk runtime; high-diameter traversals blow up; "
              "streaming ratio ~1 out-of-core, 2-3 in memory; 50-98% wasted edges");

  int threads = static_cast<int>(opts.GetInt("threads", NumCores()));
  int shift = static_cast<int>(opts.GetInt("scale-shift", 0));
  uint64_t budget = opts.GetUint("budget-mb", 8) << 20;

  std::vector<std::string> algo_headers = {"Dataset", "WCC",  "SCC", "SSSP", "MCST",
                                           "MIS",     "Cond.", "SpMV", "Pagerank", "BP"};
  Table table_a(algo_headers);
  Table table_b({"Dataset", "# iters", "ratio", "wasted %"});

  auto add_wcc_row = [&table_b](const std::string& name, const MediumResult& r) {
    if (r.wcc.has_value()) {
      table_b.AddRow({name, std::to_string(r.wcc->iterations), FormatDouble(r.wcc->ratio, 2),
                      FormatDouble(r.wcc->wasted, 0)});
    } else {
      table_b.AddRow({name, "-", "-", "-"});
    }
  };

  // ---- In-memory datasets.
  table_a.AddRow({"-- memory --"});
  for (const DatasetSpec& spec : InMemoryDatasets()) {
    EdgeList raw = GenerateDataset(spec, shift);
    MakeInMem make{threads};
    MediumResult r = RunSuite(spec, raw, make, /*skip_traversals=*/false);
    std::vector<std::string> row{spec.name};
    row.insert(row.end(), r.row.begin(), r.row.end());
    table_a.AddRow(row);
    add_wcc_row(spec.name + " (mem)", r);
  }

  // ---- Out-of-core datasets on SSD and disk models.
  for (const char* medium : {"ssd", "disk"}) {
    table_a.AddRow({std::string("-- ") + medium + " --"});
    DeviceProfile profile =
        std::string(medium) == "ssd" ? DeviceProfile::Ssd() : DeviceProfile::Hdd();
    for (const DatasetSpec& spec : OutOfCoreDatasets()) {
      if (spec.kind == DatasetKind::kBipartite) {
        continue;  // Netflix appears in Fig 22 (ALS), not Fig 12
      }
      bool yahoo = spec.kind == DatasetKind::kChained;
      if (yahoo && std::string(medium) == "ssd") {
        continue;  // "The yahoo-web graph did not fit onto our SSD"
      }
      EdgeList raw = GenerateDataset(spec, shift);
      SimRaidPair pair = SimRaidPair::Make(medium, profile);
      MakeOoc make{&pair, threads, budget};
      MediumResult r = RunSuite(spec, raw, make, /*skip_traversals=*/yahoo);
      std::vector<std::string> row{spec.name};
      row.insert(row.end(), r.row.begin(), r.row.end());
      table_a.AddRow(row);
      add_wcc_row(spec.name + " (" + medium + ")", r);
    }
  }

  std::printf("(a) Runtimes (simulated device time for ssd/disk rows)\n");
  table_a.Print();
  std::printf("\n(b) WCC iterations / runtime-to-streaming ratio / wasted edges\n");
  table_b.Print();
  std::printf("(traversal iteration cap: %llu)\n\n",
              static_cast<unsigned long long>(kTraversalCap));
  return 0;
}
