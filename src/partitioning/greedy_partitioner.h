// One-pass greedy streaming partitioner (LDG/Fennel family).
//
// Classic LDG and Fennel stream *vertices with adjacency lists* and place
// each vertex where it has the most neighbors, discounted by partition load.
// X-Stream's input is an unordered *edge* stream, so this is the edge-stream
// adaptation with the same two ingredients — follow your neighbors, respect
// a load cap:
//
//   for each edge (u, v):
//     both endpoints placed      -> nothing
//     one placed (say u in p)    -> place v in p if load[p] < cap,
//                                   else in the least-loaded partition
//     neither placed             -> place both in the least-loaded partition
//                                   (seeding a new cluster)
//
// cap = (1 + balance_slack) * ceil(n/k). One pass, O(V) state, no sorting.
// Vertices that never appear in an edge are placed least-loaded at the end,
// which also restores balance. Deterministic in the stream order (ties break
// toward the lowest partition id).
#ifndef XSTREAM_PARTITIONING_GREEDY_PARTITIONER_H_
#define XSTREAM_PARTITIONING_GREEDY_PARTITIONER_H_

#include "partitioning/partitioner.h"

namespace xstream {

class GreedyStreamingPartitioner : public Partitioner {
 public:
  explicit GreedyStreamingPartitioner(const PartitionerOptions& options = {})
      : options_(options) {}

  const char* name() const override { return "greedy"; }
  uint32_t num_passes() const override { return 1; }

  VertexMapping Partition(const EdgeStream& stream, uint64_t num_vertices,
                          uint32_t num_partitions) override;

 private:
  PartitionerOptions options_;
};

}  // namespace xstream

#endif  // XSTREAM_PARTITIONING_GREEDY_PARTITIONER_H_
