// Seeded hash assignment: the classic zero-state streaming baseline.
//
// Destroys whatever locality the vertex numbering had (useful as a
// worst-case control in the fig27 bench) but gives near-perfect expected
// balance and needs no edge pass. Deterministic in (seed, vertex id).
#ifndef XSTREAM_PARTITIONING_HASH_PARTITIONER_H_
#define XSTREAM_PARTITIONING_HASH_PARTITIONER_H_

#include "partitioning/partitioner.h"
#include "util/rng.h"

namespace xstream {

class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(const PartitionerOptions& options = {}) : seed_(options.seed) {}

  const char* name() const override { return "hash"; }
  uint32_t num_passes() const override { return 0; }

  VertexMapping Partition(const EdgeStream& /*stream*/, uint64_t num_vertices,
                          uint32_t num_partitions) override {
    std::vector<uint32_t> assignment(num_vertices);
    for (uint64_t v = 0; v < num_vertices; ++v) {
      assignment[v] = static_cast<uint32_t>(SplitMix64(seed_ ^ (v * 0x9e3779b97f4a7c15ULL)) %
                                            num_partitions);
    }
    return FinalizeMapping(std::move(assignment), num_partitions);
  }

 private:
  uint64_t seed_;
};

}  // namespace xstream

#endif  // XSTREAM_PARTITIONING_HASH_PARTITIONER_H_
