// Partition-quality metrics: edge cut, replication factor, load balance.
//
// Evaluated with a single sequential pass over the edge stream and O(V)
// state, so quality can be measured over on-device edge files through the
// semi-streaming engine: PartitionQualityPass structurally satisfies the
// SemiStreamingAlgorithm concept of core/semi_streaming.h (Init / BeginPass
// / Edge / EndPass) and can be handed to RunSemiStreaming directly.
#ifndef XSTREAM_PARTITIONING_QUALITY_H_
#define XSTREAM_PARTITIONING_QUALITY_H_

#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "graph/types.h"

namespace xstream {

struct PartitionQuality {
  uint64_t edges = 0;      // edge records streamed
  uint64_t cut_edges = 0;  // endpoints in different partitions

  // Fraction of edges whose update must cross partitions — the direct proxy
  // for scatter->gather update-file traffic in the out-of-core engine.
  double CutFraction() const {
    return edges > 0 ? static_cast<double>(cut_edges) / static_cast<double>(edges) : 0.0;
  }

  // Average number of distinct partitions referencing each edge-touched
  // vertex (its home plus every partition whose edge files reach it); 1.0 is
  // perfect locality, num_partitions the worst case. With more than 64
  // partitions the per-vertex presence sets are folded onto 64 bits, making
  // the reported value a lower bound.
  double replication_factor = 1.0;

  // Largest partition divided by the ideal (n/k vertices, m/k edges-by-src).
  // 1.0 is perfect balance.
  double vertex_balance = 1.0;
  double edge_balance = 1.0;
};

// One-pass streaming evaluator; also a semi-streaming algorithm.
class PartitionQualityPass {
 public:
  explicit PartitionQualityPass(PartitionLayout layout);

  void Init(uint64_t num_vertices);
  void BeginPass(uint32_t pass);
  void Edge(const struct Edge& e);
  bool EndPass(uint32_t pass);  // single pass suffices

  PartitionQuality Result() const;

 private:
  PartitionLayout layout_;
  std::vector<uint64_t> presence_;  // per-vertex partition bitmask (mod 64)
  std::vector<uint64_t> edge_load_;  // edges by source partition
  uint64_t edges_ = 0;
  uint64_t cut_ = 0;
};

// Convenience: evaluate an in-memory edge list against a layout.
PartitionQuality EvaluatePartitionQuality(const PartitionLayout& layout, const EdgeList& edges);

}  // namespace xstream

#endif  // XSTREAM_PARTITIONING_QUALITY_H_
