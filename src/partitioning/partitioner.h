// Pluggable streaming partitioners.
//
// X-Stream §2.2 fixes the vertex->partition assignment to equal contiguous
// ranges: cheap, but oblivious to locality, so on power-law graphs most
// updates cross partitions and the scatter->gather traffic (update files in
// the out-of-core engine) is near worst case. Streaming partitioners from
// the edge-partitioning literature (LDG/Fennel one-pass greedy; 2PS-style
// two-phase clustering + assignment) cut that traffic at ingest time with
// O(V) state and one or two sequential passes over the edge stream — the
// same discipline as X-Stream's own shuffle pass, so no sorting is ever
// introduced.
//
// A Partitioner consumes a replayable edge stream and produces a
// VertexMapping (core/partition.h): the assignment plus the contiguous
// relabeling that keeps per-partition vertex-state slicing working in the
// engines. Every partitioner is deterministic given (stream order, seed).
#ifndef XSTREAM_PARTITIONING_PARTITIONER_H_
#define XSTREAM_PARTITIONING_PARTITIONER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/partition.h"
#include "graph/types.h"

namespace xstream {

class StorageDevice;

// A replayable edge stream: invoking it runs one full sequential pass,
// feeding every edge to the sink. Partitioners may replay it (two-phase
// partitioners run two passes); each pass is charged to engine setup.
using EdgeSink = std::function<void(const Edge&)>;
using EdgeStream = std::function<void(const EdgeSink&)>;

// One pass over an in-memory edge list.
EdgeStream MakeEdgeStream(const EdgeList& edges);

// One sequential read of a packed edge file on a storage device per pass.
EdgeStream MakeEdgeStream(StorageDevice& dev, const std::string& file, size_t io_unit_bytes);

struct PartitionerOptions {
  uint64_t seed = 1;
  // Partitions may exceed the ideal ceil(n/k) vertex load by this fraction
  // before the greedy/two-phase assignment falls back to the least-loaded
  // partition (the usual streaming-partitioning balance slack).
  double balance_slack = 0.05;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual const char* name() const = 0;
  // Sequential passes Partition() makes over the stream (0 for partitioners
  // that never look at edges).
  virtual uint32_t num_passes() const = 0;

  // Builds the assignment of `num_vertices` vertices into `num_partitions`
  // partitions. The result always satisfies the VertexMapping invariants
  // (CheckMapping aborts otherwise).
  virtual VertexMapping Partition(const EdgeStream& stream, uint64_t num_vertices,
                                  uint32_t num_partitions) = 0;
};

// Factory for the shipped partitioners: "range", "hash", "greedy", "2ps".
// Aborts on unknown names (callers validate user input first via
// KnownPartitioners()).
std::unique_ptr<Partitioner> MakePartitioner(const std::string& name,
                                             const PartitionerOptions& options = {});

// The names MakePartitioner accepts, for CLI help and sweeps.
const std::vector<std::string>& KnownPartitioners();

// ---- Helpers shared by the implementations (exposed for tests).

// Completes a raw assignment into a full VertexMapping: builds the
// contiguous relabeling with a stable counting sort (ascending original id
// within each partition), so equal assignments always yield equal mappings.
VertexMapping FinalizeMapping(std::vector<uint32_t> partition_of, uint32_t num_partitions);

// Aborts unless `m` satisfies every VertexMapping invariant (disjoint,
// exhaustive, inverse permutations, consistent boundaries).
void CheckMapping(const VertexMapping& m);

// The load-balancing policy shared by the greedy and two-phase assignment
// phases: fall-back target (ties break to the lowest partition id) and the
// per-partition vertex cap derived from the balance slack.
uint32_t LeastLoadedPartition(const std::vector<uint64_t>& load);
uint64_t BalanceCap(uint64_t num_vertices, uint32_t num_partitions, double balance_slack);

}  // namespace xstream

#endif  // XSTREAM_PARTITIONING_PARTITIONER_H_
