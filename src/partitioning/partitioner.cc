#include "partitioning/partitioner.h"

#include <algorithm>
#include <numeric>

#include "partitioning/greedy_partitioner.h"
#include "partitioning/hash_partitioner.h"
#include "partitioning/range_partitioner.h"
#include "partitioning/two_phase_partitioner.h"
#include "storage/device.h"
#include "storage/stream_io.h"
#include "util/logging.h"

namespace xstream {

EdgeStream MakeEdgeStream(const EdgeList& edges) {
  // The list must outlive the stream (engines pass their own input list).
  const EdgeList* list = &edges;
  return [list](const EdgeSink& sink) {
    for (const Edge& e : *list) {
      sink(e);
    }
  };
}

EdgeStream MakeEdgeStream(StorageDevice& dev, const std::string& file, size_t io_unit_bytes) {
  StorageDevice* device = &dev;
  size_t chunk =
      std::max<size_t>(sizeof(Edge), io_unit_bytes / sizeof(Edge) * sizeof(Edge));
  return [device, file, chunk](const EdgeSink& sink) {
    FileId f = device->Open(file);
    StreamReader reader(*device, f, chunk);
    for (auto bytes = reader.Next(); !bytes.empty(); bytes = reader.Next()) {
      XS_CHECK_EQ(bytes.size() % sizeof(Edge), 0u);
      const Edge* edges = reinterpret_cast<const Edge*>(bytes.data());
      uint64_t n = bytes.size() / sizeof(Edge);
      for (uint64_t i = 0; i < n; ++i) {
        sink(edges[i]);
      }
    }
  };
}

VertexMapping FinalizeMapping(std::vector<uint32_t> partition_of, uint32_t num_partitions) {
  XS_CHECK_GT(num_partitions, 0u);
  uint64_t n = partition_of.size();
  VertexMapping m;
  m.num_partitions = num_partitions;
  m.part_begin.assign(size_t{num_partitions} + 1, 0);
  for (uint64_t v = 0; v < n; ++v) {
    XS_CHECK_LT(partition_of[v], num_partitions);
    ++m.part_begin[partition_of[v] + 1];
  }
  std::partial_sum(m.part_begin.begin(), m.part_begin.end(), m.part_begin.begin());
  m.dense_of.resize(n);
  m.original_of.resize(n);
  std::vector<uint64_t> cursor(m.part_begin.begin(), m.part_begin.end() - 1);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t d = cursor[partition_of[v]]++;
    m.dense_of[v] = static_cast<VertexId>(d);
    m.original_of[d] = static_cast<VertexId>(v);
  }
  m.partition_of = std::move(partition_of);
  return m;
}

void CheckMapping(const VertexMapping& m) {
  uint64_t n = m.partition_of.size();
  XS_CHECK_GT(m.num_partitions, 0u);
  XS_CHECK_EQ(m.dense_of.size(), n);
  XS_CHECK_EQ(m.original_of.size(), n);
  XS_CHECK_EQ(m.part_begin.size(), size_t{m.num_partitions} + 1);
  XS_CHECK_EQ(m.part_begin.front(), 0u);
  XS_CHECK_EQ(m.part_begin.back(), n);
  for (uint32_t p = 0; p < m.num_partitions; ++p) {
    XS_CHECK_GE(m.part_begin[p + 1], m.part_begin[p]);
  }
  for (uint64_t v = 0; v < n; ++v) {
    uint32_t p = m.partition_of[v];
    XS_CHECK_LT(p, m.num_partitions);
    uint64_t d = m.dense_of[v];
    XS_CHECK_LT(d, n);
    XS_CHECK_EQ(m.original_of[d], v) << "dense_of/original_of are not inverses at " << v;
    XS_CHECK_GE(d, m.part_begin[p]);
    XS_CHECK_LT(d, m.part_begin[p + 1])
        << "dense slot of vertex " << v << " lies outside its partition's range";
  }
}

uint32_t LeastLoadedPartition(const std::vector<uint64_t>& load) {
  uint32_t best = 0;
  for (uint32_t p = 1; p < load.size(); ++p) {
    if (load[p] < load[best]) {
      best = p;
    }
  }
  return best;
}

uint64_t BalanceCap(uint64_t num_vertices, uint32_t num_partitions, double balance_slack) {
  uint64_t ideal = (num_vertices + num_partitions - 1) / std::max(1u, num_partitions);
  return std::max<uint64_t>(
      ideal, static_cast<uint64_t>(static_cast<double>(ideal) *
                                   (1.0 + std::max(0.0, balance_slack))));
}

std::unique_ptr<Partitioner> MakePartitioner(const std::string& name,
                                             const PartitionerOptions& options) {
  if (name == "range") {
    return std::make_unique<RangePartitioner>();
  }
  if (name == "hash") {
    return std::make_unique<HashPartitioner>(options);
  }
  if (name == "greedy") {
    return std::make_unique<GreedyStreamingPartitioner>(options);
  }
  if (name == "2ps") {
    return std::make_unique<TwoPhasePartitioner>(options);
  }
  XS_CHECK(false) << "unknown partitioner '" << name << "' (want range|hash|greedy|2ps)";
  return nullptr;
}

const std::vector<std::string>& KnownPartitioners() {
  static const std::vector<std::string> kNames = {"range", "hash", "greedy", "2ps"};
  return kNames;
}

}  // namespace xstream
