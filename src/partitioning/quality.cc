#include "partitioning/quality.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"

namespace xstream {

PartitionQualityPass::PartitionQualityPass(PartitionLayout layout)
    : layout_(std::move(layout)) {
  XS_CHECK_GT(layout_.num_partitions(), 0u);
}

void PartitionQualityPass::Init(uint64_t num_vertices) {
  XS_CHECK_EQ(num_vertices, layout_.num_vertices());
  presence_.assign(num_vertices, 0);
  edge_load_.assign(layout_.num_partitions(), 0);
  edges_ = 0;
  cut_ = 0;
}

void PartitionQualityPass::BeginPass(uint32_t) {}

void PartitionQualityPass::Edge(const struct Edge& e) {
  ++edges_;
  uint32_t ps = layout_.PartitionOf(e.src);
  uint32_t pd = layout_.PartitionOf(e.dst);
  ++edge_load_[ps];
  cut_ += ps != pd ? 1 : 0;
  // The edge record lives in ps's edge file (X-Stream shuffles by source);
  // its update is delivered to pd. So src is referenced only at home, while
  // dst is referenced at home and wherever the edge is stored.
  presence_[e.src] |= uint64_t{1} << (ps % 64);
  presence_[e.dst] |= (uint64_t{1} << (pd % 64)) | (uint64_t{1} << (ps % 64));
}

bool PartitionQualityPass::EndPass(uint32_t) { return true; }

PartitionQuality PartitionQualityPass::Result() const {
  PartitionQuality q;
  q.edges = edges_;
  q.cut_edges = cut_;

  uint64_t touched = 0;
  uint64_t replicas = 0;
  for (uint64_t mask : presence_) {
    if (mask != 0) {
      ++touched;
      replicas += static_cast<uint64_t>(std::popcount(mask));
    }
  }
  q.replication_factor =
      touched > 0 ? static_cast<double>(replicas) / static_cast<double>(touched) : 1.0;

  uint32_t k = layout_.num_partitions();
  uint64_t max_vertices = 0;
  for (uint32_t p = 0; p < k; ++p) {
    max_vertices = std::max(max_vertices, layout_.Size(p));
  }
  double ideal_vertices =
      static_cast<double>(layout_.num_vertices()) / static_cast<double>(k);
  q.vertex_balance =
      ideal_vertices > 0 ? static_cast<double>(max_vertices) / ideal_vertices : 1.0;

  uint64_t max_edges = *std::max_element(edge_load_.begin(), edge_load_.end());
  double ideal_edges = static_cast<double>(edges_) / static_cast<double>(k);
  q.edge_balance = ideal_edges > 0 ? static_cast<double>(max_edges) / ideal_edges : 1.0;
  return q;
}

PartitionQuality EvaluatePartitionQuality(const PartitionLayout& layout,
                                          const EdgeList& edges) {
  PartitionQualityPass pass(layout);
  pass.Init(layout.num_vertices());
  pass.BeginPass(0);
  for (const Edge& e : edges) {
    pass.Edge(e);
  }
  pass.EndPass(0);
  return pass.Result();
}

}  // namespace xstream
