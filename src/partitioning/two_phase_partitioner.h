// Two-phase streaming partitioner (2PS-style).
//
// Phase 1 (clustering pass): streaming community detection in the style of
// Hollocou et al., as used by 2PS ("High-Quality Edge Partitioning with
// Two-Phase Streaming"): every vertex starts as a singleton cluster; for
// each edge the endpoint in the lower-volume cluster migrates to the other
// endpoint's cluster, provided the target stays under a volume cap. One
// pass, O(V) state.
//
// Between the passes the discovered clusters are bin-packed onto partitions
// (largest cluster first onto the least-reserved partition), which fixes
// each cluster's *anchor* partition while keeping the expected loads even.
//
// Phase 2 (assignment pass): a second pass over the edge stream assigns
// vertices in stream order to their cluster's anchor, falling back to the
// least-loaded partition once the anchor hits the balance cap — so balance
// is enforced exactly and overflow spreads in stream order, as in 2PS's
// streamed assignment phase. Vertices absent from the stream are placed
// least-loaded at the end.
#ifndef XSTREAM_PARTITIONING_TWO_PHASE_PARTITIONER_H_
#define XSTREAM_PARTITIONING_TWO_PHASE_PARTITIONER_H_

#include "partitioning/partitioner.h"

namespace xstream {

class TwoPhasePartitioner : public Partitioner {
 public:
  explicit TwoPhasePartitioner(const PartitionerOptions& options = {}) : options_(options) {}

  const char* name() const override { return "2ps"; }
  uint32_t num_passes() const override { return 2; }

  VertexMapping Partition(const EdgeStream& stream, uint64_t num_vertices,
                          uint32_t num_partitions) override;

 private:
  PartitionerOptions options_;
};

}  // namespace xstream

#endif  // XSTREAM_PARTITIONING_TWO_PHASE_PARTITIONER_H_
