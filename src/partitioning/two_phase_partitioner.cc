#include "partitioning/two_phase_partitioner.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace xstream {
namespace {

constexpr uint32_t kUnassigned = UINT32_MAX;

// Volume floor for young clusters; without it the adaptive cap of the first
// few edges would freeze every vertex in its singleton cluster.
constexpr uint64_t kMinClusterVolume = 16;

}  // namespace

VertexMapping TwoPhasePartitioner::Partition(const EdgeStream& stream, uint64_t num_vertices,
                                             uint32_t num_partitions) {
  XS_CHECK_GT(num_partitions, 0u);

  // ---- Phase 1: streaming clustering. cluster ids live in vertex-id space
  // (every vertex starts as its own cluster); vol[c] is the degree volume of
  // cluster c among the edges seen so far; deg[v] the vertex's seen degree.
  std::vector<VertexId> cluster(num_vertices);
  std::iota(cluster.begin(), cluster.end(), 0);
  std::vector<uint64_t> vol(num_vertices, 0);
  std::vector<uint64_t> deg(num_vertices, 0);
  uint64_t edges_seen = 0;

  stream([&](const Edge& e) {
    if (e.src >= num_vertices || e.dst >= num_vertices || e.src == e.dst) {
      return;
    }
    ++edges_seen;
    ++deg[e.src];
    ++deg[e.dst];
    VertexId cu = cluster[e.src];
    VertexId cv = cluster[e.dst];
    ++vol[cu];
    ++vol[cv];
    if (cu == cv) {
      return;
    }
    // Degree-volume cap ~ 2m/k keeps any one cluster from outgrowing a
    // partition; it adapts as the stream reveals m.
    uint64_t cap_vol =
        std::max<uint64_t>(kMinClusterVolume, 2 * edges_seen / num_partitions);
    // The endpoint sitting in the lighter cluster migrates into the heavier
    // one (Hollocou-style), volume permitting.
    if (vol[cu] <= vol[cv]) {
      if (vol[cv] + deg[e.src] <= cap_vol) {
        vol[cu] -= deg[e.src];
        vol[cv] += deg[e.src];
        cluster[e.src] = cv;
      }
    } else {
      if (vol[cu] + deg[e.dst] <= cap_vol) {
        vol[cv] -= deg[e.dst];
        vol[cu] += deg[e.dst];
        cluster[e.dst] = cu;
      }
    }
  });

  // ---- Inter-phase: bin-pack clusters onto partitions, largest first onto
  // the least-reserved partition. This anchors every cluster while keeping
  // expected vertex loads even. (Sorting cluster *summaries* is O(C log C)
  // bookkeeping over in-memory state, not a sort of the edge stream.)
  std::vector<uint64_t> csize(num_vertices, 0);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    ++csize[cluster[v]];
  }
  std::vector<VertexId> order;
  order.reserve(num_vertices / 2);
  for (uint64_t c = 0; c < num_vertices; ++c) {
    if (csize[c] > 0) {
      order.push_back(static_cast<VertexId>(c));
    }
  }
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return csize[a] != csize[b] ? csize[a] > csize[b] : a < b;
  });
  std::vector<uint32_t> anchor(num_vertices, kUnassigned);
  std::vector<uint64_t> reserved(num_partitions, 0);
  for (VertexId c : order) {
    uint32_t p = LeastLoadedPartition(reserved);
    anchor[c] = p;
    reserved[p] += csize[c];
  }

  // ---- Phase 2: assignment pass over the edge stream. Vertices are placed
  // at their cluster's anchor in stream order; once the anchor hits the
  // balance cap, overflow spills to the least-loaded partition.
  std::vector<uint32_t> assignment(num_vertices, kUnassigned);
  std::vector<uint64_t> load(num_partitions, 0);
  uint64_t cap = BalanceCap(num_vertices, num_partitions, options_.balance_slack);

  auto place = [&](VertexId v) {
    if (assignment[v] != kUnassigned) {
      return;
    }
    uint32_t p = anchor[cluster[v]];
    if (p == kUnassigned || load[p] >= cap) {
      p = LeastLoadedPartition(load);
    }
    assignment[v] = p;
    ++load[p];
  };

  stream([&](const Edge& e) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return;
    }
    place(e.src);
    place(e.dst);
  });
  for (uint64_t v = 0; v < num_vertices; ++v) {
    place(static_cast<VertexId>(v));
  }
  return FinalizeMapping(std::move(assignment), num_partitions);
}

}  // namespace xstream
