#include "partitioning/greedy_partitioner.h"

#include "util/logging.h"

namespace xstream {
namespace {

constexpr uint32_t kUnassigned = UINT32_MAX;

}  // namespace

VertexMapping GreedyStreamingPartitioner::Partition(const EdgeStream& stream,
                                                    uint64_t num_vertices,
                                                    uint32_t num_partitions) {
  XS_CHECK_GT(num_partitions, 0u);
  std::vector<uint32_t> assignment(num_vertices, kUnassigned);
  std::vector<uint64_t> load(num_partitions, 0);
  uint64_t cap = BalanceCap(num_vertices, num_partitions, options_.balance_slack);

  auto place = [&](VertexId v, uint32_t preferred) {
    uint32_t p = preferred;
    if (p == kUnassigned || load[p] >= cap) {
      p = LeastLoadedPartition(load);
    }
    assignment[v] = p;
    ++load[p];
  };

  stream([&](const Edge& e) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return;  // defensive: partitioners must not trust raw inputs
    }
    uint32_t pu = assignment[e.src];
    uint32_t pv = assignment[e.dst];
    if (pu != kUnassigned && pv != kUnassigned) {
      return;
    }
    if (e.src == e.dst) {
      place(e.src, kUnassigned);
      return;
    }
    if (pu == kUnassigned && pv == kUnassigned) {
      // Seed a new cluster where there is room; the second endpoint follows
      // the first unless the seed partition just filled up.
      place(e.src, kUnassigned);
      place(e.dst, assignment[e.src]);
    } else if (pu == kUnassigned) {
      place(e.src, pv);
    } else {
      place(e.dst, pu);
    }
  });

  // Vertices never seen in an edge: pure balance filler.
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (assignment[v] == kUnassigned) {
      place(static_cast<VertexId>(v), kUnassigned);
    }
  }
  return FinalizeMapping(std::move(assignment), num_partitions);
}

}  // namespace xstream
