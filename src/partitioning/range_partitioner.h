// The paper's own assignment (§2.2) behind the Partitioner interface.
//
// Equal contiguous ranges; the relabeling is the identity, so an engine
// driven by this partitioner behaves bit-for-bit like the built-in range
// mode. Exists so benches and tests can sweep every strategy uniformly.
#ifndef XSTREAM_PARTITIONING_RANGE_PARTITIONER_H_
#define XSTREAM_PARTITIONING_RANGE_PARTITIONER_H_

#include "partitioning/partitioner.h"

namespace xstream {

class RangePartitioner : public Partitioner {
 public:
  const char* name() const override { return "range"; }
  uint32_t num_passes() const override { return 0; }

  VertexMapping Partition(const EdgeStream& /*stream*/, uint64_t num_vertices,
                          uint32_t num_partitions) override {
    PartitionLayout layout(num_vertices, num_partitions);
    std::vector<uint32_t> assignment(num_vertices);
    for (uint64_t v = 0; v < num_vertices; ++v) {
      assignment[v] = layout.PartitionOf(static_cast<VertexId>(v));
    }
    return FinalizeMapping(std::move(assignment), num_partitions);
  }
};

}  // namespace xstream

#endif  // XSTREAM_PARTITIONING_RANGE_PARTITIONER_H_
