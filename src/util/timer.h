// Wall-clock timers used for all runtime measurements in benches and engines.
#ifndef XSTREAM_UTIL_TIMER_H_
#define XSTREAM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xstream {

// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t Nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across several disjoint intervals, e.g. the total time a
// run spends inside streaming phases (used for the Fig 12b ratio).
class IntervalAccumulator {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_ += timer_.Seconds(); }
  double TotalSeconds() const { return total_; }
  void Clear() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

// RAII guard that adds the lifetime of the scope to an IntervalAccumulator.
class ScopedInterval {
 public:
  explicit ScopedInterval(IntervalAccumulator& acc) : acc_(acc) { acc_.Start(); }
  ~ScopedInterval() { acc_.Stop(); }

  ScopedInterval(const ScopedInterval&) = delete;
  ScopedInterval& operator=(const ScopedInterval&) = delete;

 private:
  IntervalAccumulator& acc_;
};

}  // namespace xstream

#endif  // XSTREAM_UTIL_TIMER_H_
