// Column-aligned ASCII table printer used by every bench binary to emit
// paper-style result tables.
#ifndef XSTREAM_UTIL_TABLE_H_
#define XSTREAM_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace xstream {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; missing cells render empty, extra cells are a bug.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header underline and two-space column gaps.
  std::string ToString() const;

  // Convenience: renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xstream

#endif  // XSTREAM_UTIL_TABLE_H_
