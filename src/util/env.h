// Host environment probes: core count, cache sizes, page size.
//
// The engines auto-size streaming partitions from "Fast Storage" capacity
// (paper §2.4): the CPU cache for the in-memory engine and main memory for
// the out-of-core engine. These probes supply defaults; every value can be
// overridden through EngineConfig for experiments like Fig 24.
#ifndef XSTREAM_UTIL_ENV_H_
#define XSTREAM_UTIL_ENV_H_

#include <cstddef>
#include <cstdint>

namespace xstream {

// Number of online cores.
int NumCores();

// Per-core private cache budget in bytes. Mirrors the paper's assumption that
// each core has exclusive use of a 2 MB L2 slice (§5.1); falls back to 2 MB
// when sysfs probing fails.
size_t PerCoreCacheBytes();

// Cacheline size (64 on every x86 we care about).
size_t CachelineBytes();

// Total physical memory in bytes (0 when unknown).
uint64_t PhysicalMemoryBytes();

// Small dense id for the calling thread, assigned on first use (0, 1, 2...).
// Shared by the log-line prefix ("t<N>") and the tracer's per-span tid, so a
// log line and a trace slice from the same thread carry the same number.
int DenseThreadId();

}  // namespace xstream

#endif  // XSTREAM_UTIL_ENV_H_
