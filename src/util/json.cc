#include "util/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace xstream {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, never a comma
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) {
      out_.push_back(',');
    }
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  XS_CHECK(!has_elem_.empty());
  has_elem_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  XS_CHECK(!has_elem_.empty());
  has_elem_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_.push_back('"');
  out_.append(Escape(key));
  out_.append("\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  out_.push_back('"');
  out_.append(Escape(v));
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_.append(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; null keeps the document valid and the hole visible.
    out_.append("null");
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_.append(json);
  return *this;
}

std::string JsonWriter::Escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (unsigned char c : v) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

const std::string& JsonValue::as_string() const {
  static const std::string kEmpty;
  return is_string() ? string_ : kEmpty;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  static const std::vector<JsonValue> kEmpty;
  return is_array() ? array_ : kEmpty;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  static const std::map<std::string, JsonValue> kEmpty;
  return is_object() ? object_ : kEmpty;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Number(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::Array(std::vector<JsonValue> v) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

// Recursive-descent parser over a string_view. Strict by construction: every
// deviation from RFC 8259 sets `error` with the byte offset where parsing
// stopped. Depth is capped so a few KB of '[' cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    bool ok = ParseValue(out, 0);
    if (ok) {
      SkipWs();
      if (pos_ != text_.size()) {
        ok = Fail("trailing characters after document");
      }
    }
    if (!ok && error != nullptr) {
      *error = "offset " + std::to_string(error_pos_) + ": " + error_;
    }
    return ok;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* reason) {
    // Keep the first (innermost) failure; callers unwind through Fail too.
    if (error_.empty()) {
      error_ = reason;
      error_pos_ = pos_;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case 'n':
        if (!Literal("null")) return false;
        *out = JsonValue::Null();
        return true;
      case 't':
        if (!Literal("true")) return false;
        *out = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!Literal("false")) return false;
        *out = JsonValue::Bool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::String(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> elems;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::Array(std::move(elems));
      return true;
    }
    while (true) {
      JsonValue elem;
      SkipWs();
      if (!ParseValue(&elem, depth + 1)) return false;
      elems.push_back(std::move(elem));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        return Fail("expected ',' or ']' in array");
      }
    }
    *out = JsonValue::Array(std::move(elems));
    return true;
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::Object(std::move(members));
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected string key in object");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members[std::move(key)] = std::move(value);  // last duplicate wins
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        return Fail("expected ',' or '}' in object");
      }
    }
    *out = JsonValue::Object(std::move(members));
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return true;
      if (c < 0x20) {
        --pos_;
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));  // UTF-8 bytes pass through
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the low half and combine.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          pos_ -= 1;
          return Fail("invalid escape");
      }
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: a lone 0 or a nonzero-led digit run (leading zeros are
    // invalid JSON).
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return Fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == frac_start) return Fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == exp_start) return Fail("digits required in exponent");
    }
    // The slice is validated above, so strtod consumes exactly this range.
    std::string digits(text_.substr(start, pos_ - start));
    *out = JsonValue::Number(std::strtod(digits.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
  size_t error_pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return JsonParser(text).Parse(out, error);
}

bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    XS_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    XS_LOG(Error) << "short write to " << path;
  }
  return ok;
}

}  // namespace xstream
