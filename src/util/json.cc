#include "util/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace xstream {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, never a comma
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) {
      out_.push_back(',');
    }
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  XS_CHECK(!has_elem_.empty());
  has_elem_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  XS_CHECK(!has_elem_.empty());
  has_elem_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_.push_back('"');
  out_.append(Escape(key));
  out_.append("\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  out_.push_back('"');
  out_.append(Escape(v));
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_.append(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; null keeps the document valid and the hole visible.
    out_.append("null");
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_.append(json);
  return *this;
}

std::string JsonWriter::Escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (unsigned char c : v) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    XS_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    XS_LOG(Error) << "short write to " << path;
  }
  return ok;
}

}  // namespace xstream
