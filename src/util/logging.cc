#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace xstream {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

// Serializes whole log lines so concurrent engine threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

LogLevel GetLogThreshold() { return g_threshold.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << LevelName(level) << " [" << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogThreshold()) {
    return;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "F [" << Basename(file) << ":" << line << "] check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal
}  // namespace xstream
