#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include "util/env.h"

namespace xstream {

namespace {

// Initial threshold from the XSTREAM_LOG environment variable: one of
// debug / info / warning / error (case-insensitive, first letter suffices)
// or the numeric level 0-3. Unset or unrecognized -> kInfo.
LogLevel ThresholdFromEnv() {
  const char* env = std::getenv("XSTREAM_LOG");
  if (env == nullptr || env[0] == '\0') {
    return LogLevel::kInfo;
  }
  switch (std::tolower(static_cast<unsigned char>(env[0]))) {
    case 'd':
    case '0':
      return LogLevel::kDebug;
    case 'i':
    case '1':
      return LogLevel::kInfo;
    case 'w':
    case '2':
      return LogLevel::kWarning;
    case 'e':
    case '3':
      return LogLevel::kError;
    default:
      return LogLevel::kInfo;
  }
}

std::atomic<LogLevel> g_threshold{ThresholdFromEnv()};

// "HH:MM:SS.mmm" local wall-clock timestamp for the line prefix.
void FormatTimestamp(char* buf, size_t len) {
  using namespace std::chrono;
  auto now = system_clock::now();
  std::time_t secs = system_clock::to_time_t(now);
  auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  std::snprintf(buf, len, "%02d:%02d:%02d.%03d", tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(ms.count()));
}

// Serializes whole log lines so concurrent engine threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

LogLevel GetLogThreshold() { return g_threshold.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  char ts[16];
  FormatTimestamp(ts, sizeof(ts));
  // The "t<N>" id matches the tracer's per-span tid (both come from
  // DenseThreadId), so log lines correlate with trace slices and the
  // per-thread counter shards.
  stream_ << LevelName(level) << " " << ts << " t" << DenseThreadId() << " [" << Basename(file)
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogThreshold()) {
    return;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  char ts[16];
  FormatTimestamp(ts, sizeof(ts));
  stream_ << "F " << ts << " t" << DenseThreadId() << " [" << Basename(file) << ":" << line
          << "] check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal
}  // namespace xstream
