// Minimal streaming JSON writer — the single JSON emitter shared by the
// metrics registry snapshot, the Chrome trace exporter, RunStats::ToJson and
// the bench --json=FILE mode. Writes compact, valid JSON with automatic
// comma placement; no reader/parser (nothing in the repo consumes JSON, it
// is an export format for Perfetto / bench_diff.py / future dashboards).
#ifndef XSTREAM_UTIL_JSON_H_
#define XSTREAM_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xstream {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }

  // Key + value in one call.
  template <typename T>
  JsonWriter& Field(std::string_view key, T v) {
    Key(key);
    return Value(v);
  }

  // Splices pre-serialized JSON in value position (e.g. a nested document
  // produced by another JsonWriter). The caller guarantees validity.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  // Escapes `v` per RFC 8259 (quotes, backslash, control characters).
  static std::string Escape(std::string_view v);

 private:
  void MaybeComma();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

// Writes `json` to `path` (with a trailing newline). Returns false and logs
// on I/O failure.
bool WriteJsonFile(const std::string& path, const std::string& json);

}  // namespace xstream

#endif  // XSTREAM_UTIL_JSON_H_
