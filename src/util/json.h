// Minimal JSON support: a streaming writer (the single JSON emitter shared
// by the metrics registry snapshot, the Chrome trace exporter,
// RunStats::ToJson and the bench --json=FILE mode) and a strict recursive-
// descent parser (ParseJson) that the serve daemon uses to decode request
// bodies. Both are dependency-free; the parser is strict RFC 8259 — no
// comments, no trailing commas, UTF-8 passed through verbatim — and depth-
// capped so hostile input cannot blow the stack.
#ifndef XSTREAM_UTIL_JSON_H_
#define XSTREAM_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xstream {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }

  // Key + value in one call.
  template <typename T>
  JsonWriter& Field(std::string_view key, T v) {
    Key(key);
    return Value(v);
  }

  // Splices pre-serialized JSON in value position (e.g. a nested document
  // produced by another JsonWriter). The caller guarantees validity.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  // Escapes `v` per RFC 8259 (quotes, backslash, control characters).
  static std::string Escape(std::string_view v);

 private:
  void MaybeComma();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

// Writes `json` to `path` (with a trailing newline). Returns false and logs
// on I/O failure.
bool WriteJsonFile(const std::string& path, const std::string& json);

// One parsed JSON value. Objects keep their members in a sorted map (the
// consumers look fields up by name; source order never matters here).
// Numbers are stored as double — the writer emits doubles with %.17g, so a
// write → parse round trip is bit-exact, which the serve tests rely on.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors return the natural default (false / 0.0 / "" / empty)
  // when the value holds a different type — callers validate with is_*()
  // first where the distinction matters.
  bool as_bool() const { return is_bool() && bool_; }
  double as_double() const { return is_number() ? number_ : 0.0; }
  int64_t as_int() const { return static_cast<int64_t>(as_double()); }
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  // Object member lookup; returns nullptr when this is not an object or the
  // key is absent. `value.Get("params")` chains naturally with `?:` guards.
  const JsonValue* Get(const std::string& key) const;

  // Construction (used by the parser; handy for tests).
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array(std::vector<JsonValue> v);
  static JsonValue Object(std::map<std::string, JsonValue> v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Strict RFC 8259 parse of `text` (one document, trailing whitespace only).
// On success returns true and fills `out`; on failure returns false and
// fills `error` (when non-null) with a byte offset + reason. Nesting deeper
// than 64 containers is rejected.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error = nullptr);

}  // namespace xstream

#endif  // XSTREAM_UTIL_JSON_H_
