#include "util/format.h"

#include <cmath>
#include <cstdio>

namespace xstream {

std::string HumanDuration(double seconds) {
  char buf[64];
  if (seconds < 0) {
    return "-";
  }
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    return buf;
  }
  uint64_t total = static_cast<uint64_t>(std::llround(seconds));
  uint64_t h = total / 3600;
  uint64_t m = (total % 3600) / 60;
  uint64_t s = total % 60;
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lluh %llum %llus", static_cast<unsigned long long>(h),
                  static_cast<unsigned long long>(m), static_cast<unsigned long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%llum %llus", static_cast<unsigned long long>(m),
                  static_cast<unsigned long long>(s));
  }
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  constexpr uint64_t kK = 1024;
  if (bytes < kK) {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  } else if (bytes < kK * kK) {
    std::snprintf(buf, sizeof(buf), "%.4gK", static_cast<double>(bytes) / kK);
  } else if (bytes < kK * kK * kK) {
    std::snprintf(buf, sizeof(buf), "%.4gM", static_cast<double>(bytes) / (kK * kK));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4gG", static_cast<double>(bytes) / (kK * kK * kK));
  }
  return buf;
}

std::string HumanCount(uint64_t count) {
  char buf[64];
  if (count >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f billion", static_cast<double>(count) / 1e9);
    return buf;
  }
  if (count >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f million", static_cast<double>(count) / 1e6);
    return buf;
  }
  // Thousands separators for smaller counts.
  std::string digits = std::to_string(count);
  std::string out;
  int pos = 0;
  for (int i = static_cast<int>(digits.size()) - 1; i >= 0; --i) {
    out.insert(out.begin(), digits[static_cast<size_t>(i)]);
    if (++pos % 3 == 0 && i != 0) {
      out.insert(out.begin(), ',');
    }
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace xstream
