// Human-readable formatting helpers for bench output, matching the styles the
// paper uses ("1h 17m 18s", "16MB", "25658 MB/s").
#ifndef XSTREAM_UTIL_FORMAT_H_
#define XSTREAM_UTIL_FORMAT_H_

#include <cstdint>
#include <string>

namespace xstream {

// "38m 38s", "1h 8m 12s", "0.61s" — the paper's Fig 12a duration style.
std::string HumanDuration(double seconds);

// "512K", "16M", "3.2G" with binary units.
std::string HumanBytes(uint64_t bytes);

// "1.4 billion", "68,993,773" style counts.
std::string HumanCount(uint64_t count);

// Fixed-precision double, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int precision);

}  // namespace xstream

#endif  // XSTREAM_UTIL_FORMAT_H_
