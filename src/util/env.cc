#include "util/env.h"

#include <unistd.h>

#include <atomic>
#include <thread>

namespace xstream {

namespace {
std::atomic<int> g_next_thread_id{0};
}  // namespace

int DenseThreadId() {
  thread_local const int id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int NumCores() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

size_t PerCoreCacheBytes() {
#ifdef _SC_LEVEL2_CACHE_SIZE
  long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) {
    return static_cast<size_t>(l2);
  }
#endif
  return 2 * 1024 * 1024;  // Paper testbed: 2MB shared L2 per core pair.
}

size_t CachelineBytes() {
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  long line = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (line > 0) {
    return static_cast<size_t>(line);
  }
#endif
  return 64;
}

uint64_t PhysicalMemoryBytes() {
  long pages = sysconf(_SC_PHYS_PAGES);
  long page_size = sysconf(_SC_PAGE_SIZE);
  if (pages <= 0 || page_size <= 0) {
    return 0;
  }
  return static_cast<uint64_t>(pages) * static_cast<uint64_t>(page_size);
}

}  // namespace xstream
