// Small statistics accumulators for benches (mean, stddev, confidence
// intervals — the paper reports 99% CIs in Figs 19/20/22).
#ifndef XSTREAM_UTIL_STATS_H_
#define XSTREAM_UTIL_STATS_H_

#include <cmath>
#include <cstdint>

namespace xstream {

class RunningStat {
 public:
  void Add(double x) {
    // Welford's online algorithm.
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) {
      min_ = x;
    }
    if (n_ == 1 || x > max_) {
      max_ = x;
    }
  }

  uint64_t Count() const { return n_; }
  double Mean() const { return mean_; }
  double Min() const { return min_; }
  double Max() const { return max_; }

  double Variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }
  double StdDev() const { return std::sqrt(Variance()); }

  // Half-width of the 99% confidence interval, using the normal
  // approximation (z = 2.576). Adequate for the >= 3 repetitions benches use.
  double Ci99() const {
    if (n_ < 2) {
      return 0.0;
    }
    return 2.576 * StdDev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace xstream

#endif  // XSTREAM_UTIL_STATS_H_
