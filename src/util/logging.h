// Minimal logging and invariant-checking support.
//
// The library is exception-free in its hot paths; programmer errors and
// unrecoverable environment failures abort via XS_CHECK, mirroring the
// assertion style common in systems code.
#ifndef XSTREAM_UTIL_LOGGING_H_
#define XSTREAM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace xstream {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global threshold below which messages are suppressed. Initialized from
// the XSTREAM_LOG environment variable (debug/info/warning/error or 0-3);
// defaults to kInfo. Set to kDebug for verbose engine tracing. Lines carry
// a "L HH:MM:SS.mmm t<tid> [file:line]" prefix; the tid is the same dense
// per-thread id the tracer stamps on spans (util/env.h DenseThreadId), so
// log lines correlate with trace slices.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

// Stream-style log sink that emits one line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define XS_LOG(level)                                                                  \
  ::xstream::internal::LogMessage(::xstream::LogLevel::k##level, __FILE__, __LINE__)   \
      .stream()

// Aborts with a message when `cond` is false. Enabled in all build modes:
// the costs are negligible next to streaming I/O, and silent corruption in a
// storage engine is far worse than an abort.
#define XS_CHECK(cond)                                                    \
  if (!(cond))                                                            \
  ::xstream::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define XS_CHECK_EQ(a, b) XS_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define XS_CHECK_NE(a, b) XS_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define XS_CHECK_LT(a, b) XS_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define XS_CHECK_LE(a, b) XS_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define XS_CHECK_GT(a, b) XS_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define XS_CHECK_GE(a, b) XS_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

}  // namespace xstream

#endif  // XSTREAM_UTIL_LOGGING_H_
