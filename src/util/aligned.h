// Aligned, statically-sized byte buffers.
//
// The paper's stream buffers are "statically sized and statically allocated"
// (§3.1) to avoid dynamic allocation in the streaming loop, and direct I/O
// requires sector-aligned memory (§3.3). AlignedBuffer provides both: one
// allocation, aligned to kIoAlignment, never resized.
#ifndef XSTREAM_UTIL_ALIGNED_H_
#define XSTREAM_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

namespace xstream {

// Alignment that satisfies O_DIRECT on every mainstream Linux filesystem and
// is a multiple of the cacheline size.
inline constexpr size_t kIoAlignment = 4096;

class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  // Allocates `size` bytes aligned to `alignment`. Aborts on OOM: stream
  // buffer sizes are computed up front from the memory budget, so failure
  // here is a configuration bug, not a recoverable condition.
  explicit AlignedBuffer(size_t size, size_t alignment = kIoAlignment);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<std::byte> span() { return {data_, size_}; }
  std::span<const std::byte> span() const { return {data_, size_}; }

 private:
  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

// Recycles AlignedBuffers by exact (rounded) size. Device backends that need
// short-lived sector-aligned staging — the io_uring registered-buffer arena,
// O_DIRECT bounce buffers — Get() from the shared pool instead of hitting
// aligned_alloc inside the streaming loop; Put() returns the allocation for
// the next user. The free list is capped in bytes so tests that create and
// destroy many devices don't hold the high-water mark forever.
class AlignedBufferPool {
 public:
  explicit AlignedBufferPool(uint64_t cap_bytes = uint64_t{64} << 20) : cap_bytes_(cap_bytes) {}

  // Process-wide pool shared by all devices.
  static AlignedBufferPool& Shared();

  // Returns a buffer of exactly `size` bytes (rounded up to kIoAlignment
  // internally, like AlignedBuffer itself) — recycled when one of this size
  // is free, freshly allocated otherwise.
  AlignedBuffer Get(size_t size);
  // Returns a buffer to the free list; frees it when the pool is at cap.
  void Put(AlignedBuffer buf);

  uint64_t pooled_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  uint64_t cap_bytes_;
  mutable std::mutex mu_;
  std::map<size_t, std::vector<AlignedBuffer>> free_;
  uint64_t pooled_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace xstream

#endif  // XSTREAM_UTIL_ALIGNED_H_
