// Aligned, statically-sized byte buffers.
//
// The paper's stream buffers are "statically sized and statically allocated"
// (§3.1) to avoid dynamic allocation in the streaming loop, and direct I/O
// requires sector-aligned memory (§3.3). AlignedBuffer provides both: one
// allocation, aligned to kIoAlignment, never resized.
#ifndef XSTREAM_UTIL_ALIGNED_H_
#define XSTREAM_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace xstream {

// Alignment that satisfies O_DIRECT on every mainstream Linux filesystem and
// is a multiple of the cacheline size.
inline constexpr size_t kIoAlignment = 4096;

class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  // Allocates `size` bytes aligned to `alignment`. Aborts on OOM: stream
  // buffer sizes are computed up front from the memory budget, so failure
  // here is a configuration bug, not a recoverable condition.
  explicit AlignedBuffer(size_t size, size_t alignment = kIoAlignment);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<std::byte> span() { return {data_, size_}; }
  std::span<const std::byte> span() const { return {data_, size_}; }

 private:
  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace xstream

#endif  // XSTREAM_UTIL_ALIGNED_H_
