#include "util/options.h"

#include <cstdlib>

#include "util/logging.h"

namespace xstream {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    XS_CHECK(arg.rfind("--", 0) == 0) << "malformed option (expected --key=value): " << arg;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "1";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Options::GetString(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Options::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 0);
}

uint64_t Options::GetUint(const std::string& key, uint64_t def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
}

double Options::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Options::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

bool Options::Has(const std::string& key) const { return values_.count(key) > 0; }

void Options::Set(const std::string& key, const std::string& value) { values_[key] = value; }

}  // namespace xstream
