// Deterministic pseudo-random number generation.
//
// All randomness in the library (graph generation, edge weights, MIS
// priorities, conductance side assignment) flows through these generators so
// that every run is reproducible from a single seed.
#ifndef XSTREAM_UTIL_RNG_H_
#define XSTREAM_UTIL_RNG_H_

#include <cstdint>

namespace xstream {

// SplitMix64: used to expand a single seed into independent stream seeds and
// as a stateless hash of (seed, index) pairs.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256**: fast, high-quality generator for bulk random streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // Seed the state via SplitMix64 as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x = SplitMix64(x);
      s = x;
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform float in [0, 1), matching the paper's random edge weights.
  float NextFloat() {
    return static_cast<float>(Next() >> 40) * (1.0f / static_cast<float>(1ULL << 24));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / static_cast<double>(1ULL << 53));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace xstream

#endif  // XSTREAM_UTIL_RNG_H_
