// Tiny `--key=value` command-line option parser for bench and example
// binaries. No external dependency, no registration: callers query by name
// with a default, so every binary runs with zero arguments (required for the
// bench sweep driver) and can be scaled up explicitly.
#ifndef XSTREAM_UTIL_OPTIONS_H_
#define XSTREAM_UTIL_OPTIONS_H_

#include <cstdint>
#include <map>
#include <string>

namespace xstream {

class Options {
 public:
  Options() = default;
  // Parses argv of the form --key=value or --flag (implicit value "1").
  // Aborts on malformed arguments so typos fail loudly.
  Options(int argc, char** argv);

  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  uint64_t GetUint(const std::string& key, uint64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  bool Has(const std::string& key) const;

  // For tests.
  void Set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace xstream

#endif  // XSTREAM_UTIL_OPTIONS_H_
