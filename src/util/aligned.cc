#include "util/aligned.h"

#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace xstream {

AlignedBuffer::AlignedBuffer(size_t size, size_t alignment) : size_(size) {
  if (size == 0) {
    return;
  }
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  XS_CHECK(p != nullptr) << "aligned_alloc of " << rounded << " bytes failed";
  data_ = static_cast<std::byte*>(p);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

AlignedBufferPool& AlignedBufferPool::Shared() {
  static AlignedBufferPool pool;
  return pool;
}

AlignedBuffer AlignedBufferPool::Get(size_t size) {
  if (size == 0) {
    return AlignedBuffer{};
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = free_.find(size);
    if (it != free_.end() && !it->second.empty()) {
      AlignedBuffer buf = std::move(it->second.back());
      it->second.pop_back();
      pooled_bytes_ -= buf.size();
      ++hits_;
      return buf;
    }
    ++misses_;
  }
  return AlignedBuffer(size);
}

void AlignedBufferPool::Put(AlignedBuffer buf) {
  if (buf.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (pooled_bytes_ + buf.size() > cap_bytes_) {
    return;  // drop: ~AlignedBuffer frees it
  }
  pooled_bytes_ += buf.size();
  free_[buf.size()].push_back(std::move(buf));
}

uint64_t AlignedBufferPool::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pooled_bytes_;
}

uint64_t AlignedBufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t AlignedBufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace xstream
