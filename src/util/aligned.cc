#include "util/aligned.h"

#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace xstream {

AlignedBuffer::AlignedBuffer(size_t size, size_t alignment) : size_(size) {
  if (size == 0) {
    return;
  }
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  XS_CHECK(p != nullptr) << "aligned_alloc of " << rounded << " bytes failed";
  data_ = static_cast<std::byte*>(p);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace xstream
