// A GraphChi-like out-of-core engine using Parallel Sliding Windows, after
// Kyrola & Blelloch [37] (paper Figs 22-23).
//
// GraphChi's design, reproduced here:
//  * Vertices are split into P intervals; shard s holds every edge whose
//    *destination* lies in interval s, sorted by *source* — producing the
//    shards requires sorting the input ("pre-sort", the pre-processing cost
//    Fig 22 charges GraphChi).
//  * Data lives on the edges: each on-disk record carries a mutable
//    EdgeValue. The vertex-centric update(v) reads v's in-edge values and
//    writes v's out-edge values.
//  * Executing interval s loads shard s entirely (the "memory shard") plus
//    one sliding window from every other shard — the block of records with
//    source in interval s, contiguous because shards are sorted by source.
//  * Iterating v's in-edges requires the memory shard grouped by
//    destination, so the engine re-sorts it (an index sort) after every
//    load — the "re-sort" column of Fig 22.
//  * P is chosen so a shard plus its windows fit the memory budget; for a
//    fixed budget GraphChi needs many more shards than X-Stream needs
//    streaming partitions, because X-Stream only keeps vertex *state* in
//    memory (Fig 22's parenthesized counts).
//
// The window reads/writes per interval produce the fragmented, bursty I/O
// pattern of Fig 23. Updates within an interval run in parallel with
// GraphChi's asynchronous (Gauss-Seidel) semantics.
#ifndef XSTREAM_BASELINES_GRAPHCHI_LIKE_H_
#define XSTREAM_BASELINES_GRAPHCHI_LIKE_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "graph/types.h"
#include "storage/device.h"
#include "threads/thread_pool.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

template <typename P>
concept PswVertexProgram = requires(P p, VertexId v, typename P::VertexValue& value,
                                    uint32_t out_degree, float w) {
  typename P::VertexValue;
  typename P::EdgeValue;
  { p.InitVertex(v, out_degree, value) } -> std::same_as<void>;
  { p.InitEdge(v, v, w, out_degree) } -> std::same_as<typename P::EdgeValue>;
};

struct PswConfig {
  int threads = 2;
  uint64_t memory_budget_bytes = 8ull << 20;
  uint32_t num_shards = 0;  // 0 = auto from the budget
  std::string file_prefix = "psw";
};

struct PswStats {
  double pre_sort_seconds = 0.0;  // shard construction (partition + sort + write)
  double re_sort_seconds = 0.0;   // cumulative in-memory re-sort by destination
  double compute_seconds = 0.0;   // wall time of the sweeps
  uint64_t iterations = 0;
  uint64_t updated_vertices = 0;  // vertices whose update reported a change
};

template <PswVertexProgram Program>
class PswEngine {
 public:
  using VertexValue = typename Program::VertexValue;
  using EdgeValue = typename Program::EdgeValue;

#pragma pack(push, 1)
  struct DiskEdge {
    VertexId src;
    VertexId dst;
    float weight;
    EdgeValue value;
  };
#pragma pack(pop)

  // Per-vertex view handed to Program::Update.
  class Context {
   public:
    VertexId id() const { return id_; }
    uint64_t num_vertices() const { return engine_->num_vertices_; }
    uint32_t out_degree() const { return engine_->out_degree_[id_]; }
    VertexValue& value() { return engine_->values_[id_]; }

    // f(src, weight, const EdgeValue&)
    template <typename F>
    void ForEachInEdge(F&& f) const {
      const auto& shard = engine_->memory_shard_;
      for (uint64_t i = in_begin_; i < in_end_; ++i) {
        const DiskEdge& e = shard[engine_->dst_index_[i]];
        f(e.src, e.weight, e.value);
      }
    }

    // f(dst, weight, EdgeValue&) over mutable out-edge values.
    template <typename F>
    void ForEachOutEdge(F&& f) {
      for (uint32_t q = 0; q < engine_->num_shards_; ++q) {
        auto [begin, end] = engine_->out_ranges_[q][id_ - interval_begin_];
        DiskEdge* records = engine_->WindowRecords(q);
        for (uint64_t i = begin; i < end; ++i) {
          DiskEdge& e = records[i];
          f(e.dst, e.weight, e.value);
        }
      }
    }

   private:
    friend class PswEngine;
    PswEngine* engine_ = nullptr;
    VertexId id_ = 0;
    VertexId interval_begin_ = 0;
    uint64_t in_begin_ = 0;
    uint64_t in_end_ = 0;
  };

  PswEngine(const PswConfig& config, StorageDevice& dev, const EdgeList& edges,
            uint64_t num_vertices, Program& program)
      : config_(config),
        pool_(config.threads > 0 ? config.threads : 2),
        dev_(dev),
        num_vertices_(num_vertices) {
    WallTimer timer;

    out_degree_.assign(num_vertices_, 0);
    for (const Edge& e : edges) {
      ++out_degree_[e.src];
    }

    uint64_t edge_bytes = edges.size() * sizeof(DiskEdge);
    num_shards_ = config.num_shards > 0
                      ? config.num_shards
                      : static_cast<uint32_t>(
                            std::max<uint64_t>(1, (2 * edge_bytes + config.memory_budget_bytes -
                                                   1) /
                                                      config.memory_budget_bytes));
    interval_size_ = (num_vertices_ + num_shards_ - 1) / num_shards_;
    if (interval_size_ == 0) {
      interval_size_ = 1;
    }

    BuildShards(edges, program);

    values_.resize(num_vertices_);
    pool_.ParallelFor(0, num_vertices_, 4096, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t v = lo; v < hi; ++v) {
        program.InitVertex(static_cast<VertexId>(v), out_degree_[v], values_[v]);
      }
    });

    stats_.pre_sort_seconds = timer.Seconds();
  }

  uint32_t num_shards() const { return num_shards_; }
  uint64_t num_vertices() const { return num_vertices_; }
  const std::vector<VertexValue>& values() const { return values_; }
  PswStats& stats() { return stats_; }

  // One full sweep over all intervals; returns the number of vertices whose
  // update reported a change.
  uint64_t RunIteration(Program& program) {
    WallTimer timer;
    std::atomic<uint64_t> changed{0};
    for (uint32_t s = 0; s < num_shards_; ++s) {
      ExecuteInterval(program, s, changed);
    }
    ++stats_.iterations;
    stats_.compute_seconds += timer.Seconds();
    stats_.updated_vertices += changed.load();
    return changed.load();
  }

  void RunIterations(Program& program, uint64_t iterations) {
    for (uint64_t i = 0; i < iterations; ++i) {
      RunIteration(program);
    }
  }

  // Sweeps until a full iteration changes nothing (WCC-style fixpoints).
  uint64_t RunUntilConverged(Program& program, uint64_t max_iterations = 1000) {
    for (uint64_t i = 0; i < max_iterations; ++i) {
      if (RunIteration(program) == 0) {
        break;
      }
    }
    return stats_.iterations;
  }

 private:
  VertexId IntervalBegin(uint32_t s) const {
    return static_cast<VertexId>(std::min<uint64_t>(s * interval_size_, num_vertices_));
  }
  VertexId IntervalEnd(uint32_t s) const {
    return static_cast<VertexId>(
        std::min<uint64_t>((s + uint64_t{1}) * interval_size_, num_vertices_));
  }
  uint32_t IntervalOf(VertexId v) const { return static_cast<uint32_t>(v / interval_size_); }

  std::string ShardFile(uint32_t s) const {
    return config_.file_prefix + ".shard." + std::to_string(s);
  }

  void BuildShards(const EdgeList& edges, Program& program) {
    shard_files_.resize(num_shards_);
    shard_sizes_.assign(num_shards_, 0);
    window_offsets_.assign(num_shards_,
                           std::vector<uint64_t>(static_cast<size_t>(num_shards_) + 1, 0));

    // Bucket edges by destination interval.
    std::vector<std::vector<DiskEdge>> buckets(num_shards_);
    for (const Edge& e : edges) {
      DiskEdge de;
      de.src = e.src;
      de.dst = e.dst;
      de.weight = e.weight;
      de.value = program.InitEdge(e.src, e.dst, e.weight, out_degree_[e.src]);
      buckets[IntervalOf(e.dst)].push_back(de);
    }
    // Sort each shard by source (the measured pre-sort) and write it out,
    // recording the window offsets: for each source interval q, the record
    // range within the shard.
    for (uint32_t s = 0; s < num_shards_; ++s) {
      auto& shard = buckets[s];
      std::sort(shard.begin(), shard.end(), [](const DiskEdge& a, const DiskEdge& b) {
        if (a.src != b.src) {
          return a.src < b.src;
        }
        return a.dst < b.dst;
      });
      auto& offsets = window_offsets_[s];
      uint64_t cursor = 0;
      for (uint32_t q = 0; q < num_shards_; ++q) {
        offsets[q] = cursor;
        VertexId end = IntervalEnd(q);
        while (cursor < shard.size() && shard[cursor].src < end) {
          ++cursor;
        }
      }
      offsets[num_shards_] = shard.size();
      shard_sizes_[s] = shard.size();
      shard_files_[s] = dev_.Create(ShardFile(s));
      if (!shard.empty()) {
        dev_.Write(shard_files_[s], 0,
                   std::span<const std::byte>(reinterpret_cast<const std::byte*>(shard.data()),
                                              shard.size() * sizeof(DiskEdge)));
      }
    }
  }

  DiskEdge* WindowRecords(uint32_t q) {
    return q == current_interval_ ? memory_shard_.data() : windows_[q].data();
  }

  void ExecuteInterval(Program& program, uint32_t s, std::atomic<uint64_t>& changed) {
    VertexId begin = IntervalBegin(s);
    VertexId end = IntervalEnd(s);
    if (begin == end) {
      return;
    }
    current_interval_ = s;

    // Load the memory shard (all in-edges of the interval) sequentially.
    memory_shard_.assign(shard_sizes_[s], DiskEdge{});
    if (shard_sizes_[s] > 0) {
      dev_.Read(shard_files_[s], 0,
                std::span<std::byte>(reinterpret_cast<std::byte*>(memory_shard_.data()),
                                     memory_shard_.size() * sizeof(DiskEdge)));
    }

    // Re-sort (index sort) by destination — the Fig 22 "re-sort" cost.
    {
      WallTimer resort;
      dst_index_.resize(memory_shard_.size());
      std::iota(dst_index_.begin(), dst_index_.end(), 0);
      std::sort(dst_index_.begin(), dst_index_.end(), [this](uint32_t a, uint32_t b) {
        return memory_shard_[a].dst < memory_shard_[b].dst;
      });
      stats_.re_sort_seconds += resort.Seconds();
    }
    // Per-vertex in-edge ranges over the dst-sorted index.
    uint64_t interval_verts = end - begin;
    in_ranges_.assign(interval_verts, {0, 0});
    for (uint64_t i = 0; i < dst_index_.size();) {
      VertexId d = memory_shard_[dst_index_[i]].dst;
      uint64_t j = i;
      while (j < dst_index_.size() && memory_shard_[dst_index_[j]].dst == d) {
        ++j;
      }
      in_ranges_[d - begin] = {i, j};
      i = j;
    }

    // Load the sliding windows: from every other shard, the block of records
    // with source in this interval (out-edges of the interval).
    windows_.assign(num_shards_, {});
    for (uint32_t q = 0; q < num_shards_; ++q) {
      if (q == s) {
        continue;
      }
      uint64_t lo = window_offsets_[q][s];
      uint64_t hi = window_offsets_[q][s + 1];
      windows_[q].assign(hi - lo, DiskEdge{});
      if (hi > lo) {
        dev_.Read(shard_files_[q], lo * sizeof(DiskEdge),
                  std::span<std::byte>(reinterpret_cast<std::byte*>(windows_[q].data()),
                                       (hi - lo) * sizeof(DiskEdge)));
      }
    }

    // Per-window, per-vertex out-edge subranges (windows are src-sorted).
    out_ranges_.assign(num_shards_, {});
    for (uint32_t q = 0; q < num_shards_; ++q) {
      auto& ranges = out_ranges_[q];
      ranges.assign(interval_verts, {0, 0});
      DiskEdge* records;
      uint64_t base;
      uint64_t count;
      if (q == s) {
        records = memory_shard_.data();
        base = window_offsets_[s][s];
        count = window_offsets_[s][s + 1];
      } else {
        records = windows_[q].data();
        base = 0;
        count = windows_[q].size();
      }
      for (uint64_t i = base; i < (q == s ? count : base + count);) {
        VertexId src = records[i].src;
        uint64_t j = i;
        uint64_t limit = (q == s) ? count : base + count;
        while (j < limit && records[j].src == src) {
          ++j;
        }
        ranges[src - begin] = {i, j};
        i = j;
      }
    }

    // Update the interval's vertices (asynchronous/Gauss-Seidel semantics:
    // in-interval edges may expose already-updated values).
    std::atomic<uint64_t> local_changed{0};
    pool_.ParallelFor(0, interval_verts, 256, [&](uint64_t lo, uint64_t hi) {
      uint64_t c = 0;
      for (uint64_t i = lo; i < hi; ++i) {
        Context ctx;
        ctx.engine_ = this;
        ctx.id_ = static_cast<VertexId>(begin + i);
        ctx.interval_begin_ = begin;
        ctx.in_begin_ = in_ranges_[i].first;
        ctx.in_end_ = in_ranges_[i].second;
        if (program.Update(ctx)) {
          ++c;
        }
      }
      local_changed.fetch_add(c, std::memory_order_relaxed);
    });
    changed.fetch_add(local_changed.load(), std::memory_order_relaxed);

    // Write back the modified out-edge blocks (one per shard).
    for (uint32_t q = 0; q < num_shards_; ++q) {
      uint64_t lo = window_offsets_[q][s];
      uint64_t hi = window_offsets_[q][s + 1];
      if (hi == lo) {
        continue;
      }
      const DiskEdge* records =
          (q == s) ? memory_shard_.data() + lo : windows_[q].data();
      dev_.Write(shard_files_[q], lo * sizeof(DiskEdge),
                 std::span<const std::byte>(reinterpret_cast<const std::byte*>(records),
                                            (hi - lo) * sizeof(DiskEdge)));
    }
  }

  PswConfig config_;
  ThreadPool pool_;
  StorageDevice& dev_;
  uint64_t num_vertices_;
  uint32_t num_shards_ = 1;
  uint64_t interval_size_ = 1;

  std::vector<uint32_t> out_degree_;
  std::vector<VertexValue> values_;

  std::vector<FileId> shard_files_;
  std::vector<uint64_t> shard_sizes_;
  // window_offsets_[shard][q] = first record in `shard` with src in interval
  // q (record units); [num_shards] = shard size.
  std::vector<std::vector<uint64_t>> window_offsets_;

  // Interval-execution scratch state.
  uint32_t current_interval_ = 0;
  std::vector<DiskEdge> memory_shard_;
  std::vector<uint32_t> dst_index_;
  std::vector<std::pair<uint64_t, uint64_t>> in_ranges_;
  std::vector<std::vector<DiskEdge>> windows_;
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> out_ranges_;

  PswStats stats_;
};

}  // namespace xstream

#endif  // XSTREAM_BASELINES_GRAPHCHI_LIKE_H_
