#include "baselines/bfs_hybrid.h"

#include <atomic>

#include "util/logging.h"

namespace xstream {

HybridBfsResult RunHybridBfs(const Csr& out, const Csr& in, VertexId root, ThreadPool& pool,
                             double alpha, double beta) {
  uint64_t n = out.num_vertices();
  HybridBfsResult result;
  result.levels.assign(n, UINT32_MAX);

  std::vector<std::atomic<uint8_t>> visited(n);
  for (auto& v : visited) {
    v.store(0, std::memory_order_relaxed);
  }
  // Dense frontier bitmaps for bottom-up; sparse queue for top-down.
  std::vector<uint8_t> front_bitmap(n, 0);
  std::vector<uint8_t> next_bitmap(n, 0);
  std::vector<VertexId> frontier{root};

  visited[root].store(1, std::memory_order_relaxed);
  front_bitmap[root] = 1;
  result.levels[root] = 0;
  result.reached = 1;

  std::vector<std::vector<VertexId>> local(static_cast<size_t>(pool.num_threads()));
  uint64_t frontier_edges = out.OutDegree(root);
  uint64_t unvisited = n - 1;
  bool bottom_up = false;
  uint32_t level = 0;

  while (!frontier.empty() || (bottom_up && frontier_edges > 0)) {
    ++level;
    // Beamer's heuristics: go bottom-up when the frontier's out-edges exceed
    // the unexplored edges / alpha; return top-down when the frontier
    // shrinks below n / beta vertices.
    if (!bottom_up && frontier_edges > (out.num_edges() / static_cast<uint64_t>(alpha) + 1)) {
      bottom_up = true;
    } else if (bottom_up && frontier.size() < n / static_cast<uint64_t>(beta)) {
      bottom_up = false;
    }

    std::atomic<uint64_t> discovered{0};
    std::atomic<uint64_t> next_edges{0};
    for (auto& q : local) {
      q.clear();
    }
    std::fill(next_bitmap.begin(), next_bitmap.end(), 0);

    if (bottom_up) {
      ++result.bottom_up_steps;
      pool.ParallelForTid(0, n, 1024, [&](int tid, uint64_t lo, uint64_t hi) {
        auto& next = local[static_cast<size_t>(tid)];
        uint64_t found = 0;
        uint64_t edges = 0;
        for (uint64_t v = lo; v < hi; ++v) {
          if (visited[v].load(std::memory_order_relaxed)) {
            continue;
          }
          uint64_t deg = in.OutDegree(static_cast<VertexId>(v));
          const VertexId* parents = in.Neighbors(static_cast<VertexId>(v));
          for (uint64_t e = 0; e < deg; ++e) {
            if (front_bitmap[parents[e]]) {
              visited[v].store(1, std::memory_order_relaxed);
              result.levels[v] = level;
              next.push_back(static_cast<VertexId>(v));
              next_bitmap[v] = 1;
              ++found;
              edges += out.OutDegree(static_cast<VertexId>(v));
              break;  // the parent-scan shortcut: stop at the first hit
            }
          }
        }
        discovered.fetch_add(found, std::memory_order_relaxed);
        next_edges.fetch_add(edges, std::memory_order_relaxed);
      });
    } else {
      pool.ParallelForTid(0, frontier.size(), 64, [&](int tid, uint64_t lo, uint64_t hi) {
        auto& next = local[static_cast<size_t>(tid)];
        uint64_t found = 0;
        uint64_t edges = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          VertexId v = frontier[i];
          uint64_t deg = out.OutDegree(v);
          const VertexId* nbrs = out.Neighbors(v);
          for (uint64_t e = 0; e < deg; ++e) {
            VertexId u = nbrs[e];
            uint8_t expected = 0;
            if (visited[u].compare_exchange_strong(expected, 1, std::memory_order_relaxed)) {
              result.levels[u] = level;
              next.push_back(u);
              next_bitmap[u] = 1;
              ++found;
              edges += out.OutDegree(u);
            }
          }
        }
        discovered.fetch_add(found, std::memory_order_relaxed);
        next_edges.fetch_add(edges, std::memory_order_relaxed);
      });
    }

    frontier.clear();
    for (auto& q : local) {
      frontier.insert(frontier.end(), q.begin(), q.end());
    }
    result.reached += discovered.load();
    unvisited -= discovered.load();
    frontier_edges = next_edges.load();
    front_bitmap.swap(next_bitmap);
    if (discovered.load() == 0) {
      break;
    }
  }
  result.depth = level > 0 ? level - 1 : 0;
  return result;
}

}  // namespace xstream
