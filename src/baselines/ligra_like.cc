#include "baselines/ligra_like.h"

#include <atomic>

#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

LigraGraph LigraGraph::Build(const EdgeList& edges, uint64_t num_vertices) {
  LigraGraph g;
  WallTimer timer;
  g.out = Csr::BuildQuickSort(edges, num_vertices);
  // Inverting requires materializing the reversed list, then sorting it —
  // the random-access-heavy step Fig 20 attributes most of Ligra-pre to.
  EdgeList reversed(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    reversed[i] = Edge{edges[i].dst, edges[i].src, edges[i].weight};
  }
  g.in = Csr::BuildQuickSort(reversed, num_vertices);
  g.preprocess_seconds = timer.Seconds();
  return g;
}

namespace {

// Ligra's density threshold: go dense when the frontier plus its out-edges
// exceed |E| / 20.
bool ShouldPull(uint64_t frontier_size, uint64_t frontier_edges, uint64_t num_edges) {
  return frontier_size + frontier_edges > num_edges / 20;
}

}  // namespace

LigraBfsResult RunLigraBfs(const LigraGraph& graph, VertexId root, ThreadPool& pool) {
  const Csr& out = graph.out;
  const Csr& in = graph.in;
  uint64_t n = out.num_vertices();

  LigraBfsResult result;
  result.levels.assign(n, UINT32_MAX);
  std::vector<std::atomic<uint8_t>> visited(n);
  for (auto& v : visited) {
    v.store(0, std::memory_order_relaxed);
  }

  std::vector<VertexId> sparse{root};
  std::vector<uint8_t> dense(n, 0);
  visited[root].store(1, std::memory_order_relaxed);
  dense[root] = 1;
  result.levels[root] = 0;
  result.reached = 1;

  std::vector<std::vector<VertexId>> local(static_cast<size_t>(pool.num_threads()));
  uint64_t frontier_edges = out.OutDegree(root);
  uint32_t level = 0;

  while (!sparse.empty()) {
    ++level;
    std::vector<uint8_t> next_dense(n, 0);
    for (auto& q : local) {
      q.clear();
    }
    std::atomic<uint64_t> next_edges{0};

    if (ShouldPull(sparse.size(), frontier_edges, out.num_edges())) {
      ++result.pull_steps;
      pool.ParallelForTid(0, n, 1024, [&](int tid, uint64_t lo, uint64_t hi) {
        auto& next = local[static_cast<size_t>(tid)];
        uint64_t edges = 0;
        for (uint64_t v = lo; v < hi; ++v) {
          if (visited[v].load(std::memory_order_relaxed)) {
            continue;
          }
          uint64_t deg = in.OutDegree(static_cast<VertexId>(v));
          const VertexId* parents = in.Neighbors(static_cast<VertexId>(v));
          for (uint64_t e = 0; e < deg; ++e) {
            if (dense[parents[e]]) {
              visited[v].store(1, std::memory_order_relaxed);
              result.levels[v] = level;
              next.push_back(static_cast<VertexId>(v));
              next_dense[v] = 1;
              edges += out.OutDegree(static_cast<VertexId>(v));
              break;
            }
          }
        }
        next_edges.fetch_add(edges, std::memory_order_relaxed);
      });
    } else {
      pool.ParallelForTid(0, sparse.size(), 64, [&](int tid, uint64_t lo, uint64_t hi) {
        auto& next = local[static_cast<size_t>(tid)];
        uint64_t edges = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          VertexId v = sparse[i];
          uint64_t deg = out.OutDegree(v);
          const VertexId* nbrs = out.Neighbors(v);
          for (uint64_t e = 0; e < deg; ++e) {
            VertexId u = nbrs[e];
            uint8_t expected = 0;
            if (visited[u].compare_exchange_strong(expected, 1, std::memory_order_relaxed)) {
              result.levels[u] = level;
              next.push_back(u);
              next_dense[u] = 1;
              edges += out.OutDegree(u);
            }
          }
        }
        next_edges.fetch_add(edges, std::memory_order_relaxed);
      });
    }

    sparse.clear();
    for (auto& q : local) {
      sparse.insert(sparse.end(), q.begin(), q.end());
    }
    result.reached += sparse.size();
    frontier_edges = next_edges.load();
    dense.swap(next_dense);
  }
  return result;
}

LigraPageRankResult RunLigraPageRank(const LigraGraph& graph, int iterations,
                                     ThreadPool& pool) {
  const Csr& out = graph.out;
  const Csr& in = graph.in;
  uint64_t n = out.num_vertices();

  LigraPageRankResult result;
  result.ranks.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  // PageRank's frontier is always the whole vertex set, so every EdgeMap is
  // dense: pull over in-edges (Fig 20's observation that "Pagerank's uniform
  // communication pattern makes direction reversal ineffective" — the dense
  // pull is the best Ligra can do and still loses to streaming).
  for (int it = 0; it < iterations; ++it) {
    pool.ParallelFor(0, n, 1024, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t v = lo; v < hi; ++v) {
        double sum = 0.0;
        uint64_t deg = in.OutDegree(static_cast<VertexId>(v));
        const VertexId* parents = in.Neighbors(static_cast<VertexId>(v));
        for (uint64_t e = 0; e < deg; ++e) {
          VertexId u = parents[e];
          uint64_t out_deg = out.OutDegree(u);
          if (out_deg > 0) {
            sum += result.ranks[u] / static_cast<double>(out_deg);
          }
        }
        next[v] = 0.15 / static_cast<double>(n) + 0.85 * sum;
      }
    });
    result.ranks.swap(next);
  }
  return result;
}

}  // namespace xstream
