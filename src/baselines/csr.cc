#include "baselines/csr.h"

#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace xstream {

namespace {

int CompareEdgeBySrc(const void* a, const void* b) {
  const Edge* ea = static_cast<const Edge*>(a);
  const Edge* eb = static_cast<const Edge*>(b);
  if (ea->src != eb->src) {
    return ea->src < eb->src ? -1 : 1;
  }
  if (ea->dst != eb->dst) {
    return ea->dst < eb->dst ? -1 : 1;
  }
  return 0;
}

}  // namespace

void SortEdgesQuickSort(EdgeList& edges) {
  std::qsort(edges.data(), edges.size(), sizeof(Edge), CompareEdgeBySrc);
}

void SortEdgesCountingSort(EdgeList& edges, uint64_t num_vertices) {
  std::vector<uint64_t> counts(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    ++counts[e.src + 1];
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    counts[v + 1] += counts[v];
  }
  EdgeList out(edges.size());
  for (const Edge& e : edges) {
    out[counts[e.src]++] = e;
  }
  edges.swap(out);
}

Csr Csr::BuildQuickSort(const EdgeList& edges, uint64_t num_vertices) {
  EdgeList sorted = edges;
  SortEdgesQuickSort(sorted);
  Csr csr;
  csr.offsets_.assign(num_vertices + 1, 0);
  csr.neighbors_.resize(sorted.size());
  csr.weights_.resize(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    csr.neighbors_[i] = sorted[i].dst;
    csr.weights_[i] = sorted[i].weight;
    XS_CHECK_LT(sorted[i].src, num_vertices);
    ++csr.offsets_[sorted[i].src + 1];
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    csr.offsets_[v + 1] += csr.offsets_[v];
  }
  return csr;
}

Csr Csr::BuildByCounting(const EdgeList& edges, uint64_t num_vertices, bool transpose) {
  Csr csr;
  csr.offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    VertexId key = transpose ? e.dst : e.src;
    ++csr.offsets_[key + 1];
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    csr.offsets_[v + 1] += csr.offsets_[v];
  }
  csr.neighbors_.resize(edges.size());
  csr.weights_.resize(edges.size());
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges) {
    VertexId key = transpose ? e.dst : e.src;
    VertexId val = transpose ? e.src : e.dst;
    uint64_t pos = cursor[key]++;
    csr.neighbors_[pos] = val;
    csr.weights_[pos] = e.weight;
  }
  return csr;
}

Csr Csr::BuildCountingSort(const EdgeList& edges, uint64_t num_vertices) {
  return BuildByCounting(edges, num_vertices, /*transpose=*/false);
}

Csr Csr::BuildTranspose(const EdgeList& edges, uint64_t num_vertices) {
  return BuildByCounting(edges, num_vertices, /*transpose=*/true);
}

}  // namespace xstream
