#include "baselines/sorters.h"

#include <algorithm>

#include "util/timer.h"

namespace xstream {

namespace {

bool IsSortedBySrc(const EdgeList& edges) {
  return std::is_sorted(edges.begin(), edges.end(),
                        [](const Edge& a, const Edge& b) { return a.src < b.src; });
}

}  // namespace

SortTiming TimeQuickSort(const EdgeList& edges) {
  EdgeList copy = edges;
  WallTimer timer;
  SortEdgesQuickSort(copy);
  SortTiming t;
  t.seconds = timer.Seconds();
  t.sorted = IsSortedBySrc(copy);
  return t;
}

SortTiming TimeCountingSort(const EdgeList& edges, uint64_t num_vertices) {
  EdgeList copy = edges;
  WallTimer timer;
  SortEdgesCountingSort(copy, num_vertices);
  SortTiming t;
  t.seconds = timer.Seconds();
  t.sorted = IsSortedBySrc(copy);
  return t;
}

}  // namespace xstream
