// A Ligra-like frontier-based engine, after Shun & Blelloch [48]
// (paper Fig 20).
//
// The two Ligra primitives are reproduced over CSR/CSC indexes:
//   * VertexSubset — a frontier, stored sparse (vertex list) or dense
//     (bitmap) depending on size.
//   * EdgeMap(G, U, F) — applies F along edges out of U, switching between
//     a push traversal (sparse frontier) and a pull traversal over
//     in-edges (dense frontier), Ligra's direction optimization.
// BFS and PageRank are provided on top, mirroring the Fig 20 workloads.
// The pre-processing Ligra needs (building the sorted forward index and the
// inverted index) is exposed separately so benches can report it as
// "Ligra-pre".
#ifndef XSTREAM_BASELINES_LIGRA_LIKE_H_
#define XSTREAM_BASELINES_LIGRA_LIKE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/csr.h"
#include "graph/types.h"
#include "threads/thread_pool.h"

namespace xstream {

// Forward + inverted indexes, with the build (sort) time recorded.
struct LigraGraph {
  Csr out;
  Csr in;
  double preprocess_seconds = 0.0;

  // Quicksort-based build, matching the paper's note that Ligra's
  // pre-processing "could be improved using counting sort instead of
  // quicksort" — i.e. their measurement used quicksort.
  static LigraGraph Build(const EdgeList& edges, uint64_t num_vertices);
};

struct LigraBfsResult {
  std::vector<uint32_t> levels;
  uint64_t reached = 0;
  uint32_t pull_steps = 0;
};

LigraBfsResult RunLigraBfs(const LigraGraph& graph, VertexId root, ThreadPool& pool);

struct LigraPageRankResult {
  std::vector<double> ranks;
};

LigraPageRankResult RunLigraPageRank(const LigraGraph& graph, int iterations,
                                     ThreadPool& pool);

}  // namespace xstream

#endif  // XSTREAM_BASELINES_LIGRA_LIKE_H_
