// "Local queue" parallel BFS, after Agarwal et al. [12] (paper Fig 19).
//
// Level-synchronous top-down BFS with random access through a CSR index:
// threads drain the current frontier in blocks, probe the visited bitmap
// with compare-and-swap, and push discoveries onto thread-local next queues
// that are concatenated between levels — the optimized-synchronization
// design the paper benchmarks X-Stream against.
#ifndef XSTREAM_BASELINES_BFS_LOCAL_QUEUE_H_
#define XSTREAM_BASELINES_BFS_LOCAL_QUEUE_H_

#include <cstdint>
#include <vector>

#include "baselines/csr.h"
#include "graph/types.h"
#include "threads/thread_pool.h"

namespace xstream {

struct LocalQueueBfsResult {
  std::vector<uint32_t> levels;  // UINT32_MAX = unreachable
  uint64_t reached = 0;
  uint32_t depth = 0;
};

LocalQueueBfsResult RunLocalQueueBfs(const Csr& graph, VertexId root, ThreadPool& pool);

}  // namespace xstream

#endif  // XSTREAM_BASELINES_BFS_LOCAL_QUEUE_H_
