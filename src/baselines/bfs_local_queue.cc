#include "baselines/bfs_local_queue.h"

#include <atomic>

#include "util/logging.h"

namespace xstream {

LocalQueueBfsResult RunLocalQueueBfs(const Csr& graph, VertexId root, ThreadPool& pool) {
  uint64_t n = graph.num_vertices();
  LocalQueueBfsResult result;
  result.levels.assign(n, UINT32_MAX);

  std::vector<std::atomic<uint8_t>> visited(n);
  for (auto& v : visited) {
    v.store(0, std::memory_order_relaxed);
  }

  std::vector<VertexId> frontier{root};
  visited[root].store(1, std::memory_order_relaxed);
  result.levels[root] = 0;
  result.reached = 1;

  std::vector<std::vector<VertexId>> local(static_cast<size_t>(pool.num_threads()));
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    for (auto& q : local) {
      q.clear();
    }
    pool.ParallelForTid(0, frontier.size(), 64, [&](int tid, uint64_t lo, uint64_t hi) {
      auto& next = local[static_cast<size_t>(tid)];
      for (uint64_t i = lo; i < hi; ++i) {
        VertexId v = frontier[i];
        uint64_t deg = graph.OutDegree(v);
        const VertexId* nbrs = graph.Neighbors(v);
        for (uint64_t e = 0; e < deg; ++e) {
          VertexId u = nbrs[e];
          uint8_t expected = 0;
          if (visited[u].compare_exchange_strong(expected, 1, std::memory_order_relaxed)) {
            result.levels[u] = level;
            next.push_back(u);
          }
        }
      }
    });
    frontier.clear();
    for (auto& q : local) {
      frontier.insert(frontier.end(), q.begin(), q.end());
      result.reached += q.size();
    }
  }
  result.depth = level > 0 ? level - 1 : 0;
  return result;
}

}  // namespace xstream
