// Vertex programs for the GraphChi-like PSW engine: the four workloads of
// the paper's Fig 22 comparison (PageRank, WCC, ALS, Belief Propagation),
// written vertex-centrically with data-on-edges, as GraphChi requires.
#ifndef XSTREAM_BASELINES_PSW_PROGRAMS_H_
#define XSTREAM_BASELINES_PSW_PROGRAMS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "algorithms/dense_solver.h"
#include "baselines/graphchi_like.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xstream {

// PageRank: in-edge values carry the neighbour's rank share.
struct PswPageRank {
  using VertexValue = float;
  using EdgeValue = float;

  explicit PswPageRank(uint64_t num_vertices) : n_(num_vertices) {}

  void InitVertex(VertexId v, uint32_t out_degree, VertexValue& value) const {
    value = 1.0f / static_cast<float>(n_);
  }

  EdgeValue InitEdge(VertexId src, VertexId dst, float w, uint32_t src_out_degree) const {
    // Seed edges with the share the first synchronous iteration would see.
    return src_out_degree > 0
               ? 1.0f / static_cast<float>(n_) / static_cast<float>(src_out_degree)
               : 0.0f;
  }

  template <typename Ctx>
  bool Update(Ctx& ctx) const {
    float sum = 0.0f;
    ctx.ForEachInEdge([&sum](VertexId, float, const float& share) { sum += share; });
    float rank = 0.15f / static_cast<float>(n_) + 0.85f * sum;
    ctx.value() = rank;
    uint32_t deg = ctx.out_degree();
    float share = deg > 0 ? rank / static_cast<float>(deg) : 0.0f;
    ctx.ForEachOutEdge([share](VertexId, float, float& value) { value = share; });
    return true;
  }

 private:
  uint64_t n_;
};

// WCC: min-label propagation through edge values. Converges to the exact
// per-component minimum label regardless of the asynchronous sweep order.
struct PswWcc {
  using VertexValue = uint32_t;
  using EdgeValue = uint32_t;

  void InitVertex(VertexId v, uint32_t, VertexValue& value) const { value = v; }

  EdgeValue InitEdge(VertexId src, VertexId dst, float, uint32_t) const {
    return std::min(src, dst);
  }

  template <typename Ctx>
  bool Update(Ctx& ctx) const {
    uint32_t label = ctx.value();
    ctx.ForEachInEdge([&label](VertexId, float, const uint32_t& l) {
      label = std::min(label, l);
    });
    bool changed = label < ctx.value();
    ctx.value() = label;
    ctx.ForEachOutEdge([label](VertexId, float, uint32_t& value) {
      value = std::min(value, label);
    });
    return changed;
  }
};

// ALS: edge values carry the writer's latent vector; weights carry ratings.
struct PswAls {
  static constexpr uint32_t kFactors = 8;
  static constexpr float kLambda = 0.1f;

  struct Vec {
    float f[kFactors];
  };
  using VertexValue = Vec;
  using EdgeValue = Vec;

  explicit PswAls(uint64_t seed = 17) : seed_(seed) {}

  void InitVertex(VertexId v, uint32_t, VertexValue& value) const {
    for (uint32_t i = 0; i < kFactors; ++i) {
      value.f[i] = 0.1f + 0.9f *
                             static_cast<float>(
                                 SplitMix64(seed_ ^ (uint64_t{v} * kFactors + i)) >> 40) *
                             (1.0f / static_cast<float>(1 << 24));
    }
  }

  EdgeValue InitEdge(VertexId src, VertexId, float, uint32_t) const {
    EdgeValue e;
    InitVertex(src, 0, e);
    return e;
  }

  template <typename Ctx>
  bool Update(Ctx& ctx) const {
    constexpr uint32_t kTriangle = kFactors * (kFactors + 1) / 2;
    float ata[kTriangle] = {};
    float atb[kFactors] = {};
    uint32_t ratings = 0;
    ctx.ForEachInEdge([&](VertexId, float rating, const Vec& nbr) {
      uint32_t t = 0;
      for (uint32_t i = 0; i < kFactors; ++i) {
        for (uint32_t j = i; j < kFactors; ++j) {
          ata[t++] += nbr.f[i] * nbr.f[j];
        }
        atb[i] += rating * nbr.f[i];
      }
      ++ratings;
    });
    if (ratings > 0) {
      SolveRegularizedNormalEquations<kFactors>(
          ata, atb, kLambda * static_cast<float>(ratings), ctx.value().f);
    }
    Vec mine = ctx.value();
    ctx.ForEachOutEdge([&mine](VertexId, float, Vec& value) { value = mine; });
    return true;
  }

 private:
  uint64_t seed_;
};

// Belief propagation: edge values carry the incoming message pair.
struct PswBp {
  struct Msg {
    float m0;
    float m1;
  };
  using VertexValue = Msg;  // belief
  using EdgeValue = Msg;    // message from src

  explicit PswBp(uint64_t seed = 23, float epsilon = 0.1f, float seed_fraction = 0.05f)
      : seed_(seed), epsilon_(epsilon), seed_fraction_(seed_fraction) {}

  Msg PriorOf(VertexId v) const {
    uint64_t h = SplitMix64(seed_ ^ (uint64_t{v} + 0x517c));
    double u = static_cast<double>(h >> 11) * (1.0 / static_cast<double>(1ULL << 53));
    if (u < seed_fraction_) {
      bool one = (h & 1) != 0;
      return Msg{one ? 0.05f : 0.95f, one ? 0.95f : 0.05f};
    }
    return Msg{0.5f, 0.5f};
  }

  void InitVertex(VertexId v, uint32_t, VertexValue& value) const { value = PriorOf(v); }

  EdgeValue InitEdge(VertexId, VertexId, float, uint32_t) const { return Msg{0.5f, 0.5f}; }

  template <typename Ctx>
  bool Update(Ctx& ctx) const {
    Msg prior = PriorOf(ctx.id());
    float l0 = std::log(std::max(prior.m0, 1e-12f));
    float l1 = std::log(std::max(prior.m1, 1e-12f));
    ctx.ForEachInEdge([&](VertexId, float, const Msg& m) {
      l0 += std::log(std::max(m.m0, 1e-12f));
      l1 += std::log(std::max(m.m1, 1e-12f));
    });
    float mx = std::max(l0, l1);
    float e0 = std::exp(l0 - mx);
    float e1 = std::exp(l1 - mx);
    Msg belief{e0 / (e0 + e1), e1 / (e0 + e1)};
    ctx.value() = belief;
    float o0 = belief.m0 * (1.0f - epsilon_) + belief.m1 * epsilon_;
    float o1 = belief.m0 * epsilon_ + belief.m1 * (1.0f - epsilon_);
    float z = o0 + o1;
    Msg out{o0 / z, o1 / z};
    ctx.ForEachOutEdge([&out](VertexId, float, Msg& value) { value = out; });
    return true;
  }

 private:
  uint64_t seed_;
  float epsilon_;
  float seed_fraction_;
};

}  // namespace xstream

#endif  // XSTREAM_BASELINES_PSW_PROGRAMS_H_
