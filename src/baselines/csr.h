// Compressed Sparse Row graphs — the "sort the edges and build an index"
// representation that X-Stream argues against (paper §1).
//
// Two builders mirror the sorting baselines of Fig 18: libc quicksort
// (qsort) and counting sort over the known vertex keyspace. Both produce an
// identical index; only the pre-processing cost differs.
#ifndef XSTREAM_BASELINES_CSR_H_
#define XSTREAM_BASELINES_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace xstream {

class Csr {
 public:
  Csr() = default;

  uint64_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  uint64_t num_edges() const { return neighbors_.size(); }

  uint64_t OutDegree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  // Neighbors of v, parallel to Weights(v).
  const VertexId* Neighbors(VertexId v) const { return neighbors_.data() + offsets_[v]; }
  const float* Weights(VertexId v) const { return weights_.data() + offsets_[v]; }

  const std::vector<uint64_t>& offsets() const { return offsets_; }

  // Builds by sorting a copy of the edge list with libc qsort (the paper's
  // "quicksort (from the C library)") and indexing the runs.
  static Csr BuildQuickSort(const EdgeList& edges, uint64_t num_vertices);

  // Builds with a counting sort over source ids ("since the keyspace is
  // known"): one counting pass, one placement pass.
  static Csr BuildCountingSort(const EdgeList& edges, uint64_t num_vertices);

  // The transposed index (in-edges), built by counting sort on destinations.
  static Csr BuildTranspose(const EdgeList& edges, uint64_t num_vertices);

 private:
  static Csr BuildByCounting(const EdgeList& edges, uint64_t num_vertices, bool transpose);

  std::vector<uint64_t> offsets_;   // num_vertices + 1
  std::vector<VertexId> neighbors_;
  std::vector<float> weights_;
};

// The sorting kernels themselves, exposed for the Fig 18 timing comparison
// (they do the same work as the builders minus index assembly).
void SortEdgesQuickSort(EdgeList& edges);
void SortEdgesCountingSort(EdgeList& edges, uint64_t num_vertices);

}  // namespace xstream

#endif  // XSTREAM_BASELINES_CSR_H_
