// Timed sorting baselines for Fig 18: how long does it take just to *sort*
// the edge list (the pre-processing other systems need), compared to
// X-Stream computing the answer outright from the unsorted list.
#ifndef XSTREAM_BASELINES_SORTERS_H_
#define XSTREAM_BASELINES_SORTERS_H_

#include "baselines/csr.h"
#include "graph/types.h"

namespace xstream {

struct SortTiming {
  double seconds = 0.0;
  bool sorted = false;  // verification flag
};

// Sorts a copy with libc qsort and reports the time.
SortTiming TimeQuickSort(const EdgeList& edges);

// Sorts a copy with counting sort over the known keyspace.
SortTiming TimeCountingSort(const EdgeList& edges, uint64_t num_vertices);

}  // namespace xstream

#endif  // XSTREAM_BASELINES_SORTERS_H_
