// Hybrid direction-optimizing BFS, after Hong et al. [33] / Beamer et
// al. [18] (paper Figs 19-21).
//
// Top-down steps push from the frontier; once the frontier's edge count
// crosses a threshold the traversal switches to bottom-up: every unvisited
// vertex scans its in-neighbors and adopts a parent from the frontier
// bitmap, which skips the bulk of the frontier's outgoing edges on
// scale-free graphs. The paper credits this "random access enables highly
// effective algorithm-specific optimizations" — and charges it the index
// pre-processing cost in Fig 20.
#ifndef XSTREAM_BASELINES_BFS_HYBRID_H_
#define XSTREAM_BASELINES_BFS_HYBRID_H_

#include <cstdint>
#include <vector>

#include "baselines/csr.h"
#include "graph/types.h"
#include "threads/thread_pool.h"

namespace xstream {

struct HybridBfsResult {
  std::vector<uint32_t> levels;
  uint64_t reached = 0;
  uint32_t depth = 0;
  uint32_t bottom_up_steps = 0;  // levels processed in bottom-up mode
};

// `out` is the forward index; `in` the transpose (equal for undirected
// graphs). alpha/beta are Beamer's switch heuristics.
HybridBfsResult RunHybridBfs(const Csr& out, const Csr& in, VertexId root, ThreadPool& pool,
                             double alpha = 14.0, double beta = 24.0);

}  // namespace xstream

#endif  // XSTREAM_BASELINES_BFS_HYBRID_H_
