// HyperANF (paper §5.3, citing Boldi, Rosa & Vigna [21]).
//
// The paper implements HyperANF *in X-Stream* to measure the neighborhood
// function N(t) — the number of vertex pairs within distance t — and reads
// the graph's effective diameter off the number of steps until N(t) stops
// growing (Fig 13). Each vertex keeps a HyperLogLog counter of the vertices
// known to be within t hops; one scatter-gather round unions every vertex's
// counter into its neighbours'. A vertex scatters only when its counter
// changed, so the computation reaches zero updates exactly when the
// neighborhood function has converged.
#ifndef XSTREAM_ALGORITHMS_HYPERANF_H_
#define XSTREAM_ALGORITHMS_HYPERANF_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xstream {

struct HyperAnfAlgorithm {
  // 32 registers => relative std deviation ~1.04/sqrt(32) ≈ 18%, plenty for
  // detecting N(t) convergence.
  static constexpr uint32_t kRegisters = 32;
  static constexpr uint32_t kRegisterBits = 5;  // log2(kRegisters)

  explicit HyperAnfAlgorithm(uint64_t seed = 29) : seed_(seed) {}

  struct VertexState {
    uint8_t regs[kRegisters];
    uint8_t active = 0;
    uint8_t next_active = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    uint8_t regs[kRegisters];
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    for (auto& r : s.regs) {
      r = 0;
    }
    // Insert the vertex itself: low bits pick the register, the rank of the
    // first set bit of the remaining hash is the register value.
    uint64_t h = SplitMix64(seed_ ^ (uint64_t{v} + 0xabcd));
    uint32_t idx = static_cast<uint32_t>(h & (kRegisters - 1));
    uint64_t w = (h >> kRegisterBits) | (uint64_t{1} << 58);  // guard bit bounds rho
    uint8_t rho = static_cast<uint8_t>(std::countr_zero(w) + 1);
    s.regs[idx] = rho;
    s.active = 1;
    s.next_active = 0;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (!src.active) {
      return false;
    }
    out.dst = e.dst;
    for (uint32_t i = 0; i < kRegisters; ++i) {
      out.regs[i] = src.regs[i];
    }
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    bool grew = false;
    for (uint32_t i = 0; i < kRegisters; ++i) {
      if (u.regs[i] > dst.regs[i]) {
        dst.regs[i] = u.regs[i];
        grew = true;
      }
    }
    if (grew) {
      dst.next_active = 1;
    }
    return grew;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    s.active = s.next_active;
    s.next_active = 0;
  }

  // Standard HyperLogLog estimate of the set represented by one counter.
  static double Estimate(const VertexState& s) {
    double sum = 0.0;
    int zeros = 0;
    for (uint32_t i = 0; i < kRegisters; ++i) {
      sum += std::ldexp(1.0, -static_cast<int>(s.regs[i]));
      zeros += (s.regs[i] == 0) ? 1 : 0;
    }
    constexpr double kAlpha = 0.697;  // alpha_32
    double m = kRegisters;
    double e = kAlpha * m * m / sum;
    if (e <= 2.5 * m && zeros > 0) {
      e = m * std::log(m / static_cast<double>(zeros));  // small-range correction
    }
    return e;
  }

 private:
  uint64_t seed_;
};

static_assert(EdgeCentricAlgorithm<HyperAnfAlgorithm>);

struct HyperAnfResult {
  uint32_t steps = 0;                        // iterations until convergence
  std::vector<double> neighborhood_function; // N(t), t = 0..steps
  RunStats stats;
};

// Runs HyperANF to convergence; the step count approximates the diameter
// (registers can saturate a hop early, so steps <= true diameter).
template <typename Engine>
HyperAnfResult RunHyperAnf(Engine& engine, uint64_t seed = 29, uint32_t max_steps = 1 << 20) {
  using VS = HyperAnfAlgorithm::VertexState;
  HyperAnfAlgorithm algo(seed);
  HyperAnfResult result;

  engine.VertexMap([&algo](VertexId v, VS& s) { algo.Init(v, s); });
  auto estimate_total = [&engine]() {
    return engine.VertexFold(0.0, [](double acc, VertexId v, const VS& s) {
      return acc + HyperAnfAlgorithm::Estimate(s);
    });
  };
  result.neighborhood_function.push_back(estimate_total());  // N(0) ≈ |V|

  for (uint32_t step = 0; step < max_steps; ++step) {
    IterationStats iter = engine.RunIteration(algo);
    if (iter.updates_generated == 0) {
      break;
    }
    result.neighborhood_function.push_back(estimate_total());
    if (iter.vertices_changed == 0) {
      break;
    }
    result.steps = step + 1;
  }
  result.stats = engine.stats();
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_HYPERANF_H_
