// Bayesian Belief Propagation (paper §5.2, citing Kang et al.'s
// billion-scale BP [35]; "5 iterations").
//
// Binary-state loopy BP with all state held in vertices (the X-Stream
// model): each vertex keeps a belief over {0,1}; per iteration every vertex
// sends the message its belief induces through the edge potential
// psi = [[1-eps, eps], [eps, 1-eps]], and accumulates incoming messages in
// the log domain. As in Kang et al.'s scalable formulation, the per-edge
// reverse-message division is dropped — beliefs converge to the same
// fixpoint family for the smoothing potentials used here. A deterministic
// subset of vertices carries informative priors ("seed" beliefs); the rest
// start uniform.
#ifndef XSTREAM_ALGORITHMS_BP_H_
#define XSTREAM_ALGORITHMS_BP_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xstream {

struct BpAlgorithm {
  explicit BpAlgorithm(uint64_t seed = 23, float epsilon = 0.1f, float seed_fraction = 0.05f)
      : seed_(seed), epsilon_(epsilon), seed_fraction_(seed_fraction) {}

  struct VertexState {
    float belief0 = 0.5f;
    float belief1 = 0.5f;
    float acc0 = 0.0f;  // log-domain accumulator of incoming messages
    float acc1 = 0.0f;
    float prior0 = 0.5f;
    float prior1 = 0.5f;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    float m0;
    float m1;
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    uint64_t h = SplitMix64(seed_ ^ (uint64_t{v} + 0x517c));
    double u = static_cast<double>(h >> 11) * (1.0 / static_cast<double>(1ULL << 53));
    if (u < seed_fraction_) {
      // Observed vertex: strong prior toward state h&1.
      bool one = (h & 1) != 0;
      s.prior0 = one ? 0.05f : 0.95f;
      s.prior1 = one ? 0.95f : 0.05f;
    } else {
      s.prior0 = 0.5f;
      s.prior1 = 0.5f;
    }
    s.belief0 = s.prior0;
    s.belief1 = s.prior1;
    s.acc0 = 0.0f;
    s.acc1 = 0.0f;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    // Message: m(x_dst) = sum_{x_src} belief(x_src) * psi(x_src, x_dst).
    float m0 = src.belief0 * (1.0f - epsilon_) + src.belief1 * epsilon_;
    float m1 = src.belief0 * epsilon_ + src.belief1 * (1.0f - epsilon_);
    float z = m0 + m1;
    out.dst = e.dst;
    out.m0 = m0 / z;
    out.m1 = m1 / z;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    dst.acc0 += std::log(std::max(u.m0, 1e-12f));
    dst.acc1 += std::log(std::max(u.m1, 1e-12f));
    return true;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    // belief ∝ prior * exp(acc); normalize via the max for stability.
    float l0 = std::log(std::max(s.prior0, 1e-12f)) + s.acc0;
    float l1 = std::log(std::max(s.prior1, 1e-12f)) + s.acc1;
    float m = std::max(l0, l1);
    float e0 = std::exp(l0 - m);
    float e1 = std::exp(l1 - m);
    s.belief0 = e0 / (e0 + e1);
    s.belief1 = e1 / (e0 + e1);
    s.acc0 = 0.0f;
    s.acc1 = 0.0f;
  }

 private:
  uint64_t seed_;
  float epsilon_;
  float seed_fraction_;
};

static_assert(EdgeCentricAlgorithm<BpAlgorithm>);

struct BpResult {
  std::vector<float> belief1;  // P(state = 1) per vertex
  uint64_t confident = 0;      // vertices with max-belief > 0.9
  RunStats stats;
};

template <typename Engine>
BpResult RunBp(Engine& engine, uint64_t iterations = 5, uint64_t seed = 23) {
  BpAlgorithm algo(seed);
  BpResult result;
  result.stats = engine.Run(algo, iterations);
  result.belief1.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v, const BpAlgorithm::VertexState& s) {
    result.belief1[v] = s.belief1;
    if (s.belief0 > 0.9f || s.belief1 > 0.9f) {
      ++result.confident;
    }
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_BP_H_
