// Maximal Independent Set (paper §5.2), Luby-style with fixed random
// priorities.
//
// Each vertex draws a deterministic pseudo-random priority. Per round,
// undecided vertices scatter their priority; a vertex whose priority beats
// every undecided neighbour joins the set; vertices that hear from an
// in-set neighbour drop out. A vertex that joined announces itself exactly
// once (the `announced` flag), so the computation reaches a fixpoint with
// zero updates once everyone is decided. The paper highlights MIS as the
// minimum-footprint algorithm ("a single byte ... a boolean variable"); our
// state also carries the priority and round-local flags used by the
// protocol.
#ifndef XSTREAM_ALGORITHMS_MIS_H_
#define XSTREAM_ALGORITHMS_MIS_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xstream {

struct MisAlgorithm {
  explicit MisAlgorithm(uint64_t seed = 11) : seed_(seed) {}

  enum Status : uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

  struct VertexState {
    uint64_t priority = 0;
    uint8_t status = kUndecided;
    uint8_t announced = 0;         // an In vertex has already told neighbours
    uint8_t beaten = 0;            // heard from a better undecided neighbour
    uint8_t killed = 0;            // heard from an In neighbour
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    uint64_t priority;
    uint8_t src_status;
  };
#pragma pack(pop)

  uint64_t PriorityOf(VertexId v) const {
    // Tie-broken by id in the low bits: priorities are unique.
    return (SplitMix64(seed_ ^ v) & ~uint64_t{0xffffffff}) | v;
  }

  void Init(VertexId v, VertexState& s) const {
    s.priority = PriorityOf(v);
    s.status = kUndecided;
    s.announced = 0;
    s.beaten = 0;
    s.killed = 0;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (src.status == kOut || (src.status == kIn && src.announced)) {
      return false;
    }
    out.dst = e.dst;
    out.priority = src.priority;
    out.src_status = src.status;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (dst.status != kUndecided) {
      return false;
    }
    if (u.src_status == kIn) {
      dst.killed = 1;
      return true;
    }
    if (u.priority < dst.priority) {
      dst.beaten = 1;
      return true;
    }
    return false;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    if (s.status == kIn) {
      s.announced = 1;  // the round after joining, the announcement was sent
      return;
    }
    if (s.status != kUndecided) {
      return;
    }
    if (s.killed) {
      s.status = kOut;
    } else if (!s.beaten) {
      // Locally minimal among undecided neighbours: join the set.
      s.status = kIn;
    }
    s.beaten = 0;
    s.killed = 0;
  }

 private:
  uint64_t seed_;
};

static_assert(EdgeCentricAlgorithm<MisAlgorithm>);

struct MisResult {
  std::vector<uint8_t> in_set;
  uint64_t set_size = 0;
  RunStats stats;
};

template <typename Engine>
MisResult RunMis(Engine& engine, uint64_t seed = 11) {
  MisAlgorithm algo(seed);
  MisResult result;
  result.stats = engine.Run(algo);
  result.in_set.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v, const MisAlgorithm::VertexState& s) {
    result.in_set[v] = (s.status == MisAlgorithm::kIn) ? 1 : 0;
    result.set_size += result.in_set[v];
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_MIS_H_
