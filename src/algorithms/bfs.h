// Breadth-first search in the edge-centric model.
//
// The frontier is implicit: a vertex whose level was set in iteration i
// scatters level+1 along its out-edges in iteration i+1. All edges are
// streamed every iteration — discovering the frontier by streaming is
// exactly the bandwidth-for-random-access trade the paper evaluates against
// specialized BFS implementations in Figs 19-21.
#ifndef XSTREAM_ALGORITHMS_BFS_H_
#define XSTREAM_ALGORITHMS_BFS_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"

namespace xstream {

struct BfsAlgorithm {
  explicit BfsAlgorithm(VertexId root) : root_(root) {}

  struct VertexState {
    uint32_t level = UINT32_MAX;
    uint8_t active = 0;
    uint8_t next_active = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    uint32_t level;
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    s.level = (v == root_) ? 0 : UINT32_MAX;
    s.active = (v == root_) ? 1 : 0;
    s.next_active = 0;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (!src.active) {
      return false;
    }
    out.dst = e.dst;
    out.level = src.level + 1;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (dst.level == UINT32_MAX) {
      dst.level = u.level;
      dst.next_active = 1;
      return true;
    }
    return false;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    s.active = s.next_active;
    s.next_active = 0;
  }

 private:
  VertexId root_;
};

static_assert(EdgeCentricAlgorithm<BfsAlgorithm>);

struct BfsResult {
  std::vector<uint32_t> levels;  // UINT32_MAX = unreachable
  uint64_t reached = 0;
  RunStats stats;
};

template <typename Engine>
BfsResult RunBfs(Engine& engine, VertexId root, uint64_t max_iterations = UINT64_MAX) {
  BfsAlgorithm algo(root);
  BfsResult result;
  result.stats = engine.Run(algo, max_iterations);
  result.levels.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v, const BfsAlgorithm::VertexState& s) {
    result.levels[v] = s.level;
    if (s.level != UINT32_MAX) {
      ++result.reached;
    }
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_BFS_H_
