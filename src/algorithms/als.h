// Alternating Least Squares for collaborative filtering (paper §5.2, citing
// Zhou et al.'s Netflix-prize ALS [55]; "requires a bipartite graph").
//
// Users occupy vertex ids [0, num_users), items [num_users, ...). Every
// rating is stored as a pair of directed edges carrying the rating in the
// weight field. One ALS half-step fixes one side's latent vectors and
// re-solves the other side's:
//   scatter — fixed-side vertices ship (rating, latent vector) to their
//             counterpart;
//   gather  — the receiving vertex accumulates the normal equations
//             A^T A += v v^T + lambda I, A^T b += r v;
//   vertex epilogue — solve the kFactors x kFactors system by Cholesky.
// The vertex state (vector + packed upper-triangular A^T A + A^T b) is
// ~250 bytes, matching the paper's note that ALS has the largest vertex
// footprint.
#ifndef XSTREAM_ALGORITHMS_ALS_H_
#define XSTREAM_ALGORITHMS_ALS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "algorithms/dense_solver.h"
#include "core/algorithm.h"
#include "graph/types.h"
#include "util/logging.h"
#include "util/rng.h"

namespace xstream {

struct AlsAlgorithm {
  static constexpr uint32_t kFactors = 8;
  static constexpr uint32_t kTriangle = kFactors * (kFactors + 1) / 2;
  static constexpr float kLambda = 0.1f;

  AlsAlgorithm(VertexId num_users, uint64_t seed = 17) : num_users_(num_users), seed_(seed) {}

  struct VertexState {
    float vec[kFactors];
    float ata[kTriangle];  // packed upper triangle of A^T A
    float atb[kFactors];
    uint32_t ratings = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    float rating;
    float vec[kFactors];
  };
#pragma pack(pop)

  enum class Mode : uint8_t { kSolveUsers, kSolveItems, kEvaluate };

  bool IsUser(VertexId v) const { return v < num_users_; }

  void Init(VertexId v, VertexState& s) const {
    for (uint32_t i = 0; i < kFactors; ++i) {
      s.vec[i] = 0.1f + 0.9f * static_cast<float>(SplitMix64(seed_ ^ (uint64_t{v} * kFactors + i)) >> 40) *
                            (1.0f / static_cast<float>(1 << 24));
    }
    ClearAccumulators(s);
  }

  void BeforeIteration(uint64_t iter) {
    if (mode != Mode::kEvaluate) {
      // Engine iterations alternate: even = items scatter (users solved),
      // odd = users scatter (items solved).
      mode = (iter % 2 == 0) ? Mode::kSolveUsers : Mode::kSolveItems;
    }
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    bool src_is_user = IsUser(e.src);
    // kSolveUsers and kEvaluate consume item-side vectors at the users.
    bool want_item_source = (mode != Mode::kSolveItems);
    if (src_is_user == want_item_source) {
      return false;
    }
    out.dst = e.dst;
    out.rating = e.weight;
    for (uint32_t i = 0; i < kFactors; ++i) {
      out.vec[i] = src.vec[i];
    }
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (mode == Mode::kEvaluate) {
      float pred = 0.0f;
      for (uint32_t i = 0; i < kFactors; ++i) {
        pred += dst.vec[i] * u.vec[i];
      }
      float err = pred - u.rating;
      // Reuse the accumulators: atb[0] collects squared error, ratings the
      // rating count.
      dst.atb[0] += err * err;
      dst.ratings += 1;
      return true;
    }
    uint32_t t = 0;
    for (uint32_t i = 0; i < kFactors; ++i) {
      for (uint32_t j = i; j < kFactors; ++j) {
        dst.ata[t++] += u.vec[i] * u.vec[j];
      }
      dst.atb[i] += u.rating * u.vec[i];
    }
    dst.ratings += 1;
    return true;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    if (mode == Mode::kEvaluate) {
      return;  // error sums are read by the driver, then re-initialized
    }
    bool solving_users = (mode == Mode::kSolveUsers);
    if (IsUser(v) != solving_users) {
      return;
    }
    if (s.ratings > 0) {
      SolveNormalEquations(s);
    }
    ClearAccumulators(s);
  }

  Mode mode = Mode::kSolveUsers;

 private:
  static void ClearAccumulators(VertexState& s) {
    for (auto& x : s.ata) {
      x = 0.0f;
    }
    for (auto& x : s.atb) {
      x = 0.0f;
    }
    s.ratings = 0;
  }

  // Solves (A^T A + lambda*n*I) x = A^T b in place.
  static void SolveNormalEquations(VertexState& s) {
    float reg = kLambda * static_cast<float>(s.ratings);
    SolveRegularizedNormalEquations<kFactors>(s.ata, s.atb, reg, s.vec);
  }

  VertexId num_users_;
  uint64_t seed_;
};

static_assert(EdgeCentricAlgorithm<AlsAlgorithm>);

struct AlsResult {
  double rmse = 0.0;
  uint64_t ratings = 0;
  RunStats stats;
};

// Runs `iterations` full ALS sweeps (each = solve users + solve items), then
// one evaluation pass measuring training RMSE.
template <typename Engine>
AlsResult RunAls(Engine& engine, VertexId num_users, uint64_t iterations = 5,
                 uint64_t seed = 17) {
  using VS = AlsAlgorithm::VertexState;
  AlsAlgorithm algo(num_users, seed);
  AlsResult result;

  engine.VertexMap([&algo](VertexId v, VS& s) { algo.Init(v, s); });
  for (uint64_t i = 0; i < 2 * iterations; ++i) {
    engine.RunIteration(algo);
  }

  // Evaluation pass: users accumulate squared error against item vectors.
  algo.mode = AlsAlgorithm::Mode::kEvaluate;
  engine.VertexMap([](VertexId v, VS& s) {
    s.atb[0] = 0.0f;
    s.ratings = 0;
  });
  engine.RunIteration(algo);

  struct Acc {
    double se = 0.0;
    uint64_t n = 0;
  };
  Acc acc = engine.VertexFold(Acc{}, [&algo](Acc a, VertexId v, const VS& s) {
    if (algo.IsUser(v)) {
      a.se += static_cast<double>(s.atb[0]);
      a.n += s.ratings;
    }
    return a;
  });
  result.ratings = acc.n;
  result.rmse = acc.n > 0 ? std::sqrt(acc.se / static_cast<double>(acc.n)) : 0.0;
  result.stats = engine.stats();
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_ALS_H_
