// SpMV (paper §5.2): y = A·x for the weighted adjacency matrix A, one value
// per vertex. A single scatter-gather round: scatter pushes w·x[src] to dst,
// gather accumulates into y[dst].
#ifndef XSTREAM_ALGORITHMS_SPMV_H_
#define XSTREAM_ALGORITHMS_SPMV_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xstream {

struct SpmvAlgorithm {
  // x[v] is derived deterministically from (seed, v) so the out-of-core and
  // in-memory engines compute the same product without sharing an array.
  explicit SpmvAlgorithm(uint64_t seed = 0) : seed_(seed) {}

  struct VertexState {
    float x = 0.0f;
    float y = 0.0f;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    float value;
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    // Uniform in [0,1): the mix of (seed, v) keeps runs reproducible.
    s.x = static_cast<float>(SplitMix64(seed_ ^ (uint64_t{v} + 1)) >> 40) *
          (1.0f / static_cast<float>(1 << 24));
    s.y = 0.0f;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    out.dst = e.dst;
    out.value = e.weight * src.x;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    dst.y += u.value;
    return true;
  }

 private:
  uint64_t seed_;
};

static_assert(EdgeCentricAlgorithm<SpmvAlgorithm>);

struct SpmvResult {
  std::vector<float> y;
  RunStats stats;
};

template <typename Engine>
SpmvResult RunSpmv(Engine& engine, uint64_t seed = 0) {
  SpmvAlgorithm algo(seed);
  SpmvResult result;
  result.stats = engine.Run(algo, 1);  // one round is the whole product
  result.y.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v, const SpmvAlgorithm::VertexState& s) {
    result.y[v] = s.y;
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_SPMV_H_
