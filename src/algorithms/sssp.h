// Single-Source Shortest Paths (Bellman-Ford flavoured, paper §5.2).
//
// A vertex whose tentative distance improved scatters dist+w along its
// out-edges; gather keeps the minimum. Converges in at most |V| iterations
// for non-negative weights; in practice a small multiple of the weighted
// diameter.
#ifndef XSTREAM_ALGORITHMS_SSSP_H_
#define XSTREAM_ALGORITHMS_SSSP_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"

namespace xstream {

struct SsspAlgorithm {
  explicit SsspAlgorithm(VertexId root) : root_(root) {}

  struct VertexState {
    float dist = std::numeric_limits<float>::infinity();
    uint8_t active = 0;
    uint8_t next_active = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    float dist;
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    s.dist = (v == root_) ? 0.0f : std::numeric_limits<float>::infinity();
    s.active = (v == root_) ? 1 : 0;
    s.next_active = 0;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (!src.active) {
      return false;
    }
    out.dst = e.dst;
    out.dist = src.dist + e.weight;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (u.dist < dst.dist) {
      dst.dist = u.dist;
      dst.next_active = 1;
      return true;
    }
    return false;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    s.active = s.next_active;
    s.next_active = 0;
  }

 private:
  VertexId root_;
};

static_assert(EdgeCentricAlgorithm<SsspAlgorithm>);

struct SsspResult {
  std::vector<float> dist;  // +inf = unreachable
  RunStats stats;
};

template <typename Engine>
SsspResult RunSssp(Engine& engine, VertexId root, uint64_t max_iterations = UINT64_MAX) {
  SsspAlgorithm algo(root);
  SsspResult result;
  result.stats = engine.Run(algo, max_iterations);
  result.dist.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v, const SsspAlgorithm::VertexState& s) {
    result.dist[v] = s.dist;
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_SSSP_H_
