// k-Core decomposition (shipped in the original X-Stream release alongside
// the paper's §5.2 suite).
//
// The k-core is the maximal subgraph where every vertex has degree >= k,
// obtained by iteratively peeling lower-degree vertices. Edge-centric
// formulation over an undirected (both-directions) edge list:
//   phase 0  — degree counting (one update per edge to its destination);
//   rounds   — a vertex whose degree drops below k marks itself removed and,
//              in the next round, scatters one decrement to each neighbour
//              (announced exactly once, like MIS's announcements);
// terminating when a round produces no updates. Survivors form the k-core.
#ifndef XSTREAM_ALGORITHMS_KCORES_H_
#define XSTREAM_ALGORITHMS_KCORES_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"

namespace xstream {

struct KCoreAlgorithm {
  explicit KCoreAlgorithm(uint32_t k) : k_(k) {}

  struct VertexState {
    uint32_t degree = 0;
    uint8_t removed = 0;
    uint8_t announced = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    uint8_t kind;  // 0 = degree increment (phase 0), 1 = removal decrement
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    s.degree = 0;
    s.removed = 0;
    s.announced = 0;
  }

  void BeforeIteration(uint64_t iter) { phase_ = iter; }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (phase_ == 0) {
      out.dst = e.dst;
      out.kind = 0;
      return true;
    }
    if (src.removed && !src.announced) {
      out.dst = e.dst;
      out.kind = 1;
      return true;
    }
    return false;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (u.kind == 0) {
      dst.degree += 1;
    } else if (dst.degree > 0) {
      dst.degree -= 1;
    }
    return true;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    if (s.removed) {
      if (!s.announced && phase_ > 0) {
        s.announced = 1;  // its decrements went out this round
      }
      return;
    }
    // Initial peel right after the degree phase, re-checks every round.
    if (s.degree < k_) {
      s.removed = 1;
    }
  }

 private:
  uint32_t k_;
  uint64_t phase_ = 0;
};

static_assert(EdgeCentricAlgorithm<KCoreAlgorithm>);

struct KCoreResult {
  std::vector<uint8_t> in_core;
  uint64_t core_size = 0;
  RunStats stats;
};

// Runs the peeling to fixpoint on an undirected (both-directions) edge list.
template <typename Engine>
KCoreResult RunKCore(Engine& engine, uint32_t k) {
  KCoreAlgorithm algo(k);
  KCoreResult result;
  result.stats = engine.Run(algo);
  result.in_core.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v,
                                 const KCoreAlgorithm::VertexState& s) {
    result.in_core[v] = s.removed ? 0 : 1;
    result.core_size += result.in_core[v];
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_KCORES_H_
