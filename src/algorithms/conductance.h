// Conductance (paper §5.2, citing [20]): for a vertex set S,
// phi(S) = cross_edges(S, V\S) / min(vol(S), vol(V\S)).
//
// One scatter-gather round: every edge sends its source's side to the
// destination; gather counts received updates (the in-volume, equal to
// degree volume when both edge directions are present) and cross edges. The
// final ratio comes from a vertex fold.
#ifndef XSTREAM_ALGORITHMS_CONDUCTANCE_H_
#define XSTREAM_ALGORITHMS_CONDUCTANCE_H_

#include <algorithm>
#include <cstdint>

#include "core/algorithm.h"
#include "graph/types.h"
#include "util/rng.h"

namespace xstream {

struct ConductanceAlgorithm {
  // side(v) = hash(seed, v) & 1 — a pseudo-random balanced cut, matching the
  // paper's use of conductance as a pure streaming kernel.
  explicit ConductanceAlgorithm(uint64_t seed = 7) : seed_(seed) {}

  struct VertexState {
    uint32_t in_volume = 0;
    uint32_t cross = 0;
    uint8_t side = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    uint8_t src_side;
  };
#pragma pack(pop)

  uint8_t SideOf(VertexId v) const {
    return static_cast<uint8_t>(SplitMix64(seed_ ^ (uint64_t{v} + 0x9e37)) & 1);
  }

  void Init(VertexId v, VertexState& s) const {
    s.side = SideOf(v);
    s.in_volume = 0;
    s.cross = 0;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    out.dst = e.dst;
    out.src_side = src.side;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    dst.in_volume += 1;
    if (u.src_side != dst.side) {
      dst.cross += 1;
    }
    return true;
  }

 private:
  uint64_t seed_;
};

static_assert(EdgeCentricAlgorithm<ConductanceAlgorithm>);

struct ConductanceResult {
  double conductance = 0.0;
  uint64_t cross_edges = 0;
  uint64_t volume_s = 0;
  uint64_t volume_rest = 0;
  RunStats stats;
};

template <typename Engine>
ConductanceResult RunConductance(Engine& engine, uint64_t seed = 7) {
  ConductanceAlgorithm algo(seed);
  ConductanceResult result;
  result.stats = engine.Run(algo, 1);
  struct Acc {
    uint64_t cross = 0, vol_s = 0, vol_rest = 0;
  };
  Acc acc = engine.VertexFold(Acc{}, [](Acc a, VertexId v,
                                        const ConductanceAlgorithm::VertexState& s) {
    a.cross += s.cross;
    if (s.side) {
      a.vol_s += s.in_volume;
    } else {
      a.vol_rest += s.in_volume;
    }
    return a;
  });
  result.cross_edges = acc.cross;
  result.volume_s = acc.vol_s;
  result.volume_rest = acc.vol_rest;
  uint64_t denom = std::min(acc.vol_s, acc.vol_rest);
  result.conductance = denom > 0 ? static_cast<double>(acc.cross) / static_cast<double>(denom)
                                 : 0.0;
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_CONDUCTANCE_H_
