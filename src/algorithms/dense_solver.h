// Small dense linear solver shared by the ALS implementations (X-Stream
// scatter-gather ALS and the GraphChi-like PSW ALS): solves the regularized
// normal equations (A^T A + reg·I) x = A^T b via Cholesky.
#ifndef XSTREAM_ALGORITHMS_DENSE_SOLVER_H_
#define XSTREAM_ALGORITHMS_DENSE_SOLVER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace xstream {

// `ata_packed` holds the upper triangle row-major: (0,0),(0,1)..(0,K-1),
// (1,1).. — K*(K+1)/2 entries. `x` receives the solution.
template <uint32_t K>
void SolveRegularizedNormalEquations(const float* ata_packed, const float* atb, float reg,
                                     float* x) {
  float m[K][K];
  uint32_t t = 0;
  for (uint32_t i = 0; i < K; ++i) {
    for (uint32_t j = i; j < K; ++j) {
      m[i][j] = ata_packed[t];
      m[j][i] = ata_packed[t];
      ++t;
    }
    m[i][i] += reg;
  }
  // Cholesky: m = L L^T (the regularizer keeps it positive definite).
  float l[K][K] = {};
  for (uint32_t i = 0; i < K; ++i) {
    for (uint32_t j = 0; j <= i; ++j) {
      float sum = m[i][j];
      for (uint32_t k = 0; k < j; ++k) {
        sum -= l[i][k] * l[j][k];
      }
      if (i == j) {
        l[i][i] = std::sqrt(std::max(sum, 1e-9f));
      } else {
        l[i][j] = sum / l[j][j];
      }
    }
  }
  // Ly = atb, then L^T x = y.
  float y[K];
  for (uint32_t i = 0; i < K; ++i) {
    float sum = atb[i];
    for (uint32_t k = 0; k < i; ++k) {
      sum -= l[i][k] * y[k];
    }
    y[i] = sum / l[i][i];
  }
  for (int ii = static_cast<int>(K) - 1; ii >= 0; --ii) {
    uint32_t i = static_cast<uint32_t>(ii);
    float sum = y[i];
    for (uint32_t k = i + 1; k < K; ++k) {
      sum -= l[k][i] * x[k];
    }
    x[i] = sum / l[i][i];
  }
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_DENSE_SOLVER_H_
