// Umbrella header: every scatter-gather algorithm shipped with the library
// (the paper's §5.2 suite plus BFS and HyperANF).
#ifndef XSTREAM_ALGORITHMS_ALGORITHMS_H_
#define XSTREAM_ALGORITHMS_ALGORITHMS_H_

#include "algorithms/als.h"
#include "algorithms/bfs.h"
#include "algorithms/bp.h"
#include "algorithms/conductance.h"
#include "algorithms/hyperanf.h"
#include "algorithms/mcst.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/scc.h"
#include "algorithms/spmv.h"
#include "algorithms/sssp.h"
#include "algorithms/wcc.h"

#endif  // XSTREAM_ALGORITHMS_ALGORITHMS_H_
