// Strongly Connected Components (paper §5.2, citing Salihoglu & Widom's
// Pregel-style coloring algorithm).
//
// The classic coloring/FW-BW scheme translated to edge-centric streaming:
// repeat until every vertex is assigned an SCC —
//   1. Forward coloring: unassigned vertices propagate the maximum vertex id
//      reachable along forward edges to a fixpoint ("colors").
//   2. Backward sweep: each color root (vertex whose color equals its own
//      id) claims, along *reverse* edges but only within its color region,
//      every vertex that can reach it; those vertices form one SCC.
//
// Backward propagation without random access is achieved by doubling the
// edge list: each original edge (u,v) is stored as (u,v,+1) and (v,u,-1) —
// the weight field carries the direction flag. Both record sets are
// streamed every iteration; the scatter filter picks the direction, which
// charges the full streaming cost of the unused half to the run (the waste
// trade-off of §5.3 made explicit).
#ifndef XSTREAM_ALGORITHMS_SCC_H_
#define XSTREAM_ALGORITHMS_SCC_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"

namespace xstream {

// Builds the direction-flagged edge list consumed by SccAlgorithm.
inline EdgeList MakeSccEdgeList(const EdgeList& directed_edges) {
  EdgeList flagged;
  flagged.reserve(directed_edges.size() * 2);
  for (const Edge& e : directed_edges) {
    flagged.push_back(Edge{e.src, e.dst, +1.0f});
    flagged.push_back(Edge{e.dst, e.src, -1.0f});
  }
  return flagged;
}

struct SccAlgorithm {
  enum class Phase : uint8_t { kForward, kBackward };

  struct VertexState {
    uint32_t color = 0;
    uint32_t scc = kUnassigned;
    uint8_t active = 0;
    uint8_t next_active = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    uint32_t color;
  };
#pragma pack(pop)

  static constexpr uint32_t kUnassigned = UINT32_MAX;

  // Init is only used by the engine's Run() convenience, which the SCC
  // driver does not use; the driver re-initializes per round via VertexMap.
  void Init(VertexId v, VertexState& s) const {
    s.color = v;
    s.scc = kUnassigned;
    s.active = 1;
    s.next_active = 0;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (phase == Phase::kForward) {
      if (e.weight < 0 || src.scc != kUnassigned || !src.active) {
        return false;
      }
      out.dst = e.dst;
      out.color = src.color;
      return true;
    }
    // Backward: claimed vertices recruit same-colored in-neighbours.
    if (e.weight > 0 || src.scc == kUnassigned || !src.active) {
      return false;
    }
    out.dst = e.dst;
    out.color = src.color;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (dst.scc != kUnassigned) {
      return false;
    }
    if (phase == Phase::kForward) {
      if (u.color > dst.color) {
        dst.color = u.color;
        dst.next_active = 1;
        return true;
      }
      return false;
    }
    if (dst.color == u.color) {
      dst.scc = u.color;
      dst.next_active = 1;
      return true;
    }
    return false;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    s.active = s.next_active;
    s.next_active = 0;
  }

  Phase phase = Phase::kForward;
};

static_assert(EdgeCentricAlgorithm<SccAlgorithm>);

struct SccResult {
  std::vector<uint32_t> scc;  // scc[v] = id of v's SCC (a member vertex id)
  uint64_t num_sccs = 0;
  uint64_t rounds = 0;
  RunStats stats;
};

// Runs SCC on an engine built over MakeSccEdgeList(original_edges).
template <typename Engine>
SccResult RunScc(Engine& engine) {
  using VS = SccAlgorithm::VertexState;
  SccAlgorithm algo;
  SccResult result;

  // Global init: everything unassigned.
  engine.VertexMap([&algo](VertexId v, VS& s) { algo.Init(v, s); });

  uint64_t unassigned = engine.num_vertices();
  while (unassigned > 0) {
    ++result.rounds;
    // Forward coloring to fixpoint.
    engine.VertexMap([](VertexId v, VS& s) {
      if (s.scc == SccAlgorithm::kUnassigned) {
        s.color = v;
        s.active = 1;
        s.next_active = 0;
      } else {
        s.active = 0;
        s.next_active = 0;
      }
    });
    algo.phase = SccAlgorithm::Phase::kForward;
    while (engine.RunIteration(algo).updates_generated > 0) {
    }

    // Roots claim themselves, then recruit backward within their color.
    engine.VertexMap([](VertexId v, VS& s) {
      if (s.scc == SccAlgorithm::kUnassigned && s.color == v) {
        s.scc = v;
        s.active = 1;
      } else {
        s.active = 0;
      }
      s.next_active = 0;
    });
    algo.phase = SccAlgorithm::Phase::kBackward;
    while (engine.RunIteration(algo).updates_generated > 0) {
    }

    uint64_t remaining = engine.VertexFold(
        uint64_t{0}, [](uint64_t acc, VertexId v, const VS& s) {
          return acc + (s.scc == SccAlgorithm::kUnassigned ? 1 : 0);
        });
    XS_CHECK_LT(remaining, unassigned) << "SCC made no progress";
    unassigned = remaining;
  }

  result.stats = engine.stats();
  result.scc.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v, const VS& s) {
    result.scc[v] = s.scc;
    if (s.scc == v) {
      ++result.num_sccs;
    }
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_SCC_H_
