// Weakly Connected Components via min-label propagation (paper §5.2).
//
// Every vertex starts labelled with its own id; active vertices scatter
// their label along out-edges; gather keeps the minimum. A vertex is active
// in iteration i+1 iff its label shrank in iteration i — the classic
// edge-centric WCC whose iteration count tracks the graph diameter
// (Fig 12b). Undirected semantics require the edge list to contain both
// directions (the standard X-Stream input convention).
#ifndef XSTREAM_ALGORITHMS_WCC_H_
#define XSTREAM_ALGORITHMS_WCC_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"

namespace xstream {

struct WccAlgorithm {
  struct VertexState {
    VertexId label = 0;
    uint8_t active = 0;
    uint8_t next_active = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    VertexId label;
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    s.label = v;
    s.active = 1;
    s.next_active = 0;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (!src.active) {
      return false;
    }
    out.dst = e.dst;
    out.label = src.label;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (u.label < dst.label) {
      dst.label = u.label;
      dst.next_active = 1;
      return true;
    }
    return false;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    s.active = s.next_active;
    s.next_active = 0;
  }
};

static_assert(EdgeCentricAlgorithm<WccAlgorithm>);

struct WccResult {
  std::vector<VertexId> labels;
  uint64_t num_components = 0;
  RunStats stats;
};

// Runs WCC to convergence on either engine and extracts component labels.
// `max_iterations` caps pathological high-diameter runs (Fig 12's "did not
// finish in a reasonable amount of time").
template <typename Engine>
WccResult RunWcc(Engine& engine, uint64_t max_iterations = UINT64_MAX) {
  WccAlgorithm algo;
  WccResult result;
  result.stats = engine.Run(algo, max_iterations);
  result.labels.resize(engine.num_vertices());
  result.num_components = 0;
  engine.VertexFold(0, [&result](int acc, VertexId v,
                                 const WccAlgorithm::VertexState& s) {
    result.labels[v] = s.label;
    if (s.label == v) {
      ++result.num_components;
    }
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_WCC_H_
