// Minimum Cost Spanning Tree (paper §5.2, GHS [30] style).
//
// Borůvka/GHS rounds expressed edge-centrically:
//   1. Streaming phase (scatter-gather): every edge ships (weight, source
//      component) to its destination; each vertex keeps the lightest edge
//      arriving from a *different* component — by the cut property that edge
//      belongs to the MST (weights are unique after deterministic
//      tie-breaking).
//   2. Contraction phase (driver): the chosen edges hook components
//      together in a union-find; component labels are re-flattened into the
//      vertex states.
// Rounds repeat until no vertex sees a cross-component edge. The GHS
// convergecast is replaced by the union-find contraction — a |V|-sized
// in-memory structure, consistent with the paper's own optimization of
// keeping the vertex array memory-resident when it fits (§3.2); the
// edge-heavy work remains pure streaming.
#ifndef XSTREAM_ALGORITHMS_MCST_H_
#define XSTREAM_ALGORITHMS_MCST_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"

namespace xstream {

struct McstAlgorithm {
  struct VertexState {
    uint32_t component = 0;
    // Lightest cross-component edge seen this round (tie-broken on the
    // source component id, then source vertex id, for determinism).
    float best_weight = 0.0f;
    uint32_t best_src_comp = kNone;
    uint32_t best_src = kNone;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    float weight;
    uint32_t src_comp;
    VertexId src;
  };
#pragma pack(pop)

  static constexpr uint32_t kNone = UINT32_MAX;

  void Init(VertexId v, VertexState& s) const {
    s.component = v;
    s.best_src_comp = kNone;
    s.best_src = kNone;
    s.best_weight = 0.0f;
  }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    out.dst = e.dst;
    out.weight = e.weight;
    out.src_comp = src.component;
    out.src = e.src;
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (u.src_comp == dst.component) {
      return false;  // internal edge: not a candidate
    }
    bool better = dst.best_src_comp == kNone || u.weight < dst.best_weight ||
                  (u.weight == dst.best_weight &&
                   (u.src_comp < dst.best_src_comp ||
                    (u.src_comp == dst.best_src_comp && u.src < dst.best_src)));
    if (better) {
      dst.best_weight = u.weight;
      dst.best_src_comp = u.src_comp;
      dst.best_src = u.src;
      return true;
    }
    return false;
  }
};

static_assert(EdgeCentricAlgorithm<McstAlgorithm>);

struct McstResult {
  double total_weight = 0.0;
  uint64_t tree_edges = 0;
  uint64_t rounds = 0;
  std::vector<uint32_t> component;  // spanning forest component per vertex
  RunStats stats;
};

// Runs MCST on an engine built over an undirected (both-directions) weighted
// edge list. Assumes unique weights after tie-breaking; the generators
// produce i.i.d. floats, so ties are measure-zero (and broken consistently).
template <typename Engine>
McstResult RunMcst(Engine& engine) {
  using VS = McstAlgorithm::VertexState;
  McstAlgorithm algo;
  McstResult result;
  uint64_t n = engine.num_vertices();

  std::vector<uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  engine.VertexMap([&algo](VertexId v, VS& s) { algo.Init(v, s); });

  for (;;) {
    ++result.rounds;
    // Reset per-round candidates, then stream all edges once.
    engine.VertexMap([](VertexId v, VS& s) {
      s.best_src_comp = McstAlgorithm::kNone;
      s.best_src = McstAlgorithm::kNone;
    });
    IterationStats iter = engine.RunIteration(algo);
    if (iter.updates_generated == 0) {
      break;  // isolated vertices only
    }

    // Reduce the per-vertex candidates to one lightest outgoing edge per
    // *component* (Borůvka's invariant: only the component-wide minimum is
    // guaranteed to be an MST edge by the cut property).
    struct Cand {
      float weight = 0.0f;
      uint32_t other_comp = McstAlgorithm::kNone;
      uint32_t src = McstAlgorithm::kNone;
      bool valid = false;
    };
    std::unordered_map<uint32_t, Cand> best;
    engine.VertexFold(0, [&](int acc, VertexId v, const VS& s) {
      if (s.best_src_comp == McstAlgorithm::kNone) {
        return acc;
      }
      uint32_t root = find(s.component);
      Cand& c = best[root];
      bool better = !c.valid || s.best_weight < c.weight ||
                    (s.best_weight == c.weight &&
                     (s.best_src_comp < c.other_comp ||
                      (s.best_src_comp == c.other_comp && s.best_src < c.src)));
      if (better) {
        c = Cand{s.best_weight, s.best_src_comp, s.best_src, true};
      }
      return acc;
    });

    // Hook each component along its winning edge. Two components choosing
    // edges to each other necessarily chose the same (unique-min) edge, so
    // the second union is a no-op and the weight is counted once.
    uint64_t merges = 0;
    for (const auto& [root, c] : best) {
      uint32_t a = find(root);
      uint32_t b = find(c.other_comp);
      if (a != b) {
        parent[std::max(a, b)] = std::min(a, b);
        result.total_weight += static_cast<double>(c.weight);
        ++result.tree_edges;
        ++merges;
      }
    }
    if (merges == 0) {
      break;  // every remaining candidate was already intra-component
    }
    // Flatten labels back into the vertex states for the next round.
    engine.VertexMap([&](VertexId v, VS& s) { s.component = find(s.component); });
  }

  result.component.resize(n);
  engine.VertexFold(0, [&](int acc, VertexId v, const VS& s) {
    result.component[v] = s.component;
    return acc;
  });
  result.stats = engine.stats();
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_MCST_H_
