// PageRank (paper §5.2: "Pagerank [42] (5 iterations)").
//
// Pure scatter-gather needs the out-degree of each vertex, which X-Stream's
// API cannot read directly; it is computed with one extra edge-centric
// iteration whose updates are addressed *back to the source* (u.dst =
// e.src). Rank iterations then push rank/degree along edges; gather sums;
// the per-iteration vertex epilogue applies damping.
#ifndef XSTREAM_ALGORITHMS_PAGERANK_H_
#define XSTREAM_ALGORITHMS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "core/algorithm.h"
#include "graph/types.h"

namespace xstream {

struct PageRankAlgorithm {
  PageRankAlgorithm(uint64_t num_vertices, uint64_t rank_iterations)
      : num_vertices_(num_vertices), rank_iterations_(rank_iterations) {}

  struct VertexState {
    float rank = 0.0f;
    float sum = 0.0f;
    uint32_t degree = 0;
  };

#pragma pack(push, 1)
  struct Update {
    VertexId dst;
    float value;
  };
#pragma pack(pop)

  void Init(VertexId v, VertexState& s) const {
    s.rank = 1.0f / static_cast<float>(num_vertices_);
    s.sum = 0.0f;
    s.degree = 0;
  }

  void BeforeIteration(uint64_t iter) { phase_ = iter; }

  bool Scatter(const VertexState& src, const Edge& e, Update& out) const {
    if (phase_ == 0) {
      // Degree-counting round: one "+1" addressed back to the source.
      out.dst = e.src;
      out.value = 1.0f;
      return true;
    }
    if (src.degree == 0) {
      return false;
    }
    out.dst = e.dst;
    out.value = src.rank / static_cast<float>(src.degree);
    return true;
  }

  bool Gather(VertexState& dst, const Update& u) const {
    if (phase_ == 0) {
      dst.degree += 1;
    } else {
      dst.sum += u.value;
    }
    return true;
  }

  void EndVertex(VertexId v, VertexState& s) const {
    if (phase_ == 0) {
      return;  // ranks stay at 1/N until the first rank round
    }
    s.rank = (1.0f - kDamping) / static_cast<float>(num_vertices_) + kDamping * s.sum;
    s.sum = 0.0f;
  }

  bool Done(const IterationStats& stats) const {
    // Phase 0 (degrees) + rank_iterations_ rank rounds.
    return stats.iteration + 1 >= rank_iterations_ + 1;
  }

  static constexpr float kDamping = 0.85f;

 private:
  uint64_t num_vertices_;
  uint64_t rank_iterations_;
  uint64_t phase_ = 0;
};

static_assert(EdgeCentricAlgorithm<PageRankAlgorithm>);

struct PageRankResult {
  std::vector<float> ranks;
  RunStats stats;
};

template <typename Engine>
PageRankResult RunPageRank(Engine& engine, uint64_t iterations = 5) {
  PageRankAlgorithm algo(engine.num_vertices(), iterations);
  PageRankResult result;
  result.stats = engine.Run(algo, iterations + 1);
  result.ranks.resize(engine.num_vertices());
  engine.VertexFold(0, [&result](int acc, VertexId v,
                                 const PageRankAlgorithm::VertexState& s) {
    result.ranks[v] = s.rank;
    return acc;
  });
  return result;
}

}  // namespace xstream

#endif  // XSTREAM_ALGORITHMS_PAGERANK_H_
