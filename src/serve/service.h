// GraphService: the xstream-serve daemon's core — mounted graphs, a
// fair-share JobScheduler per graph, and the /v1 REST surface.
//
// The serving model keeps X-Stream's batch machinery intact and wraps it:
// each mounted graph owns one partitioned scan source (in-RAM chunks or
// partitioned edge files, per ServiceOptions::engine) plus one JobScheduler
// whose shared-scan rounds run on a dedicated pump thread. An HTTP query is
// just a ScheduledJob built by the same algo_jobs factory the CLI --jobs
// path uses, submitted under its tenant through TrySubmit — so results are
// bit-identical to a solo batch run, quotas turn into HTTP 429s, and the
// scheduler's weighted-deficit admission is what makes the service
// multi-tenant fair.
//
// REST surface (mounted on an obs::HttpExporter prefix route, sharing the
// port with /metrics, /healthz, /stats, /trace, /attribution):
//   POST   /v1/jobs            {"graph","algo","tenant"?,"params"?} -> 201
//   GET    /v1/jobs            all job reports (newest last)
//   GET    /v1/jobs/<id>       one job's status + progress
//   GET    /v1/jobs/<id>/result per-vertex values once done (409 while
//                              running, 410 after cancellation)
//   DELETE /v1/jobs/<id>       cancel -> 202
//   GET    /v1/graphs          mounted graphs + their layouts
//   GET    /v1/tenants         per-tenant fair-share counters
// Errors: malformed JSON 400, unknown graph 404, unknown algo 400, quota
// rejection 429 + Retry-After, draining 503 + Retry-After.
//
// Shutdown: BeginDrain() flips submissions to 503 while running jobs keep
// their scan rounds; WaitIdle() joins the backlog (driving it too); Stop()
// parks the pump threads. The daemon wires SIGTERM to exactly that
// sequence, so in-flight queries finish before exit.
//
// Thread-safety: Mount() is setup-time (before Start). Handle() runs on the
// exporter thread concurrently with the pump threads; everything they share
// sits behind mu_ or inside the thread-safe scheduler API.
#ifndef XSTREAM_SERVE_SERVICE_H_
#define XSTREAM_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/types.h"
#include "obs/http_exporter.h"
#include "scheduler/algo_jobs.h"
#include "scheduler/scheduler.h"
#include "storage/posix_device.h"
#include "threads/thread_pool.h"

namespace xstream::serve {

/// One graph to mount at startup.
struct GraphSpec {
  std::string name;
  EdgeList edges;
};

/// Service-wide configuration (plain data, set before construction).
struct ServiceOptions {
  /// Substrate for every mounted graph: "in-memory" shares RAM edge chunks,
  /// "out-of-core"/"hybrid" share partitioned edge files under `workdir`.
  std::string engine = "in-memory";
  std::string workdir;        // scratch dir when empty (device engines only)
  int threads = 0;            // shared compute pool size, 0 = all cores
  uint32_t partitions = 0;    // per-graph partition count, 0 = auto
  size_t io_unit_bytes = 1 << 20;
  /// Per-job streaming budget for device-backed jobs (the CLI's --budget-mb).
  uint64_t job_budget_bytes = 64ull << 20;
  /// Fair-share admission config (weights, quotas, memory budget) applied
  /// to every graph's scheduler.
  SchedulerOptions scheduler;
  /// Request-body ceiling forwarded to the exporter (413 above it).
  size_t max_body_bytes = 1 << 20;
};

class GraphService {
 public:
  explicit GraphService(ServiceOptions opts);
  ~GraphService();  // Stop()s; abandons whatever WaitIdle was not called for

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// Partitions and mounts one graph. Call before Start(); aborts on
  /// duplicate names.
  void Mount(GraphSpec spec);

  /// Registers the /v1 routes on `exporter` and starts one pump thread per
  /// mounted graph. The exporter must outlive this service.
  void Start(obs::HttpExporter& exporter);

  /// Stops admitting new jobs (POST answers 503 + Retry-After); running and
  /// queued jobs continue. Idempotent.
  void BeginDrain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Blocks until every scheduler's backlog is empty, lending this thread
  /// as a driver alongside the pumps.
  void WaitIdle();

  /// Parks the pump threads. Idempotent; the destructor calls it.
  void Stop();

  /// The /v1 entry point (public so tests can drive it in-process too).
  obs::HttpResponse Handle(const obs::HttpRequest& request);

  std::vector<std::string> graph_names() const;
  JobScheduler* scheduler(const std::string& graph);  // nullptr if unknown

 private:
  struct GraphContext {
    std::string name;
    GraphInfo info;
    PartitionLayout layout;
    std::unique_ptr<PosixDevice> disk;      // device engines only
    std::unique_ptr<ScanSource> source;
    std::unique_ptr<JobScheduler> scheduler;
    std::thread pump;
    uint64_t completed_seen = 0;  // pump-local, for the serve.jobs_completed counter
  };
  // One submitted job as the service tracks it (scheduler ids are
  // per-graph; service ids are global across graphs).
  struct JobEntry {
    uint64_t id = 0;
    GraphContext* graph = nullptr;
    JobId sched_id = 0;
    std::string tenant;
    JobSpec spec;
    std::shared_ptr<JobOutput> output;
  };

  void PumpLoop(GraphContext* ctx);
  obs::HttpResponse HandleJobs(const obs::HttpRequest& request);
  obs::HttpResponse SubmitJob(const obs::HttpRequest& request);
  obs::HttpResponse JobStatus(const JobEntry& entry) const;
  obs::HttpResponse JobResult(const JobEntry& entry) const;
  obs::HttpResponse ListGraphs() const;
  obs::HttpResponse ListTenants() const;
  const JobEntry* FindJobLocked(uint64_t id) const;

  ServiceOptions opts_;
  ThreadPool pool_;
  std::unique_ptr<ScratchDir> scratch_;

  mutable std::mutex mu_;                 // guards jobs_ and next_job_id_
  std::map<uint64_t, JobEntry> jobs_;
  uint64_t next_job_id_ = 1;

  std::vector<std::unique_ptr<GraphContext>> graphs_;  // fixed after Start()
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::mutex pump_mu_;                    // pairs with pump_cv_
  std::condition_variable pump_cv_;       // submission -> pump wakeup
  bool started_ = false;
};

}  // namespace xstream::serve

#endif  // XSTREAM_SERVE_SERVICE_H_
