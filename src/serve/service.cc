#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <utility>

#include "core/sizing.h"
#include "graph/edge_io.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/json.h"
#include "util/logging.h"

namespace xstream::serve {

namespace {

obs::HttpResponse JsonError(int status, const std::string& message,
                            const char* retry_after = nullptr) {
  JsonWriter w;
  w.BeginObject();
  w.Field("error", std::string_view(message));
  w.EndObject();
  obs::HttpResponse resp{status, "application/json", w.TakeString() + "\n"};
  if (retry_after != nullptr) {
    resp.headers.emplace_back("Retry-After", retry_after);
  }
  return resp;
}

// Validates and converts one POST body into a JobSpec. The factory's own
// ParseJobSpec aborts on bad algos (CLI semantics); a service must answer
// 400 instead, so the validation lives here.
bool SpecFromJson(const JsonValue& body, JobSpec* spec, std::string* error) {
  const JsonValue* algo = body.Get("algo");
  if (algo == nullptr || !algo->is_string()) {
    *error = "missing required string field \"algo\"";
    return false;
  }
  const auto& known = KnownJobAlgorithms();
  if (std::find(known.begin(), known.end(), algo->as_string()) == known.end()) {
    *error = "unknown algo \"" + algo->as_string() + "\"";
    return false;
  }
  spec->algo = algo->as_string();
  spec->name = spec->algo;
  if (const JsonValue* name = body.Get("name"); name != nullptr && name->is_string()) {
    spec->name = name->as_string();
  }
  if (const JsonValue* params = body.Get("params")) {
    if (!params->is_object()) {
      *error = "\"params\" must be an object";
      return false;
    }
    for (const auto& [key, value] : params->as_object()) {
      if (!value.is_number()) {
        *error = "param \"" + key + "\" must be a number";
        return false;
      }
      if (key == "root" || key == "src") {
        spec->root = static_cast<VertexId>(value.as_int());
      } else if (key == "iterations" || key == "iters") {
        spec->iterations = static_cast<uint64_t>(value.as_int());
      } else if (key == "seed") {
        spec->seed = static_cast<uint64_t>(value.as_int());
      } else if (key == "max_iterations") {
        spec->max_iterations = static_cast<uint64_t>(value.as_int());
      } else {
        *error = "unknown param \"" + key + "\"";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

GraphService::GraphService(ServiceOptions opts)
    : opts_(std::move(opts)), pool_(opts_.threads > 0 ? opts_.threads : NumCores()) {}

GraphService::~GraphService() { Stop(); }

void GraphService::Mount(GraphSpec spec) {
  XS_CHECK(!started_) << "Mount after Start";
  for (const auto& g : graphs_) {
    XS_CHECK(g->name != spec.name) << "duplicate graph \"" << spec.name << "\"";
  }
  auto ctx = std::make_unique<GraphContext>();
  ctx->name = spec.name;
  ctx->info = ScanEdges(spec.edges);
  uint32_t k = opts_.partitions;
  if (k == 0) {
    // Same auto-sizing as the CLI --jobs path: 16 B/vertex covers every job
    // algorithm's state against the per-job streaming budget.
    k = opts_.engine == "in-memory"
            ? 8
            : ChooseOutOfCorePartitions(ctx->info.num_vertices * 16, opts_.job_budget_bytes,
                                        opts_.io_unit_bytes);
  }
  ctx->layout = PartitionLayout(ctx->info.num_vertices, k);
  if (opts_.engine == "in-memory") {
    ctx->source = std::make_unique<MemoryScanSource>(pool_, ctx->layout, spec.edges);
  } else {
    XS_CHECK(opts_.engine == "out-of-core" || opts_.engine == "hybrid")
        << "unknown serve engine \"" << opts_.engine << "\"";
    if (opts_.workdir.empty() && scratch_ == nullptr) {
      scratch_ = std::make_unique<ScratchDir>("xstream-serve");
    }
    std::string workdir = opts_.workdir.empty() ? scratch_->path() : opts_.workdir;
    ctx->disk = std::make_unique<PosixDevice>("disk-" + spec.name, workdir);
    std::string edge_file = spec.name + ".edges";
    WriteEdgeFile(*ctx->disk, edge_file, spec.edges);
    DeviceScanSource::Options sopts;
    sopts.io_unit_bytes = opts_.io_unit_bytes;
    sopts.file_prefix = spec.name + ".scan";
    sopts.collect_dst_tallies = opts_.engine == "hybrid";
    ctx->source = std::make_unique<DeviceScanSource>(pool_, ctx->layout, sopts, *ctx->disk,
                                                     edge_file);
  }
  ctx->scheduler = std::make_unique<JobScheduler>(*ctx->source, opts_.scheduler);
  XS_LOG(Info) << "serve: mounted graph \"" << spec.name << "\" (" << ctx->info.num_vertices
               << " vertices, " << ctx->info.num_edges << " edges, " << k << " partitions, "
               << opts_.engine << ")";
  graphs_.push_back(std::move(ctx));
}

void GraphService::Start(obs::HttpExporter& exporter) {
  XS_CHECK(!started_);
  started_ = true;
  exporter.set_max_body_bytes(opts_.max_body_bytes);
  exporter.HandlePrefix("/v1", [this](const obs::HttpRequest& request) {
    return Handle(request);
  });
  for (auto& ctx : graphs_) {
    ctx->pump = std::thread([this, c = ctx.get()] { PumpLoop(c); });
  }
}

void GraphService::PumpLoop(GraphContext* ctx) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    bool more = false;
    try {
      more = ctx->scheduler->PumpOne();
    } catch (const std::exception& e) {
      // A job's spill/gather I/O error propagates out of the boundary by
      // design; a daemon logs it and keeps serving the other jobs rather
      // than dying with the whole tenant population.
      XS_LOG(Error) << "serve: pump error on graph \"" << ctx->name << "\": " << e.what();
    }
    // Completion counter: the scheduler's own stats are per-graph; the
    // serve-level counter aggregates them for the /metrics smoke checks.
    uint64_t completed = ctx->scheduler->stats().jobs_completed;
    if (completed > ctx->completed_seen) {
      obs::MetricsRegistry::Global()
          .counter("serve.jobs_completed")
          .Add(completed - ctx->completed_seen);
      ctx->completed_seen = completed;
    }
    if (more) {
      continue;
    }
    // Idle: sleep until a submission pokes the cv (the timeout papers over
    // the submit-before-wait race without busy-spinning).
    std::unique_lock<std::mutex> lk(pump_mu_);
    pump_cv_.wait_for(lk, std::chrono::milliseconds(50));
  }
}

void GraphService::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  pump_cv_.notify_all();
}

void GraphService::WaitIdle() {
  // RunAll lends this thread as a driver: it pumps whenever the graph's own
  // pump thread is between boundaries, and otherwise waits on them.
  for (auto& ctx : graphs_) {
    ctx->scheduler->RunAll();
  }
}

void GraphService::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    return;
  }
  pump_cv_.notify_all();
  for (auto& ctx : graphs_) {
    if (ctx->pump.joinable()) {
      ctx->pump.join();
    }
  }
}

std::vector<std::string> GraphService::graph_names() const {
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& ctx : graphs_) {
    names.push_back(ctx->name);
  }
  return names;
}

JobScheduler* GraphService::scheduler(const std::string& graph) {
  for (auto& ctx : graphs_) {
    if (ctx->name == graph) {
      return ctx->scheduler.get();
    }
  }
  return nullptr;
}

const GraphService::JobEntry* GraphService::FindJobLocked(uint64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

obs::HttpResponse GraphService::Handle(const obs::HttpRequest& request) {
  if (request.path.rfind("/v1/jobs", 0) == 0) {
    return HandleJobs(request);
  }
  if (request.path == "/v1/graphs" && request.method == "GET") {
    return ListGraphs();
  }
  if (request.path == "/v1/tenants" && request.method == "GET") {
    return ListTenants();
  }
  return JsonError(404, "no such resource");
}

obs::HttpResponse GraphService::HandleJobs(const obs::HttpRequest& request) {
  // "/v1/jobs" | "/v1/jobs/<id>" | "/v1/jobs/<id>/result"
  std::string rest = request.path.substr(std::string("/v1/jobs").size());
  if (rest.empty()) {
    if (request.method == "POST") {
      return SubmitJob(request);
    }
    if (request.method == "GET") {
      JsonWriter w;
      w.BeginArray();
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& [id, entry] : jobs_) {
        JobReport r = entry.graph->scheduler->report(entry.sched_id);
        w.BeginObject();
        w.Field("id", id);
        w.Field("graph", std::string_view(entry.graph->name));
        w.Field("algo", std::string_view(entry.spec.algo));
        w.Field("tenant", std::string_view(entry.tenant));
        w.Field("state", std::string_view(JobStateName(r.state)));
        w.EndObject();
      }
      w.EndArray();
      return obs::HttpResponse{200, "application/json", w.TakeString() + "\n"};
    }
    return JsonError(405, "use POST to submit or GET to list");
  }
  if (rest[0] != '/') {
    return JsonError(404, "no such resource");
  }
  rest.erase(0, 1);
  bool want_result = false;
  if (size_t slash = rest.find('/'); slash != std::string::npos) {
    if (rest.substr(slash) != "/result") {
      return JsonError(404, "no such resource");
    }
    want_result = true;
    rest.resize(slash);
  }
  if (rest.empty() || rest.find_first_not_of("0123456789") != std::string::npos) {
    return JsonError(404, "job ids are decimal integers");
  }
  uint64_t id = std::strtoull(rest.c_str(), nullptr, 10);

  std::lock_guard<std::mutex> lk(mu_);
  const JobEntry* entry = FindJobLocked(id);
  if (entry == nullptr) {
    return JsonError(404, "unknown job id " + rest);
  }
  if (request.method == "DELETE" && !want_result) {
    entry->graph->scheduler->Cancel(entry->sched_id);
    pump_cv_.notify_all();  // a boundary must run for the cancel to land
    JsonWriter w;
    w.BeginObject();
    w.Field("id", id);
    w.Field("state", "cancelling");
    w.EndObject();
    return obs::HttpResponse{202, "application/json", w.TakeString() + "\n"};
  }
  if (request.method != "GET") {
    return JsonError(405, "use GET (or DELETE on the job itself)");
  }
  return want_result ? JobResult(*entry) : JobStatus(*entry);
}

obs::HttpResponse GraphService::SubmitJob(const obs::HttpRequest& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return JsonError(503, "draining: not accepting new jobs", "5");
  }
  JsonValue body;
  std::string parse_error;
  if (!ParseJson(request.body, &body, &parse_error)) {
    return JsonError(400, "malformed JSON: " + parse_error);
  }
  if (!body.is_object()) {
    return JsonError(400, "request body must be a JSON object");
  }
  const JsonValue* graph_name = body.Get("graph");
  if (graph_name == nullptr || !graph_name->is_string()) {
    return JsonError(400, "missing required string field \"graph\"");
  }
  GraphContext* graph = nullptr;
  for (auto& ctx : graphs_) {
    if (ctx->name == graph_name->as_string()) {
      graph = ctx.get();
      break;
    }
  }
  if (graph == nullptr) {
    return JsonError(404, "unknown graph \"" + graph_name->as_string() + "\"");
  }
  JobSpec spec;
  std::string spec_error;
  if (!SpecFromJson(body, &spec, &spec_error)) {
    return JsonError(400, spec_error);
  }
  std::string tenant;
  if (const JsonValue* t = body.Get("tenant"); t != nullptr && t->is_string()) {
    tenant = t->as_string();
  }

  auto output = std::make_shared<JobOutput>();
  std::unique_ptr<ScheduledJob> job;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lk(mu_);
    id = next_job_id_++;
  }
  if (opts_.engine == "in-memory") {
    job = MakeMemoryJob(spec, static_cast<MemoryScanSource&>(*graph->source), output);
  } else {
    DeviceJobConfig jcfg;
    jcfg.memory_budget_bytes = opts_.job_budget_bytes;
    jcfg.io_unit_bytes = opts_.io_unit_bytes;
    jcfg.hybrid = opts_.engine == "hybrid";
    job = MakeDeviceJob(spec, static_cast<DeviceScanSource&>(*graph->source), *graph->disk,
                        *graph->disk, jcfg, graph->name + ".q" + std::to_string(id), output);
  }
  SubmitOutcome outcome = graph->scheduler->TrySubmit(std::move(job), tenant);
  if (!outcome.accepted) {
    obs::MetricsRegistry::Global().counter("serve.jobs_rejected").Add();
    return JsonError(429, outcome.reason, "1");
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    jobs_.emplace(id, JobEntry{id, graph, outcome.id, tenant, spec, output});
  }
  obs::MetricsRegistry::Global().counter("serve.jobs_submitted").Add();
  pump_cv_.notify_all();

  JsonWriter w;
  w.BeginObject();
  w.Field("id", id);
  w.Field("graph", std::string_view(graph->name));
  w.Field("algo", std::string_view(spec.algo));
  w.Field("tenant", std::string_view(tenant));
  w.Field("state", std::string_view(JobStateName(JobState::kQueued)));
  w.EndObject();
  obs::HttpResponse resp{201, "application/json", w.TakeString() + "\n"};
  resp.headers.emplace_back("Location", "/v1/jobs/" + std::to_string(id));
  return resp;
}

obs::HttpResponse GraphService::JobStatus(const JobEntry& entry) const {
  JobReport r = entry.graph->scheduler->report(entry.sched_id);
  JsonWriter w;
  w.BeginObject();
  w.Field("id", entry.id);
  w.Field("graph", std::string_view(entry.graph->name));
  w.Field("algo", std::string_view(entry.spec.algo));
  w.Field("name", std::string_view(r.name));
  w.Field("tenant", std::string_view(entry.tenant));
  w.Field("state", std::string_view(JobStateName(r.state)));
  w.Field("rounds", r.rounds);
  w.Field("partitions_done", static_cast<uint64_t>(r.partitions_done));
  w.Field("partitions_total", static_cast<uint64_t>(r.partitions_total));
  w.Field("queue_seconds", r.queue_seconds);
  w.Field("run_seconds", r.run_seconds);
  if (r.state == JobState::kDone) {
    w.Field("summary", std::string_view(entry.output->summary));
  }
  w.EndObject();
  return obs::HttpResponse{200, "application/json", w.TakeString() + "\n"};
}

obs::HttpResponse GraphService::JobResult(const JobEntry& entry) const {
  JobState state = entry.graph->scheduler->Poll(entry.sched_id);
  if (state == JobState::kCancelled) {
    return JsonError(410, "job was cancelled; no result");
  }
  if (state != JobState::kDone) {
    obs::HttpResponse resp =
        JsonError(409, std::string("job is ") + JobStateName(state) + "; result not ready", "1");
    return resp;
  }
  // The scheduler finalized the job before reporting kDone, so output is
  // complete and immutable here. Doubles go out via the writer's %.17g,
  // which round-trips bit-exactly — the e2e tests compare against solo runs.
  // JSON numbers cannot carry non-finite values (SSSP marks unreached
  // vertices with +inf), so those become the string forms "Infinity",
  // "-Infinity" and "NaN" to keep the round trip lossless.
  JsonWriter w;
  w.BeginObject();
  w.Field("id", entry.id);
  w.Field("graph", std::string_view(entry.graph->name));
  w.Field("algo", std::string_view(entry.spec.algo));
  w.Field("summary", std::string_view(entry.output->summary));
  w.Key("values").BeginArray();
  for (double v : entry.output->per_vertex) {
    if (std::isfinite(v)) {
      w.Value(v);
    } else if (std::isnan(v)) {
      w.Value("NaN");
    } else {
      w.Value(v > 0 ? "Infinity" : "-Infinity");
    }
  }
  w.EndArray();
  w.EndObject();
  return obs::HttpResponse{200, "application/json", w.TakeString() + "\n"};
}

obs::HttpResponse GraphService::ListGraphs() const {
  JsonWriter w;
  w.BeginArray();
  for (const auto& ctx : graphs_) {
    w.BeginObject();
    w.Field("name", std::string_view(ctx->name));
    w.Field("vertices", ctx->info.num_vertices);
    w.Field("edges", ctx->info.num_edges);
    w.Field("partitions", static_cast<uint64_t>(ctx->layout.num_partitions()));
    w.Field("engine", std::string_view(opts_.engine));
    w.EndObject();
  }
  w.EndArray();
  return obs::HttpResponse{200, "application/json", w.TakeString() + "\n"};
}

obs::HttpResponse GraphService::ListTenants() const {
  JsonWriter w;
  w.BeginArray();
  for (const auto& ctx : graphs_) {
    for (const TenantStats& t : ctx->scheduler->tenant_stats()) {
      w.BeginObject();
      w.Field("graph", std::string_view(ctx->name));
      w.Field("tenant", std::string_view(t.tenant));
      w.Field("weight", t.weight);
      w.Field("deficit", t.deficit);
      w.Field("queued", static_cast<uint64_t>(t.queued));
      w.Field("running", static_cast<uint64_t>(t.running));
      w.Field("submitted", t.submitted);
      w.Field("rejected", t.rejected);
      w.Field("completed", t.completed);
      w.Field("cancelled", t.cancelled);
      w.EndObject();
    }
  }
  w.EndArray();
  return obs::HttpResponse{200, "application/json", w.TakeString() + "\n"};
}

}  // namespace xstream::serve
