// StreamCodec: delta+varint compression for spilled update streams
// (--compress-updates).
//
// An update is a fixed-size trivially-copyable record whose first
// sizeof(VertexId) bytes are the destination vertex id. Updates routed to
// partition p all satisfy PartitionOf(dst) == p, so their dense ids (after
// the contiguous VertexMapping relabeling of PR 1) fall in
// [layout.Begin(p), layout.End(p)). The id column therefore compresses to
// almost nothing: each dst is stored as a zigzag varint of the delta between
// consecutive partition-relative dense ids (~1 byte when the relabeling
// clusters destinations, ≤ 5 bytes worst case). The remaining payload bytes
// of each record follow the id column raw — except that a frame whose
// payloads are all identical (every BFS wave emits one level; converged WCC
// labels repeat) stores the payload once behind kFrameConstPayload.
//
// Framing: EncodeChunk emits self-delimiting frames of at most frame_records
// records, each led by a CodecFrameHeader, so the gather path stays
// chunk-granular — Decoder::Feed accepts arbitrary byte windows from
// StreamReader, buffers partial frames, and invokes the sink once per
// complete frame. Appends from different spills concatenate trivially.
//
// The codec is lossless as long as DenseId is a bijection over the ids it
// sees (true for every id < num_vertices, which the scatter phase
// guarantees); it never assumes ids are sorted or monotone.
#ifndef XSTREAM_CORE_STREAM_CODEC_H_
#define XSTREAM_CORE_STREAM_CODEC_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/partition.h"
#include "graph/types.h"
#include "util/logging.h"

namespace xstream {

struct CodecFrameHeader {
  uint32_t count = 0;  // records in this frame; always > 0 on disk
  uint32_t bytes = 0;  // encoded bytes following the header
  uint32_t flags = 0;
};

inline void PutVarint(uint64_t v, std::vector<std::byte>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

inline uint64_t GetVarint(const std::byte*& p, const std::byte* end) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    XS_CHECK(p != end) << "truncated varint in compressed update stream";
    uint64_t b = static_cast<uint64_t>(*p++);
    v |= (b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
    XS_CHECK_LT(shift, 64) << "overlong varint in compressed update stream";
  }
}

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

template <typename Update>
class StreamCodec {
  static_assert(std::is_trivially_copyable_v<Update>);
  static_assert(sizeof(Update) >= sizeof(VertexId),
                "updates must lead with their destination vertex id");

 public:
  static constexpr size_t kPayloadBytes = sizeof(Update) - sizeof(VertexId);
  static constexpr uint32_t kFrameConstPayload = 1u << 0;

  StreamCodec() = default;
  StreamCodec(const PartitionLayout* layout, uint64_t frame_records)
      : layout_(layout), frame_records_(std::max<uint64_t>(1, frame_records)) {}

  uint64_t frame_records() const { return frame_records_; }

  // Appends frames covering recs[0..n) — all routed to partition p — to out.
  void EncodeChunk(uint32_t p, const Update* recs, uint64_t n,
                   std::vector<std::byte>& out) const {
    const int64_t base = static_cast<int64_t>(layout_->Begin(p));
    for (uint64_t start = 0; start < n; start += frame_records_) {
      const uint32_t count = static_cast<uint32_t>(std::min(frame_records_, n - start));
      const Update* f = recs + start;
      const size_t header_at = out.size();
      out.resize(header_at + sizeof(CodecFrameHeader));

      int64_t prev = 0;
      for (uint32_t i = 0; i < count; ++i) {
        const int64_t rel = static_cast<int64_t>(layout_->DenseId(DstOf(f[i]))) - base;
        PutVarint(ZigZag(rel - prev), out);
        prev = rel;
      }

      uint32_t flags = 0;
      if constexpr (kPayloadBytes > 0) {
        bool constant = true;
        for (uint32_t i = 1; i < count && constant; ++i) {
          constant = std::memcmp(PayloadOf(f[i]), PayloadOf(f[0]), kPayloadBytes) == 0;
        }
        if (constant) {
          flags |= kFrameConstPayload;
          out.insert(out.end(), PayloadOf(f[0]), PayloadOf(f[0]) + kPayloadBytes);
        } else {
          for (uint32_t i = 0; i < count; ++i) {
            out.insert(out.end(), PayloadOf(f[i]), PayloadOf(f[i]) + kPayloadBytes);
          }
        }
      }

      const CodecFrameHeader h{count,
                               static_cast<uint32_t>(out.size() - header_at - sizeof(CodecFrameHeader)),
                               flags};
      std::memcpy(out.data() + header_at, &h, sizeof(h));
    }
  }

  // Incremental frame decoder. Feed() arbitrary byte windows of a compressed
  // stream in order; the sink is invoked as sink(const Update*, uint64_t)
  // once per complete frame (pointer valid only during the call). Partial
  // frames are buffered across Feed() calls; Finished() reports whether the
  // stream ended on a frame boundary.
  class Decoder {
   public:
    Decoder(const StreamCodec* codec, uint32_t p) : codec_(codec), p_(p) {}

    template <typename Sink>
    void Feed(std::span<const std::byte> data, Sink&& sink) {
      if (!pending_.empty()) {
        pending_.insert(pending_.end(), data.begin(), data.end());
        const size_t consumed = DrainFrames(pending_.data(), pending_.size(), sink);
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<ptrdiff_t>(consumed));
        return;
      }
      const size_t consumed = DrainFrames(data.data(), data.size(), sink);
      if (consumed < data.size()) {
        pending_.assign(data.begin() + static_cast<ptrdiff_t>(consumed), data.end());
      }
    }

    bool Finished() const { return pending_.empty(); }

   private:
    template <typename Sink>
    size_t DrainFrames(const std::byte* base, size_t avail, Sink&& sink) {
      size_t off = 0;
      while (avail - off >= sizeof(CodecFrameHeader)) {
        CodecFrameHeader h;
        std::memcpy(&h, base + off, sizeof(h));
        XS_CHECK_GT(h.count, 0u) << "corrupt compressed update frame";
        if (avail - off - sizeof(CodecFrameHeader) < h.bytes) {
          break;
        }
        DecodeFrame(h, base + off + sizeof(CodecFrameHeader), sink);
        off += sizeof(CodecFrameHeader) + h.bytes;
      }
      return off;
    }

    template <typename Sink>
    void DecodeFrame(const CodecFrameHeader& h, const std::byte* body, Sink&& sink) {
      buf_.resize(h.count);
      const std::byte* cur = body;
      const std::byte* end = body + h.bytes;
      const int64_t base = static_cast<int64_t>(codec_->layout_->Begin(p_));
      int64_t prev = 0;
      for (uint32_t i = 0; i < h.count; ++i) {
        const int64_t rel = prev + UnZigZag(GetVarint(cur, end));
        prev = rel;
        const VertexId dst = codec_->layout_->OriginalId(static_cast<uint64_t>(base + rel));
        std::memcpy(&buf_[i], &dst, sizeof(dst));
      }
      if constexpr (kPayloadBytes > 0) {
        if ((h.flags & kFrameConstPayload) != 0) {
          XS_CHECK_LE(kPayloadBytes, static_cast<size_t>(end - cur));
          for (uint32_t i = 0; i < h.count; ++i) {
            std::memcpy(PayloadOf(buf_[i]), cur, kPayloadBytes);
          }
          cur += kPayloadBytes;
        } else {
          XS_CHECK_LE(h.count * kPayloadBytes, static_cast<size_t>(end - cur));
          for (uint32_t i = 0; i < h.count; ++i) {
            std::memcpy(PayloadOf(buf_[i]), cur, kPayloadBytes);
            cur += kPayloadBytes;
          }
        }
      }
      XS_CHECK(cur == end) << "compressed update frame length mismatch";
      sink(static_cast<const Update*>(buf_.data()), static_cast<uint64_t>(h.count));
    }

    const StreamCodec* codec_;
    uint32_t p_;
    std::vector<std::byte> pending_;
    std::vector<Update> buf_;
  };

 private:
  static VertexId DstOf(const Update& u) {
    VertexId v;
    std::memcpy(&v, &u, sizeof(v));
    return v;
  }
  static const std::byte* PayloadOf(const Update& u) {
    return reinterpret_cast<const std::byte*>(&u) + sizeof(VertexId);
  }
  static std::byte* PayloadOf(Update& u) {
    return reinterpret_cast<std::byte*>(&u) + sizeof(VertexId);
  }

  const PartitionLayout* layout_ = nullptr;
  uint64_t frame_records_ = 1;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_STREAM_CODEC_H_
