// Semi-streaming model support (paper §2.5).
//
// "X-Stream also supports interfaces other than edge-centric scatter-gather.
// For example, X-Stream supports the semi-streaming model for graphs [26]."
//
// In the semi-streaming model (Feigenbaum et al.) an algorithm may hold
// O(V·polylog V) state in memory while the edges arrive as a read-only
// stream, possibly over several passes. The engine below drives such
// algorithms over the same storage substrate as the scatter-gather engines:
// edges stream from a device file (or an in-memory list) in I/O-unit-sized
// chunks; the algorithm sees one edge at a time plus pass boundaries.
//
// An algorithm provides:
//   * Init(num_vertices)
//   * BeginPass(pass)
//   * Edge(const Edge&)          — called for every streamed edge
//   * EndPass(pass) -> bool      — true when no further pass is needed
#ifndef XSTREAM_CORE_SEMI_STREAMING_H_
#define XSTREAM_CORE_SEMI_STREAMING_H_

#include <concepts>
#include <cstring>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/stats.h"
#include "graph/types.h"
#include "partitioning/partitioner.h"
#include "storage/device.h"
#include "storage/stream_io.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

template <typename A>
concept SemiStreamingAlgorithm = requires(A a, const Edge& e, uint64_t n, uint32_t pass) {
  { a.Init(n) } -> std::same_as<void>;
  { a.BeginPass(pass) } -> std::same_as<void>;
  { a.Edge(e) } -> std::same_as<void>;
  { a.EndPass(pass) } -> std::convertible_to<bool>;
};

struct SemiStreamStats {
  uint32_t passes = 0;
  uint64_t edges_streamed = 0;
  double seconds = 0.0;
  double sim_io_seconds = 0.0;
};

// Streams an on-device edge file through the algorithm until EndPass returns
// true (or max_passes). One sequential read of the file per pass — the
// semi-streaming contract.
template <SemiStreamingAlgorithm A>
SemiStreamStats RunSemiStreaming(A& algo, StorageDevice& dev, const std::string& edge_file,
                                 uint64_t num_vertices, uint32_t max_passes = 64,
                                 size_t io_unit_bytes = 1 << 20) {
  SemiStreamStats stats;
  WallTimer timer;
  double busy0 = dev.stats().busy_seconds;
  algo.Init(num_vertices);
  FileId f = dev.Open(edge_file);
  size_t chunk = std::max<size_t>(sizeof(Edge), io_unit_bytes / sizeof(Edge) * sizeof(Edge));
  for (uint32_t pass = 0; pass < max_passes; ++pass) {
    algo.BeginPass(pass);
    StreamReader reader(dev, f, chunk);
    for (auto bytes = reader.Next(); !bytes.empty(); bytes = reader.Next()) {
      XS_CHECK_EQ(bytes.size() % sizeof(Edge), 0u);
      const Edge* edges = reinterpret_cast<const Edge*>(bytes.data());
      uint64_t n = bytes.size() / sizeof(Edge);
      for (uint64_t i = 0; i < n; ++i) {
        algo.Edge(edges[i]);
      }
      stats.edges_streamed += n;
    }
    ++stats.passes;
    if (algo.EndPass(pass)) {
      break;
    }
  }
  stats.seconds = timer.Seconds();
  stats.sim_io_seconds = dev.stats().busy_seconds - busy0;
  return stats;
}

// Streams a *partitioned* edge store — per-partition edge files as laid out
// by the out-of-core engine or any PartitionLayout — through the algorithm,
// partition by partition within each pass. Semi-streaming algorithms are
// edge-order oblivious, so the partitioned order is just another stream; but
// running over the partitioned store lets them share storage with a
// scatter-gather engine (no separate flat copy of the graph), and
// partition-aware algorithms (PartitionQualityPass in src/partitioning/)
// see edges grouped exactly as the engine stores them.
template <SemiStreamingAlgorithm A>
SemiStreamStats RunSemiStreamingPartitioned(A& algo, StorageDevice& dev,
                                            const PartitionLayout& layout,
                                            const std::vector<std::string>& edge_files,
                                            uint32_t max_passes = 64,
                                            size_t io_unit_bytes = 1 << 20) {
  XS_CHECK_EQ(edge_files.size(), size_t{layout.num_partitions()});
  SemiStreamStats stats;
  WallTimer timer;
  double busy0 = dev.stats().busy_seconds;
  algo.Init(layout.num_vertices());
  for (uint32_t pass = 0; pass < max_passes; ++pass) {
    algo.BeginPass(pass);
    for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
      MakeEdgeStream(dev, edge_files[p], io_unit_bytes)([&](const Edge& e) {
        algo.Edge(e);
        ++stats.edges_streamed;
      });
    }
    ++stats.passes;
    if (algo.EndPass(pass)) {
      break;
    }
  }
  stats.seconds = timer.Seconds();
  stats.sim_io_seconds = dev.stats().busy_seconds - busy0;
  return stats;
}

// In-memory convenience overload (single "device-less" stream).
template <SemiStreamingAlgorithm A>
SemiStreamStats RunSemiStreaming(A& algo, const EdgeList& edges, uint64_t num_vertices,
                                 uint32_t max_passes = 64) {
  SemiStreamStats stats;
  WallTimer timer;
  algo.Init(num_vertices);
  for (uint32_t pass = 0; pass < max_passes; ++pass) {
    algo.BeginPass(pass);
    for (const Edge& e : edges) {
      algo.Edge(e);
    }
    stats.edges_streamed += edges.size();
    ++stats.passes;
    if (algo.EndPass(pass)) {
      break;
    }
  }
  stats.seconds = timer.Seconds();
  return stats;
}

// ------------------------------------------------------------------------
// Classic semi-streaming algorithms.

// Connectivity in one pass with O(V) union-find state.
class SemiStreamingConnectivity {
 public:
  void Init(uint64_t num_vertices) {
    parent_.resize(num_vertices);
    for (uint64_t v = 0; v < num_vertices; ++v) {
      parent_[v] = static_cast<VertexId>(v);
    }
  }

  void BeginPass(uint32_t) {}

  void Edge(const Edge& e) { Union(e.src, e.dst); }

  bool EndPass(uint32_t) { return true; }  // single pass suffices

  // Component label = minimum vertex id (after path compression).
  VertexId Component(VertexId v) { return Find(v); }

  uint64_t CountComponents() {
    uint64_t count = 0;
    for (VertexId v = 0; v < parent_.size(); ++v) {
      count += (Find(v) == v) ? 1 : 0;
    }
    return count;
  }

 private:
  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return;
    }
    if (a < b) {
      parent_[b] = a;  // min-id roots, matching ReferenceWcc labels
    } else {
      parent_[a] = b;
    }
  }

  std::vector<VertexId> parent_;
};

// Greedy maximal matching in one pass: a 1/2-approximation of maximum
// matching with O(V) state — the canonical semi-streaming result.
class SemiStreamingMatching {
 public:
  void Init(uint64_t num_vertices) {
    matched_.assign(num_vertices, kNoVertex);
    size_ = 0;
  }

  void BeginPass(uint32_t) {}

  void Edge(const Edge& e) {
    if (e.src != e.dst && matched_[e.src] == kNoVertex && matched_[e.dst] == kNoVertex) {
      matched_[e.src] = e.dst;
      matched_[e.dst] = e.src;
      ++size_;
    }
  }

  bool EndPass(uint32_t) { return true; }

  uint64_t size() const { return size_; }
  const std::vector<VertexId>& matching() const { return matched_; }

  // Validity: symmetric partner pointers, no vertex matched twice.
  bool Valid() const {
    for (VertexId v = 0; v < matched_.size(); ++v) {
      if (matched_[v] != kNoVertex && matched_[matched_[v]] != v) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<VertexId> matched_;
  uint64_t size_ = 0;
};

// Bipartiteness test in one pass: union-find over 2V "sided" nodes.
class SemiStreamingBipartiteness {
 public:
  void Init(uint64_t num_vertices) {
    n_ = num_vertices;
    parent_.resize(2 * num_vertices);
    for (uint64_t v = 0; v < parent_.size(); ++v) {
      parent_[v] = static_cast<VertexId>(v);
    }
    bipartite_ = true;
  }

  void BeginPass(uint32_t) {}

  void Edge(const Edge& e) {
    if (e.src == e.dst) {
      bipartite_ = false;  // self loop = odd cycle
      return;
    }
    // src-same-side with dst-other-side and vice versa.
    Union(e.src, static_cast<VertexId>(e.dst + n_));
    Union(static_cast<VertexId>(e.src + n_), e.dst);
    if (Find(e.src) == Find(static_cast<VertexId>(e.src + n_))) {
      bipartite_ = false;  // odd cycle closed
    }
  }

  bool EndPass(uint32_t) { return true; }

  bool bipartite() const { return bipartite_; }

 private:
  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(VertexId a, VertexId b) {
    a = Find(a);
    b = Find(b);
    if (a != b) {
      parent_[std::max(a, b)] = std::min(a, b);
    }
  }

  uint64_t n_ = 0;
  std::vector<VertexId> parent_;
  bool bipartite_ = true;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_SEMI_STREAMING_H_
