#include "core/residency.h"

#include <algorithm>
#include <numeric>

namespace xstream {

std::vector<uint32_t> ResidencyPlanner::DensityOrder(
    const std::vector<PartitionResidencyStats>& partitions) const {
  std::vector<uint32_t> order(partitions.size());
  std::iota(order.begin(), order.end(), 0u);
  // Density = avoided / cost, compared cross-multiplied so the order is
  // exact in integers. An empty partition (cost 0) with savings sorts first
  // and costs nothing to pin; ties break to the lower partition id so equal
  // inputs always produce equal plans.
  std::stable_sort(order.begin(), order.end(), [&partitions](uint32_t a, uint32_t b) {
    uint64_t ca = partitions[a].cost();
    uint64_t cb = partitions[b].cost();
    __uint128_t lhs = static_cast<__uint128_t>(partitions[a].avoided_bytes_per_iteration) *
                      (cb > 0 ? cb : 1);
    __uint128_t rhs = static_cast<__uint128_t>(partitions[b].avoided_bytes_per_iteration) *
                      (ca > 0 ? ca : 1);
    if (lhs != rhs) {
      return lhs > rhs;
    }
    return a < b;
  });
  return order;
}

ResidencyPlan ResidencyPlanner::Plan(
    const std::vector<PartitionResidencyStats>& partitions) const {
  return PlanWithOrder(partitions, DensityOrder(partitions));
}

ResidencyPlan ResidencyPlanner::PlanWithOrder(
    const std::vector<PartitionResidencyStats>& partitions,
    const std::vector<uint32_t>& order) const {
  ResidencyPlan plan;
  plan.resident.assign(partitions.size(), false);
  if (budget_bytes_ == 0 || partitions.empty()) {
    return plan;
  }

  uint64_t remaining = budget_bytes_;
  for (uint32_t p : order) {
    if (partitions[p].avoided_bytes_per_iteration == 0) {
      continue;  // nothing to save; the rest of the order may still fit
    }
    uint64_t c = partitions[p].cost();
    if (c > remaining) {
      continue;  // skip, don't stop: smaller candidates may follow
    }
    plan.resident[p] = true;
    plan.resident_bytes += c;
    plan.avoided_bytes_per_iteration += partitions[p].avoided_bytes_per_iteration;
    remaining -= c;
  }
  return plan;
}

ResidencyDelta ResidencyPlanner::PlanDelta(
    const ResidencyPlan& current, const std::vector<PartitionResidencyStats>& partitions,
    bool force) {
  const size_t k = partitions.size();
  if (streak_.size() != k) {
    streak_.assign(k, 0);
    streak_dir_.assign(k, 0);
  }

  ResidencyDelta delta;
  delta.plan.resident.assign(k, false);
  for (size_t p = 0; p < k && p < current.resident.size(); ++p) {
    delta.plan.resident[p] = current.resident[p];
  }

  // One density sort serves both the target solve and the promotion loop.
  std::vector<uint32_t> order = DensityOrder(partitions);
  ResidencyPlan target = PlanWithOrder(partitions, order);

  // Advance the win/lose streaks: a partition streaks only while the target
  // keeps disagreeing with the applied plan in the same direction.
  for (uint32_t p = 0; p < k; ++p) {
    bool have = delta.plan.resident[p];
    bool want = target.resident[p];
    if (want == have) {
      streak_[p] = 0;
      streak_dir_[p] = 0;
      continue;
    }
    int8_t dir = want ? int8_t{1} : int8_t{-1};
    if (streak_dir_[p] == dir) {
      ++streak_[p];
    } else {
      streak_dir_[p] = dir;
      streak_[p] = 1;
    }
  }

  auto eligible = [&](uint32_t p) { return force || streak_[p] >= hysteresis_; };

  // Evictions first: they free budget the promotions below may need.
  for (uint32_t p = 0; p < k; ++p) {
    if (delta.plan.resident[p] && !target.resident[p] && eligible(p)) {
      delta.evict.push_back(p);
      delta.plan.resident[p] = false;
      streak_[p] = 0;
      streak_dir_[p] = 0;
    }
  }

  uint64_t used = 0;
  for (uint32_t p = 0; p < k; ++p) {
    if (delta.plan.resident[p]) {
      used += partitions[p].cost();
    }
  }

  // Promotions in density order, admitted only while they fit next to what
  // stays pinned. A winner blocked by a loser the hysteresis still protects
  // keeps its streak (not reset) and enters once the eviction lands.
  for (uint32_t p : order) {
    if (delta.plan.resident[p] || !target.resident[p] || !eligible(p)) {
      continue;
    }
    uint64_t c = partitions[p].cost();
    if (used + c > budget_bytes_) {
      continue;  // no room yet; streak survives for the next call
    }
    delta.promote.push_back(p);
    delta.plan.resident[p] = true;
    used += c;
    streak_[p] = 0;
    streak_dir_[p] = 0;
  }

  for (uint32_t p = 0; p < k; ++p) {
    if (delta.plan.resident[p]) {
      delta.plan.resident_bytes += partitions[p].cost();
      delta.plan.avoided_bytes_per_iteration += partitions[p].avoided_bytes_per_iteration;
    }
  }
  return delta;
}

}  // namespace xstream
