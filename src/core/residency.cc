#include "core/residency.h"

#include <algorithm>
#include <numeric>

namespace xstream {

ResidencyPlan ResidencyPlanner::Plan(
    const std::vector<PartitionResidencyStats>& partitions) const {
  ResidencyPlan plan;
  plan.resident.assign(partitions.size(), false);
  if (budget_bytes_ == 0 || partitions.empty()) {
    return plan;
  }

  std::vector<uint32_t> order(partitions.size());
  std::iota(order.begin(), order.end(), 0u);
  // Density = avoided / cost, compared cross-multiplied so the order is
  // exact in integers. An empty partition (cost 0) with savings sorts first
  // and costs nothing to pin; ties break to the lower partition id so equal
  // inputs always produce equal plans.
  auto cost = [&partitions](uint32_t p) -> uint64_t {
    return partitions[p].vertex_bytes + partitions[p].update_buffer_bytes;
  };
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    __uint128_t lhs = static_cast<__uint128_t>(partitions[a].avoided_bytes_per_iteration) *
                      (cost(b) > 0 ? cost(b) : 1);
    __uint128_t rhs = static_cast<__uint128_t>(partitions[b].avoided_bytes_per_iteration) *
                      (cost(a) > 0 ? cost(a) : 1);
    if (lhs != rhs) {
      return lhs > rhs;
    }
    return a < b;
  });

  uint64_t remaining = budget_bytes_;
  for (uint32_t p : order) {
    if (partitions[p].avoided_bytes_per_iteration == 0) {
      continue;  // nothing to save; the rest of the order may still fit
    }
    uint64_t c = cost(p);
    if (c > remaining) {
      continue;  // skip, don't stop: smaller candidates may follow
    }
    plan.resident[p] = true;
    plan.resident_bytes += c;
    plan.avoided_bytes_per_iteration += partitions[p].avoided_bytes_per_iteration;
    remaining -= c;
  }
  return plan;
}

}  // namespace xstream
