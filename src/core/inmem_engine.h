// The in-memory streaming engine (paper §4).
//
// Processes graphs whose vertices, edges and updates fit in memory. The
// design goals from the paper, and where they land here:
//
//  * Partition count: chosen so the vertex *footprint* (state + edge +
//    update bytes) of each partition fits the per-core CPU cache (§4).
//  * Exactly three stream buffers: one holding the (partitioned) edges, one
//    collecting generated updates, one as shuffle scratch (§4) — owned by
//    MemoryStreamStore (core/stream_store.h).
//  * Parallel scatter-gather over partitions with work stealing (§4.1);
//    update appends go through thread-private 8 KB staging buffers flushed
//    by atomic reservation (ConcurrentAppender).
//  * Parallel multi-stage shuffler over per-thread slices with a fanout
//    bounded by the cacheline budget (§4.2, Fig 7).
//
// The engine consumes an *unordered* edge list; its own setup shuffle (timed
// as setup_seconds) is the only pre-processing — there is no sort.
//
// This class is a thin facade: it sizes the layout and fanout, builds a
// MemoryStreamStore, and forwards the streaming loop to the shared
// StreamingPhaseDriver (core/phase_runtime.h) in its partition-parallel
// shape.
#ifndef XSTREAM_CORE_INMEM_ENGINE_H_
#define XSTREAM_CORE_INMEM_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithm.h"
#include "core/partition.h"
#include "core/phase_runtime.h"
#include "core/sizing.h"
#include "core/stats.h"
#include "core/stream_store.h"
#include "graph/types.h"
#include "partitioning/partitioner.h"
#include "storage/device.h"
#include "threads/thread_pool.h"
#include "util/env.h"
#include "util/timer.h"

namespace xstream {

struct InMemoryConfig {
  int threads = 0;            // 0 = all cores
  size_t cache_bytes = 0;     // 0 = probe the host (per-core L2)
  uint32_t num_partitions = 0;  // 0 = auto (§4); otherwise forced (Fig 24)
  uint32_t shuffle_fanout = 0;  // 0 = auto from cachelines (§4.2); Fig 25
  // Ablation: false = static round-robin partition assignment (paper §4.1
  // argues stealing is needed because partitions have skewed edge counts).
  bool enable_work_stealing = true;
  bool keep_iteration_log = true;
  // Optional streaming partitioner (src/partitioning/). Null keeps the
  // paper's equal contiguous ranges. When set, the engine runs the
  // partitioner's passes over the input during setup and slices vertex
  // state in the mapping's dense order (not owned; must outlive the engine).
  Partitioner* partitioner = nullptr;
};

template <EdgeCentricAlgorithm Algo>
class InMemoryEngine {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  using Store = MemoryStreamStore<Algo>;
  using Driver = StreamingPhaseDriver<Algo, Store>;

  InMemoryEngine(const InMemoryConfig& config, const EdgeList& edges, uint64_t num_vertices)
      : pool_(config.threads > 0 ? config.threads : NumCores()),
        num_vertices_(num_vertices),
        num_edges_(edges.size()) {
    WallTimer setup_timer;

    size_t cache = config.cache_bytes > 0 ? config.cache_bytes : PerCoreCacheBytes();
    uint32_t k = config.num_partitions > 0
                     ? RoundUpPow2(config.num_partitions)
                     : ChooseInMemoryPartitions(num_vertices_, sizeof(VertexState),
                                                sizeof(Edge), sizeof(Update), cache);
    PartitionLayout layout;
    if (config.partitioner != nullptr) {
      auto mapping = std::make_shared<VertexMapping>(
          config.partitioner->Partition(MakeEdgeStream(edges), num_vertices_, k));
      layout = PartitionLayout(std::move(mapping));
    } else {
      layout = PartitionLayout(num_vertices_, k);
    }
    fanout_ = config.shuffle_fanout > 0 ? RoundUpPow2(config.shuffle_fanout)
                                        : ChooseShuffleFanout(k, cache, CachelineBytes());

    store_ = std::make_unique<Store>(pool_, std::move(layout), fanout_, edges);
    PhaseDriverOptions opts;
    opts.shuffle_fanout = fanout_;
    opts.enable_work_stealing = config.enable_work_stealing;
    opts.keep_iteration_log = config.keep_iteration_log;
    driver_ = std::make_unique<Driver>(*store_, opts);

    stats().setup_seconds = setup_timer.Seconds();
    stats().streaming_seconds += stats().setup_seconds;  // the setup is itself a stream+shuffle
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_partitions() const { return store_->layout().num_partitions(); }
  uint32_t shuffle_fanout() const { return fanout_; }
  const PartitionLayout& layout() const { return store_->layout(); }
  ThreadPool& pool() { return pool_; }

  // Vertex state is stored in the layout's dense order so each partition's
  // states stay contiguous (the cache-locality point of partitioning); these
  // accessors translate from original vertex ids.
  const VertexState& State(VertexId v) const {
    return store_->states()[store_->layout().DenseId(v)];
  }
  VertexState& MutableState(VertexId v) { return store_->states()[store_->layout().DenseId(v)]; }
  const std::vector<VertexState>& states() const { return store_->states(); }  // dense order

  RunStats& stats() { return driver_->stats(); }
  const RunStats& stats() const { return driver_->stats(); }

  // The engine's store and driver, for advanced callers (the multi-job
  // scheduler drives stores/drivers directly; see src/scheduler/).
  Store& store() { return *store_; }
  Driver& driver() { return *driver_; }

  // Vertex iteration (§2.5): applies f(v, state) to every vertex, in
  // parallel over partition-aligned (dense) ranges.
  template <typename F>
  void VertexMap(F&& f) {
    driver_->VertexMap(std::forward<F>(f));
  }

  // Sequential fold over vertex states (aggregations, result extraction),
  // always in original vertex-id order regardless of the mapping.
  template <typename T, typename F>
  T VertexFold(T init, F&& f) const {
    return driver_->VertexFoldOriginal(std::move(init), std::forward<F>(f));
  }

  void InitVertices(Algo& algo) { driver_->InitVertices(algo); }

  // One synchronous scatter -> shuffle -> gather round (Fig 4).
  IterationStats RunIteration(Algo& algo) { return driver_->RunIteration(algo); }

  // Runs Init + iterations until a scatter emits no updates, the algorithm
  // reports Done, or max_iterations is reached.
  RunStats Run(Algo& algo, uint64_t max_iterations = UINT64_MAX) {
    return driver_->Run(algo, max_iterations);
  }

  // Folds scheduler counters into stats(). Run() calls this automatically;
  // manual RunIteration drivers should call it before reading stats().
  void FinalizeStats() { driver_->FinalizeStats(); }

  // Checkpointing: persists the vertex state array so a long computation can
  // resume in a fresh engine (graph runs in the paper last up to 26 hours).
  // States are written in the layout's dense order, so a checkpoint is only
  // portable to an engine configured with the same partitioner and count.
  void SaveVertexStates(StorageDevice& dev, const std::string& file) {
    driver_->SaveVertexStates(dev, file);
  }

  // Restores states saved by SaveVertexStates. The graph (vertex count and
  // state type) must match; aborts otherwise.
  void LoadVertexStates(StorageDevice& dev, const std::string& file) {
    driver_->LoadVertexStates(dev, file);
  }

  // Clears run statistics (multi-computation reuse of one engine).
  void ResetStats() { driver_->ResetStats(); }

 private:
  ThreadPool pool_;
  uint64_t num_vertices_;
  uint64_t num_edges_;
  uint32_t fanout_ = 2;
  std::unique_ptr<Store> store_;
  std::unique_ptr<Driver> driver_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_INMEM_ENGINE_H_
