// The in-memory streaming engine (paper §4).
//
// Processes graphs whose vertices, edges and updates fit in memory. The
// design goals from the paper, and where they land here:
//
//  * Partition count: chosen so the vertex *footprint* (state + edge +
//    update bytes) of each partition fits the per-core CPU cache (§4).
//  * Exactly three stream buffers: one holding the (partitioned) edges, one
//    collecting generated updates, one as shuffle scratch (§4).
//  * Parallel scatter-gather over partitions with work stealing (§4.1);
//    update appends go through thread-private 8 KB staging buffers flushed
//    by atomic reservation (ConcurrentAppender).
//  * Parallel multi-stage shuffler over per-thread slices with a fanout
//    bounded by the cacheline budget (§4.2, Fig 7).
//
// The engine consumes an *unordered* edge list; its own setup shuffle (timed
// as setup_seconds) is the only pre-processing — there is no sort.
#ifndef XSTREAM_CORE_INMEM_ENGINE_H_
#define XSTREAM_CORE_INMEM_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "buffers/shuffler.h"
#include "buffers/stream_buffer.h"
#include "core/algorithm.h"
#include "core/partition.h"
#include "core/sizing.h"
#include "core/stats.h"
#include "graph/types.h"
#include "partitioning/partitioner.h"
#include "storage/device.h"
#include "threads/concurrent_appender.h"
#include "threads/thread_pool.h"
#include "threads/work_stealing.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

struct InMemoryConfig {
  int threads = 0;            // 0 = all cores
  size_t cache_bytes = 0;     // 0 = probe the host (per-core L2)
  uint32_t num_partitions = 0;  // 0 = auto (§4); otherwise forced (Fig 24)
  uint32_t shuffle_fanout = 0;  // 0 = auto from cachelines (§4.2); Fig 25
  // Ablation: false = static round-robin partition assignment (paper §4.1
  // argues stealing is needed because partitions have skewed edge counts).
  bool enable_work_stealing = true;
  bool keep_iteration_log = true;
  // Optional streaming partitioner (src/partitioning/). Null keeps the
  // paper's equal contiguous ranges. When set, the engine runs the
  // partitioner's passes over the input during setup and slices vertex
  // state in the mapping's dense order (not owned; must outlive the engine).
  Partitioner* partitioner = nullptr;
};

template <EdgeCentricAlgorithm Algo>
class InMemoryEngine {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;

  InMemoryEngine(const InMemoryConfig& config, const EdgeList& edges, uint64_t num_vertices)
      : config_(config),
        pool_(config.threads > 0 ? config.threads : NumCores()),
        num_vertices_(num_vertices),
        num_edges_(edges.size()),
        queues_(pool_.num_threads()) {
    WallTimer setup_timer;

    size_t cache = config.cache_bytes > 0 ? config.cache_bytes : PerCoreCacheBytes();
    uint32_t k = config.num_partitions > 0
                     ? RoundUpPow2(config.num_partitions)
                     : ChooseInMemoryPartitions(num_vertices_, sizeof(VertexState),
                                                sizeof(Edge), sizeof(Update), cache);
    if (config.partitioner != nullptr) {
      auto mapping = std::make_shared<VertexMapping>(
          config.partitioner->Partition(MakeEdgeStream(edges), num_vertices_, k));
      layout_ = PartitionLayout(std::move(mapping));
    } else {
      layout_ = PartitionLayout(num_vertices_, k);
    }
    fanout_ = config.shuffle_fanout > 0 ? RoundUpPow2(config.shuffle_fanout)
                                        : ChooseShuffleFanout(k, cache, CachelineBytes());

    // Three stream buffers (§4), each big enough for the edge list or the
    // worst-case update list (one update per edge).
    size_t record = std::max(sizeof(Edge), sizeof(Update));
    size_t capacity = std::max<size_t>(1, num_edges_) * record;
    for (auto& buf : buffers_) {
      buf = StreamBuffer(capacity);
    }

    // Load the unordered edges into buffer 0 and shuffle them into
    // per-partition chunks; this replaces the sort+index pre-processing of
    // traditional engines and is charged to setup time.
    std::memcpy(buffers_[0].data(), edges.data(), edges.size() * sizeof(Edge));
    edge_chunks_ = ShuffleRecords(pool_, buffers_[0].template records<Edge>(),
                                  buffers_[1].template records<Edge>(), num_edges_, k, fanout_,
                                  [this](const Edge& e) { return layout_.PartitionOf(e.src); });
    // Whichever buffer the edges landed in becomes the stable edge buffer;
    // the other two serve as the update and shuffle buffers.
    if (edge_chunks_.data == buffers_[0].template records<Edge>()) {
      update_buf_ = &buffers_[1];
      scratch_buf_ = &buffers_[2];
    } else {
      update_buf_ = &buffers_[0];
      scratch_buf_ = &buffers_[2];
    }

    states_.resize(num_vertices_);
    stats_.setup_seconds = setup_timer.Seconds();
    stats_.streaming_seconds += stats_.setup_seconds;  // the setup is itself a stream+shuffle
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_partitions() const { return layout_.num_partitions(); }
  uint32_t shuffle_fanout() const { return fanout_; }
  const PartitionLayout& layout() const { return layout_; }
  ThreadPool& pool() { return pool_; }

  // Vertex state is stored in the layout's dense order so each partition's
  // states stay contiguous (the cache-locality point of partitioning); these
  // accessors translate from original vertex ids.
  const VertexState& State(VertexId v) const { return states_[layout_.DenseId(v)]; }
  VertexState& MutableState(VertexId v) { return states_[layout_.DenseId(v)]; }
  const std::vector<VertexState>& states() const { return states_; }  // dense order

  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }

  // Vertex iteration (§2.5): applies f(v, state) to every vertex, in
  // parallel over partition-aligned (dense) ranges.
  template <typename F>
  void VertexMap(F&& f) {
    pool_.ParallelFor(0, num_vertices_, 4096, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        f(layout_.OriginalId(i), states_[i]);
      }
    });
  }

  // Sequential fold over vertex states (aggregations, result extraction),
  // always in original vertex-id order regardless of the mapping.
  template <typename T, typename F>
  T VertexFold(T init, F&& f) const {
    T acc = init;
    for (uint64_t v = 0; v < num_vertices_; ++v) {
      acc = f(acc, static_cast<VertexId>(v), states_[layout_.DenseId(static_cast<VertexId>(v))]);
    }
    return acc;
  }

  void InitVertices(Algo& algo) {
    VertexMap([&algo](VertexId v, VertexState& s) { algo.Init(v, s); });
  }

  // One synchronous scatter -> shuffle -> gather round (Fig 4).
  IterationStats RunIteration(Algo& algo) {
    IterationStats iter;
    iter.iteration = stats_.iterations;
    WallTimer iter_timer;
    IntervalAccumulator streaming;

    if constexpr (HasBeforeIteration<Algo>) {
      algo.BeforeIteration(stats_.iterations);
    }

    // --- Scatter phase: stream every partition's edge chunk, appending
    // updates to the shared update buffer.
    std::span<std::byte> update_bytes(update_buf_->data(), update_buf_->capacity_bytes());
    ConcurrentAppender appender(update_bytes, sizeof(Update), pool_.num_threads());
    std::atomic<uint64_t> edges_streamed{0};
    std::atomic<uint64_t> wasted{0};
    queues_.Distribute(layout_.num_partitions());
    {
      ScopedInterval si(streaming);
      pool_.RunOnAll([&](int tid) {
        uint64_t local_edges = 0;
        uint64_t local_wasted = 0;
        uint32_t p = 0;
        while (queues_.Pop(tid, p, config_.enable_work_stealing)) {
          for (const auto& slice : edge_chunks_.slices) {
            const ChunkRef& c = slice[p];
            const Edge* es = edge_chunks_.data + c.begin;
            for (uint64_t i = 0; i < c.count; ++i) {
              Update out;
              if (algo.Scatter(states_[layout_.DenseId(es[i].src)], es[i], out)) {
                appender.Append(tid, &out);
              } else {
                ++local_wasted;
              }
            }
            local_edges += c.count;
          }
        }
        edges_streamed.fetch_add(local_edges, std::memory_order_relaxed);
        wasted.fetch_add(local_wasted, std::memory_order_relaxed);
      });
      appender.FlushAll();
    }
    iter.edges_streamed = edges_streamed.load();
    iter.wasted_edges = wasted.load();
    iter.updates_generated = appender.records();

    // --- Shuffle phase: group updates by destination partition (multi-stage
    // when the partition count warrants it, §4.2).
    ShuffleOutput<Update> shuffled;
    if (iter.updates_generated > 0) {
      ScopedInterval si(streaming);
      shuffled = ShuffleRecords(
          pool_, update_buf_->template records<Update>(),
          scratch_buf_->template records<Update>(), iter.updates_generated,
          layout_.num_partitions(), fanout_,
          [this](const Update& u) { return layout_.PartitionOf(u.dst); });
      // Keep roles consistent: the buffer the updates ended in is consumed by
      // gather, then becomes scratch; the other is the next append target.
      if (shuffled.data == scratch_buf_->template records<Update>()) {
        std::swap(update_buf_, scratch_buf_);
      }
    }

    // --- Gather phase: stream each partition's update chunk into its vertex
    // states; EndVertex runs per partition right after its gather (legal
    // because gather only touches the partition's own vertices).
    std::atomic<uint64_t> changed{0};
    queues_.Distribute(layout_.num_partitions());
    {
      ScopedInterval si(streaming);
      pool_.RunOnAll([&](int tid) {
        uint64_t local_changed = 0;
        uint32_t p = 0;
        while (queues_.Pop(tid, p, config_.enable_work_stealing)) {
          if (iter.updates_generated > 0) {
            for (const auto& slice : shuffled.slices) {
              const ChunkRef& c = slice[p];
              const Update* us = shuffled.data + c.begin;
              for (uint64_t i = 0; i < c.count; ++i) {
                if (algo.Gather(states_[layout_.DenseId(us[i].dst)], us[i])) {
                  ++local_changed;
                }
              }
            }
          }
          if constexpr (HasEndVertex<Algo>) {
            for (VertexId i = layout_.Begin(p); i < layout_.End(p); ++i) {
              algo.EndVertex(layout_.OriginalId(i), states_[i]);
            }
          }
        }
        changed.fetch_add(local_changed, std::memory_order_relaxed);
      });
    }
    iter.vertices_changed = changed.load();
    iter.seconds = iter_timer.Seconds();

    stats_.streaming_seconds += streaming.TotalSeconds();
    stats_.edges_streamed += iter.edges_streamed;
    stats_.updates_generated += iter.updates_generated;
    stats_.wasted_edges += iter.wasted_edges;
    ++stats_.iterations;
    if (config_.keep_iteration_log) {
      stats_.per_iteration.push_back(iter);
    }
    return iter;
  }

  // Runs Init + iterations until a scatter emits no updates, the algorithm
  // reports Done, or max_iterations is reached.
  RunStats Run(Algo& algo, uint64_t max_iterations = UINT64_MAX) {
    WallTimer timer;
    InitVertices(algo);
    while (stats_.iterations < max_iterations) {
      IterationStats iter = RunIteration(algo);
      if (iter.updates_generated == 0) {
        break;
      }
      if constexpr (HasDone<Algo>) {
        if (algo.Done(iter)) {
          break;
        }
      }
    }
    stats_.compute_seconds += timer.Seconds();
    FinalizeStats();
    return stats_;
  }

  // Folds scheduler counters into stats(). Run() calls this automatically;
  // manual RunIteration drivers should call it before reading stats().
  void FinalizeStats() { stats_.steals = queues_.steal_count(); }

  // Checkpointing: persists the vertex state array so a long computation can
  // resume in a fresh engine (graph runs in the paper last up to 26 hours).
  // States are written in the layout's dense order, so a checkpoint is only
  // portable to an engine configured with the same partitioner and count.
  void SaveVertexStates(StorageDevice& dev, const std::string& file) const {
    FileId f = dev.Create(file);
    dev.Write(f, 0,
              std::span<const std::byte>(reinterpret_cast<const std::byte*>(states_.data()),
                                         states_.size() * sizeof(VertexState)));
  }

  // Restores states saved by SaveVertexStates. The graph (vertex count and
  // state type) must match; aborts otherwise.
  void LoadVertexStates(StorageDevice& dev, const std::string& file) {
    FileId f = dev.Open(file);
    XS_CHECK_EQ(dev.FileSize(f), states_.size() * sizeof(VertexState))
        << "checkpoint does not match this graph/algorithm";
    dev.Read(f, 0,
             std::span<std::byte>(reinterpret_cast<std::byte*>(states_.data()),
                                  states_.size() * sizeof(VertexState)));
  }

  // Clears run statistics (multi-computation reuse of one engine).
  void ResetStats() {
    stats_ = RunStats{};
    queues_.reset_steal_count();
  }

 private:
  InMemoryConfig config_;
  ThreadPool pool_;
  uint64_t num_vertices_;
  uint64_t num_edges_;
  PartitionLayout layout_;
  uint32_t fanout_ = 2;

  StreamBuffer buffers_[3];
  StreamBuffer* update_buf_ = nullptr;
  StreamBuffer* scratch_buf_ = nullptr;
  ShuffleOutput<Edge> edge_chunks_;

  std::vector<VertexState> states_;
  WorkStealingQueues queues_;
  RunStats stats_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_INMEM_ENGINE_H_
