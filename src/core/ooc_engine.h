// The out-of-core streaming engine (paper §3).
//
// The graph lives on storage devices as one edge file, one update file and
// one vertex file per streaming partition. Properties carried over from the
// paper:
//
//  * Input is a flat *unordered* edge-list file; the only pre-processing is
//    one streaming pass that shuffles edges into per-partition files using
//    the in-memory shuffle (§3.2). No sorting.
//  * The shuffle phase is folded into scatter: updates accumulate in an
//    in-memory stream buffer; when it fills, an in-memory shuffle splits it
//    into per-partition chunks which are appended to the partitions' update
//    files (§3, Fig 6).
//  * Prefetch distance 1 on input (StreamReader double-buffering); on
//    output the spill writes are double-buffered on the update device's I/O
//    thread, so the shuffle and scatter of batch k+1 overlap the write of
//    batch k (§3.3). `async_spill = false` restores a fully synchronous
//    spill for comparison (fig 28).
//  * Partition count from the §3.4 inequality N/K + 5·S·K ≤ M. The five
//    buffers of that inequality map to: 2 StreamReader input buffers, the
//    scatter fill buffer, and the two alternating shuffle/write buffers.
//  * Optimizations (§3.2): when the whole vertex set fits in the memory
//    budget, vertex files are skipped; when a full scatter phase's updates
//    fit in one stream buffer, they are gathered straight from memory and
//    never touch storage.
//  * Update files are truncated as soon as their stream is consumed,
//    modelling TRIM (§3.3).
//  * Beyond the paper: an optional streaming partitioner (src/partitioning/)
//    replaces the §2.2 range assignment, and local-update absorption
//    gathers updates destined to the partition currently being scattered
//    straight into a shadow of its loaded states — high-locality mappings
//    thereby shrink the update files (see fig27).
//  * Within a loaded chunk, work spreads over cores in the spirit of §4.3
//    (the in-memory engine layered above the disk engine): scatter
//    parallelizes over the chunk's edges; gather sub-partitions the chunk's
//    updates by destination and runs sub-partitions in parallel.
//
// This class is a thin facade: it sizes the layout and memory budget, builds
// a DeviceStreamStore (core/stream_store.h) over the given devices, and
// forwards the streaming loop to the shared StreamingPhaseDriver
// (core/phase_runtime.h) in its partition-sequential shape.
#ifndef XSTREAM_CORE_OOC_ENGINE_H_
#define XSTREAM_CORE_OOC_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithm.h"
#include "core/partition.h"
#include "core/phase_runtime.h"
#include "core/sizing.h"
#include "core/stats.h"
#include "core/stream_store.h"
#include "graph/types.h"
#include "partitioning/partitioner.h"
#include "storage/device.h"
#include "threads/thread_pool.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

struct OutOfCoreConfig {
  int threads = 0;  // 0 = all cores
  // Memory budget M for vertex state + the five stream buffers (§3.4).
  uint64_t memory_budget_bytes = 64ull << 20;
  // I/O unit S needed to reach streaming bandwidth (16 MB on the paper's
  // testbed, Fig 9). Benches/tests shrink it along with their graphs.
  size_t io_unit_bytes = 1 << 20;
  uint32_t num_partitions = 0;  // 0 = auto from §3.4
  bool allow_vertex_memory_opt = true;  // §3.2 optimization 1
  bool allow_update_memory_opt = true;  // §3.2 optimization 2
  // Ablation of the §3.3 TRIM discipline: true truncates each partition's
  // update file the moment its stream is consumed; false defers all
  // truncation to the end of the gather phase, so consumed update streams
  // occupy the device until the phase completes (higher peak occupancy,
  // more SSD GC pressure).
  bool eager_update_truncate = true;
  bool keep_iteration_log = true;
  // Locality optimization enabled by the streaming-partitioner subsystem:
  // when a spill happens while partition s is being scattered, updates
  // destined to s itself are gathered immediately into a shadow copy of s's
  // (already loaded) vertex states instead of being written to — and later
  // read back from — s's update file. Legal because X-Stream updates are
  // unordered within an iteration (the shuffle never sorts), so gathers may
  // be applied in any order; the shadow keeps scatter reading pre-iteration
  // state. Costs one extra partition-sized vertex array on top of the §3.4
  // budget. Only active with file-resident vertices; the better the
  // vertex->partition mapping, the more traffic it removes.
  bool absorb_local_updates = true;
  // §3.3 compute/write overlap on the spill path (fig 28). False makes
  // every spill wait for its own update-file write — the sync baseline.
  bool async_spill = true;
  // Spill write-pipeline depth (number of rotating shuffle/write buffers).
  // 2 = the paper's double buffering; RAID update devices that absorb
  // several concurrent streams benefit from more slots. Clamped to >= 2.
  int spill_queue_depth = 2;
  // Delta+varint compression of spilled update streams (--compress-updates;
  // see core/stream_codec.h). Bit-identical results, fewer update-file
  // bytes.
  bool compress_updates = false;
  // Per-thread staging for the single-stage shuffles (--stage-bytes); 0 =
  // legacy fused counting shuffle, see DeviceStoreOptions::stage_bytes.
  size_t stage_bytes = 0;
  // Optional streaming partitioner (src/partitioning/). Null keeps the
  // paper's equal contiguous ranges. When set, its passes stream the input
  // edge file during setup and vertex state is sliced in the mapping's
  // dense order (not owned; must outlive the engine).
  Partitioner* partitioner = nullptr;
  std::string file_prefix = "xs";
};

template <EdgeCentricAlgorithm Algo>
class OutOfCoreEngine {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  using Store = DeviceStreamStore<Algo>;
  using Driver = StreamingPhaseDriver<Algo, Store>;

  // Devices may all be the same object (single disk), split between edges
  // and updates (the Fig 15 "independent disks" configuration), or RAID-0
  // wrappers. `input_edge_file` must exist on `edge_dev`; `info` comes from
  // ScanEdgeFile or the generator.
  OutOfCoreEngine(const OutOfCoreConfig& config, StorageDevice& edge_dev,
                  StorageDevice& update_dev, StorageDevice& vertex_dev,
                  const std::string& input_edge_file, GraphInfo info)
      : pool_(config.threads > 0 ? config.threads : NumCores()),
        num_vertices_(info.num_vertices),
        num_edges_(info.num_edges) {
    WallTimer setup_timer;

    uint64_t vertex_bytes = num_vertices_ * sizeof(VertexState);
    uint32_t k = config.num_partitions > 0
                     ? config.num_partitions
                     : ChooseOutOfCorePartitions(vertex_bytes, config.memory_budget_bytes,
                                                 config.io_unit_bytes);
    PartitionLayout layout;
    if (config.partitioner != nullptr) {
      // The partitioner's passes stream the raw input file; like the store's
      // shuffle pass they are part of setup (X-Stream charges pre-processing
      // to the run).
      auto mapping = std::make_shared<VertexMapping>(config.partitioner->Partition(
          MakeEdgeStream(edge_dev, input_edge_file, config.io_unit_bytes), num_vertices_, k));
      layout = PartitionLayout(std::move(mapping));
    } else {
      layout = PartitionLayout(num_vertices_, k);
    }

    typename Store::Options opts;
    opts.memory_budget_bytes = config.memory_budget_bytes;
    opts.io_unit_bytes = config.io_unit_bytes;
    opts.allow_vertex_memory_opt = config.allow_vertex_memory_opt;
    opts.allow_update_memory_opt = config.allow_update_memory_opt;
    opts.eager_update_truncate = config.eager_update_truncate;
    opts.absorb_local_updates = config.absorb_local_updates;
    opts.async_spill = config.async_spill;
    opts.spill_queue_depth = config.spill_queue_depth;
    opts.compress_updates = config.compress_updates;
    opts.stage_bytes = config.stage_bytes;
    opts.file_prefix = config.file_prefix;
    store_ = std::make_unique<Store>(pool_, std::move(layout), opts, edge_dev, update_dev,
                                     vertex_dev, input_edge_file);
    PhaseDriverOptions dopts;
    dopts.keep_iteration_log = config.keep_iteration_log;
    driver_ = std::make_unique<Driver>(*store_, dopts);
    stats().setup_seconds = setup_timer.Seconds();
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_partitions() const { return store_->layout().num_partitions(); }
  bool vertices_in_memory() const { return store_->vertices_in_memory(); }
  const PartitionLayout& layout() const { return store_->layout(); }
  uint64_t buffer_bytes() const { return store_->buffer_bytes(); }

  // Names of the per-partition edge files, for partitioned semi-streaming
  // runs (RunSemiStreamingPartitioned) over this engine's store.
  std::vector<std::string> EdgeFileNames() const { return store_->EdgeFileNames(); }

  RunStats& stats() { return driver_->stats(); }
  const RunStats& stats() const { return driver_->stats(); }

  // The engine's store and driver, for advanced callers (the multi-job
  // scheduler drives stores/drivers directly; see src/scheduler/).
  Store& store() { return *store_; }
  Driver& driver() { return *driver_; }

  // Appends more raw edges to the partitioned store (the Fig 17 ingest
  // path): each batch goes through the same in-memory shuffle and is
  // appended to the per-partition edge files.
  void IngestEdges(const EdgeList& batch) {
    WallTimer timer;
    store_->IngestEdges(batch);
    num_edges_ += batch.size();
    stats().setup_seconds += timer.Seconds();
  }

  // Vertex iteration (§2.5). With file-resident vertices this loads, maps
  // and stores one partition at a time.
  template <typename F>
  void VertexMap(F&& f) {
    driver_->VertexMap(std::forward<F>(f));
  }

  // Sequential fold over all vertex states (dense/partition order).
  template <typename T, typename F>
  T VertexFold(T init, F&& f) {
    return driver_->VertexFoldDense(std::move(init), std::forward<F>(f));
  }

  void InitVertices(Algo& algo) { driver_->InitVertices(algo); }

  // One scatter(+folded shuffle) -> gather round over storage (Fig 6).
  IterationStats RunIteration(Algo& algo) { return driver_->RunIteration(algo); }

  RunStats Run(Algo& algo, uint64_t max_iterations = UINT64_MAX) {
    return driver_->Run(algo, max_iterations);
  }

  // Folds device counters into stats() (sim_io_seconds, bytes moved).
  // Run() calls this automatically; manual RunIteration drivers (SCC, MCST,
  // ALS, HyperANF) should call it before reading stats().
  void FinalizeStats() { driver_->FinalizeStats(); }

  // Clears run statistics and re-baselines the devices; lets one engine
  // time several consecutive computations (the Fig 17 ingest loop).
  void ResetStats() { driver_->ResetStats(); }

  // Checkpointing: persists all vertex state (one sequential write) so a
  // multi-hour out-of-core run can resume after a restart. States are
  // written in the layout's dense order, so a checkpoint is only portable to
  // an engine configured with the same partitioner and partition count.
  void SaveVertexStates(StorageDevice& dev, const std::string& file) {
    driver_->SaveVertexStates(dev, file);
  }

  void LoadVertexStates(StorageDevice& dev, const std::string& file) {
    driver_->LoadVertexStates(dev, file);
  }

 private:
  ThreadPool pool_;
  uint64_t num_vertices_;
  uint64_t num_edges_;
  std::unique_ptr<Store> store_;
  std::unique_ptr<Driver> driver_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_OOC_ENGINE_H_
