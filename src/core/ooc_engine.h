// The out-of-core streaming engine (paper §3).
//
// The graph lives on storage devices as one edge file, one update file and
// one vertex file per streaming partition. Properties carried over from the
// paper:
//
//  * Input is a flat *unordered* edge-list file; the only pre-processing is
//    one streaming pass that shuffles edges into per-partition files using
//    the in-memory shuffle (§3.2). No sorting.
//  * The shuffle phase is folded into scatter: updates accumulate in an
//    in-memory stream buffer; when it fills, an in-memory shuffle splits it
//    into per-partition chunks which are appended to the partitions' update
//    files (§3, Fig 6).
//  * Prefetch distance 1 on input (StreamReader double-buffering) and on
//    output: the chunk writes of one output buffer (issued on the update
//    device's I/O thread) overlap scatter compute into the other (§3.3).
//  * Partition count from the §3.4 inequality N/K + 5·S·K ≤ M. The five
//    buffers of that inequality map to: 2 StreamReader input buffers, the 2
//    alternating output buffers, and the shuffle scratch buffer.
//  * Optimizations (§3.2): when the whole vertex set fits in the memory
//    budget, vertex files are skipped; when a full scatter phase's updates
//    fit in one stream buffer, they are gathered straight from memory and
//    never touch storage.
//  * Update files are truncated as soon as their stream is consumed,
//    modelling TRIM (§3.3).
//  * Beyond the paper: an optional streaming partitioner (src/partitioning/)
//    replaces the §2.2 range assignment, and local-update absorption
//    gathers updates destined to the partition currently being scattered
//    straight into a shadow of its loaded states — high-locality mappings
//    thereby shrink the update files (see fig27).
//  * Within a loaded chunk, work spreads over cores in the spirit of §4.3
//    (the in-memory engine layered above the disk engine): scatter
//    parallelizes over the chunk's edges; gather sub-partitions the chunk's
//    updates by destination and runs sub-partitions in parallel.
#ifndef XSTREAM_CORE_OOC_ENGINE_H_
#define XSTREAM_CORE_OOC_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "buffers/shuffler.h"
#include "buffers/stream_buffer.h"
#include "core/algorithm.h"
#include "core/partition.h"
#include "core/sizing.h"
#include "core/stats.h"
#include "graph/types.h"
#include "partitioning/partitioner.h"
#include "storage/device.h"
#include "storage/io_executor.h"
#include "storage/stream_io.h"
#include "threads/concurrent_appender.h"
#include "threads/thread_pool.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

struct OutOfCoreConfig {
  int threads = 0;  // 0 = all cores
  // Memory budget M for vertex state + the five stream buffers (§3.4).
  uint64_t memory_budget_bytes = 64ull << 20;
  // I/O unit S needed to reach streaming bandwidth (16 MB on the paper's
  // testbed, Fig 9). Benches/tests shrink it along with their graphs.
  size_t io_unit_bytes = 1 << 20;
  uint32_t num_partitions = 0;  // 0 = auto from §3.4
  bool allow_vertex_memory_opt = true;  // §3.2 optimization 1
  bool allow_update_memory_opt = true;  // §3.2 optimization 2
  // Ablation of the §3.3 TRIM discipline: true truncates each partition's
  // update file the moment its stream is consumed; false defers all
  // truncation to the end of the gather phase, so consumed update streams
  // occupy the device until the phase completes (higher peak occupancy,
  // more SSD GC pressure).
  bool eager_update_truncate = true;
  bool keep_iteration_log = true;
  // Locality optimization enabled by the streaming-partitioner subsystem:
  // when a spill happens while partition s is being scattered, updates
  // destined to s itself are gathered immediately into a shadow copy of s's
  // (already loaded) vertex states instead of being written to — and later
  // read back from — s's update file. Legal because X-Stream updates are
  // unordered within an iteration (the shuffle never sorts), so gathers may
  // be applied in any order; the shadow keeps scatter reading pre-iteration
  // state. Costs one extra partition-sized vertex array on top of the §3.4
  // budget. Only active with file-resident vertices; the better the
  // vertex->partition mapping, the more traffic it removes.
  bool absorb_local_updates = true;
  // Optional streaming partitioner (src/partitioning/). Null keeps the
  // paper's equal contiguous ranges. When set, its passes stream the input
  // edge file during setup and vertex state is sliced in the mapping's
  // dense order (not owned; must outlive the engine).
  Partitioner* partitioner = nullptr;
  std::string file_prefix = "xs";
};

template <EdgeCentricAlgorithm Algo>
class OutOfCoreEngine {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;

  // Devices may all be the same object (single disk), split between edges
  // and updates (the Fig 15 "independent disks" configuration), or RAID-0
  // wrappers. `input_edge_file` must exist on `edge_dev`; `info` comes from
  // ScanEdgeFile or the generator.
  OutOfCoreEngine(const OutOfCoreConfig& config, StorageDevice& edge_dev,
                  StorageDevice& update_dev, StorageDevice& vertex_dev,
                  const std::string& input_edge_file, GraphInfo info)
      : config_(config),
        pool_(config.threads > 0 ? config.threads : NumCores()),
        edge_dev_(edge_dev),
        update_dev_(update_dev),
        vertex_dev_(vertex_dev),
        num_vertices_(info.num_vertices),
        num_edges_(info.num_edges) {
    WallTimer setup_timer;

    uint64_t vertex_bytes = num_vertices_ * sizeof(VertexState);
    uint32_t k = config.num_partitions > 0
                     ? config.num_partitions
                     : ChooseOutOfCorePartitions(vertex_bytes, config.memory_budget_bytes,
                                                 config.io_unit_bytes);
    if (config.partitioner != nullptr) {
      // The partitioner's passes stream the raw input file; like the shuffle
      // pass below they are part of setup (X-Stream charges pre-processing
      // to the run).
      auto mapping = std::make_shared<VertexMapping>(config.partitioner->Partition(
          MakeEdgeStream(edge_dev_, input_edge_file, config.io_unit_bytes), num_vertices_, k));
      layout_ = PartitionLayout(std::move(mapping));
    } else {
      layout_ = PartitionLayout(num_vertices_, k);
    }

    // §3.2 optimization 1: memory-resident vertex array when it fits in half
    // the budget (the other half belongs to the stream buffers).
    vertices_in_memory_ =
        config.allow_vertex_memory_opt && vertex_bytes <= config.memory_budget_bytes / 2;

    // Stream buffer capacity: S bytes per partition chunk (§3.4), with a
    // floor of twice the worst-case updates of one loaded edge chunk so a
    // single chunk's scatter output always fits.
    size_t record = std::max(sizeof(Edge), sizeof(Update));
    uint64_t chunk_edges = std::max<uint64_t>(1, config_.io_unit_bytes / sizeof(Edge));
    uint64_t floor_bytes = 2 * chunk_edges * sizeof(Update);
    buffer_bytes_ =
        std::max<uint64_t>(static_cast<uint64_t>(config.io_unit_bytes) * k, floor_bytes);
    buffer_bytes_ = std::max<uint64_t>(buffer_bytes_, record * 1024);
    out_[0] = StreamBuffer(buffer_bytes_);
    out_[1] = StreamBuffer(buffer_bytes_);
    scratch_ = StreamBuffer(buffer_bytes_);

    // Create the per-partition files.
    edge_files_.resize(k);
    update_files_.resize(k);
    vertex_files_.resize(k);
    edge_counts_.assign(k, 0);
    for (uint32_t p = 0; p < k; ++p) {
      edge_files_[p] = edge_dev_.Create(PartFile("edges", p));
      update_files_[p] = update_dev_.Create(PartFile("updates", p));
      if (!vertices_in_memory_) {
        vertex_files_[p] = vertex_dev_.Create(PartFile("vertices", p));
      }
    }
    if (vertices_in_memory_) {
      // Indexed in the layout's dense order (== original ids in range mode)
      // so each partition's states stay contiguous.
      mem_states_.resize(num_vertices_);
    } else {
      part_states_.resize(layout_.MaxPartitionSize());
      if (config_.absorb_local_updates) {
        shadow_states_.resize(layout_.MaxPartitionSize());
      }
      // Materialize zero-initialized vertex files so the first VertexMap /
      // scatter can load them before any algorithm Init ran.
      std::fill(part_states_.begin(), part_states_.end(), VertexState{});
      for (uint32_t p = 0; p < k; ++p) {
        if (layout_.Size(p) > 0) {
          StoreVertices(p);
        }
      }
    }

    // Device baselines: sim_io_seconds reports busy time accrued since
    // construction (i.e. including the partitioning pass — X-Stream charges
    // its own pre-processing to the run).
    CaptureDeviceBaselines();
    PartitionInputEdges(input_edge_file);
    stats_.setup_seconds = setup_timer.Seconds();
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_partitions() const { return layout_.num_partitions(); }
  bool vertices_in_memory() const { return vertices_in_memory_; }
  const PartitionLayout& layout() const { return layout_; }
  uint64_t buffer_bytes() const { return buffer_bytes_; }

  // Names of the per-partition edge files, for partitioned semi-streaming
  // runs (RunSemiStreamingPartitioned) over this engine's store.
  std::vector<std::string> EdgeFileNames() const {
    std::vector<std::string> names;
    names.reserve(layout_.num_partitions());
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      names.push_back(PartFile("edges", p));
    }
    return names;
  }

  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }

  // Appends more raw edges to the partitioned store (the Fig 17 ingest
  // path): each batch goes through the same in-memory shuffle and is
  // appended to the per-partition edge files.
  void IngestEdges(const EdgeList& batch) {
    WallTimer timer;
    for (const Edge& e : batch) {
      XS_CHECK_LT(e.src, num_vertices_);
      XS_CHECK_LT(e.dst, num_vertices_);
    }
    uint64_t capacity_edges = buffer_bytes_ / sizeof(Edge);
    uint64_t done = 0;
    while (done < batch.size()) {
      uint64_t n = std::min<uint64_t>(capacity_edges, batch.size() - done);
      std::memcpy(out_[0].data(), batch.data() + done, n * sizeof(Edge));
      ShuffleAndAppendEdges(n);
      done += n;
    }
    num_edges_ += batch.size();
    stats_.setup_seconds += timer.Seconds();
  }

  // Vertex iteration (§2.5). With file-resident vertices this loads, maps
  // and stores one partition at a time.
  template <typename F>
  void VertexMap(F&& f) {
    if (vertices_in_memory_) {
      pool_.ParallelFor(0, num_vertices_, 4096, [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          f(layout_.OriginalId(i), mem_states_[i]);
        }
      });
      return;
    }
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      if (layout_.Size(p) == 0) {
        continue;
      }
      LoadVertices(p);
      VertexId base = layout_.Begin(p);
      uint64_t n = layout_.Size(p);
      pool_.ParallelFor(0, n, 4096, [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          f(layout_.OriginalId(base + i), part_states_[i]);
        }
      });
      StoreVertices(p);
    }
  }

  // Sequential fold over all vertex states.
  template <typename T, typename F>
  T VertexFold(T init, F&& f) {
    T acc = init;
    if (vertices_in_memory_) {
      for (uint64_t i = 0; i < num_vertices_; ++i) {
        acc = f(acc, layout_.OriginalId(i), mem_states_[i]);
      }
      return acc;
    }
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      if (layout_.Size(p) == 0) {
        continue;
      }
      LoadVertices(p);
      VertexId base = layout_.Begin(p);
      for (uint64_t i = 0; i < layout_.Size(p); ++i) {
        acc = f(acc, layout_.OriginalId(base + i), part_states_[i]);
      }
    }
    return acc;
  }

  void InitVertices(Algo& algo) {
    if (vertices_in_memory_) {
      VertexMap([&algo](VertexId v, VertexState& s) { algo.Init(v, s); });
      return;
    }
    // Vertex files do not exist yet; write initial states partition-wise.
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      if (layout_.Size(p) == 0) {
        continue;
      }
      VertexId base = layout_.Begin(p);
      for (uint64_t i = 0; i < layout_.Size(p); ++i) {
        algo.Init(layout_.OriginalId(base + i), part_states_[i]);
      }
      StoreVertices(p);
    }
  }

  // One scatter(+folded shuffle) -> gather round over storage (Fig 6).
  IterationStats RunIteration(Algo& algo) {
    IterationStats iter;
    iter.iteration = stats_.iterations;
    WallTimer iter_timer;

    if constexpr (HasBeforeIteration<Algo>) {
      algo.BeforeIteration(stats_.iterations);
    }

    // ---- Merged scatter/shuffle phase.
    int fill = 0;  // output buffer currently accepting updates
    auto appender = std::make_unique<ConcurrentAppender>(
        std::span<std::byte>(out_[fill].data(), buffer_bytes_), sizeof(Update),
        pool_.num_threads());
    bool spilled = false;
    uint64_t chunk_edge_capacity = std::max<uint64_t>(1, config_.io_unit_bytes / sizeof(Edge));
    size_t read_chunk = chunk_edge_capacity * sizeof(Edge);

    absorbed_updates_ = 0;
    absorbed_changed_ = 0;
    drained_updates_ = 0;
    drain_watermark_ = 0;
    for (uint32_t s = 0; s < layout_.num_partitions(); ++s) {
      if (!vertices_in_memory_) {
        if (layout_.Size(s) == 0) {
          continue;
        }
        LoadVertices(s);
        if (config_.absorb_local_updates) {
          // Shadow next-state for s: spills gather s-destined updates here
          // while scatter keeps reading the pre-iteration part_states_.
          std::memcpy(shadow_states_.data(), part_states_.data(),
                      layout_.Size(s) * sizeof(VertexState));
          shadow_dirty_ = false;
          absorb_partition_ = s;
        }
      }
      const VertexState* state_base =
          vertices_in_memory_ ? mem_states_.data() : part_states_.data();
      VertexId part_base = vertices_in_memory_ ? 0 : layout_.Begin(s);

      StreamReader reader(edge_dev_, edge_files_[s], read_chunk);
      for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
        uint64_t n = chunk.size() / sizeof(Edge);
        // Spill (shuffle + async chunk writes) if this chunk's worst-case
        // output may not fit the buffer.
        if (appender->bytes() + n * sizeof(Update) > buffer_bytes_) {
          SpillUpdates(algo, *appender, fill);
          spilled = true;
          fill ^= 1;  // scatter continues into the other buffer (§3.3)
          appender = std::make_unique<ConcurrentAppender>(
              std::span<std::byte>(out_[fill].data(), buffer_bytes_), sizeof(Update),
              pool_.num_threads());
          drain_watermark_ = 0;  // fresh buffer: nothing drain-scanned yet
        }
        const Edge* es = reinterpret_cast<const Edge*>(chunk.data());
        std::atomic<uint64_t> local_wasted{0};
        ConcurrentAppender* app = appender.get();
        pool_.ParallelForTid(0, n, 2048, [&, app](int tid, uint64_t lo, uint64_t hi) {
          uint64_t w = 0;
          for (uint64_t i = lo; i < hi; ++i) {
            Update out;
            if (algo.Scatter(state_base[layout_.DenseId(es[i].src) - part_base], es[i],
                             out)) {
              app->Append(tid, &out);
            } else {
              ++w;
            }
          }
          local_wasted.fetch_add(w, std::memory_order_relaxed);
        });
        appender->FlushAll();
        iter.edges_streamed += n;
        iter.wasted_edges += local_wasted.load();
      }
      if (absorb_partition_ != kNoAbsorbPartition) {
        // Drain: s-destined updates still sitting in the append buffer are
        // gathered now, while s's shadow is live — one compaction scan, no
        // shuffle. Spill-time absorption alone misses them whenever a
        // partition's scatter output fits the buffer (the common case for
        // high-locality mappings, whose updates are mostly s->s). Only
        // records appended since the last drain are scanned (survivors of
        // an earlier drain targeted a partition != its s; rescanning them
        // at every later partition would cost O(k x buffer) per iteration)
        // — absorption is opportunistic, so skipping them is merely fewer
        // absorbed updates, never a correctness issue.
        appender->FlushAll();
        uint64_t buffered = appender->records();
        Update* buf = out_[fill].template records<Update>();
        VertexId drain_base = layout_.Begin(s);
        uint64_t kept = drain_watermark_;
        for (uint64_t i = drain_watermark_; i < buffered; ++i) {
          if (layout_.PartitionOf(buf[i].dst) == s) {
            if (algo.Gather(shadow_states_[layout_.DenseId(buf[i].dst) - drain_base],
                            buf[i])) {
              ++absorbed_changed_;
            }
          } else {
            buf[kept++] = buf[i];
          }
        }
        if (kept < buffered) {
          appender->Rewind(kept * sizeof(Update));
          drained_updates_ += buffered - kept;
          shadow_dirty_ = true;
        }
        drain_watermark_ = kept;
        // Absorbed updates became part of s's next state: persist them so
        // the gather phase reloads them along with the vertex file.
        if (shadow_dirty_) {
          StoreVertices(s, shadow_states_.data());
        }
        absorb_partition_ = kNoAbsorbPartition;
      }
    }

    // End of scatter: either keep the whole update set in memory (§3.2
    // optimization 2: nothing was spilled and the optimization is allowed)
    // or spill the tail like any other buffer.
    uint64_t tail_records = appender->records();
    // Drained updates were removed from the buffer before the tail count,
    // but they were generated (and gathered) all the same.
    iter.updates_generated = spilled_updates_ + drained_updates_ + tail_records;
    iter.updates_absorbed = absorbed_updates_ + drained_updates_;
    bool memory_gather = !spilled && config_.allow_update_memory_opt;
    ShuffleOutput<Update> resident;
    if (memory_gather) {
      if (tail_records > 0) {
        resident = ShuffleRecords(pool_, out_[fill].template records<Update>(),
                                  scratch_.template records<Update>(), tail_records,
                                  layout_.num_partitions(), layout_.num_partitions(),
                                  [this](const Update& u) { return layout_.PartitionOf(u.dst); });
      }
    } else if (tail_records > 0) {
      SpillUpdates(algo, *appender, fill);
      fill ^= 1;
    }
    WaitUpdateWrites();

    // Scratch buffers for the gather sub-shuffle, chosen to never alias the
    // resident updates. A single-stage shuffle with K > 1 always lands in
    // its second buffer (scratch_); with K == 1 ShuffleRecords leaves the
    // records in place (out_[fill]).
    Update* tmp_a;
    Update* tmp_b;
    if (memory_gather && resident.data == scratch_.template records<Update>()) {
      tmp_a = out_[0].template records<Update>();
      tmp_b = out_[1].template records<Update>();
    } else if (memory_gather && tail_records > 0) {
      tmp_a = out_[fill ^ 1].template records<Update>();
      tmp_b = scratch_.template records<Update>();
    } else {
      tmp_a = out_[0].template records<Update>();
      tmp_b = out_[1].template records<Update>();
    }

    // ---- Gather phase. Absorbed updates already mutated their partition's
    // stored state during scatter; count them with the file/memory gathers.
    std::atomic<uint64_t> changed{absorbed_changed_};
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      if (layout_.Size(p) == 0) {
        continue;
      }
      if (!vertices_in_memory_) {
        LoadVertices(p);
      }
      VertexState* state_base = vertices_in_memory_ ? mem_states_.data() : part_states_.data();
      VertexId part_base = vertices_in_memory_ ? 0 : layout_.Begin(p);

      if (memory_gather) {
        if (tail_records > 0) {
          for (const auto& slice : resident.slices) {
            const ChunkRef& c = slice[p];
            if (c.count > 0) {
              GatherChunk(algo, resident.data + c.begin, c.count, state_base, part_base, p,
                          tmp_a, tmp_b, changed);
            }
          }
        }
      } else {
        uint64_t chunk_updates = std::max<uint64_t>(1, config_.io_unit_bytes / sizeof(Update));
        StreamReader reader(update_dev_, update_files_[p], chunk_updates * sizeof(Update));
        for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
          GatherChunk(algo, reinterpret_cast<const Update*>(chunk.data()),
                      chunk.size() / sizeof(Update), state_base, part_base, p, tmp_a, tmp_b,
                      changed);
        }
      }

      if constexpr (HasEndVertex<Algo>) {
        VertexId base = layout_.Begin(p);
        uint64_t n = layout_.Size(p);
        pool_.ParallelFor(0, n, 4096, [&](uint64_t lo, uint64_t hi) {
          for (uint64_t i = lo; i < hi; ++i) {
            algo.EndVertex(layout_.OriginalId(base + i), state_base[base + i - part_base]);
          }
        });
      }
      if (!vertices_in_memory_) {
        StoreVertices(p);
      }
      // The update stream is consumed: destroy it (truncation = TRIM, §3.3).
      if (!memory_gather && config_.eager_update_truncate) {
        update_dev_.Truncate(update_files_[p], 0);
      }
      // Track peak update-file occupancy for the TRIM ablation.
      uint64_t occupancy = 0;
      for (uint32_t q = 0; q < layout_.num_partitions(); ++q) {
        occupancy += update_dev_.FileSize(update_files_[q]);
      }
      stats_.peak_update_bytes = std::max(stats_.peak_update_bytes, occupancy);
    }
    if (!memory_gather && !config_.eager_update_truncate) {
      for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
        update_dev_.Truncate(update_files_[p], 0);
      }
    }
    iter.vertices_changed = changed.load();
    spilled_updates_ = 0;

    iter.seconds = iter_timer.Seconds();
    stats_.edges_streamed += iter.edges_streamed;
    stats_.updates_generated += iter.updates_generated;
    stats_.wasted_edges += iter.wasted_edges;
    stats_.updates_absorbed += iter.updates_absorbed;
    ++stats_.iterations;
    if (config_.keep_iteration_log) {
      stats_.per_iteration.push_back(iter);
    }
    return iter;
  }

  RunStats Run(Algo& algo, uint64_t max_iterations = UINT64_MAX) {
    WallTimer timer;
    InitVertices(algo);
    while (stats_.iterations < max_iterations) {
      IterationStats iter = RunIteration(algo);
      if (iter.updates_generated == 0) {
        break;
      }
      if constexpr (HasDone<Algo>) {
        if (algo.Done(iter)) {
          break;
        }
      }
    }
    stats_.compute_seconds += timer.Seconds();
    FinalizeStats();
    return stats_;
  }

  // Folds device counters into stats() (sim_io_seconds, bytes moved).
  // Run() calls this automatically; manual RunIteration drivers (SCC, MCST,
  // ALS, HyperANF) should call it before reading stats().
  void FinalizeStats() { CollectDeviceStats(); }

  // Clears run statistics and re-baselines the devices; lets one engine
  // time several consecutive computations (the Fig 17 ingest loop).
  void ResetStats() {
    stats_ = RunStats{};
    CaptureDeviceBaselines();
  }

  // Checkpointing: persists all vertex state (one sequential write) so a
  // multi-hour out-of-core run can resume after a restart. States are
  // written in the layout's dense order, so a checkpoint is only portable to
  // an engine configured with the same partitioner and partition count.
  void SaveVertexStates(StorageDevice& dev, const std::string& file) {
    FileId f = dev.Create(file);
    if (vertices_in_memory_) {
      dev.Write(f, 0,
                std::span<const std::byte>(
                    reinterpret_cast<const std::byte*>(mem_states_.data()),
                    mem_states_.size() * sizeof(VertexState)));
      return;
    }
    uint64_t offset = 0;
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t n = layout_.Size(p);
      if (n == 0) {
        continue;
      }
      LoadVertices(p);
      dev.Write(f, offset,
                std::span<const std::byte>(
                    reinterpret_cast<const std::byte*>(part_states_.data()),
                    n * sizeof(VertexState)));
      offset += n * sizeof(VertexState);
    }
  }

  void LoadVertexStates(StorageDevice& dev, const std::string& file) {
    FileId f = dev.Open(file);
    XS_CHECK_EQ(dev.FileSize(f), num_vertices_ * sizeof(VertexState))
        << "checkpoint does not match this graph/algorithm";
    if (vertices_in_memory_) {
      dev.Read(f, 0,
               std::span<std::byte>(reinterpret_cast<std::byte*>(mem_states_.data()),
                                    mem_states_.size() * sizeof(VertexState)));
      return;
    }
    uint64_t offset = 0;
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t n = layout_.Size(p);
      if (n == 0) {
        continue;
      }
      dev.Read(f, offset,
               std::span<std::byte>(reinterpret_cast<std::byte*>(part_states_.data()),
                                    n * sizeof(VertexState)));
      StoreVertices(p);
      offset += n * sizeof(VertexState);
    }
  }

 private:
  std::string PartFile(const char* kind, uint32_t p) const {
    return config_.file_prefix + "." + kind + "." + std::to_string(p);
  }

  // Setup: stream the unordered input file, shuffle each loaded stretch by
  // source partition, append chunks to the per-partition edge files (§3.2).
  void PartitionInputEdges(const std::string& input_edge_file) {
    FileId input = edge_dev_.Open(input_edge_file);
    size_t read_chunk = std::max<size_t>(
        sizeof(Edge), config_.io_unit_bytes / sizeof(Edge) * sizeof(Edge));
    StreamReader reader(edge_dev_, input, read_chunk);
    uint64_t buffered = 0;
    for (auto chunk = reader.Next(); !chunk.empty(); chunk = reader.Next()) {
      XS_CHECK_EQ(chunk.size() % sizeof(Edge), 0u);
      uint64_t n = chunk.size() / sizeof(Edge);
      if ((buffered + n) * sizeof(Edge) > buffer_bytes_) {
        ShuffleAndAppendEdges(buffered);
        buffered = 0;
      }
      std::memcpy(out_[0].data() + buffered * sizeof(Edge), chunk.data(), chunk.size());
      buffered += n;
    }
    if (buffered > 0) {
      ShuffleAndAppendEdges(buffered);
    }
  }

  // Shuffles `count` edges sitting at the start of out_[0] by source
  // partition and appends each partition's spans to its edge file.
  void ShuffleAndAppendEdges(uint64_t count) {
    if (count == 0) {
      return;
    }
    auto shuffled = ShuffleRecords(pool_, out_[0].template records<Edge>(),
                                   scratch_.template records<Edge>(), count,
                                   layout_.num_partitions(), layout_.num_partitions(),
                                   [this](const Edge& e) { return layout_.PartitionOf(e.src); });
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      for (const auto& slice : shuffled.slices) {
        const ChunkRef& c = slice[p];
        if (c.count > 0) {
          edge_dev_.Append(edge_files_[p],
                           std::span<const std::byte>(
                               reinterpret_cast<const std::byte*>(shuffled.data + c.begin),
                               c.count * sizeof(Edge)));
          edge_counts_[p] += c.count;
        }
      }
    }
  }

  // In-memory shuffle of the filled output buffer + asynchronous appends of
  // the per-partition chunks to the update files (the folded shuffle phase).
  // The previous spill's writes are drained first because they read from
  // scratch_, which the new shuffle overwrites. After this returns, the
  // shuffled records live in scratch_ (single-stage shuffle, K > 1) or stay
  // in out_[fill] (K == 1); either way the async write owns that memory
  // until the next WaitUpdateWrites().
  //
  // When a scatter partition is active (absorb_partition_), its own chunks
  // are gathered straight into its shadow next-state here — synchronously,
  // before the async write is submitted, so the writer thread and this
  // thread only ever read the shuffled buffer — and never reach its update
  // file.
  void SpillUpdates(Algo& algo, ConcurrentAppender& appender, int fill) {
    appender.FlushAll();
    uint64_t n = appender.records();
    if (n == 0) {
      return;
    }
    WaitUpdateWrites();
    auto shuffled = ShuffleRecords(pool_, out_[fill].template records<Update>(),
                                   scratch_.template records<Update>(), n,
                                   layout_.num_partitions(), layout_.num_partitions(),
                                   [this](const Update& u) { return layout_.PartitionOf(u.dst); });
    spilled_updates_ += n;
    const uint32_t absorb = absorb_partition_;
    if (absorb != kNoAbsorbPartition) {
      VertexId part_base = layout_.Begin(absorb);
      uint64_t absorbed = 0;
      for (const auto& slice : shuffled.slices) {
        const ChunkRef& c = slice[absorb];
        const Update* rec = shuffled.data + c.begin;
        for (uint64_t i = 0; i < c.count; ++i) {
          if (algo.Gather(shadow_states_[layout_.DenseId(rec[i].dst) - part_base], rec[i])) {
            ++absorbed_changed_;
          }
        }
        absorbed += c.count;
      }
      if (absorbed > 0) {
        shadow_dirty_ = true;
        absorbed_updates_ += absorbed;
      }
    }
    const Update* data = shuffled.data;
    auto slices = std::make_shared<std::vector<std::vector<ChunkRef>>>(
        std::move(shuffled.slices));
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      if (p == absorb) {
        continue;
      }
      for (const auto& slice : *slices) {
        stats_.update_file_bytes += slice[p].count * sizeof(Update);
      }
    }
    pending_update_write_ = update_dev_.executor().Submit([this, data, slices, absorb] {
      for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
        if (p == absorb) {
          continue;  // gathered into the shadow above
        }
        for (const auto& slice : *slices) {
          const ChunkRef& c = slice[p];
          if (c.count > 0) {
            update_dev_.Append(update_files_[p],
                               std::span<const std::byte>(
                                   reinterpret_cast<const std::byte*>(data + c.begin),
                                   c.count * sizeof(Update)));
          }
        }
      }
    });
  }

  void WaitUpdateWrites() {
    if (pending_update_write_.valid()) {
      pending_update_write_.wait();
    }
  }

  // Gathers one loaded chunk of updates. With multiple threads the chunk is
  // first sub-partitioned by destination (the §4.3 layering) so threads
  // gather disjoint vertex ranges without synchronization. tmp_a/tmp_b must
  // not alias `us`.
  void GatherChunk(Algo& algo, const Update* us, uint64_t count, VertexState* state_base,
                   VertexId part_base, uint32_t p, Update* tmp_a, Update* tmp_b,
                   std::atomic<uint64_t>& changed) {
    if (pool_.num_threads() == 1 || count < 4096) {
      uint64_t local = 0;
      for (uint64_t i = 0; i < count; ++i) {
        if (algo.Gather(state_base[layout_.DenseId(us[i].dst) - part_base], us[i])) {
          ++local;
        }
      }
      changed.fetch_add(local, std::memory_order_relaxed);
      return;
    }
    uint32_t sub_k = RoundUpPow2(static_cast<uint64_t>(pool_.num_threads()) * 4);
    uint64_t part_size = std::max<uint64_t>(1, layout_.Size(p));
    uint64_t sub_span = (part_size + sub_k - 1) / sub_k;
    VertexId begin = layout_.Begin(p);
    std::memcpy(tmp_a, us, count * sizeof(Update));
    auto sub = ShuffleRecords(pool_, tmp_a, tmp_b, count, sub_k, sub_k, [&](const Update& u) {
      return static_cast<uint32_t>((layout_.DenseId(u.dst) - begin) / sub_span);
    });
    std::atomic<uint32_t> next{0};
    pool_.RunOnAll([&](int) {
      uint64_t local = 0;
      for (;;) {
        uint32_t sp = next.fetch_add(1, std::memory_order_relaxed);
        if (sp >= sub_k) {
          break;
        }
        for (const auto& slice : sub.slices) {
          const ChunkRef& c = slice[sp];
          const Update* rec = sub.data + c.begin;
          for (uint64_t i = 0; i < c.count; ++i) {
            if (algo.Gather(state_base[layout_.DenseId(rec[i].dst) - part_base], rec[i])) {
              ++local;
            }
          }
        }
      }
      changed.fetch_add(local, std::memory_order_relaxed);
    });
  }

  void LoadVertices(uint32_t p) {
    uint64_t n = layout_.Size(p);
    vertex_dev_.Read(vertex_files_[p], 0,
                     std::span<std::byte>(reinterpret_cast<std::byte*>(part_states_.data()),
                                          n * sizeof(VertexState)));
  }

  void StoreVertices(uint32_t p) { StoreVertices(p, part_states_.data()); }

  void StoreVertices(uint32_t p, const VertexState* states) {
    uint64_t n = layout_.Size(p);
    vertex_dev_.Write(vertex_files_[p], 0,
                      std::span<const std::byte>(
                          reinterpret_cast<const std::byte*>(states),
                          n * sizeof(VertexState)));
  }

  void CaptureDeviceBaselines() {
    baselines_.clear();
    for (StorageDevice* dev : UniqueDevices()) {
      baselines_[dev] = dev->stats();
    }
  }

  void CollectDeviceStats() {
    stats_.sim_io_seconds = 0;
    stats_.bytes_read = 0;
    stats_.bytes_written = 0;
    for (StorageDevice* dev : UniqueDevices()) {
      DeviceStats s = dev->stats();
      DeviceStats base;  // zero if the device was attached after baselining
      auto it = baselines_.find(dev);
      if (it != baselines_.end()) {
        base = it->second;
      }
      stats_.sim_io_seconds =
          std::max(stats_.sim_io_seconds, s.busy_seconds - base.busy_seconds);
      stats_.bytes_read += s.bytes_read - base.bytes_read;
      stats_.bytes_written += s.bytes_written - base.bytes_written;
    }
  }

  std::vector<StorageDevice*> UniqueDevices() {
    std::set<StorageDevice*> unique{&edge_dev_, &update_dev_, &vertex_dev_};
    return {unique.begin(), unique.end()};
  }

  OutOfCoreConfig config_;
  ThreadPool pool_;
  StorageDevice& edge_dev_;
  StorageDevice& update_dev_;
  StorageDevice& vertex_dev_;
  uint64_t num_vertices_;
  uint64_t num_edges_;
  PartitionLayout layout_;

  uint64_t buffer_bytes_ = 0;
  StreamBuffer out_[2];
  StreamBuffer scratch_;

  bool vertices_in_memory_ = false;
  std::vector<VertexState> mem_states_;   // when vertices_in_memory_ (dense order)
  std::vector<VertexState> part_states_;  // one-partition scratch otherwise

  // Local-update absorption (config_.absorb_local_updates, file-resident
  // vertices only): shadow next-state of the partition being scattered.
  static constexpr uint32_t kNoAbsorbPartition = UINT32_MAX;
  std::vector<VertexState> shadow_states_;
  uint32_t absorb_partition_ = kNoAbsorbPartition;
  bool shadow_dirty_ = false;
  uint64_t absorbed_updates_ = 0;  // this iteration, via spill-time chunks
  uint64_t drained_updates_ = 0;   // this iteration, via end-of-partition drain
  uint64_t absorbed_changed_ = 0;  // this iteration
  uint64_t drain_watermark_ = 0;   // records of out_[fill] already drain-scanned

  std::vector<FileId> edge_files_;
  std::vector<FileId> update_files_;
  std::vector<FileId> vertex_files_;
  std::vector<uint64_t> edge_counts_;

  std::future<void> pending_update_write_;
  uint64_t spilled_updates_ = 0;
  std::map<StorageDevice*, DeviceStats> baselines_;
  RunStats stats_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_OOC_ENGINE_H_
