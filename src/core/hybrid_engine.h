// The hybrid (partially resident) streaming engine — the third engine mode.
//
// Sits between the in-memory engine (§4, everything resident) and the
// out-of-core engine (§3, everything streamed): a ResidencyPlanner
// (core/residency.h) pins the partitions with the best
// disk-traffic-avoided-per-resident-byte density under `--memory-budget`,
// and the HybridStreamStore (core/hybrid_store.h) serves pinned partitions
// from RAM — vertex states held resident, incoming updates buffered in
// memory — while unpinned partitions keep the full device path (vertex /
// update files, async spill, local-update absorption). The shared
// StreamingPhaseDriver runs unchanged.
//
// Budget semantics: `memory_budget_bytes` prices only the pin set (resident
// vertex states + worst-case update buffers); the out-of-core working
// memory — the §3.4 stream buffers and the partition-count inequality —
// stays under `streaming_budget_bytes`, exactly as in OutOfCoreConfig. At
// budget 0 the engine reproduces the out-of-core engine's behavior
// bit-for-bit; at a budget covering every partition, vertex and update
// traffic never touch the devices and only edges stream.
#ifndef XSTREAM_CORE_HYBRID_ENGINE_H_
#define XSTREAM_CORE_HYBRID_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithm.h"
#include "core/hybrid_store.h"
#include "core/partition.h"
#include "core/phase_runtime.h"
#include "core/residency.h"
#include "core/sizing.h"
#include "core/stats.h"
#include "graph/types.h"
#include "partitioning/partitioner.h"
#include "storage/device.h"
#include "threads/thread_pool.h"
#include "util/env.h"
#include "util/timer.h"

namespace xstream {

struct HybridConfig {
  // Sentinel: auto-detect the pin budget from the host (half of physical
  // memory) via ResolveMemoryBudget. An explicit 0 pins nothing.
  static constexpr uint64_t kAutoMemoryBudget = UINT64_MAX;

  int threads = 0;  // 0 = all cores
  // Residency pin budget (the --memory-budget flag). kAutoMemoryBudget =
  // auto-detect; any other value is clamped to physical memory with a
  // warning (sizing.h).
  uint64_t memory_budget_bytes = kAutoMemoryBudget;
  // The §3.4 out-of-core working budget: stream buffers + the partition
  // count inequality, independent of the pin budget.
  uint64_t streaming_budget_bytes = 64ull << 20;
  size_t io_unit_bytes = 1 << 20;
  uint32_t num_partitions = 0;  // 0 = auto from §3.4
  bool allow_update_memory_opt = true;
  bool eager_update_truncate = true;
  bool absorb_local_updates = true;
  bool async_spill = true;
  int spill_queue_depth = 2;  // rotating spill write buffers (>= 2)
  // Delta+varint compression of spilled update streams (--compress-updates);
  // pinned partitions' RAM-resident updates are unaffected.
  bool compress_updates = false;
  // Per-thread staging for the single-stage shuffles (--stage-bytes); 0 =
  // legacy fused counting shuffle.
  size_t stage_bytes = 0;
  bool replan_between_iterations = true;
  // Iterations a partition must win/lose its place in the target pin set
  // before the incremental re-plan migrates it (CLI --residency-hysteresis).
  // 0 = legacy stop-the-world full re-plan between iterations.
  uint32_t residency_hysteresis = 2;
  // EWMA decay for the observed-update-volume re-plan signal (CLI
  // --residency-decay); 0 = last iteration only (legacy).
  double residency_decay = 0.0;
  // Cache pinned partitions' edge streams in RAM after their first scan
  // (CLI --pin-edges): a fully resident partition stops touching the edge
  // device entirely. Edge bytes are priced into the pin budget.
  bool pin_edges = false;
  bool keep_iteration_log = true;
  Partitioner* partitioner = nullptr;  // not owned; must outlive the engine
  std::string file_prefix = "xs";
};

template <EdgeCentricAlgorithm Algo>
class HybridEngine {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  using Store = HybridStreamStore<Algo>;
  using Driver = StreamingPhaseDriver<Algo, Store>;

  HybridEngine(const HybridConfig& config, StorageDevice& edge_dev,
               StorageDevice& update_dev, StorageDevice& vertex_dev,
               const std::string& input_edge_file, GraphInfo info)
      : pool_(config.threads > 0 ? config.threads : NumCores()),
        num_vertices_(info.num_vertices),
        num_edges_(info.num_edges) {
    WallTimer setup_timer;

    uint64_t vertex_bytes = num_vertices_ * sizeof(VertexState);
    uint32_t k = config.num_partitions > 0
                     ? config.num_partitions
                     : ChooseOutOfCorePartitions(vertex_bytes, config.streaming_budget_bytes,
                                                 config.io_unit_bytes);
    PartitionLayout layout;
    if (config.partitioner != nullptr) {
      auto mapping = std::make_shared<VertexMapping>(config.partitioner->Partition(
          MakeEdgeStream(edge_dev, input_edge_file, config.io_unit_bytes), num_vertices_, k));
      layout = PartitionLayout(std::move(mapping));
    } else {
      layout = PartitionLayout(num_vertices_, k);
    }

    typename Store::Options opts;
    opts.memory_budget_bytes = config.streaming_budget_bytes;
    opts.io_unit_bytes = config.io_unit_bytes;
    opts.allow_update_memory_opt = config.allow_update_memory_opt;
    opts.eager_update_truncate = config.eager_update_truncate;
    opts.absorb_local_updates = config.absorb_local_updates;
    opts.async_spill = config.async_spill;
    opts.spill_queue_depth = config.spill_queue_depth;
    opts.compress_updates = config.compress_updates;
    opts.stage_bytes = config.stage_bytes;
    opts.file_prefix = config.file_prefix;
    opts.replan_between_iterations = config.replan_between_iterations;
    opts.residency_hysteresis = config.residency_hysteresis;
    opts.residency_decay = config.residency_decay;
    opts.pin_edges = config.pin_edges;
    uint64_t budget = config.memory_budget_bytes;
    if (budget == HybridConfig::kAutoMemoryBudget) {
      budget = ResolveMemoryBudget(0);
    } else if (budget > 0) {
      budget = ResolveMemoryBudget(budget);
    }
    opts.pin_budget_bytes = budget;
    store_ = std::make_unique<Store>(pool_, std::move(layout), opts, edge_dev, update_dev,
                                     vertex_dev, input_edge_file);
    PhaseDriverOptions dopts;
    dopts.keep_iteration_log = config.keep_iteration_log;
    driver_ = std::make_unique<Driver>(*store_, dopts);
    stats().setup_seconds = setup_timer.Seconds();
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_partitions() const { return store_->layout().num_partitions(); }
  const PartitionLayout& layout() const { return store_->layout(); }
  uint64_t buffer_bytes() const { return store_->buffer_bytes(); }

  // Residency introspection.
  uint64_t pin_budget_bytes() const { return store_->planner().budget_bytes(); }
  const ResidencyPlan& residency_plan() const { return store_->residency_plan(); }
  uint32_t resident_partitions() const { return store_->residency_plan().resident_count(); }
  uint64_t replans() const { return store_->replans(); }
  // The budget at which every partition pins (benches sweep fractions).
  uint64_t FullPinBytes() const { return store_->FullPinBytes(); }
  // Manual re-plan against explicit inputs (automatic re-planning runs at
  // iteration boundaries when replan_between_iterations is set).
  void Replan(const std::vector<PartitionResidencyStats>& inputs) { store_->Replan(inputs); }

  std::vector<std::string> EdgeFileNames() const { return store_->EdgeFileNames(); }

  RunStats& stats() { return driver_->stats(); }
  const RunStats& stats() const { return driver_->stats(); }

  // The engine's store and driver, for advanced callers (the multi-job
  // scheduler drives stores/drivers directly; see src/scheduler/).
  Store& store() { return *store_; }
  Driver& driver() { return *driver_; }

  void IngestEdges(const EdgeList& batch) {
    WallTimer timer;
    store_->IngestEdges(batch);
    num_edges_ += batch.size();
    stats().setup_seconds += timer.Seconds();
  }

  template <typename F>
  void VertexMap(F&& f) {
    driver_->VertexMap(std::forward<F>(f));
  }

  template <typename T, typename F>
  T VertexFold(T init, F&& f) {
    return driver_->VertexFoldDense(std::move(init), std::forward<F>(f));
  }

  void InitVertices(Algo& algo) { driver_->InitVertices(algo); }

  IterationStats RunIteration(Algo& algo) { return driver_->RunIteration(algo); }

  RunStats Run(Algo& algo, uint64_t max_iterations = UINT64_MAX) {
    return driver_->Run(algo, max_iterations);
  }

  void FinalizeStats() { driver_->FinalizeStats(); }
  void ResetStats() { driver_->ResetStats(); }

  void SaveVertexStates(StorageDevice& dev, const std::string& file) {
    driver_->SaveVertexStates(dev, file);
  }

  void LoadVertexStates(StorageDevice& dev, const std::string& file) {
    driver_->LoadVertexStates(dev, file);
  }

 private:
  ThreadPool pool_;
  uint64_t num_vertices_;
  uint64_t num_edges_;
  std::unique_ptr<Store> store_;
  std::unique_ptr<Driver> driver_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_HYBRID_ENGINE_H_
