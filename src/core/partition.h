// Streaming-partition layout (paper §2.2).
//
// "The vertex sets of different streaming partitions are mutually disjoint,
// and their union equals the vertex set of the entire graph. ... We restrict
// the vertex sets of streaming partitions to be of equal size." Vertices are
// assigned to partitions by contiguous equal ranges, so partition membership
// is one integer division and vertex state arrays can be sliced per
// partition without indirection.
#ifndef XSTREAM_CORE_PARTITION_H_
#define XSTREAM_CORE_PARTITION_H_

#include <algorithm>
#include <cstdint>

#include "graph/types.h"
#include "util/logging.h"

namespace xstream {

class PartitionLayout {
 public:
  PartitionLayout() = default;

  PartitionLayout(uint64_t num_vertices, uint32_t num_partitions)
      : num_vertices_(num_vertices),
        num_partitions_(num_partitions),
        per_partition_((num_vertices + num_partitions - 1) / std::max(1u, num_partitions)) {
    XS_CHECK_GT(num_partitions, 0u);
    if (per_partition_ == 0) {
      per_partition_ = 1;  // more partitions than vertices: trailing ones empty
    }
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint32_t num_partitions() const { return num_partitions_; }
  uint64_t vertices_per_partition() const { return per_partition_; }

  uint32_t PartitionOf(VertexId v) const {
    return static_cast<uint32_t>(v / per_partition_);
  }

  VertexId Begin(uint32_t p) const {
    return static_cast<VertexId>(std::min<uint64_t>(p * per_partition_, num_vertices_));
  }

  VertexId End(uint32_t p) const {
    return static_cast<VertexId>(std::min<uint64_t>((p + uint64_t{1}) * per_partition_,
                                                    num_vertices_));
  }

  uint64_t Size(uint32_t p) const { return End(p) - Begin(p); }

 private:
  uint64_t num_vertices_ = 0;
  uint32_t num_partitions_ = 1;
  uint64_t per_partition_ = 1;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_PARTITION_H_
