// Streaming-partition layout (paper §2.2) and vertex->partition mappings.
//
// "The vertex sets of different streaming partitions are mutually disjoint,
// and their union equals the vertex set of the entire graph." The paper
// fixes the assignment to equal contiguous ranges so partition membership is
// one integer division and vertex state arrays can be sliced per partition
// without indirection. This file keeps that fast path (range mode) and adds
// a mapped mode: an arbitrary vertex->partition assignment produced by a
// Partitioner (src/partitioning/), carried as a VertexMapping.
//
// The trick that keeps per-partition vertex-state slicing working under an
// arbitrary assignment is a contiguous relabeling: every vertex also gets a
// *dense* id such that partition p owns the dense range
// [part_begin[p], part_begin[p+1]). Engines slice state arrays and vertex
// files in dense space and translate at the edges (scatter/gather indexing,
// EndVertex, VertexMap) via DenseId/OriginalId. In range mode both
// translations are the identity, so the paper's zero-indirection behavior is
// preserved exactly.
#ifndef XSTREAM_CORE_PARTITION_H_
#define XSTREAM_CORE_PARTITION_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "util/logging.h"

namespace xstream {

// An explicit vertex->partition assignment plus its contiguous relabeling.
// Invariants (checked by ValidateMapping in src/partitioning/):
//  * partition_of[v] < num_partitions for every original id v
//  * dense_of and original_of are inverse permutations of [0, n)
//  * part_begin has num_partitions + 1 entries, part_begin[0] == 0,
//    part_begin[k] == n, and partition_of[original_of[i]] == p exactly for
//    i in [part_begin[p], part_begin[p+1]).
struct VertexMapping {
  uint32_t num_partitions = 1;
  std::vector<uint32_t> partition_of;  // original id -> partition
  std::vector<VertexId> dense_of;      // original id -> dense slot
  std::vector<VertexId> original_of;   // dense slot -> original id
  std::vector<uint64_t> part_begin;    // dense-space boundaries, size k+1

  uint64_t num_vertices() const { return partition_of.size(); }
};

class PartitionLayout {
 public:
  PartitionLayout() = default;

  // Range mode: equal contiguous ranges (the paper's assignment).
  PartitionLayout(uint64_t num_vertices, uint32_t num_partitions)
      : num_vertices_(num_vertices),
        num_partitions_(num_partitions),
        per_partition_((num_vertices + num_partitions - 1) / std::max(1u, num_partitions)) {
    XS_CHECK_GT(num_partitions, 0u);
    if (per_partition_ == 0) {
      per_partition_ = 1;  // more partitions than vertices: trailing ones empty
    }
  }

  // Mapped mode: an explicit assignment from a streaming partitioner. The
  // mapping is shared (several engine components hold the layout by value).
  explicit PartitionLayout(std::shared_ptr<const VertexMapping> mapping)
      : mapping_(std::move(mapping)) {
    XS_CHECK(mapping_ != nullptr);
    XS_CHECK_GT(mapping_->num_partitions, 0u);
    XS_CHECK_EQ(mapping_->part_begin.size(), size_t{mapping_->num_partitions} + 1);
    num_vertices_ = mapping_->num_vertices();
    num_partitions_ = mapping_->num_partitions;
    per_partition_ =
        std::max<uint64_t>(1, (num_vertices_ + num_partitions_ - 1) / num_partitions_);
  }

  uint64_t num_vertices() const { return num_vertices_; }
  uint32_t num_partitions() const { return num_partitions_; }
  uint64_t vertices_per_partition() const { return per_partition_; }
  bool mapped() const { return mapping_ != nullptr; }
  const VertexMapping* mapping() const { return mapping_.get(); }

  // Clamp contract (both modes): with a non-divisible vertex count the last
  // range is short, and ids at/above num_vertices (defensive callers, padded
  // or corrupt streams) must still land in a real partition rather than
  // indexing past the layout or the mapping vectors.
  uint32_t PartitionOf(VertexId v) const {
    if (mapping_) {
      return v < num_vertices_ ? mapping_->partition_of[v] : num_partitions_ - 1;
    }
    return static_cast<uint32_t>(
        std::min<uint64_t>(v / per_partition_, uint64_t{num_partitions_} - 1));
  }

  // Original id -> dense slot. Identity in range mode; out-of-range ids
  // clamp to the last slot in mapped mode (mirroring PartitionOf — garbage
  // in, bounded garbage out, never an out-of-bounds vector read).
  uint64_t DenseId(VertexId v) const {
    if (mapping_) {
      return v < num_vertices_ ? mapping_->dense_of[v] : num_vertices_ - 1;
    }
    return v;
  }

  // Dense slot -> original id. Identity in range mode.
  VertexId OriginalId(uint64_t dense) const {
    return mapping_ ? mapping_->original_of[dense] : static_cast<VertexId>(dense);
  }

  // Partition boundaries in dense space (== original-id space in range mode).
  VertexId Begin(uint32_t p) const {
    if (mapping_) {
      return static_cast<VertexId>(mapping_->part_begin[p]);
    }
    return static_cast<VertexId>(std::min<uint64_t>(p * per_partition_, num_vertices_));
  }

  VertexId End(uint32_t p) const {
    if (mapping_) {
      return static_cast<VertexId>(mapping_->part_begin[p + 1]);
    }
    return static_cast<VertexId>(std::min<uint64_t>((p + uint64_t{1}) * per_partition_,
                                                    num_vertices_));
  }

  uint64_t Size(uint32_t p) const { return End(p) - Begin(p); }

  // Largest partition, for sizing one-partition state scratch buffers.
  uint64_t MaxPartitionSize() const {
    if (!mapping_) {
      return std::min<uint64_t>(per_partition_, num_vertices_);
    }
    uint64_t max_size = 0;
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      max_size = std::max(max_size, Size(p));
    }
    return max_size;
  }

 private:
  std::shared_ptr<const VertexMapping> mapping_;
  uint64_t num_vertices_ = 0;
  uint32_t num_partitions_ = 1;
  uint64_t per_partition_ = 1;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_PARTITION_H_
