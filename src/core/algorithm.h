// The edge-centric scatter-gather programming model (paper §2, Fig 2).
//
// An algorithm supplies:
//   * VertexState — the mutable per-vertex data ("the state of the
//     computation is stored in the vertices"). Trivially copyable: states
//     are bulk-loaded/stored by the out-of-core engine.
//   * Update — the record sent along an edge. Trivially copyable with a
//     public `dst` member naming the destination vertex: updates are moved
//     by byte shuffles and routed to the partition owning `dst`.
//   * Init(v, state)        — vertex initialization (via vertex iteration,
//     §2.5).
//   * Scatter(src_state, edge, out) -> bool — edge-centric scatter: given
//     the source vertex's state and an edge, decide whether to send an
//     update; fill `out` and return true to emit.
//   * Gather(dst_state, update) -> bool — edge-centric gather: fold one
//     update into the destination vertex's state; return true if the state
//     changed (statistics only).
//
// Optional hooks, detected structurally:
//   * BeforeIteration(iter)  — phase bookkeeping; runs single-threaded
//     before each scatter. Scatter/Gather themselves must be safe to call
//     concurrently (they may only mutate the state reference they're given).
//   * EndVertex(v, state)    — per-vertex epilogue after the partition's
//     gather completes (e.g. promote "next active" flags). Gather for a
//     partition only touches that partition's vertices, so running this
//     per-partition is equivalent to a global pass after the gather phase.
//   * Done(iteration_stats) -> bool — extra termination criterion; the
//     engines always stop when a scatter produces zero updates.
#ifndef XSTREAM_CORE_ALGORITHM_H_
#define XSTREAM_CORE_ALGORITHM_H_

#include <concepts>
#include <type_traits>

#include "core/stats.h"
#include "graph/types.h"

namespace xstream {

template <typename A>
concept EdgeCentricAlgorithm = requires(A a, const typename A::VertexState& src,
                                        typename A::VertexState& state,
                                        const typename A::Update& u, typename A::Update& out,
                                        const Edge& e, VertexId v) {
  requires std::is_trivially_copyable_v<typename A::VertexState>;
  requires std::is_trivially_copyable_v<typename A::Update>;
  { a.Init(v, state) } -> std::same_as<void>;
  { a.Scatter(src, e, out) } -> std::convertible_to<bool>;
  { a.Gather(state, u) } -> std::convertible_to<bool>;
  { u.dst } -> std::convertible_to<VertexId>;
};

template <typename A>
concept HasBeforeIteration = requires(A a, uint64_t iter) {
  { a.BeforeIteration(iter) } -> std::same_as<void>;
};

template <typename A>
concept HasEndVertex = requires(A a, VertexId v, typename A::VertexState& s) {
  { a.EndVertex(v, s) } -> std::same_as<void>;
};

template <typename A>
concept HasDone = requires(A a, const IterationStats& stats) {
  { a.Done(stats) } -> std::convertible_to<bool>;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_ALGORITHM_H_
