#include "core/hybrid_store.h"

namespace xstream {

std::vector<PartitionResidencyStats> BuildHybridPlanInputs(
    const PartitionLayout& layout, size_t vertex_state_bytes, size_t update_bytes,
    const std::vector<uint64_t>& dst_edge_counts,
    const std::vector<uint64_t>& local_edge_counts, bool absorb_local_updates,
    const std::vector<uint64_t>* pinned_edge_counts) {
  uint32_t k = layout.num_partitions();
  XS_CHECK_EQ(dst_edge_counts.size(), size_t{k});
  XS_CHECK_EQ(local_edge_counts.size(), size_t{k});
  std::vector<PartitionResidencyStats> inputs(k);
  for (uint32_t p = 0; p < k; ++p) {
    uint64_t vbytes = layout.Size(p) * vertex_state_bytes;
    // Worst case one update per incoming edge: the RAM buffer a pin must be
    // prepared to hold.
    uint64_t buffer = dst_edge_counts[p] * update_bytes;
    // Updates already absorbed into the scatter partition's shadow never hit
    // the update file, so with absorption on only cross-partition incoming
    // edges count toward the traffic a pin avoids.
    uint64_t crossing = absorb_local_updates
                            ? dst_edge_counts[p] - local_edge_counts[p]
                            : dst_edge_counts[p];
    // Edge pinning: the pin additionally holds the partition's edge stream
    // and saves its per-iteration device read.
    uint64_t ebytes =
        pinned_edge_counts != nullptr ? (*pinned_edge_counts)[p] * sizeof(Edge) : 0;
    inputs[p].vertex_bytes = vbytes;
    inputs[p].update_buffer_bytes = buffer;
    inputs[p].edge_bytes = ebytes;
    inputs[p].avoided_bytes_per_iteration =
        PricePinSavings(vbytes, crossing * update_bytes, ebytes);
  }
  return inputs;
}

}  // namespace xstream
