// StreamingPhaseDriver: the one scatter-shuffle-gather loop behind both
// engines.
//
// X-Stream applies the same edge-centric iteration structure to in-memory
// and out-of-core streaming partitions (paper §3 Fig 6, §4 Fig 4). This
// driver owns that structure once — partition iteration, scatter emission
// through ConcurrentAppender staging, ShuffleRecords plumbing, gather
// draining, vertex iteration, checkpointing and IterationStats/RunStats
// folding — and is parameterized over a StreamStore (core/stream_store.h)
// that decides where the streams and vertex states physically live.
//
// The two stores imply two phase shapes, selected statically by the store's
// kPartitionParallel trait:
//
//  * Partition-parallel (MemoryStreamStore, §4): partitions are cache-sized
//    and plentiful, so scatter and gather run partitions concurrently under
//    work stealing, with one global multi-stage shuffle between them.
//  * Partition-sequential (DeviceStreamStore, §3): one partition's streams
//    are loaded at a time; parallelism lives inside each loaded chunk (§4.3
//    layering), the shuffle is folded into scatter via the store's spill
//    path, and gather sub-partitions each chunk by destination so threads
//    touch disjoint vertex ranges.
//
// Engines (core/inmem_engine.h, core/ooc_engine.h) are thin facades: they
// pick the store, size the layout/buffers, and forward their public API
// here.
#ifndef XSTREAM_CORE_PHASE_RUNTIME_H_
#define XSTREAM_CORE_PHASE_RUNTIME_H_

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "buffers/shuffler.h"
#include "core/algorithm.h"
#include "core/partition.h"
#include "core/sizing.h"
#include "core/stats.h"
#include "core/stream_store.h"
#include "graph/types.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/device.h"
#include "storage/stream_io.h"
#include "threads/concurrent_appender.h"
#include "threads/thread_pool.h"
#include "threads/work_stealing.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xstream {

// Vertex-state checkpoints (version 2): a fixed header, then — when the
// engine runs under a streaming partitioner — the active vertex->partition
// assignment, then the states in the layout's dense order. Storing the
// mapping makes restores validatable: dense order depends on the mapping,
// so loading a checkpoint into an engine with a different `--partitioner`
// used to scramble states silently; now it fails with a clear error. Range
// layouts (the paper's contiguous ranges) write no mapping — their dense
// order is the identity for every partition count, so those checkpoints
// stay portable across partition counts.
struct CheckpointHeader {
  static constexpr uint64_t kMagic = 0x58532D434B505432ull;  // "XS-CKPT2"
  static constexpr uint32_t kVersion = 2;

  uint64_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t num_partitions = 0;
  uint64_t num_vertices = 0;
  uint64_t state_bytes = 0;
  uint64_t mapping_entries = 0;  // num_vertices when mapped, else 0
};
static_assert(std::is_trivially_copyable_v<CheckpointHeader>);

struct PhaseDriverOptions {
  // Multi-stage shuffler fanout for the partition-parallel shape (§4.2).
  uint32_t shuffle_fanout = 2;
  // Partition-parallel shape only: false = static round-robin assignment
  // (the §4.1 work-stealing ablation).
  bool enable_work_stealing = true;
  bool keep_iteration_log = true;
  // Registry prefix for the driver's live progress gauges
  // (<prefix>.iteration, .partition_cursor, .active_vertices,
  // .edge_bytes_per_sec), published at iteration and partition boundaries
  // so a telemetry scrape sees mid-run progress. Scheduler jobs get
  // "job.<name>" so concurrent jobs do not clobber one another.
  std::string progress_prefix = "run";
};

template <EdgeCentricAlgorithm Algo, StreamStoreFor Store>
class StreamingPhaseDriver {
 public:
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;

  StreamingPhaseDriver(Store& store, const PhaseDriverOptions& opts)
      : store_(store),
        opts_(opts),
        queues_(store.pool().num_threads()),
        accountant_(opts.progress_prefix, store.layout().num_partitions()) {
    store_.BindStats(&stats_);
    // Stores that can attribute their internal waits (spill-write stalls,
    // edge-scan and gather read stalls, in-spill shuffles) feed the same
    // accountant the driver charges its phase sections to.
    if constexpr (requires(Store& st, obs::PhaseAccountant* a) { st.BindAccountant(a); }) {
      store_.BindAccountant(&accountant_);
    }
    // Gauge handles are resolved once; the boundary publishes are then one
    // relaxed store each (no-ops under -DXSTREAM_DISABLE_OBS). Gauges are
    // registry-owned, so two drivers with the same prefix share them
    // (last writer wins — fine for monitoring).
    obs::MetricGroup progress(obs::MetricsRegistry::Global(), opts_.progress_prefix);
    progress_iteration_ = &progress.gauge("iteration");
    progress_cursor_ = &progress.gauge("partition_cursor");
    progress_active_ = &progress.gauge("active_vertices");
    progress_throughput_ = &progress.gauge("edge_bytes_per_sec");
  }

  const PartitionLayout& layout() const { return store_.layout(); }
  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }
  obs::PhaseAccountant& accountant() { return accountant_; }
  const obs::PhaseAccountant& accountant() const { return accountant_; }

  // ---- Vertex iteration (§2.5) -------------------------------------------

  // Applies f(original_id, state) to every vertex: in parallel over
  // partition-aligned dense ranges when the states are resident, otherwise
  // one loaded partition at a time.
  template <typename F>
  void VertexMap(F&& f) {
    const PartitionLayout& layout = store_.layout();
    if (store_.all_resident()) {
      VertexState* states = store_.resident_states();
      store_.pool().ParallelFor(0, layout.num_vertices(), 4096,
                                [&](uint64_t lo, uint64_t hi) {
                                  for (uint64_t i = lo; i < hi; ++i) {
                                    f(layout.OriginalId(i), states[i]);
                                  }
                                });
      return;
    }
    for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
      if (layout.Size(p) == 0) {
        continue;
      }
      store_.LoadPartition(p);
      VertexState* states = store_.partition_states();
      VertexId base = layout.Begin(p);
      store_.pool().ParallelFor(0, layout.Size(p), 4096, [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          f(layout.OriginalId(base + i), states[i]);
        }
      });
      store_.StorePartition(p);
    }
  }

  // Sequential fold over vertex states in dense (partition) order.
  template <typename T, typename F>
  T VertexFoldDense(T init, F&& f) {
    const PartitionLayout& layout = store_.layout();
    T acc = init;
    if (store_.all_resident()) {
      const VertexState* states = store_.resident_states();
      for (uint64_t i = 0; i < layout.num_vertices(); ++i) {
        acc = f(acc, layout.OriginalId(i), states[i]);
      }
      return acc;
    }
    for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
      if (layout.Size(p) == 0) {
        continue;
      }
      store_.LoadPartition(p);
      const VertexState* states = store_.partition_states();
      VertexId base = layout.Begin(p);
      for (uint64_t i = 0; i < layout.Size(p); ++i) {
        acc = f(acc, layout.OriginalId(base + i), states[i]);
      }
    }
    return acc;
  }

  // Sequential fold in original vertex-id order regardless of the mapping.
  // Requires resident states (the in-memory engine's contract).
  template <typename T, typename F>
  T VertexFoldOriginal(T init, F&& f) const {
    const PartitionLayout& layout = store_.layout();
    XS_CHECK(store_.all_resident());
    const VertexState* states = store_.resident_states();
    T acc = init;
    for (uint64_t v = 0; v < layout.num_vertices(); ++v) {
      acc = f(acc, static_cast<VertexId>(v), states[layout.DenseId(static_cast<VertexId>(v))]);
    }
    return acc;
  }

  void InitVertices(Algo& algo) {
    if (store_.all_resident()) {
      VertexMap([&algo](VertexId v, VertexState& s) { algo.Init(v, s); });
      return;
    }
    // Vertex files hold zeroes, not algorithm state, until the first store;
    // write initial states partition-wise without the wasted load.
    const PartitionLayout& layout = store_.layout();
    for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
      if (layout.Size(p) == 0) {
        continue;
      }
      VertexState* states = store_.partition_states();
      VertexId base = layout.Begin(p);
      for (uint64_t i = 0; i < layout.Size(p); ++i) {
        algo.Init(layout.OriginalId(base + i), states[i]);
      }
      store_.StorePartition(p);
    }
  }

  // ---- The streaming loop -------------------------------------------------

  // One synchronous scatter -> shuffle -> gather round (Fig 4 / Fig 6),
  // assembled from the externally drivable pieces below so the single-job
  // loop and the scheduler's shared-scan mode cannot drift.
  IterationStats RunIteration(Algo& algo) {
    BeginIterationScatter(algo);
    if constexpr (Store::kPartitionParallel) {
      ScatterAllPartitionsParallel(algo);
    } else {
      const PartitionLayout& layout = store_.layout();
      for (uint32_t s = 0; s < layout.num_partitions(); ++s) {
        if (!PartitionNeedsScatter(s)) {
          continue;
        }
        BeginScatterPartition(s);
        store_.ForEachEdgeChunk(s,
                                [&](const Edge* es, uint64_t n) { ScatterChunk(algo, es, n); });
        EndScatterPartition(algo);
      }
    }
    return FinishIterationScatter(algo);
  }

  // ---- Multi-job (externally driven) scatter mode -------------------------
  //
  // The JobScheduler (src/scheduler/) owns the edge scan: it streams each
  // partition's edge chunks once and feeds them to every active job's
  // driver, so N concurrent jobs pay for one sequential pass instead of N.
  // Protocol per iteration:
  //
  //   BeginIterationScatter(algo)
  //   for each partition s with PartitionNeedsScatter(s):
  //     BeginScatterPartition(s)
  //     ScatterChunk(algo, es, n)*     // chunks come from the scan owner
  //     EndScatterPartition(algo)
  //   FinishIterationScatter(algo)     // spill tail + gather + stats fold
  //
  // Every partition must be visited exactly once per iteration, but any
  // rotation works — updates are unordered within an iteration (§2.3), so a
  // job admitted mid-round simply starts its cycle at the next partition
  // boundary. CancelIterationScatter() abandons a half-done iteration (job
  // cancellation), draining any in-flight spill writes.

  void BeginIterationScatter(Algo& algo) {
    XS_CHECK(!in_iteration_scatter_) << "iteration scatter already in progress";
    in_iteration_scatter_ = true;
    progress_iteration_->Set(static_cast<double>(stats_.iterations));
    iter_span_.Start(static_cast<int64_t>(stats_.iterations));
    accountant_.BeginIteration(stats_.iterations);
    cur_iter_ = IterationStats{};
    cur_iter_.iteration = stats_.iterations;
    iter_timer_.Reset();
    streaming_.Clear();
    if constexpr (HasBeforeIteration<Algo>) {
      algo.BeforeIteration(stats_.iterations);
    }
    store_.BeginIteration();
    if constexpr (Store::kPartitionParallel) {
      scatter_appender_ = std::make_unique<ConcurrentAppender>(
          store_.update_append_span(), sizeof(Update), store_.pool().num_threads());
    } else {
      scatter_appender_ = std::make_unique<ConcurrentAppender>(
          store_.fill_span(), sizeof(Update), store_.pool().num_threads());
    }
  }

  // Whether partition s takes part in this iteration's scatter (empty
  // partitions with file-resident vertices are skipped, like the single-job
  // loop always has).
  bool PartitionNeedsScatter(uint32_t s) const {
    if constexpr (Store::kPartitionParallel) {
      (void)s;
      return true;
    } else {
      return store_.all_resident() || store_.layout().Size(s) > 0;
    }
  }

  void BeginScatterPartition(uint32_t s) {
    XS_CHECK(in_iteration_scatter_);
    attr_partition_ = s;
    if constexpr (Store::kPartitionParallel) {
      scatter_state_base_ = store_.resident_states();
      scatter_part_base_ = 0;
    } else {
      // Partition-boundary migration hook: partially resident stores apply
      // staged residency changes (evictions/promotions) here, one partition
      // at a time, instead of in a stop-the-world phase between iterations.
      // Runs in solo loops and the scheduler's shared-scan mode alike —
      // both reach every partition's scatter through this method.
      if constexpr (requires(Store& st, uint32_t q) { st.AtPartitionBoundary(q); }) {
        obs::PhaseTimer pt(&accountant_, obs::Phase::kMigration, s);
        store_.AtPartitionBoundary(s);
      }
      PublishPartitionProgress(s);
      scatter_span_.Start(s);
      store_.BeginPartitionScatter(s);
      scatter_state_base_ =
          store_.all_resident() ? store_.resident_states() : store_.partition_states();
      scatter_part_base_ = store_.all_resident() ? 0 : store_.layout().Begin(s);
    }
  }

  // Streams one loaded span of the current partition's edges: spill when the
  // worst-case output may not fit (device shape), scatter the span in
  // parallel, flush. Chunks may come from the store's own reader (solo runs)
  // or from a scheduler's shared scan.
  void ScatterChunk(Algo& algo, const Edge* es, uint64_t n) {
    ConcurrentAppender& appender = *scatter_appender_;
    if constexpr (!Store::kPartitionParallel) {
      if (appender.bytes() + n * sizeof(Update) > store_.buffer_bytes()) {
        store_.SpillUpdates(algo, appender);
        appender.Reset();  // scatter continues into the drained fill buffer
      }
    }
    std::atomic<uint64_t> wasted{0};
    {
      obs::PhaseTimer pt(&accountant_, obs::Phase::kScatter, attr_partition_);
      store_.pool().ParallelForTid(0, n, 2048, [&](int tid, uint64_t lo, uint64_t hi) {
        uint64_t w = ScatterSpan(algo, es + lo, hi - lo, scatter_state_base_,
                                 scatter_part_base_, tid, appender);
        wasted.fetch_add(w, std::memory_order_relaxed);
      });
      appender.FlushAll();
    }
    cur_iter_.edges_streamed += n;
    cur_iter_.wasted_edges += wasted.load();
  }

  void EndScatterPartition(Algo& algo) {
    if constexpr (!Store::kPartitionParallel) {
      store_.EndPartitionScatter(algo, *scatter_appender_);
      scatter_span_.Stop("scatter");
    }
  }

  // Ends the scatter phase (tail spill or §3.2 memory gather), runs the full
  // gather phase, and folds the iteration into stats().
  IterationStats FinishIterationScatter(Algo& algo) {
    XS_CHECK(in_iteration_scatter_);
    ConcurrentAppender& appender = *scatter_appender_;
    if constexpr (Store::kPartitionParallel) {
      const PartitionLayout& layout = store_.layout();
      appender.FlushAll();
      cur_iter_.updates_generated = appender.records();
      ShuffleOutput<Update> shuffled;
      if (cur_iter_.updates_generated > 0) {
        ScopedInterval si(streaming_);
        obs::TraceSpan span("shuffle");
        // Wall only: the global shuffle has no per-partition owner, and a
        // phantom cell would dilute the skew index.
        obs::PhaseTimer pt(&accountant_, obs::Phase::kShuffle, obs::kNoPartition,
                           obs::PhaseTimerMode::kWallOnly);
        shuffled = ShuffleRecords(
            store_.pool(), store_.update_records(), store_.scratch_records(),
            cur_iter_.updates_generated, layout.num_partitions(), opts_.shuffle_fanout,
            [&layout](const Update& u) { return layout.PartitionOf(u.dst); });
        store_.CommitUpdateShuffle(shuffled);
      }
      GatherPartitionParallel(algo, shuffled);
      stats_.streaming_seconds += streaming_.TotalSeconds();
    } else {
      auto plan = store_.FinishScatter(algo, appender);
      // Drained updates were removed from the buffer before the tail count,
      // but they were generated (and gathered) all the same. A spilled tail
      // is already inside spilled_updates(); only a memory-resident tail
      // needs adding on top.
      cur_iter_.updates_generated = store_.spilled_updates() + store_.drained_updates() +
                                    (plan.memory_gather ? plan.tail_records : 0);
      cur_iter_.updates_absorbed = store_.absorbed_updates() + store_.drained_updates();
      GatherPartitionSequential(algo, plan);
    }
    scatter_appender_.reset();
    in_iteration_scatter_ = false;
    iter_span_.Stop("iteration");
    accountant_.EndIteration();

    cur_iter_.seconds = iter_timer_.Seconds();
    stats_.edges_streamed += cur_iter_.edges_streamed;
    stats_.updates_generated += cur_iter_.updates_generated;
    stats_.wasted_edges += cur_iter_.wasted_edges;
    stats_.updates_absorbed += cur_iter_.updates_absorbed;
    ++stats_.iterations;
    if (opts_.keep_iteration_log) {
      stats_.per_iteration.push_back(cur_iter_);
    }
    progress_iteration_->Set(static_cast<double>(stats_.iterations));
    progress_active_->Set(static_cast<double>(cur_iter_.vertices_changed));
    PublishThroughput(stats_.edges_streamed);
    return cur_iter_;
  }

  // Abandons a half-done iteration (the scheduler cancelled this job
  // mid-round): in-flight spill writes are drained and already spilled
  // updates discarded; stats() keeps only completed iterations. Vertex
  // state is NOT rewound — partitions scattered before the cancel may hold
  // absorbed mid-iteration updates — so a cancelled driver/store pair is
  // only safe to destroy, not to resume.
  void CancelIterationScatter() {
    if (!in_iteration_scatter_) {
      return;
    }
    if constexpr (!Store::kPartitionParallel) {
      store_.AbortScatter();
    }
    scatter_span_.Cancel();
    iter_span_.Cancel();
    accountant_.EndIteration();
    scatter_appender_.reset();
    in_iteration_scatter_ = false;
  }

  // Runs Init + iterations until a scatter emits no updates, the algorithm
  // reports Done, or max_iterations is reached.
  RunStats Run(Algo& algo, uint64_t max_iterations = UINT64_MAX) {
    WallTimer timer;
    InitVertices(algo);
    while (stats_.iterations < max_iterations) {
      IterationStats iter = RunIteration(algo);
      if (iter.updates_generated == 0) {
        break;
      }
      if constexpr (HasDone<Algo>) {
        if (algo.Done(iter)) {
          break;
        }
      }
    }
    stats_.compute_seconds += timer.Seconds();
    FinalizeStats();
    return stats_;
  }

  // Folds scheduler and device counters into stats(). Run() calls this
  // automatically; manual RunIteration drivers should call it before
  // reading stats().
  void FinalizeStats() {
    if constexpr (Store::kPartitionParallel) {
      stats_.steals = queues_.steal_count();
    }
    if constexpr (requires(Store& s, RunStats& r) { s.CollectDeviceStats(r); }) {
      store_.CollectDeviceStats(stats_);
    }
  }

  // Clears run statistics (multi-computation reuse of one engine).
  void ResetStats() {
    stats_ = RunStats{};
    queues_.reset_steal_count();
    if constexpr (requires(Store& s) { s.CaptureDeviceBaselines(); }) {
      store_.CaptureDeviceBaselines();
    }
  }

  // ---- Checkpointing ------------------------------------------------------

  // Persists all vertex state (one sequential write stream) so a long
  // computation can resume in a fresh engine. States are written in the
  // layout's dense order behind a CheckpointHeader that also records the
  // active vertex mapping, so a restore under a different `--partitioner`
  // fails loudly instead of scrambling states. Write errors raised on the
  // checkpoint device's I/O thread propagate (StreamWriter Close, not the
  // quiet Finish).
  void SaveVertexStates(StorageDevice& dev, const std::string& file) {
    const PartitionLayout& layout = store_.layout();
    FileId f = dev.Create(file);
    StreamWriter writer(dev, f, kCheckpointChunkBytes);
    CheckpointHeader hdr;
    hdr.num_partitions = layout.num_partitions();
    hdr.num_vertices = layout.num_vertices();
    hdr.state_bytes = sizeof(VertexState);
    hdr.mapping_entries = layout.mapped() ? layout.num_vertices() : 0;
    writer.AppendRecord(hdr);
    if (layout.mapped()) {
      const std::vector<uint32_t>& po = layout.mapping()->partition_of;
      writer.Append(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(po.data()), po.size() * sizeof(uint32_t)));
    }
    if (store_.all_resident()) {
      writer.Append(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(store_.resident_states()),
          layout.num_vertices() * sizeof(VertexState)));
    } else {
      for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
        if (layout.Size(p) == 0) {
          continue;
        }
        store_.LoadPartition(p);
        writer.Append(std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(store_.partition_states()),
            layout.Size(p) * sizeof(VertexState)));
      }
    }
    writer.Close();
  }

  // Restores states saved by SaveVertexStates. The graph (vertex count,
  // state type) and the vertex mapping must match the checkpoint; aborts
  // with a clear message otherwise — a mapping mismatch would otherwise
  // restore every state into the wrong vertex silently.
  void LoadVertexStates(StorageDevice& dev, const std::string& file) {
    const PartitionLayout& layout = store_.layout();
    FileId f = dev.Open(file);
    XS_CHECK_GE(dev.FileSize(f), sizeof(CheckpointHeader))
        << "checkpoint does not match: file smaller than a checkpoint header";
    CheckpointHeader hdr;
    dev.Read(f, 0,
             std::span<std::byte>(reinterpret_cast<std::byte*>(&hdr), sizeof(hdr)));
    XS_CHECK_EQ(hdr.magic, CheckpointHeader::kMagic)
        << "checkpoint does not match: bad magic (not an xstream checkpoint, or one "
           "written before the mapping-aware format)";
    XS_CHECK_EQ(hdr.version, CheckpointHeader::kVersion)
        << "checkpoint does not match: unsupported checkpoint version";
    XS_CHECK_EQ(hdr.num_vertices, layout.num_vertices())
        << "checkpoint does not match this graph (vertex count)";
    XS_CHECK_EQ(hdr.state_bytes, sizeof(VertexState))
        << "checkpoint does not match this algorithm (vertex state size)";
    uint64_t base = sizeof(CheckpointHeader) + hdr.mapping_entries * sizeof(uint32_t);
    XS_CHECK_EQ(dev.FileSize(f), base + layout.num_vertices() * sizeof(VertexState))
        << "checkpoint does not match: truncated or trailing bytes";
    if (layout.mapped() || hdr.mapping_entries > 0) {
      XS_CHECK_EQ(hdr.mapping_entries, layout.mapped() ? layout.num_vertices() : 0)
          << "checkpoint does not match: it was written under a "
          << (hdr.mapping_entries > 0 ? "streaming-partitioner mapping" : "range layout")
          << " but this engine runs the other; restore with the same --partitioner";
      XS_CHECK_EQ(hdr.num_partitions, layout.num_partitions())
          << "checkpoint does not match: partition count differs under a mapped layout";
      std::vector<uint32_t> saved(hdr.mapping_entries);
      dev.Read(f, sizeof(CheckpointHeader),
               std::span<std::byte>(reinterpret_cast<std::byte*>(saved.data()),
                                    saved.size() * sizeof(uint32_t)));
      XS_CHECK(saved == layout.mapping()->partition_of)
          << "checkpoint does not match: it was written under a different vertex "
             "mapping (same --partitioner family but a different assignment); states "
             "would restore into the wrong vertices";
    }
    if (store_.all_resident()) {
      dev.Read(f, base,
               std::span<std::byte>(reinterpret_cast<std::byte*>(store_.resident_states()),
                                    layout.num_vertices() * sizeof(VertexState)));
      return;
    }
    uint64_t offset = base;
    for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
      uint64_t n = layout.Size(p);
      if (n == 0) {
        continue;
      }
      dev.Read(f, offset,
               std::span<std::byte>(reinterpret_cast<std::byte*>(store_.partition_states()),
                                    n * sizeof(VertexState)));
      store_.StorePartition(p);
      offset += n * sizeof(VertexState);
    }
  }

 private:
  static constexpr size_t kCheckpointChunkBytes = 4 * 1024 * 1024;

  // Shared scatter inner loop: streams one span of edges against the given
  // state slice, appending emitted updates from thread `tid`. Returns the
  // number of wasted edges (streamed, no update sent — Fig 12b).
  uint64_t ScatterSpan(Algo& algo, const Edge* es, uint64_t count,
                       const VertexState* state_base, VertexId part_base, int tid,
                       ConcurrentAppender& appender) {
    const PartitionLayout& layout = store_.layout();
    uint64_t wasted = 0;
    for (uint64_t i = 0; i < count; ++i) {
      Update out;
      if (algo.Scatter(state_base[layout.DenseId(es[i].src) - part_base], es[i], out)) {
        appender.Append(tid, &out);
      } else {
        ++wasted;
      }
    }
    return wasted;
  }

  // ---- Partition-parallel shape (memory store, §4) ------------------------

  // Scatter phase: stream every partition's edge chunks concurrently under
  // work stealing, appending updates to the shared update buffer.
  void ScatterAllPartitionsParallel(Algo& algo)
    requires(Store::kPartitionParallel)
  {
    const PartitionLayout& layout = store_.layout();
    ThreadPool& pool = store_.pool();
    ConcurrentAppender& appender = *scatter_appender_;
    const ShuffleOutput<Edge>& edge_chunks = store_.edge_chunks();
    std::atomic<uint64_t> edges_streamed{0};
    std::atomic<uint64_t> wasted{0};
    queues_.Distribute(layout.num_partitions());
    {
      ScopedInterval si(streaming_);
      obs::TraceSpan span("scatter");
      // Section wall on the driving thread; per-partition busy time (which
      // sums to thread-seconds across the workers) as cells, so the skew
      // index sees each partition's true cost under work stealing.
      obs::PhaseTimer section(&accountant_, obs::Phase::kScatter, obs::kNoPartition,
                              obs::PhaseTimerMode::kWallOnly);
      const VertexState* states = store_.resident_states();
      pool.RunOnAll([&](int tid) {
        uint64_t local_edges = 0;
        uint64_t local_wasted = 0;
        uint32_t p = 0;
        while (queues_.Pop(tid, p, opts_.enable_work_stealing)) {
          obs::PhaseTimer cell(&accountant_, obs::Phase::kScatter, p,
                               obs::PhaseTimerMode::kCellOnly);
          for (const auto& slice : edge_chunks.slices) {
            const ChunkRef& c = slice[p];
            local_wasted +=
                ScatterSpan(algo, edge_chunks.data + c.begin, c.count, states, 0, tid, appender);
            local_edges += c.count;
          }
        }
        edges_streamed.fetch_add(local_edges, std::memory_order_relaxed);
        wasted.fetch_add(local_wasted, std::memory_order_relaxed);
      });
      appender.FlushAll();
    }
    cur_iter_.edges_streamed = edges_streamed.load();
    cur_iter_.wasted_edges = wasted.load();
  }

  // Gather phase: stream each partition's update chunk into its vertex
  // states; EndVertex runs per partition right after its gather (legal
  // because gather only touches the partition's own vertices).
  void GatherPartitionParallel(Algo& algo, const ShuffleOutput<Update>& shuffled)
    requires(Store::kPartitionParallel)
  {
    const PartitionLayout& layout = store_.layout();
    ThreadPool& pool = store_.pool();
    std::atomic<uint64_t> changed{0};
    queues_.Distribute(layout.num_partitions());
    {
      ScopedInterval si(streaming_);
      obs::TraceSpan span("gather");
      obs::PhaseTimer section(&accountant_, obs::Phase::kGather, obs::kNoPartition,
                              obs::PhaseTimerMode::kWallOnly);
      VertexState* states = store_.resident_states();
      pool.RunOnAll([&](int tid) {
        uint64_t local_changed = 0;
        uint32_t p = 0;
        while (queues_.Pop(tid, p, opts_.enable_work_stealing)) {
          obs::PhaseTimer cell(&accountant_, obs::Phase::kGather, p,
                               obs::PhaseTimerMode::kCellOnly);
          if (cur_iter_.updates_generated > 0) {
            for (const auto& slice : shuffled.slices) {
              const ChunkRef& c = slice[p];
              const Update* us = shuffled.data + c.begin;
              for (uint64_t i = 0; i < c.count; ++i) {
                if (algo.Gather(states[layout.DenseId(us[i].dst)], us[i])) {
                  ++local_changed;
                }
              }
            }
          }
          if constexpr (HasEndVertex<Algo>) {
            for (VertexId i = layout.Begin(p); i < layout.End(p); ++i) {
              algo.EndVertex(layout.OriginalId(i), states[i]);
            }
          }
        }
        changed.fetch_add(local_changed, std::memory_order_relaxed);
      });
    }
    cur_iter_.vertices_changed = changed.load();
  }

  // ---- Partition-sequential shape (device store, §3) ----------------------

  // Gather phase: absorbed updates already mutated their partition's stored
  // state during scatter; count them with the file/memory gathers.
  template <typename Plan>
  void GatherPartitionSequential(Algo& algo, const Plan& plan)
    requires(!Store::kPartitionParallel)
  {
    const PartitionLayout& layout = store_.layout();
    ThreadPool& pool = store_.pool();
    std::atomic<uint64_t> changed{store_.absorbed_changed()};
    for (uint32_t p = 0; p < layout.num_partitions(); ++p) {
      if (layout.Size(p) == 0) {
        continue;
      }
      obs::TraceSpan span("gather", "phase", p);
      obs::PhaseTimer pt(&accountant_, obs::Phase::kGather, p);
      store_.BeginPartitionGather(p);
      VertexState* state_base =
          store_.all_resident() ? store_.resident_states() : store_.partition_states();
      VertexId part_base = store_.all_resident() ? 0 : layout.Begin(p);

      if (plan.memory_gather) {
        if (plan.tail_records > 0) {
          for (const auto& slice : plan.resident.slices) {
            const ChunkRef& c = slice[p];
            if (c.count > 0) {
              GatherChunk(algo, plan.resident.data + c.begin, c.count, state_base, part_base,
                          p, plan.tmp_a, plan.tmp_b, changed);
            }
          }
        }
      } else {
        store_.ForEachUpdateChunk(p, [&](const Update* us, uint64_t count) {
          GatherChunk(algo, us, count, state_base, part_base, p, plan.tmp_a, plan.tmp_b,
                      changed);
        });
      }

      if constexpr (HasEndVertex<Algo>) {
        VertexId base = layout.Begin(p);
        pool.ParallelFor(0, layout.Size(p), 4096, [&](uint64_t lo, uint64_t hi) {
          for (uint64_t i = lo; i < hi; ++i) {
            algo.EndVertex(layout.OriginalId(base + i), state_base[base + i - part_base]);
          }
        });
      }
      store_.EndPartitionGather(p, plan.memory_gather);
    }
    store_.FinishGather(plan.memory_gather);
    cur_iter_.vertices_changed = changed.load();
  }

  // Gathers one loaded chunk of updates. With multiple threads the chunk is
  // first sub-partitioned by destination (the §4.3 layering) so threads
  // gather disjoint vertex ranges without synchronization. tmp_a/tmp_b must
  // not alias `us`.
  void GatherChunk(Algo& algo, const Update* us, uint64_t count, VertexState* state_base,
                   VertexId part_base, uint32_t p, Update* tmp_a, Update* tmp_b,
                   std::atomic<uint64_t>& changed) {
    const PartitionLayout& layout = store_.layout();
    ThreadPool& pool = store_.pool();
    if (pool.num_threads() == 1 || count < 4096) {
      uint64_t local = 0;
      for (uint64_t i = 0; i < count; ++i) {
        if (algo.Gather(state_base[layout.DenseId(us[i].dst) - part_base], us[i])) {
          ++local;
        }
      }
      changed.fetch_add(local, std::memory_order_relaxed);
      return;
    }
    uint32_t sub_k = RoundUpPow2(static_cast<uint64_t>(pool.num_threads()) * 4);
    uint64_t part_size = std::max<uint64_t>(1, layout.Size(p));
    uint64_t sub_span = (part_size + sub_k - 1) / sub_k;
    VertexId begin = layout.Begin(p);
    std::memcpy(tmp_a, us, count * sizeof(Update));
    auto sub = ShuffleRecords(pool, tmp_a, tmp_b, count, sub_k, sub_k, [&](const Update& u) {
      return static_cast<uint32_t>((layout.DenseId(u.dst) - begin) / sub_span);
    });
    std::atomic<uint32_t> next{0};
    pool.RunOnAll([&](int) {
      uint64_t local = 0;
      for (;;) {
        uint32_t sp = next.fetch_add(1, std::memory_order_relaxed);
        if (sp >= sub_k) {
          break;
        }
        for (const auto& slice : sub.slices) {
          const ChunkRef& c = slice[sp];
          const Update* rec = sub.data + c.begin;
          for (uint64_t i = 0; i < c.count; ++i) {
            if (algo.Gather(state_base[layout.DenseId(rec[i].dst) - part_base], rec[i])) {
              ++local;
            }
          }
        }
      }
      changed.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Live progress publishes for the telemetry endpoints: the partition
  // cursor at every scatter boundary, cumulative edge throughput whenever
  // the cursor or an iteration lands. Mid-run readers (the HTTP exporter
  // thread) see the last boundary's values — a deliberate snapshot
  // granularity that keeps the publish cost to a few relaxed stores.
  void PublishPartitionProgress(uint32_t s) {
    progress_cursor_->Set(static_cast<double>(s));
    PublishThroughput(stats_.edges_streamed + cur_iter_.edges_streamed);
  }

  void PublishThroughput(uint64_t edges) {
    double elapsed = progress_clock_.Seconds();
    if (elapsed > 0.0) {
      progress_throughput_->Set(static_cast<double>(edges) * sizeof(Edge) / elapsed);
    }
  }

  Store& store_;
  PhaseDriverOptions opts_;
  WorkStealingQueues queues_;
  // Per-phase/per-partition wall-time cells (obs/attribution.h). Named after
  // the progress prefix, so solo runs show up as "run" and scheduler jobs
  // as "job.<name>" in GET /attribution and --explain.
  obs::PhaseAccountant accountant_;
  RunStats stats_;
  obs::Gauge* progress_iteration_ = nullptr;
  obs::Gauge* progress_cursor_ = nullptr;
  obs::Gauge* progress_active_ = nullptr;
  obs::Gauge* progress_throughput_ = nullptr;
  WallTimer progress_clock_;  // driver lifetime, for cumulative bytes/s

  // In-flight iteration state for the drivable scatter pieces (RunIteration
  // and the scheduler's shared-scan mode alike).
  std::unique_ptr<ConcurrentAppender> scatter_appender_;
  IterationStats cur_iter_;
  WallTimer iter_timer_;
  IntervalAccumulator streaming_;
  // Tracer spans for the externally driven scatter protocol, where begin
  // and end live in different calls (obs/trace.h; no-ops unless --trace).
  obs::ManualSpan iter_span_;
  obs::ManualSpan scatter_span_;
  const VertexState* scatter_state_base_ = nullptr;
  VertexId scatter_part_base_ = 0;
  // Partition whose chunks ScatterChunk is currently streaming (set by
  // BeginScatterPartition), for cell attribution.
  uint32_t attr_partition_ = 0;
  bool in_iteration_scatter_ = false;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_PHASE_RUNTIME_H_
