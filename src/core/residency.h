// ResidencyPlanner: which streaming partitions should live in RAM.
//
// X-Stream offers two extremes: the in-memory engine (everything resident)
// and the out-of-core engine (everything streamed from devices). The common
// case on real hardware sits between them — a graph slightly larger than
// RAM still has a working set that mostly fits. The hybrid store
// (core/hybrid_store.h) keeps a chosen subset of partitions fully resident
// (vertex states pinned, incoming updates buffered in RAM) while the rest
// spill through the device path; this planner chooses that subset under a
// byte budget.
//
// The model is a density greedy over a knapsack: pinning partition p costs
// its vertex-state bytes plus a worst-case in-RAM update buffer (one update
// per incoming edge, shrinking to the observed update volume once the run
// supplies per-iteration feedback), and saves the per-iteration device
// traffic the pin removes — vertex-file loads/stores and the write+read of
// p's update stream. Partitions are pinned in decreasing
// saved-bytes-per-resident-byte order until the budget runs out; candidates
// that no longer fit are skipped, not terminal (a later, smaller partition
// may still fit). Greedy-by-density is the standard knapsack heuristic and
// is exact here in the fractional sense that matters: partition sizes are
// small relative to realistic budgets.
//
// Plans are cheap (O(k log k)), so the hybrid store re-plans between
// iterations from observed update volumes — algorithms whose active set
// shrinks (BFS/SSSP) shed update-buffer cost and let more partitions pin.
#ifndef XSTREAM_CORE_RESIDENCY_H_
#define XSTREAM_CORE_RESIDENCY_H_

#include <cstdint>
#include <vector>

namespace xstream {

// Planner inputs for one partition. All byte figures are per iteration
// except the two pinned costs, which are held for the whole run (or until
// the next re-plan).
struct PartitionResidencyStats {
  // Pinned cost: the partition's vertex states, held resident.
  uint64_t vertex_bytes = 0;
  // Pinned cost: worst-case in-RAM buffer for updates destined to this
  // partition (one per incoming edge, or the observed volume on re-plans).
  uint64_t update_buffer_bytes = 0;
  // Per-iteration device traffic a pin removes: skipped vertex-file
  // loads/stores plus the update bytes that never touch the update file.
  uint64_t avoided_bytes_per_iteration = 0;
};

struct ResidencyPlan {
  std::vector<bool> resident;             // by partition id
  uint64_t resident_bytes = 0;            // accounted cost of the pin set
  uint64_t avoided_bytes_per_iteration = 0;  // planned savings of the pin set

  uint32_t resident_count() const {
    uint32_t n = 0;
    for (bool r : resident) {
      n += r ? 1 : 0;
    }
    return n;
  }
};

// The shared pin-savings pricing: per iteration a pinned partition skips
// the scatter-side vertex load, the gather-side load and the gather-side
// store (~3x its states) and keeps its update stream's write + read-back in
// RAM (2x the crossing update bytes). Setup-time plans (edge-tally
// estimates) and re-plans (observed volumes) must price identically or the
// two modes drift.
inline uint64_t PricePinSavings(uint64_t vertex_bytes, uint64_t crossing_update_bytes) {
  return vertex_bytes > 0 ? 3 * vertex_bytes + 2 * crossing_update_bytes : 0;
}

class ResidencyPlanner {
 public:
  // `budget_bytes` bounds the accounted cost of the pin set; it is a
  // planning target, not an enforced allocation cap (an iteration that
  // generates more updates than predicted grows a pinned buffer past its
  // estimate rather than failing).
  explicit ResidencyPlanner(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  uint64_t budget_bytes() const { return budget_bytes_; }

  // Budgets move at runtime: the multi-job scheduler re-splits one memory
  // budget across the active jobs as they come and go. Takes effect at the
  // next Plan() call.
  void set_budget_bytes(uint64_t bytes) { budget_bytes_ = bytes; }

  // Greedy pin-set selection: decreasing avoided-per-resident-byte density,
  // skipping candidates that exceed the remaining budget. Partitions with
  // zero avoided bytes are never pinned (pinning them buys nothing).
  ResidencyPlan Plan(const std::vector<PartitionResidencyStats>& partitions) const;

 private:
  uint64_t budget_bytes_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_RESIDENCY_H_
