// ResidencyPlanner: which streaming partitions should live in RAM.
//
// X-Stream offers two extremes: the in-memory engine (everything resident)
// and the out-of-core engine (everything streamed from devices). The common
// case on real hardware sits between them — a graph slightly larger than
// RAM still has a working set that mostly fits. The hybrid store
// (core/hybrid_store.h) keeps a chosen subset of partitions fully resident
// (vertex states pinned, incoming updates buffered in RAM, optionally the
// edge stream cached too) while the rest spill through the device path;
// this planner chooses that subset under a byte budget.
//
// The model is a density greedy over a knapsack: pinning partition p costs
// its vertex-state bytes plus a worst-case in-RAM update buffer (one update
// per incoming edge, shrinking to the observed update volume once the run
// supplies per-iteration feedback) plus — when edge pinning is on — its
// edge-stream bytes, and saves the per-iteration device traffic the pin
// removes: vertex-file loads/stores, the write+read of p's update stream,
// and (with edge pinning) the per-iteration edge-stream read. Partitions
// are pinned in decreasing saved-bytes-per-resident-byte order until the
// budget runs out; candidates that no longer fit are skipped, not terminal
// (a later, smaller partition may still fit). Greedy-by-density is the
// standard knapsack heuristic and is exact here in the fractional sense
// that matters: partition sizes are small relative to realistic budgets.
//
// Two planning modes:
//
//  * Plan() — the full solve: re-derives the pin set from scratch. Used at
//    setup and as the stop-the-world re-plan baseline.
//  * PlanDelta() — the incremental solve: diffs the full solve against the
//    current pin set and emits only the *stable* differences as an
//    evict/promote delta. A partition must win (or lose) its place for
//    `hysteresis` consecutive calls before it migrates, so a drifting
//    workload (a BFS/SSSP frontier sweeping through partitions) does not
//    thrash state between RAM and the vertex files every iteration. The
//    hybrid store applies the delta one partition at a time, at partition
//    boundaries, instead of in a stop-the-world migration phase.
#ifndef XSTREAM_CORE_RESIDENCY_H_
#define XSTREAM_CORE_RESIDENCY_H_

#include <cstdint>
#include <vector>

namespace xstream {

/// Planner inputs for one partition. All byte figures are per iteration
/// except the pinned costs (vertex_bytes, update_buffer_bytes, edge_bytes),
/// which are held for the whole run (or until the next re-plan).
/// Thread-safety: plain data; confine to one thread or copy.
struct PartitionResidencyStats {
  /// Pinned cost: the partition's vertex states, held resident.
  uint64_t vertex_bytes = 0;
  /// Pinned cost: worst-case in-RAM buffer for updates destined to this
  /// partition (one per incoming edge, or the observed volume on re-plans).
  uint64_t update_buffer_bytes = 0;
  /// Pinned cost: the partition's edge stream, when edge pinning is on
  /// (core/stream_store.h PinnedEdgeCache). Zero otherwise.
  uint64_t edge_bytes = 0;
  /// Per-iteration device traffic a pin removes: skipped vertex-file
  /// loads/stores, update bytes that never touch the update file, and (with
  /// edge pinning) the edge-stream read served from RAM.
  uint64_t avoided_bytes_per_iteration = 0;

  /// Accounted resident cost of pinning this partition.
  uint64_t cost() const { return vertex_bytes + update_buffer_bytes + edge_bytes; }
};

/// A pin set: which partitions live in RAM, plus the planner's accounting.
/// Thread-safety: plain data; confine to one thread or copy.
struct ResidencyPlan {
  std::vector<bool> resident;             // by partition id
  uint64_t resident_bytes = 0;            // accounted cost of the pin set
  uint64_t avoided_bytes_per_iteration = 0;  // planned savings of the pin set

  uint32_t resident_count() const {
    uint32_t n = 0;
    for (bool r : resident) {
      n += r ? 1 : 0;
    }
    return n;
  }
};

/// The incremental planning result: the partitions whose residency should
/// change now (hysteresis passed, budget respected) and the plan that holds
/// once every listed migration has been applied. Differences the hysteresis
/// filter is still sitting on are *not* listed — they stay where they are
/// and keep accumulating streak.
/// Thread-safety: plain data; confine to one thread or copy.
struct ResidencyDelta {
  std::vector<uint32_t> evict;    // currently resident, lost their place
  std::vector<uint32_t> promote;  // currently streamed, won a place
  ResidencyPlan plan;             // the pin set after applying evict+promote

  bool empty() const { return evict.empty() && promote.empty(); }
};

/// The shared pin-savings pricing: per iteration a pinned partition skips
/// the scatter-side vertex load, the gather-side load and the gather-side
/// store (~3x its states), keeps its update stream's write + read-back in
/// RAM (2x the crossing update bytes), and — when its edges are cached —
/// serves the per-iteration edge scan from RAM (1x its edge bytes).
/// Setup-time plans (edge-tally estimates) and re-plans (observed volumes)
/// must price identically or the two modes drift.
inline uint64_t PricePinSavings(uint64_t vertex_bytes, uint64_t crossing_update_bytes,
                                uint64_t edge_bytes = 0) {
  return vertex_bytes > 0 ? 3 * vertex_bytes + 2 * crossing_update_bytes + edge_bytes : 0;
}

/// Solves (fully or incrementally) the byte-budgeted pin set.
///
/// Thread-safety: NOT thread-safe. The planner carries hysteresis streak
/// state across PlanDelta calls; confine each instance to the single thread
/// that drives its store (the compute loop, or the scheduler's driver
/// thread). Plan() is logically const and touches no streak state.
/// Blocking: never blocks — pure in-memory computation, O(k log k).
class ResidencyPlanner {
 public:
  /// `budget_bytes` bounds the accounted cost of the pin set; it is a
  /// planning target, not an enforced allocation cap (an iteration that
  /// generates more updates than predicted grows a pinned buffer past its
  /// estimate rather than failing).
  explicit ResidencyPlanner(uint64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  uint64_t budget_bytes() const { return budget_bytes_; }

  /// Budgets move at runtime: the multi-job scheduler re-splits one memory
  /// budget across the active jobs as they come and go. Takes effect at the
  /// next Plan()/PlanDelta() call.
  void set_budget_bytes(uint64_t bytes) { budget_bytes_ = bytes; }

  /// Migration hysteresis for PlanDelta: a partition must win (or lose) its
  /// place in the target pin set for this many *consecutive* PlanDelta
  /// calls before the delta migrates it. 1 = migrate on the first call that
  /// disagrees (no damping); values are clamped to >= 1.
  void set_hysteresis(uint32_t k) { hysteresis_ = k > 0 ? k : 1; }
  uint32_t hysteresis() const { return hysteresis_; }

  /// Greedy full solve: decreasing avoided-per-resident-byte density,
  /// skipping candidates that exceed the remaining budget. Partitions with
  /// zero avoided bytes are never pinned (pinning them buys nothing). Does
  /// not read or advance the hysteresis streaks.
  ResidencyPlan Plan(const std::vector<PartitionResidencyStats>& partitions) const;

  /// Incremental solve: computes the full-solve target for `partitions`,
  /// advances the per-partition win/lose streaks against `current`, and
  /// returns the migrations whose streak reached the hysteresis threshold.
  /// Promotions are admitted in density order and only while they fit the
  /// budget next to what stays pinned — a promotion blocked by a loser the
  /// hysteresis is still holding keeps its streak and enters once the
  /// eviction lands. `force` bypasses the hysteresis (budget reassignments
  /// must take effect promptly) but still respects the budget.
  /// `current.resident` must describe the pin set all previously returned
  /// deltas produce once applied.
  ResidencyDelta PlanDelta(const ResidencyPlan& current,
                           const std::vector<PartitionResidencyStats>& partitions,
                           bool force = false);

 private:
  // Partition ids in decreasing avoided-per-cost density, ties to the lower
  // id (deterministic plans for equal inputs).
  std::vector<uint32_t> DensityOrder(
      const std::vector<PartitionResidencyStats>& partitions) const;

  // Plan() against a precomputed density order (PlanDelta computes the
  // order once and reuses it for the promotion loop).
  ResidencyPlan PlanWithOrder(const std::vector<PartitionResidencyStats>& partitions,
                              const std::vector<uint32_t>& order) const;

  uint64_t budget_bytes_;
  uint32_t hysteresis_ = 1;
  // PlanDelta streak state: how many consecutive calls partition p's target
  // residency has disagreed with the applied plan, and in which direction
  // (+1 wants promotion, -1 wants eviction). Reset on agreement, direction
  // change, or migration.
  std::vector<uint32_t> streak_;
  std::vector<int8_t> streak_dir_;
};

}  // namespace xstream

#endif  // XSTREAM_CORE_RESIDENCY_H_
