#include "core/stats.h"

#include "obs/metrics.h"
#include "util/json.h"

namespace xstream {

std::string RunStats::ToJson(bool include_iterations) const {
  JsonWriter w;
  w.BeginObject();
  w.Field("iterations", iterations);
  w.Field("edges_streamed", edges_streamed);
  w.Field("updates_generated", updates_generated);
  w.Field("wasted_edges", wasted_edges);
  w.Field("updates_absorbed", updates_absorbed);
  w.Field("steals", steals);
  w.Field("setup_seconds", setup_seconds);
  w.Field("compute_seconds", compute_seconds);
  w.Field("streaming_seconds", streaming_seconds);
  w.Field("queue_seconds", queue_seconds);
  w.Field("sim_io_seconds", sim_io_seconds);
  w.Field("bytes_read", bytes_read);
  w.Field("bytes_written", bytes_written);
  w.Field("peak_update_bytes", peak_update_bytes);
  w.Field("update_file_bytes", update_file_bytes);
  w.Field("async_spill_bytes", async_spill_bytes);
  w.Field("spill_wait_seconds", spill_wait_seconds);
  w.Field("gather_wait_seconds", gather_wait_seconds);
  w.Field("resident_partition_count", resident_partition_count);
  w.Field("resident_bytes", resident_bytes);
  w.Field("avoided_spill_bytes", avoided_spill_bytes);
  w.Field("evictions", evictions);
  w.Field("promotions", promotions);
  w.Field("migration_bytes", migration_bytes);
  w.Field("pinned_edge_bytes", pinned_edge_bytes);
  w.Field("edge_reads_avoided_bytes", edge_reads_avoided_bytes);
  w.Field("wall_seconds", WallSeconds());
  w.Field("runtime_seconds", RuntimeSeconds());
  w.Field("streaming_ratio", StreamingRatio());
  w.Field("wasted_edge_percent", WastedEdgePercent());
  w.Key("per_iteration").BeginArray();
  if (include_iterations) {
    for (const IterationStats& it : per_iteration) {
      w.BeginObject();
      w.Field("iteration", it.iteration);
      w.Field("edges_streamed", it.edges_streamed);
      w.Field("updates_generated", it.updates_generated);
      w.Field("wasted_edges", it.wasted_edges);
      w.Field("vertices_changed", it.vertices_changed);
      w.Field("updates_absorbed", it.updates_absorbed);
      w.Field("seconds", it.seconds);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void RunStats::PublishTo(const std::string& prefix) const {
  obs::MetricGroup g(obs::MetricsRegistry::Global(), prefix);
  auto counter = [&g](const char* name, uint64_t v) {
    obs::Counter& c = g.counter(name);
    uint64_t cur = c.Value();
    if (v > cur) {
      c.Add(v - cur);  // counters are monotonic; republish adds the delta
    }
  };
  counter("iterations", iterations);
  counter("edges_streamed", edges_streamed);
  counter("updates_generated", updates_generated);
  counter("wasted_edges", wasted_edges);
  counter("updates_absorbed", updates_absorbed);
  counter("steals", steals);
  counter("bytes_read", bytes_read);
  counter("bytes_written", bytes_written);
  counter("update_file_bytes", update_file_bytes);
  counter("async_spill_bytes", async_spill_bytes);
  counter("evictions", evictions);
  counter("promotions", promotions);
  counter("migration_bytes", migration_bytes);
  counter("edge_reads_avoided_bytes", edge_reads_avoided_bytes);
  g.gauge("setup_seconds").Set(setup_seconds);
  g.gauge("compute_seconds").Set(compute_seconds);
  g.gauge("streaming_seconds").Set(streaming_seconds);
  g.gauge("queue_seconds").Set(queue_seconds);
  g.gauge("sim_io_seconds").Set(sim_io_seconds);
  g.gauge("spill_wait_seconds").Set(spill_wait_seconds);
  g.gauge("gather_wait_seconds").Set(gather_wait_seconds);
  g.gauge("peak_update_bytes").Set(static_cast<double>(peak_update_bytes));
  g.gauge("resident_partition_count").Set(static_cast<double>(resident_partition_count));
  g.gauge("resident_bytes").Set(static_cast<double>(resident_bytes));
  g.gauge("avoided_spill_bytes").Set(static_cast<double>(avoided_spill_bytes));
  g.gauge("pinned_edge_bytes").Set(static_cast<double>(pinned_edge_bytes));
}

}  // namespace xstream
