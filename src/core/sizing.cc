#include "core/sizing.h"

#include <algorithm>
#include <bit>

#include "util/env.h"
#include "util/logging.h"

namespace xstream {

size_t DefaultShuffleStageBytes() {
  return std::clamp<size_t>(PerCoreCacheBytes() / 2, size_t{64} << 10, size_t{8} << 20);
}

uint32_t RoundUpPow2(uint64_t x) {
  if (x <= 1) {
    return 1;
  }
  XS_CHECK_LE(x, uint64_t{1} << 31);
  return static_cast<uint32_t>(std::bit_ceil(x));
}

uint32_t ChooseInMemoryPartitions(uint64_t num_vertices, size_t state_bytes, size_t edge_bytes,
                                  size_t update_bytes, size_t cache_bytes,
                                  uint32_t max_partitions) {
  XS_CHECK_GT(cache_bytes, 0u);
  uint64_t footprint =
      num_vertices * static_cast<uint64_t>(state_bytes + edge_bytes + update_bytes);
  uint64_t needed = (footprint + cache_bytes - 1) / cache_bytes;
  uint32_t k = RoundUpPow2(std::max<uint64_t>(1, needed));
  return std::min(k, std::max(1u, max_partitions));
}

bool OutOfCorePartitionsViable(uint64_t vertex_state_bytes, uint64_t memory_budget_bytes,
                               size_t io_unit_bytes) {
  for (uint64_t k = 1; k <= (uint64_t{1} << 20); k *= 2) {
    uint64_t need = vertex_state_bytes / k + 5 * io_unit_bytes * k;
    if (need <= memory_budget_bytes) {
      return true;
    }
  }
  return false;
}

uint32_t ChooseOutOfCorePartitions(uint64_t vertex_state_bytes, uint64_t memory_budget_bytes,
                                   size_t io_unit_bytes) {
  XS_CHECK_GT(io_unit_bytes, 0u);
  // Smallest K wins: fewer partitions means more sequential access (§2.4).
  // Linear scan is fine — K never exceeds a few thousand in practice.
  for (uint64_t k = 1; k <= (uint64_t{1} << 20); ++k) {
    uint64_t per_partition_vertices = (vertex_state_bytes + k - 1) / k;
    uint64_t need = per_partition_vertices + 5 * io_unit_bytes * k;
    if (need <= memory_budget_bytes) {
      return static_cast<uint32_t>(k);
    }
  }
  XS_CHECK(false) << "no viable out-of-core partition count: vertex bytes=" << vertex_state_bytes
                  << " budget=" << memory_budget_bytes << " io unit=" << io_unit_bytes
                  << " (minimum budget is 2*sqrt(5*N*S))";
  return 0;
}

uint64_t ResolveMemoryBudget(uint64_t requested_bytes) {
  uint64_t physical = PhysicalMemoryBytes();
  if (requested_bytes == 0) {
    return physical > 0 ? physical / 2 : 256ull << 20;
  }
  if (physical > 0 && requested_bytes > physical) {
    XS_LOG(Warning) << "memory budget " << requested_bytes
                    << " exceeds physical memory " << physical << "; clamping";
    return physical;
  }
  return requested_bytes;
}

uint32_t ChooseShuffleFanout(uint32_t num_partitions, size_t cache_bytes,
                             size_t cacheline_bytes) {
  XS_CHECK_GT(cacheline_bytes, 0u);
  uint64_t lines = std::max<uint64_t>(2, cache_bytes / cacheline_bytes);
  uint32_t fanout = std::bit_floor(static_cast<uint32_t>(std::min<uint64_t>(lines, 1u << 30)));
  // Fanout above the partition count buys nothing.
  return std::min(fanout, std::max(2u, RoundUpPow2(num_partitions)));
}

}  // namespace xstream
