// HybridStreamStore: a partially resident StreamStore — the planner-chosen
// hot partitions live in RAM, the rest stream through the device path.
//
// X-Stream's two engines are the endpoints of a residency spectrum: the
// in-memory engine pins everything, the out-of-core engine pins nothing and
// pays device speed even when most of the working set would fit in RAM.
// This store interpolates: a ResidencyPlanner (core/residency.h) solves a
// byte-budgeted pin set from per-partition locality tallies, and for every
// pinned partition
//
//  * vertex states are held in RAM (vertex-file loads/stores become
//    memcpys in/out of the pin — the partition "file" is RAM), and
//  * updates destined to it are appended to an in-RAM buffer during the
//    spill shuffle instead of being written to — and later read back
//    from — its update file, exactly the §3.2 memory-gather optimization
//    applied per partition instead of all-or-nothing.
//
// Unpinned partitions keep the full DeviceStreamStore behavior, including
// local-update absorption and the async double-buffered spill. The
// StreamingPhaseDriver runs unchanged: this class derives from
// DeviceStreamStore and *shadows* (static dispatch through the driver's
// Store parameter) the load/store/gather methods whose behavior the
// resident set changes, while the spill path is customized through the
// base store's virtual routing hooks (KeepUpdatesResident /
// AppendResidentUpdates / ObserveRoutedUpdates) so the
// shuffle/absorb/append machinery exists exactly once. With an empty pin
// set every customization degenerates to the base behavior, so budget 0
// reproduces the out-of-core engine exactly.
//
// Between iterations the store re-plans from the observed per-partition
// update volume: algorithms whose active set shrinks (BFS/SSSP) shed
// update-buffer cost and let more partitions pin; newly pinned partitions
// load their states from the vertex file once, evicted ones write theirs
// back.
#ifndef XSTREAM_CORE_HYBRID_STORE_H_
#define XSTREAM_CORE_HYBRID_STORE_H_

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/residency.h"
#include "core/stream_store.h"

namespace xstream {

struct HybridStoreOptions : DeviceStoreOptions {
  // Byte budget for the pin set (vertex states + worst-case update buffers
  // of the resident partitions). A planning target, not an enforced cap: an
  // iteration that out-produces the estimate grows a pinned buffer past it.
  uint64_t pin_budget_bytes = 0;
  // Re-plan the pin set at each iteration boundary from the previous
  // iteration's observed update volume.
  bool replan_between_iterations = true;
};

// Builds the planner inputs from the store's edge tallies: the destination
// and same-partition counts are the per-partition decomposition of the
// PartitionQuality edge cut — the locality signal the streaming partitioners
// optimize. When absorption is on, updates local to their source partition
// never hit the update file anyway, so only cross-partition incoming edges
// count toward a pin's avoided traffic.
std::vector<PartitionResidencyStats> BuildHybridPlanInputs(
    const PartitionLayout& layout, size_t vertex_state_bytes, size_t update_bytes,
    const std::vector<uint64_t>& dst_edge_counts,
    const std::vector<uint64_t>& local_edge_counts, bool absorb_local_updates);

template <EdgeCentricAlgorithm Algo>
class HybridStreamStore : public DeviceStreamStore<Algo> {
 public:
  using Base = DeviceStreamStore<Algo>;
  using VertexState = typename Algo::VertexState;
  using Update = typename Algo::Update;
  using GatherPlan = typename Base::GatherPlan;
  using Options = HybridStoreOptions;
  static constexpr bool kPartitionParallel = false;

  HybridStreamStore(ThreadPool& pool, PartitionLayout layout, const Options& opts,
                    StorageDevice& edge_dev, StorageDevice& update_dev,
                    StorageDevice& vertex_dev, const std::string& input_edge_file)
      : Base(pool, std::move(layout), FileResidentBase(opts), edge_dev, update_dev,
             vertex_dev, input_edge_file),
        hopts_(opts),
        planner_(opts.pin_budget_bytes) {
    // Residency is planner-controlled: the base store must keep vertices in
    // files so pinning (and eviction) is a per-partition decision.
    XS_CHECK(!this->vertices_in_memory());
    uint32_t k = layout_.num_partitions();
    pinned_.resize(k);
    pinned_updates_.resize(k);
    observed_updates_.assign(k, 0);
    plan_.resident.assign(k, false);
    ApplyPlan(planner_.Plan(InitialPlanInputs()));
    replans_ = 0;  // the construction-time plan is not a re-plan
  }

  const ResidencyPlan& residency_plan() const { return plan_; }
  const ResidencyPlanner& planner() const { return planner_; }
  uint64_t replans() const { return replans_; }

  // Accounted cost of pinning every partition (the planner inputs' total):
  // the budget at which the store is fully resident. Benches sweep fractions
  // of this.
  uint64_t FullPinBytes() const {
    uint64_t total = 0;
    for (const PartitionResidencyStats& p : InitialPlanInputs()) {
      total += p.vertex_bytes + p.update_buffer_bytes;
    }
    return total;
  }

  // Re-plans against explicit inputs (tests; operators with external
  // knowledge). Automatic re-planning uses the observed update volume — see
  // BeginIteration.
  void Replan(const std::vector<PartitionResidencyStats>& inputs) {
    ApplyPlan(planner_.Plan(inputs));
    PushResidencyStats();
  }

  // Budget handed down by the multi-job scheduler as jobs come and go. Takes
  // effect at the next iteration boundary — including a first boundary with
  // no observations yet (scheduler admission), which re-plans against the
  // setup-time inputs — never mid-iteration (the pinned update buffers hold
  // mid-iteration state, so re-planning immediately would drop updates).
  // Honored even when automatic re-planning is off.
  void SetPinBudget(uint64_t bytes) {
    planner_.set_budget_bytes(bytes);
    budget_dirty_ = true;
  }

  // ---- Shadowed store surface --------------------------------------------

  void BindStats(RunStats* stats) {
    Base::BindStats(stats);
    PushResidencyStats();
  }

  void BeginIteration() {
    Base::BeginIteration();
    if (iterations_seen_ > 0) {
      if (hopts_.replan_between_iterations || budget_dirty_) {
        ApplyPlan(planner_.Plan(ObservedPlanInputs()));
        budget_dirty_ = false;
      }
    } else if (budget_dirty_) {
      // A budget assigned before the first iteration (scheduler admission):
      // no update volumes observed yet, so re-plan from the setup tallies.
      ApplyPlan(planner_.Plan(InitialPlanInputs()));
      budget_dirty_ = false;
    }
    ++iterations_seen_;
    std::fill(observed_updates_.begin(), observed_updates_.end(), 0);
    PushResidencyStats();
  }

  // Pinned partitions' vertex "file" is RAM: loads and stores are memcpys
  // between the pin and the one-partition scratch the driver works in.
  void LoadPartition(uint32_t p) {
    uint64_t bytes = layout_.Size(p) * sizeof(VertexState);
    if (plan_.resident[p]) {
      std::memcpy(part_states_.data(), pinned_[p].data(), bytes);
      CountAvoided(bytes);
      return;
    }
    Base::LoadPartition(p);
  }

  void StorePartition(uint32_t p) {
    uint64_t bytes = layout_.Size(p) * sizeof(VertexState);
    if (plan_.resident[p]) {
      std::memcpy(pinned_[p].data(), part_states_.data(), bytes);
      CountAvoided(bytes);
      return;
    }
    Base::StorePartition(p);
  }

  // Absorption stays armed for unpinned scatter partitions only: a pinned
  // partition's own updates go to its RAM buffer anyway, so the shadow pass
  // would only duplicate work.
  void BeginPartitionScatter(uint32_t s) {
    LoadPartition(s);
    if (!plan_.resident[s] && opts_.absorb_local_updates) {
      std::memcpy(shadow_states_.data(), part_states_.data(),
                  layout_.Size(s) * sizeof(VertexState));
      shadow_dirty_ = false;
      absorb_partition_ = s;
    }
  }

  void EndPartitionScatter(Algo& algo, ConcurrentAppender& appender) {
    uint32_t s = absorb_partition_;
    uint64_t drained_before = this->drained_updates_;
    Base::EndPartitionScatter(algo, appender);
    if (s != Base::kNoAbsorbPartition) {
      observed_updates_[s] += this->drained_updates_ - drained_before;
    }
  }

  // The spill path itself lives in the base store; the hybrid routing — a
  // third destination class where chunks for pinned partitions are appended
  // to their RAM buffers on the compute thread and excluded from the
  // update-file write — plugs into its virtual hooks, so the base
  // SpillUpdates / FinishScatter (including the tail spill) serve both
  // stores from one copy.
  bool KeepUpdatesResident(uint32_t p) const override { return plan_.resident[p]; }

  void AppendResidentUpdates(uint32_t p, const Update* rec, uint64_t count) override {
    pinned_updates_[p].insert(pinned_updates_[p].end(), rec, rec + count);
  }

  void ObserveRoutedUpdates(uint32_t p, uint64_t count) override {
    observed_updates_[p] += count;
  }

  // Cancelled mid-scatter: drain the base spill state, then discard the
  // pinned partitions' partially collected RAM buffers too.
  void AbortScatter() {
    Base::AbortScatter();
    for (auto& buf : pinned_updates_) {
      buf.clear();
    }
  }

  void BeginPartitionGather(uint32_t p) { LoadPartition(p); }

  // A pinned partition's update stream is its RAM buffer, chunked at the
  // I/O unit so the driver's gather sub-partitioning sees the same shape as
  // a file stream.
  template <typename F>
  void ForEachUpdateChunk(uint32_t p, F&& f) {
    if (plan_.resident[p]) {
      const std::vector<Update>& buf = pinned_updates_[p];
      uint64_t chunk = std::max<uint64_t>(1, opts_.io_unit_bytes / sizeof(Update));
      for (uint64_t i = 0; i < buf.size(); i += chunk) {
        f(buf.data() + i, std::min<uint64_t>(chunk, buf.size() - i));
      }
      return;
    }
    Base::ForEachUpdateChunk(p, std::forward<F>(f));
  }

  // A pinned partition's gather stores the states back into the pin and
  // recycles its RAM update buffer; unpinned partitions keep the base
  // store/TRIM/occupancy path unchanged (pinned gathers never touch the
  // update files, so skipping them cannot miss a peak-occupancy sample).
  void EndPartitionGather(uint32_t p, bool memory_gather) {
    if (!plan_.resident[p]) {
      Base::EndPartitionGather(p, memory_gather);
      return;
    }
    StorePartition(p);
    pinned_updates_[p].clear();  // consumed; capacity kept for next iteration
  }

 private:
  static DeviceStoreOptions FileResidentBase(DeviceStoreOptions opts) {
    opts.allow_vertex_memory_opt = false;
    opts.collect_dst_tallies = true;  // the planner prices pins from these
    return opts;
  }

  std::vector<PartitionResidencyStats> InitialPlanInputs() const {
    return BuildHybridPlanInputs(layout_, sizeof(VertexState), sizeof(Update),
                                 this->dst_edge_counts(), this->local_edge_counts(),
                                 opts_.absorb_local_updates);
  }

  // Re-plan inputs: the worst-case one-update-per-edge buffer estimate is
  // replaced by last iteration's observed per-partition volume. Slightly
  // optimistic on the avoided side for unpinned partitions (absorbed
  // updates are counted although they never hit the file), which only makes
  // the planner favor locality-heavy partitions it would pin anyway.
  std::vector<PartitionResidencyStats> ObservedPlanInputs() const {
    std::vector<PartitionResidencyStats> inputs(layout_.num_partitions());
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t vbytes = layout_.Size(p) * sizeof(VertexState);
      uint64_t ubytes = observed_updates_[p] * sizeof(Update);
      inputs[p].vertex_bytes = vbytes;
      inputs[p].update_buffer_bytes = ubytes;
      inputs[p].avoided_bytes_per_iteration = PricePinSavings(vbytes, ubytes);
    }
    return inputs;
  }

  void ApplyPlan(ResidencyPlan next) {
    bool changed = false;
    for (uint32_t p = 0; p < layout_.num_partitions(); ++p) {
      uint64_t n = layout_.Size(p);
      if (next.resident[p] && !plan_.resident[p]) {
        pinned_[p].resize(n);
        if (n > 0) {
          vertex_dev_.Read(vertex_files_[p], 0,
                           std::span<std::byte>(reinterpret_cast<std::byte*>(pinned_[p].data()),
                                                n * sizeof(VertexState)));
        }
        changed = true;
      } else if (!next.resident[p] && plan_.resident[p]) {
        if (n > 0) {
          this->StorePartitionFrom(p, pinned_[p].data());
        }
        pinned_[p] = {};
        pinned_updates_[p] = {};
        changed = true;
      }
    }
    if (changed) {
      ++replans_;
    }
    plan_ = std::move(next);
  }

  void PushResidencyStats() {
    stats_->resident_partition_count = plan_.resident_count();
    stats_->resident_bytes = plan_.resident_bytes;
  }

  void CountAvoided(uint64_t bytes) { stats_->avoided_spill_bytes += bytes; }

  using Base::absorb_partition_;
  using Base::layout_;
  using Base::opts_;
  using Base::part_states_;
  using Base::shadow_dirty_;
  using Base::shadow_states_;
  using Base::stats_;
  using Base::update_dev_;
  using Base::update_files_;
  using Base::vertex_dev_;
  using Base::vertex_files_;

  HybridStoreOptions hopts_;
  ResidencyPlanner planner_;
  ResidencyPlan plan_;
  // Pinned vertex states (by partition, dense order within each) and the
  // in-RAM update buffers of the pinned partitions.
  std::vector<std::vector<VertexState>> pinned_;
  std::vector<std::vector<Update>> pinned_updates_;
  // Updates routed to each destination partition this iteration (spilled,
  // kept in RAM, absorbed and drained alike) — next iteration's buffer
  // estimate.
  std::vector<uint64_t> observed_updates_;
  uint64_t iterations_seen_ = 0;
  uint64_t replans_ = 0;
  bool budget_dirty_ = false;  // SetPinBudget awaiting the next boundary
};

}  // namespace xstream

#endif  // XSTREAM_CORE_HYBRID_STORE_H_
